// Software IEEE-754 binary16 ("half") with bit-exact storage and
// round-to-nearest-even conversions. DNN accelerators that the paper studies
// (e.g. Eyeriss-class designs) compute MACs natively in reduced precision;
// this type lets the inference path and the fault injector agree on the
// exact 16 bits a hardware latch would hold.
//
// Arithmetic is performed by converting to float, operating, and re-rounding
// to half — this matches the behaviour of a half-precision FPU for single
// operations (float has enough precision that double rounding is exact for
// binary16 +, -, *, / of binary16 operands).
#pragma once

#include <bit>
#include <cstdint>
#include <limits>
#include <type_traits>

#include "dnnfi/numeric/cpu.h"

namespace dnnfi::numeric {

namespace detail {

constexpr std::uint16_t float_to_half_bits_sw(float value) noexcept {
  const std::uint32_t x = std::bit_cast<std::uint32_t>(value);
  const std::uint32_t sign = (x >> 16) & 0x8000U;
  std::uint32_t mant = x & 0x007FFFFFU;
  const auto exp = static_cast<std::int32_t>((x >> 23) & 0xFFU);

  if (exp == 0xFF) {  // Inf or NaN: preserve NaN-ness with a quiet payload.
    if (mant != 0) return static_cast<std::uint16_t>(sign | 0x7E00U);
    return static_cast<std::uint16_t>(sign | 0x7C00U);
  }

  const std::int32_t e = exp - 127 + 15;  // re-biased exponent
  if (e >= 31) {  // overflow -> infinity
    return static_cast<std::uint16_t>(sign | 0x7C00U);
  }
  if (e <= 0) {  // subnormal half or zero
    if (e < -10) return static_cast<std::uint16_t>(sign);  // rounds to zero
    mant |= 0x00800000U;  // make the implicit bit explicit
    const auto shift = static_cast<std::uint32_t>(14 - e);
    std::uint32_t half_mant = mant >> shift;
    const std::uint32_t rem = mant & ((1U << shift) - 1U);
    const std::uint32_t halfway = 1U << (shift - 1U);
    if (rem > halfway || (rem == halfway && (half_mant & 1U))) ++half_mant;
    return static_cast<std::uint16_t>(sign | half_mant);
  }

  std::uint32_t half =
      sign | (static_cast<std::uint32_t>(e) << 10) | (mant >> 13);
  const std::uint32_t rem = mant & 0x1FFFU;
  // Round to nearest even; a carry out of the mantissa correctly increments
  // the exponent (and saturates to infinity at e == 31).
  if (rem > 0x1000U || (rem == 0x1000U && (half & 1U))) ++half;
  return static_cast<std::uint16_t>(half);
}

constexpr float half_bits_to_float_sw(std::uint16_t h) noexcept {
  const std::uint32_t sign = static_cast<std::uint32_t>(h & 0x8000U) << 16;
  std::uint32_t exp = (h >> 10) & 0x1FU;
  std::uint32_t mant = h & 0x3FFU;

  std::uint32_t bits = 0;
  if (exp == 0) {
    if (mant == 0) {
      bits = sign;  // signed zero
    } else {
      // Subnormal: normalize into float's representation. A subnormal with
      // its leading 1 reached after `shift` left-shifts has value
      // 1.m x 2^(-14-shift), i.e. biased float exponent 113 - shift.
      std::int32_t shift = 0;
      while ((mant & 0x400U) == 0) {
        mant <<= 1;
        ++shift;
      }
      mant &= 0x3FFU;
      const auto fexp = static_cast<std::uint32_t>(113 - shift);
      bits = sign | (fexp << 23) | (mant << 13);
    }
  } else if (exp == 31) {
    bits = sign | 0x7F800000U | (mant << 13);  // Inf / NaN
  } else {
    bits = sign | ((exp - 15 + 127) << 23) | (mant << 13);
  }
  return std::bit_cast<float>(bits);
}

// When the build compiles the x86 F16C paths (see DNNFI_F16C in
// CMakeLists.txt), the hardware conversion instructions replace the software
// routines on the hot path — selected at *runtime* via a cached CPUID probe,
// so the same binary still runs (on the software routines) on an x86-64
// without F16C. VCVTPS2PH/VCVTPH2PS implement the same IEEE-754
// round-to-nearest-even conversion, so results are bit-identical — except
// for NaN payloads, where the hardware truncates and this library
// canonicalizes to a fixed quiet payload; NaNs are therefore routed through
// the software rule. The software routines remain the constant-evaluation
// path and the reference the tests compare the hardware against.
#if defined(DNNFI_ENABLE_F16C)
// Out-of-line hardware conversions, defined in simd_convert_f16c.cpp (the
// only numeric TU compiled with -mf16c). Call only when cpu_has_f16c().
std::uint16_t float_to_half_bits_hw(float value) noexcept;
float half_bits_to_float_hw(std::uint16_t h) noexcept;

// Cached probe. Zero-initialized (false -> software path) until dynamic
// initialization runs, which is correct either way.
inline const bool kHalfUseF16C = cpu_has_f16c();
#endif

constexpr std::uint16_t float_to_half_bits(float value) noexcept {
#if defined(DNNFI_ENABLE_F16C)
  if (!std::is_constant_evaluated() && kHalfUseF16C) {
    if (value != value) {
      const std::uint32_t sign =
          (std::bit_cast<std::uint32_t>(value) >> 16) & 0x8000U;
      return static_cast<std::uint16_t>(sign | 0x7E00U);
    }
    return float_to_half_bits_hw(value);
  }
#endif
  return float_to_half_bits_sw(value);
}

constexpr float half_bits_to_float(std::uint16_t h) noexcept {
#if defined(DNNFI_ENABLE_F16C)
  if (!std::is_constant_evaluated() && kHalfUseF16C)
    return half_bits_to_float_hw(h);
#endif
  return half_bits_to_float_sw(h);
}

}  // namespace detail

/// IEEE-754 binary16 value. Trivially copyable; exactly 16 bits of state.
class Half {
 public:
  constexpr Half() noexcept = default;
  constexpr Half(float v) noexcept : bits_(detail::float_to_half_bits(v)) {}
  constexpr Half(double v) noexcept : Half(static_cast<float>(v)) {}
  constexpr Half(int v) noexcept : Half(static_cast<float>(v)) {}

  /// Reinterprets raw storage bits as a Half.
  static constexpr Half from_bits(std::uint16_t bits) noexcept {
    Half h;
    h.bits_ = bits;
    return h;
  }

  constexpr std::uint16_t bits() const noexcept { return bits_; }

  constexpr operator float() const noexcept {
    return detail::half_bits_to_float(bits_);
  }
  constexpr explicit operator double() const noexcept {
    return static_cast<double>(static_cast<float>(*this));
  }

  constexpr bool is_nan() const noexcept {
    return ((bits_ & 0x7C00U) == 0x7C00U) && ((bits_ & 0x3FFU) != 0);
  }
  constexpr bool is_inf() const noexcept {
    return ((bits_ & 0x7C00U) == 0x7C00U) && ((bits_ & 0x3FFU) == 0);
  }

  friend constexpr Half operator+(Half a, Half b) noexcept {
    return Half(static_cast<float>(a) + static_cast<float>(b));
  }
  friend constexpr Half operator-(Half a, Half b) noexcept {
    return Half(static_cast<float>(a) - static_cast<float>(b));
  }
  friend constexpr Half operator*(Half a, Half b) noexcept {
    return Half(static_cast<float>(a) * static_cast<float>(b));
  }
  friend constexpr Half operator/(Half a, Half b) noexcept {
    return Half(static_cast<float>(a) / static_cast<float>(b));
  }
  friend constexpr Half operator-(Half a) noexcept {
    return Half::from_bits(static_cast<std::uint16_t>(a.bits_ ^ 0x8000U));
  }
  constexpr Half& operator+=(Half o) noexcept { return *this = *this + o; }
  constexpr Half& operator-=(Half o) noexcept { return *this = *this - o; }
  constexpr Half& operator*=(Half o) noexcept { return *this = *this * o; }

  friend constexpr bool operator==(Half a, Half b) noexcept {
    return static_cast<float>(a) == static_cast<float>(b);
  }
  friend constexpr bool operator<(Half a, Half b) noexcept {
    return static_cast<float>(a) < static_cast<float>(b);
  }
  friend constexpr bool operator>(Half a, Half b) noexcept { return b < a; }
  friend constexpr bool operator<=(Half a, Half b) noexcept { return !(b < a); }
  friend constexpr bool operator>=(Half a, Half b) noexcept { return !(a < b); }

  /// Largest finite binary16 value (65504).
  static constexpr Half max_finite() noexcept { return from_bits(0x7BFFU); }

 private:
  std::uint16_t bits_ = 0;
};

static_assert(sizeof(Half) == 2);

}  // namespace dnnfi::numeric
