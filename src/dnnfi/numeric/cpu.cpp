#include "dnnfi/numeric/cpu.h"

namespace dnnfi::numeric {

namespace {

struct CpuFeatures {
  bool avx = false;
  bool avx2 = false;
  bool f16c = false;
  bool fma = false;
  bool avx512f = false;
  bool avx512bw = false;
  bool avx512vl = false;
  bool avx512dq = false;

  CpuFeatures() noexcept {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_cpu_init();
    avx = __builtin_cpu_supports("avx") != 0;
    avx2 = __builtin_cpu_supports("avx2") != 0;
    f16c = __builtin_cpu_supports("f16c") != 0;
    fma = __builtin_cpu_supports("fma") != 0;
    avx512f = __builtin_cpu_supports("avx512f") != 0;
    avx512bw = __builtin_cpu_supports("avx512bw") != 0;
    avx512vl = __builtin_cpu_supports("avx512vl") != 0;
    avx512dq = __builtin_cpu_supports("avx512dq") != 0;
#endif
  }
};

const CpuFeatures& features() noexcept {
  static const CpuFeatures f;
  return f;
}

}  // namespace

bool cpu_has_avx() noexcept { return features().avx; }
bool cpu_has_avx2() noexcept { return features().avx2; }
bool cpu_has_f16c() noexcept { return features().f16c; }
bool cpu_has_fma() noexcept { return features().fma; }
bool cpu_has_avx512f() noexcept { return features().avx512f; }
bool cpu_has_avx512bw() noexcept { return features().avx512bw; }
bool cpu_has_avx512vl() noexcept { return features().avx512vl; }
bool cpu_has_avx512dq() noexcept { return features().avx512dq; }

}  // namespace dnnfi::numeric
