// Dispatch layer for the batch Half <-> float conversions. This TU is
// compiled without SIMD flags; the wide implementations live in
// simd_convert_f16c.cpp (compiled with -mavx -mf16c) and are only entered
// after a runtime CPUID check, so the binary runs on any x86-64.
#include "dnnfi/numeric/simd_convert.h"

#include "dnnfi/numeric/cpu.h"

namespace dnnfi::numeric {

#if defined(DNNFI_ENABLE_F16C)
namespace detail {
void half_to_float_wide(const std::uint16_t* src, float* dst, std::size_t n);
void float_to_half_wide(const float* src, std::uint16_t* dst, std::size_t n);
}  // namespace detail
#endif

void half_to_float_n(const Half* src, float* dst, std::size_t n) {
#if defined(DNNFI_ENABLE_F16C)
  if (cpu_has_f16c() && cpu_has_avx()) {
    detail::half_to_float_wide(reinterpret_cast<const std::uint16_t*>(src),
                               dst, n);
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) dst[i] = static_cast<float>(src[i]);
}

void float_to_half_n(const float* src, Half* dst, std::size_t n) {
#if defined(DNNFI_ENABLE_F16C)
  if (cpu_has_f16c() && cpu_has_avx()) {
    detail::float_to_half_wide(src, reinterpret_cast<std::uint16_t*>(dst), n);
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) dst[i] = Half(src[i]);
}

}  // namespace dnnfi::numeric
