// Hardware F16C conversion paths. This is the only numeric TU compiled with
// -mavx -mf16c (see src/CMakeLists.txt); every entry point below is reached
// only behind a runtime cpu_has_f16c() check, so binaries built with
// DNNFI_F16C=ON still run on CPUs without the instructions.
//
// Codegen-safety discipline: this TU defines out-of-line functions operating
// on raw scalars/pointers and deliberately instantiates no shared inline
// library functions, so the VEX-encoded code it emits can never be selected
// by the linker as the one COMDAT copy of a function other TUs call.
#if defined(DNNFI_ENABLE_F16C) && (defined(__x86_64__) || defined(__i386__))

#include <immintrin.h>

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace dnnfi::numeric {

namespace detail {

std::uint16_t float_to_half_bits_hw(float value) noexcept {
  return static_cast<std::uint16_t>(
      _cvtss_sh(value, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC));
}

float half_bits_to_float_hw(std::uint16_t h) noexcept { return _cvtsh_ss(h); }

void half_to_float_wide(const std::uint16_t* src, float* dst, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i h = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm256_storeu_ps(dst + i, _mm256_cvtph_ps(h));
  }
  for (; i < n; ++i) dst[i] = _cvtsh_ss(src[i]);
}

namespace {

// Canonical quiet-NaN bits for a float: sign | 0x7E00 (the library rule the
// software converter applies; VCVTPS2PH would truncate the payload instead).
inline std::uint16_t canonical_nan_bits(float v) noexcept {
  std::uint32_t fb;
  std::memcpy(&fb, &v, sizeof(fb));
  return static_cast<std::uint16_t>(((fb >> 16) & 0x8000U) | 0x7E00U);
}

}  // namespace

void float_to_half_wide(const float* src, std::uint16_t* dst, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(src + i);
    __m128i h =
        _mm256_cvtps_ph(v, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
    const int nan_mask =
        _mm256_movemask_ps(_mm256_cmp_ps(v, v, _CMP_UNORD_Q));
    if (nan_mask != 0) {
      alignas(32) float fv[8];
      alignas(16) std::uint16_t hb[8];
      _mm256_store_ps(fv, v);
      _mm_store_si128(reinterpret_cast<__m128i*>(hb), h);
      for (int l = 0; l < 8; ++l)
        if ((nan_mask >> l) & 1) hb[l] = canonical_nan_bits(fv[l]);
      h = _mm_load_si128(reinterpret_cast<const __m128i*>(hb));
    }
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), h);
  }
  for (; i < n; ++i) {
    const float v = src[i];
    dst[i] = (v != v) ? canonical_nan_bits(v)
                      : static_cast<std::uint16_t>(_cvtss_sh(
                            v, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC));
  }
}

}  // namespace detail

}  // namespace dnnfi::numeric

#endif  // DNNFI_ENABLE_F16C && x86
