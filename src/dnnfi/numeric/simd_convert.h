// Batch Half <-> float conversions with a runtime-dispatched wide path
// (AVX+F16C: 8 lanes per VCVTPH2PS/VCVTPS2PH). Bit-identical to converting
// element-wise through Half — including the canonical quiet-NaN rule on the
// float -> half direction — so callers can swap these in anywhere without
// changing results. tensor::convert routes the FLOAT16 <-> FLOAT pairs here.
#pragma once

#include <cstddef>

#include "dnnfi/numeric/half.h"

namespace dnnfi::numeric {

/// dst[i] = float(src[i]) for i in [0, n).
void half_to_float_n(const Half* src, float* dst, std::size_t n);

/// dst[i] = Half(src[i]) for i in [0, n), NaNs canonicalized to the
/// library's fixed quiet payload (sign | 0x7E00).
void float_to_half_n(const float* src, Half* dst, std::size_t n);

}  // namespace dnnfi::numeric
