// Uniform compile-time interface over the six datapath types of the paper
// (Table 3): DOUBLE, FLOAT, FLOAT16, 32b_rb26, 32b_rb10, 16b_rb10. The fault
// injector, the FIT model, and the bit-position analysis all speak through
// numeric_traits so they cannot disagree about widths or bit layouts.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <type_traits>

#include "dnnfi/common/expects.h"
#include "dnnfi/numeric/fixed.h"
#include "dnnfi/numeric/half.h"

namespace dnnfi::numeric {

template <typename T>
struct numeric_traits;

template <>
struct numeric_traits<double> {
  using bits_type = std::uint64_t;
  static constexpr int width = 64;
  static constexpr bool is_floating = true;
  static constexpr const char* name = "DOUBLE";
  /// Bit indices [lo, hi) of the exponent field (bit 0 = LSB).
  static constexpr int exponent_lo = 52, exponent_hi = 63;
  static constexpr bits_type to_bits(double v) noexcept {
    return std::bit_cast<bits_type>(v);
  }
  static constexpr double from_bits(bits_type b) noexcept {
    return std::bit_cast<double>(b);
  }
  static constexpr double from_double(double v) noexcept { return v; }
  static constexpr double to_double(double v) noexcept { return v; }
  static constexpr double max_magnitude() noexcept {
    return std::numeric_limits<double>::max();
  }
  static bool is_finite(double v) noexcept { return std::isfinite(v); }
};

template <>
struct numeric_traits<float> {
  using bits_type = std::uint32_t;
  static constexpr int width = 32;
  static constexpr bool is_floating = true;
  static constexpr const char* name = "FLOAT";
  static constexpr int exponent_lo = 23, exponent_hi = 31;
  static constexpr bits_type to_bits(float v) noexcept {
    return std::bit_cast<bits_type>(v);
  }
  static constexpr float from_bits(bits_type b) noexcept {
    return std::bit_cast<float>(b);
  }
  static constexpr float from_double(double v) noexcept {
    return static_cast<float>(v);
  }
  static constexpr double to_double(float v) noexcept {
    return static_cast<double>(v);
  }
  static constexpr double max_magnitude() noexcept {
    return static_cast<double>(std::numeric_limits<float>::max());
  }
  static bool is_finite(float v) noexcept { return std::isfinite(v); }
};

template <>
struct numeric_traits<Half> {
  using bits_type = std::uint16_t;
  static constexpr int width = 16;
  static constexpr bool is_floating = true;
  static constexpr const char* name = "FLOAT16";
  static constexpr int exponent_lo = 10, exponent_hi = 15;
  static constexpr bits_type to_bits(Half v) noexcept { return v.bits(); }
  static constexpr Half from_bits(bits_type b) noexcept {
    return Half::from_bits(b);
  }
  static constexpr Half from_double(double v) noexcept { return Half(v); }
  static constexpr double to_double(Half v) noexcept {
    return static_cast<double>(v);
  }
  static constexpr double max_magnitude() noexcept { return 65504.0; }
  static bool is_finite(Half v) noexcept { return !v.is_nan() && !v.is_inf(); }
};

template <int W, int F>
struct numeric_traits<Fixed<W, F>> {
  using T = Fixed<W, F>;
  using bits_type = typename T::bits_type;
  static constexpr int width = W;
  static constexpr bool is_floating = false;
  static constexpr const char* name =
      (W == 16 && F == 10)   ? "16b_rb10"
      : (W == 32 && F == 10) ? "32b_rb10"
      : (W == 32 && F == 26) ? "32b_rb26"
                             : "fixed";
  /// For fixed point, the "vulnerable" field is the integer part + sign:
  /// bits [F, W). Exposed under the same name for uniform reporting.
  static constexpr int exponent_lo = F, exponent_hi = W;
  static constexpr bits_type to_bits(T v) noexcept { return v.bits(); }
  static constexpr T from_bits(bits_type b) noexcept { return T::from_bits(b); }
  static constexpr T from_double(double v) noexcept { return T(v); }
  static constexpr double to_double(T v) noexcept {
    return static_cast<double>(v);
  }
  static constexpr double max_magnitude() noexcept {
    return static_cast<double>(T::max_value());
  }
  static bool is_finite(T) noexcept { return true; }
};

/// Flips bit `bit` (0 = LSB) of `v` and returns the corrupted value. This is
/// the single-event-upset primitive every fault site reduces to.
template <typename T>
constexpr T flip_bit(T v, int bit) noexcept(false) {
  using Tr = numeric_traits<T>;
  DNNFI_EXPECTS(bit >= 0 && bit < Tr::width);
  using B = typename Tr::bits_type;
  const B mask = static_cast<B>(static_cast<B>(1) << bit);
  return Tr::from_bits(static_cast<B>(Tr::to_bits(v) ^ mask));
}

/// Flips a burst of `len` adjacent bits starting at `bit` (multi-bit upset
/// from a single particle strike; len = 1 is the paper's SEU model). Bits
/// past the word's MSB are dropped.
template <typename T>
constexpr T flip_burst(T v, int bit, int len) {
  using Tr = numeric_traits<T>;
  DNNFI_EXPECTS(bit >= 0 && bit < Tr::width && len >= 1);
  using B = typename Tr::bits_type;
  B mask = 0;
  for (int i = 0; i < len && bit + i < Tr::width; ++i)
    mask = static_cast<B>(mask | (static_cast<B>(1) << (bit + i)));
  return Tr::from_bits(static_cast<B>(Tr::to_bits(v) ^ mask));
}

/// True when flipping `bit` of `v` turns a 0 into a 1 (the direction the
/// paper finds more SDC-prone for high-order bits).
template <typename T>
constexpr bool flip_is_zero_to_one(T v, int bit) {
  using Tr = numeric_traits<T>;
  DNNFI_EXPECTS(bit >= 0 && bit < Tr::width);
  return ((Tr::to_bits(v) >> bit) & 1U) == 0;
}

}  // namespace dnnfi::numeric
