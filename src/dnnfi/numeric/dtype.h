// Runtime data-type tags and a static dispatcher. Benches iterate over the
// paper's six types at runtime; dispatch_dtype turns the tag back into a
// compile-time type so the whole inference path stays templated (no boxed
// values, no virtual arithmetic).
#pragma once

#include <array>
#include <string_view>

#include "dnnfi/common/expects.h"
#include "dnnfi/numeric/traits.h"

namespace dnnfi::numeric {

/// The six datapath types of the paper's Table 3.
enum class DType {
  kDouble,   // 64-bit IEEE-754
  kFloat,    // 32-bit IEEE-754
  kFloat16,  // 16-bit IEEE-754
  kFx32r26,  // 32-bit fixed, radix point 26 ("32b_rb26")
  kFx32r10,  // 32-bit fixed, radix point 10 ("32b_rb10")
  kFx16r10,  // 16-bit fixed, radix point 10 ("16b_rb10")
};

inline constexpr std::array<DType, 6> kAllDTypes = {
    DType::kDouble,  DType::kFloat,   DType::kFloat16,
    DType::kFx32r26, DType::kFx32r10, DType::kFx16r10,
};

/// Types with symptom-friendly redundant dynamic range (paper §6.2 evaluates
/// SED on FP types plus 32b_rb10; 16b_rb10/32b_rb26 lack strong symptoms).
inline constexpr std::array<DType, 4> kSymptomaticDTypes = {
    DType::kDouble, DType::kFloat, DType::kFloat16, DType::kFx32r10};

constexpr std::string_view dtype_name(DType t) {
  switch (t) {
    case DType::kDouble:  return "DOUBLE";
    case DType::kFloat:   return "FLOAT";
    case DType::kFloat16: return "FLOAT16";
    case DType::kFx32r26: return "32b_rb26";
    case DType::kFx32r10: return "32b_rb10";
    case DType::kFx16r10: return "16b_rb10";
  }
  DNNFI_EXPECTS(false);
  return {};
}

constexpr int dtype_width(DType t) {
  switch (t) {
    case DType::kDouble:  return 64;
    case DType::kFloat:   return 32;
    case DType::kFloat16: return 16;
    case DType::kFx32r26: return 32;
    case DType::kFx32r10: return 32;
    case DType::kFx16r10: return 16;
  }
  DNNFI_EXPECTS(false);
  return 0;
}

constexpr bool dtype_is_floating(DType t) {
  return t == DType::kDouble || t == DType::kFloat || t == DType::kFloat16;
}

/// Calls `fn.template operator()<T>()` with T bound to the static type of
/// `tag`. Returns whatever fn returns.
template <typename Fn>
decltype(auto) dispatch_dtype(DType tag, Fn&& fn) {
  switch (tag) {
    case DType::kDouble:  return fn.template operator()<double>();
    case DType::kFloat:   return fn.template operator()<float>();
    case DType::kFloat16: return fn.template operator()<Half>();
    case DType::kFx32r26: return fn.template operator()<Fx32r26>();
    case DType::kFx32r10: return fn.template operator()<Fx32r10>();
    case DType::kFx16r10: return fn.template operator()<Fx16r10>();
  }
  DNNFI_EXPECTS(false);
  return fn.template operator()<double>();
}

/// Flips bit `bit` of `value` as stored in the (usually narrower) `storage`
/// format and returns the value read back: encode -> upset -> decode. This
/// models reduced-precision buffer storage with a wider datapath (the
/// Proteus-style protocol the paper defers to future work): the upset
/// strikes the stored representation, not the datapath word.
inline double flip_bit_in_storage(double value, DType storage, int bit) {
  return dispatch_dtype(storage, [&]<typename S>() {
    using Tr = numeric_traits<S>;
    return Tr::to_double(flip_bit(Tr::from_double(value), bit));
  });
}

/// Compile-time tag for a given static type.
template <typename T>
constexpr DType dtype_of() {
  if constexpr (std::is_same_v<T, double>) return DType::kDouble;
  else if constexpr (std::is_same_v<T, float>) return DType::kFloat;
  else if constexpr (std::is_same_v<T, Half>) return DType::kFloat16;
  else if constexpr (std::is_same_v<T, Fx32r26>) return DType::kFx32r26;
  else if constexpr (std::is_same_v<T, Fx32r10>) return DType::kFx32r10;
  else if constexpr (std::is_same_v<T, Fx16r10>) return DType::kFx16r10;
  else static_assert(!sizeof(T), "unsupported dtype");
}

}  // namespace dnnfi::numeric
