// Two's-complement saturating fixed-point arithmetic, Q-format `Fixed<W,F>`:
// W total bits (1 sign, W-1-F integer, F fraction). These are the FxP types
// of the paper's Table 3 — 16b_rb10 = Fixed<16,10>, 32b_rb10 = Fixed<32,10>,
// 32b_rb26 = Fixed<32,26>. "Any value that exceeds the maximum or minimum
// dynamic value range will be saturated" (paper §4.5); we saturate on
// conversion and on every arithmetic result, as a hardware MAC unit would.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <type_traits>

namespace dnnfi::numeric {

namespace detail {
template <int W>
struct fixed_storage;
template <>
struct fixed_storage<16> {
  using signed_type = std::int16_t;
  using unsigned_type = std::uint16_t;
};
template <>
struct fixed_storage<32> {
  using signed_type = std::int32_t;
  using unsigned_type = std::uint32_t;
};
}  // namespace detail

/// Saturating Q-format fixed-point number with W total bits and F fraction
/// bits. Trivially copyable; exactly W bits of state.
template <int W, int F>
class Fixed {
  static_assert(W == 16 || W == 32, "supported widths: 16, 32");
  static_assert(F > 0 && F < W - 1, "fraction bits must leave sign+integer");

 public:
  using raw_type = typename detail::fixed_storage<W>::signed_type;
  using bits_type = typename detail::fixed_storage<W>::unsigned_type;

  static constexpr int kWidth = W;
  static constexpr int kFraction = F;
  static constexpr int kInteger = W - 1 - F;  // integer bits (excl. sign)
  static constexpr double kScale = static_cast<double>(static_cast<std::int64_t>(1) << F);
  static constexpr raw_type kRawMax = std::numeric_limits<raw_type>::max();
  static constexpr raw_type kRawMin = std::numeric_limits<raw_type>::min();

  constexpr Fixed() noexcept = default;
  constexpr Fixed(double v) noexcept : raw_(quantize(v)) {}
  constexpr Fixed(float v) noexcept : Fixed(static_cast<double>(v)) {}
  constexpr Fixed(int v) noexcept : Fixed(static_cast<double>(v)) {}

  /// Reinterprets raw two's-complement storage as a Fixed.
  static constexpr Fixed from_raw(raw_type raw) noexcept {
    Fixed f;
    f.raw_ = raw;
    return f;
  }
  static constexpr Fixed from_bits(bits_type bits) noexcept {
    return from_raw(static_cast<raw_type>(bits));
  }

  constexpr raw_type raw() const noexcept { return raw_; }
  constexpr bits_type bits() const noexcept {
    return static_cast<bits_type>(raw_);
  }

  constexpr operator double() const noexcept {
    return static_cast<double>(raw_) / kScale;
  }
  constexpr explicit operator float() const noexcept {
    return static_cast<float>(static_cast<double>(*this));
  }

  /// Maximum / minimum representable values.
  static constexpr Fixed max_value() noexcept { return from_raw(kRawMax); }
  static constexpr Fixed min_value() noexcept { return from_raw(kRawMin); }

  friend constexpr Fixed operator+(Fixed a, Fixed b) noexcept {
    return from_raw(saturate(static_cast<std::int64_t>(a.raw_) +
                             static_cast<std::int64_t>(b.raw_)));
  }
  friend constexpr Fixed operator-(Fixed a, Fixed b) noexcept {
    return from_raw(saturate(static_cast<std::int64_t>(a.raw_) -
                             static_cast<std::int64_t>(b.raw_)));
  }
  friend constexpr Fixed operator-(Fixed a) noexcept {
    return from_raw(saturate(-static_cast<std::int64_t>(a.raw_)));
  }
  /// Fixed-point multiply: full-width product, then round-half-up shift by F
  /// and saturate — the datapath a multiplier + truncation stage implements.
  friend constexpr Fixed operator*(Fixed a, Fixed b) noexcept {
    const std::int64_t p =
        static_cast<std::int64_t>(a.raw_) * static_cast<std::int64_t>(b.raw_);
    // Arithmetic shift with rounding toward nearest (+half before shift).
    const std::int64_t rounded = (p + (static_cast<std::int64_t>(1) << (F - 1))) >> F;
    return from_raw(saturate(rounded));
  }
  friend constexpr Fixed operator/(Fixed a, Fixed b) noexcept {
    if (b.raw_ == 0) return a.raw_ >= 0 ? max_value() : min_value();
    const std::int64_t num = static_cast<std::int64_t>(a.raw_) << F;
    return from_raw(saturate(num / b.raw_));
  }
  constexpr Fixed& operator+=(Fixed o) noexcept { return *this = *this + o; }
  constexpr Fixed& operator-=(Fixed o) noexcept { return *this = *this - o; }
  constexpr Fixed& operator*=(Fixed o) noexcept { return *this = *this * o; }

  friend constexpr bool operator==(Fixed a, Fixed b) noexcept {
    return a.raw_ == b.raw_;
  }
  friend constexpr bool operator<(Fixed a, Fixed b) noexcept {
    return a.raw_ < b.raw_;
  }
  friend constexpr bool operator>(Fixed a, Fixed b) noexcept { return b < a; }
  friend constexpr bool operator<=(Fixed a, Fixed b) noexcept { return !(b < a); }
  friend constexpr bool operator>=(Fixed a, Fixed b) noexcept { return !(a < b); }

 private:
  static constexpr raw_type saturate(std::int64_t v) noexcept {
    if (v > static_cast<std::int64_t>(kRawMax)) return kRawMax;
    if (v < static_cast<std::int64_t>(kRawMin)) return kRawMin;
    return static_cast<raw_type>(v);
  }

  static constexpr raw_type quantize(double v) noexcept {
    if (std::isnan(v)) return 0;
    const double scaled = v * kScale;
    if (scaled >= static_cast<double>(kRawMax)) return kRawMax;
    if (scaled <= static_cast<double>(kRawMin)) return kRawMin;
    // Round half away from zero, like std::lround.
    return static_cast<raw_type>(scaled >= 0.0 ? scaled + 0.5 : scaled - 0.5);
  }

  raw_type raw_ = 0;
};

/// The paper's three fixed-point configurations (Table 3).
using Fx16r10 = Fixed<16, 10>;  // 1 sign, 5 int, 10 frac  ("16b_rb10")
using Fx32r10 = Fixed<32, 10>;  // 1 sign, 21 int, 10 frac ("32b_rb10")
using Fx32r26 = Fixed<32, 26>;  // 1 sign, 5 int, 26 frac  ("32b_rb26")

static_assert(sizeof(Fx16r10) == 2);
static_assert(sizeof(Fx32r10) == 4);

}  // namespace dnnfi::numeric
