// One-time CPUID feature probes. The kernel registry (dnn/kernels) and the
// Half conversion dispatch consult these to pick a hardware path at runtime,
// so a single binary runs on any x86-64 and merely gets faster on CPUs that
// have the wider instructions. Each probe is cached after the first call.
#pragma once

namespace dnnfi::numeric {

bool cpu_has_avx() noexcept;
bool cpu_has_avx2() noexcept;
bool cpu_has_f16c() noexcept;
bool cpu_has_fma() noexcept;

}  // namespace dnnfi::numeric
