// One-time CPUID feature probes. The kernel registry (dnn/kernels) and the
// Half conversion dispatch consult these to pick a hardware path at runtime,
// so a single binary runs on any x86-64 and merely gets faster on CPUs that
// have the wider instructions. Each probe is cached after the first call.
#pragma once

namespace dnnfi::numeric {

bool cpu_has_avx() noexcept;
bool cpu_has_avx2() noexcept;
bool cpu_has_f16c() noexcept;
bool cpu_has_fma() noexcept;
bool cpu_has_avx512f() noexcept;
bool cpu_has_avx512bw() noexcept;
bool cpu_has_avx512vl() noexcept;
bool cpu_has_avx512dq() noexcept;

/// The feature bundle the avx512 kernel set needs: foundation zmm arithmetic
/// (F), 16-bit mask blends for the Half path (BW + VL), and float<->mask
/// conversions (DQ). Skylake-SP and every later AVX-512 server part has all
/// four; Knights Landing (F without BW/VL/DQ) does not and falls back.
inline bool cpu_has_avx512_kernel_bundle() noexcept {
  return cpu_has_avx512f() && cpu_has_avx512bw() && cpu_has_avx512vl() &&
         cpu_has_avx512dq();
}

}  // namespace dnnfi::numeric
