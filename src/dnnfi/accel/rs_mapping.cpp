#include "dnnfi/accel/rs_mapping.h"

#include <algorithm>
#include <cmath>

#include "dnnfi/common/expects.h"

namespace dnnfi::accel {

namespace {

/// RS maps one PE set per (kernel-row, output-row) pair: filter row r of
/// the kernel stays in PE row r (weight reuse in the filter SRAM), an
/// ifmap row slides diagonally (image reuse in the Img REG), and psums
/// accumulate vertically (output reuse in the PSum REG).
RsMapping map_conv(const accel::LayerFootprint& fp, const dnn::LayerSpec& ls,
                   std::size_t array_pes) {
  RsMapping m;
  m.layer_index = fp.layer_index;
  m.block = fp.block;
  m.is_conv = true;

  m.pe_set_height = ls.kernel;        // kernel rows
  m.pe_set_width = fp.out_shape.h;    // ofmap rows
  const std::size_t set_size = m.pe_set_height * m.pe_set_width;
  DNNFI_EXPECTS(set_size > 0);

  // How many complete PE sets fit at once; at least one set runs even if
  // it exceeds the array (folded over multiple passes).
  m.sets_per_pass = std::max<std::size_t>(1, array_pes / set_size);

  // Work items: one PE set instance per (output channel, input channel)
  // pair — each computes the 1-D row convolutions of that pair.
  const std::size_t set_instances = fp.out_shape.c * fp.in_shape.c;
  m.passes = (set_instances + m.sets_per_pass - 1) / m.sets_per_pass;
  const std::size_t sets_last_pass =
      set_instances - (m.passes - 1) * m.sets_per_pass;

  m.active_pes = std::min(array_pes, m.sets_per_pass * set_size);

  // Each PE in a set performs kernel-width MACs per output element of its
  // row: total MACs of the layer spread over active PEs per pass.
  const std::size_t macs_per_set = fp.out_shape.w * ls.kernel * ls.kernel *
                                   1;  // per (co, ci) pair, per ofmap row set
  // Cycles: each pass runs its slowest PE set; sets are identical, so a
  // pass takes macs_per_set * rows... PEs within a set work in parallel on
  // different (kernel-row, ofmap-row); each PE does out_w * kernel MACs.
  const std::size_t pe_macs = fp.out_shape.w * ls.kernel;
  m.cycles = m.passes * pe_macs;

  const std::size_t total_pe_cycles = m.cycles * array_pes;
  const double active_cycles =
      static_cast<double>((m.passes - 1) * m.sets_per_pass * set_size +
                          sets_last_pass * set_size) *
      static_cast<double>(pe_macs);
  m.utilization = active_cycles / static_cast<double>(total_pe_cycles);

  // Compulsory DRAM traffic: each ifmap/filter/ofmap word moves once.
  m.dram_reads = fp.input_elems + fp.weight_elems;
  m.dram_writes = fp.output_elems;
  // GB: ifmaps staged once, read once per consuming PE set column
  // (image reuse across output channels happens in the array, not the GB);
  // psums spill per pass beyond the first.
  m.gb_accesses = fp.input_elems * fp.out_shape.c  // ifmap broadcast reads
                  + fp.output_elems * (m.passes > 1 ? 2 : 1);
  // Filter SRAM: each weight read once per ofmap position that reuses it.
  m.sram_accesses = fp.weight_elems * fp.out_shape.h * fp.out_shape.w /
                    std::max<std::size_t>(1, ls.stride * ls.stride);
  // Registers: one img-REG read + one psum-REG update per MAC.
  m.reg_accesses = 2 * fp.macs;
  return m;
}

/// FC layers map as 1x1 "convolutions": no spatial reuse, weights stream.
RsMapping map_fc(const accel::LayerFootprint& fp, std::size_t array_pes) {
  RsMapping m;
  m.layer_index = fp.layer_index;
  m.block = fp.block;
  m.is_conv = false;
  m.pe_set_height = 1;
  m.pe_set_width = 1;
  m.sets_per_pass = array_pes;
  const std::size_t outputs = fp.output_elems;
  m.passes = (outputs + array_pes - 1) / array_pes;
  m.active_pes = std::min(array_pes, outputs);
  const std::size_t pe_macs = fp.steps;  // one dot product per PE
  m.cycles = m.passes * pe_macs;
  m.utilization =
      static_cast<double>(fp.macs) /
      (static_cast<double>(m.cycles) * static_cast<double>(array_pes));
  m.dram_reads = fp.input_elems + fp.weight_elems;
  m.dram_writes = fp.output_elems;
  m.gb_accesses = fp.input_elems * m.passes + fp.output_elems;
  m.sram_accesses = fp.weight_elems;  // each weight used exactly once
  m.reg_accesses = 2 * fp.macs;
  return m;
}

}  // namespace

std::vector<RsMapping> map_network(const dnn::NetworkSpec& spec,
                                   std::size_t array_pes) {
  DNNFI_EXPECTS(array_pes > 0);
  const auto footprints = analyze(spec);
  std::vector<RsMapping> out;
  out.reserve(footprints.size());
  for (const auto& fp : footprints) {
    const dnn::LayerSpec& ls = spec.layers[fp.layer_index];
    out.push_back(fp.is_conv ? map_conv(fp, ls, array_pes)
                             : map_fc(fp, array_pes));
  }
  return out;
}

RsSummary summarize(const std::vector<RsMapping>& mappings) {
  DNNFI_EXPECTS(!mappings.empty());
  RsSummary s;
  double util_weighted = 0;
  double cycles_total = 0;
  for (const auto& m : mappings) {
    s.total_cycles += m.cycles;
    util_weighted += m.utilization * static_cast<double>(m.cycles);
    cycles_total += static_cast<double>(m.cycles);
    s.dram_traffic += m.dram_reads + m.dram_writes;
    s.gb_traffic += m.gb_accesses;
    s.sram_traffic += m.sram_accesses;
    s.reg_traffic += m.reg_accesses;
  }
  s.avg_utilization = util_weighted / cycles_total;
  return s;
}

}  // namespace dnnfi::accel
