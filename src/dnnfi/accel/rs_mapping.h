// First-order row-stationary (RS) mapping model of an Eyeriss-class PE
// array: how a conv/FC layer is scheduled onto the array, with PE
// utilization, cycle estimates, and per-level access counts (DRAM, Global
// Buffer, inter-PE/SRAM, register). Follows the RS dataflow of Chen et
// al. (ISCA'16) at the granularity the reliability analysis needs:
// residency times and reuse factors per storage structure — the same
// quantities the FIT occupancy model and the fault sampler weight by.
//
// This is a performance/traffic model, not a cycle-accurate simulator: it
// assumes perfect double-buffering (compute-bound PEs) and reports
// compulsory traffic given RS reuse, which is the upper bound on locality.
#pragma once

#include <vector>

#include "dnnfi/accel/dataflow.h"

namespace dnnfi::accel {

/// RS schedule of one layer on a PE array.
struct RsMapping {
  std::size_t layer_index = 0;  ///< index into NetworkSpec::layers
  int block = 0;
  bool is_conv = false;

  // Spatial mapping: a PE set is a (kernel-rows x output-rows) rectangle;
  // multiple sets tile the physical array.
  std::size_t pe_set_height = 0;   ///< kernel rows mapped vertically
  std::size_t pe_set_width = 0;    ///< output rows mapped horizontally
  std::size_t sets_per_pass = 0;   ///< PE sets fitting the array at once
  std::size_t active_pes = 0;      ///< PEs doing work in a full pass
  std::size_t passes = 0;          ///< sequential passes over the array

  double utilization = 0;          ///< active PE-cycles / total PE-cycles
  std::size_t cycles = 0;          ///< MAC cycles assuming 1 MAC/PE/cycle

  // Compulsory access counts (words) per storage level.
  std::size_t dram_reads = 0;      ///< ifmap + filter words from DRAM
  std::size_t dram_writes = 0;     ///< ofmap words to DRAM
  std::size_t gb_accesses = 0;     ///< Global Buffer reads+writes
  std::size_t sram_accesses = 0;   ///< per-PE filter SRAM reads
  std::size_t reg_accesses = 0;    ///< img/psum register file accesses
};

/// Maps every MAC layer of a topology onto `array_pes` processing engines.
std::vector<RsMapping> map_network(const dnn::NetworkSpec& spec,
                                   std::size_t array_pes);

/// Totals across a mapped network.
struct RsSummary {
  std::size_t total_cycles = 0;
  double avg_utilization = 0;      ///< MAC-weighted
  std::size_t dram_traffic = 0;    ///< words
  std::size_t gb_traffic = 0;
  std::size_t sram_traffic = 0;
  std::size_t reg_traffic = 0;
};
RsSummary summarize(const std::vector<RsMapping>& mappings);

}  // namespace dnnfi::accel
