#include "dnnfi/accel/accelerator.h"

#include <charconv>

namespace dnnfi::accel {

namespace {

/// Output channel owning flat output element `e` of layer `fp`.
std::size_t channel_of(const LayerFootprint& fp, std::size_t e) {
  if (!fp.is_conv) return e;
  return e / (fp.out_shape.h * fp.out_shape.w);
}

dnn::MacSite to_mac_site(DatapathLatch l) {
  switch (l) {
    case DatapathLatch::kOperandAct:    return dnn::MacSite::kOperandAct;
    case DatapathLatch::kOperandWeight: return dnn::MacSite::kOperandWeight;
    case DatapathLatch::kProduct:       return dnn::MacSite::kProduct;
    case DatapathLatch::kAccumulator:   return dnn::MacSite::kAccumulator;
  }
  DNNFI_EXPECTS(false);
  return dnn::MacSite::kAccumulator;
}

}  // namespace

std::string AcceleratorConfig::to_string() const {
  if (is_eyeriss()) return "eyeriss";
  return "systolic:" + std::to_string(rows) + "x" + std::to_string(cols);
}

std::optional<AcceleratorConfig> parse_accelerator(std::string_view s) {
  if (s == "eyeriss") return AcceleratorConfig{};
  constexpr std::string_view prefix = "systolic:";
  if (s.substr(0, prefix.size()) != prefix) return std::nullopt;
  s.remove_prefix(prefix.size());
  const std::size_t x = s.find('x');
  if (x == std::string_view::npos) return std::nullopt;
  AcceleratorConfig cfg;
  cfg.kind = AcceleratorKind::kSystolic;
  const std::string_view r = s.substr(0, x), c = s.substr(x + 1);
  auto [rp, rec] = std::from_chars(r.data(), r.data() + r.size(), cfg.rows);
  auto [cp, cec] = std::from_chars(c.data(), c.data() + c.size(), cfg.cols);
  if (rec != std::errc{} || cec != std::errc{} || rp != r.data() + r.size() ||
      cp != c.data() + c.size() || cfg.rows == 0 || cfg.cols == 0)
    return std::nullopt;
  return cfg;
}

// ---------------------------------------------------------------- Eyeriss

std::span<const SiteClass> EyerissModel::site_classes() const noexcept {
  return kAllSiteClasses;
}

std::size_t EyerissModel::num_pes() const noexcept {
  return eyeriss_16nm().num_pes;
}

SiteCoords EyerissModel::sample_site(SiteClass cls, const LayerFootprint& fp,
                                     const dnn::LayerSpec& ls, Rng& rng,
                                     std::optional<DatapathLatch> fixed_latch)
    const {
  // Draw order is the seed sampler's, verbatim: trial RNG streams (and thus
  // every campaign artifact) are bit-identical to the pre-interface code.
  SiteCoords c;
  c.cls = cls;
  switch (cls) {
    case SiteClass::kDatapathLatch: {
      c.latch = fixed_latch ? *fixed_latch
                            : kAllDatapathLatches[rng.below(
                                  kAllDatapathLatches.size())];
      c.element = rng.below(fp.output_elems);
      c.step = rng.below(fp.steps);
      break;
    }
    case SiteClass::kPsumReg: {
      c.element = rng.below(fp.output_elems);
      c.step = rng.below(fp.steps);
      break;
    }
    case SiteClass::kFilterSram: {
      c.element = rng.below(fp.weight_elems);
      break;
    }
    case SiteClass::kGlobalBuffer: {
      c.element = rng.below(fp.input_elems);
      break;
    }
    case SiteClass::kImgReg: {
      c.element = rng.below(fp.input_elems);
      if (fp.is_conv) {
        c.out_channel = rng.below(fp.out_shape.c);
        // Output rows whose receptive field covers the faulty input row iy:
        // oy*stride + ky - pad == iy for some ky in [0, k).
        const std::size_t iy = (c.element / fp.in_shape.w) % fp.in_shape.h;
        std::vector<std::size_t> rows;
        for (std::size_t oy = 0; oy < fp.out_shape.h; ++oy) {
          const auto lo = static_cast<std::ptrdiff_t>(oy * ls.stride) -
                          static_cast<std::ptrdiff_t>(ls.pad);
          const auto hi = lo + static_cast<std::ptrdiff_t>(ls.kernel) - 1;
          const auto y = static_cast<std::ptrdiff_t>(iy);
          if (y >= lo && y <= hi) rows.push_back(oy);
        }
        DNNFI_EXPECTS(!rows.empty());
        c.out_row = rows[rng.below(rows.size())];
      } else {
        // FC: the staged input feeds one output neuron per REG residency.
        c.out_channel = rng.below(fp.output_elems);
        c.out_row = 0;
      }
      break;
    }
  }
  return c;
}

void EyerissModel::lower_site(const SiteCoords& c, const fault::FaultOp& op,
                              const std::optional<numeric::DType>& storage,
                              dnn::AppliedFault& out) const {
  switch (c.cls) {
    case SiteClass::kDatapathLatch: {
      dnn::MacFault m;
      m.out_index = c.element;
      m.step = c.step;
      m.site = to_mac_site(c.latch);
      m.op = op;
      out.faults.mac = m;
      break;
    }
    case SiteClass::kPsumReg: {
      // A PSum-REG upset is consumed by the next accumulation of its output
      // element: identical semantics to an accumulator-latch flip.
      dnn::MacFault m;
      m.out_index = c.element;
      m.step = c.step;
      m.site = dnn::MacSite::kAccumulator;
      m.op = op;
      out.faults.mac = m;
      break;
    }
    case SiteClass::kFilterSram: {
      dnn::WeightFault w;
      w.weight_index = c.element;
      w.op = op;
      w.storage = storage;
      out.faults.weight = w;
      break;
    }
    case SiteClass::kImgReg: {
      dnn::ScopedInputFault s;
      s.input_index = c.element;
      s.out_channel = c.out_channel;
      s.out_row = c.out_row;
      s.op = op;
      s.storage = storage;
      out.faults.scoped_input = s;
      break;
    }
    case SiteClass::kGlobalBuffer: {
      out.flip_layer_input = true;
      out.input_index = c.element;
      out.input_op = op;
      out.input_storage = storage;
      break;
    }
  }
}

// ----------------------------------------------------- Weight-stationary

namespace {
inline constexpr std::array<SiteClass, 4> kSystolicSiteClasses = {
    SiteClass::kDatapathLatch, SiteClass::kGlobalBuffer,
    SiteClass::kFilterSram, SiteClass::kPsumReg};
}  // namespace

SystolicArray::SystolicArray(AcceleratorConfig cfg) : AcceleratorModel(cfg) {
  DNNFI_EXPECTS(cfg.kind == AcceleratorKind::kSystolic && cfg.rows > 0 &&
                cfg.cols > 0);
}

std::span<const SiteClass> SystolicArray::site_classes() const noexcept {
  return kSystolicSiteClasses;
}

std::size_t SystolicArray::num_pes() const noexcept {
  return config().rows * config().cols;
}

SiteCoords SystolicArray::sample_site(SiteClass cls, const LayerFootprint& fp,
                                      const dnn::LayerSpec& /*ls*/, Rng& rng,
                                      std::optional<DatapathLatch> fixed_latch)
    const {
  SiteCoords c;
  c.cls = cls;
  switch (cls) {
    case SiteClass::kDatapathLatch:
    case SiteClass::kPsumReg: {
      if (cls == SiteClass::kDatapathLatch)
        c.latch = fixed_latch ? *fixed_latch
                              : kAllDatapathLatches[rng.below(
                                    kAllDatapathLatches.size())];
      c.element = rng.below(fp.output_elems);
      c.step = rng.below(fp.steps);
      c.out_channel = channel_of(fp, c.element);
      c.pe_col = c.out_channel % config().cols;
      c.pe_row = c.step % config().rows;
      if (cls == SiteClass::kDatapathLatch &&
          c.latch == DatapathLatch::kOperandWeight) {
        // The weight operand latch is *stationary*: the corruption persists
        // for the whole tile, so the strike is on the (channel, step) weight
        // itself. Flat OIHW/row-major index = channel * steps + step.
        c.element = c.out_channel * fp.steps + c.step;
      }
      break;
    }
    case SiteClass::kFilterSram: {
      c.element = rng.below(fp.weight_elems);
      c.out_channel = c.element / fp.steps;
      c.pe_col = c.out_channel % config().cols;
      c.pe_row = (c.element % fp.steps) % config().rows;
      break;
    }
    case SiteClass::kGlobalBuffer: {
      c.element = rng.below(fp.input_elems);
      break;
    }
    case SiteClass::kImgReg:
      // No per-PE ifmap-row register in a weight-stationary array.
      DNNFI_EXPECTS(false);
      break;
  }
  return c;
}

void SystolicArray::lower_site(const SiteCoords& c, const fault::FaultOp& op,
                               const std::optional<numeric::DType>& storage,
                               dnn::AppliedFault& out) const {
  // Accumulator-latch and PSum-REG strikes share the column-propagation
  // lowering: the corrupt partial sum re-enters the column's adder chain.
  const auto column_fault = [&] {
    dnn::ColumnFault f;
    f.col = c.pe_col;
    f.cols = config().cols;
    f.first_out = c.element;
    f.step = c.step;
    f.op = op;
    return f;
  };
  switch (c.cls) {
    case SiteClass::kDatapathLatch: {
      if (c.latch == DatapathLatch::kOperandAct ||
          c.latch == DatapathLatch::kProduct) {
        // Consumed by exactly one MAC before being overwritten by the next
        // streaming step, like the Eyeriss datapath.
        dnn::MacFault m;
        m.out_index = c.element;
        m.step = c.step;
        m.site = to_mac_site(c.latch);
        m.op = op;
        out.faults.mac = m;
      } else if (c.latch == DatapathLatch::kOperandWeight) {
        // Stationary weight latch: sample_site already rewrote `element`
        // into the flat weight index of the resident (channel, step) weight.
        dnn::WeightFault w;
        w.weight_index = c.element;
        w.op = op;
        out.faults.weight = w;
      } else {
        out.faults.column = column_fault();
      }
      break;
    }
    case SiteClass::kPsumReg: {
      out.faults.column = column_fault();
      break;
    }
    case SiteClass::kFilterSram: {
      dnn::WeightFault w;
      w.weight_index = c.element;
      w.op = op;
      w.storage = storage;
      out.faults.weight = w;
      break;
    }
    case SiteClass::kGlobalBuffer: {
      out.flip_layer_input = true;
      out.input_index = c.element;
      out.input_op = op;
      out.input_storage = storage;
      break;
    }
    case SiteClass::kImgReg:
      DNNFI_EXPECTS(false);
      break;
  }
}

const AcceleratorModel& eyeriss_model() {
  static const EyerissModel model;
  return model;
}

std::unique_ptr<AcceleratorModel> make_accelerator(
    const AcceleratorConfig& cfg) {
  if (cfg.is_eyeriss()) return std::make_unique<EyerissModel>();
  return std::make_unique<SystolicArray>(cfg);
}

}  // namespace dnnfi::accel
