// Pluggable accelerator geometries. The paper studies one fixed geometry
// (a canonical PE datapath + an Eyeriss-style row-stationary buffer
// hierarchy); this interface lifts that inventory behind a virtual model so
// structurally different accelerators — here a TPU-style weight-stationary
// systolic array (arXiv 2405.15381) — plug into the same sampler, lowering,
// campaign, and FIT machinery.
//
// A geometry answers three questions:
//   1. which fault-site classes exist (`site_classes`),
//   2. how a uniform strike lands on a site (`sample_site` — RNG draws),
//   3. what layer-level fault the strike lowers to (`lower_site`).
// The Eyeriss model reproduces the seed behaviour bit-for-bit: identical RNG
// draw order, identical lowering. Campaigns on the default geometry are
// byte-identical to the pre-refactor code.
#pragma once

#include <array>
#include <cstddef>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "dnnfi/accel/dataflow.h"
#include "dnnfi/common/rng.h"
#include "dnnfi/dnn/network.h"
#include "dnnfi/fault/fault_op.h"

namespace dnnfi::accel {

/// Where the upset physically originates (paper §4.3: datapath latches and
/// buffers, inside and outside PEs). Geometry-independent taxonomy; each
/// model declares which classes it implements.
enum class SiteClass {
  kDatapathLatch,  ///< PE MAC latches (Fig 1b); read exactly once
  kGlobalBuffer,   ///< shared buffer ifmap word; reused by all consumers
  kFilterSram,     ///< per-PE weight word; reused across the whole fmap
  kImgReg,         ///< per-PE ifmap-row register; reused along one row
  kPsumReg,        ///< per-PE partial-sum register; read by next accumulate
};

inline constexpr std::array<SiteClass, 5> kAllSiteClasses = {
    SiteClass::kDatapathLatch, SiteClass::kGlobalBuffer,
    SiteClass::kFilterSram, SiteClass::kImgReg, SiteClass::kPsumReg};

inline constexpr std::array<SiteClass, 4> kBufferSiteClasses = {
    SiteClass::kGlobalBuffer, SiteClass::kFilterSram, SiteClass::kImgReg,
    SiteClass::kPsumReg};

constexpr const char* site_class_name(SiteClass c) {
  switch (c) {
    case SiteClass::kDatapathLatch: return "datapath";
    case SiteClass::kGlobalBuffer:  return "global-buffer";
    case SiteClass::kFilterSram:    return "filter-sram";
    case SiteClass::kImgReg:        return "img-reg";
    case SiteClass::kPsumReg:       return "psum-reg";
  }
  return "?";
}

/// Maps a buffer site class to the on-chip structure it models.
constexpr BufferKind buffer_of(SiteClass c) {
  switch (c) {
    case SiteClass::kGlobalBuffer: return BufferKind::kGlobalBuffer;
    case SiteClass::kFilterSram:   return BufferKind::kFilterSram;
    case SiteClass::kImgReg:       return BufferKind::kImgReg;
    case SiteClass::kPsumReg:      return BufferKind::kPsumReg;
    case SiteClass::kDatapathLatch: break;
  }
  DNNFI_EXPECTS(false);
  return BufferKind::kGlobalBuffer;
}

/// Implemented accelerator geometries.
enum class AcceleratorKind : std::uint8_t {
  kEyeriss,   ///< row-stationary Eyeriss hierarchy (the paper's model)
  kSystolic,  ///< weight-stationary N x M systolic array (TPU-style)
};

/// Geometry selection, parsed from `--accel=eyeriss|systolic:<N>x<M>`.
struct AcceleratorConfig {
  AcceleratorKind kind = AcceleratorKind::kEyeriss;
  std::size_t rows = 16;  ///< systolic array rows (psum-chain length)
  std::size_t cols = 16;  ///< systolic array columns (output-channel lanes)

  constexpr bool is_eyeriss() const noexcept {
    return kind == AcceleratorKind::kEyeriss;
  }
  /// Canonical spelling: "eyeriss" or "systolic:<rows>x<cols>". This string
  /// is the geometry's identity in fingerprints and checkpoints.
  std::string to_string() const;

  friend bool operator==(const AcceleratorConfig&,
                         const AcceleratorConfig&) = default;
};

/// Parses the canonical spelling; nullopt on malformed input.
std::optional<AcceleratorConfig> parse_accelerator(std::string_view s);

/// Geometry-level coordinates of one sampled strike, before lowering.
/// `pe_row`/`pe_col` locate the struck PE on array geometries; Eyeriss
/// leaves them zero (its reuse model does not depend on PE position).
struct SiteCoords {
  SiteClass cls = SiteClass::kDatapathLatch;
  DatapathLatch latch = DatapathLatch::kAccumulator;
  std::size_t element = 0;
  std::size_t step = 0;
  std::size_t out_channel = 0;  ///< Img-REG reuse scope (Eyeriss)
  std::size_t out_row = 0;      ///< Img-REG reuse scope (Eyeriss)
  std::size_t pe_row = 0;
  std::size_t pe_col = 0;
};

/// One accelerator geometry: site inventory, uniform strike sampling, and
/// lowering onto the layer-level fault hooks the Executor patches with.
class AcceleratorModel {
 public:
  explicit AcceleratorModel(AcceleratorConfig cfg) : cfg_(cfg) {}
  virtual ~AcceleratorModel() = default;

  const AcceleratorConfig& config() const noexcept { return cfg_; }
  virtual const char* name() const noexcept = 0;

  /// Site classes this geometry implements, in kAllSiteClasses order.
  virtual std::span<const SiteClass> site_classes() const noexcept = 0;
  bool supports(SiteClass c) const noexcept {
    for (SiteClass s : site_classes())
      if (s == c) return true;
    return false;
  }

  /// PEs in the array (drives the datapath FIT model).
  virtual std::size_t num_pes() const noexcept = 0;

  /// Occupied words of the structure backing `cls` while `fp` executes
  /// (sampler weighting + FIT occupancy). Default: the shared dataflow
  /// footprint analysis.
  virtual std::size_t occupied_elems(const LayerFootprint& fp,
                                     SiteClass cls) const {
    return accel::occupied_elems(fp, buffer_of(cls));
  }

  /// Draws the within-layer coordinates of one uniform strike of class
  /// `cls` on layer `fp`/`ls`. Every RNG draw a geometry makes is part of
  /// its determinism contract (trial streams replay bit-identically).
  virtual SiteCoords sample_site(SiteClass cls, const LayerFootprint& fp,
                                 const dnn::LayerSpec& ls, Rng& rng,
                                 std::optional<DatapathLatch> fixed_latch)
      const = 0;

  /// Lowers a strike at `c` with operation `op` onto layer-level hooks.
  /// `out.layer` is already set by the caller; the model fills the rest.
  virtual void lower_site(const SiteCoords& c, const fault::FaultOp& op,
                          const std::optional<numeric::DType>& storage,
                          dnn::AppliedFault& out) const = 0;

 private:
  AcceleratorConfig cfg_;
};

/// The paper's geometry: row-stationary Eyeriss reuse classes. Sampling and
/// lowering are bit-identical to the pre-interface seed implementation.
class EyerissModel final : public AcceleratorModel {
 public:
  EyerissModel() : AcceleratorModel({}) {}
  const char* name() const noexcept override { return "eyeriss"; }
  std::span<const SiteClass> site_classes() const noexcept override;
  std::size_t num_pes() const noexcept override;
  SiteCoords sample_site(SiteClass cls, const LayerFootprint& fp,
                         const dnn::LayerSpec& ls, Rng& rng,
                         std::optional<DatapathLatch> fixed_latch)
      const override;
  void lower_site(const SiteCoords& c, const fault::FaultOp& op,
                  const std::optional<numeric::DType>& storage,
                  dnn::AppliedFault& out) const override;
};

/// Weight-stationary N x M systolic array (TPU-style; arXiv 2405.15381).
/// Output channels map round-robin onto columns (channel % cols); partial
/// sums flow down a column, one accumulation step per row transit.
///
/// Site semantics under weight-stationary reuse:
///   datapath/operand-act, product : consumed by one MAC -> MacFault
///   datapath/operand-weight       : the weight LATCH is stationary, so the
///                                   corrupt operand persists for the whole
///                                   tile -> WeightFault on the (channel,
///                                   step) weight
///   datapath/accumulator, psum-reg: the corrupt partial sum re-enters the
///                                   column's adder chain and taints every
///                                   output element still flowing through
///                                   that column -> ColumnFault
///   filter-sram                   : resident weight word -> WeightFault
///   global-buffer                 : shared ifmap word -> input-ACT flip
/// Img-REG does not exist (activations stream; there is no per-PE ifmap-row
/// register), so kImgReg is not in site_classes().
class SystolicArray final : public AcceleratorModel {
 public:
  explicit SystolicArray(AcceleratorConfig cfg);
  const char* name() const noexcept override { return "systolic"; }
  std::span<const SiteClass> site_classes() const noexcept override;
  std::size_t num_pes() const noexcept override;
  SiteCoords sample_site(SiteClass cls, const LayerFootprint& fp,
                         const dnn::LayerSpec& ls, Rng& rng,
                         std::optional<DatapathLatch> fixed_latch)
      const override;
  void lower_site(const SiteCoords& c, const fault::FaultOp& op,
                  const std::optional<numeric::DType>& storage,
                  dnn::AppliedFault& out) const override;
};

/// Process-wide default geometry (the paper's Eyeriss model).
const AcceleratorModel& eyeriss_model();

/// Instantiates the model for `cfg`.
std::unique_ptr<AcceleratorModel> make_accelerator(const AcceleratorConfig& cfg);

}  // namespace dnnfi::accel
