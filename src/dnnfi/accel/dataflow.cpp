#include "dnnfi/accel/dataflow.h"

#include "dnnfi/common/expects.h"

namespace dnnfi::accel {

using dnn::LayerKind;
using dnn::LayerSpec;
using dnn::NetworkSpec;
using dnn::Shape;

std::vector<LayerFootprint> analyze(const NetworkSpec& spec) {
  std::vector<LayerFootprint> out;
  Shape shape = spec.input;
  for (std::size_t i = 0; i < spec.layers.size(); ++i) {
    const LayerSpec& l = spec.layers[i];
    const Shape os = dnn::shape_after(l, shape);
    if (l.kind == LayerKind::kConv || l.kind == LayerKind::kFullyConnected) {
      LayerFootprint fp;
      fp.layer_index = i;
      fp.block = l.block;
      fp.is_conv = (l.kind == LayerKind::kConv);
      fp.in_shape = shape;
      fp.out_shape = os;
      fp.input_elems = shape.size();
      fp.output_elems = os.size();
      if (fp.is_conv) {
        fp.steps = shape.c * l.kernel * l.kernel;
        fp.weight_elems = l.out_channels * fp.steps;
      } else {
        fp.steps = shape.size();
        fp.weight_elems = l.out_features * fp.steps;
      }
      fp.macs = fp.output_elems * fp.steps;
      out.push_back(fp);
    }
    shape = os;
  }
  DNNFI_ENSURES(!out.empty());
  return out;
}

std::vector<LayerFootprint> analyze_range(const NetworkSpec& spec,
                                          std::size_t from, std::size_t to) {
  DNNFI_EXPECTS(from < to && to <= spec.layers.size());
  std::vector<LayerFootprint> out;
  for (const auto& fp : analyze(spec))
    if (fp.layer_index >= from && fp.layer_index < to) out.push_back(fp);
  return out;
}

std::size_t total_macs(const std::vector<LayerFootprint>& fp) {
  std::size_t total = 0;
  for (const auto& f : fp) total += f.macs;
  return total;
}

std::size_t macs_in_range(const std::vector<LayerFootprint>& fp,
                          std::size_t from, std::size_t to) {
  std::size_t total = 0;
  for (const auto& f : fp)
    if (f.layer_index >= from && f.layer_index < to) total += f.macs;
  return total;
}

std::size_t occupied_elems(const LayerFootprint& fp, BufferKind buffer) {
  switch (buffer) {
    case BufferKind::kGlobalBuffer:
      // The GB holds the layer's ifmaps for the duration of the layer.
      return fp.input_elems;
    case BufferKind::kFilterSram:
      return fp.weight_elems;
    case BufferKind::kImgReg:
      // Img REGs collectively stage the ifmap rows currently being consumed;
      // every ifmap element passes through one.
      return fp.input_elems;
    case BufferKind::kPsumReg:
      return fp.output_elems;
  }
  DNNFI_EXPECTS(false);
  return 0;
}

std::size_t reuse_reach(const LayerFootprint& fp, BufferKind buffer) {
  switch (buffer) {
    case BufferKind::kGlobalBuffer: {
      if (!fp.is_conv) return 1;  // an FC input feeds each output once
      // Upper bound: every kernel position of every output channel that
      // reads the element — approximately out_c * k^2 / stride^2 uses.
      const std::size_t per_channel =
          fp.steps / std::max<std::size_t>(1, fp.in_shape.c);
      return fp.out_shape.c * per_channel;
    }
    case BufferKind::kFilterSram:
      return fp.is_conv ? fp.out_shape.h * fp.out_shape.w : 1;
    case BufferKind::kImgReg:
      return fp.is_conv ? fp.out_shape.w : 1;
    case BufferKind::kPsumReg:
      return 1;
  }
  DNNFI_EXPECTS(false);
  return 0;
}

}  // namespace dnnfi::accel
