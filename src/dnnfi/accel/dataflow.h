// Static dataflow analysis: for each MAC layer of a topology, the data
// footprints that occupy accelerator storage while the layer executes, and
// the reuse scope each buffer's contents have. This drives both the fault
// sampler's site weighting and the FIT model's occupancy accounting.
#pragma once

#include <vector>

#include "dnnfi/accel/eyeriss.h"
#include "dnnfi/dnn/spec.h"

namespace dnnfi::accel {

/// Footprint of one MAC (conv/FC) layer.
struct LayerFootprint {
  std::size_t layer_index = 0;   ///< index into NetworkSpec::layers
  int block = 0;                 ///< logical paper-layer
  bool is_conv = false;
  std::size_t input_elems = 0;   ///< ifmap elements resident in the GB
  std::size_t weight_elems = 0;  ///< filter elements resident in filter SRAMs
  std::size_t output_elems = 0;  ///< ofmap/psum elements
  std::size_t macs = 0;          ///< MACs executed by the layer
  std::size_t steps = 0;         ///< accumulation steps per output element
  dnn::Shape in_shape;           ///< layer input shape
  dnn::Shape out_shape;          ///< layer output shape
};

/// Footprints of all MAC layers, in execution order.
std::vector<LayerFootprint> analyze(const dnn::NetworkSpec& spec);

/// Footprints of the MAC layers whose NetworkSpec index lies in [from, to)
/// — the static counterpart of Executor::run_range, used to account for
/// the work incremental replay actually executes (DESIGN.md §8).
std::vector<LayerFootprint> analyze_range(const dnn::NetworkSpec& spec,
                                          std::size_t from, std::size_t to);

/// Total MACs across all layers of `fp`.
std::size_t total_macs(const std::vector<LayerFootprint>& fp);

/// MACs of the layers of `fp` whose NetworkSpec index lies in [from, to):
/// the arithmetic a replay starting at layer `from` and early-exiting
/// before layer `to` performs.
std::size_t macs_in_range(const std::vector<LayerFootprint>& fp,
                          std::size_t from, std::size_t to);

/// How many elements of `buffer` hold *live* network data during layer `fp`
/// (occupied words; faults landing in unoccupied space are masked by
/// construction and excluded from sampling — see DESIGN.md §4).
std::size_t occupied_elems(const LayerFootprint& fp, BufferKind buffer);

/// Elements a single corrupted word of `buffer` can reach before being
/// overwritten, under the row-stationary reuse model:
///   Global Buffer -> every consumer of the ifmap element (whole layer)
///   Filter SRAM   -> every MAC using the weight (one output channel / one
///                    output neuron)
///   Img REG       -> one output row of one output channel
///   PSum REG      -> one accumulation chain (one output element)
/// Returned purely for reporting; the injection semantics are implemented
/// by the fault module's lowering.
std::size_t reuse_reach(const LayerFootprint& fp, BufferKind buffer);

}  // namespace dnnfi::accel
