// Canonical datapath model of a DNN accelerator processing engine (paper
// Fig 1b): a multiplier and an adder with input/output latches. This is the
// abstraction shared by all nine accelerators of Table 1, so datapath fault
// results apply to every one of them.
//
// The latch inventory is the *minimum* set needed to implement the MAC
// pipeline (the paper makes the same conservative choice in §5.1.5):
//   - activation operand latch   (W bits)
//   - weight operand latch       (W bits)
//   - multiplier output latch    (W bits)
//   - accumulator latch          (W bits)
#pragma once

#include <array>
#include <cstddef>

#include "dnnfi/numeric/dtype.h"

namespace dnnfi::accel {

/// Latch classes in one PE's MAC datapath.
enum class DatapathLatch {
  kOperandAct,
  kOperandWeight,
  kProduct,
  kAccumulator,
};

inline constexpr std::array<DatapathLatch, 4> kAllDatapathLatches = {
    DatapathLatch::kOperandAct, DatapathLatch::kOperandWeight,
    DatapathLatch::kProduct, DatapathLatch::kAccumulator};

constexpr const char* datapath_latch_name(DatapathLatch l) {
  switch (l) {
    case DatapathLatch::kOperandAct:    return "operand-act";
    case DatapathLatch::kOperandWeight: return "operand-weight";
    case DatapathLatch::kProduct:       return "product";
    case DatapathLatch::kAccumulator:   return "accumulator";
  }
  return "?";
}

/// Datapath latch inventory for one PE at a given datapath width.
struct DatapathInventory {
  int word_bits = 16;       ///< datapath width W
  int latches_per_pe = 4;   ///< latch words per PE (the four classes above)

  constexpr std::size_t bits_per_pe() const {
    return static_cast<std::size_t>(word_bits) *
           static_cast<std::size_t>(latches_per_pe);
  }
};

/// Inventory for a datapath of the given numeric type.
constexpr DatapathInventory datapath_inventory(numeric::DType t) {
  DatapathInventory inv;
  inv.word_bits = numeric::dtype_width(t);
  return inv;
}

}  // namespace dnnfi::accel
