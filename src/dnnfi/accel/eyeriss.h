// Eyeriss-style accelerator configuration (paper Table 7): the published
// 65 nm microarchitecture parameters and their projection to 16 nm (x2 per
// technology generation, 4 generations => x8 on PE count and buffer sizes).
//
// Eyeriss is the buffer-fault case study because its row-stationary dataflow
// exercises all three reuse classes of Table 1 (weight, image, output).
#pragma once

#include <array>
#include <cstddef>

#include "dnnfi/accel/datapath.h"

namespace dnnfi::accel {

/// On-chip storage structures of Eyeriss that hold data subject to reuse.
enum class BufferKind {
  kGlobalBuffer,  ///< shared SRAM holding ifmaps/psums between layers
  kFilterSram,    ///< per-PE SRAM caching filter weights   (weight reuse)
  kImgReg,        ///< per-PE register caching an ifmap row (image reuse)
  kPsumReg,       ///< per-PE register caching partial sums (output reuse)
};

inline constexpr std::array<BufferKind, 4> kAllBuffers = {
    BufferKind::kGlobalBuffer, BufferKind::kFilterSram, BufferKind::kImgReg,
    BufferKind::kPsumReg};

constexpr const char* buffer_name(BufferKind b) {
  switch (b) {
    case BufferKind::kGlobalBuffer: return "Global Buffer";
    case BufferKind::kFilterSram:   return "Filter SRAM";
    case BufferKind::kImgReg:       return "Img REG";
    case BufferKind::kPsumReg:      return "PSum REG";
  }
  return "?";
}

/// One process-technology instantiation of the microarchitecture.
struct EyerissConfig {
  int feature_nm = 16;               ///< process node
  std::size_t num_pes = 0;           ///< PE array size
  double global_buffer_kb = 0;       ///< shared buffer, KB
  double filter_sram_kb = 0;         ///< per-PE filter SRAM, KB
  double img_reg_kb = 0;             ///< per-PE image register file, KB
  double psum_reg_kb = 0;            ///< per-PE psum register file, KB
  int word_bits = 16;                ///< stored word width (16-bit in Eyeriss)

  /// Total bits of one buffer structure across the whole chip.
  std::size_t total_bits(BufferKind b) const;

  /// Bits of a single instance (one PE's SRAM/REG; the global buffer has a
  /// single instance).
  std::size_t instance_bits(BufferKind b) const;
};

/// Published 65 nm Eyeriss parameters (Table 7, first row).
EyerissConfig eyeriss_65nm();

/// 16 nm projection (Table 7, second row): x8 PEs and buffer capacities.
EyerissConfig eyeriss_16nm();

/// Generic technology projection: scales PE count and buffer sizes by
/// 2^(generations). Provided so ablations can sweep intermediate nodes.
EyerissConfig project(const EyerissConfig& base, int generations);

}  // namespace dnnfi::accel
