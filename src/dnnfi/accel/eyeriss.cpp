#include "dnnfi/accel/eyeriss.h"

#include <cmath>

#include "dnnfi/common/expects.h"

namespace dnnfi::accel {

namespace {
constexpr double kBitsPerKb = 1024.0 * 8.0;
}

std::size_t EyerissConfig::instance_bits(BufferKind b) const {
  switch (b) {
    case BufferKind::kGlobalBuffer:
      return static_cast<std::size_t>(global_buffer_kb * kBitsPerKb);
    case BufferKind::kFilterSram:
      return static_cast<std::size_t>(filter_sram_kb * kBitsPerKb);
    case BufferKind::kImgReg:
      return static_cast<std::size_t>(img_reg_kb * kBitsPerKb);
    case BufferKind::kPsumReg:
      return static_cast<std::size_t>(psum_reg_kb * kBitsPerKb);
  }
  DNNFI_EXPECTS(false);
  return 0;
}

std::size_t EyerissConfig::total_bits(BufferKind b) const {
  const std::size_t inst = instance_bits(b);
  return b == BufferKind::kGlobalBuffer ? inst : inst * num_pes;
}

EyerissConfig eyeriss_65nm() {
  EyerissConfig c;
  c.feature_nm = 65;
  c.num_pes = 168;
  c.global_buffer_kb = 98.0;
  c.filter_sram_kb = 0.44;  // 0.44 KB = 224 x 16-bit words per PE
  c.img_reg_kb = 0.024;     // 12 x 16-bit words
  c.psum_reg_kb = 0.048;    // 24 x 16-bit words
  return c;
}

EyerissConfig project(const EyerissConfig& base, int generations) {
  DNNFI_EXPECTS(generations >= 0 && generations <= 8);
  const double f = std::pow(2.0, generations);
  EyerissConfig c = base;
  c.num_pes = static_cast<std::size_t>(static_cast<double>(base.num_pes) * f);
  c.global_buffer_kb = base.global_buffer_kb * f;
  c.filter_sram_kb = base.filter_sram_kb * f;
  c.img_reg_kb = base.img_reg_kb * f;
  c.psum_reg_kb = base.psum_reg_kb * f;
  return c;
}

EyerissConfig eyeriss_16nm() {
  // 65nm -> 40 -> 28 -> 22(20) -> 16: four foundry generations (paper §5.2).
  EyerissConfig c = project(eyeriss_65nm(), 3);
  c.feature_nm = 16;
  // The paper's Table 7 lists the x8 scaling applied to PEs and buffers:
  //   168 -> 1,344 PEs; 98KB -> 784KB GB; 0.44 -> 3.52KB filter SRAM;
  //   0.024 -> 0.19KB img REG; 0.048 -> 0.38KB psum REG.
  c.num_pes = 1344;
  c.global_buffer_kb = 784.0;
  c.filter_sram_kb = 3.52;
  c.img_reg_kb = 0.19;
  c.psum_reg_kb = 0.38;
  return c;
}

}  // namespace dnnfi::accel
