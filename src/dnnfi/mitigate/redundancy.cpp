#include "dnnfi/mitigate/redundancy.h"

#include "dnnfi/common/expects.h"

namespace dnnfi::mitigate {

const std::vector<RedundancyScheme>& redundancy_schemes() {
  static const std::vector<RedundancyScheme> kSchemes = {
      // name, area, energy, detection, correction
      {"Unprotected", 1.0, 1.0, 0.0, 0.0},
      // Duplicate-and-compare: the comparator adds a small fraction on top
      // of the 2x replication.
      {"DMR", 2.05, 2.05, 1.0, 0.0},
      // Triplicate-and-vote: voter on top of 3x replication.
      {"TMR", 3.10, 3.10, 1.0, 1.0},
  };
  return kSchemes;
}

double residual_sdc(const RedundancyScheme& scheme, double sdc) {
  DNNFI_EXPECTS(sdc >= 0.0 && sdc <= 1.0);
  DNNFI_EXPECTS(scheme.detection >= scheme.correction);
  // Corrected events vanish; detected events are recovered by re-execution
  // (they cost latency, not correctness); only undetected events remain
  // silent corruptions.
  return sdc * (1.0 - scheme.detection);
}

}  // namespace dnnfi::mitigate
