#include "dnnfi/mitigate/sed.h"

#include <cmath>

namespace dnnfi::mitigate {

SedDetector::SedDetector(std::vector<fault::BlockRange> raw_ranges,
                         double cushion)
    : bounds_(std::move(raw_ranges)), cushion_(cushion) {
  DNNFI_EXPECTS(cushion >= 0);
  for (auto& b : bounds_) {
    DNNFI_EXPECTS(b.lo <= b.hi);
    // Paper: range (-X, Y) becomes (-1.1 X, 1.1 Y). The epsilon keeps a
    // layer whose range degenerates to a point from flagging everything.
    b.lo = b.lo - cushion * std::abs(b.lo) - 1e-9;
    b.hi = b.hi + cushion * std::abs(b.hi) + 1e-9;
  }
}

bool SedDetector::anomalous(int block, double value) const {
  DNNFI_EXPECTS(block >= 1 &&
                static_cast<std::size_t>(block) <= bounds_.size());
  const auto& b = bounds_[static_cast<std::size_t>(block - 1)];
  // NaN compares false with everything; treat it as a symptom explicitly.
  if (std::isnan(value)) return true;
  return value < b.lo || value > b.hi;
}

std::function<bool(int, double)> SedDetector::as_predicate() const {
  return [this](int block, double value) { return anomalous(block, value); };
}

SedDetector learn_sed(const dnn::NetworkSpec& spec,
                      const dnn::WeightsBlob& blob, numeric::DType dtype,
                      const dnn::ExampleSource& source, std::uint64_t begin,
                      std::size_t count, double cushion) {
  return SedDetector(
      fault::profile_block_ranges(spec, blob, dtype, source, begin, count),
      cushion);
}

SedEvaluation evaluate_sed(const fault::CampaignResult& result) {
  std::size_t benign_flagged = 0;
  std::size_t sdc_flagged = 0;
  std::size_t sdc_total = 0;
  std::size_t detections = 0;
  for (const auto& t : result.trials) {
    detections += t.detected ? 1U : 0U;
    if (t.outcome.sdc1) {
      ++sdc_total;
      sdc_flagged += t.detected ? 1U : 0U;
    } else {
      benign_flagged += t.detected ? 1U : 0U;
    }
  }
  SedEvaluation ev;
  // Paper definition: precision = 1 - benign-flagged / injected.
  ev.precision = fault::estimate(result.trials.size() - benign_flagged,
                                 result.trials.size());
  ev.recall = fault::estimate(sdc_flagged, sdc_total);
  ev.detections = detections;
  ev.sdc_count = sdc_total;
  return ev;
}

SedEvaluation evaluate_sed(const fault::OutcomeAccumulator& acc) {
  SedEvaluation ev;
  const std::uint64_t n = acc.trials();
  ev.precision = fault::wilson(n - acc.benign_flagged(), n);
  ev.recall = acc.detected_given_sdc1();
  ev.detections = static_cast<std::size_t>(acc.detections());
  ev.sdc_count = static_cast<std::size_t>(acc.sdc1_count());
  return ev;
}

}  // namespace dnnfi::mitigate
