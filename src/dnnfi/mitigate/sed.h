// Symptom-based Error Detectors (paper §6.2).
//
// Learning phase: run the instrumented network fault-free on representative
// inputs and record the per-layer activation value ranges; widen by a 10%
// cushion. Deployment: the host asynchronously checks each layer's fmap
// (while it sits in the global buffer) against the learned range; any value
// outside the range flags a detection.
#pragma once

#include <functional>

#include "dnnfi/fault/campaign.h"

namespace dnnfi::mitigate {

/// A learned symptom detector: per-block value bounds with cushion.
class SedDetector {
 public:
  SedDetector(std::vector<fault::BlockRange> raw_ranges, double cushion);

  /// True when `value` observed at the end of logical layer `block`
  /// (1-based) is outside the learned bounds — a symptom.
  bool anomalous(int block, double value) const;

  /// Adapter for CampaignOptions::detector.
  std::function<bool(int, double)> as_predicate() const;

  /// Scans a block-end fmap (e.g. an executor observer's view) the way the
  /// host-side check scans the global buffer: true when any element is a
  /// symptom.
  template <typename T>
  bool flags(int block, tensor::ConstTensorView<T> act) const {
    for (std::size_t i = 0; i < act.size(); ++i) {
      if (anomalous(block, numeric::numeric_traits<T>::to_double(act[i])))
        return true;
    }
    return false;
  }

  /// Per-block verdicts over a fault-free ActivationCache: flags()
  /// evaluated on each block-end activation. This is the golden-truth
  /// table incremental replay consults for blocks a masked-fault early
  /// exit skips (their fmaps are bit-identical to the cache, so the
  /// deployed check would see exactly these values; DESIGN.md §8).
  template <typename T>
  std::vector<bool> golden_flags(const dnn::ActivationCache<T>& cache,
                                 const std::vector<std::size_t>& block_ends)
      const {
    std::vector<bool> fires(block_ends.size());
    for (std::size_t b = 0; b < block_ends.size(); ++b)
      fires[b] = flags<T>(static_cast<int>(b) + 1, cache.act(block_ends[b]));
    return fires;
  }

  const std::vector<fault::BlockRange>& bounds() const noexcept {
    return bounds_;
  }
  double cushion() const noexcept { return cushion_; }

 private:
  std::vector<fault::BlockRange> bounds_;  // cushion already applied
  double cushion_;
};

/// Learning phase: profiles fault-free ranges over `count` examples starting
/// at `begin` and applies the cushion (paper uses 10%).
SedDetector learn_sed(const dnn::NetworkSpec& spec,
                      const dnn::WeightsBlob& blob, numeric::DType dtype,
                      const dnn::ExampleSource& source, std::uint64_t begin,
                      std::size_t count, double cushion = 0.10);

/// Detector quality on a campaign run with the detector attached
/// (paper §6.2 definitions):
///   precision = 1 - (#benign trials flagged) / (#trials)
///   recall    = (#SDC trials flagged) / (#SDC trials)
struct SedEvaluation {
  fault::Estimate precision;
  fault::Estimate recall;
  std::size_t detections = 0;
  std::size_t sdc_count = 0;
};

SedEvaluation evaluate_sed(const fault::CampaignResult& result);

/// Streaming counterpart: same definitions computed from an accumulator
/// (Wilson intervals). `evaluate_sed(run(...))` and
/// `evaluate_sed(run_shard(...).acc)` agree on every point estimate.
SedEvaluation evaluate_sed(const fault::OutcomeAccumulator& acc);

}  // namespace dnnfi::mitigate
