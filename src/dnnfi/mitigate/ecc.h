// SEC-DED ECC model for buffer protection, used as the comparison point the
// paper invokes in §6.1/§6.3: large SRAMs are economically protected by ECC
// (the SLH area cost is "roughly akin" to it), while small per-PE buffers
// pay a high relative overhead because of narrow read granularities.
#pragma once

#include <cstddef>

namespace dnnfi::mitigate {

/// Hamming SEC-DED geometry for a given data word width: the minimal r with
/// 2^r >= data_bits + r + 1, plus one overall parity bit.
struct EccGeometry {
  std::size_t data_bits = 0;
  std::size_t check_bits = 0;

  double overhead_fraction() const {
    return static_cast<double>(check_bits) / static_cast<double>(data_bits);
  }
};

/// Computes SEC-DED check-bit count for `data_bits`-wide words.
EccGeometry secded(std::size_t data_bits);

/// Residual FIT of a SEC-DED-protected buffer under a single-event-upset
/// model: single-bit upsets are corrected, so only the (second-order)
/// probability of two upsets accumulating in one word before a scrub
/// survives. `scrub_interval_hours` controls that window.
double ecc_residual_fit(double raw_fit, std::size_t word_bits,
                        double scrub_interval_hours);

}  // namespace dnnfi::mitigate
