#include "dnnfi/mitigate/ecc.h"

#include "dnnfi/common/expects.h"

namespace dnnfi::mitigate {

EccGeometry secded(std::size_t data_bits) {
  DNNFI_EXPECTS(data_bits >= 1);
  std::size_t r = 1;
  while ((std::size_t{1} << r) < data_bits + r + 1) ++r;
  return {data_bits, r + 1};  // +1 overall parity for DED
}

double ecc_residual_fit(double raw_fit, std::size_t word_bits,
                        double scrub_interval_hours) {
  DNNFI_EXPECTS(raw_fit >= 0 && word_bits >= 1 && scrub_interval_hours > 0);
  // Raw FIT is failures per 1e9 hours across the structure. The rate of a
  // *second* hit landing in the same word within the scrub window is
  // rate_word * (rate_word * window), summed over words — equivalently
  // raw_fit * (per-word FIT * window / 1e9).
  const double per_word_fit = raw_fit / static_cast<double>(word_bits);
  const double second_hit_probability =
      per_word_fit * scrub_interval_hours / 1e9;
  return raw_fit * second_hit_probability;
}

}  // namespace dnnfi::mitigate
