// Classical modular-redundancy baselines — the techniques the paper argues
// are too expensive for DNN accelerators (§1) and that SED/SLH undercut.
// DMR duplicates and compares (detection only); TMR triplicates and votes
// (correction). Costs are modeled on the structure they protect; coverage
// follows from the single-event-upset fault model.
#pragma once

#include <string>
#include <vector>

namespace dnnfi::mitigate {

/// A redundancy scheme applied to some fraction of the design.
struct RedundancyScheme {
  std::string name;
  double area_multiplier = 1.0;   ///< total area vs unprotected
  double energy_multiplier = 1.0; ///< total switching energy vs unprotected
  double detection = 0.0;         ///< fraction of SEU-caused SDCs detected
  double correction = 0.0;        ///< fraction corrected transparently
};

/// The standard design points: unprotected, DMR (duplicate + compare),
/// TMR (triplicate + vote). Under a single-event-upset model one replica
/// is always fault-free, so DMR detects every mismatch and TMR outvotes it.
const std::vector<RedundancyScheme>& redundancy_schemes();

/// Residual SDC probability after applying `scheme` to a component whose
/// unprotected SDC probability is `sdc`. Detected-but-uncorrected events
/// are assumed re-executed (recoverable), so they leave the SDC pool.
double residual_sdc(const RedundancyScheme& scheme, double sdc);

/// Comparison row for reporting protection trade-offs.
struct ProtectionTradeoff {
  std::string technique;
  double area_overhead = 0;    ///< added area / baseline area
  double energy_overhead = 0;  ///< added energy / baseline energy
  double fit_reduction = 1;    ///< x-fold residual-FIT improvement
};

}  // namespace dnnfi::mitigate
