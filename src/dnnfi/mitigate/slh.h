// Selective Latch Hardening (paper §6.3, after Sullivan et al.).
//
// The per-bit SDC sensitivity measured by injection is turned into a per-bit
// FIT profile; hardened latch designs of differing strength/cost (Table 9)
// are then assigned per bit to meet a target FIT reduction at minimum area.
// "Multi" mixes techniques by marginal cost — the optimal assignment for
// this (convex, per-latch-independent) cost structure.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace dnnfi::mitigate {

/// A hardened latch design point (paper Table 9).
struct LatchDesign {
  std::string name;
  double area = 1.0;           ///< area multiplier vs an unprotected latch
  double fit_reduction = 1.0;  ///< x-fold FIT reduction
};

/// Table 9: baseline, Strike Suppression (RCC), Redundant Node (SEUT),
/// Triplicated (TMR).
const std::vector<LatchDesign>& latch_designs();

/// Per-bit sensitivity profile: FIT contribution of each bit-position latch
/// group (relative units are fine; only ratios matter).
using BitProfile = std::vector<double>;

/// Fig 9a: protect the most sensitive latches first with a *perfect*
/// technique; point k = (fraction of latches protected, fraction of total
/// FIT removed).
struct CoveragePoint {
  double protected_fraction = 0;
  double fit_removed_fraction = 0;
};
std::vector<CoveragePoint> perfect_protection_curve(const BitProfile& fit);

/// Fits beta of r(x) = (1 - exp(-beta x)) / (1 - exp(-beta)) to the curve
/// (golden-section least squares). High beta = a few latches dominate.
double fit_beta(const std::vector<CoveragePoint>& curve);

/// Result of one hardening assignment.
struct HardeningPlan {
  double area_overhead = 0;       ///< added latch area / total baseline area
  double achieved_reduction = 1;  ///< total-FIT reduction factor
  bool feasible = true;           ///< target met
  std::vector<std::size_t> design_per_bit;  ///< index into latch_designs()
};

/// Protects the most sensitive bits with a single `design` until the total
/// FIT reduction reaches `target` (or every bit is protected).
HardeningPlan harden_single(const BitProfile& fit, const LatchDesign& design,
                            double target);

/// Mixed-technique assignment: greedy marginal FIT-per-area upgrades across
/// all of Table 9 until `target` is reached.
HardeningPlan harden_multi(const BitProfile& fit, double target);

}  // namespace dnnfi::mitigate
