#include "dnnfi/mitigate/slh.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>

#include "dnnfi/common/expects.h"

namespace dnnfi::mitigate {

const std::vector<LatchDesign>& latch_designs() {
  static const std::vector<LatchDesign> kDesigns = {
      {"Baseline", 1.0, 1.0},
      {"RCC", 1.15, 6.3},     // strike suppression
      {"SEUT", 2.0, 37.0},    // redundant node
      {"TMR", 3.5, 1.0e6},    // triplicated
  };
  return kDesigns;
}

std::vector<CoveragePoint> perfect_protection_curve(const BitProfile& fit) {
  DNNFI_EXPECTS(!fit.empty());
  std::vector<std::size_t> order(fit.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&fit](std::size_t a, std::size_t b) { return fit[a] > fit[b]; });
  const double total = std::accumulate(fit.begin(), fit.end(), 0.0);
  std::vector<CoveragePoint> curve;
  curve.reserve(fit.size() + 1);
  curve.push_back({0.0, 0.0});
  double removed = 0;
  for (std::size_t k = 0; k < order.size(); ++k) {
    removed += fit[order[k]];
    curve.push_back({static_cast<double>(k + 1) / static_cast<double>(fit.size()),
                     total > 0 ? removed / total : 1.0});
  }
  return curve;
}

double fit_beta(const std::vector<CoveragePoint>& curve) {
  DNNFI_EXPECTS(curve.size() >= 2);
  const auto sse = [&curve](double beta) {
    const double denom = 1.0 - std::exp(-beta);
    double s = 0;
    for (const auto& p : curve) {
      const double model = (1.0 - std::exp(-beta * p.protected_fraction)) / denom;
      const double d = model - p.fit_removed_fraction;
      s += d * d;
    }
    return s;
  };
  // Golden-section search over beta in (0.01, 100].
  constexpr double kPhi = 0.6180339887498949;
  double lo = 0.01, hi = 100.0;
  double x1 = hi - kPhi * (hi - lo);
  double x2 = lo + kPhi * (hi - lo);
  double f1 = sse(x1), f2 = sse(x2);
  for (int it = 0; it < 200 && (hi - lo) > 1e-6; ++it) {
    if (f1 < f2) {
      hi = x2;
      x2 = x1;
      f2 = f1;
      x1 = hi - kPhi * (hi - lo);
      f1 = sse(x1);
    } else {
      lo = x1;
      x1 = x2;
      f1 = f2;
      x2 = lo + kPhi * (hi - lo);
      f2 = sse(x2);
    }
  }
  return 0.5 * (lo + hi);
}

namespace {

double plan_area_overhead(const BitProfile& fit,
                          const std::vector<std::size_t>& choice) {
  const auto& designs = latch_designs();
  double extra = 0;
  for (std::size_t i = 0; i < fit.size(); ++i)
    extra += designs[choice[i]].area - 1.0;
  return extra / static_cast<double>(fit.size());
}

double plan_reduction(const BitProfile& fit,
                      const std::vector<std::size_t>& choice) {
  const auto& designs = latch_designs();
  const double total = std::accumulate(fit.begin(), fit.end(), 0.0);
  if (total <= 0) return 1.0;
  double residual = 0;
  for (std::size_t i = 0; i < fit.size(); ++i)
    residual += fit[i] / designs[choice[i]].fit_reduction;
  return residual > 0 ? total / residual : 1e12;
}

}  // namespace

HardeningPlan harden_single(const BitProfile& fit, const LatchDesign& design,
                            double target) {
  DNNFI_EXPECTS(!fit.empty() && target >= 1.0 && design.fit_reduction >= 1.0);
  std::vector<std::size_t> order(fit.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&fit](std::size_t a, std::size_t b) { return fit[a] > fit[b]; });

  const auto& designs = latch_designs();
  std::size_t design_idx = 0;
  for (std::size_t i = 0; i < designs.size(); ++i)
    if (designs[i].name == design.name) design_idx = i;

  HardeningPlan plan;
  plan.design_per_bit.assign(fit.size(), 0);
  plan.achieved_reduction = 1.0;
  for (std::size_t k = 0; k <= order.size(); ++k) {
    plan.area_overhead = plan_area_overhead(fit, plan.design_per_bit);
    plan.achieved_reduction = plan_reduction(fit, plan.design_per_bit);
    if (plan.achieved_reduction >= target) {
      plan.feasible = true;
      return plan;
    }
    if (k < order.size()) plan.design_per_bit[order[k]] = design_idx;
  }
  plan.area_overhead = plan_area_overhead(fit, plan.design_per_bit);
  plan.achieved_reduction = plan_reduction(fit, plan.design_per_bit);
  plan.feasible = plan.achieved_reduction >= target;
  return plan;
}

HardeningPlan harden_multi(const BitProfile& fit, double target) {
  DNNFI_EXPECTS(!fit.empty() && target >= 1.0);
  const auto& designs = latch_designs();

  // Candidate upgrade: move bit i from its current design to the next one.
  // Priority = FIT removed per unit area added (marginal benefit). The
  // benefit sequence per bit is strictly decreasing (RCC > SEUT > TMR per
  // area), so greedy is optimal up to the last (quantized) step.
  struct Upgrade {
    double benefit;
    std::size_t bit;
    std::size_t to_design;
  };
  const auto cmp = [](const Upgrade& a, const Upgrade& b) {
    return a.benefit < b.benefit;
  };
  std::priority_queue<Upgrade, std::vector<Upgrade>, decltype(cmp)> queue(cmp);

  std::vector<std::size_t> choice(fit.size(), 0);
  auto push_upgrade = [&](std::size_t bit) {
    const std::size_t cur = choice[bit];
    if (cur + 1 >= designs.size()) return;
    const double dfit = fit[bit] / designs[cur].fit_reduction -
                        fit[bit] / designs[cur + 1].fit_reduction;
    const double darea = designs[cur + 1].area - designs[cur].area;
    queue.push({dfit / darea, bit, cur + 1});
  };
  for (std::size_t i = 0; i < fit.size(); ++i) push_upgrade(i);

  const double total = std::accumulate(fit.begin(), fit.end(), 0.0);
  while (plan_reduction(fit, choice) < target && !queue.empty()) {
    // Endgame: if some available upgrade closes the remaining gap by
    // itself, take the *cheapest by area* such upgrade rather than the
    // best-ratio one — greedy's large final step can otherwise overshoot
    // where a small one suffices.
    double residual = 0;
    for (std::size_t i = 0; i < fit.size(); ++i)
      residual += fit[i] / designs[choice[i]].fit_reduction;
    const double residual_budget = total / target;
    std::size_t closer_bit = fit.size();
    double closer_area = 1e300;
    for (std::size_t i = 0; i < fit.size(); ++i) {
      if (choice[i] + 1 >= designs.size()) continue;
      const double dfit = fit[i] / designs[choice[i]].fit_reduction -
                          fit[i] / designs[choice[i] + 1].fit_reduction;
      const double darea = designs[choice[i] + 1].area - designs[choice[i]].area;
      if (residual - dfit <= residual_budget && darea < closer_area) {
        closer_area = darea;
        closer_bit = i;
      }
    }
    if (closer_bit < fit.size()) {
      choice[closer_bit] += 1;
      break;
    }
    const Upgrade u = queue.top();
    queue.pop();
    if (u.to_design != choice[u.bit] + 1) continue;  // stale entry
    choice[u.bit] = u.to_design;
    push_upgrade(u.bit);
  }

  HardeningPlan plan;
  plan.design_per_bit = choice;
  plan.area_overhead = plan_area_overhead(fit, choice);
  plan.achieved_reduction = plan_reduction(fit, choice);
  plan.feasible = plan.achieved_reduction >= target;

  // The mixed assignment must never lose to a uniform single-technique
  // assignment (those are points of the same design space); keep the
  // cheapest feasible plan.
  for (std::size_t d = 1; d < designs.size(); ++d) {
    const HardeningPlan single = harden_single(fit, designs[d], target);
    if (single.feasible &&
        (!plan.feasible || single.area_overhead < plan.area_overhead))
      plan = single;
  }
  return plan;
}

}  // namespace dnnfi::mitigate
