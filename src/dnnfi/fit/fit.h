// FIT-rate arithmetic (paper Eq. 1):
//
//   FIT = sum_component  R_raw * S_component * SDC_component
//
// R_raw is the per-bit raw upset rate; S the component size in Mbit; SDC the
// measured probability that an upset in the component becomes an SDC.
//
// Raw-rate provenance (paper §4.7): Neale & Sachdev measure 157.62 FIT/Mb
// for 28 nm SRAM; the paper applies an author-acknowledged x0.65 correction
// and projects along the paper's Figure-1 trend to 16 nm, arriving at
// 20.49 FIT/Mb. We use the same constant.
#pragma once

#include <string>
#include <vector>

#include "dnnfi/accel/dataflow.h"
#include "dnnfi/accel/datapath.h"
#include "dnnfi/accel/eyeriss.h"
#include "dnnfi/fault/outcome.h"
#include "dnnfi/numeric/dtype.h"

namespace dnnfi::fit {

/// Neale & Sachdev 28 nm measurement, FIT per Mbit.
inline constexpr double kNeale28nmFitPerMbit = 157.62;
/// Erratum correction acknowledged by the Neale authors (paper footnote 3).
inline constexpr double kNealeCorrection = 0.65;
/// Projected raw rate at 16 nm, FIT per Mbit (paper §4.7).
inline constexpr double kRawFitPerMbit = 20.49;

/// ISO 26262 budget for the whole SoC carrying the DNN accelerator (FIT).
inline constexpr double kIso26262SocBudgetFit = 10.0;

/// Eq. 1 for a single component: `bits` storage bits, `sdc` probability.
double component_fit(double bits, double sdc);

/// Datapath latch bits across the PE array for datapath type `t`
/// (4 latches x word width x PEs — the conservative minimum of §5.1.5).
double datapath_bits(numeric::DType t, std::size_t num_pes);

/// Datapath FIT: Eq. 1 over the PE-array latches.
double datapath_fit(numeric::DType t, std::size_t num_pes, double sdc);

/// Same, taking a campaign estimate directly (uses its point estimate), so
/// streaming-accumulator consumers don't unpack `.p` by hand.
double datapath_fit(numeric::DType t, std::size_t num_pes,
                    const fault::Estimate& sdc);

/// Time-averaged *occupied* bits of an Eyeriss buffer while running the
/// network described by `footprints`: per layer, the live footprint (capped
/// at the structure's physical capacity) weighted by layer duration (MACs).
/// Upsets in unoccupied space are masked by construction, so Eq. 1 with
/// occupancy-conditioned SDC uses occupied bits as S (DESIGN.md §5).
double occupied_bits(const std::vector<accel::LayerFootprint>& footprints,
                     accel::BufferKind buffer, const accel::EyerissConfig& cfg);

/// Buffer FIT: Eq. 1 with occupancy accounting.
double buffer_fit(const std::vector<accel::LayerFootprint>& footprints,
                  accel::BufferKind buffer, const accel::EyerissConfig& cfg,
                  double sdc);

/// Estimate-taking counterpart of the above.
double buffer_fit(const std::vector<accel::LayerFootprint>& footprints,
                  accel::BufferKind buffer, const accel::EyerissConfig& cfg,
                  const fault::Estimate& sdc);

/// One line of a FIT report.
struct ComponentFitRow {
  std::string component;
  double bits = 0;
  double sdc = 0;
  double fit = 0;
};

/// Sums the FIT column.
double total_fit(const std::vector<ComponentFitRow>& rows);

/// "PASS"/"FAIL (...x over budget)" verdict against a FIT budget.
std::string iso_verdict(double fit, double budget);

}  // namespace dnnfi::fit
