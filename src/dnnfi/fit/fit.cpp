#include "dnnfi/fit/fit.h"

#include <algorithm>
#include <sstream>

#include "dnnfi/common/expects.h"

namespace dnnfi::fit {

namespace {
constexpr double kBitsPerMbit = 1024.0 * 1024.0;
}

double component_fit(double bits, double sdc) {
  DNNFI_EXPECTS(bits >= 0 && sdc >= 0 && sdc <= 1);
  return kRawFitPerMbit * (bits / kBitsPerMbit) * sdc;
}

double datapath_bits(numeric::DType t, std::size_t num_pes) {
  const accel::DatapathInventory inv = accel::datapath_inventory(t);
  return static_cast<double>(inv.bits_per_pe()) * static_cast<double>(num_pes);
}

double datapath_fit(numeric::DType t, std::size_t num_pes, double sdc) {
  return component_fit(datapath_bits(t, num_pes), sdc);
}

double datapath_fit(numeric::DType t, std::size_t num_pes,
                    const fault::Estimate& sdc) {
  return datapath_fit(t, num_pes, sdc.p);
}

double occupied_bits(const std::vector<accel::LayerFootprint>& footprints,
                     accel::BufferKind buffer,
                     const accel::EyerissConfig& cfg) {
  DNNFI_EXPECTS(!footprints.empty());
  const double capacity = static_cast<double>(cfg.total_bits(buffer));
  double weighted = 0;
  double time = 0;
  for (const auto& fp : footprints) {
    const double occ = std::min(
        static_cast<double>(accel::occupied_elems(fp, buffer)) *
            static_cast<double>(cfg.word_bits),
        capacity);
    const auto dur = static_cast<double>(fp.macs);
    weighted += occ * dur;
    time += dur;
  }
  DNNFI_EXPECTS(time > 0);
  return weighted / time;
}

double buffer_fit(const std::vector<accel::LayerFootprint>& footprints,
                  accel::BufferKind buffer, const accel::EyerissConfig& cfg,
                  double sdc) {
  return component_fit(occupied_bits(footprints, buffer, cfg), sdc);
}

double buffer_fit(const std::vector<accel::LayerFootprint>& footprints,
                  accel::BufferKind buffer, const accel::EyerissConfig& cfg,
                  const fault::Estimate& sdc) {
  return buffer_fit(footprints, buffer, cfg, sdc.p);
}

double total_fit(const std::vector<ComponentFitRow>& rows) {
  double t = 0;
  for (const auto& r : rows) t += r.fit;
  return t;
}

std::string iso_verdict(double fit, double budget) {
  DNNFI_EXPECTS(budget > 0);
  std::ostringstream os;
  if (fit <= budget) {
    os << "PASS (" << fit << " <= " << budget << " FIT)";
  } else {
    os << "FAIL (" << fit / budget << "x over the " << budget
       << " FIT budget)";
  }
  return os.str();
}

}  // namespace dnnfi::fit
