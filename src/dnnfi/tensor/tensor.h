// Dense CHW tensors. Single-image inference uses rank-3 (C,H,W) logical
// shapes; weights use rank-4 (Co,Ci,Kh,Kw). Everything is stored row-major
// in one contiguous vector so a fault-site "element index" maps 1:1 to a
// buffer word in the accelerator model.
//
// Two storage forms share one element layout:
//   Tensor<T>      — owning, growable; golden traces and parameters.
//   TensorView<T>  — non-owning window over arena/workspace storage; the
//                    execution engine's currency (zero allocation, zero
//                    copy). TensorView<const T> is the read-only form and
//                    every Tensor converts to it implicitly.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

#include "dnnfi/common/expects.h"
#include "dnnfi/numeric/simd_convert.h"
#include "dnnfi/numeric/traits.h"

// DNNFI_CHECKED_ACCESS controls the per-element bounds checks in
// Shape::index / Tensor::operator[] / TensorView::operator[] — the checks
// that sit inside the MAC inner loops. They default ON in Debug builds and
// OFF in Release (where the ASan/UBSan CI job takes over the guarding
// duty); tests always compile with them ON, and the -DDNNFI_CHECKED_ACCESS
// CMake option forces them ON everywhere. The checked-ness is threaded
// through a defaulted template parameter so checked and unchecked
// instantiations have distinct symbols: TUs compiled in different modes can
// link together without ODR aliasing.
#if !defined(DNNFI_CHECKED_ACCESS)
#if defined(NDEBUG)
#define DNNFI_CHECKED_ACCESS 0
#else
#define DNNFI_CHECKED_ACCESS 1
#endif
#endif

namespace dnnfi::tensor {

namespace detail {
constexpr bool kCheckedAccess = (DNNFI_CHECKED_ACCESS != 0);

constexpr void check_access(bool ok, const char* expr,
                            const std::source_location& loc) {
  ::dnnfi::detail::contract_check(ok, "Bounds", expr, loc);
}
}  // namespace detail

/// Logical shape with up to 4 dimensions (unused leading dims are 1).
struct Shape {
  std::size_t n = 1;  ///< outermost (batch or output-channel count)
  std::size_t c = 1;  ///< channels (or input channels for weights)
  std::size_t h = 1;  ///< rows
  std::size_t w = 1;  ///< columns

  constexpr std::size_t size() const noexcept { return n * c * h * w; }

  template <bool Checked = detail::kCheckedAccess>
  constexpr std::size_t index(std::size_t in, std::size_t ic, std::size_t ih,
                              std::size_t iw) const {
    if constexpr (Checked) {
      detail::check_access(in < n && ic < c && ih < h && iw < w,
                           "in < n && ic < c && ih < h && iw < w",
                           std::source_location::current());
    }
    return ((in * c + ic) * h + ih) * w + iw;
  }

  friend constexpr bool operator==(const Shape&, const Shape&) = default;
};

/// Channel-major shape helper for single images.
constexpr Shape chw(std::size_t c, std::size_t h, std::size_t w) {
  return Shape{1, c, h, w};
}
/// Weight shape helper: Co output channels, Ci input channels, Kh x Kw.
constexpr Shape oihw(std::size_t co, std::size_t ci, std::size_t kh,
                     std::size_t kw) {
  return Shape{co, ci, kh, kw};
}
/// Flat vector shape.
constexpr Shape vec(std::size_t len) { return Shape{1, 1, 1, len}; }

template <typename T>
class Tensor;

/// Non-owning shaped window over contiguous storage (a Tensor or a
/// Workspace arena). `TensorView<const T>` is the read-only form.
///
/// A view is a reference: copying it never copies elements, and const-ness
/// of the view object does not protect the elements (like std::span).
/// Views do not outlive the storage they were created from.
template <typename T>
class TensorView {
 public:
  using value_type = std::remove_const_t<T>;

  TensorView() = default;

  /// Views `data` (at least shape.size() elements) as `shape`.
  TensorView(Shape shape, T* data) : shape_(shape), data_(data) {}

  /// Tensors convert implicitly: Tensor<T>& -> TensorView<T>,
  /// const Tensor<T>& -> TensorView<const T>.
  TensorView(Tensor<value_type>& t) noexcept
    requires(!std::is_const_v<T>)
      : shape_(t.shape()), data_(t.data().data()) {}
  TensorView(const Tensor<value_type>& t) noexcept
    requires(std::is_const_v<T>)
      : shape_(t.shape()), data_(t.data().data()) {}

  /// Mutable views convert implicitly to read-only views. (Template so it
  /// can never be mistaken for the copy constructor, which stays defaulted.)
  template <typename U>
    requires(std::is_const_v<T> && std::is_same_v<U, value_type>)
  TensorView(const TensorView<U>& other) noexcept
      : shape_(other.shape()), data_(other.data().data()) {}

  const Shape& shape() const noexcept { return shape_; }
  std::size_t size() const noexcept { return shape_.size(); }
  bool empty() const noexcept { return size() == 0; }

  template <bool Checked = detail::kCheckedAccess>
  T& operator[](std::size_t i) const {
    if constexpr (Checked) {
      detail::check_access(i < size(), "i < view.size()",
                           std::source_location::current());
    }
    return data_[i];
  }

  T& at(std::size_t n, std::size_t c, std::size_t h, std::size_t w) const {
    return data_[shape_.index(n, c, h, w)];
  }

  std::span<T> data() const noexcept { return {data_, size()}; }

  void fill(value_type v) const
    requires(!std::is_const_v<T>)
  {
    std::fill_n(data_, size(), v);
  }

  /// Copies all elements from a same-shaped source (no allocation).
  void copy_from(TensorView<const value_type> src) const
    requires(!std::is_const_v<T>)
  {
    DNNFI_EXPECTS(src.shape() == shape_);
    std::copy_n(src.data().data(), size(), data_);
  }

 private:
  Shape shape_{1, 1, 1, 0};
  T* data_ = nullptr;
};

template <typename T>
using ConstTensorView = TensorView<const T>;

/// Owning dense tensor of T.
template <typename T>
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape) : shape_(shape), data_(shape.size(), T{}) {}
  Tensor(Shape shape, std::vector<T> data)
      : shape_(shape), data_(std::move(data)) {
    DNNFI_EXPECTS(data_.size() == shape_.size());
  }

  const Shape& shape() const noexcept { return shape_; }
  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }

  template <bool Checked = detail::kCheckedAccess>
  T& operator[](std::size_t i) {
    if constexpr (Checked) {
      detail::check_access(i < data_.size(), "i < tensor.size()",
                           std::source_location::current());
    }
    return data_[i];
  }
  template <bool Checked = detail::kCheckedAccess>
  const T& operator[](std::size_t i) const {
    if constexpr (Checked) {
      detail::check_access(i < data_.size(), "i < tensor.size()",
                           std::source_location::current());
    }
    return data_[i];
  }

  T& at(std::size_t n, std::size_t c, std::size_t h, std::size_t w) {
    return data_[shape_.index(n, c, h, w)];
  }
  const T& at(std::size_t n, std::size_t c, std::size_t h, std::size_t w) const {
    return data_[shape_.index(n, c, h, w)];
  }

  std::span<T> data() noexcept { return data_; }
  std::span<const T> data() const noexcept { return data_; }

  TensorView<T> view() noexcept { return {shape_, data_.data()}; }
  TensorView<const T> view() const noexcept { return {shape_, data_.data()}; }

  void fill(T v) { std::fill(data_.begin(), data_.end(), v); }

  /// Resizes to `shape`, zero-filling; reuses storage when sizes match.
  void reshape(Shape shape) {
    shape_ = shape;
    data_.assign(shape.size(), T{});
  }

  /// Becomes a copy of `src`, reusing existing capacity when possible.
  void assign(TensorView<const T> src) {
    shape_ = src.shape();
    const auto s = src.data();
    data_.assign(s.begin(), s.end());
  }

 private:
  Shape shape_{1, 1, 1, 0};
  std::vector<T> data_;
};

/// Element-wise conversion between any two supported numeric types, via
/// double (every type converts exactly to double except DOUBLE->narrower,
/// which rounds exactly as the target type defines).
template <typename To, typename From>
Tensor<To> convert(const Tensor<From>& src) {
  Tensor<To> dst(src.shape());
  for (std::size_t i = 0; i < src.size(); ++i) {
    dst[i] = numeric::numeric_traits<To>::from_double(
        numeric::numeric_traits<From>::to_double(src[i]));
  }
  return dst;
}

// The FLOAT16 <-> FLOAT pairs take the vectorized batch path. float narrows
// exactly through double and Half applies the same rounding and NaN rule
// either way, so these are bit-identical to the generic loop above.
template <>
inline Tensor<float> convert<float, numeric::Half>(
    const Tensor<numeric::Half>& src) {
  Tensor<float> dst(src.shape());
  numeric::half_to_float_n(src.data().data(), dst.data().data(), src.size());
  return dst;
}
template <>
inline Tensor<numeric::Half> convert<numeric::Half, float>(
    const Tensor<float>& src) {
  Tensor<numeric::Half> dst(src.shape());
  numeric::float_to_half_n(src.data().data(), dst.data().data(), src.size());
  return dst;
}

/// L2 distance between two same-shaped tensors, computed in double.
/// This is the Euclidean distance used for the paper's Fig 7.
template <typename T>
double euclidean_distance(TensorView<const T> a, TensorView<const T> b) {
  DNNFI_EXPECTS(a.shape() == b.shape());
  double acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = numeric::numeric_traits<T>::to_double(a[i]) -
                     numeric::numeric_traits<T>::to_double(b[i]);
    // Clamp non-finite deltas so one Inf doesn't hide layer trends.
    const double dd = std::isfinite(d) ? d : 1e30;
    acc += dd * dd;
  }
  return std::sqrt(acc);
}
template <typename T>
double euclidean_distance(const Tensor<T>& a, const Tensor<T>& b) {
  return euclidean_distance<T>(a.view(), b.view());
}

/// True when two same-shaped views hold byte-identical element data — the
/// masked-fault test of incremental replay (NaN- and -0.0-exact, unlike
/// operator== on the values). Raw memcmp: every datapath type is a
/// trivially copyable scalar with no padding.
template <typename T>
bool bitwise_equal(TensorView<const T> a, TensorView<const T> b) {
  static_assert(std::is_trivially_copyable_v<T>);
  DNNFI_EXPECTS(a.shape() == b.shape());
  return std::memcmp(a.data().data(), b.data().data(),
                     a.size() * sizeof(T)) == 0;
}
template <typename T>
bool bitwise_equal(const Tensor<T>& a, const Tensor<T>& b) {
  return bitwise_equal<T>(a.view(), b.view());
}

/// Count of elements whose bit patterns differ (paper's Table 5 metric).
template <typename T>
std::size_t bitwise_mismatch_count(TensorView<const T> a, TensorView<const T> b) {
  DNNFI_EXPECTS(a.shape() == b.shape());
  std::size_t n = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (numeric::numeric_traits<T>::to_bits(a[i]) !=
        numeric::numeric_traits<T>::to_bits(b[i]))
      ++n;
  }
  return n;
}
template <typename T>
std::size_t bitwise_mismatch_count(const Tensor<T>& a, const Tensor<T>& b) {
  return bitwise_mismatch_count<T>(a.view(), b.view());
}

/// Min/max over all elements, in double.
template <typename T>
std::pair<double, double> value_range(TensorView<const T> t) {
  DNNFI_EXPECTS(!t.empty());
  double lo = numeric::numeric_traits<T>::to_double(t[0]);
  double hi = lo;
  for (std::size_t i = 1; i < t.size(); ++i) {
    const double v = numeric::numeric_traits<T>::to_double(t[i]);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  return {lo, hi};
}
template <typename T>
std::pair<double, double> value_range(const Tensor<T>& t) {
  return value_range<T>(t.view());
}

}  // namespace dnnfi::tensor
