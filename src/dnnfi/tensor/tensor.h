// Dense CHW tensors. Single-image inference uses rank-3 (C,H,W) logical
// shapes; weights use rank-4 (Co,Ci,Kh,Kw). Everything is stored row-major
// in one contiguous vector so a fault-site "element index" maps 1:1 to a
// buffer word in the accelerator model.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "dnnfi/common/expects.h"
#include "dnnfi/numeric/traits.h"

namespace dnnfi::tensor {

/// Logical shape with up to 4 dimensions (unused leading dims are 1).
struct Shape {
  std::size_t n = 1;  ///< outermost (batch or output-channel count)
  std::size_t c = 1;  ///< channels (or input channels for weights)
  std::size_t h = 1;  ///< rows
  std::size_t w = 1;  ///< columns

  constexpr std::size_t size() const noexcept { return n * c * h * w; }

  constexpr std::size_t index(std::size_t in, std::size_t ic, std::size_t ih,
                              std::size_t iw) const {
    DNNFI_EXPECTS(in < n && ic < c && ih < h && iw < w);
    return ((in * c + ic) * h + ih) * w + iw;
  }

  friend constexpr bool operator==(const Shape&, const Shape&) = default;
};

/// Channel-major shape helper for single images.
constexpr Shape chw(std::size_t c, std::size_t h, std::size_t w) {
  return Shape{1, c, h, w};
}
/// Weight shape helper: Co output channels, Ci input channels, Kh x Kw.
constexpr Shape oihw(std::size_t co, std::size_t ci, std::size_t kh,
                     std::size_t kw) {
  return Shape{co, ci, kh, kw};
}
/// Flat vector shape.
constexpr Shape vec(std::size_t len) { return Shape{1, 1, 1, len}; }

/// Owning dense tensor of T.
template <typename T>
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape) : shape_(shape), data_(shape.size(), T{}) {}
  Tensor(Shape shape, std::vector<T> data)
      : shape_(shape), data_(std::move(data)) {
    DNNFI_EXPECTS(data_.size() == shape_.size());
  }

  const Shape& shape() const noexcept { return shape_; }
  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }

  T& operator[](std::size_t i) {
    DNNFI_EXPECTS(i < data_.size());
    return data_[i];
  }
  const T& operator[](std::size_t i) const {
    DNNFI_EXPECTS(i < data_.size());
    return data_[i];
  }

  T& at(std::size_t n, std::size_t c, std::size_t h, std::size_t w) {
    return data_[shape_.index(n, c, h, w)];
  }
  const T& at(std::size_t n, std::size_t c, std::size_t h, std::size_t w) const {
    return data_[shape_.index(n, c, h, w)];
  }

  std::span<T> data() noexcept { return data_; }
  std::span<const T> data() const noexcept { return data_; }

  void fill(T v) { std::fill(data_.begin(), data_.end(), v); }

  /// Resizes to `shape`, zero-filling; reuses storage when sizes match.
  void reshape(Shape shape) {
    shape_ = shape;
    data_.assign(shape.size(), T{});
  }

 private:
  Shape shape_{1, 1, 1, 0};
  std::vector<T> data_;
};

/// Element-wise conversion between any two supported numeric types, via
/// double (every type converts exactly to double except DOUBLE->narrower,
/// which rounds exactly as the target type defines).
template <typename To, typename From>
Tensor<To> convert(const Tensor<From>& src) {
  Tensor<To> dst(src.shape());
  for (std::size_t i = 0; i < src.size(); ++i) {
    dst[i] = numeric::numeric_traits<To>::from_double(
        numeric::numeric_traits<From>::to_double(src[i]));
  }
  return dst;
}

/// L2 distance between two same-shaped tensors, computed in double.
/// This is the Euclidean distance used for the paper's Fig 7.
template <typename T>
double euclidean_distance(const Tensor<T>& a, const Tensor<T>& b) {
  DNNFI_EXPECTS(a.shape() == b.shape());
  double acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = numeric::numeric_traits<T>::to_double(a[i]) -
                     numeric::numeric_traits<T>::to_double(b[i]);
    // Clamp non-finite deltas so one Inf doesn't hide layer trends.
    const double dd = std::isfinite(d) ? d : 1e30;
    acc += dd * dd;
  }
  return std::sqrt(acc);
}

/// Count of elements whose bit patterns differ (paper's Table 5 metric).
template <typename T>
std::size_t bitwise_mismatch_count(const Tensor<T>& a, const Tensor<T>& b) {
  DNNFI_EXPECTS(a.shape() == b.shape());
  std::size_t n = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (numeric::numeric_traits<T>::to_bits(a[i]) !=
        numeric::numeric_traits<T>::to_bits(b[i]))
      ++n;
  }
  return n;
}

/// Min/max over all elements, in double.
template <typename T>
std::pair<double, double> value_range(const Tensor<T>& t) {
  DNNFI_EXPECTS(!t.empty());
  double lo = numeric::numeric_traits<T>::to_double(t[0]);
  double hi = lo;
  for (std::size_t i = 1; i < t.size(); ++i) {
    const double v = numeric::numeric_traits<T>::to_double(t[i]);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  return {lo, hi};
}

}  // namespace dnnfi::tensor
