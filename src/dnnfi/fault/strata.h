// Stratification of a campaign's fault-site population (DESIGN.md §12).
//
// The paper's Fig 4 shows SDC probability is concentrated in a handful of
// high-exponent and sign bits; uniform sampling burns most trials on
// provably-masked strata. A StratumSet partitions the exact population the
// uniform sampler draws from along three axes:
//
//   bit class  — the struck bit's role in the word: sign, high/low half of
//                the exponent (integer field for fixed-point formats), and
//                high/low half of the mantissa (fraction field),
//   layer      — the logical paper-layer (block) of the struck site,
//   latch      — the datapath latch class (datapath campaigns only; buffer
//                site classes have no latch axis).
//
// Each stratum h carries the *exact* probability W_h that one uniform draw
// lands in it: the product of the layer weight the base sampler uses (MACs,
// or occupied-words x MACs for buffers), the bit-class width fraction, and
// the uniform 1/4 latch factor. The weights sum to 1 and every site of the
// inventory maps to exactly one stratum (tests/test_stratified_sampling.cpp
// locks the partition down for both geometries), which is what makes the
// Horvitz–Thompson reweighting in adaptive_sampler.h unbiased.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dnnfi/accel/datapath.h"
#include "dnnfi/common/rng.h"
#include "dnnfi/fault/descriptor.h"
#include "dnnfi/fault/sampler.h"
#include "dnnfi/numeric/dtype.h"

namespace dnnfi::fault {

/// The struck bit's role in the stored word. For floating-point formats the
/// "exp" classes split the exponent field; for fixed-point formats they
/// split the integer field (the same "value-scale bits" role), and the
/// "mant" classes split the mantissa / fraction field.
enum class BitClass : std::uint8_t {
  kSign,
  kExpHigh,  ///< upper half of the exponent / integer field
  kExpLow,   ///< lower half of the exponent / integer field
  kMantHigh, ///< upper half of the mantissa / fraction field
  kMantLow,  ///< lower half of the mantissa / fraction field
};

inline constexpr std::array<BitClass, 5> kAllBitClasses = {
    BitClass::kSign, BitClass::kExpHigh, BitClass::kExpLow,
    BitClass::kMantHigh, BitClass::kMantLow};

constexpr const char* bit_class_name(BitClass c) {
  switch (c) {
    case BitClass::kSign:     return "sign";
    case BitClass::kExpHigh:  return "exp-high";
    case BitClass::kExpLow:   return "exp-low";
    case BitClass::kMantHigh: return "mant-high";
    case BitClass::kMantLow:  return "mant-low";
  }
  return "?";
}

/// Contiguous bit range [lo, lo + count), bit 0 = LSB.
struct BitRange {
  int lo = 0;
  int count = 0;
};

/// Partition of [0, dtype_width) into the five classes, indexed by
/// kAllBitClasses order. Every bit belongs to exactly one class; classes
/// are never empty for the six paper formats (the narrowest integer field,
/// FP16's 5-bit exponent, still splits 3 + 2).
std::array<BitRange, 5> bit_class_layout(numeric::DType dtype);

/// The class containing `bit` (which must be within the format's width).
BitClass bit_class_of(numeric::DType dtype, int bit);

/// One stratum of the campaign population.
struct Stratum {
  int block = 0;  ///< logical paper-layer, 1-based
  BitClass bits = BitClass::kSign;
  /// Latch class; set iff the campaign samples datapath latches.
  std::optional<accel::DatapathLatch> latch;

  /// Canonical identity, e.g. "b3/exp-high/accumulator" or "b3/sign".
  /// Stable across runs; checkpoints and stats files carry it.
  std::string id() const;
};

/// The full stratification of one campaign's site population, with exact
/// per-stratum sampling weights. Strata are ordered canonically: ascending
/// block, then kAllBitClasses order, then kAllDatapathLatches order — the
/// order is part of the determinism contract (stratum index h keys the RNG
/// substream derive_stream(seed, h, t)).
class StratumSet {
 public:
  /// Builds the partition for campaigns of `site` under `sampler`'s
  /// (topology, dtype, geometry). `base` carries the campaign's op/burst/
  /// storage fields; its fixed_bit/fixed_block/fixed_latch must be unset
  /// (stratified campaigns stratify the whole population).
  StratumSet(const Sampler& sampler, SiteClass site,
             const SampleConstraint& base = {});

  std::size_t size() const noexcept { return strata_.size(); }
  const Stratum& stratum(std::size_t h) const { return strata_.at(h); }
  /// Exact P(uniform draw lands in stratum h); the weights sum to 1.
  double weight(std::size_t h) const { return weights_.at(h); }
  SiteClass site() const noexcept { return site_; }
  /// Width of the stored word bits are drawn from (storage override aware).
  int word_width() const noexcept { return width_; }

  /// Maps a descriptor of this population to its unique stratum index.
  std::size_t index_of(const FaultDescriptor& fd) const;

  /// Draws one site conditioned on stratum h: the bit uniform over the
  /// stratum's bit class, the layer by the base sampler's weights within
  /// the stratum's block, the latch fixed. Draw order (one `below` for the
  /// bit, then the base sampler's own draws) is part of the determinism
  /// contract.
  FaultDescriptor sample(std::size_t h, Rng& rng) const;

 private:
  const Sampler* sampler_;
  SiteClass site_;
  SampleConstraint base_;
  numeric::DType word_dtype_;
  int width_ = 0;
  std::array<BitRange, 5> layout_{};
  std::vector<Stratum> strata_;
  std::vector<double> weights_;
  /// block value -> dense block ordinal in this set (or -1 if absent).
  std::vector<int> block_slot_;
  std::size_t num_latches_ = 1;  ///< 4 for datapath, 1 (no axis) otherwise
};

}  // namespace dnnfi::fault
