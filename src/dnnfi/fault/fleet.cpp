#include "dnnfi/fault/fleet.h"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace dnnfi::fault {

namespace {

Error bad_spec(const std::string& entry, const std::string& why) {
  return Error{Errc::kInvalidArgument,
               "host spec '" + entry + "': " + why +
                   " (expected host:slots[:workdir])"};
}

Expected<HostSpec> parse_one(const std::string& entry) {
  const auto first = entry.find(':');
  if (first == std::string::npos)
    return bad_spec(entry, "missing ':slots'");
  HostSpec spec;
  spec.host = entry.substr(0, first);
  if (spec.host.empty()) return bad_spec(entry, "empty host name");
  const auto second = entry.find(':', first + 1);
  const std::string slots_str =
      second == std::string::npos
          ? entry.substr(first + 1)
          : entry.substr(first + 1, second - first - 1);
  try {
    std::size_t used = 0;
    spec.slots = std::stoi(slots_str, &used);
    if (used != slots_str.size()) throw std::invalid_argument(slots_str);
  } catch (const std::exception&) {
    return bad_spec(entry, "slot count '" + slots_str + "' is not a number");
  }
  if (spec.slots < 1)
    return bad_spec(entry, "slot count must be >= 1");
  if (second != std::string::npos) {
    spec.workdir = entry.substr(second + 1);
    if (spec.workdir.empty())
      return bad_spec(entry, "workdir given but empty");
  }
  return spec;
}

}  // namespace

Expected<std::vector<HostSpec>> parse_hosts(const std::string& csv) {
  std::vector<HostSpec> specs;
  std::stringstream ss(csv);
  std::string entry;
  while (std::getline(ss, entry, ',')) {
    if (entry.empty()) continue;
    auto spec = parse_one(entry);
    if (!spec.ok()) return spec.error();
    specs.push_back(std::move(spec).value());
  }
  if (specs.empty())
    return fail(Errc::kInvalidArgument, "--hosts lists no hosts");
  return specs;
}

Expected<std::vector<HostSpec>> parse_hosts_file(const std::string& path) {
  std::ifstream in(path);
  if (!in)
    return fail(Errc::kIo, "hosts file " + path + ": cannot open for reading");
  std::vector<HostSpec> specs;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    // Strip comments and surrounding whitespace.
    if (const auto hash = line.find('#'); hash != std::string::npos)
      line.erase(hash);
    const auto b = line.find_first_not_of(" \t\r");
    if (b == std::string::npos) continue;
    const auto e = line.find_last_not_of(" \t\r");
    auto spec = parse_one(line.substr(b, e - b + 1));
    if (!spec.ok())
      return fail(Errc::kInvalidArgument,
                  "hosts file " + path + " line " + std::to_string(lineno) +
                      ": " + spec.error().message);
    specs.push_back(std::move(spec).value());
  }
  if (specs.empty())
    return fail(Errc::kInvalidArgument,
                "hosts file " + path + " lists no hosts");
  return specs;
}

Fleet::Fleet(std::vector<HostSpec> specs, FleetConfig cfg)
    : cfg_(std::move(cfg)) {
  for (const HostSpec& s : specs) nodes_.push_back(make_node(s, next_index_++));
}

std::unique_ptr<Fleet::Node> Fleet::make_node(const HostSpec& spec,
                                              int index) {
  auto node = std::make_unique<Node>();
  node->id = spec.host + "#" + std::to_string(index);
  node->spec = spec;
  std::string scratch = spec.workdir;
  if (scratch.empty()) {
    // Localhost nodes scratch under the supervisor's checkpoint directory
    // (observable, cleaned with it); real remote hosts get a /tmp path the
    // worker creates itself.
    scratch = spec.is_local()
                  ? cfg_.scratch_root + "/node" + std::to_string(index)
                  : "/tmp/dnnfi_fleet/node" + std::to_string(index);
  }
  node->transport = std::make_unique<RemoteTransport>(spec.host, scratch);
  return node;
}

Fleet::Node* Fleet::acquire(const std::string& avoid) {
  const TimePoint now = Clock::now();
  Node* best = nullptr;
  bool best_avoided = false;
  for (auto& n : nodes_) {
    if (!n->usable(now)) continue;
    const bool avoided = !avoid.empty() && n->id == avoid;
    // Preference order: non-avoided beats avoided; within a class, least
    // busy wins; remaining ties keep list order (first wins).
    if (best == nullptr || (best_avoided && !avoided) ||
        (best_avoided == avoided && n->busy < best->busy)) {
      best = n.get();
      best_avoided = avoided;
    }
  }
  if (best != nullptr) ++best->busy;
  return best;
}

ReleaseOutcome Fleet::release(Node& node, bool success) {
  if (node.busy > 0) --node.busy;
  ReleaseOutcome out;
  if (success) {
    node.fail_streak = 0;
    return out;
  }
  ++node.fail_streak;
  if (node.fail_streak >= cfg_.fail_limit) {
    double d = cfg_.quarantine_base_s;
    for (int i = 0; i < node.quarantine_count; ++i) d *= 2;
    d = std::min(d, cfg_.quarantine_cap_s);
    node.quarantined_until =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(d));
    ++node.quarantine_count;
    node.fail_streak = 0;
    out.quarantined = true;
    out.quarantine_s = d;
  }
  return out;
}

std::pair<int, int> Fleet::reload(const std::vector<HostSpec>& specs) {
  // Diff by host name, positionally within a name: `host:2` twice in both
  // lists keeps both nodes and their health; dropping one drains the later.
  int joined = 0;
  int drained = 0;
  std::vector<Node*> keep;
  for (const HostSpec& s : specs) {
    Node* found = nullptr;
    for (auto& n : nodes_) {
      if (n->spec.host != s.host) continue;
      if (std::find(keep.begin(), keep.end(), n.get()) != keep.end())
        continue;
      found = n.get();
      break;
    }
    if (found != nullptr) {
      // Slot counts and workdirs follow the new spec; health survives.
      found->spec.slots = s.slots;
      if (found->draining) {
        found->draining = false;
        ++joined;
      }
      keep.push_back(found);
    } else {
      nodes_.push_back(make_node(s, next_index_++));
      keep.push_back(nodes_.back().get());
      ++joined;
    }
  }
  for (auto& n : nodes_) {
    const bool kept =
        std::find(keep.begin(), keep.end(), n.get()) != keep.end();
    if (!kept && !n->draining) {
      n->draining = true;
      ++drained;
    }
  }
  // Fully idle drained nodes can go immediately; busy ones are reaped by
  // the supervisor when their last worker exits.
  nodes_.erase(std::remove_if(nodes_.begin(), nodes_.end(),
                              [](const std::unique_ptr<Node>& n) {
                                return n->draining && n->busy == 0;
                              }),
               nodes_.end());
  return {joined, drained};
}

int Fleet::total_slots() const {
  int total = 0;
  for (const auto& n : nodes_)
    if (!n->draining) total += n->spec.slots;
  return total;
}

bool Fleet::any_member() const {
  for (const auto& n : nodes_)
    if (!n->draining) return true;
  return false;
}

bool Fleet::any_idle_capacity(TimePoint now) const {
  for (const auto& n : nodes_) {
    if (n->draining) continue;
    if (n->busy < n->spec.slots) {
      (void)now;
      return true;  // usable now or after its quarantine expires
    }
  }
  return false;
}

std::optional<Fleet::TimePoint> Fleet::earliest_release(TimePoint now) const {
  std::optional<TimePoint> earliest;
  for (const auto& n : nodes_) {
    if (n->draining || !n->quarantined(now) || n->busy >= n->spec.slots)
      continue;
    if (!earliest || n->quarantined_until < *earliest)
      earliest = n->quarantined_until;
  }
  return earliest;
}

}  // namespace dnnfi::fault
