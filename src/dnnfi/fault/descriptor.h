// Hardware fault-site taxonomy and the descriptor of one injected fault.
// A FaultDescriptor fully determines a trial given (network, dtype, input):
// replaying it reproduces the identical corrupted execution.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "dnnfi/accel/accelerator.h"
#include "dnnfi/accel/datapath.h"
#include "dnnfi/accel/eyeriss.h"
#include "dnnfi/fault/fault_op.h"
#include "dnnfi/numeric/dtype.h"

namespace dnnfi::fault {

// The site taxonomy lives with the accelerator geometries (each model
// declares which classes it implements); re-exported here so fault-module
// consumers keep spelling `fault::SiteClass` etc.
using accel::SiteClass;
using accel::kAllSiteClasses;
using accel::kBufferSiteClasses;
using accel::site_class_name;
using accel::buffer_of;

/// One sampled single-event upset.
struct FaultDescriptor {
  SiteClass cls = SiteClass::kDatapathLatch;
  accel::DatapathLatch latch = accel::DatapathLatch::kAccumulator;

  std::size_t mac_ordinal = 0;  ///< which conv/FC layer (execution order)
  std::size_t layer_index = 0;  ///< index into NetworkSpec::layers
  int block = 0;                ///< logical paper-layer (1-based)

  /// Meaning depends on cls:
  ///   datapath / psum-reg : flat output-element index
  ///   filter-sram         : flat weight index
  ///   global-buffer/img-reg: flat input-element index
  /// Exception: a systolic operand-weight latch strike holds the flat
  /// weight index of the stationary weight (see accel::SystolicArray).
  std::size_t element = 0;
  std::size_t step = 0;  ///< accumulation step (datapath / psum-reg)

  // Img REG reuse scope.
  std::size_t out_channel = 0;
  std::size_t out_row = 0;

  int bit = 0;    ///< first affected bit, 0 = LSB
  int burst = 1;  ///< adjacent bits affected (1 = SEU; >1 = multi-bit upset)

  /// The fault operation applied to the struck word. The sampler always
  /// fills it; a default-constructed (identity) op means "legacy toggle
  /// burst of (bit, burst)" so hand-built descriptors keep working.
  FaultOp op;

  /// Geometry the site was sampled on. Drives describe(); the campaign
  /// lowers through the matching accel::AcceleratorModel.
  accel::AcceleratorKind geom = accel::AcceleratorKind::kEyeriss;
  std::size_t pe_row = 0;  ///< struck PE row (array geometries)
  std::size_t pe_col = 0;  ///< struck PE column (array geometries)

  /// Reduced-precision buffer storage (Proteus-style protocol, the paper's
  /// deferred future work): when set, the upset strikes the value as
  /// *stored* in this format; the datapath still computes in its own type.
  /// Only meaningful for buffer site classes.
  std::optional<numeric::DType> storage;

  /// The operation to apply, resolving the legacy identity-op convention.
  FaultOp effective_op() const {
    return op.is_identity() ? FaultOp::flip(bit, burst) : op;
  }

  /// Human-readable one-liner for logs and examples.
  std::string describe() const;
};

}  // namespace dnnfi::fault
