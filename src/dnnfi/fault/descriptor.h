// Hardware fault-site taxonomy and the descriptor of one injected fault.
// A FaultDescriptor fully determines a trial given (network, dtype, input):
// replaying it reproduces the identical corrupted execution.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "dnnfi/accel/datapath.h"
#include "dnnfi/accel/eyeriss.h"
#include "dnnfi/numeric/dtype.h"

namespace dnnfi::fault {

/// Where the upset physically originates (paper §4.3: datapath latches and
/// buffers, inside and outside PEs).
enum class SiteClass {
  kDatapathLatch,  ///< PE MAC latches (Fig 1b); read exactly once
  kGlobalBuffer,   ///< shared buffer ifmap word; reused by all consumers
  kFilterSram,     ///< per-PE weight word; reused across the whole fmap
  kImgReg,         ///< per-PE ifmap-row register; reused along one row
  kPsumReg,        ///< per-PE partial-sum register; read by next accumulate
};

inline constexpr std::array<SiteClass, 5> kAllSiteClasses = {
    SiteClass::kDatapathLatch, SiteClass::kGlobalBuffer,
    SiteClass::kFilterSram, SiteClass::kImgReg, SiteClass::kPsumReg};

inline constexpr std::array<SiteClass, 4> kBufferSiteClasses = {
    SiteClass::kGlobalBuffer, SiteClass::kFilterSram, SiteClass::kImgReg,
    SiteClass::kPsumReg};

constexpr const char* site_class_name(SiteClass c) {
  switch (c) {
    case SiteClass::kDatapathLatch: return "datapath";
    case SiteClass::kGlobalBuffer:  return "global-buffer";
    case SiteClass::kFilterSram:    return "filter-sram";
    case SiteClass::kImgReg:        return "img-reg";
    case SiteClass::kPsumReg:       return "psum-reg";
  }
  return "?";
}

/// Maps a buffer site class to the Eyeriss structure it models.
constexpr accel::BufferKind buffer_of(SiteClass c) {
  switch (c) {
    case SiteClass::kGlobalBuffer: return accel::BufferKind::kGlobalBuffer;
    case SiteClass::kFilterSram:   return accel::BufferKind::kFilterSram;
    case SiteClass::kImgReg:       return accel::BufferKind::kImgReg;
    case SiteClass::kPsumReg:      return accel::BufferKind::kPsumReg;
    case SiteClass::kDatapathLatch: break;
  }
  DNNFI_EXPECTS(false);
  return accel::BufferKind::kGlobalBuffer;
}

/// One sampled single-event upset.
struct FaultDescriptor {
  SiteClass cls = SiteClass::kDatapathLatch;
  accel::DatapathLatch latch = accel::DatapathLatch::kAccumulator;

  std::size_t mac_ordinal = 0;  ///< which conv/FC layer (execution order)
  std::size_t layer_index = 0;  ///< index into NetworkSpec::layers
  int block = 0;                ///< logical paper-layer (1-based)

  /// Meaning depends on cls:
  ///   datapath / psum-reg : flat output-element index
  ///   filter-sram         : flat weight index
  ///   global-buffer/img-reg: flat input-element index
  std::size_t element = 0;
  std::size_t step = 0;  ///< accumulation step (datapath / psum-reg)

  // Img REG reuse scope.
  std::size_t out_channel = 0;
  std::size_t out_row = 0;

  int bit = 0;    ///< first flipped bit, 0 = LSB
  int burst = 1;  ///< adjacent bits flipped (1 = SEU; >1 = multi-bit upset)

  /// Reduced-precision buffer storage (Proteus-style protocol, the paper's
  /// deferred future work): when set, the upset strikes the value as
  /// *stored* in this format; the datapath still computes in its own type.
  /// Only meaningful for buffer site classes.
  std::optional<numeric::DType> storage;

  /// Human-readable one-liner for logs and examples.
  std::string describe() const;
};

}  // namespace dnnfi::fault
