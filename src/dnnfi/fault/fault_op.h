// Mask-based fault operations (the "what" of an upset, orthogonal to the
// "where" of FaultDescriptor). Modeled on archie-qemu's fault_injection.h:
// an operation carries three bit masks applied to the struck word as
//
//   bits' = ((bits & ~set0) | set1) ^ toggle
//
// which subsumes the paper's XOR burst flip (a pure toggle mask), stuck-at-0
// and stuck-at-1 faults, and arbitrary multi-bit patterns. Mask bits above
// the struck format's MSB are dropped, like flip_burst always did.
//
// Algebra (locked down in test_properties.cpp): toggle is an involution
// (applying the same pure-toggle op twice is the identity), set0/set1 are
// idempotent, and the all-zero op is the identity element.
//
// Layering note: this header is a dependency-free leaf (numeric only) so
// that dnn/fault_hooks.h and accel/accelerator.h can both consume FaultOp
// without depending on the rest of the fault module.
#pragma once

#include <bit>
#include <charconv>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "dnnfi/common/expects.h"
#include "dnnfi/numeric/traits.h"

namespace dnnfi::fault {

/// Coarse classification of an op, for reporting and CLI round-trips.
enum class FaultOpKind : std::uint8_t {
  kToggle,  ///< pure XOR flip (the paper's SEU / burst model)
  kSet0,    ///< stuck-at-0: affected bits forced to 0
  kSet1,    ///< stuck-at-1: affected bits forced to 1
  kMixed,   ///< more than one mask populated
};

constexpr const char* fault_op_kind_name(FaultOpKind k) {
  switch (k) {
    case FaultOpKind::kToggle: return "toggle";
    case FaultOpKind::kSet0:   return "set0";
    case FaultOpKind::kSet1:   return "set1";
    case FaultOpKind::kMixed:  return "mixed";
  }
  return "?";
}

/// One mask-based fault operation. Default-constructed is the identity
/// (no affected bits) — every real fault site carries a non-identity op.
struct FaultOp {
  std::uint64_t set0 = 0;    ///< bits forced to 0
  std::uint64_t set1 = 0;    ///< bits forced to 1
  std::uint64_t toggle = 0;  ///< bits XOR-flipped

  /// Contiguous toggle burst: `len` adjacent bits starting at `bit`
  /// (len = 1 is the paper's single-event upset). Exactly the mask
  /// numeric::flip_burst XORs, so legacy burst campaigns are unchanged.
  static constexpr FaultOp flip(int bit, int len = 1) {
    return FaultOp{0, 0, burst_mask(bit, len)};
  }
  /// Stuck-at-0 over a contiguous run of bits.
  static constexpr FaultOp stuck0(int bit, int len = 1) {
    return FaultOp{burst_mask(bit, len), 0, 0};
  }
  /// Stuck-at-1 over a contiguous run of bits.
  static constexpr FaultOp stuck1(int bit, int len = 1) {
    return FaultOp{0, burst_mask(bit, len), 0};
  }
  /// Arbitrary absolute mask under one kind.
  static constexpr FaultOp pattern(FaultOpKind k, std::uint64_t mask) {
    DNNFI_EXPECTS(mask != 0 && k != FaultOpKind::kMixed);
    switch (k) {
      case FaultOpKind::kSet0: return FaultOp{mask, 0, 0};
      case FaultOpKind::kSet1: return FaultOp{0, mask, 0};
      default:                 return FaultOp{0, 0, mask};
    }
  }

  /// Union of all affected bit positions.
  constexpr std::uint64_t affected() const noexcept {
    return set0 | set1 | toggle;
  }
  constexpr bool is_identity() const noexcept { return affected() == 0; }
  /// Lowest affected bit position (the descriptor's reported `bit`).
  constexpr int lowest_bit() const noexcept {
    return affected() == 0 ? 0 : std::countr_zero(affected());
  }
  constexpr FaultOpKind kind() const noexcept {
    const int populated = (set0 != 0) + (set1 != 0) + (toggle != 0);
    if (populated > 1) return FaultOpKind::kMixed;
    if (set0 != 0) return FaultOpKind::kSet0;
    if (set1 != 0) return FaultOpKind::kSet1;
    return FaultOpKind::kToggle;
  }
  /// True when the op is exactly the legacy contiguous toggle burst at
  /// `bit` of length `len` (the default campaign model).
  constexpr bool is_flip_burst(int bit, int len) const noexcept {
    return set0 == 0 && set1 == 0 && toggle == burst_mask(bit, len);
  }

  /// "toggle mask=0x0001", "set1 mask=0x00c0", "mixed set0=0x1 set1=0x2
  /// toggle=0x4". Masks print as zero-padded hex, at least four digits.
  std::string describe() const;

  friend constexpr bool operator==(const FaultOp&, const FaultOp&) = default;

  static constexpr std::uint64_t burst_mask(int bit, int len) {
    DNNFI_EXPECTS(bit >= 0 && bit < 64 && len >= 1);
    std::uint64_t m = 0;
    for (int i = 0; i < len && bit + i < 64; ++i)
      m |= std::uint64_t{1} << (bit + i);
    return m;
  }
};

/// Applies `op` to `v` in T's bit representation. Mask bits above T's MSB
/// are dropped (numeric_traits' bits_type narrowing), mirroring flip_burst.
template <typename T>
constexpr T apply_op(T v, const FaultOp& op) {
  using Tr = numeric::numeric_traits<T>;
  using B = typename Tr::bits_type;
  B b = Tr::to_bits(v);
  b = static_cast<B>(b & static_cast<B>(~op.set0));
  b = static_cast<B>(b | static_cast<B>(op.set1));
  b = static_cast<B>(b ^ static_cast<B>(op.toggle));
  return Tr::from_bits(b);
}

/// True when `op` turns the lowest affected bit of `v` from 0 into 1 (the
/// direction the paper finds more SDC-prone for high-order bits). For a
/// single-bit toggle this is exactly flip_is_zero_to_one.
template <typename T>
constexpr bool op_zero_to_one(T v, const FaultOp& op) {
  using Tr = numeric::numeric_traits<T>;
  using B = typename Tr::bits_type;
  const B affected = static_cast<B>(op.affected());
  if (affected == 0) return false;
  const int bit = std::countr_zero(affected);
  const bool before = (Tr::to_bits(v) >> bit) & 1U;
  const bool after = (Tr::to_bits(apply_op(v, op)) >> bit) & 1U;
  return !before && after;
}

namespace detail {
/// Lower-case hex with "0x" prefix, zero-padded to at least four digits.
inline std::string hex_mask(std::uint64_t m) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string s;
  while (m != 0) {
    s.insert(s.begin(), kDigits[m & 0xF]);
    m >>= 4;
  }
  while (s.size() < 4) s.insert(s.begin(), '0');
  return "0x" + s;
}
}  // namespace detail

inline std::string FaultOp::describe() const {
  const FaultOpKind k = kind();
  std::string s = fault_op_kind_name(k);
  if (k != FaultOpKind::kMixed)
    return s + " mask=" + detail::hex_mask(affected());
  return s + " set0=" + detail::hex_mask(set0) +
         " set1=" + detail::hex_mask(set1) +
         " toggle=" + detail::hex_mask(toggle);
}

/// Bit-position-independent description of a fault operation, as selected by
/// `--fault-op`: the kind plus a *relative* footprint, materialized at the
/// sampled bit position per trial. `pattern == 0` means a contiguous burst
/// of `burst` bits (the legacy model); a non-zero pattern is an arbitrary
/// multi-bit mask anchored at its lowest set bit.
///
/// Canonical spellings (campaign identity in checkpoints/stats):
///   "toggle"        single-bit flip (the default)
///   "toggle:3"      3-bit contiguous toggle burst (the legacy --burst model)
///   "set1:4"        stuck-at-1 over a 4-bit contiguous run
///   "set0:0x5"      stuck-at-0 over two bits one apart
struct FaultOpSpec {
  FaultOpKind kind = FaultOpKind::kToggle;
  int burst = 1;               ///< contiguous footprint when pattern == 0
  std::uint64_t pattern = 0;   ///< relative mask; 0 = contiguous burst

  constexpr bool is_default() const noexcept {
    return kind == FaultOpKind::kToggle && burst == 1 && pattern == 0;
  }

  /// Materializes the op at bit position `bit` (the per-trial sampled bit).
  constexpr FaultOp at(int bit) const {
    std::uint64_t rel = pattern != 0 ? pattern : FaultOp::burst_mask(0, burst);
    rel >>= std::countr_zero(rel);  // anchor at the lowest set bit
    return FaultOp::pattern(kind, rel << bit);
  }

  std::string to_string() const {
    std::string s = fault_op_kind_name(kind);
    if (pattern != 0) return s + ":" + detail::hex_mask(pattern);
    if (burst > 1) return s + ":" + std::to_string(burst);
    return s;
  }

  /// Parses "kind", "kind:<burst>", or "kind:0x<mask>"; nullopt on error.
  static std::optional<FaultOpSpec> parse(std::string_view s) {
    FaultOpSpec spec;
    const std::size_t colon = s.find(':');
    const std::string_view head = s.substr(0, colon);
    if (head == "toggle") spec.kind = FaultOpKind::kToggle;
    else if (head == "set0") spec.kind = FaultOpKind::kSet0;
    else if (head == "set1") spec.kind = FaultOpKind::kSet1;
    else return std::nullopt;
    if (colon == std::string_view::npos) return spec;
    std::string_view tail = s.substr(colon + 1);
    if (tail.empty()) return std::nullopt;
    if (tail.substr(0, 2) == "0x") {
      tail.remove_prefix(2);
      auto [p, ec] = std::from_chars(tail.data(), tail.data() + tail.size(),
                                     spec.pattern, 16);
      if (ec != std::errc{} || p != tail.data() + tail.size() ||
          spec.pattern == 0)
        return std::nullopt;
    } else {
      auto [p, ec] =
          std::from_chars(tail.data(), tail.data() + tail.size(), spec.burst);
      if (ec != std::errc{} || p != tail.data() + tail.size() || spec.burst < 1)
        return std::nullopt;
    }
    return spec;
  }

  friend constexpr bool operator==(const FaultOpSpec&,
                                   const FaultOpSpec&) = default;
};

}  // namespace dnnfi::fault
