// Uniform fault-site sampling over (occupied storage bits x residency time).
//
// Soft errors strike uniformly in space and time. For datapath latches, the
// latch set is rewritten every MAC, so "time" weights a layer by its MAC
// count. For buffers, a word is vulnerable while it holds live data, so a
// layer is weighted by occupied-words x layer duration (MACs), and the word
// itself is uniform over the occupied footprint. Faults landing in
// unoccupied buffer space are architecturally masked and therefore excluded
// from sampling (the FIT model accounts for occupancy — DESIGN.md §4/5).
//
// Within-layer coordinates come from the accelerator geometry
// (accel::AcceleratorModel::sample_site): Eyeriss reproduces the seed draw
// order bit-for-bit; other geometries define their own site inventory.
#pragma once

#include <optional>
#include <vector>

#include "dnnfi/accel/accelerator.h"
#include "dnnfi/accel/dataflow.h"
#include "dnnfi/common/rng.h"
#include "dnnfi/fault/descriptor.h"
#include "dnnfi/numeric/dtype.h"

namespace dnnfi::fault {

/// Restrictions for stratified studies (per-bit, per-layer).
struct SampleConstraint {
  std::optional<int> fixed_bit;    ///< inject only this bit position
  std::optional<int> fixed_block;  ///< inject only in this logical layer
  std::optional<accel::DatapathLatch> fixed_latch;  ///< only this latch class
  /// Reduced-precision buffer storage: buffer upsets strike this format
  /// (and bits are sampled within its width) instead of the datapath type.
  std::optional<numeric::DType> buffer_storage;
  /// Adjacent bits affected per strike (1 = the paper's SEU model).
  int burst = 1;
  /// Fault operation applied at the sampled bit: toggle (default, the
  /// paper's XOR model), stuck-at-0, or stuck-at-1.
  FaultOpKind op_kind = FaultOpKind::kToggle;
  /// Arbitrary multi-bit footprint, relative to the sampled bit (anchored
  /// at its lowest set bit). Zero = contiguous burst of `burst` bits.
  std::uint64_t op_pattern = 0;

  /// The op descriptor these fields select (bit-position independent).
  FaultOpSpec op_spec() const noexcept {
    return FaultOpSpec{op_kind, burst, op_pattern};
  }
};

/// Samples fault descriptors for one (topology, dtype, geometry) triple.
class Sampler {
 public:
  Sampler(const dnn::NetworkSpec& spec, numeric::DType dtype,
          const accel::AcceleratorModel& model = accel::eyeriss_model());

  /// Draws one fault site of class `cls` from `rng`. `cls` must be in the
  /// geometry's site inventory (model().supports(cls)).
  FaultDescriptor sample(SiteClass cls, Rng& rng,
                         const SampleConstraint& constraint = {}) const;

  const std::vector<accel::LayerFootprint>& footprints() const noexcept {
    return footprints_;
  }
  numeric::DType dtype() const noexcept { return dtype_; }
  const accel::AcceleratorModel& model() const noexcept { return *model_; }

 private:
  std::size_t pick_layer(SiteClass cls, Rng& rng,
                         const SampleConstraint& constraint) const;

  dnn::NetworkSpec spec_;
  numeric::DType dtype_;
  const accel::AcceleratorModel* model_;
  std::vector<accel::LayerFootprint> footprints_;
};

}  // namespace dnnfi::fault
