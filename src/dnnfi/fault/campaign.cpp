#include "dnnfi/fault/campaign.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <limits>
#include <mutex>
#include <utility>

#include "dnnfi/common/thread_pool.h"
#include "dnnfi/fault/checkpoint.h"

namespace dnnfi::fault {

using numeric::DType;

std::string sampler_id(const CampaignOptions& opt) {
  return opt.sampler == SamplerMode::kStratified ? opt.stratified.to_string()
                                                 : std::string("uniform");
}

std::vector<StratumCounts> StratifiedResult::counts(
    const std::function<std::size_t(const OutcomeAccumulator&)>& metric)
    const {
  DNNFI_EXPECTS(weights.size() == per_stratum.size());
  std::vector<StratumCounts> c(per_stratum.size());
  for (std::size_t h = 0; h < per_stratum.size(); ++h) {
    c[h].weight = weights[h];
    c[h].hits = metric(per_stratum[h]);
    c[h].n = per_stratum[h].trials();
  }
  return c;
}

StratifiedEstimate StratifiedResult::sdc1() const {
  return stratified_estimate(
      counts([](const OutcomeAccumulator& a) { return a.sdc1().hits; }));
}
StratifiedEstimate StratifiedResult::sdc5() const {
  return stratified_estimate(
      counts([](const OutcomeAccumulator& a) { return a.sdc5().hits; }));
}
StratifiedEstimate StratifiedResult::sdc10() const {
  return stratified_estimate(
      counts([](const OutcomeAccumulator& a) { return a.sdc10().hits; }));
}
StratifiedEstimate StratifiedResult::sdc20() const {
  return stratified_estimate(
      counts([](const OutcomeAccumulator& a) { return a.sdc20().hits; }));
}

Estimate CampaignResult::rate(const Pred& pred) const {
  std::size_t hits = 0;
  for (const auto& t : trials) hits += pred(t) ? 1U : 0U;
  return estimate(hits, trials.size());
}

Estimate CampaignResult::rate_if(const Pred& filter, const Pred& pred) const {
  std::size_t hits = 0, n = 0;
  for (const auto& t : trials) {
    if (!filter(t)) continue;
    ++n;
    hits += pred(t) ? 1U : 0U;
  }
  return estimate(hits, n);
}

Estimate CampaignResult::sdc1() const {
  return rate([](const TrialRecord& t) { return t.outcome.sdc1; });
}
Estimate CampaignResult::sdc5() const {
  return rate([](const TrialRecord& t) { return t.outcome.sdc5; });
}
Estimate CampaignResult::sdc10() const {
  return rate([](const TrialRecord& t) { return t.outcome.sdc10; });
}
Estimate CampaignResult::sdc20() const {
  return rate([](const TrialRecord& t) { return t.outcome.sdc20; });
}

std::vector<std::size_t> block_end_layers(const dnn::NetworkSpec& spec) {
  std::vector<std::size_t> ends;
  for (int b = 1; b <= spec.num_blocks(); ++b) {
    std::size_t last = spec.layers.size();
    for (std::size_t i = 0; i < spec.layers.size(); ++i) {
      if (spec.layers[i].block == b &&
          spec.layers[i].kind != dnn::LayerKind::kSoftmax)
        last = i;
    }
    DNNFI_EXPECTS(last < spec.layers.size());
    ends.push_back(last);
  }
  return ends;
}

/// Type-erased backend interface; one TypedBackend<T> per datapath type.
/// The fingerprint is computed by Campaign (it only needs type-erased
/// accessors) and passed down so checkpoints can be validated.
struct Campaign::Backend {
  virtual ~Backend() = default;
  virtual ShardResult run_shard(const CampaignOptions& opt,
                                const ShardSpec& shard, const TrialSink* sink,
                                std::uint64_t fingerprint) const = 0;
  virtual StratifiedResult run_stratified(const CampaignOptions& opt,
                                          const ShardSpec& shard,
                                          std::uint64_t fingerprint) const = 0;
  virtual const dnn::NetworkSpec& spec() const = 0;
  virtual DType dtype() const = 0;
  virtual const Sampler& sampler() const = 0;
  virtual std::size_t num_inputs() const = 0;
  virtual const dnn::Prediction& golden_prediction(std::size_t i) const = 0;
  virtual const std::vector<BlockRange>& golden_block_ranges() const = 0;
};

template <typename T>
struct Campaign::TypedBackend final : Campaign::Backend {
  TypedBackend(const dnn::NetworkSpec& network_spec,
               const dnn::WeightsBlob& blob, std::vector<dnn::Example> inputs)
      : net(dnn::instantiate<T>(network_spec, blob)),
        site_sampler(network_spec, numeric::dtype_of<T>()),
        ends(block_end_layers(network_spec)) {
    DNNFI_EXPECTS(!inputs.empty());
    // Per-layer -> block-slot map, so the hot-path observer is a table
    // lookup instead of a std::find over the block-end list.
    layer_to_block.assign(net.num_layers(), -1);
    for (std::size_t b = 0; b < ends.size(); ++b)
      layer_to_block[ends[b]] = static_cast<int>(b);
    caches.reserve(inputs.size());
    predictions.reserve(inputs.size());
    ranges.assign(ends.size(), BlockRange{std::numeric_limits<double>::max(),
                                          std::numeric_limits<double>::lowest()});
    for (const auto& ex : inputs) {
      const dnn::Tensor<T> image = tensor::convert<T>(ex.image);
      dnn::ActivationCache<T> cache(net.plan(), image);
      predictions.push_back(net.interpret(cache.output()));
      for (std::size_t b = 0; b < ends.size(); ++b) {
        const auto [lo, hi] = tensor::value_range<T>(cache.act(ends[b]));
        ranges[b].lo = std::min(ranges[b].lo, lo);
        ranges[b].hi = std::max(ranges[b].hi, hi);
      }
      caches.push_back(std::move(cache));
    }
  }

  /// Golden truths for blocks a masked-fault early exit skips: in the full
  /// replay those blocks carry exactly the fault-free activations, so the
  /// detector verdict and block distance can be read off precomputed
  /// tables instead of replaying the suffix. The self-distance is almost
  /// always zero, but euclidean_distance clamps non-finite deltas to 1e30,
  /// so an activation holding Inf/NaN has a nonzero distance to itself —
  /// precomputing it (rather than assuming 0) keeps records byte-identical.
  struct GoldenTables {
    std::vector<char> fires;       ///< [input * blocks + b], iff detector
    std::vector<double> self_dist; ///< [input * blocks + b], iff distances
  };

  GoldenTables compute_golden(const CampaignOptions& opt) const {
    GoldenTables g;
    if (opt.incremental_replay && opt.detector) {
      g.fires.assign(caches.size() * ends.size(), 0);
      for (std::size_t in = 0; in < caches.size(); ++in) {
        for (std::size_t b = 0; b < ends.size(); ++b) {
          const auto act = caches[in].act(ends[b]);
          for (std::size_t i = 0; i < act.size(); ++i) {
            const double v = numeric::numeric_traits<T>::to_double(act[i]);
            if (opt.detector(static_cast<int>(b) + 1, v)) {
              g.fires[in * ends.size() + b] = 1;
              break;
            }
          }
        }
      }
    }
    if (opt.incremental_replay && opt.record_block_distances) {
      g.self_dist.assign(caches.size() * ends.size(), 0.0);
      for (std::size_t in = 0; in < caches.size(); ++in)
        for (std::size_t b = 0; b < ends.size(); ++b)
          g.self_dist[in * ends.size() + b] = tensor::euclidean_distance<T>(
              caches[in].act(ends[b]), caches[in].act(ends[b]));
    }
    return g;
  }

  /// One sampled-and-lowered trial awaiting execution. `idx` is the trial's
  /// slot in the caller's record buffer (its batch-relative index).
  struct Pending {
    std::size_t idx;
    std::size_t input;
    FaultDescriptor fd;
    dnn::AppliedFault af;
  };

  /// Executes one chunk's trials on the calling thread — the shared hot
  /// path of the uniform shard loop and the stratified runner. Sorts
  /// `pending` by (input, fault layer, idx) so trials sharing an activation
  /// cache and injection depth run back to back, keeping the cache segment
  /// hot; records land in slots[idx] when `slots` is non-null (restoring
  /// batch order for the caller) or in one reused scratch record otherwise.
  /// Each finished record is handed to done(pending, record, masked); all
  /// aggregation policy lives in the caller.
  template <typename Done>
  void execute_span(const CampaignOptions& opt, const dnn::Executor<T>& exec,
                    const GoldenTables& golden, std::vector<Pending>& pending,
                    TrialRecord* slots, const Done& done) const {
    const bool incremental = opt.incremental_replay;
    dnn::Workspace<T> ws(net.plan());
    const std::size_t last_end = ends.back();

    std::sort(pending.begin(), pending.end(),
              [](const Pending& a, const Pending& b) {
                if (a.input != b.input) return a.input < b.input;
                if (a.af.layer != b.af.layer) return a.af.layer < b.af.layer;
                return a.idx < b.idx;
              });

    // Per-chunk observer state, reset per trial; the closure itself is
    // built once per chunk.
    std::vector<double> dist(ends.size(), 0.0);
    const dnn::ActivationCache<T>* cache = nullptr;
    bool detected = false;
    double corruption = 0;
    const dnn::LayerObserver<T> observer =
        [&](std::size_t layer, tensor::ConstTensorView<T> act) {
          // Block-slot table lookup (hoisted out of the std::find the
          // observer used to do per layer).
          const int bslot = layer_to_block[layer];
          if (bslot < 0) return;
          const auto b = static_cast<std::size_t>(bslot);
          if (opt.detector && !detected) {
            const int block = bslot + 1;
            for (std::size_t i = 0; i < act.size(); ++i) {
              const double v = numeric::numeric_traits<T>::to_double(act[i]);
              if (opt.detector(block, v)) {
                detected = true;
                break;
              }
            }
          }
          if (opt.record_block_distances)
            dist[b] = tensor::euclidean_distance<T>(act, cache->act(layer));
          if (layer == last_end) {
            const std::size_t mism =
                tensor::bitwise_mismatch_count<T>(act, cache->act(layer));
            corruption =
                static_cast<double>(mism) / static_cast<double>(act.size());
          }
        };

    TrialRecord scratch;
    dnn::ReplayInfo replay;
    for (const Pending& p : pending) {
      TrialRecord& tr = slots ? slots[p.idx] : scratch;
      tr.input_index = p.input;
      tr.fault = p.fd;
      // Layers write record fields only when the fault touches them;
      // start from a fresh record so buffer reuse cannot leak one
      // trial's values into the next.
      tr.record = dnn::InjectionRecord{};

      cache = &caches[p.input];
      detected = false;
      corruption = 0;
      std::fill(dist.begin(), dist.end(), 0.0);

      // The final-corruption metric is cheap and always useful; keep
      // the observer on unconditionally. The fault was lowered in the
      // sampling pass, so run the executor directly instead of going
      // through inject().
      dnn::RunRequest<T> req;
      req.cache = cache;
      req.fault = &p.af;
      req.record = &tr.record;
      req.observer = &observer;
      req.early_exit = incremental;
      req.replay = &replay;
      const auto out = exec.run(ws, req);
      if (replay.masked) {
        // Blocks past the exit point would have replayed bit-identical
        // to the fault-free run; read their observations off the
        // precomputed golden tables. Final corruption stays exactly 0
        // when last_end was skipped (golden vs golden never mismatches).
        for (std::size_t b = 0; b < ends.size(); ++b) {
          if (ends[b] <= replay.masked_at) continue;
          if (opt.detector && !detected &&
              golden.fires[p.input * ends.size() + b] != 0)
            detected = true;
          if (opt.record_block_distances)
            dist[b] = golden.self_dist[p.input * ends.size() + b];
        }
      }
      tr.outcome = classify(predictions[p.input], net.interpret(out));
      tr.detected = detected;
      tr.output_corruption = corruption;
      if (opt.record_block_distances)
        tr.block_distance.assign(dist.begin(), dist.end());
      else
        tr.block_distance.clear();
      done(p, tr, replay.masked);
    }
  }

  void write_checkpoint(const ShardSpec& shard, std::uint64_t fingerprint,
                        std::uint64_t total, std::uint64_t begin,
                        std::uint64_t end, const ShardResult& st,
                        const std::string& accel_id,
                        const std::string& op_id) const {
    ShardCheckpoint ck;
    ck.fingerprint = fingerprint;
    ck.network = net.spec().name;
    ck.accel = accel_id;
    ck.fault_op = op_id;
    ck.trials_total = total;
    ck.shard_begin = begin;
    ck.shard_end = end;
    ck.next_trial = st.next_trial;
    ck.complete = st.complete;
    ck.masked_exits = st.masked_exits;
    ck.acc = st.acc;
    save_shard_checkpoint(shard.checkpoint, ck);
  }

  ShardResult run_shard(const CampaignOptions& opt, const ShardSpec& shard,
                        const TrialSink* sink,
                        std::uint64_t fingerprint) const override {
    DNNFI_EXPECTS(opt.sampler == SamplerMode::kUniform);
    const std::uint64_t total = opt.trials;
    const std::uint64_t begin = shard.begin;
    const std::uint64_t end = shard.end == 0 ? total : shard.end;
    DNNFI_EXPECTS(begin <= end && end <= total);

    // Geometry the shard samples from and lowers through. The default
    // (Eyeriss) reuses the backend's precomputed sampler so the hot path is
    // unchanged; other geometries build their model + sampler per run.
    const std::string accel_id = opt.accel.to_string();
    const std::string op_id = opt.constraint.op_spec().to_string();
    std::unique_ptr<accel::AcceleratorModel> owned_model;
    const accel::AcceleratorModel* model = &accel::eyeriss_model();
    const Sampler* sampler = &site_sampler;
    std::optional<Sampler> shard_sampler;
    if (!opt.accel.is_eyeriss()) {
      owned_model = accel::make_accelerator(opt.accel);
      model = owned_model.get();
      shard_sampler.emplace(net.spec(), numeric::dtype_of<T>(), *model);
      sampler = &*shard_sampler;
    }
    DNNFI_EXPECTS(model->supports(opt.site));

    ShardResult st;
    st.acc = OutcomeAccumulator(ends.size());
    st.next_trial = begin;

    if (!shard.checkpoint.empty() &&
        std::filesystem::exists(shard.checkpoint)) {
      ShardCheckpoint ck = load_shard_checkpoint(shard.checkpoint);
      if (ck.fingerprint != fingerprint)
        throw CheckpointError(
            Errc::kFingerprintMismatch,
            "checkpoint " + shard.checkpoint +
                ": campaign fingerprint mismatch (file was written by a run "
                "with different options; refusing to resume)");
      if (ck.trials_total != total || ck.shard_begin != begin ||
          ck.shard_end != end)
        throw CheckpointError(
            Errc::kShardMismatch,
            "checkpoint " + shard.checkpoint + ": shard range mismatch (file" +
                " covers [" + std::to_string(ck.shard_begin) + ", " +
                std::to_string(ck.shard_end) + ") of " +
                std::to_string(ck.trials_total) + " trials, run requests [" +
                std::to_string(begin) + ", " + std::to_string(end) + ") of " +
                std::to_string(total) + ")");
      if (auto axes = validate_checkpoint_axes(ck, accel_id, op_id); !axes.ok())
        throw CheckpointError(axes.error().code,
                              "checkpoint " + shard.checkpoint + ": " +
                                  axes.error().message);
      st.acc = std::move(ck.acc);
      st.next_trial = ck.next_trial;
      st.masked_exits = ck.masked_exits;
      st.resumed = true;
      if (ck.complete || st.next_trial == end) {
        st.next_trial = end;
        st.complete = true;
        return st;
      }
    }

    ThreadPool& pool = opt.pool ? *opt.pool : ThreadPool::global();
    const dnn::Executor<T> exec(net.plan());
    const GoldenTables golden = compute_golden(opt);

    // Batches exist only to bound checkpoint/progress/stop/cancel latency.
    // With none of those active, the whole remaining range is one batch so
    // the chunk layout (and per-chunk allocations) match the legacy run()
    // path. Batching never changes results (shard/batch invariance is
    // locked down by test_campaign_determinism), only reaction latency.
    const bool batched = !shard.checkpoint.empty() || opt.progress != nullptr ||
                         shard.stop_after > 0 || opt.cancel != nullptr;
    std::uint64_t batch_size = end - st.next_trial;
    if (batched) batch_size = std::max<std::uint64_t>(1, shard.batch);
    if (batch_size == 0) batch_size = 1;

    const auto t0 = std::chrono::steady_clock::now();
    std::uint64_t ran = 0;          // new trials executed by this call
    std::vector<TrialRecord> recbuf;  // one batch of records, iff sink
    std::mutex merge_mu;

    while (st.next_trial < end) {
      const std::uint64_t b0 = st.next_trial;
      const std::uint64_t b1 = std::min<std::uint64_t>(end, b0 + batch_size);
      const auto count = static_cast<std::size_t>(b1 - b0);
      if (sink) recbuf.resize(count);
      OutcomeAccumulator batch_acc(ends.size());

      // Chunk boundaries and per-trial RNG streams depend only on (count,
      // seed, b0); each worker holds one Workspace, one observer closure,
      // and one local accumulator for its whole share. Merging is exact
      // (ExactSum), so the merge order across chunks cannot matter.
      parallel_for_chunks(pool, count, [&](std::size_t cb, std::size_t ce) {
        // Sample and lower every trial of the chunk up front (each trial's
        // RNG stream depends only on its global index, so sampling order is
        // free); execute_span then runs them sorted by (input, fault
        // layer). Records land at recbuf[idx], which restores trial order
        // for the sink, and accumulator folds are exact (ExactSum), so
        // execution order cannot leak into results.
        std::vector<Pending> pending;
        pending.reserve(ce - cb);
        for (std::size_t i = cb; i < ce; ++i) {
          const std::uint64_t trial = b0 + i;
          Rng rng = derive_stream(opt.seed, trial);
          Pending p;
          p.idx = i;
          p.input = static_cast<std::size_t>(trial % caches.size());
          p.fd = sampler->sample(opt.site, rng, opt.constraint);
          p.af = lower(p.fd, net.mac_layers(), *model);
          pending.push_back(p);
        }
        OutcomeAccumulator local(ends.size());
        std::uint64_t local_masked = 0;
        execute_span(opt, exec, golden, pending,
                     sink ? recbuf.data() : nullptr,
                     [&](const Pending&, TrialRecord& tr, bool masked) {
                       local.add(tr);
                       if (masked) ++local_masked;
                     });
        const std::scoped_lock lk(merge_mu);
        batch_acc.merge(local);
        st.masked_exits += local_masked;
      });

      st.acc.merge(batch_acc);
      st.next_trial = b1;
      st.complete = st.next_trial == end;
      ran += count;

      if (sink)
        for (std::size_t i = 0; i < count; ++i) (*sink)(b0 + i, recbuf[i]);
      if (!shard.checkpoint.empty())
        write_checkpoint(shard, fingerprint, total, begin, end, st, accel_id,
                         op_id);
      if (opt.progress) {
        const double secs =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0)
                .count();
        CampaignProgress p;
        p.done = st.next_trial - begin;
        p.begin = begin;
        p.end = end;
        p.trials_per_sec =
            secs > 0 ? static_cast<double>(ran) / secs : 0.0;
        p.eta_seconds = p.trials_per_sec > 0
                            ? static_cast<double>(end - st.next_trial) /
                                  p.trials_per_sec
                            : 0.0;
        p.sdc1 = st.acc.sdc1();
        p.masked_exits = st.masked_exits;
        p.masked_exit_rate =
            p.done > 0
                ? static_cast<double>(st.masked_exits) /
                      static_cast<double>(p.done)
                : 0.0;
        opt.progress(p);
      }
      if (!st.complete && shard.stop_after > 0 && ran >= shard.stop_after)
        return st;  // clean preemption: checkpoint (if any) already on disk
      if (!st.complete && opt.cancel &&
          opt.cancel->load(std::memory_order_relaxed))
        return st;  // graceful shutdown: batch folded, checkpoint on disk
    }

    st.complete = true;
    // An empty shard (or one already finished on disk) never enters the
    // loop; still leave a checkpoint behind so resume tooling sees it.
    if (!shard.checkpoint.empty() && ran == 0 && !st.resumed)
      write_checkpoint(shard, fingerprint, total, begin, end, st, accel_id,
                       op_id);
    return st;
  }

  StratifiedResult run_stratified(const CampaignOptions& opt,
                                  const ShardSpec& shard,
                                  std::uint64_t fingerprint) const override {
    DNNFI_EXPECTS(opt.sampler == SamplerMode::kStratified);
    const std::uint64_t budget = opt.trials;
    DNNFI_EXPECTS(budget > 0);
    // Stratified campaigns are sequential-adaptive: no sharding.
    DNNFI_EXPECTS(shard.begin == 0 &&
                  (shard.end == 0 || shard.end == budget));

    const std::string accel_id = opt.accel.to_string();
    const std::string op_id = opt.constraint.op_spec().to_string();
    const std::string samp_id = sampler_id(opt);
    std::unique_ptr<accel::AcceleratorModel> owned_model;
    const accel::AcceleratorModel* model = &accel::eyeriss_model();
    const Sampler* sampler = &site_sampler;
    std::optional<Sampler> run_sampler;
    if (!opt.accel.is_eyeriss()) {
      owned_model = accel::make_accelerator(opt.accel);
      model = owned_model.get();
      run_sampler.emplace(net.spec(), numeric::dtype_of<T>(), *model);
      sampler = &*run_sampler;
    }
    DNNFI_EXPECTS(model->supports(opt.site));

    const StratumSet set(*sampler, opt.site, opt.constraint);
    const std::size_t H = set.size();

    StratifiedResult res;
    res.strata.reserve(H);
    res.weights.reserve(H);
    for (std::size_t h = 0; h < H; ++h) {
      res.strata.push_back(set.stratum(h));
      res.weights.push_back(set.weight(h));
    }
    res.per_stratum.assign(H, OutcomeAccumulator(ends.size()));

    // Controller state. `rounds` counts completed allocation rounds; `plan`
    // is the in-flight round's per-stratum allocation and `cursor` how many
    // of its trials (canonical order: ascending stratum, then within-
    // stratum trial index) are already executed and folded.
    std::uint64_t rounds = 0;
    std::uint64_t cursor = 0;
    std::vector<std::uint64_t> plan;

    const auto executed_total = [&] {
      std::uint64_t n = 0;
      for (const auto& a : res.per_stratum) n += a.trials();
      return n;
    };
    const auto sdc1_hits = [](const OutcomeAccumulator& a) {
      return a.sdc1().hits;
    };
    const auto finalize = [&](bool complete) {
      res.pooled = OutcomeAccumulator(ends.size());
      for (const auto& a : res.per_stratum) res.pooled.merge(a);
      res.trials = res.pooled.trials();
      res.rounds = rounds;
      res.complete = complete;
      res.converged = complete && opt.stratified.target_ci > 0 &&
                      res.sdc1().est.ci95 <= opt.stratified.target_ci;
    };
    const auto persist = [&](bool complete) {
      if (shard.checkpoint.empty()) return;
      ShardCheckpoint ck;
      ck.fingerprint = fingerprint;
      ck.network = net.spec().name;
      ck.accel = accel_id;
      ck.fault_op = op_id;
      ck.sampler = samp_id;
      ck.trials_total = budget;
      ck.shard_begin = 0;
      ck.shard_end = budget;
      ck.complete = complete;
      ck.masked_exits = res.masked_exits;
      ck.acc = OutcomeAccumulator(ends.size());
      StratifiedCheckpoint s;
      s.rounds = rounds;
      s.cursor = cursor;
      s.plan = plan;
      s.strata.reserve(H);
      std::uint64_t executed = 0;
      for (std::size_t h = 0; h < H; ++h) {
        ck.acc.merge(res.per_stratum[h]);
        executed += res.per_stratum[h].trials();
        StratumCheckpoint hc;
        hc.id = res.strata[h].id();
        hc.weight = res.weights[h];
        hc.acc = res.per_stratum[h];
        s.strata.push_back(std::move(hc));
      }
      ck.next_trial = executed;
      ck.stratified = std::move(s);
      save_shard_checkpoint(shard.checkpoint, ck);
    };

    if (!shard.checkpoint.empty() &&
        std::filesystem::exists(shard.checkpoint)) {
      ShardCheckpoint ck = load_shard_checkpoint(shard.checkpoint);
      if (ck.fingerprint != fingerprint)
        throw CheckpointError(
            Errc::kFingerprintMismatch,
            "checkpoint " + shard.checkpoint +
                ": campaign fingerprint mismatch (file was written by a run "
                "with different options; refusing to resume)");
      if (ck.trials_total != budget || ck.shard_begin != 0 ||
          ck.shard_end != budget)
        throw CheckpointError(
            Errc::kShardMismatch,
            "checkpoint " + shard.checkpoint +
                ": trial-budget mismatch (file covers " +
                std::to_string(ck.trials_total) + " trials, run requests " +
                std::to_string(budget) + ")");
      if (auto axes = validate_checkpoint_axes(ck, accel_id, op_id, samp_id);
          !axes.ok())
        throw CheckpointError(axes.error().code,
                              "checkpoint " + shard.checkpoint + ": " +
                                  axes.error().message);
      if (!ck.stratified || ck.stratified->strata.size() != H ||
          (!ck.stratified->plan.empty() && ck.stratified->plan.size() != H))
        throw CheckpointError(Errc::kShardMismatch,
                              "checkpoint " + shard.checkpoint +
                                  ": stratum layout mismatch");
      for (std::size_t h = 0; h < H; ++h)
        if (ck.stratified->strata[h].id != res.strata[h].id())
          throw CheckpointError(
              Errc::kShardMismatch,
              "checkpoint " + shard.checkpoint + ": stratum " +
                  std::to_string(h) + " is '" +
                  ck.stratified->strata[h].id + "', campaign expects '" +
                  res.strata[h].id() + "'");
      for (std::size_t h = 0; h < H; ++h)
        res.per_stratum[h] = std::move(ck.stratified->strata[h].acc);
      res.masked_exits = ck.masked_exits;
      rounds = ck.stratified->rounds;
      plan = std::move(ck.stratified->plan);
      cursor = ck.stratified->cursor;
      res.resumed = true;
      if (ck.complete) {
        finalize(true);
        return res;
      }
    }

    ThreadPool& pool = opt.pool ? *opt.pool : ThreadPool::global();
    const dnn::Executor<T> exec(net.plan());
    const GoldenTables golden = compute_golden(opt);

    // Same batching rule as run_shard: batches only bound checkpoint/
    // progress/stop/cancel latency and never change results.
    const bool batched = !shard.checkpoint.empty() ||
                         opt.progress != nullptr || shard.stop_after > 0 ||
                         opt.cancel != nullptr;

    const auto t0 = std::chrono::steady_clock::now();
    std::uint64_t ran = 0;  // new trials executed by this call
    std::vector<TrialRecord> recbuf;
    std::vector<char> maskedbuf;
    std::vector<std::pair<std::size_t, std::uint64_t>> items;

    while (true) {
      if (plan.empty()) {
        // The next allocation is a pure function of accumulated state, so a
        // resumed campaign recomputes exactly the schedule an uninterrupted
        // one would have run.
        plan = next_allocation(res.counts(sdc1_hits), opt.stratified,
                               budget - executed_total());
        cursor = 0;
        if (plan.empty()) break;  // converged, retired, or out of budget
      }
      std::vector<std::uint64_t> pref(H + 1, 0);
      for (std::size_t h = 0; h < H; ++h) pref[h + 1] = pref[h] + plan[h];
      const std::uint64_t round_total = pref[H];
      if (cursor >= round_total) {
        ++rounds;
        plan.clear();
        continue;
      }

      while (cursor < round_total) {
        const std::uint64_t b0 = cursor;
        const std::uint64_t bsz = batched
                                      ? std::max<std::uint64_t>(1, shard.batch)
                                      : round_total - b0;
        const std::uint64_t b1 =
            std::min<std::uint64_t>(round_total, b0 + bsz);
        const auto count = static_cast<std::size_t>(b1 - b0);

        // Slot -> (stratum h, within-stratum trial index t). Trial t of
        // stratum h draws from derive_stream(seed, h, t) and replays input
        // t % num_inputs — functions of accumulated state alone, so the
        // trial set is invariant to batch and resume boundaries.
        items.resize(count);
        {
          std::size_t h = 0;
          for (std::size_t i = 0; i < count; ++i) {
            const std::uint64_t g = b0 + i;
            while (pref[h + 1] <= g) ++h;
            const std::uint64_t folded_this_round = std::min<std::uint64_t>(
                plan[h], b0 > pref[h] ? b0 - pref[h] : 0);
            const std::uint64_t at_round_start =
                res.per_stratum[h].trials() - folded_this_round;
            items[i] = {h, at_round_start + (g - pref[h])};
          }
        }

        recbuf.resize(count);
        maskedbuf.assign(count, 0);
        parallel_for_chunks(pool, count, [&](std::size_t cb, std::size_t ce) {
          std::vector<Pending> pending;
          pending.reserve(ce - cb);
          for (std::size_t i = cb; i < ce; ++i) {
            const auto [h, t] = items[i];
            Rng rng =
                derive_stream(opt.seed, static_cast<std::uint64_t>(h), t);
            Pending p;
            p.idx = i;
            p.input = static_cast<std::size_t>(t % caches.size());
            p.fd = set.sample(h, rng);
            p.af = lower(p.fd, net.mac_layers(), *model);
            pending.push_back(p);
          }
          execute_span(opt, exec, golden, pending, recbuf.data(),
                       [&](const Pending& p, TrialRecord&, bool masked) {
                         maskedbuf[p.idx] = masked ? 1 : 0;
                       });
        });
        // Fold on the driving thread in canonical slot order: per-stratum
        // aggregates are byte-identical at any thread count by
        // construction, not by merge-order argument.
        for (std::size_t i = 0; i < count; ++i) {
          res.per_stratum[items[i].first].add(recbuf[i]);
          if (maskedbuf[i] != 0) ++res.masked_exits;
        }
        cursor = b1;
        ran += count;

        persist(false);
        if (opt.progress) {
          const double secs = std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() - t0)
                                  .count();
          const std::uint64_t done = executed_total();
          CampaignProgress p;
          p.done = done;
          p.begin = 0;
          p.end = budget;  // upper bound: convergence may stop earlier
          p.trials_per_sec =
              secs > 0 ? static_cast<double>(ran) / secs : 0.0;
          p.eta_seconds =
              p.trials_per_sec > 0
                  ? static_cast<double>(budget - done) / p.trials_per_sec
                  : 0.0;
          p.sdc1 = res.sdc1().est;
          p.masked_exits = res.masked_exits;
          p.masked_exit_rate =
              done > 0 ? static_cast<double>(res.masked_exits) /
                             static_cast<double>(done)
                       : 0.0;
          opt.progress(p);
        }
        if (shard.stop_after > 0 && ran >= shard.stop_after) {
          finalize(false);
          return res;  // clean preemption: checkpoint already on disk
        }
        if (opt.cancel && opt.cancel->load(std::memory_order_relaxed)) {
          finalize(false);
          return res;  // graceful shutdown: batch folded + persisted
        }
      }
      ++rounds;
      plan.clear();
    }

    finalize(true);
    persist(true);
    return res;
  }

  const dnn::NetworkSpec& spec() const override { return net.spec(); }
  DType dtype() const override { return numeric::dtype_of<T>(); }
  const Sampler& sampler() const override { return site_sampler; }
  std::size_t num_inputs() const override { return caches.size(); }
  const dnn::Prediction& golden_prediction(std::size_t i) const override {
    return predictions.at(i);
  }
  const std::vector<BlockRange>& golden_block_ranges() const override {
    return ranges;
  }

  dnn::Network<T> net;
  Sampler site_sampler;
  std::vector<std::size_t> ends;
  /// layer index -> block slot (or -1): the observer's hot-path lookup.
  std::vector<int> layer_to_block;
  /// Fault-free activations of every layer boundary, one cache per input;
  /// trials seed their replay from (and early-exit against) these.
  std::vector<dnn::ActivationCache<T>> caches;
  std::vector<dnn::Prediction> predictions;
  std::vector<BlockRange> ranges;
};

Campaign::Campaign(const dnn::NetworkSpec& spec, const dnn::WeightsBlob& blob,
                   DType dtype, std::vector<dnn::Example> inputs) {
  backend_ = numeric::dispatch_dtype(
      dtype, [&]<typename T>() -> std::unique_ptr<Backend> {
        return std::make_unique<TypedBackend<T>>(spec, blob, std::move(inputs));
      });
}

Campaign::~Campaign() = default;
Campaign::Campaign(Campaign&&) noexcept = default;
Campaign& Campaign::operator=(Campaign&&) noexcept = default;

CampaignResult Campaign::run(const CampaignOptions& opt) const {
  CampaignResult result;
  result.trials.resize(opt.trials);
  if (opt.trials == 0) return result;
  const TrialSink sink = [&](std::uint64_t trial, const TrialRecord& tr) {
    result.trials[static_cast<std::size_t>(trial)] = tr;
  };
  backend_->run_shard(opt, ShardSpec{}, &sink, fingerprint(opt));
  return result;
}

ShardResult Campaign::run_shard(const CampaignOptions& opt,
                                const ShardSpec& shard,
                                const TrialSink* sink) const {
  return backend_->run_shard(opt, shard, sink, fingerprint(opt));
}

StratifiedResult Campaign::run_stratified(const CampaignOptions& opt,
                                          const ShardSpec& shard) const {
  return backend_->run_stratified(opt, shard, fingerprint(opt));
}

std::uint64_t Campaign::fingerprint(const CampaignOptions& opt) const {
  ByteWriter w;
  w.u64(opt.seed);
  w.u64(opt.trials);
  w.u32(static_cast<std::uint32_t>(opt.site));
  w.u32(static_cast<std::uint32_t>(backend_->dtype()));
  w.str(backend_->spec().name);
  w.u64(backend_->num_inputs());
  const SampleConstraint& c = opt.constraint;
  w.u8(c.fixed_bit.has_value() ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(c.fixed_bit.value_or(0)));
  w.u8(c.fixed_block.has_value() ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(c.fixed_block.value_or(0)));
  w.u8(c.fixed_latch.has_value() ? 1 : 0);
  w.u32(c.fixed_latch ? static_cast<std::uint32_t>(*c.fixed_latch) : 0);
  w.u8(c.buffer_storage.has_value() ? 1 : 0);
  w.u32(c.buffer_storage ? static_cast<std::uint32_t>(*c.buffer_storage) : 0);
  w.u32(static_cast<std::uint32_t>(c.burst));
  w.u8(opt.record_block_distances ? 1 : 0);
  // The detector is a std::function and cannot be fingerprinted; record its
  // presence only. Resuming with a *different* detector is on the caller.
  w.u8(opt.detector ? 1 : 0);
  // Accelerator-geometry / fault-op axes fold in only when non-default, so
  // every pre-geometry campaign keeps its historical fingerprint (and its
  // checkpoints and stats files keep matching).
  if (!opt.accel.is_eyeriss() || c.op_kind != FaultOpKind::kToggle ||
      c.op_pattern != 0) {
    w.str(opt.accel.to_string());
    w.str(c.op_spec().to_string());
  }
  // The sampler axis folds the same way: only when non-default, so every
  // uniform campaign keeps its historical fingerprint (and its checkpoints
  // and stats files keep matching).
  if (opt.sampler != SamplerMode::kUniform) w.str(sampler_id(opt));
  return fingerprint64(w.bytes().data(), w.bytes().size());
}

const dnn::NetworkSpec& Campaign::spec() const { return backend_->spec(); }
DType Campaign::dtype() const { return backend_->dtype(); }
const Sampler& Campaign::sampler() const { return backend_->sampler(); }
std::size_t Campaign::num_inputs() const { return backend_->num_inputs(); }
const dnn::Prediction& Campaign::golden_prediction(std::size_t i) const {
  return backend_->golden_prediction(i);
}
const std::vector<BlockRange>& Campaign::golden_block_ranges() const {
  return backend_->golden_block_ranges();
}

std::vector<BlockRange> profile_block_ranges(const dnn::NetworkSpec& spec,
                                             const dnn::WeightsBlob& blob,
                                             numeric::DType dtype,
                                             const dnn::ExampleSource& source,
                                             std::uint64_t begin,
                                             std::size_t count) {
  DNNFI_EXPECTS(count > 0);
  return numeric::dispatch_dtype(dtype, [&]<typename T>() {
    const dnn::Network<T> net = dnn::instantiate<T>(spec, blob);
    const auto ends = block_end_layers(spec);
    std::vector<BlockRange> ranges(
        ends.size(), BlockRange{std::numeric_limits<double>::max(),
                                std::numeric_limits<double>::lowest()});
    // Observed via the executor instead of materializing traces: block-end
    // fmaps are scanned as they land in the arena (as SED's host-side check
    // scans them in the global buffer).
    const dnn::Executor<T> exec(net.plan());
    dnn::Workspace<T> ws(net.plan());
    const dnn::LayerObserver<T> observer =
        [&](std::size_t layer, tensor::ConstTensorView<T> act) {
          const auto it = std::find(ends.begin(), ends.end(), layer);
          if (it == ends.end()) return;
          const auto b = static_cast<std::size_t>(it - ends.begin());
          const auto [lo, hi] = tensor::value_range<T>(act);
          ranges[b].lo = std::min(ranges[b].lo, lo);
          ranges[b].hi = std::max(ranges[b].hi, hi);
        };
    for (std::size_t s = 0; s < count; ++s) {
      const dnn::Example ex = source(begin + s);
      const dnn::Tensor<T> image = tensor::convert<T>(ex.image);
      dnn::RunRequest<T> req;
      req.input = image;
      req.observer = &observer;
      exec.run(ws, req);
    }
    return ranges;
  });
}

}  // namespace dnnfi::fault
