#include "dnnfi/fault/campaign.h"

#include <algorithm>
#include <limits>

#include "dnnfi/common/thread_pool.h"

namespace dnnfi::fault {

using numeric::DType;

Estimate CampaignResult::rate(const Pred& pred) const {
  std::size_t hits = 0;
  for (const auto& t : trials) hits += pred(t) ? 1U : 0U;
  return estimate(hits, trials.size());
}

Estimate CampaignResult::rate_if(const Pred& filter, const Pred& pred) const {
  std::size_t hits = 0, n = 0;
  for (const auto& t : trials) {
    if (!filter(t)) continue;
    ++n;
    hits += pred(t) ? 1U : 0U;
  }
  return estimate(hits, n);
}

Estimate CampaignResult::sdc1() const {
  return rate([](const TrialRecord& t) { return t.outcome.sdc1; });
}
Estimate CampaignResult::sdc5() const {
  return rate([](const TrialRecord& t) { return t.outcome.sdc5; });
}
Estimate CampaignResult::sdc10() const {
  return rate([](const TrialRecord& t) { return t.outcome.sdc10; });
}
Estimate CampaignResult::sdc20() const {
  return rate([](const TrialRecord& t) { return t.outcome.sdc20; });
}

std::vector<std::size_t> block_end_layers(const dnn::NetworkSpec& spec) {
  std::vector<std::size_t> ends;
  for (int b = 1; b <= spec.num_blocks(); ++b) {
    std::size_t last = spec.layers.size();
    for (std::size_t i = 0; i < spec.layers.size(); ++i) {
      if (spec.layers[i].block == b &&
          spec.layers[i].kind != dnn::LayerKind::kSoftmax)
        last = i;
    }
    DNNFI_EXPECTS(last < spec.layers.size());
    ends.push_back(last);
  }
  return ends;
}

/// Type-erased backend interface; one TypedBackend<T> per datapath type.
struct Campaign::Backend {
  virtual ~Backend() = default;
  virtual CampaignResult run(const CampaignOptions& opt) const = 0;
  virtual const dnn::NetworkSpec& spec() const = 0;
  virtual DType dtype() const = 0;
  virtual const Sampler& sampler() const = 0;
  virtual std::size_t num_inputs() const = 0;
  virtual const dnn::Prediction& golden_prediction(std::size_t i) const = 0;
  virtual const std::vector<BlockRange>& golden_block_ranges() const = 0;
};

template <typename T>
struct Campaign::TypedBackend final : Campaign::Backend {
  TypedBackend(const dnn::NetworkSpec& network_spec,
               const dnn::WeightsBlob& blob, std::vector<dnn::Example> inputs)
      : net(dnn::instantiate<T>(network_spec, blob)),
        site_sampler(network_spec, numeric::dtype_of<T>()),
        ends(block_end_layers(network_spec)) {
    DNNFI_EXPECTS(!inputs.empty());
    goldens.reserve(inputs.size());
    predictions.reserve(inputs.size());
    ranges.assign(ends.size(), BlockRange{std::numeric_limits<double>::max(),
                                          std::numeric_limits<double>::lowest()});
    const dnn::Executor<T> exec(net.plan());
    dnn::Workspace<T> ws(net.plan());
    for (const auto& ex : inputs) {
      const dnn::Tensor<T> image = tensor::convert<T>(ex.image);
      dnn::Trace<T> trace;
      dnn::RunRequest<T> req;
      req.input = image;
      req.trace = &trace;
      exec.run(ws, req);
      predictions.push_back(net.interpret(trace.output()));
      for (std::size_t b = 0; b < ends.size(); ++b) {
        const auto [lo, hi] = tensor::value_range(trace.acts[ends[b]]);
        ranges[b].lo = std::min(ranges[b].lo, lo);
        ranges[b].hi = std::max(ranges[b].hi, hi);
      }
      goldens.push_back(std::move(trace));
    }
  }

  CampaignResult run(const CampaignOptions& opt) const override {
    DNNFI_EXPECTS(opt.trials > 0);
    CampaignResult result;
    result.trials.resize(opt.trials);

    const dnn::Executor<T> exec(net.plan());
    // Chunked so each worker holds one Workspace (and one observer closure)
    // for its whole share of the campaign: the per-trial loop is then free
    // of heap allocation on the execution side. Chunk boundaries and the
    // per-trial RNG streams depend only on (trials, seed), so results are
    // identical to the serial order regardless of thread count.
    parallel_for_chunks(ThreadPool::global(), opt.trials, [&](std::size_t begin,
                                                              std::size_t end) {
      dnn::Workspace<T> ws(net.plan());
      const std::size_t last_end = ends.back();

      // Per-chunk observer state, reset per trial; the closure itself is
      // built once per chunk.
      std::vector<double> dist(ends.size(), 0.0);
      const dnn::Trace<T>* golden = nullptr;
      bool detected = false;
      double corruption = 0;
      const dnn::LayerObserver<T> observer =
          [&](std::size_t layer, tensor::ConstTensorView<T> act) {
            // Map the layer to a block slot if it is a block end.
            const auto it = std::find(ends.begin(), ends.end(), layer);
            if (it == ends.end()) return;
            const auto b = static_cast<std::size_t>(it - ends.begin());
            if (opt.detector && !detected) {
              const int block = static_cast<int>(b) + 1;
              for (std::size_t i = 0; i < act.size(); ++i) {
                const double v = numeric::numeric_traits<T>::to_double(act[i]);
                if (opt.detector(block, v)) {
                  detected = true;
                  break;
                }
              }
            }
            if (opt.record_block_distances)
              dist[b] = tensor::euclidean_distance<T>(act, golden->acts[layer]);
            if (layer == last_end) {
              const std::size_t mism =
                  tensor::bitwise_mismatch_count<T>(act, golden->acts[layer]);
              corruption = static_cast<double>(mism) /
                           static_cast<double>(act.size());
            }
          };

      for (std::size_t trial = begin; trial < end; ++trial) {
        Rng rng = derive_stream(opt.seed, trial);
        TrialRecord& tr = result.trials[trial];
        tr.input_index = trial % goldens.size();
        tr.fault = site_sampler.sample(opt.site, rng, opt.constraint);

        golden = &goldens[tr.input_index];
        detected = false;
        corruption = 0;
        std::fill(dist.begin(), dist.end(), 0.0);

        // The final-corruption metric is cheap and always useful; keep the
        // observer on unconditionally.
        const auto out = inject(exec, ws, net.mac_layers(), *golden, tr.fault,
                                &tr.record, &observer);
        tr.outcome = classify(predictions[tr.input_index], net.interpret(out));
        tr.detected = detected;
        tr.output_corruption = corruption;
        if (opt.record_block_distances)
          tr.block_distance.assign(dist.begin(), dist.end());
      }
    });
    return result;
  }

  const dnn::NetworkSpec& spec() const override { return net.spec(); }
  DType dtype() const override { return numeric::dtype_of<T>(); }
  const Sampler& sampler() const override { return site_sampler; }
  std::size_t num_inputs() const override { return goldens.size(); }
  const dnn::Prediction& golden_prediction(std::size_t i) const override {
    return predictions.at(i);
  }
  const std::vector<BlockRange>& golden_block_ranges() const override {
    return ranges;
  }

  dnn::Network<T> net;
  Sampler site_sampler;
  std::vector<std::size_t> ends;
  std::vector<dnn::Trace<T>> goldens;
  std::vector<dnn::Prediction> predictions;
  std::vector<BlockRange> ranges;
};

Campaign::Campaign(const dnn::NetworkSpec& spec, const dnn::WeightsBlob& blob,
                   DType dtype, std::vector<dnn::Example> inputs) {
  backend_ = numeric::dispatch_dtype(
      dtype, [&]<typename T>() -> std::unique_ptr<Backend> {
        return std::make_unique<TypedBackend<T>>(spec, blob, std::move(inputs));
      });
}

Campaign::~Campaign() = default;
Campaign::Campaign(Campaign&&) noexcept = default;
Campaign& Campaign::operator=(Campaign&&) noexcept = default;

CampaignResult Campaign::run(const CampaignOptions& opt) const {
  return backend_->run(opt);
}
const dnn::NetworkSpec& Campaign::spec() const { return backend_->spec(); }
DType Campaign::dtype() const { return backend_->dtype(); }
const Sampler& Campaign::sampler() const { return backend_->sampler(); }
std::size_t Campaign::num_inputs() const { return backend_->num_inputs(); }
const dnn::Prediction& Campaign::golden_prediction(std::size_t i) const {
  return backend_->golden_prediction(i);
}
const std::vector<BlockRange>& Campaign::golden_block_ranges() const {
  return backend_->golden_block_ranges();
}

std::vector<BlockRange> profile_block_ranges(const dnn::NetworkSpec& spec,
                                             const dnn::WeightsBlob& blob,
                                             numeric::DType dtype,
                                             const dnn::ExampleSource& source,
                                             std::uint64_t begin,
                                             std::size_t count) {
  DNNFI_EXPECTS(count > 0);
  return numeric::dispatch_dtype(dtype, [&]<typename T>() {
    const dnn::Network<T> net = dnn::instantiate<T>(spec, blob);
    const auto ends = block_end_layers(spec);
    std::vector<BlockRange> ranges(
        ends.size(), BlockRange{std::numeric_limits<double>::max(),
                                std::numeric_limits<double>::lowest()});
    // Observed via the executor instead of materializing traces: block-end
    // fmaps are scanned as they land in the arena (as SED's host-side check
    // scans them in the global buffer).
    const dnn::Executor<T> exec(net.plan());
    dnn::Workspace<T> ws(net.plan());
    const dnn::LayerObserver<T> observer =
        [&](std::size_t layer, tensor::ConstTensorView<T> act) {
          const auto it = std::find(ends.begin(), ends.end(), layer);
          if (it == ends.end()) return;
          const auto b = static_cast<std::size_t>(it - ends.begin());
          const auto [lo, hi] = tensor::value_range<T>(act);
          ranges[b].lo = std::min(ranges[b].lo, lo);
          ranges[b].hi = std::max(ranges[b].hi, hi);
        };
    for (std::size_t s = 0; s < count; ++s) {
      const dnn::Example ex = source(begin + s);
      const dnn::Tensor<T> image = tensor::convert<T>(ex.image);
      dnn::RunRequest<T> req;
      req.input = image;
      req.observer = &observer;
      exec.run(ws, req);
    }
    return ranges;
  });
}

}  // namespace dnnfi::fault
