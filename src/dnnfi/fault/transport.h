// Pluggable worker transports for the campaign supervisor.
//
// PR 5's supervisor fork/execs workers on the local host and watches them
// over a raw pipe carrying 8-byte little-endian heartbeats. This header
// generalizes that wire into a `WorkerTransport`:
//
//   LocalTransport  — today's fork/exec path, bit-for-bit: same argv, same
//                     raw --heartbeat-fd pipe, worker checkpoints written
//                     straight into the shared --ckpt-dir.
//   RemoteTransport — workers spawned on another host (ssh, or exec'd
//                     directly when the host is localhost — the multi-node-
//                     on-one-machine test configuration). The worker runs
//                     in `--frame-io` mode: the supervisor ships a resume
//                     checkpoint down the worker's stdin at spawn, and the
//                     worker's stdout carries heartbeats AND its checkpoint
//                     file image back after every batch, as length-prefixed
//                     CRC-checked frames. The supervisor lands each shipped
//                     image atomically in --ckpt-dir, so retry-elsewhere can
//                     resume a dead host's shard on a healthy one from the
//                     last shipped batch.
//
// Frame layout (little-endian):
//
//   offset  size  field
//   0       4     payload length N (bounded by kMaxFramePayload)
//   4       1     frame type (FrameType)
//   5       4     CRC-32 of the payload
//   9       N     payload
//
//   kInit       supervisor -> worker: u8 has_checkpoint + checkpoint image.
//               has_checkpoint=0 orders the worker to discard any stale
//               node-local checkpoint and start the shard fresh.
//   kBeat       worker -> supervisor: u64 trials completed this attempt.
//   kCheckpoint worker -> supervisor: the worker's checkpoint file image,
//               exactly as written to its node-local disk (shipped after
//               every batch; doubly integrity-checked — frame CRC plus the
//               checkpoint's own envelope CRC).
//
// A structurally damaged stream (bad CRC, oversized length) is a kTransport
// error: the channel, not the shard, is at fault, so the supervisor kills
// the worker and retries the shard — preferring a different host.
//
// All reads and writes here loop on EINTR and short transfers (write(2) to
// a pipe is not atomic past PIPE_BUF; read(2) returns early at buffer
// boundaries). The raw-beat dialect tolerates arbitrary fragmentation for
// the same reason. See DESIGN.md §13.
#pragma once

#include <sys/types.h>

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dnnfi/common/error.h"

namespace dnnfi::fault {

// ---- hardened low-level I/O ----------------------------------------------

/// write(2) until every byte is out; loops on EINTR and short writes.
/// kTransport on a hard error (EPIPE included — callers that tolerate a
/// dead peer check the message, not errno).
Expected<void> io_write_full(int fd, const std::uint8_t* data, std::size_t n);

/// One read(2) retried on EINTR. Returns bytes read, 0 on EOF, or -1 when
/// the (nonblocking) fd has nothing now. kTransport on a hard error.
Expected<long> io_read_chunk(int fd, std::uint8_t* buf, std::size_t n);

// ---- frame codec ---------------------------------------------------------

enum class FrameType : std::uint8_t {
  kInit = 1,        ///< supervisor->worker resume state (or "start fresh")
  kBeat = 2,        ///< worker->supervisor liveness + progress
  kCheckpoint = 3,  ///< worker->supervisor checkpoint file image
};

/// Upper bound on a frame payload. Checkpoints are kilobytes; anything
/// approaching this is stream damage, not data, and must not drive
/// allocations.
inline constexpr std::uint32_t kMaxFramePayload = 64u << 20;

struct Frame {
  FrameType type = FrameType::kBeat;
  std::vector<std::uint8_t> payload;
};

/// Encodes one frame (header + CRC + payload) into a contiguous buffer.
std::vector<std::uint8_t> encode_frame(FrameType type,
                                       const std::uint8_t* payload,
                                       std::size_t n);

/// Incremental frame parser over an arbitrarily fragmented byte stream.
class FrameDecoder {
 public:
  /// Appends raw bytes received from the peer.
  void feed(const std::uint8_t* data, std::size_t n);

  /// Extracts the next complete frame: a Frame, std::nullopt while the
  /// buffer holds only a partial frame, or kTransport on structural damage
  /// (unknown type, oversized length, CRC mismatch). After an error the
  /// stream is unrecoverable — there is no resynchronization point.
  Expected<std::optional<Frame>> next();

  std::size_t buffered() const noexcept { return buf_.size() - pos_; }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;  ///< consumed prefix; compacted between feeds
};

/// Encodes and writes one frame. kTransport on failure.
Expected<void> send_frame(int fd, FrameType type, const std::uint8_t* payload,
                          std::size_t n);

/// Worker-side blocking read of the supervisor's kInit frame from `fd`:
/// the resume checkpoint image, or std::nullopt for "start fresh".
/// kTransport on EOF-before-frame or a damaged stream.
Expected<std::optional<std::vector<std::uint8_t>>> read_init_frame(int fd);

// ---- supervisor-side channel ---------------------------------------------

/// One decoded message from a worker, dialect-independent.
struct ChannelEvent {
  enum class Kind { kBeat, kCheckpoint };
  Kind kind = Kind::kBeat;
  std::uint64_t done = 0;            ///< kBeat: trials this attempt
  std::vector<std::uint8_t> bytes;   ///< kCheckpoint: shipped file image
};

/// Turns a worker's byte stream into events. Two wire dialects: the legacy
/// raw 8-byte little-endian beat stream (LocalTransport) and the framed
/// protocol (RemoteTransport). Both tolerate arbitrary fragmentation.
class WorkerChannel {
 public:
  explicit WorkerChannel(bool framed) : framed_(framed) {}

  /// Decodes as many complete messages as `data` completes, appending them
  /// to `out`. kTransport on structural damage (framed dialect only — the
  /// raw dialect has no structure to damage).
  Expected<void> feed(const std::uint8_t* data, std::size_t n,
                      std::vector<ChannelEvent>& out);

 private:
  bool framed_;
  FrameDecoder decoder_;              // framed dialect
  std::vector<std::uint8_t> partial_; // raw dialect: incomplete beat bytes
};

// ---- transports ----------------------------------------------------------

/// Everything a transport needs to start one shard attempt.
struct WorkerSpawn {
  std::string binary;                    ///< dnnfi_campaign path (both ends)
  std::vector<std::string> flags;        ///< campaign flags, forwarded as-is
  std::uint64_t begin = 0;               ///< shard range [begin, end)
  std::uint64_t end = 0;
  std::string checkpoint;                ///< worker-side checkpoint path
  std::string stderr_log;                ///< append worker stderr here; "" = inherit
  /// Framed transports only: checkpoint image to resume from, shipped as
  /// the kInit frame. nullptr = start fresh (worker discards stale state).
  const std::vector<std::uint8_t>* resume = nullptr;
};

/// A spawned worker as the supervisor sees it.
struct WorkerHandle {
  pid_t pid = -1;  ///< local child (the worker itself, or its ssh client)
  int rx = -1;     ///< nonblocking worker->supervisor fd (owned by caller)
};

/// How worker processes are created and wired. One transport per fleet
/// node; the supervisor owns scheduling, deadlines, and retry policy.
class WorkerTransport {
 public:
  virtual ~WorkerTransport() = default;

  /// Host label for logs and retry-elsewhere bookkeeping.
  virtual const std::string& host() const noexcept = 0;

  /// True when workers speak the framed dialect (and ship checkpoints).
  virtual bool framed() const noexcept = 0;

  /// Starts one worker. On success the caller owns handle.rx and must
  /// waitpid(handle.pid). Spawn-level failures are kTransport.
  virtual Expected<WorkerHandle> spawn(const WorkerSpawn& s) = 0;
};

/// PR-5 fork/exec on this host: raw heartbeat pipe, shared checkpoint
/// directory, no shipping. Byte-for-byte the original supervisor path.
class LocalTransport final : public WorkerTransport {
 public:
  LocalTransport() : host_("local") {}

  const std::string& host() const noexcept override { return host_; }
  bool framed() const noexcept override { return false; }
  Expected<WorkerHandle> spawn(const WorkerSpawn& s) override;

 private:
  std::string host_;
};

/// Frame-mode workers on a (possibly remote) host. For `localhost`/`local`/
/// `127.0.0.1` the worker is exec'd directly — same machine, but with its
/// own scratch directory and the full ship-over-frames protocol, which is
/// exactly the multi-node simulation the tests and nightly drive. Any other
/// host name is reached through `ssh -oBatchMode=yes <host> <command>`, or
/// through `$DNNFI_FLEET_SSH <host> <command>` when that variable is set
/// (test harnesses substitute a fake; deployments substitute wrappers).
/// The dnnfi_campaign binary must exist at the same path on the remote
/// host; the worker creates its scratch directory itself.
class RemoteTransport final : public WorkerTransport {
 public:
  RemoteTransport(std::string host, std::string scratch_dir);

  const std::string& host() const noexcept override { return host_; }
  bool framed() const noexcept override { return true; }
  /// Worker-side checkpoint paths are rewritten into this node's scratch
  /// directory (s.checkpoint names the supervisor-side file; only its leaf
  /// is kept).
  Expected<WorkerHandle> spawn(const WorkerSpawn& s) override;

  const std::string& scratch_dir() const noexcept { return scratch_; }
  bool direct_exec() const noexcept { return direct_; }

 private:
  std::string host_;
  std::string scratch_;
  bool direct_;  ///< localhost: exec the worker without ssh
};

/// True for host names that mean "this machine, no ssh".
bool is_local_host(const std::string& host);

/// Single-quotes a string for a POSIX shell (ssh joins the command words
/// and hands them to the remote shell).
std::string shell_quote(const std::string& s);

}  // namespace dnnfi::fault
