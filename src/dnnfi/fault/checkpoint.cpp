#include "dnnfi/fault/checkpoint.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

namespace dnnfi::fault {

namespace {

[[noreturn]] void fail(const std::string& path, const std::string& why) {
  throw CheckpointError("checkpoint " + path + ": " + why);
}

}  // namespace

void save_shard_checkpoint(const std::string& path,
                           const ShardCheckpoint& ck) {
  DNNFI_EXPECTS(!path.empty());
  ByteWriter payload;
  payload.u64(ck.fingerprint);
  payload.str(ck.network);
  payload.u64(ck.trials_total);
  payload.u64(ck.shard_begin);
  payload.u64(ck.shard_end);
  payload.u64(ck.next_trial);
  payload.u8(ck.complete ? 1 : 0);
  payload.u64(ck.masked_exits);
  ck.acc.serialize(payload);

  ByteWriter file;
  file.raw(reinterpret_cast<const std::uint8_t*>(kCheckpointMagic),
           sizeof(kCheckpointMagic));
  file.u32(kCheckpointVersion);
  file.u32(crc32(payload.bytes()));
  file.u64(payload.bytes().size());
  file.raw(payload.bytes().data(), payload.bytes().size());

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) fail(path, "cannot open " + tmp + " for writing");
    out.write(reinterpret_cast<const char*>(file.bytes().data()),
              static_cast<std::streamsize>(file.bytes().size()));
    out.flush();
    if (!out) fail(path, "short write to " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) fail(path, "rename from " + tmp + " failed: " + ec.message());
}

ShardCheckpoint load_shard_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail(path, "cannot open for reading");
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());

  ByteReader r(bytes);
  try {
    std::uint8_t magic[sizeof(kCheckpointMagic)];
    for (auto& m : magic) m = r.u8();
    if (std::memcmp(magic, kCheckpointMagic, sizeof(magic)) != 0)
      fail(path, "bad magic (not a dnnfi shard checkpoint)");
    const std::uint32_t version = r.u32();
    if (version != kCheckpointVersion)
      fail(path, "unsupported format version " + std::to_string(version) +
                     " (this build reads version " +
                     std::to_string(kCheckpointVersion) + ")");
    const std::uint32_t stored_crc = r.u32();
    const std::uint64_t payload_size = r.u64();
    if (payload_size != r.remaining())
      fail(path, "payload size mismatch: header says " +
                     std::to_string(payload_size) + ", file holds " +
                     std::to_string(r.remaining()));
    const std::uint32_t actual_crc =
        crc32(bytes.data() + (bytes.size() - payload_size), payload_size);
    if (actual_crc != stored_crc)
      fail(path, "CRC mismatch (stored " + std::to_string(stored_crc) +
                     ", computed " + std::to_string(actual_crc) +
                     ") — file is corrupt");

    ShardCheckpoint ck;
    ck.fingerprint = r.u64();
    ck.network = r.str();
    ck.trials_total = r.u64();
    ck.shard_begin = r.u64();
    ck.shard_end = r.u64();
    ck.next_trial = r.u64();
    ck.complete = r.u8() != 0;
    ck.masked_exits = r.u64();
    ck.acc = OutcomeAccumulator::deserialize(r);
    if (!r.done()) fail(path, "trailing garbage after payload");
    if (ck.shard_begin > ck.shard_end || ck.next_trial < ck.shard_begin ||
        ck.next_trial > ck.shard_end || ck.shard_end > ck.trials_total)
      fail(path, "inconsistent shard range [" +
                     std::to_string(ck.shard_begin) + ", " +
                     std::to_string(ck.shard_end) + ") next=" +
                     std::to_string(ck.next_trial) + " total=" +
                     std::to_string(ck.trials_total));
    return ck;
  } catch (const SerialError& e) {
    fail(path, std::string("malformed payload: ") + e.what());
  }
}

}  // namespace dnnfi::fault
