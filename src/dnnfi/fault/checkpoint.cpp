#include "dnnfi/fault/checkpoint.h"

#include <cstring>
#include <fstream>
#include <string_view>

#include "dnnfi/common/atomic_file.h"

namespace dnnfi::fault {

namespace {

Error defect(Errc code, const std::string& path, const std::string& why) {
  return Error{code, "checkpoint " + path + ": " + why};
}

}  // namespace

Expected<void> try_save_shard_checkpoint(const std::string& path,
                                         const ShardCheckpoint& ck) {
  DNNFI_EXPECTS(!path.empty());
  ByteWriter payload;
  payload.u64(ck.fingerprint);
  payload.str(ck.network);
  payload.str(ck.accel);
  payload.str(ck.fault_op);
  payload.str(ck.sampler);
  payload.u64(ck.trials_total);
  payload.u64(ck.shard_begin);
  payload.u64(ck.shard_end);
  payload.u64(ck.next_trial);
  payload.u8(ck.complete ? 1 : 0);
  payload.u64(ck.masked_exits);
  payload.u64(ck.aborted_trials.size());
  for (const std::uint64_t t : ck.aborted_trials) payload.u64(t);
  ck.acc.serialize(payload);
  payload.u8(ck.stratified.has_value() ? 1 : 0);
  if (ck.stratified) {
    const StratifiedCheckpoint& s = *ck.stratified;
    payload.u64(s.rounds);
    payload.u64(s.cursor);
    payload.u64(s.plan.size());
    for (const std::uint64_t n : s.plan) payload.u64(n);
    payload.u64(s.strata.size());
    for (const StratumCheckpoint& h : s.strata) {
      payload.str(h.id);
      payload.f64(h.weight);
      h.acc.serialize(payload);
    }
  }

  ByteWriter file;
  file.raw(reinterpret_cast<const std::uint8_t*>(kCheckpointMagic),
           sizeof(kCheckpointMagic));
  file.u32(kCheckpointVersion);
  file.u32(crc32(payload.bytes()));
  file.u64(payload.bytes().size());
  file.raw(payload.bytes().data(), payload.bytes().size());

  auto written = write_file_atomic(
      path, std::string_view(reinterpret_cast<const char*>(file.bytes().data()),
                             file.bytes().size()));
  if (!written.ok())
    return defect(Errc::kIo, path, written.error().message);
  return {};
}

Expected<ShardCheckpoint> try_load_shard_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return defect(Errc::kIo, path, "cannot open for reading");
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  return parse_checkpoint_bytes(bytes.data(), bytes.size(), path);
}

Expected<ShardCheckpoint> parse_checkpoint_bytes(const std::uint8_t* data,
                                                 std::size_t size,
                                                 const std::string& path) {
  ByteReader r(data, size);
  try {
    std::uint8_t magic[sizeof(kCheckpointMagic)];
    for (auto& m : magic) m = r.u8();
    if (std::memcmp(magic, kCheckpointMagic, sizeof(magic)) != 0)
      return defect(Errc::kCorruptData, path,
                    "bad magic (not a dnnfi shard checkpoint)");
    const std::uint32_t version = r.u32();
    if (version != kCheckpointVersion)
      return defect(Errc::kVersionSkew, path,
                    "unsupported format version " + std::to_string(version) +
                        " (this build reads version " +
                        std::to_string(kCheckpointVersion) + ")");
    const std::uint32_t stored_crc = r.u32();
    const std::uint64_t payload_size = r.u64();
    if (payload_size != r.remaining())
      return defect(Errc::kCorruptData, path,
                    "payload size mismatch: header says " +
                        std::to_string(payload_size) + ", file holds " +
                        std::to_string(r.remaining()));
    const std::uint32_t actual_crc =
        crc32(data + (size - payload_size), payload_size);
    if (actual_crc != stored_crc)
      return defect(Errc::kCorruptData, path,
                    "CRC mismatch (stored " + std::to_string(stored_crc) +
                        ", computed " + std::to_string(actual_crc) +
                        ") — file is corrupt");

    ShardCheckpoint ck;
    ck.fingerprint = r.u64();
    ck.network = r.str();
    ck.accel = r.str();
    ck.fault_op = r.str();
    ck.sampler = r.str();
    ck.trials_total = r.u64();
    ck.shard_begin = r.u64();
    ck.shard_end = r.u64();
    ck.next_trial = r.u64();
    ck.complete = r.u8() != 0;
    ck.masked_exits = r.u64();
    const std::uint64_t aborted = r.u64();
    if (aborted > ck.trials_total)
      return defect(Errc::kCorruptData, path,
                    "aborted-trial count " + std::to_string(aborted) +
                        " exceeds trials_total " +
                        std::to_string(ck.trials_total));
    ck.aborted_trials.reserve(static_cast<std::size_t>(aborted));
    for (std::uint64_t i = 0; i < aborted; ++i)
      ck.aborted_trials.push_back(r.u64());
    ck.acc = OutcomeAccumulator::deserialize(r);
    if (r.u8() != 0) {
      StratifiedCheckpoint s;
      s.rounds = r.u64();
      s.cursor = r.u64();
      // Structural sanity bound: strata counts are (blocks x classes x
      // latches), a few hundred in practice; anything huge is corruption
      // and must not drive allocations.
      constexpr std::uint64_t kMaxStrata = 1u << 20;
      const std::uint64_t plan_count = r.u64();
      if (plan_count > kMaxStrata)
        return defect(Errc::kCorruptData, path,
                      "implausible stratified plan size " +
                          std::to_string(plan_count));
      s.plan.reserve(static_cast<std::size_t>(plan_count));
      std::uint64_t plan_sum = 0;
      for (std::uint64_t i = 0; i < plan_count; ++i) {
        s.plan.push_back(r.u64());
        plan_sum += s.plan.back();
      }
      const std::uint64_t strata_count = r.u64();
      if (strata_count > kMaxStrata)
        return defect(Errc::kCorruptData, path,
                      "implausible stratum count " +
                          std::to_string(strata_count));
      if (strata_count == 0 ||
          (plan_count != 0 && plan_count != strata_count))
        return defect(Errc::kCorruptData, path,
                      "stratified section has " +
                          std::to_string(strata_count) + " strata but a " +
                          std::to_string(plan_count) + "-entry plan");
      if (s.cursor > plan_sum)
        return defect(Errc::kCorruptData, path,
                      "stratified cursor " + std::to_string(s.cursor) +
                          " exceeds in-flight plan total " +
                          std::to_string(plan_sum));
      s.strata.reserve(static_cast<std::size_t>(strata_count));
      for (std::uint64_t i = 0; i < strata_count; ++i) {
        StratumCheckpoint h;
        h.id = r.str();
        h.weight = r.f64();
        h.acc = OutcomeAccumulator::deserialize(r);
        s.strata.push_back(std::move(h));
      }
      ck.stratified = std::move(s);
    }
    if (!r.done())
      return defect(Errc::kCorruptData, path, "trailing garbage after payload");
    if (ck.shard_begin > ck.shard_end || ck.next_trial < ck.shard_begin ||
        ck.next_trial > ck.shard_end || ck.shard_end > ck.trials_total)
      return defect(Errc::kCorruptData, path,
                    "inconsistent shard range [" +
                        std::to_string(ck.shard_begin) + ", " +
                        std::to_string(ck.shard_end) + ") next=" +
                        std::to_string(ck.next_trial) + " total=" +
                        std::to_string(ck.trials_total));
    return ck;
  } catch (const SerialError& e) {
    return defect(Errc::kCorruptData, path,
                  std::string("malformed payload: ") + e.what());
  }
}

Expected<std::vector<std::uint8_t>> read_checkpoint_bytes(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return defect(Errc::kIo, path, "cannot open for shipping");
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  // Never ship an image the receiver would reject: a torn local file is
  // better caught at the source, where "which disk is bad" is unambiguous.
  if (auto parsed = parse_checkpoint_bytes(bytes.data(), bytes.size(), path);
      !parsed.ok())
    return parsed.error();
  return bytes;
}

Expected<void> write_checkpoint_bytes(const std::string& path,
                                      const std::uint8_t* data,
                                      std::size_t size) {
  auto parsed = parse_checkpoint_bytes(data, size, path);
  if (!parsed.ok())
    return fail(Errc::kCheckpointShip,
                "shipped checkpoint for " + path +
                    " failed validation: " + parsed.error().message);
  auto written = write_file_atomic(
      path,
      std::string_view(reinterpret_cast<const char*>(data), size));
  if (!written.ok()) return defect(Errc::kIo, path, written.error().message);
  return {};
}

void save_shard_checkpoint(const std::string& path,
                           const ShardCheckpoint& ck) {
  auto saved = try_save_shard_checkpoint(path, ck);
  if (!saved.ok()) throw CheckpointError(saved.error());
}

ShardCheckpoint load_shard_checkpoint(const std::string& path) {
  auto loaded = try_load_shard_checkpoint(path);
  if (!loaded.ok()) throw CheckpointError(loaded.error());
  return std::move(loaded).value();
}

Expected<void> validate_checkpoint_axes(const ShardCheckpoint& ck,
                                        const std::string& accel,
                                        const std::string& fault_op,
                                        const std::string& sampler) {
  if (ck.accel != accel)
    return fail(Errc::kFingerprintMismatch,
                "checkpoint was produced on accelerator '" + ck.accel +
                    "' but this campaign runs '" + accel + "'");
  if (ck.fault_op != fault_op)
    return fail(Errc::kFingerprintMismatch,
                "checkpoint was produced with fault op '" + ck.fault_op +
                    "' but this campaign runs '" + fault_op + "'");
  if (ck.sampler != sampler)
    return fail(Errc::kFingerprintMismatch,
                "checkpoint was produced with sampler '" + ck.sampler +
                    "' but this campaign runs '" + sampler + "'");
  return {};
}

}  // namespace dnnfi::fault
