// Fault-injection campaigns: N independent trials of (sample site -> inject
// -> classify), run in parallel with per-trial deterministic RNG streams.
// One Campaign instance binds a (topology, weights, dtype, input set) tuple
// and precomputes the fault-free activation caches every trial replays
// from and compares against (incremental replay, DESIGN.md §8).
//
// Campaigns execute as *shards*: trial indices [begin, end) of the logical
// [0, trials) campaign. Trial t's RNG stream is derive_stream(seed, t) and
// its input is t % num_inputs, both functions of the global index alone, so
// any shard partition reproduces exactly the trials a monolithic run would
// — the union of shard aggregates is bit-identical to the single-process
// result, regardless of thread count, batching, or checkpoint/resume
// boundaries (see DESIGN.md §7 and tests/test_campaign_determinism.cpp).
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dnnfi/common/thread_pool.h"
#include "dnnfi/dnn/train.h"
#include "dnnfi/dnn/weights.h"
#include "dnnfi/fault/accumulator.h"
#include "dnnfi/fault/adaptive_sampler.h"
#include "dnnfi/fault/descriptor.h"
#include "dnnfi/fault/injector.h"
#include "dnnfi/fault/outcome.h"
#include "dnnfi/fault/sampler.h"
#include "dnnfi/fault/strata.h"

namespace dnnfi::fault {

/// How trials are drawn from the site population.
enum class SamplerMode : std::uint8_t {
  kUniform,     ///< i.i.d. uniform draws; trial t = derive_stream(seed, t)
  kStratified,  ///< adaptive stratified sampling (strata.h, DESIGN.md §12)
};

/// Per-layer value bounds used by symptom detectors: block -> [lo, hi].
struct BlockRange {
  double lo = 0;
  double hi = 0;
};

/// Periodic progress report for long campaigns (one per completed batch).
struct CampaignProgress {
  std::uint64_t done = 0;         ///< trials folded so far (resumed included)
  std::uint64_t begin = 0;        ///< shard range
  std::uint64_t end = 0;
  double trials_per_sec = 0;      ///< throughput of this process, this run
  double eta_seconds = 0;         ///< remaining / trials_per_sec
  Estimate sdc1;                  ///< running SDC-1 estimate (Wilson)
  /// Trials (resumed included) that early-exited because a replayed layer
  /// matched the fault-free cache bit-for-bit. 0 when incremental replay
  /// is disabled.
  std::uint64_t masked_exits = 0;
  double masked_exit_rate = 0;    ///< masked_exits / done
};

/// Campaign parameters.
struct CampaignOptions {
  SiteClass site = SiteClass::kDatapathLatch;
  std::size_t trials = 300;
  std::uint64_t seed = 2017;
  SampleConstraint constraint;

  /// Accelerator geometry trials sample from and lower through. The default
  /// (Eyeriss) reproduces the paper's site inventory — and the pre-geometry
  /// campaign bytes — exactly; `site` must be in the geometry's inventory.
  accel::AcceleratorConfig accel;

  /// Optional symptom detector: returns true when `value` observed at the
  /// end of logical layer `block` is anomalous. A trial is "detected" when
  /// any checked activation fires. Checks run at block-end layers only
  /// (where fmaps land in the global buffer), mirroring the paper's SED
  /// deployment (§6.2).
  std::function<bool(int block, double value)> detector;

  /// Record per-block Euclidean distance between faulty and golden
  /// activations (Fig 7). Costs one pass over every recomputed layer.
  bool record_block_distances = false;

  /// Incremental fault replay: seed each trial from the fault-free
  /// activation cache at the injection layer and stop as soon as a replayed
  /// layer matches the cache bit-for-bit (the fault was masked), emitting
  /// the cached final logits. Per-trial results are byte-identical either
  /// way — a masked trial's suffix is a deterministic function of state
  /// identical to the fault-free run — so this is purely a speed knob
  /// (tests/test_incremental_replay.cpp asserts the equivalence). Not part
  /// of the campaign fingerprint for the same reason.
  bool incremental_replay = true;

  /// Worker pool override. Null uses ThreadPool::global(). Results are
  /// bit-identical for any pool size — the determinism tests run the same
  /// campaign at 1, 2, and 8 threads and compare bytes.
  ThreadPool* pool = nullptr;

  /// Invoked after every completed batch with throughput, ETA, and the
  /// running SDC-1 estimate. Called on the campaign-driving thread.
  std::function<void(const CampaignProgress&)> progress;

  /// Cooperative cancellation (graceful SIGINT/SIGTERM shutdown): checked
  /// between batches. When it reads true the in-flight batch finishes, its
  /// checkpoint (if any) is written, and run_shard returns an incomplete
  /// result — exactly like stop_after, but signal-driven. Typically points
  /// at an atomic set from a signal handler; null disables the check.
  const std::atomic<bool>* cancel = nullptr;

  /// Trial-drawing strategy. kUniform is the seed semantics: every output
  /// byte, fingerprint, and checkpoint is unchanged from before the sampler
  /// axis existed. kStratified runs the adaptive campaign (run_stratified);
  /// `trials` becomes the trial *budget* rather than an exact count.
  SamplerMode sampler = SamplerMode::kUniform;

  /// Controller knobs; read only under kStratified.
  StratifiedOptions stratified;
};

/// The sampler axis's identity string: "uniform", or the stratified
/// options' canonical form. Folded into the campaign fingerprint only when
/// non-default (mirroring the geometry and fault-op axes), carried in
/// checkpoints and non-default stats headers.
std::string sampler_id(const CampaignOptions& opt);

/// One shard of a campaign: which trial-index range to run and how to
/// persist it.
struct ShardSpec {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;  ///< exclusive; 0 means "opt.trials" (whole range)

  /// Checkpoint file. Empty disables checkpointing. When the file already
  /// exists it is loaded, validated against the campaign fingerprint, and
  /// the run resumes from its next_trial cursor.
  std::string checkpoint;

  /// Trials per batch: the granularity of checkpoints, progress callbacks,
  /// and stop_after. Only batches when one of those features is active —
  /// otherwise the whole range runs as a single batch.
  std::size_t batch = 512;

  /// Testing/preemption hook: stop cleanly (checkpoint written, incomplete
  /// result returned) after at least this many *new* trials. 0 = run to
  /// the end of the shard.
  std::uint64_t stop_after = 0;
};

/// Streaming consumer of per-trial records, invoked in ascending trial
/// order after each batch completes. Optional: campaigns that only need
/// aggregates skip record materialization entirely.
using TrialSink = std::function<void(std::uint64_t trial, const TrialRecord&)>;

/// What a shard run produced.
struct ShardResult {
  OutcomeAccumulator acc;
  std::uint64_t next_trial = 0;  ///< == shard end iff complete
  bool complete = false;
  bool resumed = false;  ///< a checkpoint was loaded before running
  /// Trials that early-exited on an exact cache match (masked faults).
  /// Deterministic per trial, carried through checkpoints, and summed by
  /// merge; always 0 when incremental replay is disabled.
  std::uint64_t masked_exits = 0;
};

/// All trials of one campaign plus aggregation helpers. The buffered
/// counterpart of OutcomeAccumulator: keeps every record, for studies that
/// need per-trial data (Fig 5's value buckets). Aggregate-only consumers
/// should prefer Campaign::run_shard, whose memory is flat in trial count.
struct CampaignResult {
  std::vector<TrialRecord> trials;

  using Pred = std::function<bool(const TrialRecord&)>;

  /// Estimates P(pred) over all trials (zero-width when empty).
  Estimate rate(const Pred& pred) const;
  /// Estimates P(pred) over trials satisfying `filter`.
  Estimate rate_if(const Pred& filter, const Pred& pred) const;

  Estimate sdc1() const;
  Estimate sdc5() const;
  Estimate sdc10() const;
  Estimate sdc20() const;
};

/// What a stratified campaign produced: the partition, per-stratum
/// aggregates, and Horvitz–Thompson estimate helpers. Deterministic in
/// (options, budget) regardless of thread count, batching, or
/// checkpoint/resume boundaries, like the uniform shard path.
struct StratifiedResult {
  /// Canonical stratum definitions and their exact weights (StratumSet
  /// order; weights sum to 1).
  std::vector<Stratum> strata;
  std::vector<double> weights;
  /// One accumulator per stratum, fed only by that stratum's trials.
  std::vector<OutcomeAccumulator> per_stratum;
  /// Exact fold of every per-stratum accumulator: the raw (unweighted)
  /// pooled counts, what the checkpoint's top-level accumulator carries.
  OutcomeAccumulator pooled;

  std::uint64_t rounds = 0;        ///< completed allocation rounds
  std::uint64_t trials = 0;        ///< trials executed (== pooled.trials())
  std::uint64_t masked_exits = 0;  ///< early cache-match exits (pooled)
  bool complete = false;   ///< controller finished (vs stop_after/cancel)
  bool converged = false;  ///< complete via the CI target, not the budget
  bool resumed = false;    ///< a checkpoint was loaded before running

  /// Stratified HT estimates of the paper's SDC criteria. Unlike the
  /// pooled accumulator's Wilson rates, these are unbiased for the
  /// *population* rate under the adaptive allocation.
  StratifiedEstimate sdc1() const;
  StratifiedEstimate sdc5() const;
  StratifiedEstimate sdc10() const;
  StratifiedEstimate sdc20() const;

  /// Per-stratum sufficient statistics with `hits` drawn by `metric` —
  /// the form stratified_estimate() and next_allocation() consume.
  std::vector<StratumCounts> counts(
      const std::function<std::size_t(const OutcomeAccumulator&)>& metric)
      const;
};

/// A reusable (network, dtype, inputs) binding for running campaigns.
class Campaign {
 public:
  /// Builds the typed network from (spec, blob), quantizes `inputs`, and
  /// computes golden traces and predictions.
  Campaign(const dnn::NetworkSpec& spec, const dnn::WeightsBlob& blob,
           numeric::DType dtype, std::vector<dnn::Example> inputs);
  ~Campaign();
  Campaign(Campaign&&) noexcept;
  Campaign& operator=(Campaign&&) noexcept;

  /// Runs `opt.trials` independent injections, buffering every record.
  /// Deterministic in opt.seed, regardless of thread count. Zero trials
  /// yields an empty result whose estimates are all zero-width.
  CampaignResult run(const CampaignOptions& opt) const;

  /// Runs one shard of the campaign with streaming aggregation: records
  /// are folded into the returned accumulator (and optionally streamed to
  /// `sink` in trial order) instead of buffered. Honors `spec.checkpoint`
  /// for resumable execution. Memory is bounded by (workers + batch), not
  /// by trial count.
  ShardResult run_shard(const CampaignOptions& opt, const ShardSpec& shard,
                        const TrialSink* sink = nullptr) const;

  /// Runs the adaptive stratified campaign (opt.sampler must be
  /// kStratified): pilot, Neyman reallocation rounds, and convergence /
  /// budget stop, per adaptive_sampler.h. Stratified campaigns are
  /// sequential-adaptive, so they don't shard: `shard.begin` must be 0 and
  /// `shard.end` 0 or opt.trials; checkpoint, batch, and stop_after keep
  /// their run_shard meanings (stop_after counts new trials). Trial t of
  /// stratum h draws from derive_stream(seed, h, t) and replays input
  /// t % num_inputs — functions of accumulated state alone, so resumed and
  /// uninterrupted runs are byte-identical at any thread count.
  StratifiedResult run_stratified(const CampaignOptions& opt,
                                  const ShardSpec& shard = {}) const;

  /// Fold of every option that changes trial outcomes — seed, trial count,
  /// site, constraint, dtype, topology, detector presence — used to refuse
  /// resuming/merging under mismatched configurations. Not part of the
  /// checkpoint payload semantics: equal fingerprints promise equal trials.
  std::uint64_t fingerprint(const CampaignOptions& opt) const;

  const dnn::NetworkSpec& spec() const;
  numeric::DType dtype() const;
  const Sampler& sampler() const;
  std::size_t num_inputs() const;
  /// Golden prediction for input `i`.
  const dnn::Prediction& golden_prediction(std::size_t i) const;
  /// Fault-free value range observed at each block end across all inputs.
  const std::vector<BlockRange>& golden_block_ranges() const;

 private:
  struct Backend;
  template <typename T>
  struct TypedBackend;
  std::unique_ptr<Backend> backend_;
};

/// Fault-free profiling: value range per block-end layer over `count`
/// examples from `source` (the SED "learning phase" and Table 4).
std::vector<BlockRange> profile_block_ranges(const dnn::NetworkSpec& spec,
                                             const dnn::WeightsBlob& blob,
                                             numeric::DType dtype,
                                             const dnn::ExampleSource& source,
                                             std::uint64_t begin,
                                             std::size_t count);

/// Indices of block-end layers (the last non-softmax layer of each block).
std::vector<std::size_t> block_end_layers(const dnn::NetworkSpec& spec);

}  // namespace dnnfi::fault
