// Fault-injection campaigns: N independent trials of (sample site -> inject
// -> classify), run in parallel with per-trial deterministic RNG streams.
// One Campaign instance binds a (topology, weights, dtype, input set) tuple
// and precomputes the golden traces every trial compares against.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "dnnfi/dnn/train.h"
#include "dnnfi/dnn/weights.h"
#include "dnnfi/fault/descriptor.h"
#include "dnnfi/fault/injector.h"
#include "dnnfi/fault/outcome.h"
#include "dnnfi/fault/sampler.h"

namespace dnnfi::fault {

/// Per-layer value bounds used by symptom detectors: block -> [lo, hi].
struct BlockRange {
  double lo = 0;
  double hi = 0;
};

/// Campaign parameters.
struct CampaignOptions {
  SiteClass site = SiteClass::kDatapathLatch;
  std::size_t trials = 300;
  std::uint64_t seed = 2017;
  SampleConstraint constraint;

  /// Optional symptom detector: returns true when `value` observed at the
  /// end of logical layer `block` is anomalous. A trial is "detected" when
  /// any checked activation fires. Checks run at block-end layers only
  /// (where fmaps land in the global buffer), mirroring the paper's SED
  /// deployment (§6.2).
  std::function<bool(int block, double value)> detector;

  /// Record per-block Euclidean distance between faulty and golden
  /// activations (Fig 7). Costs one pass over every recomputed layer.
  bool record_block_distances = false;
};

/// Result of a single trial.
struct TrialRecord {
  FaultDescriptor fault;
  Outcome outcome;
  dnn::InjectionRecord record;
  std::size_t input_index = 0;
  bool detected = false;
  /// Fraction of elements of the final block-end activation whose bit
  /// patterns differ from golden (Table 5's propagation metric).
  double output_corruption = 0;
  /// Per-block Euclidean distance to golden (empty unless requested).
  std::vector<double> block_distance;
};

/// All trials of one campaign plus aggregation helpers.
struct CampaignResult {
  std::vector<TrialRecord> trials;

  using Pred = std::function<bool(const TrialRecord&)>;

  /// Estimates P(pred) over all trials.
  Estimate rate(const Pred& pred) const;
  /// Estimates P(pred) over trials satisfying `filter`.
  Estimate rate_if(const Pred& filter, const Pred& pred) const;

  Estimate sdc1() const;
  Estimate sdc5() const;
  Estimate sdc10() const;
  Estimate sdc20() const;
};

/// A reusable (network, dtype, inputs) binding for running campaigns.
class Campaign {
 public:
  /// Builds the typed network from (spec, blob), quantizes `inputs`, and
  /// computes golden traces and predictions.
  Campaign(const dnn::NetworkSpec& spec, const dnn::WeightsBlob& blob,
           numeric::DType dtype, std::vector<dnn::Example> inputs);
  ~Campaign();
  Campaign(Campaign&&) noexcept;
  Campaign& operator=(Campaign&&) noexcept;

  /// Runs `opt.trials` independent injections. Deterministic in opt.seed,
  /// regardless of thread count.
  CampaignResult run(const CampaignOptions& opt) const;

  const dnn::NetworkSpec& spec() const;
  numeric::DType dtype() const;
  const Sampler& sampler() const;
  std::size_t num_inputs() const;
  /// Golden prediction for input `i`.
  const dnn::Prediction& golden_prediction(std::size_t i) const;
  /// Fault-free value range observed at each block end across all inputs.
  const std::vector<BlockRange>& golden_block_ranges() const;

 private:
  struct Backend;
  template <typename T>
  struct TypedBackend;
  std::unique_ptr<Backend> backend_;
};

/// Fault-free profiling: value range per block-end layer over `count`
/// examples from `source` (the SED "learning phase" and Table 4).
std::vector<BlockRange> profile_block_ranges(const dnn::NetworkSpec& spec,
                                             const dnn::WeightsBlob& blob,
                                             numeric::DType dtype,
                                             const dnn::ExampleSource& source,
                                             std::uint64_t begin,
                                             std::size_t count);

/// Indices of block-end layers (the last non-softmax layer of each block).
std::vector<std::size_t> block_end_layers(const dnn::NetworkSpec& spec);

}  // namespace dnnfi::fault
