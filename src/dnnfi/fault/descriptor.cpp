#include "dnnfi/fault/descriptor.h"

#include <sstream>

namespace dnnfi::fault {

std::string FaultDescriptor::describe() const {
  std::ostringstream os;
  if (geom == accel::AcceleratorKind::kSystolic) {
    // e.g. "systolic pe(3,5) psum-reg set1 mask=0x00c0 block 2 elem 17 step 4"
    os << "systolic pe(" << pe_row << ',' << pe_col << ") "
       << site_class_name(cls);
    if (cls == SiteClass::kDatapathLatch)
      os << '/' << accel::datapath_latch_name(latch);
    os << ' ' << effective_op().describe();
    os << " block " << block << " elem " << element;
    if (cls == SiteClass::kDatapathLatch || cls == SiteClass::kPsumReg)
      os << " step " << step;
    return os.str();
  }
  os << site_class_name(cls);
  if (cls == SiteClass::kDatapathLatch)
    os << '/' << accel::datapath_latch_name(latch);
  os << " block " << block << " elem " << element;
  if (cls == SiteClass::kDatapathLatch || cls == SiteClass::kPsumReg)
    os << " step " << step;
  if (cls == SiteClass::kImgReg)
    os << " scope (co=" << out_channel << ", row=" << out_row << ")";
  os << " bit " << bit;
  // Legacy single-bit toggles keep the seed format; richer ops render their
  // mask so quarantine reports identify the exact upset pattern.
  if (!op.is_identity() && !op.is_flip_burst(bit, 1))
    os << ' ' << op.describe();
  return os.str();
}

}  // namespace dnnfi::fault
