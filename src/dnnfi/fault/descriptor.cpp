#include "dnnfi/fault/descriptor.h"

#include <sstream>

namespace dnnfi::fault {

std::string FaultDescriptor::describe() const {
  std::ostringstream os;
  os << site_class_name(cls);
  if (cls == SiteClass::kDatapathLatch)
    os << '/' << accel::datapath_latch_name(latch);
  os << " block " << block << " elem " << element;
  if (cls == SiteClass::kDatapathLatch || cls == SiteClass::kPsumReg)
    os << " step " << step;
  if (cls == SiteClass::kImgReg)
    os << " scope (co=" << out_channel << ", row=" << out_row << ")";
  os << " bit " << bit;
  return os.str();
}

}  // namespace dnnfi::fault
