// Lowering from hardware fault descriptors to layer-level fault hooks, and
// the single-trial injection entry point.
#pragma once

#include "dnnfi/dnn/network.h"
#include "dnnfi/fault/descriptor.h"

namespace dnnfi::fault {

/// Lowers a sampled hardware fault onto the layer-level hook the network
/// executes. `mac_layers` maps MAC ordinals to NetworkSpec layer indices.
dnn::AppliedFault lower(const FaultDescriptor& f,
                        const std::vector<std::size_t>& mac_layers);

/// Runs one faulty inference against a cached golden trace. Returns the
/// final output tensor; `rec` (optional) receives the corrupted values and
/// `observer` (optional) sees each recomputed layer activation.
template <typename T>
dnn::Tensor<T> inject(
    const dnn::Network<T>& net, const dnn::Trace<T>& golden,
    const FaultDescriptor& f, dnn::InjectionRecord* rec = nullptr,
    const typename dnn::Network<T>::LayerObserverFn* observer = nullptr) {
  return net.forward_with_fault(golden, lower(f, net.mac_layers()), rec,
                                observer);
}

}  // namespace dnnfi::fault
