// Lowering from hardware fault descriptors to layer-level fault hooks, and
// the single-trial injection entry points.
//
// Fault sites address logical NCHW/OIHW coordinates (tensor indices, MAC
// step ordinals in (ci, ky, kx) order). The SIMD kernel engine's packed
// weight layout (DESIGN.md §10) is a kernel-private copy inside the
// workspace arena: injection, activation caching, and checkpointing never
// see it, so fault coordinates mean the same thing under every kernel set.
#pragma once

#include "dnnfi/accel/accelerator.h"
#include "dnnfi/dnn/executor.h"
#include "dnnfi/dnn/network.h"
#include "dnnfi/fault/descriptor.h"

namespace dnnfi::fault {

/// Lowers a sampled hardware fault onto the layer-level hook the network
/// executes, through the geometry the fault was sampled on. `mac_layers`
/// maps MAC ordinals to NetworkSpec layer indices.
dnn::AppliedFault lower(
    const FaultDescriptor& f, const std::vector<std::size_t>& mac_layers,
    const accel::AcceleratorModel& model = accel::eyeriss_model());

/// Runs one faulty inference against a cached golden trace on the compiled
/// engine: zero heap allocations after the workspace is warm. Returns a
/// view of the final output that aliases `ws` — read or copy it before the
/// workspace runs again. This is the campaign hot path.
template <typename T>
tensor::ConstTensorView<T> inject(
    const dnn::Executor<T>& exec, dnn::Workspace<T>& ws,
    const std::vector<std::size_t>& mac_layers, const dnn::Trace<T>& golden,
    const FaultDescriptor& f, dnn::InjectionRecord* rec = nullptr,
    const dnn::LayerObserver<T>* observer = nullptr,
    const accel::AcceleratorModel& model = accel::eyeriss_model()) {
  const dnn::AppliedFault af = lower(f, mac_layers, model);
  dnn::RunRequest<T> req;
  req.golden = &golden;
  req.fault = &af;
  req.record = rec;
  req.observer = observer;
  return exec.run(ws, req);
}

/// Incremental-replay counterpart: the golden source is an ActivationCache
/// and, when `early_exit` is set, the run stops at the first replayed layer
/// whose output matches the cache bit-for-bit (returning the cached final
/// logits). Zero heap allocations after workspace warm-up, like the Trace
/// path above. `replay`, when non-null, reports what actually executed.
template <typename T>
tensor::ConstTensorView<T> inject(
    const dnn::Executor<T>& exec, dnn::Workspace<T>& ws,
    const std::vector<std::size_t>& mac_layers,
    const dnn::ActivationCache<T>& cache, const FaultDescriptor& f,
    bool early_exit = true, dnn::ReplayInfo* replay = nullptr,
    dnn::InjectionRecord* rec = nullptr,
    const dnn::LayerObserver<T>* observer = nullptr,
    const accel::AcceleratorModel& model = accel::eyeriss_model()) {
  const dnn::AppliedFault af = lower(f, mac_layers, model);
  dnn::RunRequest<T> req;
  req.cache = &cache;
  req.fault = &af;
  req.record = rec;
  req.observer = observer;
  req.early_exit = early_exit;
  req.replay = replay;
  return exec.run(ws, req);
}

/// Convenience wrapper: one faulty inference via the network's compat path
/// (allocates a workspace per call). Returns the final output tensor.
template <typename T>
dnn::Tensor<T> inject(
    const dnn::Network<T>& net, const dnn::Trace<T>& golden,
    const FaultDescriptor& f, dnn::InjectionRecord* rec = nullptr,
    const typename dnn::Network<T>::LayerObserverFn* observer = nullptr) {
  return net.forward_with_fault(golden, lower(f, net.mac_layers()), rec,
                                observer);
}

}  // namespace dnnfi::fault
