#include "dnnfi/fault/stats_io.h"

#include <algorithm>
#include <sstream>

#include "dnnfi/common/atomic_file.h"
#include "dnnfi/fault/adaptive_sampler.h"

namespace dnnfi::fault {

namespace {

/// The four `ht <criterion> ...` lines: HT point estimate, stratified 95%
/// interval, and effective sample size, all in exact hex floats.
void write_ht_line(std::ostream& os, const char* criterion,
                   const StratifiedStatsSection& strat,
                   std::uint64_t StratumStats::*hits) {
  std::vector<StratumCounts> counts(strat.strata.size());
  for (std::size_t h = 0; h < strat.strata.size(); ++h) {
    counts[h].weight = strat.strata[h].weight;
    counts[h].hits = strat.strata[h].*hits;
    counts[h].n = strat.strata[h].trials;
  }
  const StratifiedEstimate e = stratified_estimate(counts);
  os << "ht " << criterion << " p " << e.est.p << " ci95 " << e.est.ci95
     << " lo " << e.est.lo << " hi " << e.est.hi << " n_eff " << e.n_eff
     << "\n";
}

}  // namespace

void write_stats(std::ostream& os, std::uint64_t fingerprint,
                 const OutcomeAccumulator& acc, std::uint64_t masked_exits,
                 const std::vector<std::uint64_t>& aborted_trials,
                 const StatsAxes& axes, const StratifiedStatsSection* strat) {
  DNNFI_EXPECTS(strat == nullptr || axes.sampler != "uniform");
  // Default axes emit the exact v3 bytes: pre-refactor stats diff clean.
  if (axes.is_default()) {
    os << "dnnfi-campaign-stats v3\n";
    os << "fingerprint " << fingerprint << "\n";
  } else if (axes.sampler == "uniform") {
    os << "dnnfi-campaign-stats v4\n";
    os << "fingerprint " << fingerprint << "\n";
    os << "accel " << axes.accel << "\n";
    os << "fault_op " << axes.fault_op << "\n";
  } else {
    os << "dnnfi-campaign-stats v5\n";
    os << "fingerprint " << fingerprint << "\n";
    os << "sampler " << axes.sampler << "\n";
    if (!axes.geometry_default()) {
      os << "accel " << axes.accel << "\n";
      os << "fault_op " << axes.fault_op << "\n";
    }
  }
  os << "trials " << acc.trials() << "\n";
  os << "masked_exits " << masked_exits << "\n";
  os << "aborted " << aborted_trials.size() << "\n";
  std::vector<std::uint64_t> sorted = aborted_trials;
  std::sort(sorted.begin(), sorted.end());
  for (const std::uint64_t t : sorted) os << "aborted_trial " << t << "\n";
  os << "sdc1 " << acc.sdc1().hits << "\n";
  os << "sdc5 " << acc.sdc5().hits << "\n";
  os << "sdc10 " << acc.sdc10().hits << "\n";
  os << "sdc20 " << acc.sdc20().hits << "\n";
  os << "detections " << acc.detections() << "\n";
  os << "benign_flagged " << acc.benign_flagged() << "\n";
  os << "reached " << acc.reached_output().hits << "\n";
  os << std::hexfloat;
  os << "mean_corruption_reached " << acc.mean_output_corruption_reached()
     << "\n";
  for (std::size_t b = 0; b < acc.num_blocks(); ++b) {
    os << "block " << b + 1 << " live " << std::defaultfloat
       << acc.block_live(b) << " masked " << acc.block_masked(b)
       << " dist_sum " << std::hexfloat << acc.block_distance_sum(b)
       << " log10_mean " << acc.block_log10_mean(b) << "\n";
  }
  if (strat != nullptr) {
    os << std::defaultfloat;
    os << "strata " << strat->strata.size() << "\n";
    for (const StratumStats& h : strat->strata) {
      os << "stratum " << h.id << " weight " << std::hexfloat << h.weight
         << std::defaultfloat << " trials " << h.trials << " sdc1 " << h.sdc1
         << " sdc5 " << h.sdc5 << " sdc10 " << h.sdc10 << " sdc20 "
         << h.sdc20 << "\n";
    }
    os << std::hexfloat;
    write_ht_line(os, "sdc1", *strat, &StratumStats::sdc1);
    write_ht_line(os, "sdc5", *strat, &StratumStats::sdc5);
    write_ht_line(os, "sdc10", *strat, &StratumStats::sdc10);
    write_ht_line(os, "sdc20", *strat, &StratumStats::sdc20);
  }
  os << std::defaultfloat;
}

Expected<void> write_stats_file(
    const std::string& path, std::uint64_t fingerprint,
    const OutcomeAccumulator& acc, std::uint64_t masked_exits,
    const std::vector<std::uint64_t>& aborted_trials, const StatsAxes& axes,
    const StratifiedStatsSection* strat) {
  std::ostringstream os;
  write_stats(os, fingerprint, acc, masked_exits, aborted_trials, axes, strat);
  auto written = write_file_atomic(path, os.str());
  if (!written.ok())
    return fail(Errc::kIo, "stats file " + path + ": " +
                               written.error().message);
  return {};
}

}  // namespace dnnfi::fault
