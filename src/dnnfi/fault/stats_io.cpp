#include "dnnfi/fault/stats_io.h"

#include <algorithm>
#include <sstream>

#include "dnnfi/common/atomic_file.h"

namespace dnnfi::fault {

void write_stats(std::ostream& os, std::uint64_t fingerprint,
                 const OutcomeAccumulator& acc, std::uint64_t masked_exits,
                 const std::vector<std::uint64_t>& aborted_trials,
                 const StatsAxes& axes) {
  // Default axes emit the exact v3 bytes: pre-refactor stats diff clean.
  if (axes.is_default()) {
    os << "dnnfi-campaign-stats v3\n";
    os << "fingerprint " << fingerprint << "\n";
  } else {
    os << "dnnfi-campaign-stats v4\n";
    os << "fingerprint " << fingerprint << "\n";
    os << "accel " << axes.accel << "\n";
    os << "fault_op " << axes.fault_op << "\n";
  }
  os << "trials " << acc.trials() << "\n";
  os << "masked_exits " << masked_exits << "\n";
  os << "aborted " << aborted_trials.size() << "\n";
  std::vector<std::uint64_t> sorted = aborted_trials;
  std::sort(sorted.begin(), sorted.end());
  for (const std::uint64_t t : sorted) os << "aborted_trial " << t << "\n";
  os << "sdc1 " << acc.sdc1().hits << "\n";
  os << "sdc5 " << acc.sdc5().hits << "\n";
  os << "sdc10 " << acc.sdc10().hits << "\n";
  os << "sdc20 " << acc.sdc20().hits << "\n";
  os << "detections " << acc.detections() << "\n";
  os << "benign_flagged " << acc.benign_flagged() << "\n";
  os << "reached " << acc.reached_output().hits << "\n";
  os << std::hexfloat;
  os << "mean_corruption_reached " << acc.mean_output_corruption_reached()
     << "\n";
  for (std::size_t b = 0; b < acc.num_blocks(); ++b) {
    os << "block " << b + 1 << " live " << std::defaultfloat
       << acc.block_live(b) << " masked " << acc.block_masked(b)
       << " dist_sum " << std::hexfloat << acc.block_distance_sum(b)
       << " log10_mean " << acc.block_log10_mean(b) << "\n";
  }
  os << std::defaultfloat;
}

Expected<void> write_stats_file(
    const std::string& path, std::uint64_t fingerprint,
    const OutcomeAccumulator& acc, std::uint64_t masked_exits,
    const std::vector<std::uint64_t>& aborted_trials, const StatsAxes& axes) {
  std::ostringstream os;
  write_stats(os, fingerprint, acc, masked_exits, aborted_trials, axes);
  auto written = write_file_atomic(path, os.str());
  if (!written.ok())
    return fail(Errc::kIo, "stats file " + path + ": " +
                               written.error().message);
  return {};
}

}  // namespace dnnfi::fault
