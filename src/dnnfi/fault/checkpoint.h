// Versioned shard checkpoints. A campaign shard persists (fingerprint,
// trial-range, next-trial cursor, accumulator state) so a killed run
// resumes from the last completed batch and finishes bit-identical to an
// uninterrupted one.
//
// File layout (all little-endian):
//
//   offset  size  field
//   0       8     magic "DNNFICKP"
//   8       4     format version (currently 4)
//   12      4     CRC-32 of the payload
//   16      8     payload size in bytes
//   24      ...   payload (ByteWriter stream):
//                   u64 fingerprint       — campaign-config fold (below)
//                   str network name      — diagnostics only
//                   str accel             — v4: geometry identity, e.g.
//                                           "eyeriss", "systolic:16x16"
//                   str fault_op          — v4: op identity, e.g. "toggle",
//                                           "set1:0x5"
//                   u64 trials_total      — opt.trials of the whole campaign
//                   u64 shard_begin, shard_end
//                   u64 next_trial        — first trial index NOT yet folded
//                   u8  complete          — next_trial == shard_end
//                   u64 masked_exits      — early-exited (masked) trials
//                   u64 aborted count + u64[count] — v3: quarantined trials
//                   ...  OutcomeAccumulator::serialize
//
// Version history: v1 lacked masked_exits; v2 lacked aborted_trials; v3
// lacked the accelerator-geometry / fault-op identity strings. Loads of
// older files fail with a version error (campaign semantics are unchanged,
// but mixing counters across formats silently would corrupt masked-rate,
// quarantine, and cross-geometry reporting).
//
// Every structural defect — bad magic, unknown version, CRC mismatch,
// truncation — is reported with a typed Errc (error.h) naming the file and
// the defect; corrupt state is never silently (mis)loaded. The Expected
// API (try_load/try_save) is the primary one — the campaign supervisor
// dispatches on the code to decide retry vs abort — and the throwing
// wrappers preserve the original interface, raising CheckpointError that
// carries the same code. Writes go to a sibling ".tmp" file first and are
// renamed into place, so a crash mid-write leaves the previous checkpoint
// intact.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "dnnfi/common/error.h"
#include "dnnfi/fault/accumulator.h"

namespace dnnfi::fault {

/// Thrown on any checkpoint load/validation failure (corrupt bytes,
/// version skew, or a checkpoint that does not match the campaign being
/// resumed). Catchable separately from programming-error ContractViolation,
/// and carries the structured code so process-boundary consumers (the
/// campaign CLI's exit status, the supervisor's retry policy) never have
/// to parse the message.
class CheckpointError : public std::runtime_error {
 public:
  explicit CheckpointError(Error err)
      : std::runtime_error(err.to_string()), code_(err.code) {}
  CheckpointError(Errc code, const std::string& what)
      : std::runtime_error(what), code_(code) {}

  Errc code() const noexcept { return code_; }

 private:
  Errc code_;
};

inline constexpr char kCheckpointMagic[8] = {'D', 'N', 'N', 'F',
                                             'I', 'C', 'K', 'P'};
inline constexpr std::uint32_t kCheckpointVersion = 4;

/// One shard's persistent state.
struct ShardCheckpoint {
  std::uint64_t fingerprint = 0;  ///< campaign-config fold (campaign.h)
  std::string network;            ///< spec name, for diagnostics
  /// Canonical accelerator-geometry identity the shard ran on (new in v4).
  std::string accel = "eyeriss";
  /// Canonical fault-operation identity (FaultOpSpec::to_string; v4).
  std::string fault_op = "toggle";
  std::uint64_t trials_total = 0;
  std::uint64_t shard_begin = 0;
  std::uint64_t shard_end = 0;
  std::uint64_t next_trial = 0;
  bool complete = false;
  /// Trials that early-exited on an exact cache match (masked faults);
  /// 0 when incremental replay was disabled. New in format v2.
  std::uint64_t masked_exits = 0;
  /// Trials quarantined by the supervisor: they crashed the worker on
  /// every attempt, were bisected down to, and are NOT folded into `acc`.
  /// Always empty for worker-written shard checkpoints; the supervisor's
  /// merged campaign checkpoint enumerates them. New in format v3.
  std::vector<std::uint64_t> aborted_trials;
  OutcomeAccumulator acc;
};

/// Atomically writes `ck` to `path` (tmp file + rename). kIo on failure.
Expected<void> try_save_shard_checkpoint(const std::string& path,
                                         const ShardCheckpoint& ck);

/// Loads and validates a checkpoint. Failure codes: kIo (unreadable),
/// kCorruptData (bad magic/CRC/truncation/inconsistent ranges),
/// kVersionSkew (format this build does not read).
Expected<ShardCheckpoint> try_load_shard_checkpoint(const std::string& path);

/// Throwing wrapper over try_save_shard_checkpoint.
void save_shard_checkpoint(const std::string& path, const ShardCheckpoint& ck);

/// Throwing wrapper over try_load_shard_checkpoint.
ShardCheckpoint load_shard_checkpoint(const std::string& path);

/// Validates that a loaded checkpoint was produced on the given accelerator
/// geometry and fault operation (canonical identity strings). Fails with
/// kFingerprintMismatch naming both sides — resuming a shard under a
/// different geometry/op would silently merge incomparable trials.
Expected<void> validate_checkpoint_axes(const ShardCheckpoint& ck,
                                        const std::string& accel,
                                        const std::string& fault_op);

}  // namespace dnnfi::fault
