// Versioned shard checkpoints. A campaign shard persists (fingerprint,
// trial-range, next-trial cursor, accumulator state) so a killed run
// resumes from the last completed batch and finishes bit-identical to an
// uninterrupted one.
//
// File layout (all little-endian):
//
//   offset  size  field
//   0       8     magic "DNNFICKP"
//   8       4     format version (currently 5)
//   12      4     CRC-32 of the payload
//   16      8     payload size in bytes
//   24      ...   payload (ByteWriter stream):
//                   u64 fingerprint       — campaign-config fold (below)
//                   str network name      — diagnostics only
//                   str accel             — v4: geometry identity, e.g.
//                                           "eyeriss", "systolic:16x16"
//                   str fault_op          — v4: op identity, e.g. "toggle",
//                                           "set1:0x5"
//                   str sampler           — v5: sampler identity, "uniform"
//                                           or "stratified(pilot=…,…)"
//                   u64 trials_total      — opt.trials of the whole campaign
//                   u64 shard_begin, shard_end
//                   u64 next_trial        — first trial index NOT yet folded
//                                           (stratified: trials executed)
//                   u8  complete          — next_trial == shard_end
//                   u64 masked_exits      — early-exited (masked) trials
//                   u64 aborted count + u64[count] — v3: quarantined trials
//                   ...  OutcomeAccumulator::serialize — pooled aggregate
//                   u8  has_stratified    — v5: sections below present?
//                   u64 rounds            — completed allocation rounds
//                   u64 cursor            — executed trials of the plan
//                   u64 plan count + u64[count] — in-flight round allocation
//                   u64 strata count; per stratum:
//                     str id              — canonical Stratum::id()
//                     f64 weight          — exact uniform-draw probability
//                     ...  OutcomeAccumulator::serialize
//
// Version history: v1 lacked masked_exits; v2 lacked aborted_trials; v3
// lacked the accelerator-geometry / fault-op identity strings; v4 lacked
// the sampler identity and the per-stratum section. Loads of older files
// fail with a version error (campaign semantics are unchanged, but mixing
// counters across formats silently would corrupt masked-rate, quarantine,
// and cross-geometry reporting).
//
// Every structural defect — bad magic, unknown version, CRC mismatch,
// truncation — is reported with a typed Errc (error.h) naming the file and
// the defect; corrupt state is never silently (mis)loaded. The Expected
// API (try_load/try_save) is the primary one — the campaign supervisor
// dispatches on the code to decide retry vs abort — and the throwing
// wrappers preserve the original interface, raising CheckpointError that
// carries the same code. Writes go to a sibling ".tmp" file first and are
// renamed into place, so a crash mid-write leaves the previous checkpoint
// intact.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "dnnfi/common/error.h"
#include "dnnfi/fault/accumulator.h"

namespace dnnfi::fault {

/// Thrown on any checkpoint load/validation failure (corrupt bytes,
/// version skew, or a checkpoint that does not match the campaign being
/// resumed). Catchable separately from programming-error ContractViolation,
/// and carries the structured code so process-boundary consumers (the
/// campaign CLI's exit status, the supervisor's retry policy) never have
/// to parse the message.
class CheckpointError : public std::runtime_error {
 public:
  explicit CheckpointError(Error err)
      : std::runtime_error(err.to_string()), code_(err.code) {}
  CheckpointError(Errc code, const std::string& what)
      : std::runtime_error(what), code_(code) {}

  Errc code() const noexcept { return code_; }

 private:
  Errc code_;
};

inline constexpr char kCheckpointMagic[8] = {'D', 'N', 'N', 'F',
                                             'I', 'C', 'K', 'P'};
inline constexpr std::uint32_t kCheckpointVersion = 5;

/// One stratum's persisted state inside a stratified checkpoint (v5).
struct StratumCheckpoint {
  std::string id;     ///< canonical Stratum::id(); layout-mismatch guard
  double weight = 0;  ///< exact uniform-draw probability W_h
  OutcomeAccumulator acc;
};

/// Stratified-campaign extension of a checkpoint (v5): the per-stratum
/// accumulators plus the controller's in-flight round. Everything else the
/// controller needs (the next allocation) is a pure function of this state,
/// so nothing else is persisted.
struct StratifiedCheckpoint {
  std::uint64_t rounds = 0;  ///< completed allocation rounds
  std::uint64_t cursor = 0;  ///< trials of `plan` already executed + folded
  /// The in-flight round's per-stratum allocation (empty between rounds).
  std::vector<std::uint64_t> plan;
  std::vector<StratumCheckpoint> strata;
};

/// One shard's persistent state.
struct ShardCheckpoint {
  std::uint64_t fingerprint = 0;  ///< campaign-config fold (campaign.h)
  std::string network;            ///< spec name, for diagnostics
  /// Canonical accelerator-geometry identity the shard ran on (new in v4).
  std::string accel = "eyeriss";
  /// Canonical fault-operation identity (FaultOpSpec::to_string; v4).
  std::string fault_op = "toggle";
  /// Canonical sampler identity (campaign.h sampler_id; new in v5).
  std::string sampler = "uniform";
  std::uint64_t trials_total = 0;
  std::uint64_t shard_begin = 0;
  std::uint64_t shard_end = 0;
  std::uint64_t next_trial = 0;
  bool complete = false;
  /// Trials that early-exited on an exact cache match (masked faults);
  /// 0 when incremental replay was disabled. New in format v2.
  std::uint64_t masked_exits = 0;
  /// Trials quarantined by the supervisor: they crashed the worker on
  /// every attempt, were bisected down to, and are NOT folded into `acc`.
  /// Always empty for worker-written shard checkpoints; the supervisor's
  /// merged campaign checkpoint enumerates them. New in format v3.
  std::vector<std::uint64_t> aborted_trials;
  /// Pooled aggregate: for stratified campaigns, the exact fold of every
  /// per-stratum accumulator (so uniform-only consumers still read totals).
  OutcomeAccumulator acc;
  /// Present iff the campaign ran a non-uniform sampler (v5).
  std::optional<StratifiedCheckpoint> stratified;
};

/// Atomically writes `ck` to `path` (tmp file + rename). kIo on failure.
Expected<void> try_save_shard_checkpoint(const std::string& path,
                                         const ShardCheckpoint& ck);

/// Loads and validates a checkpoint. Failure codes: kIo (unreadable),
/// kCorruptData (bad magic/CRC/truncation/inconsistent ranges),
/// kVersionSkew (format this build does not read).
Expected<ShardCheckpoint> try_load_shard_checkpoint(const std::string& path);

// ---- checkpoint shipping (fault/transport.h frame channel) ---------------
//
// Remote workers persist to their own node-local disk; the supervisor's
// durable copy arrives as the raw file image over a transport frame. These
// helpers move validated *bytes* (the exact on-disk file image, magic and
// CRC included — no format bump) so both ends agree on what was shipped.

/// Parses and fully validates a checkpoint file image held in memory.
/// `origin` names the source ("frame from host X", a path) in errors.
/// Same failure codes as try_load_shard_checkpoint, minus kIo.
Expected<ShardCheckpoint> parse_checkpoint_bytes(const std::uint8_t* data,
                                                 std::size_t size,
                                                 const std::string& origin);

/// Reads a checkpoint file whole for shipping, validating that the image
/// parses before putting it on the wire. kIo when unreadable.
Expected<std::vector<std::uint8_t>> read_checkpoint_bytes(
    const std::string& path);

/// Lands a shipped checkpoint image: validates it parses, then writes it
/// atomically (tmp + rename) to `path`. kCheckpointShip on a damaged image,
/// kIo when the write fails.
Expected<void> write_checkpoint_bytes(const std::string& path,
                                      const std::uint8_t* data,
                                      std::size_t size);

/// Throwing wrapper over try_save_shard_checkpoint.
void save_shard_checkpoint(const std::string& path, const ShardCheckpoint& ck);

/// Throwing wrapper over try_load_shard_checkpoint.
ShardCheckpoint load_shard_checkpoint(const std::string& path);

/// Validates that a loaded checkpoint was produced on the given accelerator
/// geometry, fault operation, and sampler (canonical identity strings).
/// Fails with kFingerprintMismatch naming both sides — resuming a shard
/// under a different geometry/op/sampler would silently merge incomparable
/// trials.
Expected<void> validate_checkpoint_axes(const ShardCheckpoint& ck,
                                        const std::string& accel,
                                        const std::string& fault_op,
                                        const std::string& sampler = "uniform");

}  // namespace dnnfi::fault
