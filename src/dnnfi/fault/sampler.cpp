#include "dnnfi/fault/sampler.h"

#include <algorithm>

namespace dnnfi::fault {

using accel::LayerFootprint;

Sampler::Sampler(const dnn::NetworkSpec& spec, numeric::DType dtype)
    : spec_(spec), dtype_(dtype), footprints_(accel::analyze(spec)) {}

std::size_t Sampler::pick_layer(SiteClass cls, Rng& rng,
                                const SampleConstraint& constraint) const {
  // Weight per layer: MACs (datapath) or occupied-words x MACs (buffers).
  std::vector<double> weight(footprints_.size(), 0.0);
  double total = 0;
  for (std::size_t i = 0; i < footprints_.size(); ++i) {
    const LayerFootprint& fp = footprints_[i];
    if (constraint.fixed_block && fp.block != *constraint.fixed_block) continue;
    double w = static_cast<double>(fp.macs);
    if (cls != SiteClass::kDatapathLatch)
      w *= static_cast<double>(accel::occupied_elems(fp, buffer_of(cls)));
    weight[i] = w;
    total += w;
  }
  DNNFI_EXPECTS(total > 0);
  double u = rng.uniform() * total;
  for (std::size_t i = 0; i < footprints_.size(); ++i) {
    u -= weight[i];
    if (u <= 0) return i;
  }
  // Floating-point slack: return the last eligible layer.
  for (std::size_t i = footprints_.size(); i-- > 0;)
    if (weight[i] > 0) return i;
  DNNFI_EXPECTS(false);
  return 0;
}

FaultDescriptor Sampler::sample(SiteClass cls, Rng& rng,
                                const SampleConstraint& constraint) const {
  const std::size_t ordinal = pick_layer(cls, rng, constraint);
  const LayerFootprint& fp = footprints_[ordinal];

  FaultDescriptor f;
  f.cls = cls;
  f.mac_ordinal = ordinal;
  f.layer_index = fp.layer_index;
  f.block = fp.block;
  if (cls != SiteClass::kDatapathLatch && constraint.buffer_storage)
    f.storage = constraint.buffer_storage;
  const int width = f.storage ? numeric::dtype_width(*f.storage)
                              : numeric::dtype_width(dtype_);
  f.bit = constraint.fixed_bit
              ? *constraint.fixed_bit
              : static_cast<int>(rng.below(static_cast<std::uint64_t>(width)));
  DNNFI_EXPECTS(f.bit >= 0 && f.bit < width);
  DNNFI_EXPECTS(constraint.burst >= 1);
  f.burst = constraint.burst;

  switch (cls) {
    case SiteClass::kDatapathLatch: {
      f.latch = constraint.fixed_latch
                    ? *constraint.fixed_latch
                    : accel::kAllDatapathLatches[rng.below(
                          accel::kAllDatapathLatches.size())];
      f.element = rng.below(fp.output_elems);
      f.step = rng.below(fp.steps);
      break;
    }
    case SiteClass::kPsumReg: {
      f.element = rng.below(fp.output_elems);
      f.step = rng.below(fp.steps);
      break;
    }
    case SiteClass::kFilterSram: {
      f.element = rng.below(fp.weight_elems);
      break;
    }
    case SiteClass::kGlobalBuffer: {
      f.element = rng.below(fp.input_elems);
      break;
    }
    case SiteClass::kImgReg: {
      f.element = rng.below(fp.input_elems);
      if (fp.is_conv) {
        // Find the conv spec to honor stride/pad/kernel geometry.
        const dnn::LayerSpec& ls = spec_.layers[fp.layer_index];
        f.out_channel = rng.below(fp.out_shape.c);
        // Output rows whose receptive field covers the faulty input row iy:
        // oy*stride + ky - pad == iy for some ky in [0, k).
        const std::size_t iy = (f.element / fp.in_shape.w) % fp.in_shape.h;
        std::vector<std::size_t> rows;
        for (std::size_t oy = 0; oy < fp.out_shape.h; ++oy) {
          const auto lo = static_cast<std::ptrdiff_t>(oy * ls.stride) -
                          static_cast<std::ptrdiff_t>(ls.pad);
          const auto hi = lo + static_cast<std::ptrdiff_t>(ls.kernel) - 1;
          const auto y = static_cast<std::ptrdiff_t>(iy);
          if (y >= lo && y <= hi) rows.push_back(oy);
        }
        DNNFI_EXPECTS(!rows.empty());
        f.out_row = rows[rng.below(rows.size())];
      } else {
        // FC: the staged input feeds one output neuron per REG residency.
        f.out_channel = rng.below(fp.output_elems);
        f.out_row = 0;
      }
      break;
    }
  }
  return f;
}

}  // namespace dnnfi::fault
