#include "dnnfi/fault/sampler.h"

#include <algorithm>

namespace dnnfi::fault {

using accel::LayerFootprint;

Sampler::Sampler(const dnn::NetworkSpec& spec, numeric::DType dtype,
                 const accel::AcceleratorModel& model)
    : spec_(spec),
      dtype_(dtype),
      model_(&model),
      footprints_(accel::analyze(spec)) {}

std::size_t Sampler::pick_layer(SiteClass cls, Rng& rng,
                                const SampleConstraint& constraint) const {
  // Weight per layer: MACs (datapath) or occupied-words x MACs (buffers).
  std::vector<double> weight(footprints_.size(), 0.0);
  double total = 0;
  for (std::size_t i = 0; i < footprints_.size(); ++i) {
    const LayerFootprint& fp = footprints_[i];
    if (constraint.fixed_block && fp.block != *constraint.fixed_block) continue;
    double w = static_cast<double>(fp.macs);
    if (cls != SiteClass::kDatapathLatch)
      w *= static_cast<double>(model_->occupied_elems(fp, cls));
    weight[i] = w;
    total += w;
  }
  DNNFI_EXPECTS(total > 0);
  double u = rng.uniform() * total;
  for (std::size_t i = 0; i < footprints_.size(); ++i) {
    u -= weight[i];
    if (u <= 0) return i;
  }
  // Floating-point slack: return the last eligible layer.
  for (std::size_t i = footprints_.size(); i-- > 0;)
    if (weight[i] > 0) return i;
  DNNFI_EXPECTS(false);
  return 0;
}

FaultDescriptor Sampler::sample(SiteClass cls, Rng& rng,
                                const SampleConstraint& constraint) const {
  DNNFI_EXPECTS(model_->supports(cls));
  const std::size_t ordinal = pick_layer(cls, rng, constraint);
  const LayerFootprint& fp = footprints_[ordinal];

  FaultDescriptor f;
  f.cls = cls;
  f.mac_ordinal = ordinal;
  f.layer_index = fp.layer_index;
  f.block = fp.block;
  f.geom = model_->config().kind;
  if (cls != SiteClass::kDatapathLatch && constraint.buffer_storage)
    f.storage = constraint.buffer_storage;
  const int width = f.storage ? numeric::dtype_width(*f.storage)
                              : numeric::dtype_width(dtype_);
  f.bit = constraint.fixed_bit
              ? *constraint.fixed_bit
              : static_cast<int>(rng.below(static_cast<std::uint64_t>(width)));
  DNNFI_EXPECTS(f.bit >= 0 && f.bit < width);
  DNNFI_EXPECTS(constraint.burst >= 1);
  f.burst = constraint.burst;
  f.op = constraint.op_spec().at(f.bit);

  const accel::SiteCoords c = model_->sample_site(
      cls, fp, spec_.layers[fp.layer_index], rng, constraint.fixed_latch);
  f.latch = c.latch;
  f.element = c.element;
  f.step = c.step;
  f.out_channel = c.out_channel;
  f.out_row = c.out_row;
  f.pe_row = c.pe_row;
  f.pe_col = c.pe_col;
  return f;
}

}  // namespace dnnfi::fault
