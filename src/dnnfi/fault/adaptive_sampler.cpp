#include "dnnfi/fault/adaptive_sampler.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "dnnfi/common/expects.h"

namespace dnnfi::fault {

namespace {

/// Largest-remainder apportionment of `count` across `score`: floors of the
/// proportional quotas first, then +1 by descending fractional part, ties
/// resolved to the lower index (stable sort). All-zero scores yield an
/// all-zero plan.
std::vector<std::uint64_t> apportion(std::uint64_t count,
                                     const std::vector<double>& score) {
  const std::size_t K = score.size();
  std::vector<std::uint64_t> out(K, 0);
  double total = 0;
  for (const double v : score) total += v;
  if (count == 0 || total <= 0) return out;
  std::vector<double> frac(K, 0.0);
  std::uint64_t assigned = 0;
  for (std::size_t k = 0; k < K; ++k) {
    const double q = static_cast<double>(count) * score[k] / total;
    out[k] = static_cast<std::uint64_t>(q);
    frac[k] = q - static_cast<double>(out[k]);
    assigned += out[k];
  }
  std::vector<std::size_t> order(K);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return frac[a] > frac[b];
  });
  // Only positive-score slots may take remainder trials (a retired
  // component must never be handed work), cycling if the remainder exceeds
  // their number.
  for (std::size_t i = 0; assigned < count; ++i) {
    const std::size_t k = order[i % K];
    if (score[k] <= 0) continue;
    ++out[k];
    ++assigned;
  }
  return out;
}

}  // namespace

std::string StratifiedOptions::to_string() const {
  std::ostringstream os;  // default 6-sig-digit formatting is canonical
  os << "stratified(pilot=" << pilot << ",round=" << round << ",ci="
     << target_ci << ")";
  return os.str();
}

ZeroPool zero_pool(const std::vector<StratumCounts>& s) {
  ZeroPool pool;
  for (const StratumCounts& c : s) {
    if (c.n == 0 || c.hits != 0) continue;
    pool.weight += c.weight;
    pool.n += c.n;
  }
  if (pool.n == 0) return pool;
  // Skew: the pooled variance bound describes the *sampled* mixture
  // Σ (n_h/n_Z)·p_h, while the estimand is the weighted mixture
  // Σ (W_h/W_Z)·p_h. The worst-case ratio between the two is the largest
  // per-stratum over-representation of weight relative to trials; pricing
  // the pool variance at that factor keeps the interval honest while the
  // pilot's equal allocation is still far from proportional, and decays to
  // 1 as the allocator's within-pool ∝W split takes over.
  for (const StratumCounts& c : s) {
    if (c.n == 0 || c.hits != 0) continue;
    const double rep = (c.weight / pool.weight) /
                       (static_cast<double>(c.n) / static_cast<double>(pool.n));
    pool.skew = std::max(pool.skew, rep);
  }
  return pool;
}

double zero_pool_variance(const ZeroPool& pool) {
  if (pool.n == 0) return 0;
  const double nn = static_cast<double>(pool.n);
  // A 0-hit binomial is too skewed for any symmetric p̃(1-p̃)/n price: the
  // normal half-width at the Jeffreys center is ~1.4·W_Z/n_Z while a pooled
  // member can still hide rate mass up to ~3.7·W_Z/n_Z with 2.5%
  // probability — the coverage tests catch exactly that as truth escaping
  // above `hi`. Price the pool by the exact Clopper–Pearson 97.5% upper
  // bound for 0 hits in n_Z trials instead, p_up = 1 - 0.025^(1/n_Z)
  // (→ -ln(0.025)/n_Z ≈ 3.69/n_Z), expressed as the variance whose normal
  // interval has half-width W_Z·skew·p_up so the z·sqrt fold downstream
  // reproduces the one-sided bound exactly.
  const double p_up = 1.0 - std::pow(0.025, 1.0 / nn);
  const double half = pool.weight * pool.skew * p_up;
  return half * half / (1.96 * 1.96);
}

StratifiedEstimate stratified_estimate(const std::vector<StratumCounts>& s) {
  constexpr double z = 1.96;
  constexpr double z2 = z * z;
  StratifiedEstimate out;
  double p = 0;
  double var = 0;
  std::uint64_t hits = 0, n = 0;
  for (const StratumCounts& c : s) {
    hits += c.hits;
    n += c.n;
    if (c.n == 0) {
      // Unpiloted stratum: nothing observed, so the point estimate takes 0
      // from it and the variance prices it at the binomial maximum over one
      // pseudo-trial — maximally honest until the pilot lands.
      var += c.weight * c.weight * 0.25;
      continue;
    }
    if (c.hits == 0) continue;  // priced collectively by the zero pool below
    const double nn = static_cast<double>(c.n);
    const double ph = static_cast<double>(c.hits) / nn;
    p += c.weight * ph;
    // Hit-bearing strata are priced by their Wilson half-width (expressed
    // as the variance whose z·sqrt fold reproduces it): near the plug-in
    // p̂(1-p̂)/n once counts are healthy, but carrying the z²/4n² small-
    // count correction a plain plug-in (or Jeffreys-center) price lacks —
    // without it, 1-to-5-hit strata leak truth above `hi` often enough to
    // fail nominal coverage. This is also exactly the quantity the
    // retirement rule (stratum_converged) thresholds, so a retired
    // stratum's residual price is negligible by construction.
    const double wh = wilson(static_cast<std::size_t>(c.hits),
                             static_cast<std::size_t>(c.n)).ci95;
    var += c.weight * c.weight * wh * wh / (z * z);
  }
  // All-miss strata are collapsed into one pooled pseudo-stratum (header:
  // the zero pool). Pricing each of them individually would force the
  // campaign to certify every stratum's deadness separately — an
  // O(W_h·√H/target) trial tax that dominates rare-event campaigns —
  // while the pooled draw certifies their collective contribution with a
  // single pooled variance term. The pool adds nothing to the point estimate
  // (0 observed hits), only its honest variance.
  var += zero_pool_variance(zero_pool(s));
  p = std::clamp(p, 0.0, 1.0);
  const double half = z * std::sqrt(var);
  out.est.p = p;
  out.est.ci95 = half;
  out.est.lo = std::max(0.0, p - half);
  out.est.hi = std::min(1.0, p + half);
  out.est.hits = static_cast<std::size_t>(hits);
  out.est.n = static_cast<std::size_t>(n);
  if (var > 0) {
    // n_eff solves p~(1-p~)/n_eff = var at the overall Wilson center, so a
    // p̂ of exactly 0/1 still reports a finite effective size.
    const double nn = static_cast<double>(n);
    const double pt =
        n > 0 ? (p + z2 / (2.0 * nn)) / (1.0 + z2 / nn) : 0.5;
    out.n_eff = pt * (1.0 - pt) / var;
  } else {
    out.n_eff = static_cast<double>(n);
  }
  return out;
}

bool stratum_converged(const StratumCounts& s, const StratifiedOptions& opt,
                       std::size_t num_components) {
  if (opt.target_ci <= 0) return false;
  if (s.n < opt.pilot) return false;
  const Estimate w = wilson(static_cast<std::size_t>(s.hits),
                            static_cast<std::size_t>(s.n));
  return s.weight * w.ci95 <=
         opt.target_ci / (2.0 * std::sqrt(static_cast<double>(num_components)));
}

std::vector<std::uint64_t> next_allocation(const std::vector<StratumCounts>& s,
                                           const StratifiedOptions& opt,
                                           std::uint64_t budget_remaining) {
  DNNFI_EXPECTS(opt.pilot > 0 && opt.round > 0);
  if (budget_remaining == 0 || s.empty()) return {};
  const std::size_t H = s.size();
  std::vector<std::uint64_t> plan(H, 0);

  // Phase 1: finish the pilot. Filling strictly in stratum order makes a
  // budget-truncated pilot deterministic too.
  std::uint64_t left = budget_remaining;
  bool piloting = false;
  for (std::size_t h = 0; h < H && left > 0; ++h) {
    if (s[h].n >= opt.pilot) continue;
    const std::uint64_t take =
        std::min<std::uint64_t>(opt.pilot - s[h].n, left);
    plan[h] = take;
    left -= take;
    piloting = true;
  }
  if (piloting) return plan;

  // Phase 2: converged? (target_ci == 0 never converges: budget-bound.)
  if (opt.target_ci > 0 &&
      stratified_estimate(s).est.ci95 <= opt.target_ci)
    return {};

  // Phase 3: marginal-gain scores over the live estimator components. The
  // round goes to components proportionally to -d/dn Var(p̂) = W²·v/n², the
  // rate at which one more trial there shrinks the stratified variance.
  // The stationary point of this rule IS the Neyman allocation (scores
  // equalize exactly when n_h ∝ W_h·σ_h), but finite-sample it correctly
  // deprioritizes components that already carry many trials instead of
  // chasing them. Components are the estimator's (header): each
  // hit-bearing stratum individually — at the Jeffreys center p̃, which
  // unlike the raw p̂ never scores an edge case (all hits) as exactly
  // zero — plus the zero pool as a single component, whose members a
  // raw-p̂ rule would have frozen at p̂ = 0 forever after an unlucky
  // pilot, an optional-stopping artifact that biases the HT estimate low.
  // tests/test_stratified_sampling.cpp locks the unbiasedness down against
  // enumerated ground truth.
  constexpr double z = 1.96;
  const ZeroPool pool = zero_pool(s);
  std::size_t comps = pool.n > 0 ? 1 : 0;
  for (const StratumCounts& c : s)
    if (c.hits > 0) ++comps;
  std::vector<double> score(H, 0.0);  // hit-bearing strata only
  double pool_gain = 0;
  double total = 0;
  for (std::size_t h = 0; h < H; ++h) {
    if (s[h].hits == 0) continue;  // pooled below
    if (stratum_converged(s[h], opt, comps)) continue;
    const double nn = static_cast<double>(s[h].n);
    const double pt = (static_cast<double>(s[h].hits) + 0.5) / (nn + 1.0);
    score[h] = s[h].weight * s[h].weight * pt * (1.0 - pt) / (nn * nn);
    total += score[h];
  }
  if (pool.n > 0) {
    // The pool retires exactly like an individual component: when its
    // weighted interval (z·sqrt of its variance term) is negligible
    // against the per-component share of the target.
    const double pool_var = zero_pool_variance(pool);
    const bool retired =
        opt.target_ci > 0 &&
        z * std::sqrt(pool_var) <=
            opt.target_ci / (2.0 * std::sqrt(static_cast<double>(comps)));
    if (!retired) {
      pool_gain = pool_var / static_cast<double>(pool.n);
      total += pool_gain;
    }
  }
  if (total <= 0) return {};  // every component retired

  // Apportion the round across components; hit-bearing strata take their
  // share directly.
  const std::uint64_t round =
      std::min<std::uint64_t>(opt.round, budget_remaining);
  std::uint64_t pool_take = 0;
  {
    std::vector<double> cscore = score;
    cscore.push_back(pool_gain);  // the pool rides along as one extra slot
    const std::vector<std::uint64_t> cplan = apportion(round, cscore);
    std::copy(cplan.begin(), cplan.begin() + static_cast<std::ptrdiff_t>(H),
              plan.begin());
    pool_take = cplan[H];
  }
  if (pool_take > 0) {
    // Water-fill the pool's allotment toward the ∝W allocation the pooled
    // Wilson bound wants: each member's claim is its *deficit* against the
    // proportional target at the grown pool size. A flat ∝W split would
    // starve tiny-weight members forever (their share rounds to zero every
    // round), and a starved member is exactly what makes ZeroPool::skew —
    // and with it the pool's variance price — grow without bound.
    const double grown = static_cast<double>(pool.n + pool_take);
    std::vector<double> deficit(H, 0.0);
    for (std::size_t h = 0; h < H; ++h) {
      if (s[h].n == 0 || s[h].hits != 0) continue;
      const double want = s[h].weight / pool.weight * grown;
      deficit[h] = std::max(0.0, want - static_cast<double>(s[h].n));
    }
    const std::vector<std::uint64_t> dplan = apportion(pool_take, deficit);
    for (std::size_t h = 0; h < H; ++h) plan[h] += dplan[h];
  }
  return plan;
}

}  // namespace dnnfi::fault
