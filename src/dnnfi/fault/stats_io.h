// Deterministic campaign stats files: equal accumulator state <=> equal
// text, so bit-identity across shardings/processes is a plain `diff`.
// Counters print in decimal and doubles as C99 hex floats (no rounding).
//
// Format (v3; v4 when non-default axes are selected):
//
//   dnnfi-campaign-stats v3
//   fingerprint <u64>
//   accel <geometry>            — v4 only: emitted when the campaign ran a
//   fault_op <op>                 non-default accelerator geometry or fault
//                                 op; default campaigns keep the exact v3
//                                 bytes so pre-refactor stats diff clean
//   trials <n>
//   masked_exits <n>            — how trials were *executed* (early exits);
//                                 the one line that may differ between
//                                 incremental and full replay of one run
//   aborted <n>                 — trials quarantined by the supervisor,
//   aborted_trial <idx>         — one line per quarantined trial, ascending;
//                                 always `aborted 0` for monolithic runs
//   sdc1/sdc5/... counters, then per-block live/masked/distance lines
//
// Shared by the dnnfi_campaign CLI (run/merge --out) and the supervisor's
// merged output; writes are atomic (tmp + rename) so a killed process
// never leaves a torn stats file.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "dnnfi/common/error.h"
#include "dnnfi/fault/accumulator.h"

namespace dnnfi::fault {

/// The campaign's (geometry, fault-op) identity, as canonical strings.
/// Defaults are the paper's configuration: stats stay byte-identical v3.
struct StatsAxes {
  std::string accel = "eyeriss";
  std::string fault_op = "toggle";

  bool is_default() const noexcept {
    return accel == "eyeriss" && fault_op == "toggle";
  }
};

/// Streams the deterministic stats dump.
void write_stats(std::ostream& os, std::uint64_t fingerprint,
                 const OutcomeAccumulator& acc, std::uint64_t masked_exits,
                 const std::vector<std::uint64_t>& aborted_trials = {},
                 const StatsAxes& axes = {});

/// Atomically writes the dump to `path`. kIo on any filesystem failure.
Expected<void> write_stats_file(
    const std::string& path, std::uint64_t fingerprint,
    const OutcomeAccumulator& acc, std::uint64_t masked_exits,
    const std::vector<std::uint64_t>& aborted_trials = {},
    const StatsAxes& axes = {});

}  // namespace dnnfi::fault
