// Deterministic campaign stats files: equal accumulator state <=> equal
// text, so bit-identity across shardings/processes is a plain `diff`.
// Counters print in decimal and doubles as C99 hex floats (no rounding).
//
// Format (v3; v4 when non-default axes are selected; v5 when a non-default
// sampler is selected):
//
//   dnnfi-campaign-stats v3
//   fingerprint <u64>
//   sampler <id>                — v5 only: emitted when the campaign ran a
//                                 non-uniform sampler
//   accel <geometry>            — v4/v5: emitted when the campaign ran a
//   fault_op <op>                 non-default accelerator geometry or fault
//                                 op; default campaigns keep the exact v3
//                                 bytes so pre-refactor stats diff clean
//   trials <n>
//   masked_exits <n>            — how trials were *executed* (early exits);
//                                 the one line that may differ between
//                                 incremental and full replay of one run
//   aborted <n>                 — trials quarantined by the supervisor,
//   aborted_trial <idx>         — one line per quarantined trial, ascending;
//                                 always `aborted 0` for monolithic runs
//   sdc1/sdc5/... counters, then per-block live/masked/distance lines
//   strata <H>                  — v5 stratified section: one line per
//   stratum <id> weight ...       stratum (canonical order, exact hex-float
//                                 weights + per-criterion hit counts), then
//   ht sdc1 p ... n_eff <r>     — the Horvitz–Thompson estimates with
//                                 stratified 95% intervals (DESIGN.md §12)
//
// Shared by the dnnfi_campaign CLI (run/merge --out) and the supervisor's
// merged output; writes are atomic (tmp + rename) so a killed process
// never leaves a torn stats file.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "dnnfi/common/error.h"
#include "dnnfi/fault/accumulator.h"

namespace dnnfi::fault {

/// The campaign's (geometry, fault-op, sampler) identity, as canonical
/// strings. Defaults are the paper's configuration: stats stay
/// byte-identical v3.
struct StatsAxes {
  std::string accel = "eyeriss";
  std::string fault_op = "toggle";
  std::string sampler = "uniform";

  bool is_default() const noexcept {
    return geometry_default() && sampler == "uniform";
  }
  bool geometry_default() const noexcept {
    return accel == "eyeriss" && fault_op == "toggle";
  }
};

/// One stratum's line of the v5 stats section: identity, exact weight, and
/// per-criterion hit counts — the sufficient statistics the HT lines (and
/// any offline re-analysis) are computed from.
struct StratumStats {
  std::string id;
  double weight = 0;
  std::uint64_t trials = 0;
  std::uint64_t sdc1 = 0;
  std::uint64_t sdc5 = 0;
  std::uint64_t sdc10 = 0;
  std::uint64_t sdc20 = 0;
};

/// The stratified section of a v5 stats file (canonical stratum order).
struct StratifiedStatsSection {
  std::vector<StratumStats> strata;
};

/// Streams the deterministic stats dump. `strat` (stratified campaigns
/// only; requires a non-uniform axes.sampler) appends the per-stratum and
/// Horvitz–Thompson lines.
void write_stats(std::ostream& os, std::uint64_t fingerprint,
                 const OutcomeAccumulator& acc, std::uint64_t masked_exits,
                 const std::vector<std::uint64_t>& aborted_trials = {},
                 const StatsAxes& axes = {},
                 const StratifiedStatsSection* strat = nullptr);

/// Atomically writes the dump to `path`. kIo on any filesystem failure.
Expected<void> write_stats_file(
    const std::string& path, std::uint64_t fingerprint,
    const OutcomeAccumulator& acc, std::uint64_t masked_exits,
    const std::vector<std::uint64_t>& aborted_trials = {},
    const StatsAxes& axes = {}, const StratifiedStatsSection* strat = nullptr);

}  // namespace dnnfi::fault
