// Deterministic campaign stats files: equal accumulator state <=> equal
// text, so bit-identity across shardings/processes is a plain `diff`.
// Counters print in decimal and doubles as C99 hex floats (no rounding).
//
// Format (v3):
//
//   dnnfi-campaign-stats v3
//   fingerprint <u64>
//   trials <n>
//   masked_exits <n>            — how trials were *executed* (early exits);
//                                 the one line that may differ between
//                                 incremental and full replay of one run
//   aborted <n>                 — trials quarantined by the supervisor,
//   aborted_trial <idx>         — one line per quarantined trial, ascending;
//                                 always `aborted 0` for monolithic runs
//   sdc1/sdc5/... counters, then per-block live/masked/distance lines
//
// Shared by the dnnfi_campaign CLI (run/merge --out) and the supervisor's
// merged output; writes are atomic (tmp + rename) so a killed process
// never leaves a torn stats file.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "dnnfi/common/error.h"
#include "dnnfi/fault/accumulator.h"

namespace dnnfi::fault {

/// Streams the deterministic stats dump.
void write_stats(std::ostream& os, std::uint64_t fingerprint,
                 const OutcomeAccumulator& acc, std::uint64_t masked_exits,
                 const std::vector<std::uint64_t>& aborted_trials = {});

/// Atomically writes the dump to `path`. kIo on any filesystem failure.
Expected<void> write_stats_file(
    const std::string& path, std::uint64_t fingerprint,
    const OutcomeAccumulator& acc, std::uint64_t masked_exits,
    const std::vector<std::uint64_t>& aborted_trials = {});

}  // namespace dnnfi::fault
