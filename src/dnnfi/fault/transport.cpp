#include "dnnfi/fault/transport.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "dnnfi/common/env.h"
#include "dnnfi/common/serial.h"

namespace dnnfi::fault {

namespace {

Error transport_error(const std::string& what) {
  return Error{Errc::kTransport, what};
}

Error transport_errno(const std::string& what) {
  return transport_error(what + ": " + std::strerror(errno));
}

std::uint32_t load_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

void store_u32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

constexpr std::size_t kFrameHeader = 9;  // u32 len + u8 type + u32 crc

bool known_frame_type(std::uint8_t t) {
  return t == static_cast<std::uint8_t>(FrameType::kInit) ||
         t == static_cast<std::uint8_t>(FrameType::kBeat) ||
         t == static_cast<std::uint8_t>(FrameType::kCheckpoint);
}

/// Leaf component of a path ("a/b/c.ckpt" -> "c.ckpt").
std::string path_leaf(const std::string& path) {
  const auto slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

}  // namespace

// ---- hardened low-level I/O ----------------------------------------------

Expected<void> io_write_full(int fd, const std::uint8_t* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::write(fd, data + off, n - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      return transport_errno("write to fd " + std::to_string(fd) + " failed");
    }
    off += static_cast<std::size_t>(w);
  }
  return {};
}

Expected<long> io_read_chunk(int fd, std::uint8_t* buf, std::size_t n) {
  while (true) {
    const ssize_t r = ::read(fd, buf, n);
    if (r >= 0) return static_cast<long>(r);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return -1L;
    return transport_errno("read from fd " + std::to_string(fd) + " failed");
  }
}

// ---- frame codec ---------------------------------------------------------

std::vector<std::uint8_t> encode_frame(FrameType type,
                                       const std::uint8_t* payload,
                                       std::size_t n) {
  DNNFI_EXPECTS(n <= kMaxFramePayload);
  std::vector<std::uint8_t> out(kFrameHeader + n);
  store_u32(out.data(), static_cast<std::uint32_t>(n));
  out[4] = static_cast<std::uint8_t>(type);
  store_u32(out.data() + 5, crc32(payload, n));
  if (n != 0) std::memcpy(out.data() + kFrameHeader, payload, n);
  return out;
}

void FrameDecoder::feed(const std::uint8_t* data, std::size_t n) {
  // Compact the consumed prefix before growing; keeps the buffer bounded by
  // one frame plus whatever the last read appended.
  if (pos_ != 0) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data, data + n);
}

Expected<std::optional<Frame>> FrameDecoder::next() {
  const std::size_t avail = buf_.size() - pos_;
  if (avail < kFrameHeader) return std::optional<Frame>{};
  const std::uint8_t* h = buf_.data() + pos_;
  const std::uint32_t len = load_u32(h);
  if (len > kMaxFramePayload)
    return transport_error("frame length " + std::to_string(len) +
                           " exceeds limit " + std::to_string(kMaxFramePayload) +
                           " — stream is damaged");
  if (!known_frame_type(h[4]))
    return transport_error("unknown frame type " + std::to_string(h[4]) +
                           " — stream is damaged");
  if (avail < kFrameHeader + len) return std::optional<Frame>{};
  const std::uint32_t stored_crc = load_u32(h + 5);
  const std::uint32_t actual_crc = crc32(h + kFrameHeader, len);
  if (stored_crc != actual_crc)
    return transport_error(
        "frame CRC mismatch (stored " + std::to_string(stored_crc) +
        ", computed " + std::to_string(actual_crc) + ") — stream is damaged");
  Frame f;
  f.type = static_cast<FrameType>(h[4]);
  f.payload.assign(h + kFrameHeader, h + kFrameHeader + len);
  pos_ += kFrameHeader + len;
  return std::optional<Frame>{std::move(f)};
}

Expected<void> send_frame(int fd, FrameType type, const std::uint8_t* payload,
                          std::size_t n) {
  const std::vector<std::uint8_t> wire = encode_frame(type, payload, n);
  return io_write_full(fd, wire.data(), wire.size());
}

Expected<std::optional<std::vector<std::uint8_t>>> read_init_frame(int fd) {
  FrameDecoder dec;
  std::uint8_t chunk[4096];
  while (true) {
    auto parsed = dec.next();
    if (!parsed.ok()) return parsed.error();
    if (parsed.value().has_value()) {
      Frame f = std::move(*parsed.value());
      if (f.type != FrameType::kInit)
        return transport_error("expected init frame, got type " +
                               std::to_string(static_cast<int>(f.type)));
      if (f.payload.empty())
        return transport_error("init frame payload is empty");
      if (f.payload[0] == 0)
        return std::optional<std::vector<std::uint8_t>>{};
      return std::optional<std::vector<std::uint8_t>>{std::vector<std::uint8_t>(
          f.payload.begin() + 1, f.payload.end())};
    }
    auto got = io_read_chunk(fd, chunk, sizeof(chunk));
    if (!got.ok()) return got.error();
    if (got.value() == 0)
      return transport_error("peer closed the channel before the init frame");
    if (got.value() < 0) continue;  // blocking fd: should not happen
    dec.feed(chunk, static_cast<std::size_t>(got.value()));
  }
}

// ---- supervisor-side channel ---------------------------------------------

Expected<void> WorkerChannel::feed(const std::uint8_t* data, std::size_t n,
                                   std::vector<ChannelEvent>& out) {
  if (!framed_) {
    // Legacy dialect: a stream of 8-byte little-endian counters. A beat can
    // arrive split across reads; stash the incomplete tail.
    partial_.insert(partial_.end(), data, data + n);
    std::size_t consumed = 0;
    while (partial_.size() - consumed >= 8) {
      const std::uint8_t* b = partial_.data() + consumed;
      std::uint64_t done = 0;
      for (int i = 0; i < 8; ++i)
        done |= static_cast<std::uint64_t>(b[i]) << (8 * i);
      ChannelEvent ev;
      ev.kind = ChannelEvent::Kind::kBeat;
      ev.done = done;
      out.push_back(std::move(ev));
      consumed += 8;
    }
    partial_.erase(partial_.begin(),
                   partial_.begin() + static_cast<std::ptrdiff_t>(consumed));
    return {};
  }

  decoder_.feed(data, n);
  while (true) {
    auto parsed = decoder_.next();
    if (!parsed.ok()) return parsed.error();
    if (!parsed.value().has_value()) return {};
    Frame f = std::move(*parsed.value());
    switch (f.type) {
      case FrameType::kBeat: {
        if (f.payload.size() != 8)
          return transport_error("beat frame payload is " +
                                 std::to_string(f.payload.size()) +
                                 " bytes, expected 8");
        std::uint64_t done = 0;
        for (std::size_t i = 0; i < 8; ++i)
          done |= static_cast<std::uint64_t>(f.payload[i]) << (8 * i);
        ChannelEvent ev;
        ev.kind = ChannelEvent::Kind::kBeat;
        ev.done = done;
        out.push_back(std::move(ev));
        break;
      }
      case FrameType::kCheckpoint: {
        ChannelEvent ev;
        ev.kind = ChannelEvent::Kind::kCheckpoint;
        ev.bytes = std::move(f.payload);
        out.push_back(std::move(ev));
        break;
      }
      case FrameType::kInit:
        return transport_error(
            "worker sent an init frame (supervisor-only direction)");
    }
  }
}

// ---- LocalTransport ------------------------------------------------------

Expected<WorkerHandle> LocalTransport::spawn(const WorkerSpawn& s) {
  int fds[2];
  if (pipe(fds) != 0) return transport_errno("pipe failed");
  // Heartbeat read ends must not leak into other workers (a surviving
  // duplicate write end would defeat EOF detection and hold fds open).
  fcntl(fds[0], F_SETFD, FD_CLOEXEC);

  std::vector<std::string> args;
  args.push_back(s.binary);
  args.push_back("worker");
  for (const auto& f : s.flags) args.push_back(f);
  args.push_back("--shard");
  args.push_back(std::to_string(s.begin) + ":" + std::to_string(s.end));
  args.push_back("--checkpoint");
  args.push_back(s.checkpoint);
  args.push_back("--heartbeat-fd");
  args.push_back(std::to_string(fds[1]));

  const pid_t pid = fork();
  if (pid < 0) {
    close(fds[0]);
    close(fds[1]);
    return transport_errno("fork failed");
  }
  if (pid == 0) {
    // Child: exec the worker; 127 signals "could not even start".
    close(fds[0]);
    if (!s.stderr_log.empty()) {
      const int lfd =
          open(s.stderr_log.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
      if (lfd >= 0) {
        dup2(lfd, 2);
        if (lfd != 2) close(lfd);
      }
    }
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (auto& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    execv(s.binary.c_str(), argv.data());
    _exit(127);
  }
  close(fds[1]);
  fcntl(fds[0], F_SETFL, O_NONBLOCK);

  WorkerHandle h;
  h.pid = pid;
  h.rx = fds[0];
  return h;
}

// ---- RemoteTransport -----------------------------------------------------

bool is_local_host(const std::string& host) {
  return host == "localhost" || host == "local" || host == "127.0.0.1" ||
         host == "::1";
}

std::string shell_quote(const std::string& s) {
  std::string out = "'";
  for (const char c : s) {
    if (c == '\'')
      out += "'\\''";
    else
      out += c;
  }
  out += "'";
  return out;
}

RemoteTransport::RemoteTransport(std::string host, std::string scratch_dir)
    : host_(std::move(host)),
      scratch_(std::move(scratch_dir)),
      direct_(is_local_host(host_)) {}

Expected<WorkerHandle> RemoteTransport::spawn(const WorkerSpawn& s) {
  // The worker keeps its checkpoint on its own node; only the leaf of the
  // supervisor-side path survives, rehomed into this node's scratch dir.
  const std::string worker_ckpt = scratch_ + "/" + path_leaf(s.checkpoint);

  std::vector<std::string> words;
  words.push_back(s.binary);
  words.push_back("worker");
  for (const auto& f : s.flags) words.push_back(f);
  words.push_back("--shard");
  words.push_back(std::to_string(s.begin) + ":" + std::to_string(s.end));
  words.push_back("--checkpoint");
  words.push_back(worker_ckpt);
  words.push_back("--frame-io");

  // The exec'd argv: the worker command directly for localhost nodes, or an
  // ssh client carrying the shell-quoted command for real remote hosts.
  std::vector<std::string> args;
  if (direct_) {
    args = words;
  } else {
    std::string command;
    for (const auto& w : words) {
      if (!command.empty()) command += ' ';
      command += shell_quote(w);
    }
    if (const auto fake = env_string("DNNFI_FLEET_SSH")) {
      args.push_back(*fake);
    } else {
      args.push_back("ssh");
      args.push_back("-oBatchMode=yes");
    }
    args.push_back(host_);
    args.push_back(std::move(command));
  }

  int to_worker[2];   // supervisor -> worker stdin (init frame)
  int from_worker[2]; // worker stdout -> supervisor (beats + checkpoints)
  if (pipe(to_worker) != 0) return transport_errno("pipe failed");
  if (pipe(from_worker) != 0) {
    close(to_worker[0]);
    close(to_worker[1]);
    return transport_errno("pipe failed");
  }
  // Parent-kept ends must not leak into sibling workers.
  fcntl(to_worker[1], F_SETFD, FD_CLOEXEC);
  fcntl(from_worker[0], F_SETFD, FD_CLOEXEC);

  const pid_t pid = fork();
  if (pid < 0) {
    close(to_worker[0]);
    close(to_worker[1]);
    close(from_worker[0]);
    close(from_worker[1]);
    return transport_errno("fork failed");
  }
  if (pid == 0) {
    // Child: frames ride the standard streams so the same wiring works
    // through an ssh hop.
    dup2(to_worker[0], 0);
    dup2(from_worker[1], 1);
    close(to_worker[0]);
    close(to_worker[1]);
    close(from_worker[0]);
    close(from_worker[1]);
    if (!s.stderr_log.empty()) {
      const int lfd =
          open(s.stderr_log.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
      if (lfd >= 0) {
        dup2(lfd, 2);
        if (lfd != 2) close(lfd);
      }
    }
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (auto& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    execvp(argv[0], argv.data());
    _exit(127);
  }
  close(to_worker[0]);
  close(from_worker[1]);

  // Ship the resume state (or "start fresh") as the one and only downstream
  // frame, then close: the worker reads stdin to EOF-after-frame and the
  // supervisor never writes again. A worker that died instantly surfaces
  // here as EPIPE (SIGPIPE is ignored by the supervisor); reap it so the
  // caller never learns about the pid.
  std::vector<std::uint8_t> init;
  init.push_back(s.resume != nullptr ? 1 : 0);
  if (s.resume != nullptr)
    init.insert(init.end(), s.resume->begin(), s.resume->end());
  auto sent = send_frame(to_worker[1], FrameType::kInit, init.data(),
                         init.size());
  close(to_worker[1]);
  if (!sent.ok()) {
    close(from_worker[0]);
    kill(pid, SIGKILL);
    int status = 0;
    while (waitpid(pid, &status, 0) < 0 && errno == EINTR) {}
    return transport_error("init frame to " + host_ +
                           " failed: " + sent.error().message);
  }
  fcntl(from_worker[0], F_SETFL, O_NONBLOCK);

  WorkerHandle h;
  h.pid = pid;
  h.rx = from_worker[0];
  return h;
}

}  // namespace dnnfi::fault
