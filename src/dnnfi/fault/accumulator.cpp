#include "dnnfi/fault/accumulator.h"

#include <algorithm>
#include <cmath>

namespace dnnfi::fault {

void OutcomeAccumulator::add(const TrialRecord& t) {
  ++n_;
  sdc1_ += t.outcome.sdc1 ? 1U : 0U;
  sdc5_ += t.outcome.sdc5 ? 1U : 0U;
  sdc10_ += t.outcome.sdc10 ? 1U : 0U;
  sdc20_ += t.outcome.sdc20 ? 1U : 0U;
  detected_ += t.detected ? 1U : 0U;
  detected_sdc1_ += (t.detected && t.outcome.sdc1) ? 1U : 0U;
  reached_ += t.output_corruption > 0 ? 1U : 0U;
  z2o_ += t.record.zero_to_one ? 1U : 0U;
  z2o_sdc1_ += (t.record.zero_to_one && t.outcome.sdc1) ? 1U : 0U;
  corruption_.add(t.output_corruption);

  if (!t.block_distance.empty()) {
    if (blocks_.size() < t.block_distance.size())
      blocks_.resize(t.block_distance.size());
    for (std::size_t b = 0; b < t.block_distance.size(); ++b) {
      const double d = t.block_distance[b];
      BlockAgg& agg = blocks_[b];
      if (d > 0 && std::isfinite(d)) {
        ++agg.live;
        agg.dist.add(d);
        agg.log10_dist.add(std::log10(d));
      } else {
        // Covers exact zeros (fully masked before this block) and the
        // inf/NaN distances a wide-dynamic-range corruption can produce.
        ++agg.masked;
      }
    }
  }
}

void OutcomeAccumulator::merge(const OutcomeAccumulator& o) {
  // A zero-trial operand carries no observations — every counter and
  // ExactSum is in its initial state, and only its block-slot *count* (an
  // artifact of pre-sizing per-stratum accumulators) could differ. Merging
  // it must be a strict identity: growing blocks_ here would change the
  // target's serialized bytes without adding a single trial, breaking the
  // "equal aggregate state <=> equal bytes" contract stratified campaigns
  // rely on when folding empty strata.
  if (o.n_ == 0) return;
  n_ += o.n_;
  sdc1_ += o.sdc1_;
  sdc5_ += o.sdc5_;
  sdc10_ += o.sdc10_;
  sdc20_ += o.sdc20_;
  detected_ += o.detected_;
  detected_sdc1_ += o.detected_sdc1_;
  reached_ += o.reached_;
  z2o_ += o.z2o_;
  z2o_sdc1_ += o.z2o_sdc1_;
  corruption_.merge(o.corruption_);
  if (blocks_.size() < o.blocks_.size()) blocks_.resize(o.blocks_.size());
  for (std::size_t b = 0; b < o.blocks_.size(); ++b) {
    blocks_[b].live += o.blocks_[b].live;
    blocks_[b].masked += o.blocks_[b].masked;
    blocks_[b].dist.merge(o.blocks_[b].dist);
    blocks_[b].log10_dist.merge(o.blocks_[b].log10_dist);
  }
}

double OutcomeAccumulator::mean_output_corruption_reached() const {
  if (reached_ == 0) return 0.0;
  // Non-reaching trials contribute exact zeros, so the all-trials sum over
  // the reaching count is the reaching-trials mean.
  return corruption_.value() / static_cast<double>(reached_);
}

double OutcomeAccumulator::block_log10_mean(std::size_t b) const {
  const BlockAgg& agg = blocks_.at(b);
  if (agg.live == 0) return 0.0;
  return agg.log10_dist.value() / static_cast<double>(agg.live);
}

void OutcomeAccumulator::serialize(ByteWriter& w) const {
  w.u64(n_);
  w.u64(sdc1_);
  w.u64(sdc5_);
  w.u64(sdc10_);
  w.u64(sdc20_);
  w.u64(detected_);
  w.u64(detected_sdc1_);
  w.u64(reached_);
  w.u64(z2o_);
  w.u64(z2o_sdc1_);
  corruption_.serialize(w);
  w.u64(blocks_.size());
  for (const BlockAgg& agg : blocks_) {
    w.u64(agg.live);
    w.u64(agg.masked);
    agg.dist.serialize(w);
    agg.log10_dist.serialize(w);
  }
}

OutcomeAccumulator OutcomeAccumulator::deserialize(ByteReader& r) {
  OutcomeAccumulator a;
  a.n_ = r.u64();
  a.sdc1_ = r.u64();
  a.sdc5_ = r.u64();
  a.sdc10_ = r.u64();
  a.sdc20_ = r.u64();
  a.detected_ = r.u64();
  a.detected_sdc1_ = r.u64();
  a.reached_ = r.u64();
  a.z2o_ = r.u64();
  a.z2o_sdc1_ = r.u64();
  a.corruption_ = ExactSum::deserialize(r);
  const std::uint64_t blocks = r.u64();
  if (blocks > 4096)
    throw SerialError("OutcomeAccumulator: implausible block count " +
                      std::to_string(blocks));
  a.blocks_.resize(blocks);
  for (BlockAgg& agg : a.blocks_) {
    agg.live = r.u64();
    agg.masked = r.u64();
    agg.dist = ExactSum::deserialize(r);
    agg.log10_dist = ExactSum::deserialize(r);
  }
  return a;
}

std::vector<std::uint8_t> OutcomeAccumulator::bytes() const {
  ByteWriter w;
  serialize(w);
  return w.take();
}

}  // namespace dnnfi::fault
