// Fault-tolerant campaign supervisor: runs a sharded campaign across
// spawned worker subprocesses and survives their failures.
//
// The supervisor partitions [0, trials) into shards and fork/execs one
// `dnnfi_campaign worker` process per shard (the same binary in a hidden
// mode). Each worker streams heartbeats — an 8-byte little-endian count of
// completed trials per batch — over an inherited pipe, and persists a
// shard checkpoint after every batch. The supervisor:
//
//   launch    — up to `workers` concurrent subprocesses, one shard each;
//   watchdog  — SIGKILLs a worker that misses its heartbeat deadline or
//               exceeds the per-shard wall-clock timeout;
//   retry     — relaunches failed shards with exponential backoff plus
//               deterministic jitter, up to `max_attempts` per range. A
//               relaunched worker resumes from the shard's checkpoint, so
//               a crash loses at most one checkpoint batch;
//   bisect    — a range that exhausts its attempts is split in half and
//               each half re-queued; repeated failures converge on the
//               single poison trial, which is *quarantined* (recorded in
//               aborted_trials, excluded from aggregates) instead of
//               aborting the campaign;
//   degrade   — repeated OOM or launch failures halve worker concurrency
//               (never below one);
//   merge     — completed shard checkpoints are merged exactly (ExactSum
//               associativity) into aggregates byte-identical to a
//               monolithic run, quarantined trials excepted and
//               enumerated.
//
// Failure classification rides the error.h taxonomy over the process
// boundary: a worker exits with exit_code(code), the supervisor classifies
// via errc_from_exit() / WIFSIGNALED and retries only retryable() codes.
// Fatal codes (fingerprint mismatch, corrupt/version-skewed checkpoint,
// usage errors) abort the whole campaign immediately — retrying cannot
// help, and bisecting would quarantine every trial.
//
// Crash-safety of the supervisor itself: all durable state lives in the
// checkpoint directory. On startup the directory is scanned; complete
// shard checkpoints count as coverage, gaps are (re)scheduled with
// deterministic names (`shard_<begin>_<end>.ckpt`), and an incomplete
// checkpoint for a rescheduled range is resumed by its worker. `kill -9`
// of the supervisor or any worker therefore loses at most one checkpoint
// batch of work. See DESIGN.md §9.
//
// Fleet mode (--hosts / --hosts-file) generalizes the worker wire through
// fault/transport.h: workers run on member hosts over framed stdin/stdout
// channels, ship their checkpoints back to the supervisor's directory after
// every batch, and a shard whose host dies is relaunched on a healthy host
// resuming from the last shipped batch (retry-elsewhere). Host health is
// tracked per node with exponential-backoff quarantine, and membership is
// elastic via SIGHUP-triggered hosts-file reloads. See DESIGN.md §13.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "dnnfi/common/error.h"
#include "dnnfi/fault/accumulator.h"

namespace dnnfi::fault {

struct SupervisorOptions {
  /// Path of the dnnfi_campaign binary to exec in worker mode.
  std::string binary;
  /// Campaign-defining flags forwarded verbatim to every worker
  /// (--network, --dtype, --trials, --seed, ...). The supervisor appends
  /// the per-shard --shard/--checkpoint/--heartbeat-fd flags itself.
  std::vector<std::string> worker_flags;

  std::uint64_t trials = 0;       ///< whole-campaign trial count
  std::uint64_t shard_size = 0;   ///< trials per shard; 0 = auto
  int workers = 2;                ///< max concurrent worker processes

  double heartbeat_timeout_s = 60.0;  ///< silence ⇒ SIGKILL
  double shard_timeout_s = 0.0;       ///< wall clock per attempt; 0 = none
  int max_attempts = 3;               ///< per range before bisecting
  double backoff_base_s = 0.25;       ///< first retry delay
  double backoff_cap_s = 10.0;        ///< delay ceiling
  std::size_t max_quarantine = 16;    ///< poison-trial budget; more = fatal

  /// Directory holding shard checkpoints and the merged campaign
  /// checkpoint. One campaign configuration per directory: stale
  /// checkpoints from a different configuration are a fatal
  /// fingerprint mismatch.
  std::string checkpoint_dir;

  /// Seeds the deterministic retry jitter (any value; reuse the campaign
  /// seed for reproducible schedules).
  std::uint64_t jitter_seed = 0;

  // ---- fleet mode (multi-node campaigns; DESIGN.md §13) ------------------

  /// Comma-separated `host:slots[:workdir]` fleet members. Non-empty turns
  /// on fleet mode: every worker runs over a framed RemoteTransport (ssh
  /// for real hosts, direct exec with a private scratch dir for localhost
  /// entries) and ships its checkpoint back after every batch. Empty — and
  /// hosts_file empty — keeps the classic single-host fork/exec path,
  /// bit-for-bit identical to the pre-fleet supervisor.
  std::string hosts;
  /// Hosts file: one `host:slots[:workdir]` per line, `#` comments. Takes
  /// precedence over `hosts`, and is re-read whenever *reload_hosts reads
  /// true (the CLI sets it from SIGHUP) — elastic membership: new hosts
  /// join the running campaign, removed hosts drain.
  std::string hosts_file;
  std::atomic<bool>* reload_hosts = nullptr;
  /// Per-host health: consecutive failed attempts before the host is
  /// quarantined for quarantine_base_s * 2^(prior quarantines), capped.
  int host_fail_limit = 3;
  double quarantine_base_s = 2.0;
  double quarantine_cap_s = 300.0;

  bool verbose = true;  ///< narrate launches/retries/quarantines on stderr

  /// Graceful shutdown: when it reads true, workers receive SIGTERM
  /// (finishing their in-flight batch and checkpointing), and supervise()
  /// returns with `cancelled` set instead of merging.
  const std::atomic<bool>* cancel = nullptr;
};

/// What a supervised campaign produced.
struct SupervisorReport {
  OutcomeAccumulator acc;        ///< merged aggregates (quarantine excluded)
  std::uint64_t fingerprint = 0;
  std::uint64_t masked_exits = 0;
  /// Quarantined trial indices, ascending. Empty on a clean campaign.
  std::vector<std::uint64_t> aborted_trials;
  bool cancelled = false;  ///< stopped by SIGINT/SIGTERM before completion

  // Robustness telemetry.
  int workers_spawned = 0;
  int retries = 0;          ///< failed attempts that were re-queued
  int watchdog_kills = 0;   ///< heartbeat/wall-clock SIGKILLs
  int bisections = 0;
  int degradations = 0;     ///< times concurrency was halved

  // Fleet-mode telemetry (all zero in single-host mode).
  int retries_elsewhere = 0;    ///< failed shards relaunched on another host
  int checkpoints_shipped = 0;  ///< checkpoint frames landed in --ckpt-dir
  int host_quarantines = 0;     ///< times a host was benched for its streak
};

/// Runs the supervised campaign to completion (or cancellation). Returns
/// the merged report, or the first fatal Error. Also writes the merged
/// state as `<checkpoint_dir>/campaign.ckpt` (format v3, aborted_trials
/// enumerated) so a finished campaign is self-describing on disk.
Expected<SupervisorReport> supervise(const SupervisorOptions& opt);

}  // namespace dnnfi::fault
