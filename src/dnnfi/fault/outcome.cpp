#include "dnnfi/fault/outcome.h"

#include <algorithm>
#include <cmath>

namespace dnnfi::fault {

Outcome classify(const dnn::Prediction& golden, const dnn::Prediction& faulty) {
  DNNFI_EXPECTS(golden.scores.size() == faulty.scores.size());
  Outcome o;
  const std::size_t g1 = golden.top1();
  const std::size_t f1 = faulty.top1();
  o.sdc1 = (g1 != f1);

  const auto g5 = golden.topk(5);
  o.sdc5 = std::find(g5.begin(), g5.end(), f1) == g5.end();

  if (golden.has_confidence) {
    const double cg = golden.scores[g1];
    const double cf = faulty.scores[f1];
    const double dev = std::abs(cf - cg);
    // "varies by more than +/-10% of its fault-free execution" — relative
    // to the fault-free confidence.
    o.sdc10 = dev > 0.10 * cg;
    o.sdc20 = dev > 0.20 * cg;
  }
  return o;
}

Estimate estimate(std::size_t hits, std::size_t n) {
  Estimate e;
  e.hits = hits;
  e.n = n;
  if (n == 0) return e;
  e.p = static_cast<double>(hits) / static_cast<double>(n);
  e.ci95 = 1.96 * std::sqrt(e.p * (1.0 - e.p) / static_cast<double>(n));
  return e;
}

}  // namespace dnnfi::fault
