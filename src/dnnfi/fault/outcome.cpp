#include "dnnfi/fault/outcome.h"

#include <algorithm>
#include <cmath>

namespace dnnfi::fault {

Outcome classify(const dnn::Prediction& golden, const dnn::Prediction& faulty) {
  DNNFI_EXPECTS(golden.scores.size() == faulty.scores.size());
  Outcome o;
  const std::size_t g1 = golden.top1();
  const std::size_t f1 = faulty.top1();
  o.sdc1 = (g1 != f1);

  const auto g5 = golden.topk(5);
  o.sdc5 = std::find(g5.begin(), g5.end(), f1) == g5.end();

  if (golden.has_confidence) {
    const double cg = golden.scores[g1];
    const double cf = faulty.scores[f1];
    const double dev = std::abs(cf - cg);
    // "varies by more than +/-10% of its fault-free execution" — relative
    // to the fault-free confidence.
    o.sdc10 = dev > 0.10 * cg;
    o.sdc20 = dev > 0.20 * cg;
  }
  return o;
}

Estimate estimate(std::size_t hits, std::size_t n) {
  Estimate e;
  e.hits = hits;
  e.n = n;
  if (n == 0) return e;  // zero-width by contract (see header)
  e.p = static_cast<double>(hits) / static_cast<double>(n);
  e.ci95 = 1.96 * std::sqrt(e.p * (1.0 - e.p) / static_cast<double>(n));
  e.lo = std::max(0.0, e.p - e.ci95);
  e.hi = std::min(1.0, e.p + e.ci95);
  return e;
}

Estimate wilson(std::size_t hits, std::size_t n) {
  Estimate e;
  e.hits = hits;
  e.n = n;
  if (n == 0) return e;  // zero-width by contract (see header)
  constexpr double z = 1.96;
  constexpr double z2 = z * z;
  const double nn = static_cast<double>(n);
  const double phat = static_cast<double>(hits) / nn;
  const double denom = 1.0 + z2 / nn;
  const double center = (phat + z2 / (2.0 * nn)) / denom;
  const double half =
      z * std::sqrt(phat * (1.0 - phat) / nn + z2 / (4.0 * nn * nn)) / denom;
  e.p = phat;
  e.lo = std::max(0.0, center - half);
  e.hi = std::min(1.0, center + half);
  e.ci95 = (e.hi - e.lo) / 2.0;
  return e;
}

}  // namespace dnnfi::fault
