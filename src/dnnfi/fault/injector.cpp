#include "dnnfi/fault/injector.h"

namespace dnnfi::fault {

namespace {

dnn::MacSite to_mac_site(accel::DatapathLatch l) {
  switch (l) {
    case accel::DatapathLatch::kOperandAct:    return dnn::MacSite::kOperandAct;
    case accel::DatapathLatch::kOperandWeight: return dnn::MacSite::kOperandWeight;
    case accel::DatapathLatch::kProduct:       return dnn::MacSite::kProduct;
    case accel::DatapathLatch::kAccumulator:   return dnn::MacSite::kAccumulator;
  }
  DNNFI_EXPECTS(false);
  return dnn::MacSite::kAccumulator;
}

}  // namespace

dnn::AppliedFault lower(const FaultDescriptor& f,
                        const std::vector<std::size_t>& mac_layers) {
  DNNFI_EXPECTS(f.mac_ordinal < mac_layers.size());
  dnn::AppliedFault a;
  a.layer = mac_layers[f.mac_ordinal];
  switch (f.cls) {
    case SiteClass::kDatapathLatch: {
      dnn::MacFault m;
      m.out_index = f.element;
      m.step = f.step;
      m.site = to_mac_site(f.latch);
      m.bit = f.bit;
      m.burst = f.burst;
      a.faults.mac = m;
      break;
    }
    case SiteClass::kPsumReg: {
      // A PSum-REG upset is consumed by the next accumulation of its output
      // element: identical semantics to an accumulator-latch flip.
      dnn::MacFault m;
      m.out_index = f.element;
      m.step = f.step;
      m.site = dnn::MacSite::kAccumulator;
      m.bit = f.bit;
      m.burst = f.burst;
      a.faults.mac = m;
      break;
    }
    case SiteClass::kFilterSram: {
      dnn::WeightFault w;
      w.weight_index = f.element;
      w.bit = f.bit;
      w.burst = f.burst;
      w.storage = f.storage;
      a.faults.weight = w;
      break;
    }
    case SiteClass::kImgReg: {
      dnn::ScopedInputFault s;
      s.input_index = f.element;
      s.out_channel = f.out_channel;
      s.out_row = f.out_row;
      s.bit = f.bit;
      s.burst = f.burst;
      s.storage = f.storage;
      a.faults.scoped_input = s;
      break;
    }
    case SiteClass::kGlobalBuffer: {
      a.flip_layer_input = true;
      a.input_index = f.element;
      a.input_bit = f.bit;
      a.input_burst = f.burst;
      a.input_storage = f.storage;
      break;
    }
  }
  return a;
}

}  // namespace dnnfi::fault
