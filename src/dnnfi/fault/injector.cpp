#include "dnnfi/fault/injector.h"

namespace dnnfi::fault {

dnn::AppliedFault lower(const FaultDescriptor& f,
                        const std::vector<std::size_t>& mac_layers,
                        const accel::AcceleratorModel& model) {
  DNNFI_EXPECTS(f.mac_ordinal < mac_layers.size());
  // A descriptor sampled on one geometry must lower through the same
  // geometry: the site coordinates only mean something there.
  DNNFI_EXPECTS(f.geom == model.config().kind);
  accel::SiteCoords c;
  c.cls = f.cls;
  c.latch = f.latch;
  c.element = f.element;
  c.step = f.step;
  c.out_channel = f.out_channel;
  c.out_row = f.out_row;
  c.pe_row = f.pe_row;
  c.pe_col = f.pe_col;
  dnn::AppliedFault a;
  a.layer = mac_layers[f.mac_ordinal];
  model.lower_site(c, f.effective_op(), f.storage, a);
  return a;
}

}  // namespace dnnfi::fault
