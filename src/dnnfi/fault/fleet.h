// Fleet membership and health for the distributed campaign supervisor.
//
// A fleet is a set of worker hosts, each contributing a fixed number of
// slots (concurrent workers). The supervisor asks the fleet for a slot
// before every launch (`acquire`, optionally avoiding the host a shard just
// died on — retry-elsewhere) and returns it on reap (`release`, carrying
// whether the attempt succeeded).
//
// Health is tracked per host as a consecutive-failure streak. When a host's
// streak reaches the configured limit, the host is quarantined: no new work
// for base * 2^(quarantines so far) seconds, capped. Quarantine is graceful
// degradation, not removal — the host rejoins automatically when its clock
// expires, and a success resets its streak. Only a fleet with zero usable
// hosts and work still pending is fatal (Errc::kNoHosts, decided by the
// supervisor, which can see the pending-work side).
//
// Membership is elastic: `reload` diffs a freshly parsed host list against
// the current one by host name. New hosts join immediately; hosts that
// disappeared start draining (no new work; running workers finish or die on
// their own). The supervisor triggers reload from SIGHUP by re-reading
// --hosts-file. See DESIGN.md §13.
#pragma once

#include <cstdint>
#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dnnfi/common/error.h"
#include "dnnfi/fault/transport.h"

namespace dnnfi::fault {

/// One `host:slots[:workdir]` entry of --hosts / --hosts-file.
struct HostSpec {
  std::string host;     ///< "localhost" (direct exec) or an ssh host name
  int slots = 1;        ///< concurrent workers this host runs
  std::string workdir;  ///< node-local scratch; "" = fleet default

  bool is_local() const { return is_local_host(host); }
};

/// Parses a comma-separated `host:slots[:workdir]` list (the --hosts flag).
/// kInvalidArgument on malformed entries (empty host, slots < 1, ...).
Expected<std::vector<HostSpec>> parse_hosts(const std::string& csv);

/// Parses a hosts file: one `host:slots[:workdir]` per line, blank lines
/// and `#` comments ignored. kIo when unreadable, kInvalidArgument on a
/// malformed line (the error names the line number).
Expected<std::vector<HostSpec>> parse_hosts_file(const std::string& path);

struct FleetConfig {
  /// Consecutive failures on one host before it is quarantined.
  int fail_limit = 3;
  /// Quarantine duration: base * 2^(prior quarantines), capped.
  double quarantine_base_s = 2.0;
  double quarantine_cap_s = 300.0;
  /// Scratch root for localhost nodes without an explicit workdir; node i
  /// gets `<scratch_root>/node<i>`. Remote hosts default to a /tmp path.
  std::string scratch_root;
};

/// Result of releasing a slot after a failed attempt.
struct ReleaseOutcome {
  bool quarantined = false;   ///< this failure tripped the quarantine
  double quarantine_s = 0.0;  ///< how long the host is out
};

class Fleet {
 public:
  using Clock = std::chrono::steady_clock;
  using TimePoint = Clock::time_point;

  /// One member host and its health state.
  struct Node {
    std::string id;        ///< "host#i" — unique even with duplicate names
    HostSpec spec;
    std::unique_ptr<WorkerTransport> transport;
    int busy = 0;               ///< slots currently running workers
    int fail_streak = 0;        ///< consecutive failed attempts
    int quarantine_count = 0;   ///< times quarantined (drives backoff)
    TimePoint quarantined_until{};  ///< no new work before this instant
    bool draining = false;      ///< removed from membership; finish and go

    bool quarantined(TimePoint now) const {
      return quarantined_until > now;
    }
    /// Eligible for new work right now.
    bool usable(TimePoint now) const {
      return !draining && !quarantined(now) && busy < spec.slots;
    }
  };

  Fleet(std::vector<HostSpec> specs, FleetConfig cfg);

  /// Picks a usable node, preferring any whose id differs from `avoid`
  /// (retry-elsewhere; pass "" for no preference). Among candidates the
  /// least-busy wins, ties broken by node order — deterministic given the
  /// same sequence of calls. nullptr when every node is busy, quarantined,
  /// or draining. The returned node has busy incremented; the caller MUST
  /// release() it exactly once.
  Node* acquire(const std::string& avoid);

  /// Returns a slot. On failure, advances the node's streak and possibly
  /// trips quarantine (reported back for logging); on success, resets it.
  ReleaseOutcome release(Node& node, bool success);

  /// Replaces membership with `specs` (diffed by host name, positionally
  /// within a name): surviving nodes keep their health state, new hosts
  /// join fresh, vanished hosts drain. Returns how many joined/drained.
  std::pair<int, int> reload(const std::vector<HostSpec>& specs);

  /// Slots across non-draining hosts (quarantined hosts still count —
  /// quarantine is temporary and shard sizing should not churn with it).
  int total_slots() const;

  /// True while at least one non-draining host exists, quarantined or not.
  /// False means the fleet can never run anything again (kNoHosts).
  bool any_member() const;

  /// True when some node is usable right now or will become usable by
  /// itself (quarantine expiry). False when all capacity is busy/draining.
  bool any_idle_capacity(TimePoint now) const;

  /// Earliest quarantine expiry among nodes that are idle-but-quarantined;
  /// nullopt when no wakeup is needed on the fleet's account.
  std::optional<TimePoint> earliest_release(TimePoint now) const;

  std::vector<std::unique_ptr<Node>>& nodes() { return nodes_; }

 private:
  std::unique_ptr<Node> make_node(const HostSpec& spec, int index);

  FleetConfig cfg_;
  std::vector<std::unique_ptr<Node>> nodes_;
  int next_index_ = 0;  ///< monotonically increasing node number
};

}  // namespace dnnfi::fault
