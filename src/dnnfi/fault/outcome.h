// Outcome classification (the paper's four SDC criteria, §4.6) and
// campaign-level statistics with 95% confidence intervals.
#pragma once

#include <cstddef>

#include "dnnfi/dnn/network.h"

namespace dnnfi::fault {

/// Classification of one faulty inference against its golden run.
struct Outcome {
  bool sdc1 = false;   ///< top-1 class changed
  bool sdc5 = false;   ///< faulty top-1 not in golden top-5
  bool sdc10 = false;  ///< top confidence deviates by more than +/-10%
  bool sdc20 = false;  ///< top confidence deviates by more than +/-20%

  /// Benign under the headline criterion (the paper analyzes SDC-1).
  bool benign() const noexcept { return !sdc1; }
};

/// Compares predictions. Confidence criteria are relative to the golden
/// top-1 score and are reported only when the network emits confidences
/// (NiN does not — its SDC-10%/20% stay false, matching the paper).
Outcome classify(const dnn::Prediction& golden, const dnn::Prediction& faulty);

/// Binomial estimate with a 95% confidence interval. An empty sample
/// (n == 0) is a legal input everywhere and yields the zero-width estimate
/// {p=0, ci95=0, lo=0, hi=0} — sharded campaigns routinely aggregate empty
/// strata, so this is a contract, not an accident.
struct Estimate {
  double p = 0;      ///< point estimate (hits / n; 0 when n == 0)
  double ci95 = 0;   ///< half-width of the 95% interval
  double lo = 0;     ///< lower 95% bound, clamped to [0, 1]
  double hi = 0;     ///< upper 95% bound, clamped to [0, 1]
  std::size_t hits = 0;
  std::size_t n = 0;
};

/// Normal-approximation (Wald) interval — matches the paper's error bars.
Estimate estimate(std::size_t hits, std::size_t n);

/// Wilson score interval: well-behaved at p near 0/1 and tiny n, where the
/// Wald interval collapses to zero width. Streaming aggregates report this.
/// `p` stays the MLE hits/n; `lo`/`hi` are the Wilson bounds and `ci95`
/// their half-width.
Estimate wilson(std::size_t hits, std::size_t n);

}  // namespace dnnfi::fault
