// Adaptive stratified-sampling controller and Horvitz–Thompson estimator
// (DESIGN.md §12).
//
// Estimator. With strata weights W_h (exact uniform-draw probabilities,
// strata.h) and per-stratum binomial observations (hits_h, n_h), the
// population rate estimate is the stratified Horvitz–Thompson form
//
//     p̂ = Σ_h W_h · hits_h / n_h
//
// which is unbiased for any allocation {n_h > 0}: each stratum's mean is
// estimated on its own substream and reweighted by its true probability.
// The variance is Var(p̂) = Σ_h W_h² · σ_h² / n_h; the reported 95% interval
// is the normal fold z·sqrt(Var) with hit-bearing strata priced by their
// Wilson half-width — essentially the plug-in p̂(1-p̂)/n once counts are
// healthy, but carrying the small-count correction that keeps 1-to-5-hit
// strata from leaking truth above `hi` (nominal coverage is locked down by
// tests/test_estimator_stats.cpp).
//
// Zero pool. All-miss strata are NOT priced individually: doing so makes
// the campaign certify every stratum's deadness separately, and that tax —
// O(W_h·√H / target) trials per dead stratum — dominates rare-event
// campaigns where most strata are inert (the paper's Fig 4 masking
// argument: low-order mantissa bits almost never matter). Instead every
// piloted zero-hit stratum is collapsed into one pooled pseudo-stratum
// whose collective contribution W_Z·p̄_Z is priced by a single exact
// binomial (Clopper–Pearson) upper bound on the pooled draw (0 hits in
// n_Z = Σ n_h trials), scaled by the allocation-skew factor
// (ZeroPool::skew) while the
// within-pool allocation is still far from ∝W. A stratum leaves the pool
// the moment it records a hit; membership is a pure function of the
// accumulated counts, so nothing extra needs checkpointing.
// tests/test_estimator_stats.cpp drives the coverage consequences
// (≥93/100 nominal-95% intervals must cover).
//
// Controller. Allocation is round-based and a *pure function* of the
// accumulated per-stratum state:
//   1. pilot   — bring every stratum to `pilot` trials;
//   2. adapt   — apportion the next `round`-sized batch across the
//                estimator components (hit-bearing strata + the zero
//                pool) proportionally to the marginal-gain score
//                W²·p̃(1-p̃)/n² — the rate at which one more trial there
//                shrinks the stratified variance, whose stationary point
//                is exactly the Neyman allocation n_h ∝ W_h·σ_h
//                (largest-remainder apportionment, ties to the lower
//                index). The pool's allotment is then water-filled across
//                its members toward the ∝W split its pooled bound
//                assumes;
//   3. stop    — a component retires when its weighted CI contribution is
//                negligible; the campaign stops when the stratified CI
//                half-width reaches target_ci or the trial budget is spent.
// Purity is what makes the stratified campaign deterministic and resumable:
// replaying the same state always yields the same next allocation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dnnfi/fault/outcome.h"

namespace dnnfi::fault {

/// Tuning knobs of the stratified controller. The canonical string (e.g.
/// "stratified(pilot=4,round=256,ci=0.005)") is the sampler's identity in
/// fingerprints, checkpoints, and stats files.
struct StratifiedOptions {
  /// Trials every stratum receives before any adaptation.
  std::size_t pilot = 4;
  /// Upper bound on trials allocated per adaptive round.
  std::size_t round = 256;
  /// Stop when the stratified SDC-1 CI half-width falls to this (the trial
  /// budget still caps the run). 0 disables the convergence stop: the
  /// campaign runs its full budget, which is what the bit-identity legs
  /// use to pin the trial count.
  double target_ci = 0.005;

  std::string to_string() const;
};

/// One stratum's sufficient statistics as the controller and estimator see
/// them. `hits` counts the allocation/stopping metric — SDC-1, the paper's
/// headline criterion.
struct StratumCounts {
  double weight = 0;
  std::uint64_t hits = 0;
  std::uint64_t n = 0;
};

/// Stratified population estimate. `est.p` is the HT point estimate,
/// `est.lo/hi/ci95` the stratified interval, `est.hits/n` the raw totals.
struct StratifiedEstimate {
  Estimate est;
  /// Effective sample size: the uniform-campaign n whose binomial variance
  /// at p̂ equals this stratified variance (how many uniform trials the
  /// stratification is worth). Equal to Σ n_h when the variance is zero.
  double n_eff = 0;
};

/// The collapsed zero pool: every piloted stratum with zero observed hits,
/// summarized as one pseudo-stratum. `weight`/`n` are the members' totals;
/// `skew` is the worst-case over-representation of weight relative to
/// trials among members (1 when the within-pool allocation is exactly
/// proportional to weight), which scales the pooled variance so the bound
/// stays honest before the allocator's ∝W split has converged.
struct ZeroPool {
  double weight = 0;
  std::uint64_t n = 0;
  double skew = 1.0;
};

/// Summarizes the zero-hit strata of `s` into the pooled pseudo-stratum.
ZeroPool zero_pool(const std::vector<StratumCounts>& s);

/// The pool's contribution to the stratified variance: the variance whose
/// normal 95% interval has half-width W_Z·skew·p_up, where p_up is the
/// exact Clopper–Pearson 97.5% upper bound for 0 hits in n_Z trials
/// (≈ 3.69/n_Z) — a 0-hit binomial is too skewed for a symmetric
/// p̃(1-p̃)/n price to cover. Zero for an empty pool.
double zero_pool_variance(const ZeroPool& pool);

/// Computes the HT estimate and stratified 95% interval (header math).
StratifiedEstimate stratified_estimate(const std::vector<StratumCounts>& s);

/// True when a hit-bearing stratum's weighted CI contribution is negligible
/// against the target: n ≥ pilot and weight · wilson_half(hits, n) ≤
/// target_ci / (2·sqrt(num_components)), where num_components counts the
/// estimator's components (hit-bearing strata plus the zero pool). The
/// sqrt scaling is what makes a stall impossible: variances add across
/// components, so if every one of C components meets this bound the
/// overall half-width is at most target_ci / 2 and the campaign-level
/// convergence stop has already fired. Always false when target_ci is 0
/// (budget-bound campaigns never retire anything).
bool stratum_converged(const StratumCounts& s, const StratifiedOptions& opt,
                       std::size_t num_components);

/// The controller: next round's per-stratum trial counts, given the
/// accumulated state and the remaining trial budget. An empty vector means
/// the campaign is done (CI target reached, every live stratum retired, or
/// budget exhausted). Deterministic and pure — equal inputs, equal plan —
/// which is what lets a resumed campaign recompute its schedule instead of
/// persisting it beyond the in-flight round.
std::vector<std::uint64_t> next_allocation(const std::vector<StratumCounts>& s,
                                           const StratifiedOptions& opt,
                                           std::uint64_t budget_remaining);

}  // namespace dnnfi::fault
