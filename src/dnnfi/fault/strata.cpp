#include "dnnfi/fault/strata.h"

#include <algorithm>

namespace dnnfi::fault {

namespace {

/// (fraction-field bits, scale-field bits) of the stored word: mantissa and
/// exponent for the IEEE formats, fraction and integer field for the
/// fixed-point ones. Width = frac + scale + 1 (sign) always.
struct FieldSplit {
  int frac = 0;
  int scale = 0;
};

FieldSplit field_split(numeric::DType t) {
  using numeric::DType;
  switch (t) {
    case DType::kDouble:  return {52, 11};
    case DType::kFloat:   return {23, 8};
    case DType::kFloat16: return {10, 5};
    case DType::kFx32r26: return {26, 5};
    case DType::kFx32r10: return {10, 21};
    case DType::kFx16r10: return {10, 5};
  }
  DNNFI_EXPECTS(false);
  return {};
}

std::size_t class_slot(BitClass c) {
  for (std::size_t i = 0; i < kAllBitClasses.size(); ++i)
    if (kAllBitClasses[i] == c) return i;
  DNNFI_EXPECTS(false);
  return 0;
}

std::size_t latch_slot(accel::DatapathLatch l) {
  for (std::size_t i = 0; i < accel::kAllDatapathLatches.size(); ++i)
    if (accel::kAllDatapathLatches[i] == l) return i;
  DNNFI_EXPECTS(false);
  return 0;
}

}  // namespace

std::array<BitRange, 5> bit_class_layout(numeric::DType dtype) {
  const auto [frac, scale] = field_split(dtype);
  const int width = numeric::dtype_width(dtype);
  DNNFI_EXPECTS(frac + scale + 1 == width);
  std::array<BitRange, 5> out{};
  // Fields split low-half = floor(n/2), high-half = the rest, so the high
  // half (the statistically hot one) is never smaller than the low half.
  const int frac_lo = frac / 2;
  const int scale_lo = scale / 2;
  out[class_slot(BitClass::kMantLow)] = {0, frac_lo};
  out[class_slot(BitClass::kMantHigh)] = {frac_lo, frac - frac_lo};
  out[class_slot(BitClass::kExpLow)] = {frac, scale_lo};
  out[class_slot(BitClass::kExpHigh)] = {frac + scale_lo, scale - scale_lo};
  out[class_slot(BitClass::kSign)] = {width - 1, 1};
  return out;
}

BitClass bit_class_of(numeric::DType dtype, int bit) {
  DNNFI_EXPECTS(bit >= 0 && bit < numeric::dtype_width(dtype));
  const auto layout = bit_class_layout(dtype);
  for (std::size_t i = 0; i < layout.size(); ++i)
    if (bit >= layout[i].lo && bit < layout[i].lo + layout[i].count)
      return kAllBitClasses[i];
  DNNFI_EXPECTS(false);
  return BitClass::kSign;
}

std::string Stratum::id() const {
  std::string s = "b";
  s += std::to_string(block);
  s += '/';
  s += bit_class_name(bits);
  if (latch) {
    s += '/';
    s += accel::datapath_latch_name(*latch);
  }
  return s;
}

StratumSet::StratumSet(const Sampler& sampler, SiteClass site,
                       const SampleConstraint& base)
    : sampler_(&sampler), site_(site), base_(base) {
  // Stratified campaigns stratify the *whole* population: a base constraint
  // that already pins an axis would make the weights wrong.
  DNNFI_EXPECTS(!base_.fixed_bit && !base_.fixed_block && !base_.fixed_latch);
  DNNFI_EXPECTS(sampler.model().supports(site));

  word_dtype_ = (site != SiteClass::kDatapathLatch && base_.buffer_storage)
                    ? *base_.buffer_storage
                    : sampler.dtype();
  width_ = numeric::dtype_width(word_dtype_);
  layout_ = bit_class_layout(word_dtype_);

  // Per-block share of the layer-weight mass the base sampler draws from:
  // MACs for datapath latches, occupied-words x MACs for buffers. Blocks
  // whose mass is zero (nothing of this site class lives there) are not
  // part of the population and get no stratum.
  const auto& fps = sampler.footprints();
  int max_block = 0;
  for (const auto& fp : fps) max_block = std::max(max_block, fp.block);
  std::vector<double> block_mass(static_cast<std::size_t>(max_block) + 1, 0.0);
  double grand = 0;
  for (const auto& fp : fps) {
    double w = static_cast<double>(fp.macs);
    if (site != SiteClass::kDatapathLatch)
      w *= static_cast<double>(sampler.model().occupied_elems(fp, site));
    block_mass[static_cast<std::size_t>(fp.block)] += w;
    grand += w;
  }
  DNNFI_EXPECTS(grand > 0);

  num_latches_ =
      site == SiteClass::kDatapathLatch ? accel::kAllDatapathLatches.size() : 1;
  const double latch_p = 1.0 / static_cast<double>(num_latches_);

  block_slot_.assign(block_mass.size(), -1);
  int next_slot = 0;
  for (std::size_t b = 1; b < block_mass.size(); ++b) {
    if (block_mass[b] <= 0) continue;
    block_slot_[b] = next_slot++;
    const double block_p = block_mass[b] / grand;
    for (std::size_t ci = 0; ci < kAllBitClasses.size(); ++ci) {
      if (layout_[ci].count == 0) continue;
      const double bit_p =
          static_cast<double>(layout_[ci].count) / static_cast<double>(width_);
      for (std::size_t li = 0; li < num_latches_; ++li) {
        Stratum s;
        s.block = static_cast<int>(b);
        s.bits = kAllBitClasses[ci];
        if (site == SiteClass::kDatapathLatch)
          s.latch = accel::kAllDatapathLatches[li];
        strata_.push_back(s);
        weights_.push_back(block_p * bit_p * latch_p);
      }
    }
  }
  DNNFI_EXPECTS(!strata_.empty());
}

std::size_t StratumSet::index_of(const FaultDescriptor& fd) const {
  DNNFI_EXPECTS(fd.cls == site_);
  DNNFI_EXPECTS(fd.block >= 0 &&
                static_cast<std::size_t>(fd.block) < block_slot_.size());
  const int bslot = block_slot_[static_cast<std::size_t>(fd.block)];
  DNNFI_EXPECTS(bslot >= 0);
  const std::size_t ci = class_slot(bit_class_of(word_dtype_, fd.bit));
  // Strata are emitted per block in (class x latch) order, but only for
  // non-empty classes; recover the dense class ordinal by counting.
  std::size_t dense_ci = 0;
  for (std::size_t i = 0; i < ci; ++i)
    if (layout_[i].count > 0) ++dense_ci;
  DNNFI_EXPECTS(layout_[ci].count > 0);
  std::size_t classes = 0;
  for (const BitRange& r : layout_)
    if (r.count > 0) ++classes;
  const std::size_t li =
      site_ == SiteClass::kDatapathLatch ? latch_slot(fd.latch) : 0;
  return (static_cast<std::size_t>(bslot) * classes + dense_ci) * num_latches_ +
         li;
}

FaultDescriptor StratumSet::sample(std::size_t h, Rng& rng) const {
  const Stratum& s = strata_.at(h);
  SampleConstraint c = base_;
  c.fixed_block = s.block;
  c.fixed_latch = s.latch;
  const BitRange& r = layout_[class_slot(s.bits)];
  c.fixed_bit =
      r.lo + static_cast<int>(rng.below(static_cast<std::uint64_t>(r.count)));
  return sampler_->sample(site_, rng, c);
}

}  // namespace dnnfi::fault
