#include "dnnfi/fault/supervisor.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <filesystem>
#include <iostream>
#include <optional>

#include "dnnfi/common/rng.h"
#include "dnnfi/fault/checkpoint.h"

namespace dnnfi::fault {

namespace {

using Clock = std::chrono::steady_clock;
using TimePoint = Clock::time_point;

std::string shard_path(const std::string& dir, std::uint64_t begin,
                       std::uint64_t end) {
  return dir + "/shard_" + std::to_string(begin) + "_" + std::to_string(end) +
         ".ckpt";
}

std::string range_str(std::uint64_t begin, std::uint64_t end) {
  return "[" + std::to_string(begin) + ", " + std::to_string(end) + ")";
}

/// A trial range queued for execution (fresh, retrying, or bisected).
struct Task {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  int attempts = 0;       ///< failed attempts so far
  TimePoint ready{};      ///< earliest launch time (backoff)
};

/// A live worker subprocess and its heartbeat channel.
struct Worker {
  pid_t pid = -1;
  int fd = -1;  ///< nonblocking read end of the heartbeat pipe; -1 once EOF
  Task task;
  TimePoint started{};
  TimePoint last_beat{};
  std::uint64_t trials_done = 0;
  bool watchdog_killed = false;
  std::vector<std::uint8_t> partial;  ///< bytes of an incomplete beat frame
};

/// A shard whose checkpoint on disk is complete.
struct Completed {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  std::string path;
};

class Supervisor {
 public:
  explicit Supervisor(const SupervisorOptions& opt) : opt_(opt) {}

  Expected<SupervisorReport> run() {
    if (opt_.trials == 0)
      return fail(Errc::kInvalidArgument, "supervise: trials must be > 0");
    if (opt_.binary.empty())
      return fail(Errc::kInvalidArgument, "supervise: worker binary not set");
    if (opt_.workers < 1)
      return fail(Errc::kInvalidArgument, "supervise: workers must be >= 1");
    if (opt_.checkpoint_dir.empty())
      return fail(Errc::kInvalidArgument,
                  "supervise: checkpoint directory not set");
    std::error_code ec;
    std::filesystem::create_directories(opt_.checkpoint_dir, ec);
    if (ec)
      return fail(Errc::kIo, "supervise: cannot create " +
                                 opt_.checkpoint_dir + ": " + ec.message());
    target_workers_ = opt_.workers;

    if (auto scanned = scan_checkpoint_dir(); !scanned.ok())
      return scanned.error();
    select_cover();
    schedule_gaps();

    while (true) {
      if (opt_.cancel && opt_.cancel->load(std::memory_order_relaxed))
        return shutdown_cancelled();
      promote_waiting();
      if (auto launched = launch_ready(); !launched.ok()) {
        kill_all(SIGKILL);
        reap_blocking();
        return launched.error();
      }
      if (active_.empty() && waiting_.empty() && ready_.empty()) break;
      poll_heartbeats();
      if (auto reaped = reap(); !reaped.ok()) {
        kill_all(SIGKILL);
        reap_blocking();
        return reaped.error();
      }
      enforce_deadlines();
    }
    return merge();
  }

 private:
  // ---- scheduling -------------------------------------------------------

  /// Loads every checkpoint already in the directory: complete shards
  /// count as coverage (supervisor crash recovery), incomplete ones are
  /// resumed implicitly when their range is rescheduled under the same
  /// deterministic file name. A corrupt or version-skewed file is fatal —
  /// atomic writes mean it cannot be a torn write, so something real is
  /// wrong with the directory.
  Expected<void> scan_checkpoint_dir() {
    std::optional<std::uint64_t> fingerprint;
    for (const auto& entry :
         std::filesystem::directory_iterator(opt_.checkpoint_dir)) {
      if (!entry.is_regular_file() || entry.path().extension() != ".ckpt")
        continue;
      const std::string path = entry.path().string();
      auto loaded = try_load_shard_checkpoint(path);
      if (!loaded.ok()) return loaded.error();
      const ShardCheckpoint& ck = loaded.value();
      if (ck.trials_total != opt_.trials)
        return fail(Errc::kShardMismatch,
                    "checkpoint " + path + " covers a " +
                        std::to_string(ck.trials_total) +
                        "-trial campaign, expected " +
                        std::to_string(opt_.trials) +
                        " (one campaign per checkpoint directory)");
      if (fingerprint && ck.fingerprint != *fingerprint)
        return fail(Errc::kFingerprintMismatch,
                    "checkpoint " + path +
                        " belongs to a different campaign configuration "
                        "than its siblings (one campaign per directory)");
      fingerprint = ck.fingerprint;
      if (!ck.complete) continue;
      completed_.push_back(Completed{ck.shard_begin, ck.shard_end, path});
      for (const std::uint64_t t : ck.aborted_trials) quarantine(t);
      log("resuming: shard " + range_str(ck.shard_begin, ck.shard_end) +
          " already complete on disk");
    }
    return {};
  }

  /// Reduces the complete checkpoints found on disk to a disjoint cover
  /// (greedy by begin, widest first). Overlaps arise legitimately — a
  /// finished campaign leaves campaign.ckpt covering everything alongside
  /// its shard files — and merging overlapping accumulators would double-
  /// count trials, so redundant files are dropped, not merged.
  void select_cover() {
    std::sort(completed_.begin(), completed_.end(),
              [](const Completed& a, const Completed& b) {
                if (a.begin != b.begin) return a.begin < b.begin;
                return a.end > b.end;
              });
    std::vector<Completed> chosen;
    std::uint64_t cursor = 0;
    for (Completed& c : completed_) {
      if (c.begin >= cursor && c.end > c.begin) {
        cursor = c.end;
        chosen.push_back(std::move(c));
      }
    }
    completed_ = std::move(chosen);
  }

  /// Schedules every trial range not covered by a complete checkpoint or
  /// an already-quarantined singleton, chunked to the shard size.
  void schedule_gaps() {
    std::uint64_t shard_size = opt_.shard_size;
    if (shard_size == 0) {
      const std::uint64_t lanes =
          static_cast<std::uint64_t>(opt_.workers) * 4;
      shard_size = std::max<std::uint64_t>(1, (opt_.trials + lanes - 1) / lanes);
    }

    // Non-overlapping coverage, greedily by begin (ties: widest first).
    std::vector<Completed> cover = completed_;
    for (const std::uint64_t t : aborted_)
      cover.push_back(Completed{t, t + 1, ""});
    std::sort(cover.begin(), cover.end(), [](const Completed& a,
                                             const Completed& b) {
      if (a.begin != b.begin) return a.begin < b.begin;
      return a.end > b.end;
    });
    std::uint64_t cursor = 0;
    const auto add_gap = [&](std::uint64_t g0, std::uint64_t g1) {
      for (std::uint64_t b = g0; b < g1; b += shard_size) {
        Task t;
        t.begin = b;
        t.end = std::min(g1, b + shard_size);
        ready_.push_back(t);
      }
    };
    for (const Completed& c : cover) {
      if (c.begin > cursor) add_gap(cursor, c.begin);
      cursor = std::max(cursor, c.end);
    }
    if (cursor < opt_.trials) add_gap(cursor, opt_.trials);
  }

  void promote_waiting() {
    const TimePoint now = Clock::now();
    for (auto it = waiting_.begin(); it != waiting_.end();) {
      if (it->ready <= now) {
        ready_.push_back(*it);
        it = waiting_.erase(it);
      } else {
        ++it;
      }
    }
  }

  // ---- process management ----------------------------------------------

  Expected<void> launch_ready() {
    while (!ready_.empty() &&
           active_.size() < static_cast<std::size_t>(target_workers_)) {
      Task task = ready_.front();
      ready_.pop_front();
      if (!launch(task)) {
        // fork/pipe/exec-level failure: count toward degradation and
        // retry the task through the normal backoff path.
        note_resource_failure("launch failure for shard " +
                              range_str(task.begin, task.end));
        if (auto handled = handle_failure(
                task, Error{Errc::kWorkerCrash, "could not launch worker"});
            !handled.ok())
          return handled.error();
      }
    }
    return {};
  }

  bool launch(const Task& task) {
    int fds[2];
    if (pipe(fds) != 0) return false;
    // Heartbeat read ends must not leak into other workers (a surviving
    // duplicate write end would defeat EOF detection and hold fds open).
    fcntl(fds[0], F_SETFD, FD_CLOEXEC);

    std::vector<std::string> args;
    args.push_back(opt_.binary);
    args.push_back("worker");
    for (const auto& f : opt_.worker_flags) args.push_back(f);
    args.push_back("--shard");
    args.push_back(std::to_string(task.begin) + ":" +
                   std::to_string(task.end));
    args.push_back("--checkpoint");
    args.push_back(shard_path(opt_.checkpoint_dir, task.begin, task.end));
    args.push_back("--heartbeat-fd");
    args.push_back(std::to_string(fds[1]));

    const pid_t pid = fork();
    if (pid < 0) {
      close(fds[0]);
      close(fds[1]);
      return false;
    }
    if (pid == 0) {
      // Child: exec the worker; 127 signals "could not even start".
      close(fds[0]);
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (auto& a : args) argv.push_back(a.data());
      argv.push_back(nullptr);
      execv(opt_.binary.c_str(), argv.data());
      _exit(127);
    }
    close(fds[1]);
    fcntl(fds[0], F_SETFL, O_NONBLOCK);

    Worker w;
    w.pid = pid;
    w.fd = fds[0];
    w.task = task;
    w.started = w.last_beat = Clock::now();
    active_.push_back(std::move(w));
    ++report_.workers_spawned;
    log("shard " + range_str(task.begin, task.end) + " -> pid " +
        std::to_string(pid) +
        (task.attempts > 0 ? " (attempt " + std::to_string(task.attempts + 1) +
                                 "/" + std::to_string(opt_.max_attempts) + ")"
                           : ""));
    return true;
  }

  /// Blocks up to the nearest deadline waiting for heartbeats; drains
  /// every readable pipe and stamps last_beat.
  void poll_heartbeats() {
    std::vector<pollfd> fds;
    std::vector<std::size_t> owner;
    for (std::size_t i = 0; i < active_.size(); ++i) {
      if (active_[i].fd < 0) continue;
      fds.push_back(pollfd{active_[i].fd, POLLIN, 0});
      owner.push_back(i);
    }
    const int timeout_ms = next_wakeup_ms();
    const int n = ::poll(fds.empty() ? nullptr : fds.data(),
                         static_cast<nfds_t>(fds.size()), timeout_ms);
    if (n <= 0) return;  // timeout or EINTR: deadlines handled by caller
    for (std::size_t k = 0; k < fds.size(); ++k) {
      if ((fds[k].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      drain(active_[owner[k]]);
    }
  }

  /// Wakeup bound: soonest of worker deadlines and backoff expiries,
  /// clamped to [10, 200] ms so reaping and cancellation stay responsive.
  int next_wakeup_ms() const {
    double soonest = 0.2;
    const TimePoint now = Clock::now();
    const auto until = [&](TimePoint tp) {
      return std::chrono::duration<double>(tp - now).count();
    };
    for (const Worker& w : active_) {
      soonest = std::min(
          soonest, until(w.last_beat + to_duration(opt_.heartbeat_timeout_s)));
      if (opt_.shard_timeout_s > 0)
        soonest = std::min(
            soonest, until(w.started + to_duration(opt_.shard_timeout_s)));
    }
    for (const Task& t : waiting_) soonest = std::min(soonest, until(t.ready));
    return std::clamp(static_cast<int>(soonest * 1000.0), 10, 200);
  }

  static Clock::duration to_duration(double seconds) {
    return std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(seconds));
  }

  void drain(Worker& w) {
    std::uint8_t buf[256];
    while (true) {
      const ssize_t n = read(w.fd, buf, sizeof buf);
      if (n > 0) {
        w.last_beat = Clock::now();
        w.partial.insert(w.partial.end(), buf, buf + n);
        while (w.partial.size() >= 8) {
          std::uint64_t v = 0;
          for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(w.partial[static_cast<std::size_t>(i)])
                 << (8 * i);
          w.trials_done = v;
          w.partial.erase(w.partial.begin(), w.partial.begin() + 8);
        }
        continue;
      }
      if (n == 0) {  // worker closed its end (exiting)
        close(w.fd);
        w.fd = -1;
      }
      break;  // EOF, EAGAIN, or EINTR: nothing more to read now
    }
  }

  /// SIGKILLs workers that missed their heartbeat deadline or exceeded the
  /// shard wall-clock budget. The kill surfaces through reap() as a
  /// kTimeout failure (retryable).
  void enforce_deadlines() {
    const TimePoint now = Clock::now();
    for (Worker& w : active_) {
      if (w.watchdog_killed) continue;
      const bool hb_expired =
          now - w.last_beat > to_duration(opt_.heartbeat_timeout_s);
      const bool wall_expired =
          opt_.shard_timeout_s > 0 &&
          now - w.started > to_duration(opt_.shard_timeout_s);
      if (!hb_expired && !wall_expired) continue;
      log("pid " + std::to_string(w.pid) + " shard " +
          range_str(w.task.begin, w.task.end) +
          (hb_expired ? ": heartbeat deadline missed" : ": wall-clock budget exceeded") +
          "; sending SIGKILL");
      kill(w.pid, SIGKILL);
      w.watchdog_killed = true;
      ++report_.watchdog_kills;
    }
  }

  Expected<void> reap() {
    for (auto it = active_.begin(); it != active_.end();) {
      int status = 0;
      const pid_t r = waitpid(it->pid, &status, WNOHANG);
      if (r != it->pid) {
        ++it;
        continue;
      }
      Worker w = std::move(*it);
      it = active_.erase(it);
      if (w.fd >= 0) {
        drain(w);  // final beats written between last poll and exit
        if (w.fd >= 0) close(w.fd);
      }
      if (auto handled = handle_exit(w, status); !handled.ok())
        return handled.error();
    }
    return {};
  }

  Expected<void> handle_exit(const Worker& w, int status) {
    const Task& task = w.task;
    if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
      // Trust but verify: the shard is only done if its checkpoint says so.
      const std::string path =
          shard_path(opt_.checkpoint_dir, task.begin, task.end);
      auto loaded = try_load_shard_checkpoint(path);
      if (loaded.ok() && loaded.value().complete) {
        completed_.push_back(Completed{task.begin, task.end, path});
        resource_failure_streak_ = 0;
        log("shard " + range_str(task.begin, task.end) + " complete (" +
            std::to_string(w.trials_done) + " trials this attempt)");
        return {};
      }
      return handle_failure(
          task, Error{Errc::kIo,
                      "worker exited 0 but checkpoint " + path +
                          " is missing or incomplete"});
    }

    Error err;
    if (WIFSIGNALED(status)) {
      const int sig = WTERMSIG(status);
      err.code = w.watchdog_killed ? Errc::kTimeout : Errc::kWorkerCrash;
      err.message = w.watchdog_killed
                        ? "killed by watchdog (SIGKILL)"
                        : std::string("died on signal ") + strsignal(sig);
    } else {
      const int code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
      if (code == 127) {
        err = Error{Errc::kWorkerCrash, "exec failed (exit 127)"};
        note_resource_failure("worker exec failure");
      } else {
        err.code = errc_from_exit(code);
        err.message = "exited with status " + std::to_string(code) + " (" +
                      std::string(errc_name(err.code)) + ")";
      }
      if (err.code == Errc::kOutOfMemory)
        note_resource_failure("worker out-of-memory");
    }
    return handle_failure(task, err);
  }

  /// Retry with backoff, bisect on exhaustion, quarantine at single-trial
  /// granularity; fatal codes abort the campaign.
  Expected<void> handle_failure(Task task, const Error& err) {
    log("shard " + range_str(task.begin, task.end) + " failed: " +
        err.to_string());
    if (!err.retryable())
      return Error{err.code, "shard " + range_str(task.begin, task.end) +
                                 ": " + err.message + " (fatal; aborting)"};
    ++task.attempts;
    ++report_.retries;
    if (task.attempts < opt_.max_attempts) {
      task.ready = Clock::now() + to_duration(backoff_seconds(task));
      waiting_.push_back(task);
      return {};
    }
    if (task.end - task.begin == 1) {
      quarantine(task.begin);
      log("trial " + std::to_string(task.begin) +
          " fails every attempt; quarantined (aborted_trials)");
      if (aborted_.size() > opt_.max_quarantine)
        return fail(Errc::kQuarantineOverflow,
                    "quarantined " + std::to_string(aborted_.size()) +
                        " trials, more than the --max-quarantine budget of " +
                        std::to_string(opt_.max_quarantine));
      return {};
    }
    // Bisect: both halves restart the attempt budget; the half without the
    // poison completes, the other converges on it in O(log shard) splits.
    const std::uint64_t mid = task.begin + (task.end - task.begin) / 2;
    ++report_.bisections;
    log("bisecting " + range_str(task.begin, task.end) + " -> " +
        range_str(task.begin, mid) + " + " + range_str(mid, task.end));
    ready_.push_back(Task{task.begin, mid, 0, {}});
    ready_.push_back(Task{mid, task.end, 0, {}});
    return {};
  }

  /// Exponential backoff with deterministic jitter in [1x, 1.5x): the
  /// schedule is reproducible for a given jitter seed, yet relaunches of
  /// sibling shards spread out instead of stampeding.
  double backoff_seconds(const Task& task) const {
    double d = opt_.backoff_base_s;
    for (int i = 1; i < task.attempts; ++i) d *= 2;
    d = std::min(d, opt_.backoff_cap_s);
    std::uint64_t h = opt_.jitter_seed ^
                      (task.begin * 1000003ULL + task.end) ^
                      (static_cast<std::uint64_t>(task.attempts) << 56);
    splitmix64(h);
    const double u =
        static_cast<double>(splitmix64(h) >> 11) * 0x1.0p-53;  // uniform [0, 1)
    return d * (1.0 + 0.5 * u);
  }

  void quarantine(std::uint64_t trial) {
    if (std::find(aborted_.begin(), aborted_.end(), trial) == aborted_.end())
      aborted_.push_back(trial);
  }

  /// Repeated OOM/exec failures mean the machine is oversubscribed, not
  /// unlucky: halve concurrency (never below one) and keep going.
  void note_resource_failure(const std::string& what) {
    ++resource_failure_streak_;
    log(what + " (streak " + std::to_string(resource_failure_streak_) + ")");
    if (resource_failure_streak_ >= 2 && target_workers_ > 1) {
      const int before = target_workers_;
      target_workers_ = std::max(1, target_workers_ / 2);
      resource_failure_streak_ = 0;
      ++report_.degradations;
      log("degrading worker concurrency " + std::to_string(before) + " -> " +
          std::to_string(target_workers_));
    }
  }

  // ---- shutdown & merge -------------------------------------------------

  void kill_all(int sig) {
    for (const Worker& w : active_) kill(w.pid, sig);
  }

  void reap_blocking() {
    for (Worker& w : active_) {
      int status = 0;
      waitpid(w.pid, &status, 0);
      if (w.fd >= 0) close(w.fd);
    }
    active_.clear();
  }

  /// SIGTERM the fleet and wait for the graceful worker exits (each
  /// finishes its in-flight batch and checkpoints); stragglers past the
  /// grace period are SIGKILLed. At most one batch per worker is lost,
  /// and a later `supervise` resumes from the same directory.
  Expected<SupervisorReport> shutdown_cancelled() {
    log("cancellation requested; stopping " +
        std::to_string(active_.size()) + " worker(s)");
    kill_all(SIGTERM);
    const TimePoint deadline =
        Clock::now() + to_duration(std::max(5.0, opt_.heartbeat_timeout_s));
    while (!active_.empty() && Clock::now() < deadline) {
      poll_heartbeats();
      for (auto it = active_.begin(); it != active_.end();) {
        int status = 0;
        if (waitpid(it->pid, &status, WNOHANG) == it->pid) {
          if (it->fd >= 0) close(it->fd);
          it = active_.erase(it);
        } else {
          ++it;
        }
      }
    }
    kill_all(SIGKILL);
    reap_blocking();
    report_.cancelled = true;
    report_.aborted_trials = sorted_aborted();
    return report_;
  }

  std::vector<std::uint64_t> sorted_aborted() const {
    std::vector<std::uint64_t> v = aborted_;
    std::sort(v.begin(), v.end());
    return v;
  }

  /// Loads every completed shard checkpoint and merges exactly. The result
  /// is byte-identical to the monolithic run over the same trials —
  /// quarantined trials excepted, and those are enumerated.
  Expected<SupervisorReport> merge() {
    std::sort(completed_.begin(), completed_.end(),
              [](const Completed& a, const Completed& b) {
                return a.begin < b.begin;
              });
    // Coverage audit: completed shards plus quarantined singletons must
    // tile [0, trials) without gaps or overlaps.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> tiles;
    for (const Completed& c : completed_) tiles.emplace_back(c.begin, c.end);
    // A quarantined trial is its own tile unless a completed range already
    // accounts for it (a prior run's campaign.ckpt spans administratively-
    // complete ranges that include their quarantined trials).
    for (const std::uint64_t t : aborted_) {
      const bool inside = std::any_of(
          completed_.begin(), completed_.end(), [&](const Completed& c) {
            return c.begin <= t && t < c.end;
          });
      if (!inside) tiles.emplace_back(t, t + 1);
    }
    std::sort(tiles.begin(), tiles.end());
    std::uint64_t cursor = 0;
    for (const auto& [b, e] : tiles) {
      if (b != cursor)
        return fail(Errc::kInternal,
                    "supervise: coverage hole or overlap at trial " +
                        std::to_string(cursor) + " vs tile " +
                        range_str(b, e));
      cursor = e;
    }
    if (cursor != opt_.trials)
      return fail(Errc::kInternal,
                  "supervise: coverage ends at " + std::to_string(cursor) +
                      " of " + std::to_string(opt_.trials));

    std::string network;
    std::string accel = "eyeriss";
    std::string fault_op = "toggle";
    for (const Completed& c : completed_) {
      auto loaded = try_load_shard_checkpoint(c.path);
      if (!loaded.ok()) return loaded.error();
      const ShardCheckpoint& ck = loaded.value();
      report_.acc.merge(ck.acc);
      report_.masked_exits += ck.masked_exits;
      report_.fingerprint = ck.fingerprint;
      network = ck.network;
      accel = ck.accel;
      fault_op = ck.fault_op;
    }
    report_.aborted_trials = sorted_aborted();

    // Leave the merged state behind as a self-describing checkpoint that
    // carries the same geometry/op identity as its shards.
    ShardCheckpoint merged;
    merged.fingerprint = report_.fingerprint;
    merged.network = network;
    merged.accel = accel;
    merged.fault_op = fault_op;
    merged.trials_total = opt_.trials;
    merged.shard_begin = 0;
    merged.shard_end = opt_.trials;
    merged.next_trial = opt_.trials;
    merged.complete = true;
    merged.masked_exits = report_.masked_exits;
    merged.aborted_trials = report_.aborted_trials;
    merged.acc = report_.acc;
    if (auto saved = try_save_shard_checkpoint(
            opt_.checkpoint_dir + "/campaign.ckpt", merged);
        !saved.ok())
      return saved.error();
    return std::move(report_);
  }

  void log(const std::string& what) const {
    if (opt_.verbose) std::cerr << "[supervise] " << what << "\n";
  }

  const SupervisorOptions& opt_;
  SupervisorReport report_;
  int target_workers_ = 1;
  int resource_failure_streak_ = 0;

  std::deque<Task> ready_;
  std::vector<Task> waiting_;
  std::vector<Worker> active_;
  std::vector<Completed> completed_;
  std::vector<std::uint64_t> aborted_;
};

}  // namespace

Expected<SupervisorReport> supervise(const SupervisorOptions& opt) {
  return Supervisor(opt).run();
}

}  // namespace dnnfi::fault
