#include "dnnfi/fault/supervisor.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>

#include "dnnfi/common/atomic_file.h"
#include "dnnfi/common/rng.h"
#include "dnnfi/fault/checkpoint.h"
#include "dnnfi/fault/fleet.h"
#include "dnnfi/fault/transport.h"

namespace dnnfi::fault {

namespace {

using Clock = std::chrono::steady_clock;
using TimePoint = Clock::time_point;

std::string shard_path(const std::string& dir, std::uint64_t begin,
                       std::uint64_t end) {
  return dir + "/shard_" + std::to_string(begin) + "_" + std::to_string(end) +
         ".ckpt";
}

std::string range_str(std::uint64_t begin, std::uint64_t end) {
  return "[" + std::to_string(begin) + ", " + std::to_string(end) + ")";
}

/// Last `n` lines of a file, for post-mortem failure reports.
std::vector<std::string> tail_lines(const std::string& path, std::size_t n) {
  std::ifstream in(path);
  if (!in) return {};
  std::deque<std::string> tail;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    tail.push_back(line);
    if (tail.size() > n) tail.pop_front();
  }
  return {tail.begin(), tail.end()};
}

/// A trial range queued for execution (fresh, retrying, or bisected).
struct Task {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  int attempts = 0;       ///< failed attempts so far
  TimePoint ready{};      ///< earliest launch time (backoff)
  std::string last_node;  ///< fleet node the last failure ran on ("" = none)
};

/// A live worker subprocess and its channel to the supervisor.
struct Worker {
  pid_t pid = -1;
  int fd = -1;  ///< nonblocking worker->supervisor fd; -1 once EOF
  Task task;
  Fleet::Node* node = nullptr;  ///< owning fleet node; nullptr in local mode
  WorkerChannel channel{false};
  std::string ckpt_path;  ///< supervisor-side checkpoint for this shard
  std::string log_path;   ///< per-shard stderr log ("" = inherited stderr)
  TimePoint started{};
  TimePoint last_beat{};
  std::uint64_t trials_done = 0;
  bool watchdog_killed = false;
  bool channel_corrupt = false;  ///< frame damage or bad shipped checkpoint
  Error channel_error;           ///< set when channel_corrupt
};

/// A shard whose checkpoint on disk is complete.
struct Completed {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  std::string path;
};

class Supervisor {
 public:
  explicit Supervisor(const SupervisorOptions& opt) : opt_(opt) {}

  Expected<SupervisorReport> run() {
    if (opt_.trials == 0)
      return fail(Errc::kInvalidArgument, "supervise: trials must be > 0");
    if (opt_.binary.empty())
      return fail(Errc::kInvalidArgument, "supervise: worker binary not set");
    if (opt_.workers < 1)
      return fail(Errc::kInvalidArgument, "supervise: workers must be >= 1");
    if (opt_.checkpoint_dir.empty())
      return fail(Errc::kInvalidArgument,
                  "supervise: checkpoint directory not set");
    std::error_code ec;
    std::filesystem::create_directories(opt_.checkpoint_dir, ec);
    if (ec)
      return fail(Errc::kIo, "supervise: cannot create " +
                                 opt_.checkpoint_dir + ": " + ec.message());
    std::filesystem::create_directories(opt_.checkpoint_dir + "/logs", ec);
    if (ec)
      return fail(Errc::kIo, "supervise: cannot create " +
                                 opt_.checkpoint_dir + "/logs: " +
                                 ec.message());
    target_workers_ = opt_.workers;

    if (!opt_.hosts.empty() || !opt_.hosts_file.empty()) {
      auto specs = opt_.hosts_file.empty()
                       ? parse_hosts(opt_.hosts)
                       : parse_hosts_file(opt_.hosts_file);
      if (!specs.ok()) return specs.error();
      FleetConfig fc;
      fc.fail_limit = opt_.host_fail_limit;
      fc.quarantine_base_s = opt_.quarantine_base_s;
      fc.quarantine_cap_s = opt_.quarantine_cap_s;
      fc.scratch_root = opt_.checkpoint_dir;
      fleet_.emplace(std::move(specs).value(), fc);
      // Init frames to workers that die instantly surface as EPIPE write
      // errors, not process death.
      signal(SIGPIPE, SIG_IGN);
      log("fleet: " + std::to_string(fleet_->nodes().size()) + " host(s), " +
          std::to_string(fleet_->total_slots()) + " slot(s)");
    }

    if (auto scanned = scan_checkpoint_dir(); !scanned.ok())
      return scanned.error();
    select_cover();
    schedule_gaps();

    while (true) {
      if (opt_.cancel && opt_.cancel->load(std::memory_order_relaxed))
        return shutdown_cancelled();
      if (fleet_ && opt_.reload_hosts &&
          opt_.reload_hosts->exchange(false, std::memory_order_relaxed))
        reload_fleet();
      promote_waiting();
      if (auto launched = launch_ready(); !launched.ok()) {
        kill_all(SIGKILL);
        reap_blocking();
        return launched.error();
      }
      if (active_.empty() && waiting_.empty() && ready_.empty()) break;
      if (fleet_ && active_.empty() && !fleet_->any_member())
        return fail(Errc::kNoHosts,
                    "supervise: every fleet host has left (--hosts-file) "
                    "with " +
                        std::to_string(ready_.size() + waiting_.size()) +
                        " shard(s) still pending");
      poll_heartbeats();
      if (auto reaped = reap(); !reaped.ok()) {
        kill_all(SIGKILL);
        reap_blocking();
        return reaped.error();
      }
      enforce_deadlines();
    }
    return merge();
  }

 private:
  // ---- scheduling -------------------------------------------------------

  /// Loads every checkpoint already in the directory: complete shards
  /// count as coverage (supervisor crash recovery), incomplete ones are
  /// resumed implicitly when their range is rescheduled under the same
  /// deterministic file name. A corrupt or version-skewed file is fatal —
  /// atomic writes mean it cannot be a torn write, so something real is
  /// wrong with the directory. (Node scratch subdirectories are not
  /// scanned: the iteration is non-recursive by design.)
  Expected<void> scan_checkpoint_dir() {
    std::optional<std::uint64_t> fingerprint;
    for (const auto& entry :
         std::filesystem::directory_iterator(opt_.checkpoint_dir)) {
      if (!entry.is_regular_file() || entry.path().extension() != ".ckpt")
        continue;
      const std::string path = entry.path().string();
      auto loaded = try_load_shard_checkpoint(path);
      if (!loaded.ok()) return loaded.error();
      const ShardCheckpoint& ck = loaded.value();
      if (ck.trials_total != opt_.trials)
        return fail(Errc::kShardMismatch,
                    "checkpoint " + path + " covers a " +
                        std::to_string(ck.trials_total) +
                        "-trial campaign, expected " +
                        std::to_string(opt_.trials) +
                        " (one campaign per checkpoint directory)");
      if (fingerprint && ck.fingerprint != *fingerprint)
        return fail(Errc::kFingerprintMismatch,
                    "checkpoint " + path +
                        " belongs to a different campaign configuration "
                        "than its siblings (one campaign per directory)");
      fingerprint = ck.fingerprint;
      if (!ck.complete) continue;
      completed_.push_back(Completed{ck.shard_begin, ck.shard_end, path});
      for (const std::uint64_t t : ck.aborted_trials) quarantine(t);
      log("resuming: shard " + range_str(ck.shard_begin, ck.shard_end) +
          " already complete on disk");
    }
    return {};
  }

  /// Reduces the complete checkpoints found on disk to a disjoint cover
  /// (greedy by begin, widest first). Overlaps arise legitimately — a
  /// finished campaign leaves campaign.ckpt covering everything alongside
  /// its shard files — and merging overlapping accumulators would double-
  /// count trials, so redundant files are dropped, not merged. Each drop
  /// is announced: a stale overlapping checkpoint means some past run
  /// worked a range another file already covers, and silently discarding
  /// that work would make "why is my campaign re-running?" undebuggable.
  void select_cover() {
    std::sort(completed_.begin(), completed_.end(),
              [](const Completed& a, const Completed& b) {
                if (a.begin != b.begin) return a.begin < b.begin;
                return a.end > b.end;
              });
    std::vector<Completed> chosen;
    std::uint64_t cursor = 0;
    for (Completed& c : completed_) {
      if (c.begin >= cursor && c.end > c.begin) {
        cursor = c.end;
        chosen.push_back(std::move(c));
      } else {
        log("warning: discarding stale checkpoint " + c.path + " covering " +
            range_str(c.begin, c.end) +
            " — range already covered by the greedy disjoint cover");
      }
    }
    completed_ = std::move(chosen);
  }

  /// Schedules every trial range not covered by a complete checkpoint or
  /// an already-quarantined singleton, chunked to the shard size. Fleet
  /// mode sizes shards against the fleet's total slots (topology-aware):
  /// ~4 shards per slot keeps every host busy while bounding the work a
  /// dead host strands.
  void schedule_gaps() {
    std::uint64_t shard_size = opt_.shard_size;
    if (shard_size == 0) {
      const std::uint64_t lanes =
          static_cast<std::uint64_t>(fleet_ ? std::max(1, fleet_->total_slots())
                                            : opt_.workers) *
          4;
      shard_size = std::max<std::uint64_t>(1, (opt_.trials + lanes - 1) / lanes);
    }

    // Non-overlapping coverage, greedily by begin (ties: widest first).
    std::vector<Completed> cover = completed_;
    for (const std::uint64_t t : aborted_)
      cover.push_back(Completed{t, t + 1, ""});
    std::sort(cover.begin(), cover.end(), [](const Completed& a,
                                             const Completed& b) {
      if (a.begin != b.begin) return a.begin < b.begin;
      return a.end > b.end;
    });
    std::uint64_t cursor = 0;
    const auto add_gap = [&](std::uint64_t g0, std::uint64_t g1) {
      for (std::uint64_t b = g0; b < g1; b += shard_size) {
        Task t;
        t.begin = b;
        t.end = std::min(g1, b + shard_size);
        ready_.push_back(t);
      }
    };
    for (const Completed& c : cover) {
      if (c.begin > cursor) add_gap(cursor, c.begin);
      cursor = std::max(cursor, c.end);
    }
    if (cursor < opt_.trials) add_gap(cursor, opt_.trials);
  }

  void promote_waiting() {
    const TimePoint now = Clock::now();
    for (auto it = waiting_.begin(); it != waiting_.end();) {
      if (it->ready <= now) {
        ready_.push_back(*it);
        it = waiting_.erase(it);
      } else {
        ++it;
      }
    }
  }

  /// Re-reads the hosts file after SIGHUP. A malformed file keeps the
  /// current membership — elasticity must never turn a typo into a dead
  /// fleet mid-campaign.
  void reload_fleet() {
    if (opt_.hosts_file.empty()) {
      log("reload requested but no --hosts-file was given; ignoring");
      return;
    }
    auto specs = parse_hosts_file(opt_.hosts_file);
    if (!specs.ok()) {
      log("warning: hosts-file reload failed (" + specs.error().to_string() +
          "); keeping current membership");
      return;
    }
    const auto [joined, drained] = fleet_->reload(specs.value());
    log("hosts-file reloaded: " + std::to_string(joined) + " host(s) joined, " +
        std::to_string(drained) + " draining; " +
        std::to_string(fleet_->total_slots()) + " slot(s) now");
  }

  // ---- process management ----------------------------------------------

  Expected<void> launch_ready() {
    while (!ready_.empty()) {
      if (!fleet_) {
        if (active_.size() >= static_cast<std::size_t>(target_workers_)) break;
        Task task = ready_.front();
        ready_.pop_front();
        if (auto spawned = launch(task, nullptr); !spawned.ok()) {
          // fork/pipe/exec-level failure: count toward degradation and
          // retry the task through the normal backoff path.
          note_resource_failure("launch failure for shard " +
                                range_str(task.begin, task.end));
          if (auto handled = handle_failure(
                  task, Error{Errc::kWorkerCrash, "could not launch worker"});
              !handled.ok())
            return handled.error();
        }
        continue;
      }
      // Fleet mode: a slot must be available; prefer a node other than the
      // one the shard last failed on (retry-elsewhere).
      Fleet::Node* node = fleet_->acquire(ready_.front().last_node);
      if (node == nullptr) break;
      Task task = ready_.front();
      ready_.pop_front();
      auto spawned = launch(task, node);
      if (!spawned.ok()) {
        note_host_release(*node, /*success=*/false);
        log("spawn on " + node->id + " failed: " +
            spawned.error().to_string());
        if (auto handled = handle_failure(task, spawned.error());
            !handled.ok())
          return handled.error();
      }
    }
    return {};
  }

  /// Starts `task` on `node` (fleet mode) or on the classic local
  /// transport (node == nullptr). On success the worker joins active_.
  Expected<void> launch(const Task& task, Fleet::Node* node) {
    WorkerSpawn spawn;
    spawn.binary = opt_.binary;
    spawn.flags = opt_.worker_flags;
    spawn.begin = task.begin;
    spawn.end = task.end;
    spawn.checkpoint = shard_path(opt_.checkpoint_dir, task.begin, task.end);
    spawn.stderr_log = opt_.checkpoint_dir + "/logs/shard_" +
                       std::to_string(task.begin) + "_" +
                       std::to_string(task.end) + ".log";

    // Fleet workers checkpoint on their own node; resume state travels in
    // the init frame from the supervisor's durable copy (landed by a prior
    // attempt on any host). Local workers read the shared file themselves.
    std::vector<std::uint8_t> resume_bytes;
    if (node != nullptr && std::filesystem::exists(spawn.checkpoint)) {
      auto bytes = read_checkpoint_bytes(spawn.checkpoint);
      if (bytes.ok()) {
        resume_bytes = std::move(bytes).value();
        spawn.resume = &resume_bytes;
      } else {
        log("warning: not shipping resume state for shard " +
            range_str(task.begin, task.end) + ": " +
            bytes.error().to_string());
      }
    }

    WorkerTransport& transport =
        node != nullptr ? *node->transport
                        : static_cast<WorkerTransport&>(local_transport_);
    auto handle = transport.spawn(spawn);
    if (!handle.ok()) return handle.error();

    Worker w;
    w.pid = handle.value().pid;
    w.fd = handle.value().rx;
    w.task = task;
    w.node = node;
    w.channel = WorkerChannel(transport.framed());
    w.ckpt_path = spawn.checkpoint;
    w.log_path = spawn.stderr_log;
    w.started = w.last_beat = Clock::now();
    ++report_.workers_spawned;
    if (node != nullptr && !task.last_node.empty() &&
        node->id != task.last_node) {
      ++report_.retries_elsewhere;
      log("shard " + range_str(task.begin, task.end) + " moves " +
          task.last_node + " -> " + node->id + " (retry-elsewhere" +
          (spawn.resume != nullptr ? ", resuming from shipped checkpoint)"
                                   : ")"));
    }
    log("shard " + range_str(task.begin, task.end) + " -> " +
        (node != nullptr ? node->id + " " : "") + "pid " +
        std::to_string(w.pid) +
        (task.attempts > 0 ? " (attempt " + std::to_string(task.attempts + 1) +
                                 "/" + std::to_string(opt_.max_attempts) + ")"
                           : ""));
    active_.push_back(std::move(w));
    return {};
  }

  /// Blocks up to the nearest deadline waiting for heartbeats; drains
  /// every readable channel and stamps last_beat.
  void poll_heartbeats() {
    std::vector<pollfd> fds;
    std::vector<std::size_t> owner;
    for (std::size_t i = 0; i < active_.size(); ++i) {
      if (active_[i].fd < 0) continue;
      fds.push_back(pollfd{active_[i].fd, POLLIN, 0});
      owner.push_back(i);
    }
    const int timeout_ms = next_wakeup_ms();
    const int n = ::poll(fds.empty() ? nullptr : fds.data(),
                         static_cast<nfds_t>(fds.size()), timeout_ms);
    if (n <= 0) return;  // timeout or EINTR: deadlines handled by caller
    for (std::size_t k = 0; k < fds.size(); ++k) {
      if ((fds[k].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      drain(active_[owner[k]]);
    }
  }

  /// Wakeup bound: soonest of worker deadlines, backoff expiries, and
  /// fleet quarantine releases, clamped to [10, 200] ms so reaping and
  /// cancellation stay responsive.
  int next_wakeup_ms() const {
    double soonest = 0.2;
    const TimePoint now = Clock::now();
    const auto until = [&](TimePoint tp) {
      return std::chrono::duration<double>(tp - now).count();
    };
    for (const Worker& w : active_) {
      soonest = std::min(
          soonest, until(w.last_beat + to_duration(opt_.heartbeat_timeout_s)));
      if (opt_.shard_timeout_s > 0)
        soonest = std::min(
            soonest, until(w.started + to_duration(opt_.shard_timeout_s)));
    }
    for (const Task& t : waiting_) soonest = std::min(soonest, until(t.ready));
    if (fleet_) {
      if (const auto release = fleet_->earliest_release(now))
        soonest = std::min(soonest, until(*release));
    }
    return std::clamp(static_cast<int>(soonest * 1000.0), 10, 200);
  }

  static Clock::duration to_duration(double seconds) {
    return std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(seconds));
  }

  /// Reads everything the worker's channel holds, decoding beats (and, on
  /// framed channels, shipped checkpoints). Short reads and EINTR are
  /// retried by the io layer — a signal landing mid-read must not drop a
  /// beat. Structural damage poisons the worker: it is SIGKILLed and its
  /// exit is classified kTransport / kCheckpointShip (both retryable, on
  /// another host when one exists).
  void drain(Worker& w) {
    std::uint8_t buf[4096];
    while (w.fd >= 0 && !w.channel_corrupt) {
      auto got = io_read_chunk(w.fd, buf, sizeof buf);
      if (!got.ok()) {
        channel_fault(w, got.error());
        return;
      }
      const long n = got.value();
      if (n < 0) break;  // EAGAIN: nothing more to read now
      if (n == 0) {      // worker closed its end (exiting)
        close(w.fd);
        w.fd = -1;
        break;
      }
      w.last_beat = Clock::now();
      std::vector<ChannelEvent> events;
      auto fed = w.channel.feed(buf, static_cast<std::size_t>(n), events);
      for (const ChannelEvent& ev : events) {
        if (ev.kind == ChannelEvent::Kind::kBeat)
          w.trials_done = ev.done;
        else
          land_checkpoint(w, ev.bytes);
        if (w.channel_corrupt) return;
      }
      if (!fed.ok()) {
        channel_fault(w, fed.error());
        return;
      }
    }
  }

  /// Validates and lands a shipped checkpoint image as the supervisor's
  /// durable copy for the worker's shard (atomic tmp + rename). An image
  /// that fails to parse or covers the wrong range is channel damage; a
  /// local write failure is a plain retryable kIo for this attempt.
  void land_checkpoint(Worker& w, const std::vector<std::uint8_t>& bytes) {
    const std::string origin =
        "checkpoint frame from " + (w.node ? w.node->id : "worker");
    auto parsed = parse_checkpoint_bytes(bytes.data(), bytes.size(), origin);
    if (!parsed.ok()) {
      channel_fault(w, Error{Errc::kCheckpointShip,
                             origin + ": " + parsed.error().message});
      return;
    }
    const ShardCheckpoint& ck = parsed.value();
    if (ck.shard_begin != w.task.begin || ck.shard_end != w.task.end ||
        ck.trials_total != opt_.trials) {
      channel_fault(
          w, Error{Errc::kCheckpointShip,
                   origin + ": image covers shard " +
                       range_str(ck.shard_begin, ck.shard_end) + " of " +
                       std::to_string(ck.trials_total) +
                       " trials, expected " +
                       range_str(w.task.begin, w.task.end) + " of " +
                       std::to_string(opt_.trials)});
      return;
    }
    auto written = write_file_atomic(
        w.ckpt_path,
        std::string_view(reinterpret_cast<const char*>(bytes.data()),
                         bytes.size()));
    if (!written.ok()) {
      channel_fault(w, Error{Errc::kIo, "landing " + w.ckpt_path + ": " +
                                            written.error().message});
      return;
    }
    ++report_.checkpoints_shipped;
  }

  /// Marks a worker's channel unusable and kills the process; the reap
  /// path turns this into a retryable failure carrying `err`.
  void channel_fault(Worker& w, const Error& err) {
    if (w.channel_corrupt) return;
    w.channel_corrupt = true;
    w.channel_error = err;
    log("pid " + std::to_string(w.pid) + " shard " +
        range_str(w.task.begin, w.task.end) + ": channel fault: " +
        err.to_string() + "; sending SIGKILL");
    kill(w.pid, SIGKILL);
    if (w.fd >= 0) {
      close(w.fd);
      w.fd = -1;
    }
  }

  /// SIGKILLs workers that missed their heartbeat deadline or exceeded the
  /// shard wall-clock budget. The kill surfaces through reap() as a
  /// kTimeout failure (retryable).
  void enforce_deadlines() {
    const TimePoint now = Clock::now();
    for (Worker& w : active_) {
      if (w.watchdog_killed || w.channel_corrupt) continue;
      const bool hb_expired =
          now - w.last_beat > to_duration(opt_.heartbeat_timeout_s);
      const bool wall_expired =
          opt_.shard_timeout_s > 0 &&
          now - w.started > to_duration(opt_.shard_timeout_s);
      if (!hb_expired && !wall_expired) continue;
      log("pid " + std::to_string(w.pid) + " shard " +
          range_str(w.task.begin, w.task.end) +
          (hb_expired ? ": heartbeat deadline missed" : ": wall-clock budget exceeded") +
          "; sending SIGKILL");
      kill(w.pid, SIGKILL);
      w.watchdog_killed = true;
      ++report_.watchdog_kills;
    }
  }

  Expected<void> reap() {
    for (auto it = active_.begin(); it != active_.end();) {
      int status = 0;
      const pid_t r = waitpid(it->pid, &status, WNOHANG);
      if (r != it->pid) {
        ++it;
        continue;
      }
      Worker w = std::move(*it);
      it = active_.erase(it);
      if (w.fd >= 0) {
        drain(w);  // final beats/checkpoints written between last poll and exit
        if (w.fd >= 0) close(w.fd);
      }
      if (auto handled = handle_exit(w, status); !handled.ok())
        return handled.error();
    }
    return {};
  }

  /// Gives a slot back to the fleet and narrates a tripped quarantine.
  void note_host_release(Fleet::Node& node, bool success) {
    const ReleaseOutcome out = fleet_->release(node, success);
    if (out.quarantined) {
      ++report_.host_quarantines;
      log("host " + node.id + " quarantined for " +
          std::to_string(out.quarantine_s) + "s after " +
          std::to_string(opt_.host_fail_limit) +
          " consecutive failures (quarantine #" +
          std::to_string(node.quarantine_count) + ")");
    }
  }

  /// Last lines of the worker's stderr log, prefixed [host:shard], so a
  /// failure report carries the worker's own words.
  void log_failure_tail(const Worker& w) {
    if (w.log_path.empty()) return;
    const auto lines = tail_lines(w.log_path, 10);
    if (lines.empty()) return;
    const std::string prefix = "[" + (w.node ? w.node->spec.host : "local") +
                               ":shard_" + std::to_string(w.task.begin) + "_" +
                               std::to_string(w.task.end) + "] ";
    log("last " + std::to_string(lines.size()) + " stderr line(s):");
    for (const std::string& line : lines) log(prefix + line);
  }

  Expected<void> handle_exit(const Worker& w, int status) {
    Task task = w.task;
    if (w.node != nullptr) task.last_node = w.node->id;

    if (!w.channel_corrupt && WIFEXITED(status) && WEXITSTATUS(status) == 0) {
      // Trust but verify: the shard is only done if its checkpoint says
      // so. In fleet mode the verified copy is the supervisor-side one the
      // worker shipped — a worker whose final ship never landed retries.
      auto loaded = try_load_shard_checkpoint(w.ckpt_path);
      if (loaded.ok() && loaded.value().complete) {
        completed_.push_back(Completed{task.begin, task.end, w.ckpt_path});
        resource_failure_streak_ = 0;
        if (w.node != nullptr) note_host_release(*w.node, /*success=*/true);
        log("shard " + range_str(task.begin, task.end) + " complete (" +
            std::to_string(w.trials_done) + " trials this attempt)");
        return {};
      }
      if (w.node != nullptr) note_host_release(*w.node, /*success=*/false);
      log_failure_tail(w);
      return handle_failure(
          task, Error{Errc::kIo,
                      "worker exited 0 but checkpoint " + w.ckpt_path +
                          " is missing or incomplete"});
    }

    Error err;
    if (w.channel_corrupt) {
      err = w.channel_error;
    } else if (WIFSIGNALED(status)) {
      const int sig = WTERMSIG(status);
      err.code = w.watchdog_killed ? Errc::kTimeout : Errc::kWorkerCrash;
      err.message = w.watchdog_killed
                        ? "killed by watchdog (SIGKILL)"
                        : std::string("died on signal ") + strsignal(sig);
    } else {
      const int code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
      if (code == 127) {
        err = Error{Errc::kWorkerCrash, "exec failed (exit 127)"};
        if (!fleet_) note_resource_failure("worker exec failure");
      } else {
        err.code = errc_from_exit(code);
        err.message = "exited with status " + std::to_string(code) + " (" +
                      std::string(errc_name(err.code)) + ")";
      }
      if (err.code == Errc::kOutOfMemory && !fleet_)
        note_resource_failure("worker out-of-memory");
    }
    if (w.node != nullptr) note_host_release(*w.node, /*success=*/false);
    log_failure_tail(w);
    return handle_failure(task, err);
  }

  /// Retry with backoff, bisect on exhaustion, quarantine at single-trial
  /// granularity; fatal codes abort the campaign.
  Expected<void> handle_failure(Task task, const Error& err) {
    log("shard " + range_str(task.begin, task.end) + " failed: " +
        err.to_string());
    if (!err.retryable())
      return Error{err.code, "shard " + range_str(task.begin, task.end) +
                                 ": " + err.message + " (fatal; aborting)"};
    ++task.attempts;
    ++report_.retries;
    if (task.attempts < opt_.max_attempts) {
      task.ready = Clock::now() + to_duration(backoff_seconds(task));
      waiting_.push_back(task);
      return {};
    }
    if (task.end - task.begin == 1) {
      quarantine(task.begin);
      log("trial " + std::to_string(task.begin) +
          " fails every attempt; quarantined (aborted_trials)");
      if (aborted_.size() > opt_.max_quarantine)
        return fail(Errc::kQuarantineOverflow,
                    "quarantined " + std::to_string(aborted_.size()) +
                        " trials, more than the --max-quarantine budget of " +
                        std::to_string(opt_.max_quarantine));
      return {};
    }
    // Bisect: both halves restart the attempt budget; the half without the
    // poison completes, the other converges on it in O(log shard) splits.
    // Both halves inherit last_node so they too prefer a different host.
    const std::uint64_t mid = task.begin + (task.end - task.begin) / 2;
    ++report_.bisections;
    log("bisecting " + range_str(task.begin, task.end) + " -> " +
        range_str(task.begin, mid) + " + " + range_str(mid, task.end));
    ready_.push_back(Task{task.begin, mid, 0, {}, task.last_node});
    ready_.push_back(Task{mid, task.end, 0, {}, task.last_node});
    return {};
  }

  /// Exponential backoff with deterministic jitter in [1x, 1.5x): the
  /// schedule is reproducible for a given jitter seed, yet relaunches of
  /// sibling shards spread out instead of stampeding.
  double backoff_seconds(const Task& task) const {
    double d = opt_.backoff_base_s;
    for (int i = 1; i < task.attempts; ++i) d *= 2;
    d = std::min(d, opt_.backoff_cap_s);
    std::uint64_t h = opt_.jitter_seed ^
                      (task.begin * 1000003ULL + task.end) ^
                      (static_cast<std::uint64_t>(task.attempts) << 56);
    splitmix64(h);
    const double u =
        static_cast<double>(splitmix64(h) >> 11) * 0x1.0p-53;  // uniform [0, 1)
    return d * (1.0 + 0.5 * u);
  }

  void quarantine(std::uint64_t trial) {
    if (std::find(aborted_.begin(), aborted_.end(), trial) == aborted_.end())
      aborted_.push_back(trial);
  }

  /// Repeated OOM/exec failures mean the machine is oversubscribed, not
  /// unlucky: halve concurrency (never below one) and keep going. Local
  /// mode only — fleet mode expresses host sickness as quarantine instead.
  void note_resource_failure(const std::string& what) {
    ++resource_failure_streak_;
    log(what + " (streak " + std::to_string(resource_failure_streak_) + ")");
    if (resource_failure_streak_ >= 2 && target_workers_ > 1) {
      const int before = target_workers_;
      target_workers_ = std::max(1, target_workers_ / 2);
      resource_failure_streak_ = 0;
      ++report_.degradations;
      log("degrading worker concurrency " + std::to_string(before) + " -> " +
          std::to_string(target_workers_));
    }
  }

  // ---- shutdown & merge -------------------------------------------------

  void kill_all(int sig) {
    for (const Worker& w : active_) kill(w.pid, sig);
  }

  void reap_blocking() {
    for (Worker& w : active_) {
      int status = 0;
      waitpid(w.pid, &status, 0);
      if (w.fd >= 0) close(w.fd);
    }
    active_.clear();
  }

  /// SIGTERM the workers and wait for the graceful exits (each finishes
  /// its in-flight batch and checkpoints — fleet workers ship that final
  /// batch home first); stragglers past the grace period are SIGKILLed.
  /// At most one batch per worker is lost, and a later `supervise`
  /// resumes from the same directory.
  Expected<SupervisorReport> shutdown_cancelled() {
    log("cancellation requested; stopping " +
        std::to_string(active_.size()) + " worker(s)");
    kill_all(SIGTERM);
    const TimePoint deadline =
        Clock::now() + to_duration(std::max(5.0, opt_.heartbeat_timeout_s));
    while (!active_.empty() && Clock::now() < deadline) {
      poll_heartbeats();
      for (auto it = active_.begin(); it != active_.end();) {
        int status = 0;
        if (waitpid(it->pid, &status, WNOHANG) == it->pid) {
          if (it->fd >= 0) {
            drain(*it);  // land the final shipped batch before letting go
            if (it->fd >= 0) close(it->fd);
          }
          it = active_.erase(it);
        } else {
          ++it;
        }
      }
    }
    kill_all(SIGKILL);
    reap_blocking();
    report_.cancelled = true;
    report_.aborted_trials = sorted_aborted();
    return report_;
  }

  std::vector<std::uint64_t> sorted_aborted() const {
    std::vector<std::uint64_t> v = aborted_;
    std::sort(v.begin(), v.end());
    return v;
  }

  /// Loads every completed shard checkpoint and merges exactly. The result
  /// is byte-identical to the monolithic run over the same trials —
  /// quarantined trials excepted, and those are enumerated. Fleet mode
  /// changes nothing here: shipped checkpoints carry the same exact
  /// accumulators, and ExactSum merges are associative, so where a shard
  /// ran (or how often it moved) cannot change a single bit.
  Expected<SupervisorReport> merge() {
    std::sort(completed_.begin(), completed_.end(),
              [](const Completed& a, const Completed& b) {
                return a.begin < b.begin;
              });
    // Coverage audit: completed shards plus quarantined singletons must
    // tile [0, trials) without gaps or overlaps.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> tiles;
    for (const Completed& c : completed_) tiles.emplace_back(c.begin, c.end);
    // A quarantined trial is its own tile unless a completed range already
    // accounts for it (a prior run's campaign.ckpt spans administratively-
    // complete ranges that include their quarantined trials).
    for (const std::uint64_t t : aborted_) {
      const bool inside = std::any_of(
          completed_.begin(), completed_.end(), [&](const Completed& c) {
            return c.begin <= t && t < c.end;
          });
      if (!inside) tiles.emplace_back(t, t + 1);
    }
    std::sort(tiles.begin(), tiles.end());
    std::uint64_t cursor = 0;
    for (const auto& [b, e] : tiles) {
      if (b != cursor)
        return fail(Errc::kInternal,
                    "supervise: coverage hole or overlap at trial " +
                        std::to_string(cursor) + " vs tile " +
                        range_str(b, e));
      cursor = e;
    }
    if (cursor != opt_.trials)
      return fail(Errc::kInternal,
                  "supervise: coverage ends at " + std::to_string(cursor) +
                      " of " + std::to_string(opt_.trials));

    std::string network;
    std::string accel = "eyeriss";
    std::string fault_op = "toggle";
    for (const Completed& c : completed_) {
      auto loaded = try_load_shard_checkpoint(c.path);
      if (!loaded.ok()) return loaded.error();
      const ShardCheckpoint& ck = loaded.value();
      report_.acc.merge(ck.acc);
      report_.masked_exits += ck.masked_exits;
      report_.fingerprint = ck.fingerprint;
      network = ck.network;
      accel = ck.accel;
      fault_op = ck.fault_op;
    }
    report_.aborted_trials = sorted_aborted();

    // Leave the merged state behind as a self-describing checkpoint that
    // carries the same geometry/op identity as its shards.
    ShardCheckpoint merged;
    merged.fingerprint = report_.fingerprint;
    merged.network = network;
    merged.accel = accel;
    merged.fault_op = fault_op;
    merged.trials_total = opt_.trials;
    merged.shard_begin = 0;
    merged.shard_end = opt_.trials;
    merged.next_trial = opt_.trials;
    merged.complete = true;
    merged.masked_exits = report_.masked_exits;
    merged.aborted_trials = report_.aborted_trials;
    merged.acc = report_.acc;
    if (auto saved = try_save_shard_checkpoint(
            opt_.checkpoint_dir + "/campaign.ckpt", merged);
        !saved.ok())
      return saved.error();
    return std::move(report_);
  }

  void log(const std::string& what) const {
    if (opt_.verbose) std::cerr << "[supervise] " << what << "\n";
  }

  const SupervisorOptions& opt_;
  SupervisorReport report_;
  int target_workers_ = 1;
  int resource_failure_streak_ = 0;

  LocalTransport local_transport_;  ///< classic single-host path
  std::optional<Fleet> fleet_;      ///< engaged by --hosts / --hosts-file

  std::deque<Task> ready_;
  std::vector<Task> waiting_;
  std::vector<Worker> active_;
  std::vector<Completed> completed_;
  std::vector<std::uint64_t> aborted_;
};

}  // namespace

Expected<SupervisorReport> supervise(const SupervisorOptions& opt) {
  return Supervisor(opt).run();
}

}  // namespace dnnfi::fault
