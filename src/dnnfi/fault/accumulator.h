// Streaming campaign aggregation. An OutcomeAccumulator folds TrialRecords
// into bounded-memory online aggregates — outcome counters, detection and
// bit-direction joints, propagation sums, per-block distance sums — so a
// campaign's memory footprint is flat in trial count, and shards can be
// checkpointed, merged, and compared bit-for-bit.
//
// The merge is *exactly* associative and commutative: integer counters
// trivially, floating-point sums via ExactSum. Any partition of the same
// trial set (one process, k shards, resumed-after-kill) therefore produces
// byte-identical serialized state. That invariant is what the determinism
// test suite locks down.
#pragma once

#include <cstdint>
#include <vector>

#include "dnnfi/common/exact_sum.h"
#include "dnnfi/common/serial.h"
#include "dnnfi/dnn/fault_hooks.h"
#include "dnnfi/fault/descriptor.h"
#include "dnnfi/fault/outcome.h"

namespace dnnfi::fault {

/// Result of a single trial.
struct TrialRecord {
  FaultDescriptor fault;
  Outcome outcome;
  dnn::InjectionRecord record;
  std::size_t input_index = 0;
  bool detected = false;
  /// Fraction of elements of the final block-end activation whose bit
  /// patterns differ from golden (Table 5's propagation metric).
  double output_corruption = 0;
  /// Per-block Euclidean distance to golden (empty unless requested).
  std::vector<double> block_distance;
};

/// Bounded-memory online aggregates over a stream of TrialRecords.
class OutcomeAccumulator {
 public:
  OutcomeAccumulator() = default;
  /// Pre-sizes the per-block distance slots (one per logical layer).
  explicit OutcomeAccumulator(std::size_t num_blocks) : blocks_(num_blocks) {}

  /// Folds one trial in. Thread-compatible, not thread-safe: keep one
  /// accumulator per worker and merge.
  void add(const TrialRecord& t);

  /// Exact associative merge; block slots grow to the larger *observed*
  /// operand. Merging a zero-trial accumulator is a strict identity — its
  /// pre-sized (but unobserved) block slots never leak into the target's
  /// serialized state.
  void merge(const OutcomeAccumulator& o);

  std::uint64_t trials() const noexcept { return n_; }
  std::size_t num_blocks() const noexcept { return blocks_.size(); }

  // SDC criteria (Wilson 95% intervals; zero-width when empty).
  Estimate sdc1() const { return wilson(sdc1_, n_); }
  Estimate sdc5() const { return wilson(sdc5_, n_); }
  Estimate sdc10() const { return wilson(sdc10_, n_); }
  Estimate sdc20() const { return wilson(sdc20_, n_); }

  // Detection (SED) aggregates.
  Estimate detected() const { return wilson(detected_, n_); }
  /// P(detected AND SDC-1) over all trials — the "caught" rate.
  Estimate detected_and_sdc1() const { return wilson(detected_sdc1_, n_); }
  /// Recall: P(detected | SDC-1).
  Estimate detected_given_sdc1() const { return wilson(detected_sdc1_, sdc1_); }
  std::uint64_t detections() const noexcept { return detected_; }
  std::uint64_t sdc1_count() const noexcept { return sdc1_; }
  std::uint64_t benign_flagged() const noexcept {
    return detected_ - detected_sdc1_;
  }

  // Propagation (Table 5) aggregates.
  /// P(fault reaches the final block-end activation).
  Estimate reached_output() const { return wilson(reached_, n_); }
  /// Mean output corruption over reaching trials (0 when none reached).
  double mean_output_corruption_reached() const;

  // Bit-flip direction joints (Fig 4).
  Estimate sdc1_given_zero_to_one() const { return wilson(z2o_sdc1_, z2o_); }
  Estimate sdc1_given_one_to_zero() const {
    return wilson(sdc1_ - z2o_sdc1_, n_ - z2o_);
  }

  // Per-block distance aggregates (Fig 7). A trial contributes to block b
  // as "live" when its recorded distance is finite and > 0, else "masked"
  // (identical to the paper-bench bucketing of fully-masked trials).
  std::uint64_t block_live(std::size_t b) const { return blocks_.at(b).live; }
  std::uint64_t block_masked(std::size_t b) const {
    return blocks_.at(b).masked;
  }
  /// Sum of live distances for block b (exact).
  double block_distance_sum(std::size_t b) const {
    return blocks_.at(b).dist.value();
  }
  /// Mean log10 distance over live trials (the Fig 7 geometric mean's
  /// exponent); 0 when no trial is live.
  double block_log10_mean(std::size_t b) const;

  /// Canonical byte serialization. Equal aggregate state always produces
  /// equal bytes, so tests compare shard unions against monolithic runs by
  /// comparing `bytes()`.
  void serialize(ByteWriter& w) const;
  static OutcomeAccumulator deserialize(ByteReader& r);
  std::vector<std::uint8_t> bytes() const;

 private:
  struct BlockAgg {
    std::uint64_t live = 0;    ///< distance finite and > 0
    std::uint64_t masked = 0;  ///< distance 0 or non-finite
    ExactSum dist;             ///< sum of live distances
    ExactSum log10_dist;       ///< sum of log10(live distances)
  };

  std::uint64_t n_ = 0;
  std::uint64_t sdc1_ = 0, sdc5_ = 0, sdc10_ = 0, sdc20_ = 0;
  std::uint64_t detected_ = 0, detected_sdc1_ = 0;
  std::uint64_t reached_ = 0;
  std::uint64_t z2o_ = 0, z2o_sdc1_ = 0;
  ExactSum corruption_;  ///< sum of output_corruption over all trials
  std::vector<BlockAgg> blocks_;
};

}  // namespace dnnfi::fault
