// Procedurally generated, deterministic image-classification datasets.
//
// The paper evaluates on CIFAR-10 (ConvNet) and ImageNet (AlexNet, CaffeNet,
// NiN) with BVLC pre-trained weights; neither dataset nor weights can be
// bundled here, so we substitute synthetic datasets with the properties that
// matter for error-propagation study: multi-class images with spatial
// structure learnable by convolutions, producing trained networks whose
// activations cluster near zero (see DESIGN.md §1).
//
//  * ShapesDataset  — 10 classes of geometric figures, 3x32x32  (CIFAR-10 stand-in)
//  * TexturesDataset — 100 classes of oriented sinusoid textures, 3x48x48
//                      (ImageNet stand-in)
//
// Every sample is a pure function of (dataset seed, index): datasets need no
// storage, any index is O(image) to produce, and train/test splits are just
// index ranges.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "dnnfi/tensor/tensor.h"

namespace dnnfi::data {

/// One labeled image. Pixel values are roughly in [-1, 1].
struct Sample {
  tensor::Tensor<float> image;
  std::size_t label = 0;
};

/// Deterministic random-access dataset interface.
class Dataset {
 public:
  virtual ~Dataset() = default;
  virtual std::string name() const = 0;
  virtual std::size_t num_classes() const = 0;
  virtual tensor::Shape image_shape() const = 0;
  /// Produces sample `index`; identical calls return identical samples.
  virtual Sample sample(std::uint64_t index) const = 0;
  /// Human-readable class label.
  virtual std::string class_name(std::size_t label) const = 0;
};

/// 10 geometric shape classes on noisy backgrounds, 3x32x32.
class ShapesDataset final : public Dataset {
 public:
  explicit ShapesDataset(std::uint64_t seed) : seed_(seed) {}
  std::string name() const override { return "shapes10"; }
  std::size_t num_classes() const override { return 10; }
  tensor::Shape image_shape() const override { return tensor::chw(3, 32, 32); }
  Sample sample(std::uint64_t index) const override;
  std::string class_name(std::size_t label) const override;

 private:
  std::uint64_t seed_;
};

/// 100 oriented-sinusoid texture classes, 3x48x48. Class id encodes
/// (spatial frequency, orientation) on a 5x20 grid.
class TexturesDataset final : public Dataset {
 public:
  explicit TexturesDataset(std::uint64_t seed) : seed_(seed) {}
  std::string name() const override { return "textures100"; }
  std::size_t num_classes() const override { return 100; }
  tensor::Shape image_shape() const override { return tensor::chw(3, 48, 48); }
  Sample sample(std::uint64_t index) const override;
  std::string class_name(std::size_t label) const override;

 private:
  std::uint64_t seed_;
};

}  // namespace dnnfi::data
