#include "dnnfi/data/pretrain.h"

#include <chrono>
#include <filesystem>
#include <iostream>
#include <thread>

#include "dnnfi/common/env.h"
#include "dnnfi/dnn/weights.h"

namespace dnnfi::data {

using dnn::zoo::NetworkId;

std::unique_ptr<Dataset> dataset_for(NetworkId id) {
  if (id == NetworkId::kConvNet)
    return std::make_unique<ShapesDataset>(kDatasetSeed);
  return std::make_unique<TexturesDataset>(kDatasetSeed);
}

dnn::TrainConfig train_config_for(NetworkId id) {
  dnn::TrainConfig cfg;
  cfg.seed = 7;
  switch (id) {
    case NetworkId::kConvNet:
      cfg.epochs = 4;
      cfg.train_count = 2000;
      cfg.learning_rate = 0.02;
      break;
    case NetworkId::kAlexNetS:
    case NetworkId::kCaffeNetS:
      cfg.epochs = 5;
      cfg.train_count = 3000;
      cfg.learning_rate = 0.02;
      break;
    case NetworkId::kNiNS:
      cfg.epochs = 5;
      cfg.train_count = 3000;
      cfg.learning_rate = 0.015;
      break;
  }
  return cfg;
}

dnn::ExampleSource example_source(const Dataset& ds) {
  return [&ds](std::uint64_t i) {
    Sample s = ds.sample(i);
    return dnn::Example{std::move(s.image), s.label};
  };
}

dnn::Model pretrained(NetworkId id, bool verbose) {
  const std::string dir = model_dir();
  const std::string path = dir + "/" + dnn::zoo::model_filename(id);
  // Two read attempts: a sibling process may be mid-save (save_model
  // publishes via tmp+rename, but slow shared filesystems can still
  // surface transient truncation), so one failed read earns a short pause
  // and a re-read before the expensive retrain fallback.
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (!dnn::is_model_file(path)) break;
    try {
      dnn::Model m = dnn::load_model(path);
      // Guard against stale caches: the spec on disk must match the code.
      if (m.spec == dnn::zoo::network_spec(id)) return m;
      std::cerr << "[dnnfi] cached model " << path
                << " does not match current topology; retraining\n";
      break;
    } catch (const std::exception& e) {
      // A magic match with a corrupt body (truncated copy, bad transfer)
      // must degrade to a deterministic retrain, not take the process down.
      if (attempt == 0) {
        std::cerr << "[dnnfi] cached model " << path << " is unreadable ("
                  << e.what() << "); retrying read once\n";
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      } else {
        std::cerr << "[dnnfi] cached model " << path << " is unreadable ("
                  << e.what() << "); retraining\n";
      }
    }
  }

  const auto ds = dataset_for(id);
  dnn::TrainConfig cfg = train_config_for(id);
  cfg.verbose = verbose;

  dnn::Model m;
  m.spec = dnn::zoo::network_spec(id);
  dnn::Network<float> net(m.spec);
  dnn::init_weights(net, cfg.seed);
  // Hold out the test split by construction: training indices are
  // [0, train_count), far below kTestSplitBegin.
  dnn::train(net, example_source(*ds), cfg);
  m.blob = dnn::extract_weights(net);

  std::filesystem::create_directories(dir);
  dnn::save_model(path, m.spec, m.blob);
  return m;
}

double test_accuracy(const dnn::Model& model, std::size_t count) {
  dnn::Network<float> net = dnn::instantiate<float>(model.spec, model.blob);
  NetworkId id = NetworkId::kConvNet;
  for (const auto candidate : dnn::zoo::kAllNetworks) {
    if (dnn::zoo::network_name(candidate) == model.spec.name) id = candidate;
  }
  const auto ds = dataset_for(id);
  const auto r = dnn::evaluate(net, example_source(*ds), kTestSplitBegin, count);
  return r.accuracy;
}

}  // namespace dnnfi::data
