#include "dnnfi/data/datasets.h"

#include <array>
#include <cmath>

#include "dnnfi/common/rng.h"

namespace dnnfi::data {

namespace {

constexpr double kPi = 3.14159265358979323846;

/// Per-channel foreground color with moderate brightness, from rng.
std::array<double, 3> random_color(Rng& rng) {
  return {0.4 + 0.6 * rng.uniform(), 0.4 + 0.6 * rng.uniform(),
          0.4 + 0.6 * rng.uniform()};
}

void add_noise(tensor::Tensor<float>& img, Rng& rng, double sigma) {
  for (std::size_t i = 0; i < img.size(); ++i)
    img[i] += static_cast<float>(rng.normal() * sigma);
}

}  // namespace

std::string ShapesDataset::class_name(std::size_t label) const {
  static constexpr std::array<const char*, 10> kNames = {
      "circle", "square",   "cross",    "h-stripes", "v-stripes",
      "diag",   "ring",     "triangle", "dots",      "blob"};
  DNNFI_EXPECTS(label < kNames.size());
  return kNames[label];
}

Sample ShapesDataset::sample(std::uint64_t index) const {
  Rng rng = derive_stream(seed_, index);
  const std::size_t label = static_cast<std::size_t>(index % num_classes());

  Sample s;
  s.label = label;
  s.image = tensor::Tensor<float>(image_shape());
  s.image.fill(-0.5F);  // dark background

  const double cx = 16.0 + static_cast<double>(rng.between(-4, 4));
  const double cy = 16.0 + static_cast<double>(rng.between(-4, 4));
  const double r = 6.0 + 4.0 * rng.uniform();
  const auto color = random_color(rng);
  const double phase = rng.uniform() * 2.0 * kPi;

  auto paint = [&](std::size_t y, std::size_t x, double intensity) {
    for (std::size_t c = 0; c < 3; ++c) {
      auto& px = s.image.at(0, c, y, x);
      px = static_cast<float>(
          std::max<double>(px, -0.5 + intensity * (0.5 + color[c])));
    }
  };

  for (std::size_t y = 0; y < 32; ++y) {
    for (std::size_t x = 0; x < 32; ++x) {
      const double dx = static_cast<double>(x) - cx;
      const double dy = static_cast<double>(y) - cy;
      const double d = std::sqrt(dx * dx + dy * dy);
      double on = 0.0;
      switch (label) {
        case 0:  // filled circle
          on = d <= r ? 1.0 : 0.0;
          break;
        case 1:  // filled square
          on = (std::abs(dx) <= r * 0.8 && std::abs(dy) <= r * 0.8) ? 1.0 : 0.0;
          break;
        case 2:  // cross
          on = ((std::abs(dx) <= 2.0 && std::abs(dy) <= r) ||
                (std::abs(dy) <= 2.0 && std::abs(dx) <= r))
                   ? 1.0
                   : 0.0;
          break;
        case 3:  // horizontal stripes
          on = (std::sin(static_cast<double>(y) * kPi / 3.0 + phase) > 0.2) ? 1.0 : 0.0;
          break;
        case 4:  // vertical stripes
          on = (std::sin(static_cast<double>(x) * kPi / 3.0 + phase) > 0.2) ? 1.0 : 0.0;
          break;
        case 5:  // diagonal stripes
          on = (std::sin((dx + dy) * kPi / 4.0 + phase) > 0.2) ? 1.0 : 0.0;
          break;
        case 6:  // ring
          on = (std::abs(d - r) <= 1.8) ? 1.0 : 0.0;
          break;
        case 7:  // triangle (upward)
          on = (dy >= -r && dy <= r && std::abs(dx) <= (dy + r) * 0.6) ? 1.0 : 0.0;
          break;
        case 8:  // dot lattice
          on = (std::fmod(static_cast<double>(x) + 2.0, 6.0) < 2.5 &&
                std::fmod(static_cast<double>(y) + 2.0, 6.0) < 2.5)
                   ? 1.0
                   : 0.0;
          break;
        case 9:  // soft radial blob
          on = std::exp(-d * d / (r * r));
          break;
        default:
          break;
      }
      if (on > 0.0) paint(y, x, on);
    }
  }
  add_noise(s.image, rng, 0.08);
  return s;
}

std::string TexturesDataset::class_name(std::size_t label) const {
  DNNFI_EXPECTS(label < 100);
  const auto f = label / 20;
  const auto o = label % 20;
  return "tex-f" + std::to_string(f + 2) + "-o" + std::to_string(o);
}

Sample TexturesDataset::sample(std::uint64_t index) const {
  Rng rng = derive_stream(seed_ ^ 0x7E57DA7AULL, index);
  const std::size_t label = static_cast<std::size_t>(index % num_classes());
  const double freq = 2.0 + static_cast<double>(label / 20);          // 2..6
  const double theta = kPi * static_cast<double>(label % 20) / 20.0;  // 0..171 deg

  Sample s;
  s.label = label;
  s.image = tensor::Tensor<float>(image_shape());

  const double phase = rng.uniform() * 2.0 * kPi;
  const double ct = std::cos(theta);
  const double st = std::sin(theta);
  // Fixed per-class channel signature so color carries class information.
  const std::array<double, 3> chan_gain = {
      0.6 + 0.4 * std::cos(2.0 * kPi * static_cast<double>(label) / 7.0),
      0.6 + 0.4 * std::cos(2.0 * kPi * static_cast<double>(label) / 11.0),
      0.6 + 0.4 * std::cos(2.0 * kPi * static_cast<double>(label) / 13.0)};

  const double scale = 2.0 * kPi * freq / 48.0;
  for (std::size_t y = 0; y < 48; ++y) {
    for (std::size_t x = 0; x < 48; ++x) {
      const double u =
          (static_cast<double>(x) * ct + static_cast<double>(y) * st) * scale;
      const double v = std::sin(u + phase);
      for (std::size_t c = 0; c < 3; ++c)
        s.image.at(0, c, y, x) = static_cast<float>(v * chan_gain[c]);
    }
  }
  add_noise(s.image, rng, 0.10);
  return s;
}

}  // namespace dnnfi::data
