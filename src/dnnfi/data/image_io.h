// Minimal binary PPM (P6) image IO, used by examples to dump the inputs and
// misclassifications they discuss. Pixel values are mapped from the dataset
// range [-1, 1] to [0, 255].
#pragma once

#include <string>

#include "dnnfi/tensor/tensor.h"

namespace dnnfi::data {

/// Writes a 3xHxW float tensor (values ~[-1,1]) as a binary PPM file.
/// Throws std::runtime_error on IO failure.
void write_ppm(const std::string& path, const tensor::Tensor<float>& image);

/// Reads a binary PPM into a 3xHxW float tensor in [-1,1].
/// Throws std::runtime_error on IO/format failure.
tensor::Tensor<float> read_ppm(const std::string& path);

}  // namespace dnnfi::data
