#include "dnnfi/data/image_io.h"

#include <algorithm>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace dnnfi::data {

void write_ppm(const std::string& path, const tensor::Tensor<float>& image) {
  const auto& s = image.shape();
  if (s.c != 3) throw std::runtime_error("write_ppm: need 3 channels");
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("write_ppm: cannot open " + path);
  os << "P6\n" << s.w << ' ' << s.h << "\n255\n";
  std::vector<unsigned char> row(s.w * 3);
  for (std::size_t y = 0; y < s.h; ++y) {
    for (std::size_t x = 0; x < s.w; ++x) {
      for (std::size_t c = 0; c < 3; ++c) {
        const double v = (static_cast<double>(image.at(0, c, y, x)) + 1.0) * 127.5;
        row[x * 3 + c] =
            static_cast<unsigned char>(std::clamp(v, 0.0, 255.0));
      }
    }
    os.write(reinterpret_cast<const char*>(row.data()),
             static_cast<std::streamsize>(row.size()));
  }
  if (!os) throw std::runtime_error("write_ppm: write failed " + path);
}

tensor::Tensor<float> read_ppm(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("read_ppm: cannot open " + path);
  std::string magic;
  is >> magic;
  if (magic != "P6") throw std::runtime_error("read_ppm: not a P6 PPM");
  std::size_t w = 0, h = 0, maxv = 0;
  is >> w >> h >> maxv;
  if (!is || w == 0 || h == 0 || maxv == 0 || maxv > 255)
    throw std::runtime_error("read_ppm: bad header");
  is.get();  // single whitespace after header
  std::vector<unsigned char> raw(w * h * 3);
  is.read(reinterpret_cast<char*>(raw.data()),
          static_cast<std::streamsize>(raw.size()));
  if (!is) throw std::runtime_error("read_ppm: truncated pixel data");
  tensor::Tensor<float> img(tensor::chw(3, h, w));
  for (std::size_t y = 0; y < h; ++y)
    for (std::size_t x = 0; x < w; ++x)
      for (std::size_t c = 0; c < 3; ++c)
        img.at(0, c, y, x) = static_cast<float>(
            static_cast<double>(raw[(y * w + x) * 3 + c]) / 127.5 - 1.0);
  return img;
}

}  // namespace dnnfi::data
