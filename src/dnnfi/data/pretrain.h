// Pretrained-model cache: binds each zoo network to its dataset, trains it
// once (deterministically) if no cached model file exists, and hands out the
// spec + float weights that every experiment instantiates from.
#pragma once

#include <memory>

#include "dnnfi/data/datasets.h"
#include "dnnfi/dnn/serialize.h"
#include "dnnfi/dnn/train.h"
#include "dnnfi/dnn/zoo.h"

namespace dnnfi::data {

/// Dataset seed used for all pretraining and all golden inputs. Train and
/// test examples are disjoint index ranges of the same generator.
inline constexpr std::uint64_t kDatasetSeed = 20170612;

/// Index where the held-out test split starts (train uses [0, this)).
inline constexpr std::uint64_t kTestSplitBegin = 1u << 20;

/// The dataset each paper network runs on.
std::unique_ptr<Dataset> dataset_for(dnn::zoo::NetworkId id);

/// Training recipe for `id` (epochs/count tuned per network).
dnn::TrainConfig train_config_for(dnn::zoo::NetworkId id);

/// An ExampleSource view over a dataset.
dnn::ExampleSource example_source(const Dataset& ds);

/// Returns the trained model for `id`, loading it from
/// `<model_dir>/<name>.dnnfi` when present, otherwise training it (can take
/// minutes) and saving it there. Thread-compatible: call from one thread.
dnn::Model pretrained(dnn::zoo::NetworkId id, bool verbose = false);

/// Top-1 accuracy of a model on `count` held-out test examples.
double test_accuracy(const dnn::Model& model, std::size_t count = 200);

}  // namespace dnnfi::data
