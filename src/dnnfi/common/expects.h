// Lightweight contract checking in the spirit of the C++ Core Guidelines
// (I.6 "Prefer Expects()", I.8 "Prefer Ensures()"). Violations throw so that
// tests can assert on them; release builds keep the checks because this
// library's correctness claims (bit-exact injection) depend on them.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace dnnfi {

/// Thrown when a precondition, postcondition, or invariant is violated.
class ContractViolation : public std::logic_error {
 public:
  ContractViolation(const char* kind, const char* expr,
                    const std::source_location& loc)
      : std::logic_error(std::string(kind) + " violated: `" + expr + "` at " +
                         loc.file_name() + ":" + std::to_string(loc.line()) +
                         " in " + loc.function_name()) {}
};

namespace detail {
constexpr void contract_check(bool ok, const char* kind, const char* expr,
                              const std::source_location& loc) {
  // A failed check in a constant-evaluated context fails compilation (throw
  // is not a constant expression); at runtime it throws.
  if (!ok) throw ContractViolation(kind, expr, loc);
}
}  // namespace detail

}  // namespace dnnfi

/// Precondition check: throws dnnfi::ContractViolation when `cond` is false.
#define DNNFI_EXPECTS(cond)                                 \
  ::dnnfi::detail::contract_check(static_cast<bool>(cond), \
                                  "Precondition", #cond,   \
                                  ::std::source_location::current())

/// Postcondition check: throws dnnfi::ContractViolation when `cond` is false.
#define DNNFI_ENSURES(cond)                                 \
  ::dnnfi::detail::contract_check(static_cast<bool>(cond), \
                                  "Postcondition", #cond,  \
                                  ::std::source_location::current())
