// Aligned text-table and CSV emission. Every bench binary prints its paper
// table/figure series through this so output formatting stays uniform.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace dnnfi {

/// A simple column-aligned table with a title, header row, and string cells.
/// Numeric helpers format with fixed precision. Render as padded text or CSV.
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  /// Sets the header row. Must be called before any `row`.
  Table& header(std::vector<std::string> names);

  /// Appends a row; must match the header width.
  Table& row(std::vector<std::string> cells);

  /// Formats a double with `digits` fractional digits.
  static std::string num(double v, int digits = 3);
  /// Formats "p% ± ci%" given probabilities in [0,1].
  static std::string pct_ci(double p, double ci, int digits = 2);
  /// Formats a probability in [0,1] as a percentage.
  static std::string pct(double p, int digits = 2);

  std::size_t rows() const noexcept { return rows_.size(); }
  const std::string& title() const noexcept { return title_; }

  /// Renders an aligned text table.
  std::string to_text() const;
  /// Renders RFC-4180-ish CSV (fields quoted when they contain separators).
  std::string to_csv() const;

  /// Prints the text rendering to `os` followed by a blank line.
  void print(std::ostream& os) const;

  /// Writes the CSV rendering to `<dir>/<stem>.csv`; creates `dir` if needed.
  /// Returns the path written.
  std::string write_csv(const std::string& dir, const std::string& stem) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dnnfi
