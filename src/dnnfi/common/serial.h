// Minimal byte-level serialization for shard state: a bounds-checked
// little-endian writer/reader pair plus CRC-32 and a 64-bit fingerprint
// fold. Checkpoint files written on one machine must parse (or fail
// loudly) on any other, so everything is explicit-width and endianness-
// normalized; no struct is ever memcpy'd wholesale.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "dnnfi/common/rng.h"  // splitmix64 for fingerprint64

namespace dnnfi {

/// Thrown when serialized bytes are truncated or structurally invalid.
/// Deliberately distinct from ContractViolation: a bad byte stream is an
/// input error (corrupt file, version skew), not a programming bug.
class SerialError : public std::runtime_error {
 public:
  explicit SerialError(const std::string& what) : std::runtime_error(what) {}
};

/// Appends fixed-width little-endian values to a growable byte buffer.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  /// Doubles travel as their IEEE-754 bit pattern: bit-exact round trips.
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void str(std::string_view s) {
    u64(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  void raw(const std::uint8_t* p, std::size_t n) { buf_.insert(buf_.end(), p, p + n); }

  const std::vector<std::uint8_t>& bytes() const noexcept { return buf_; }
  std::vector<std::uint8_t> take() noexcept { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Reads fixed-width little-endian values; every access is bounds-checked
/// and throws SerialError (never UB) on truncated input.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<std::uint8_t>& b)
      : ByteReader(b.data(), b.size()) {}

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_ + static_cast<std::size_t>(i)]) << (8 * i);
    pos_ += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(i)]) << (8 * i);
    pos_ += 8;
    return v;
  }
  double f64() { return std::bit_cast<double>(u64()); }
  std::string str() {
    const std::uint64_t n = u64();
    need(n);
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  std::size_t remaining() const noexcept { return size_ - pos_; }
  bool done() const noexcept { return pos_ == size_; }

 private:
  void need(std::uint64_t n) const {
    if (n > size_ - pos_)
      throw SerialError("truncated stream: need " + std::to_string(n) +
                        " bytes at offset " + std::to_string(pos_) +
                        ", only " + std::to_string(size_ - pos_) + " left");
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// CRC-32 (IEEE 802.3 polynomial, reflected). Bitwise implementation —
/// checkpoint payloads are kilobytes, table lookups buy nothing here.
constexpr std::uint32_t crc32(const std::uint8_t* data, std::size_t size,
                              std::uint32_t seed = 0) noexcept {
  std::uint32_t crc = ~seed;
  for (std::size_t i = 0; i < size; ++i) {
    crc ^= data[i];
    for (int b = 0; b < 8; ++b)
      crc = (crc >> 1) ^ (0xEDB88320U & (0U - (crc & 1U)));
  }
  return ~crc;
}

inline std::uint32_t crc32(const std::vector<std::uint8_t>& b) noexcept {
  return crc32(b.data(), b.size());
}

/// Order-sensitive 64-bit fold of a byte string (SplitMix64 over a running
/// state). Used to fingerprint campaign configurations so a checkpoint
/// refuses to resume under different options.
constexpr std::uint64_t fingerprint64(const std::uint8_t* data,
                                      std::size_t size) noexcept {
  std::uint64_t state = 0x5DF1EB57C0FFEE42ULL;
  for (std::size_t i = 0; i < size; ++i) {
    state ^= data[i];
    state = splitmix64(state);
  }
  return splitmix64(state);
}

}  // namespace dnnfi
