// Environment-variable configuration knobs shared by benches and tools.
#pragma once

#include <cstddef>
#include <optional>
#include <string>

namespace dnnfi {

/// Reads an environment variable; empty optional when unset or empty.
std::optional<std::string> env_string(const char* name);

/// Reads a non-negative integer environment variable, or `fallback` when the
/// variable is unset or unparsable.
std::size_t env_size(const char* name, std::size_t fallback);

/// Injections per campaign cell. Controlled by DNNFI_SAMPLES; the paper used
/// 3,000 per latch/component. The default here is sized for a single-core
/// machine; raise it for tighter confidence intervals.
std::size_t default_samples(std::size_t fallback = 300);

/// Directory where pretrained model files are cached (DNNFI_MODEL_DIR,
/// default "models").
std::string model_dir();

}  // namespace dnnfi
