// Structured error taxonomy for fallible I/O and process orchestration.
//
// The library's contract checks (expects.h) cover programming errors; this
// header covers *environmental* failures — torn files, full disks, crashed
// subprocesses — that a caller may want to retry, degrade around, or give
// up on. Every failure carries an Errc, and the one question supervisors
// ask ("is this worth retrying?") is answered by retryable(code) instead of
// by string-matching exception messages.
//
// The taxonomy doubles as the process-boundary protocol: exit_code(code)
// maps an Errc onto a dnnfi_campaign exit status and errc_from_exit() maps
// it back, so a supervisor can classify a dead worker from waitpid() alone.
// Exit codes 0-4 keep their historical CLI meanings; retryable failures
// live in [10, 20) and fatal ones in [20, 30).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

#include "dnnfi/common/expects.h"

namespace dnnfi {

/// Failure classes, split by how a supervisor should react.
enum class Errc : std::uint8_t {
  kOk = 0,
  // Retryable: transient by nature; back off and try again.
  kIo,                   ///< open/read/write/rename failure, disk full, ...
  kOutOfMemory,          ///< allocation failure (also triggers degradation)
  kTimeout,              ///< wall-clock or heartbeat deadline exceeded
  kWorkerCrash,          ///< subprocess died on a signal or unknown status
  kInterrupted,          ///< clean SIGINT/SIGTERM shutdown mid-run
  kTransport,            ///< worker channel damaged (frame CRC, broken pipe,
                         ///< ssh connection loss); retry on a healthy host
  kCheckpointShip,       ///< shipped checkpoint failed validation or could
                         ///< not be landed; the next attempt re-ships
  // Fatal: deterministic; retrying reproduces the same failure.
  kCorruptData,          ///< CRC mismatch, truncation, bad magic
  kVersionSkew,          ///< file format version this build does not read
  kFingerprintMismatch,  ///< checkpoint from a different campaign config
  kShardMismatch,        ///< checkpoint covers a different trial range
  kInvalidArgument,      ///< unusable options (usage errors)
  kQuarantineOverflow,   ///< more poison trials than the configured cap
  kNoHosts,              ///< the fleet has zero remaining hosts with work
                         ///< still pending (every host left via --hosts-file)
  kInternal,             ///< unclassified (treated as retryable once)
};

/// True for failures a supervisor should retry with backoff; false for
/// deterministic ones where a retry would only reproduce the failure.
constexpr bool retryable(Errc c) noexcept {
  switch (c) {
    case Errc::kIo:
    case Errc::kOutOfMemory:
    case Errc::kTimeout:
    case Errc::kWorkerCrash:
    case Errc::kInterrupted:
    case Errc::kTransport:
    case Errc::kCheckpointShip:
    case Errc::kInternal:
      return true;
    case Errc::kOk:
    case Errc::kCorruptData:
    case Errc::kVersionSkew:
    case Errc::kFingerprintMismatch:
    case Errc::kShardMismatch:
    case Errc::kInvalidArgument:
    case Errc::kQuarantineOverflow:
    case Errc::kNoHosts:
      return false;
  }
  return false;
}

constexpr std::string_view errc_name(Errc c) noexcept {
  switch (c) {
    case Errc::kOk: return "ok";
    case Errc::kIo: return "io";
    case Errc::kOutOfMemory: return "out-of-memory";
    case Errc::kTimeout: return "timeout";
    case Errc::kWorkerCrash: return "worker-crash";
    case Errc::kInterrupted: return "interrupted";
    case Errc::kTransport: return "transport";
    case Errc::kCheckpointShip: return "checkpoint-ship";
    case Errc::kCorruptData: return "corrupt-data";
    case Errc::kVersionSkew: return "version-skew";
    case Errc::kFingerprintMismatch: return "fingerprint-mismatch";
    case Errc::kShardMismatch: return "shard-mismatch";
    case Errc::kInvalidArgument: return "invalid-argument";
    case Errc::kQuarantineOverflow: return "quarantine-overflow";
    case Errc::kNoHosts: return "no-hosts";
    case Errc::kInternal: return "internal";
  }
  return "internal";
}

/// Process exit status for an Errc (the dnnfi_campaign contract).
/// 0 ok · 2 usage · 4 interrupted · [10,20) retryable · [20,30) fatal.
/// 1 (unclassified), 3 (stopped via --stop-after) and 127 (exec failure)
/// are produced elsewhere but understood by errc_from_exit().
constexpr int exit_code(Errc c) noexcept {
  switch (c) {
    case Errc::kOk: return 0;
    case Errc::kInvalidArgument: return 2;
    case Errc::kInterrupted: return 4;
    case Errc::kIo: return 10;
    case Errc::kOutOfMemory: return 11;
    case Errc::kTimeout: return 12;
    case Errc::kWorkerCrash: return 13;
    case Errc::kTransport: return 14;
    case Errc::kCheckpointShip: return 15;
    case Errc::kCorruptData: return 20;
    case Errc::kVersionSkew: return 21;
    case Errc::kFingerprintMismatch: return 22;
    case Errc::kShardMismatch: return 23;
    case Errc::kQuarantineOverflow: return 24;
    case Errc::kNoHosts: return 25;
    case Errc::kInternal: return 1;
  }
  return 1;
}

/// Inverse of exit_code() for classifying a reaped worker. Unknown codes
/// (including plain exit(1)) map to kInternal, which is retryable-once by
/// policy: a transient crash retries, a deterministic one gets bisected.
constexpr Errc errc_from_exit(int status) noexcept {
  switch (status) {
    case 0: return Errc::kOk;
    case 2: return Errc::kInvalidArgument;
    case 4: return Errc::kInterrupted;
    case 10: return Errc::kIo;
    case 11: return Errc::kOutOfMemory;
    case 12: return Errc::kTimeout;
    case 13: return Errc::kWorkerCrash;
    case 14: return Errc::kTransport;
    case 15: return Errc::kCheckpointShip;
    case 20: return Errc::kCorruptData;
    case 21: return Errc::kVersionSkew;
    case 22: return Errc::kFingerprintMismatch;
    case 23: return Errc::kShardMismatch;
    case 24: return Errc::kQuarantineOverflow;
    case 25: return Errc::kNoHosts;
    default: return Errc::kInternal;
  }
}

/// A classified failure: code for dispatch, message for humans.
struct Error {
  Errc code = Errc::kInternal;
  std::string message;

  bool retryable() const noexcept { return dnnfi::retryable(code); }
  std::string_view name() const noexcept { return errc_name(code); }
  /// "io: cannot open foo.stats for writing"
  std::string to_string() const {
    return std::string(name()) + ": " + message;
  }
};

/// Result-or-Error. The poor man's std::expected (this codebase targets
/// C++20): implicit construction from either side, [[nodiscard]] so a
/// fallible call cannot be silently dropped, and contract-checked access
/// so reading the wrong side is a loud ContractViolation, not UB.
template <typename T>
class [[nodiscard]] Expected {
 public:
  Expected(T value) : v_(std::in_place_index<0>, std::move(value)) {}
  Expected(Error error) : v_(std::in_place_index<1>, std::move(error)) {}

  bool ok() const noexcept { return v_.index() == 0; }
  explicit operator bool() const noexcept { return ok(); }

  T& value() & {
    DNNFI_EXPECTS(ok());
    return std::get<0>(v_);
  }
  const T& value() const& {
    DNNFI_EXPECTS(ok());
    return std::get<0>(v_);
  }
  T&& value() && {
    DNNFI_EXPECTS(ok());
    return std::get<0>(std::move(v_));
  }
  T value_or(T fallback) const {
    return ok() ? std::get<0>(v_) : std::move(fallback);
  }

  const Error& error() const {
    DNNFI_EXPECTS(!ok());
    return std::get<1>(v_);
  }

 private:
  std::variant<T, Error> v_;
};

/// Success-or-Error for operations with no payload (writes, renames).
template <>
class [[nodiscard]] Expected<void> {
 public:
  Expected() = default;
  Expected(Error error) : err_(std::move(error)) {}

  bool ok() const noexcept { return !err_.has_value(); }
  explicit operator bool() const noexcept { return ok(); }

  const Error& error() const {
    DNNFI_EXPECTS(!ok());
    return *err_;
  }

 private:
  std::optional<Error> err_;
};

/// Shorthand for the failure arm: `return fail(Errc::kIo, "cannot open X")`.
inline Error fail(Errc code, std::string message) {
  return Error{code, std::move(message)};
}

}  // namespace dnnfi
