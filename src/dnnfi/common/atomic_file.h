// Atomic whole-file writes: contents land in a sibling ".tmp" file first
// and are renamed into place, so readers never observe a torn file and a
// crash mid-write leaves the previous version intact (the same discipline
// fault/checkpoint.cpp uses for shard state). rename(2) is atomic within a
// filesystem; callers must keep the final path and its tmp sibling on one.
#pragma once

#include <filesystem>
#include <fstream>
#include <string>
#include <string_view>
#include <system_error>

#include "dnnfi/common/error.h"

namespace dnnfi {

/// Writes `contents` to `path` atomically. On failure the target file is
/// untouched (a stale ".tmp" may remain; it is overwritten next attempt).
inline Expected<void> write_file_atomic(const std::string& path,
                                        std::string_view contents) {
  DNNFI_EXPECTS(!path.empty());
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out)
      return fail(Errc::kIo, "cannot open " + tmp + " for writing");
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size()));
    out.flush();
    if (!out) return fail(Errc::kIo, "short write to " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec)
    return fail(Errc::kIo,
                "rename " + tmp + " -> " + path + " failed: " + ec.message());
  return {};
}

}  // namespace dnnfi
