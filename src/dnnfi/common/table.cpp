#include "dnnfi/common/table.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>

#include "dnnfi/common/atomic_file.h"
#include "dnnfi/common/expects.h"

namespace dnnfi {

Table& Table::header(std::vector<std::string> names) {
  DNNFI_EXPECTS(rows_.empty());
  header_ = std::move(names);
  return *this;
}

Table& Table::row(std::vector<std::string> cells) {
  DNNFI_EXPECTS(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::num(double v, int digits) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(digits);
  os << v;
  return os.str();
}

std::string Table::pct(double p, int digits) {
  return num(p * 100.0, digits) + "%";
}

std::string Table::pct_ci(double p, double ci, int digits) {
  return num(p * 100.0, digits) + "% ±" + num(ci * 100.0, digits);
}

std::string Table::to_text() const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      width[c] = std::max(width[c], r[c].size());

  auto emit_row = [&](std::ostringstream& os, const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      os << (c == 0 ? "| " : " ");
      os << r[c] << std::string(width[c] - r[c].size(), ' ') << " |";
    }
    os << '\n';
  };

  std::ostringstream os;
  os << "== " << title_ << " ==\n";
  emit_row(os, header_);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c)
    os << std::string(width[c] + 2, '-') << '|';
  os << '\n';
  for (const auto& r : rows_) emit_row(os, r);
  return os.str();
}

std::string Table::to_csv() const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      if (c) os << ',';
      os << quote(r[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

void Table::print(std::ostream& os) const { os << to_text() << '\n'; }

std::string Table::write_csv(const std::string& dir, const std::string& stem) const {
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/" + stem + ".csv";
  const auto written = write_file_atomic(path, to_csv());
  DNNFI_EXPECTS(written.ok());
  return path;
}

}  // namespace dnnfi
