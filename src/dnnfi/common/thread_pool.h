// A small, dependency-free thread pool plus parallel_for. Campaign trials
// and batch training are "embarrassingly parallel with per-task state"; the
// pool gives us deterministic work partitioning (static chunking by index,
// never work stealing), so parallel results match serial results exactly.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace dnnfi {

/// Fixed-size pool of worker threads executing enqueued tasks.
///
/// Tasks must not throw past the pool boundary: the first exception thrown by
/// any task during a `run_batch` is captured and rethrown to the caller.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers. `num_threads == 0` means
  /// "serial": tasks run inline on the calling thread.
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (0 for a serial pool).
  std::size_t size() const noexcept { return workers_.size(); }

  /// Runs all `tasks`, blocking until every one has finished. Rethrows the
  /// first captured task exception, if any.
  void run_batch(std::vector<std::function<void()>> tasks);

  /// The process-wide default pool, sized from DNNFI_THREADS or hardware
  /// concurrency. Constructed on first use.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable batch_done_;
  std::queue<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;
  std::exception_ptr first_error_;
  bool stopping_ = false;
};

/// Splits [0, count) into contiguous chunks and runs `body(begin, end)` for
/// each chunk on the given pool. Chunk boundaries depend only on `count` and
/// the pool size, never on timing, so any per-chunk state is reproducible.
void parallel_for_chunks(ThreadPool& pool, std::size_t count,
                         const std::function<void(std::size_t, std::size_t)>& body);

/// Runs `body(i)` for every i in [0, count) on the global pool.
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body);

}  // namespace dnnfi
