#include "dnnfi/common/env.h"

#include <cstdlib>

namespace dnnfi {

std::optional<std::string> env_string(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return std::nullopt;
  return std::string(v);
}

std::size_t env_size(const char* name, std::size_t fallback) {
  const auto s = env_string(name);
  if (!s) return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s->c_str(), &end, 10);
  if (end == s->c_str() || *end != '\0') return fallback;
  return static_cast<std::size_t>(v);
}

std::size_t default_samples(std::size_t fallback) {
  return env_size("DNNFI_SAMPLES", fallback);
}

std::string model_dir() {
  return env_string("DNNFI_MODEL_DIR").value_or("models");
}

}  // namespace dnnfi
