#include "dnnfi/common/thread_pool.h"

#include <algorithm>

#include "dnnfi/common/env.h"
#include "dnnfi/common/expects.h"

namespace dnnfi {

ThreadPool::ThreadPool(std::size_t num_threads) {
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      work_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    try {
      task();
    } catch (...) {
      std::lock_guard lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) batch_done_.notify_all();
    }
  }
}

void ThreadPool::run_batch(std::vector<std::function<void()>> tasks) {
  if (workers_.empty()) {
    // Serial pool: run inline, preserving exception propagation.
    for (auto& t : tasks) t();
    return;
  }
  {
    std::lock_guard lock(mutex_);
    DNNFI_EXPECTS(in_flight_ == 0);  // batches do not overlap
    first_error_ = nullptr;
    in_flight_ = tasks.size();
    for (auto& t : tasks) queue_.push(std::move(t));
  }
  work_ready_.notify_all();
  std::unique_lock lock(mutex_);
  batch_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) std::rethrow_exception(first_error_);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool = [] {
    const std::size_t hw = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    const std::size_t n = env_size("DNNFI_THREADS", hw);
    // A pool of 1 worker is strictly worse than inline execution.
    return ThreadPool(n <= 1 ? 0 : n);
  }();
  return pool;
}

void parallel_for_chunks(ThreadPool& pool, std::size_t count,
                         const std::function<void(std::size_t, std::size_t)>& body) {
  if (count == 0) return;
  const std::size_t workers = std::max<std::size_t>(1, pool.size());
  // Four chunks per worker balances load without timing-dependent splits.
  const std::size_t chunks = std::min(count, workers * 4);
  const std::size_t base = count / chunks;
  const std::size_t extra = count % chunks;
  std::vector<std::function<void()>> tasks;
  tasks.reserve(chunks);
  std::size_t begin = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t len = base + (c < extra ? 1 : 0);
    const std::size_t end = begin + len;
    tasks.emplace_back([&body, begin, end] { body(begin, end); });
    begin = end;
  }
  DNNFI_ENSURES(begin == count);
  pool.run_batch(std::move(tasks));
}

void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body) {
  parallel_for_chunks(ThreadPool::global(), count,
                      [&body](std::size_t b, std::size_t e) {
                        for (std::size_t i = b; i < e; ++i) body(i);
                      });
}

}  // namespace dnnfi
