// Deterministic, splittable random number generation.
//
// Fault-injection campaigns run trials in parallel; results must be
// bit-identical regardless of thread count or scheduling. We therefore never
// share a generator across trials: each trial derives its own stream from
// (campaign seed, trial index) via SplitMix64, and the stream itself is
// xoshiro256** (public-domain algorithm by Blackman & Vigna, re-implemented
// here so the library has zero external dependencies and stable output
// across standard libraries — std::mt19937 distributions are not portable).
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <limits>

#include "dnnfi/common/expects.h"

namespace dnnfi {

/// SplitMix64 step: maps any 64-bit state to a well-mixed 64-bit output.
/// Used for seeding and for deriving independent streams.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** pseudo-random generator. Satisfies
/// std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the generator from a single 64-bit value via SplitMix64.
  explicit constexpr Rng(std::uint64_t seed = 0x1234ABCDULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = std::rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = std::rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift rejection
  /// method for unbiased results.
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    DNNFI_EXPECTS(bound > 0);
    // Rejection loop terminates with overwhelming probability.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = (*this)();
      // 128-bit multiply-high.
      const unsigned __int128 m =
          static_cast<unsigned __int128>(r) * static_cast<unsigned __int128>(bound);
      const std::uint64_t lo = static_cast<std::uint64_t>(m);
      if (lo >= threshold) return static_cast<std::uint64_t>(m >> 64);
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  constexpr std::int64_t between(std::int64_t lo, std::int64_t hi) noexcept {
    DNNFI_EXPECTS(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
  }

  /// Standard normal variate (Box–Muller, polar form avoided to stay
  /// branch-deterministic; uses the basic form with two uniforms).
  double normal() noexcept;

  /// True with probability p.
  constexpr bool bernoulli(double p) noexcept { return uniform() < p; }

 private:
  std::array<std::uint64_t, 4> state_{};
};

inline double Rng::normal() noexcept {
  // Basic Box–Muller; cache is intentionally not kept so that the stream
  // consumption per call is fixed (2 uniforms), which keeps replay simple.
  const double u1 = uniform();
  const double u2 = uniform();
  // Guard against log(0).
  const double r = (u1 > 0.0) ? u1 : 0x1.0p-60;
  constexpr double two_pi = 6.283185307179586476925286766559;
  // sqrt(-2 ln r) * cos(2*pi*u2)
  return __builtin_sqrt(-2.0 * __builtin_log(r)) * __builtin_cos(two_pi * u2);
}

/// Derives an independent generator for (seed, stream). Two distinct stream
/// indices yield statistically independent sequences; identical inputs yield
/// identical sequences. This is the backbone of campaign determinism.
constexpr Rng derive_stream(std::uint64_t seed, std::uint64_t stream) noexcept {
  std::uint64_t sm = seed ^ (0xA5A5A5A55A5A5A5AULL + stream * 0x9E3779B97F4A7C15ULL);
  const std::uint64_t mixed = splitmix64(sm) ^ splitmix64(sm);
  return Rng(mixed);
}

/// Two-level stream derivation for (seed, stream, substream): stratified
/// campaigns key trial t of stratum h as derive_stream(seed, h, t), so a
/// stratum's trial sequence is independent of every other stratum's and of
/// how many trials any stratum ultimately receives. The stream fold uses a
/// different xor constant than the single-level derivation, so
/// derive_stream(s, a, b) never collides with derive_stream(s, f(a, b)) for
/// the linear folds one might be tempted to write by hand.
constexpr Rng derive_stream(std::uint64_t seed, std::uint64_t stream,
                            std::uint64_t substream) noexcept {
  std::uint64_t sm =
      seed ^ (0xC2B2AE3D27D4EB4FULL + stream * 0x9E3779B97F4A7C15ULL);
  const std::uint64_t folded = splitmix64(sm) ^ splitmix64(sm);
  return derive_stream(folded, substream);
}

}  // namespace dnnfi
