// Exact, order-independent summation of doubles (a Kulisch-style fixed-point
// superaccumulator).
//
// Sharded campaigns merge partial aggregates whose grouping depends on the
// shard/batch/chunk partition. Floating-point addition is not associative,
// so a naive `double` running sum would make "shard union == monolithic run"
// hold only approximately. ExactSum instead accumulates every finite double
// *exactly* into a wide fixed-point register (one 32-bit limb per 32 bits of
// the full double exponent range, carried in 64-bit words), so addition and
// merging are exactly associative and commutative: any partition of the same
// multiset of inputs yields bit-identical state, serialized bytes, and
// rounded `value()`.
//
// Cost: one add touches three limbs (~a handful of ns); state is ~1 KiB per
// sign. That is noise next to a fault-injection trial and is the price of a
// determinism contract strong enough to checkpoint, resume, and distribute.
#pragma once

#include <array>
#include <bit>
#include <cmath>
#include <cstdint>

#include "dnnfi/common/expects.h"
#include "dnnfi/common/serial.h"

namespace dnnfi {

/// Exact signed sum of finite doubles with associative merge.
class ExactSum {
 public:
  ExactSum() = default;

  /// Adds a finite double exactly. Non-finite input is a precondition
  /// violation — callers own the policy for inf/NaN contributions (the
  /// campaign accumulator counts and excludes them).
  void add(double v) {
    DNNFI_EXPECTS(std::isfinite(v));
    if (v == 0) return;
    const std::uint64_t bits = std::bit_cast<std::uint64_t>(v);
    add_magnitude(bits >> 63 ? neg_ : pos_, bits);
    if (++adds_ >= kNormalizeEvery) normalize();
  }

  /// Exact merge: state afterwards equals having added both input multisets
  /// into one accumulator, in any order.
  void merge(const ExactSum& o) {
    normalize();
    o.normalize();
    for (std::size_t i = 0; i < kLimbs; ++i) {
      pos_[i] += o.pos_[i];
      neg_[i] += o.neg_[i];
    }
    normalize();
  }

  /// Deterministic conversion of the exact state to double: positive and
  /// negative magnitudes are rounded independently from canonical limbs and
  /// subtracted. Identical state always yields identical bits.
  double value() const {
    normalize();
    return magnitude_value(pos_) - magnitude_value(neg_);
  }

  /// True when nothing (or only zeros) has been added.
  bool zero() const {
    normalize();
    for (std::size_t i = 0; i < kLimbs; ++i)
      if (pos_[i] != 0 || neg_[i] != 0) return false;
    return true;
  }

  /// Canonical serialization: normalized limbs with zero runs trimmed.
  void serialize(ByteWriter& w) const {
    normalize();
    write_magnitude(w, pos_);
    write_magnitude(w, neg_);
  }

  static ExactSum deserialize(ByteReader& r) {
    ExactSum s;
    read_magnitude(r, s.pos_);
    read_magnitude(r, s.neg_);
    return s;
  }

 private:
  // Fixed point with LSB weight 2^-1075: a finite double is M * 2^(p-1075)
  // with M < 2^53 and p = max(biased_exponent, 1) in [1, 2046], so the top
  // contribution bit is 52 + 2046 = 2098. 66 limbs cover the value; two
  // more absorb shift spill and merge carries.
  static constexpr std::size_t kLimbs = 68;
  // Each add deposits < 2^32 per limb into a 64-bit word; normalizing every
  // 2^30 adds keeps limbs far from overflow even through merges.
  static constexpr std::uint32_t kNormalizeEvery = 1U << 30;
  using Limbs = std::array<std::uint64_t, kLimbs>;

  static void add_magnitude(Limbs& limbs, std::uint64_t bits) {
    const std::uint64_t exp_field = (bits >> 52) & 0x7FF;
    const std::uint64_t frac = bits & 0xFFFFFFFFFFFFFULL;
    const std::uint64_t mantissa =
        exp_field ? (frac | (1ULL << 52)) : frac;          // implicit bit
    const std::uint64_t p = exp_field ? exp_field : 1;     // subnormal shares 2^-1074
    const unsigned __int128 shifted =
        static_cast<unsigned __int128>(mantissa) << (p % 32);
    const std::size_t base = p / 32;
    limbs[base] += static_cast<std::uint64_t>(shifted) & 0xFFFFFFFFULL;
    limbs[base + 1] += static_cast<std::uint64_t>(shifted >> 32) & 0xFFFFFFFFULL;
    limbs[base + 2] += static_cast<std::uint64_t>(shifted >> 64);
  }

  // Carry propagation to the canonical form (every limb < 2^32). Logically
  // const — it rewrites the representation, never the represented value —
  // hence the mutable state below. Not thread-safe; accumulators are
  // per-worker and merged under the campaign's lock.
  void normalize() const {
    std::uint64_t carry_p = 0, carry_n = 0;
    for (std::size_t i = 0; i < kLimbs; ++i) {
      const std::uint64_t tp = pos_[i] + carry_p;
      pos_[i] = tp & 0xFFFFFFFFULL;
      carry_p = tp >> 32;
      const std::uint64_t tn = neg_[i] + carry_n;
      neg_[i] = tn & 0xFFFFFFFFULL;
      carry_n = tn >> 32;
    }
    // The limb budget covers the maximum representable mass; a carry off the
    // top would mean ~2^1024 * 2^30 worth of additions, unreachable here.
    DNNFI_ENSURES(carry_p == 0 && carry_n == 0);
    adds_ = 0;
  }

  /// Rounds one canonical (normalized) magnitude to double: the limbs below
  /// the top three cannot move a 53-bit result by more than an ulp tie, and
  /// the computation reads them in one fixed order, so it is deterministic.
  static double magnitude_value(const Limbs& limbs) {
    std::size_t hi = kLimbs;
    for (std::size_t i = kLimbs; i-- > 0;) {
      if (limbs[i] != 0) {
        hi = i;
        break;
      }
    }
    if (hi == kLimbs) return 0.0;
    double r = 0.0;
    const std::size_t lo = hi >= 3 ? hi - 3 : 0;
    for (std::size_t i = hi + 1; i-- > lo;)
      r += std::ldexp(static_cast<double>(limbs[i]),
                      32 * static_cast<int>(i) - 1075);
    return r;
  }

  static void write_magnitude(ByteWriter& w, const Limbs& limbs) {
    std::size_t count = kLimbs;
    while (count > 0 && limbs[count - 1] == 0) --count;
    w.u32(static_cast<std::uint32_t>(count));
    for (std::size_t i = 0; i < count; ++i) w.u32(static_cast<std::uint32_t>(limbs[i]));
  }

  static void read_magnitude(ByteReader& r, Limbs& limbs) {
    const std::uint32_t count = r.u32();
    if (count > kLimbs)
      throw SerialError("ExactSum: limb count " + std::to_string(count) +
                        " exceeds maximum " + std::to_string(kLimbs));
    for (std::size_t i = 0; i < count; ++i) limbs[i] = r.u32();
  }

  mutable Limbs pos_{};
  mutable Limbs neg_{};
  mutable std::uint32_t adds_ = 0;
};

}  // namespace dnnfi
