// Network<T>: an ordered stack of layers executing in datapath type T, with
// golden-trace caching and fault-aware partial re-execution.
//
// The injection fast path exploits the fact that a fault in layer L leaves
// layers [0, L) untouched: given a cached fault-free activation trace, a
// faulty run re-executes only layer L (patching just the ACTs the fault
// reaches) and the layers after it.
//
// Execution is delegated to the compiled-plan engine (executor.h): each
// Network builds an ExecutionPlan once at construction; forward /
// forward_trace / forward_with_fault are thin compatibility wrappers that
// run the plan out of a local Workspace. Hot paths (the campaign engine)
// use the plan and a long-lived per-thread Workspace directly.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dnnfi/dnn/layers.h"
#include "dnnfi/dnn/spec.h"
#include "dnnfi/numeric/dtype.h"

namespace dnnfi::dnn {

template <typename T>
class ExecutionPlan;

/// Callback observing per-layer activations: (layer index, output view).
/// The view aliases executor scratch — read it inside the callback.
template <typename T>
using LayerObserver = std::function<void(std::size_t, ConstTensorView<T>)>;

/// Classification output: per-class scores (softmax confidences, or raw
/// scores for networks without a softmax head) plus ranking utilities.
struct Prediction {
  std::vector<double> scores;
  bool has_confidence = true;  ///< false when the net has no softmax (NiN)

  /// Class index with the highest score.
  std::size_t top1() const;
  /// The `k` highest-scoring class indices, best first.
  std::vector<std::size_t> topk(std::size_t k) const;
  /// Score of the top-1 class.
  double top1_score() const;
};

/// Per-layer activations of one forward pass. `acts[i]` is the output of
/// layer i; `input` is the network input.
template <typename T>
struct Trace {
  Tensor<T> input;
  std::vector<Tensor<T>> acts;

  const Tensor<T>& layer_input(std::size_t layer) const {
    return layer == 0 ? input : acts[layer - 1];
  }
  const Tensor<T>& output() const { return acts.back(); }
};

/// Describes where a LayerFaults bundle should be applied during a forward
/// pass, including the global-buffer case (flip an input ACT of the layer,
/// visible to every consumer).
struct AppliedFault {
  std::size_t layer = 0;       ///< target layer index (conv/FC)
  LayerFaults faults;          ///< latch / SRAM / REG / column faults
  bool flip_layer_input = false;  ///< global-buffer model: corrupt input ACT
  std::size_t input_index = 0;    ///< flat index of the input ACT to corrupt
  fault::FaultOp input_op;        ///< mask operation applied to that word
  /// Reduced storage format for the corrupted input word, if any.
  std::optional<numeric::DType> input_storage;
};

template <typename T>
class Network {
 public:
  /// Instantiates the topology with zero-valued parameters.
  explicit Network(const NetworkSpec& spec);
  ~Network();
  Network(Network&&) noexcept;
  Network& operator=(Network&&) noexcept;

  const NetworkSpec& spec() const noexcept { return spec_; }
  const std::string& name() const noexcept { return spec_.name; }
  std::size_t num_layers() const noexcept { return layers_.size(); }
  std::size_t num_classes() const noexcept { return spec_.num_classes; }
  bool has_softmax() const noexcept { return spec_.has_softmax(); }

  Layer<T>& layer(std::size_t i) { return *layers_.at(i); }
  const Layer<T>& layer(std::size_t i) const { return *layers_.at(i); }

  /// Indices of layers that perform MACs (conv and FC), in order.
  const std::vector<std::size_t>& mac_layers() const noexcept {
    return mac_layers_;
  }

  /// The compiled forward schedule for this network (built at construction,
  /// immutable, shareable across threads).
  const ExecutionPlan<T>& plan() const noexcept { return *plan_; }

  /// Plain forward pass; returns the final output tensor.
  Tensor<T> forward(const Tensor<T>& input) const;

  /// Forward pass recording every layer output (the golden trace).
  Trace<T> forward_trace(const Tensor<T>& input) const;

  /// Callback observing faulty per-layer activations: (layer index, output).
  /// Only layers at or after the fault layer are reported — earlier layers
  /// are bit-identical to the golden trace.
  using LayerObserverFn = LayerObserver<T>;

  /// Faulty forward pass re-using a golden trace: re-executes only the
  /// target layer (via fault patching) and everything after it. Returns the
  /// final output. `rec`, when non-null, receives injection details;
  /// `observer`, when non-null, sees every recomputed layer output.
  Tensor<T> forward_with_fault(const Trace<T>& golden, const AppliedFault& f,
                               InjectionRecord* rec = nullptr,
                               const LayerObserverFn* observer = nullptr) const;

  /// Interprets a final output as a Prediction.
  Prediction interpret(ConstTensorView<T> output) const;
  Prediction interpret(const Tensor<T>& output) const {
    return interpret(output.view());
  }

  /// Classification shorthand: forward + interpret.
  Prediction classify(const Tensor<T>& input) const;

  /// Total MACs for an input of the spec'd shape.
  std::size_t total_macs() const;

  /// Total number of weights (across conv/FC layers).
  std::size_t total_weights() const;

 private:
  NetworkSpec spec_;
  std::vector<std::unique_ptr<Layer<T>>> layers_;
  std::vector<std::size_t> mac_layers_;
  // Built eagerly in the constructor; unique_ptr because ExecutionPlan is
  // incomplete here (executor.h includes this header). Layer storage is
  // owned via unique_ptr, so the plan's raw layer pointers survive moves.
  std::unique_ptr<ExecutionPlan<T>> plan_;
};

/// Builds one concrete layer from its spec. `in_shape` is the layer's input
/// shape (needed to size FC weights); returns the layer and its out shape.
template <typename T>
std::unique_ptr<Layer<T>> make_layer(const LayerSpec& spec, const Shape& in_shape);

extern template class Network<double>;
extern template class Network<float>;
extern template class Network<numeric::Half>;
extern template class Network<numeric::Fx32r26>;
extern template class Network<numeric::Fx32r10>;
extern template class Network<numeric::Fx16r10>;

}  // namespace dnnfi::dnn
