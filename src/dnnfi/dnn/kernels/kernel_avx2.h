// Entry points of the AVX2/F16C kernel TU (kernel_avx2.cpp, compiled with
// -mavx2 -mf16c -mfma -ffp-contract=off; see src/CMakeLists.txt). Only the
// registry references these, and only after numeric/cpu.h probes confirm the
// CPU has the instructions. All functions implement the full KernelSet
// contract (lane blocks vectorized, remainder rows computed by a TU-local
// scalar path), so they can be installed directly as KernelSet pointers.
#pragma once

#include <cstddef>

#include "dnnfi/dnn/kernels/kernels.h"

#if defined(DNNFI_ENABLE_AVX2_KERNELS)

namespace dnnfi::dnn::kernels::detail {

// Bit-identical sets: one output per lane, scalar accumulation order per
// lane, separate multiply and add (no FMA), FLOAT16 rounded to half after
// every operation with the canonical quiet-NaN rule.
void avx2_conv_float(const ConvGeom&, const float*, const float*,
                     const float*, const float*, float*);
void avx2_fc_float(const FcGeom&, const float*, const float*, const float*,
                   const float*, float*);
void avx2_relu_float(const float*, float*, std::size_t);

void avx2_conv_double(const ConvGeom&, const double*, const double*,
                      const double*, const double*, double*);
void avx2_fc_double(const FcGeom&, const double*, const double*,
                    const double*, const double*, double*);
void avx2_relu_double(const double*, double*, std::size_t);

void avx2_conv_half(const ConvGeom&, const numeric::Half*,
                    const numeric::Half*, const numeric::Half*,
                    const numeric::Half*, numeric::Half*);
void avx2_fc_half(const FcGeom&, const numeric::Half*, const numeric::Half*,
                  const numeric::Half*, const numeric::Half*, numeric::Half*);
void avx2_relu_half(const numeric::Half*, numeric::Half*, std::size_t);

// Post-MAC kernels (bit-identical to the scalar reference; shared by the
// avx2, avx2-relaxed, and avx512 sets). LRN vectorizes the double-precision
// window bookkeeping across four spatial positions and keeps the per-element
// std::pow scalar; maxpool vectorizes across output columns with
// compare+blend (so NaNs lose exactly as in the scalar `if (v > best)`);
// avgpool runs four channel sums per pass; softmax vectorizes the finite-max
// and normalize passes around a scalar exp loop.
void avx2_lrn_float(const LrnGeom&, const float*, float*);
void avx2_lrn_double(const LrnGeom&, const double*, double*);
void avx2_lrn_half(const LrnGeom&, const numeric::Half*, numeric::Half*);

void avx2_maxpool_float(const PoolGeom&, const float*, float*);
void avx2_maxpool_double(const PoolGeom&, const double*, double*);
void avx2_maxpool_half(const PoolGeom&, const numeric::Half*, numeric::Half*);

void avx2_avgpool_float(const float*, float*, std::size_t, std::size_t);
void avx2_avgpool_double(const double*, double*, std::size_t, std::size_t);
void avx2_avgpool_half(const numeric::Half*, numeric::Half*, std::size_t,
                       std::size_t);

void avx2_softmax_float(const float*, float*, std::size_t);
void avx2_softmax_double(const double*, double*, std::size_t);
void avx2_softmax_half(const numeric::Half*, numeric::Half*, std::size_t);

// Relaxed (tolerance) sets: FMA contraction for float/double; FLOAT16
// accumulates in float and rounds to half once per output. Faster, not
// bit-identical to the scalar reference.
void avx2_relaxed_conv_float(const ConvGeom&, const float*, const float*,
                             const float*, const float*, float*);
void avx2_relaxed_fc_float(const FcGeom&, const float*, const float*,
                           const float*, const float*, float*);
void avx2_relaxed_conv_double(const ConvGeom&, const double*, const double*,
                              const double*, const double*, double*);
void avx2_relaxed_fc_double(const FcGeom&, const double*, const double*,
                            const double*, const double*, double*);
void avx2_relaxed_conv_half(const ConvGeom&, const numeric::Half*,
                            const numeric::Half*, const numeric::Half*,
                            const numeric::Half*, numeric::Half*);
void avx2_relaxed_fc_half(const FcGeom&, const numeric::Half*,
                          const numeric::Half*, const numeric::Half*,
                          const numeric::Half*, numeric::Half*);

}  // namespace dnnfi::dnn::kernels::detail

#endif  // DNNFI_ENABLE_AVX2_KERNELS
