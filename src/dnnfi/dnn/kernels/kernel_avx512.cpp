// AVX-512 MAC kernel implementations: 16 float / 8 double / 16 Half outputs
// per lane-block. Compiled with -mavx512f -mavx512bw -mavx512vl -mavx512dq
// -mf16c and -ffp-contract=off (src/CMakeLists.txt); entered only behind the
// cpu_has_avx512_kernel_bundle runtime probe, so DNNFI-built binaries still
// run on CPUs without these instructions.
//
// Codegen-safety discipline (same as kernel_avx2.cpp): everything this TU
// emits is either an exported avx512_* entry point or an internal-linkage
// helper; it instantiates no shared inline library function, so the linker
// can never pick an EVEX-encoded COMDAT copy of a function that non-AVX-512
// code paths also call. Remainder rows are handled by TU-local scalar loops
// that replicate kernel_scalar.h semantics exactly.
//
// Bit-identity strategy, unchanged from AVX2: vectorize ACROSS output
// channels, one output per lane, each lane performing the scalar reference's
// accumulation chain — (ci, ky, kx) order, separate multiply and add per
// tap, padded taps multiplying a zero activation. FLOAT16 rounds to half
// after every multiply and add via VCVTPS2PH (zmm form, AVX512F) with a
// mask-guarded fixup to the canonical quiet NaN (sign | 0x7E00). A lane's
// chain never mixes with another lane's, so widening 8 -> 16 lanes cannot
// change a single output bit relative to scalar or AVX2.
#include "dnnfi/dnn/kernels/kernel_avx512.h"

#if defined(DNNFI_ENABLE_AVX512_KERNELS)

#include <immintrin.h>

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace dnnfi::dnn::kernels::detail {

namespace {

constexpr int kRne = _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC;

inline std::uint16_t canonical_nan_bits(float v) noexcept {
  std::uint32_t fb;
  std::memcpy(&fb, &v, sizeof(fb));
  return static_cast<std::uint16_t>(((fb >> 16) & 0x8000U) | 0x7E00U);
}

// float -> half bits with the library's canonical-NaN rule, one lane.
inline std::uint16_t f2h(float v) noexcept {
  if (v != v) return canonical_nan_bits(v);
  return static_cast<std::uint16_t>(_cvtss_sh(v, kRne));
}

// float -> half bits, 16 lanes, canonical-NaN rule.
inline __m256i cvtps_ph_canon512(__m512 v) noexcept {
  __m256i h = _mm512_cvtps_ph(v, kRne);
  const __mmask16 nan_mask = _mm512_cmp_ps_mask(v, v, _CMP_UNORD_Q);
  if (nan_mask != 0) {
    alignas(64) float fv[16];
    alignas(32) std::uint16_t hb[16];
    _mm512_store_ps(fv, v);
    _mm256_store_si256(reinterpret_cast<__m256i*>(hb), h);
    for (int l = 0; l < 16; ++l)
      if ((nan_mask >> l) & 1) hb[l] = canonical_nan_bits(fv[l]);
    h = _mm256_load_si256(reinterpret_cast<const __m256i*>(hb));
  }
  return h;
}

// ---------------------------------------------------------------------------
// TU-local scalar remainders, re-stated as in kernel_avx2.cpp so this TU
// never instantiates an external-linkage template.
// ---------------------------------------------------------------------------

template <typename T>
void conv_rows_plain(const ConvGeom& g, const T* in, const T* w_oihw,
                     const T* bias, T* out, std::size_t co_begin,
                     std::size_t co_end) {
  const auto pad = static_cast<std::ptrdiff_t>(g.pad);
  const std::size_t kvol = g.in_c * g.k * g.k;
  for (std::size_t co = co_begin; co < co_end; ++co) {
    const T* const wco = w_oihw + co * kvol;
    const T b = bias[co];
    T* op = out + co * g.out_h * g.out_w;
    for (std::size_t oy = 0; oy < g.out_h; ++oy) {
      for (std::size_t ox = 0; ox < g.out_w; ++ox) {
        T acc{};
        const T* w = wco;
        for (std::size_t ci = 0; ci < g.in_c; ++ci) {
          const T* const ic = in + ci * g.in_h * g.in_w;
          for (std::size_t ky = 0; ky < g.k; ++ky) {
            const std::ptrdiff_t iy =
                static_cast<std::ptrdiff_t>(oy * g.stride + ky) - pad;
            const bool row_ok =
                iy >= 0 && iy < static_cast<std::ptrdiff_t>(g.in_h);
            const T* const irow =
                row_ok ? ic + static_cast<std::size_t>(iy) * g.in_w : nullptr;
            for (std::size_t kx = 0; kx < g.k; ++kx, ++w) {
              const std::ptrdiff_t ix =
                  static_cast<std::ptrdiff_t>(ox * g.stride + kx) - pad;
              T act{};
              if (row_ok && ix >= 0 &&
                  ix < static_cast<std::ptrdiff_t>(g.in_w))
                act = irow[static_cast<std::size_t>(ix)];
              const T product = *w * act;
              acc += product;
            }
          }
        }
        acc += b;
        *op++ = acc;
      }
    }
  }
}

template <typename T>
void fc_rows_plain(const FcGeom& g, const T* in, const T* w, const T* bias,
                   T* out, std::size_t o_begin, std::size_t o_end) {
  for (std::size_t o = o_begin; o < o_end; ++o) {
    T acc{};
    const T* const wr = w + o * g.in;
    for (std::size_t i = 0; i < g.in; ++i) {
      const T product = wr[i] * in[i];
      acc += product;
    }
    acc += bias[o];
    out[o] = acc;
  }
}

void conv_rows_half_bits(const ConvGeom& g, const std::uint16_t* in,
                         const std::uint16_t* w_oihw,
                         const std::uint16_t* bias, std::uint16_t* out,
                         std::size_t co_begin, std::size_t co_end) {
  const auto pad = static_cast<std::ptrdiff_t>(g.pad);
  const std::size_t kvol = g.in_c * g.k * g.k;
  for (std::size_t co = co_begin; co < co_end; ++co) {
    const std::uint16_t* const wco = w_oihw + co * kvol;
    const std::uint16_t b = bias[co];
    std::uint16_t* op = out + co * g.out_h * g.out_w;
    for (std::size_t oy = 0; oy < g.out_h; ++oy) {
      for (std::size_t ox = 0; ox < g.out_w; ++ox) {
        std::uint16_t acc = 0;
        const std::uint16_t* w = wco;
        for (std::size_t ci = 0; ci < g.in_c; ++ci) {
          const std::uint16_t* const ic = in + ci * g.in_h * g.in_w;
          for (std::size_t ky = 0; ky < g.k; ++ky) {
            const std::ptrdiff_t iy =
                static_cast<std::ptrdiff_t>(oy * g.stride + ky) - pad;
            const bool row_ok =
                iy >= 0 && iy < static_cast<std::ptrdiff_t>(g.in_h);
            const std::uint16_t* const irow =
                row_ok ? ic + static_cast<std::size_t>(iy) * g.in_w : nullptr;
            for (std::size_t kx = 0; kx < g.k; ++kx, ++w) {
              const std::ptrdiff_t ix =
                  static_cast<std::ptrdiff_t>(ox * g.stride + kx) - pad;
              std::uint16_t act = 0;
              if (row_ok && ix >= 0 &&
                  ix < static_cast<std::ptrdiff_t>(g.in_w))
                act = irow[static_cast<std::size_t>(ix)];
              const std::uint16_t product =
                  f2h(_cvtsh_ss(*w) * _cvtsh_ss(act));
              acc = f2h(_cvtsh_ss(acc) + _cvtsh_ss(product));
            }
          }
        }
        acc = f2h(_cvtsh_ss(acc) + _cvtsh_ss(b));
        *op++ = acc;
      }
    }
  }
}

void fc_rows_half_bits(const FcGeom& g, const std::uint16_t* in,
                       const std::uint16_t* w, const std::uint16_t* bias,
                       std::uint16_t* out, std::size_t o_begin,
                       std::size_t o_end) {
  for (std::size_t o = o_begin; o < o_end; ++o) {
    std::uint16_t acc = 0;
    const std::uint16_t* const wr = w + o * g.in;
    for (std::size_t i = 0; i < g.in; ++i) {
      const std::uint16_t product = f2h(_cvtsh_ss(wr[i]) * _cvtsh_ss(in[i]));
      acc = f2h(_cvtsh_ss(acc) + _cvtsh_ss(product));
    }
    acc = f2h(_cvtsh_ss(acc) + _cvtsh_ss(bias[o]));
    out[o] = acc;
  }
}

// ---------------------------------------------------------------------------
// float: 16 outputs per lane-block.
// ---------------------------------------------------------------------------

void conv_f32_blocks16(const ConvGeom& g, const float* in, const float* wp,
                       const float* bias, float* out, std::size_t blocks) {
  const auto pad = static_cast<std::ptrdiff_t>(g.pad);
  const std::size_t kvol = g.in_c * g.k * g.k;
  const std::size_t iplane = g.in_h * g.in_w;
  const std::size_t oplane = g.out_h * g.out_w;
  for (std::size_t b = 0; b < blocks; ++b) {
    const float* const wb = wp + b * kvol * 16;
    const __m512 bv = _mm512_loadu_ps(bias + b * 16);
    float* const ob = out + b * 16 * oplane;
    for (std::size_t oy = 0; oy < g.out_h; ++oy) {
      for (std::size_t ox = 0; ox < g.out_w; ++ox) {
        __m512 acc = _mm512_setzero_ps();
        const float* w = wb;
        for (std::size_t ci = 0; ci < g.in_c; ++ci) {
          const float* const ic = in + ci * iplane;
          for (std::size_t ky = 0; ky < g.k; ++ky) {
            const std::ptrdiff_t iy =
                static_cast<std::ptrdiff_t>(oy * g.stride + ky) - pad;
            const bool row_ok =
                iy >= 0 && iy < static_cast<std::ptrdiff_t>(g.in_h);
            const float* const irow =
                row_ok ? ic + static_cast<std::size_t>(iy) * g.in_w : nullptr;
            for (std::size_t kx = 0; kx < g.k; ++kx, w += 16) {
              const std::ptrdiff_t ix =
                  static_cast<std::ptrdiff_t>(ox * g.stride + kx) - pad;
              float act = 0.0f;
              if (row_ok && ix >= 0 &&
                  ix < static_cast<std::ptrdiff_t>(g.in_w))
                act = irow[static_cast<std::size_t>(ix)];
              const __m512 av = _mm512_set1_ps(act);
              const __m512 wv = _mm512_loadu_ps(w);
              acc = _mm512_add_ps(acc, _mm512_mul_ps(wv, av));
            }
          }
        }
        acc = _mm512_add_ps(acc, bv);
        alignas(64) float lane[16];
        _mm512_store_ps(lane, acc);
        const std::size_t pix = oy * g.out_w + ox;
        for (std::size_t l = 0; l < 16; ++l) ob[l * oplane + pix] = lane[l];
      }
    }
  }
}

void fc_f32_blocks16(const FcGeom& g, const float* in, const float* wp,
                     const float* bias, float* out, std::size_t blocks) {
  for (std::size_t b = 0; b < blocks; ++b) {
    const float* w = wp + b * g.in * 16;
    __m512 acc = _mm512_setzero_ps();
    for (std::size_t i = 0; i < g.in; ++i, w += 16) {
      const __m512 av = _mm512_set1_ps(in[i]);
      const __m512 wv = _mm512_loadu_ps(w);
      acc = _mm512_add_ps(acc, _mm512_mul_ps(wv, av));
    }
    acc = _mm512_add_ps(acc, _mm512_loadu_ps(bias + b * 16));
    _mm512_storeu_ps(out + b * 16, acc);
  }
}

// ---------------------------------------------------------------------------
// double: 8 outputs per lane-block.
// ---------------------------------------------------------------------------

void conv_f64_blocks8(const ConvGeom& g, const double* in, const double* wp,
                      const double* bias, double* out, std::size_t blocks) {
  const auto pad = static_cast<std::ptrdiff_t>(g.pad);
  const std::size_t kvol = g.in_c * g.k * g.k;
  const std::size_t iplane = g.in_h * g.in_w;
  const std::size_t oplane = g.out_h * g.out_w;
  for (std::size_t b = 0; b < blocks; ++b) {
    const double* const wb = wp + b * kvol * 8;
    const __m512d bv = _mm512_loadu_pd(bias + b * 8);
    double* const ob = out + b * 8 * oplane;
    for (std::size_t oy = 0; oy < g.out_h; ++oy) {
      for (std::size_t ox = 0; ox < g.out_w; ++ox) {
        __m512d acc = _mm512_setzero_pd();
        const double* w = wb;
        for (std::size_t ci = 0; ci < g.in_c; ++ci) {
          const double* const ic = in + ci * iplane;
          for (std::size_t ky = 0; ky < g.k; ++ky) {
            const std::ptrdiff_t iy =
                static_cast<std::ptrdiff_t>(oy * g.stride + ky) - pad;
            const bool row_ok =
                iy >= 0 && iy < static_cast<std::ptrdiff_t>(g.in_h);
            const double* const irow =
                row_ok ? ic + static_cast<std::size_t>(iy) * g.in_w : nullptr;
            for (std::size_t kx = 0; kx < g.k; ++kx, w += 8) {
              const std::ptrdiff_t ix =
                  static_cast<std::ptrdiff_t>(ox * g.stride + kx) - pad;
              double act = 0.0;
              if (row_ok && ix >= 0 &&
                  ix < static_cast<std::ptrdiff_t>(g.in_w))
                act = irow[static_cast<std::size_t>(ix)];
              const __m512d av = _mm512_set1_pd(act);
              const __m512d wv = _mm512_loadu_pd(w);
              acc = _mm512_add_pd(acc, _mm512_mul_pd(wv, av));
            }
          }
        }
        acc = _mm512_add_pd(acc, bv);
        alignas(64) double lane[8];
        _mm512_store_pd(lane, acc);
        const std::size_t pix = oy * g.out_w + ox;
        for (std::size_t l = 0; l < 8; ++l) ob[l * oplane + pix] = lane[l];
      }
    }
  }
}

void fc_f64_blocks8(const FcGeom& g, const double* in, const double* wp,
                    const double* bias, double* out, std::size_t blocks) {
  for (std::size_t b = 0; b < blocks; ++b) {
    const double* w = wp + b * g.in * 8;
    __m512d acc = _mm512_setzero_pd();
    for (std::size_t i = 0; i < g.in; ++i, w += 8) {
      const __m512d av = _mm512_set1_pd(in[i]);
      const __m512d wv = _mm512_loadu_pd(w);
      acc = _mm512_add_pd(acc, _mm512_mul_pd(wv, av));
    }
    acc = _mm512_add_pd(acc, _mm512_loadu_pd(bias + b * 8));
    _mm512_storeu_pd(out + b * 8, acc);
  }
}

// ---------------------------------------------------------------------------
// FLOAT16: 16 outputs per lane-block, rounded to half after every multiply
// and every add (zmm VCVTPH2PS / VCVTPS2PH, canonical-NaN fixup).
// ---------------------------------------------------------------------------

void conv_f16_blocks16(const ConvGeom& g, const std::uint16_t* in,
                       const std::uint16_t* wp, const std::uint16_t* bias,
                       std::uint16_t* out, std::size_t blocks) {
  const auto pad = static_cast<std::ptrdiff_t>(g.pad);
  const std::size_t kvol = g.in_c * g.k * g.k;
  const std::size_t iplane = g.in_h * g.in_w;
  const std::size_t oplane = g.out_h * g.out_w;
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::uint16_t* const wb = wp + b * kvol * 16;
    const __m256i bh =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bias + b * 16));
    std::uint16_t* const ob = out + b * 16 * oplane;
    for (std::size_t oy = 0; oy < g.out_h; ++oy) {
      for (std::size_t ox = 0; ox < g.out_w; ++ox) {
        __m256i acch = _mm256_setzero_si256();
        const std::uint16_t* w = wb;
        for (std::size_t ci = 0; ci < g.in_c; ++ci) {
          const std::uint16_t* const ic = in + ci * iplane;
          for (std::size_t ky = 0; ky < g.k; ++ky) {
            const std::ptrdiff_t iy =
                static_cast<std::ptrdiff_t>(oy * g.stride + ky) - pad;
            const bool row_ok =
                iy >= 0 && iy < static_cast<std::ptrdiff_t>(g.in_h);
            const std::uint16_t* const irow =
                row_ok ? ic + static_cast<std::size_t>(iy) * g.in_w : nullptr;
            for (std::size_t kx = 0; kx < g.k; ++kx, w += 16) {
              const std::ptrdiff_t ix =
                  static_cast<std::ptrdiff_t>(ox * g.stride + kx) - pad;
              std::uint16_t act = 0;
              if (row_ok && ix >= 0 &&
                  ix < static_cast<std::ptrdiff_t>(g.in_w))
                act = irow[static_cast<std::size_t>(ix)];
              const __m512 av = _mm512_set1_ps(_cvtsh_ss(act));
              const __m512 wf = _mm512_cvtph_ps(_mm256_loadu_si256(
                  reinterpret_cast<const __m256i*>(w)));
              const __m256i prod =
                  cvtps_ph_canon512(_mm512_mul_ps(wf, av));
              acch = cvtps_ph_canon512(_mm512_add_ps(
                  _mm512_cvtph_ps(acch), _mm512_cvtph_ps(prod)));
            }
          }
        }
        const __m256i res = cvtps_ph_canon512(_mm512_add_ps(
            _mm512_cvtph_ps(acch), _mm512_cvtph_ps(bh)));
        alignas(32) std::uint16_t lane[16];
        _mm256_store_si256(reinterpret_cast<__m256i*>(lane), res);
        const std::size_t pix = oy * g.out_w + ox;
        for (std::size_t l = 0; l < 16; ++l) ob[l * oplane + pix] = lane[l];
      }
    }
  }
}

void fc_f16_blocks16(const FcGeom& g, const std::uint16_t* in,
                     const std::uint16_t* wp, const std::uint16_t* bias,
                     std::uint16_t* out, std::size_t blocks) {
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::uint16_t* w = wp + b * g.in * 16;
    __m256i acch = _mm256_setzero_si256();
    for (std::size_t i = 0; i < g.in; ++i, w += 16) {
      const __m512 av = _mm512_set1_ps(_cvtsh_ss(in[i]));
      const __m512 wf = _mm512_cvtph_ps(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w)));
      const __m256i prod = cvtps_ph_canon512(_mm512_mul_ps(wf, av));
      acch = cvtps_ph_canon512(
          _mm512_add_ps(_mm512_cvtph_ps(acch), _mm512_cvtph_ps(prod)));
    }
    const __m256i bh =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bias + b * 16));
    const __m256i res = cvtps_ph_canon512(
        _mm512_add_ps(_mm512_cvtph_ps(acch), _mm512_cvtph_ps(bh)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + b * 16), res);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Exported entry points: lane blocks vectorized, remainder rows scalar.
// ---------------------------------------------------------------------------

void avx512_conv_float(const ConvGeom& g, const float* in, const float* w,
                       const float* wp, const float* bias, float* out) {
  const std::size_t blocks = g.out_c / 16;
  if (blocks > 0) conv_f32_blocks16(g, in, wp, bias, out, blocks);
  if (blocks * 16 < g.out_c)
    conv_rows_plain<float>(g, in, w, bias, out, blocks * 16, g.out_c);
}

void avx512_fc_float(const FcGeom& g, const float* in, const float* w,
                     const float* wp, const float* bias, float* out) {
  const std::size_t blocks = g.out / 16;
  if (blocks > 0) fc_f32_blocks16(g, in, wp, bias, out, blocks);
  if (blocks * 16 < g.out)
    fc_rows_plain<float>(g, in, w, bias, out, blocks * 16, g.out);
}

void avx512_relu_float(const float* in, float* out, std::size_t n) {
  const __m512 zero = _mm512_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512 v = _mm512_loadu_ps(in + i);
    const __mmask16 m = _mm512_cmp_ps_mask(v, zero, _CMP_GT_OQ);
    _mm512_storeu_ps(out + i, _mm512_maskz_mov_ps(m, v));
  }
  for (; i < n; ++i) out[i] = (in[i] > 0.0f) ? in[i] : 0.0f;
}

void avx512_conv_double(const ConvGeom& g, const double* in, const double* w,
                        const double* wp, const double* bias, double* out) {
  const std::size_t blocks = g.out_c / 8;
  if (blocks > 0) conv_f64_blocks8(g, in, wp, bias, out, blocks);
  if (blocks * 8 < g.out_c)
    conv_rows_plain<double>(g, in, w, bias, out, blocks * 8, g.out_c);
}

void avx512_fc_double(const FcGeom& g, const double* in, const double* w,
                      const double* wp, const double* bias, double* out) {
  const std::size_t blocks = g.out / 8;
  if (blocks > 0) fc_f64_blocks8(g, in, wp, bias, out, blocks);
  if (blocks * 8 < g.out)
    fc_rows_plain<double>(g, in, w, bias, out, blocks * 8, g.out);
}

void avx512_relu_double(const double* in, double* out, std::size_t n) {
  const __m512d zero = _mm512_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d v = _mm512_loadu_pd(in + i);
    const __mmask8 m = _mm512_cmp_pd_mask(v, zero, _CMP_GT_OQ);
    _mm512_storeu_pd(out + i, _mm512_maskz_mov_pd(m, v));
  }
  for (; i < n; ++i) out[i] = (in[i] > 0.0) ? in[i] : 0.0;
}

void avx512_conv_half(const ConvGeom& g, const numeric::Half* in,
                      const numeric::Half* w, const numeric::Half* wp,
                      const numeric::Half* bias, numeric::Half* out) {
  const auto* ib = reinterpret_cast<const std::uint16_t*>(in);
  const auto* wb = reinterpret_cast<const std::uint16_t*>(w);
  const auto* pb = reinterpret_cast<const std::uint16_t*>(wp);
  const auto* bb = reinterpret_cast<const std::uint16_t*>(bias);
  auto* ob = reinterpret_cast<std::uint16_t*>(out);
  const std::size_t blocks = g.out_c / 16;
  if (blocks > 0) conv_f16_blocks16(g, ib, pb, bb, ob, blocks);
  if (blocks * 16 < g.out_c)
    conv_rows_half_bits(g, ib, wb, bb, ob, blocks * 16, g.out_c);
}

void avx512_fc_half(const FcGeom& g, const numeric::Half* in,
                    const numeric::Half* w, const numeric::Half* wp,
                    const numeric::Half* bias, numeric::Half* out) {
  const auto* ib = reinterpret_cast<const std::uint16_t*>(in);
  const auto* wb = reinterpret_cast<const std::uint16_t*>(w);
  const auto* pb = reinterpret_cast<const std::uint16_t*>(wp);
  const auto* bb = reinterpret_cast<const std::uint16_t*>(bias);
  auto* ob = reinterpret_cast<std::uint16_t*>(out);
  const std::size_t blocks = g.out / 16;
  if (blocks > 0) fc_f16_blocks16(g, ib, pb, bb, ob, blocks);
  if (blocks * 16 < g.out)
    fc_rows_half_bits(g, ib, wb, bb, ob, blocks * 16, g.out);
}

void avx512_relu_half(const numeric::Half* in, numeric::Half* out,
                      std::size_t n) {
  const auto* ip = reinterpret_cast<const std::uint16_t*>(in);
  auto* op = reinterpret_cast<std::uint16_t*>(out);
  const __m512 zero = _mm512_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256i h =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ip + i));
    const __m512 f = _mm512_cvtph_ps(h);
    const __mmask16 m = _mm512_cmp_ps_mask(f, zero, _CMP_GT_OQ);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(op + i),
                        _mm256_maskz_mov_epi16(m, h));
  }
  for (; i < n; ++i) op[i] = (_cvtsh_ss(ip[i]) > 0.0f) ? ip[i] : 0;
}

}  // namespace dnnfi::dnn::kernels::detail

#endif  // DNNFI_ENABLE_AVX512_KERNELS
