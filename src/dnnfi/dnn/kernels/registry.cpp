// Kernel registry: mode resolution (DNNFI_KERNELS + CPUID), per-type set
// lookup, the packed-layout transform, and the layer-level dispatch helpers.
// Compiled without SIMD flags: every COMDAT-eligible template this TU
// instantiates (kernel_scalar.h, kernels.h) gets safe baseline codegen.
#include "dnnfi/dnn/kernels/kernels.h"

#include <cstdio>

#include "dnnfi/common/env.h"
#include "dnnfi/dnn/kernels/kernel_avx2.h"
#include "dnnfi/dnn/kernels/kernel_avx512.h"
#include "dnnfi/dnn/kernels/kernel_scalar.h"
#include "dnnfi/numeric/cpu.h"

namespace dnnfi::dnn::kernels {

namespace {

enum class Mode { kAuto, kScalar, kAvx2, kAvx2Relaxed, kAvx512 };

bool parse_mode(std::string_view s, Mode& out) {
  if (s == "auto") {
    out = Mode::kAuto;
  } else if (s == "scalar") {
    out = Mode::kScalar;
  } else if (s == "avx2") {
    out = Mode::kAvx2;
  } else if (s == "avx2-relaxed") {
    out = Mode::kAvx2Relaxed;
  } else if (s == "avx512") {
    out = Mode::kAvx512;
  } else {
    return false;
  }
  return true;
}

const char* mode_name(Mode m) {
  switch (m) {
    case Mode::kScalar:
      return "scalar";
    case Mode::kAvx2:
      return "avx2";
    case Mode::kAvx2Relaxed:
      return "avx2-relaxed";
    case Mode::kAvx512:
      return "avx512";
    case Mode::kAuto:
      break;
  }
  return "auto";
}

/// The process-wide mode: parsed once from DNNFI_KERNELS, overridable via
/// set_active_mode. Not thread-safe by design — override before building the
/// plans it should affect, never concurrently with running campaigns.
Mode& mode_ref() {
  static Mode m = [] {
    Mode parsed = Mode::kAuto;
    if (const auto v = env_string("DNNFI_KERNELS")) {
      if (!parse_mode(*v, parsed)) {
        std::fprintf(stderr,
                     "dnnfi: ignoring unknown DNNFI_KERNELS value \"%s\" "
                     "(expected scalar|avx2|avx2-relaxed|avx512|auto)\n",
                     v->c_str());
        parsed = Mode::kAuto;
      }
    }
    return parsed;
  }();
  return m;
}

#if defined(DNNFI_ENABLE_AVX2_KERNELS)

/// The exact AVX2 set for T, or null when T has none or the CPU lacks the
/// instructions. FLOAT16 kernels additionally execute F16C converts. The
/// post-MAC kernels (lrn / maxpool / avgpool / softmax) are the AVX2
/// implementations for all three vector-friendly types; fixed-point stays
/// the scalar reference across the board.
template <typename T>
const KernelSet<T>* avx2_set() {
  if constexpr (std::is_same_v<T, float>) {
    if (!numeric::cpu_has_avx2()) return nullptr;
    static const KernelSet<float> s{
        "avx2", true, 8, detail::avx2_conv_float, detail::avx2_fc_float,
        detail::avx2_relu_float, detail::avx2_lrn_float,
        detail::avx2_maxpool_float, detail::avx2_avgpool_float,
        detail::avx2_softmax_float};
    return &s;
  } else if constexpr (std::is_same_v<T, double>) {
    if (!numeric::cpu_has_avx2()) return nullptr;
    static const KernelSet<double> s{
        "avx2", true, 4, detail::avx2_conv_double, detail::avx2_fc_double,
        detail::avx2_relu_double, detail::avx2_lrn_double,
        detail::avx2_maxpool_double, detail::avx2_avgpool_double,
        detail::avx2_softmax_double};
    return &s;
  } else if constexpr (std::is_same_v<T, numeric::Half>) {
    if (!numeric::cpu_has_avx2() || !numeric::cpu_has_f16c()) return nullptr;
    static const KernelSet<numeric::Half> s{
        "avx2", true, 8, detail::avx2_conv_half, detail::avx2_fc_half,
        detail::avx2_relu_half, detail::avx2_lrn_half,
        detail::avx2_maxpool_half, detail::avx2_avgpool_half,
        detail::avx2_softmax_half};
    return &s;
  } else {
    return nullptr;  // fixed-point stays scalar-only
  }
}

/// The relaxed (FMA / float-accumulation) set; requires FMA on top of the
/// exact set's features. Relu and the post-MAC kernels are shared with the
/// exact set — elementwise max has no reassociation to relax, and the
/// post-MAC ops already run their internals at double precision.
template <typename T>
const KernelSet<T>* relaxed_set() {
  if (!numeric::cpu_has_fma()) return nullptr;
  if constexpr (std::is_same_v<T, float>) {
    if (!numeric::cpu_has_avx2()) return nullptr;
    static const KernelSet<float> s{
        "avx2-relaxed", false, 8, detail::avx2_relaxed_conv_float,
        detail::avx2_relaxed_fc_float, detail::avx2_relu_float,
        detail::avx2_lrn_float, detail::avx2_maxpool_float,
        detail::avx2_avgpool_float, detail::avx2_softmax_float};
    return &s;
  } else if constexpr (std::is_same_v<T, double>) {
    if (!numeric::cpu_has_avx2()) return nullptr;
    static const KernelSet<double> s{
        "avx2-relaxed", false, 4, detail::avx2_relaxed_conv_double,
        detail::avx2_relaxed_fc_double, detail::avx2_relu_double,
        detail::avx2_lrn_double, detail::avx2_maxpool_double,
        detail::avx2_avgpool_double, detail::avx2_softmax_double};
    return &s;
  } else if constexpr (std::is_same_v<T, numeric::Half>) {
    if (!numeric::cpu_has_avx2() || !numeric::cpu_has_f16c()) return nullptr;
    static const KernelSet<numeric::Half> s{
        "avx2-relaxed", false, 8, detail::avx2_relaxed_conv_half,
        detail::avx2_relaxed_fc_half, detail::avx2_relu_half,
        detail::avx2_lrn_half, detail::avx2_maxpool_half,
        detail::avx2_avgpool_half, detail::avx2_softmax_half};
    return &s;
  } else {
    return nullptr;
  }
}

#else  // !DNNFI_ENABLE_AVX2_KERNELS

template <typename T>
const KernelSet<T>* avx2_set() {
  return nullptr;
}
template <typename T>
const KernelSet<T>* relaxed_set() {
  return nullptr;
}

#endif  // DNNFI_ENABLE_AVX2_KERNELS

#if defined(DNNFI_ENABLE_AVX512_KERNELS) && defined(DNNFI_ENABLE_AVX2_KERNELS)

/// The AVX-512 set for T: 16-lane float, 8-lane double, 16-lane F16C-path
/// Half MAC kernels from the -mavx512f TU, post-MAC kernels shared with the
/// AVX2 TU (every AVX-512 CPU also runs AVX2). Gated on the full avx512
/// kernel bundle (F+BW+VL+DQ, see numeric/cpu.h) so Knights-Landing-class
/// parts fall back rather than fault in the Half mask blends.
template <typename T>
const KernelSet<T>* avx512_set() {
  if (!numeric::cpu_has_avx512_kernel_bundle() || !numeric::cpu_has_avx2())
    return nullptr;
  if constexpr (std::is_same_v<T, float>) {
    static const KernelSet<float> s{
        "avx512", true, 16, detail::avx512_conv_float, detail::avx512_fc_float,
        detail::avx512_relu_float, detail::avx2_lrn_float,
        detail::avx2_maxpool_float, detail::avx2_avgpool_float,
        detail::avx2_softmax_float};
    return &s;
  } else if constexpr (std::is_same_v<T, double>) {
    static const KernelSet<double> s{
        "avx512", true, 8, detail::avx512_conv_double,
        detail::avx512_fc_double, detail::avx512_relu_double,
        detail::avx2_lrn_double, detail::avx2_maxpool_double,
        detail::avx2_avgpool_double, detail::avx2_softmax_double};
    return &s;
  } else if constexpr (std::is_same_v<T, numeric::Half>) {
    if (!numeric::cpu_has_f16c()) return nullptr;
    static const KernelSet<numeric::Half> s{
        "avx512", true, 16, detail::avx512_conv_half, detail::avx512_fc_half,
        detail::avx512_relu_half, detail::avx2_lrn_half,
        detail::avx2_maxpool_half, detail::avx2_avgpool_half,
        detail::avx2_softmax_half};
    return &s;
  } else {
    return nullptr;  // fixed-point stays scalar-only
  }
}

#else  // !(DNNFI_ENABLE_AVX512_KERNELS && DNNFI_ENABLE_AVX2_KERNELS)

template <typename T>
const KernelSet<T>* avx512_set() {
  return nullptr;
}

#endif  // DNNFI_ENABLE_AVX512_KERNELS && DNNFI_ENABLE_AVX2_KERNELS

}  // namespace

template <typename T>
const KernelSet<T>& scalar_kernels() noexcept {
  static const KernelSet<T> s{"scalar",         true,
                              0,                &scalar_conv<T>,
                              &scalar_fc<T>,    &scalar_relu<T>,
                              &scalar_lrn<T>,   &scalar_maxpool<T>,
                              &scalar_avgpool<T>, &scalar_softmax<T>};
  return s;
}

template <typename T>
const KernelSet<T>& active_kernels() noexcept {
  switch (mode_ref()) {
    case Mode::kScalar:
      return scalar_kernels<T>();
    case Mode::kAvx2Relaxed: {
      const KernelSet<T>* s = relaxed_set<T>();
      return s ? *s : scalar_kernels<T>();
    }
    case Mode::kAvx2: {
      const KernelSet<T>* s = avx2_set<T>();
      return s ? *s : scalar_kernels<T>();
    }
    case Mode::kAvx512: {
      const KernelSet<T>* s = avx512_set<T>();
      return s ? *s : scalar_kernels<T>();
    }
    case Mode::kAuto: {
      if (const KernelSet<T>* s = avx512_set<T>()) return *s;
      if (const KernelSet<T>* s = avx2_set<T>()) return *s;
      return scalar_kernels<T>();
    }
  }
  return scalar_kernels<T>();
}

template <typename T>
const KernelSet<T>* kernel_set(std::string_view name) noexcept {
  if (name == "scalar") return &scalar_kernels<T>();
  if (name == "avx2") return avx2_set<T>();
  if (name == "avx2-relaxed") return relaxed_set<T>();
  if (name == "avx512") return avx512_set<T>();
  return nullptr;
}

template <typename T>
std::vector<const char*> registered_names() {
  std::vector<const char*> names{"scalar"};
  if (avx2_set<T>()) names.push_back("avx2");
  if (relaxed_set<T>()) names.push_back("avx2-relaxed");
  if (avx512_set<T>()) names.push_back("avx512");
  return names;
}

bool set_active_mode(std::string_view mode) {
  Mode m;
  if (!parse_mode(mode, m)) return false;
  mode_ref() = m;
  return true;
}

KernelProfile kernel_profile() {
  KernelProfile p;
  p.mode = mode_name(mode_ref());
  p.cpu_avx2 = numeric::cpu_has_avx2();
  p.cpu_f16c = numeric::cpu_has_f16c();
  p.cpu_avx512 = numeric::cpu_has_avx512_kernel_bundle();
#if defined(DNNFI_ENABLE_F16C)
  p.f16c_compiled = true;
#endif
  p.active_float = active_kernels<float>().name;
  p.active_float16 = active_kernels<numeric::Half>().name;
  return p;
}

template <typename T>
void pack_rows(const T* w, std::size_t rows, std::size_t cols,
               std::size_t lanes, T* dst) {
  if (lanes == 0) return;
  const std::size_t blocks = rows / lanes;
  for (std::size_t b = 0; b < blocks; ++b)
    for (std::size_t c = 0; c < cols; ++c)
      for (std::size_t l = 0; l < lanes; ++l)
        dst[(b * cols + c) * lanes + l] = w[(b * lanes + l) * cols + c];
}

template <typename T>
void conv_forward(const ConvGeom& g, const T* in, const T* w, const T* bias,
                  T* out) {
  const KernelSet<T>& ks = active_kernels<T>();
  if (ks.pack_lanes == 0) {
    ks.conv(g, in, w, nullptr, bias, out);
    return;
  }
  scalar_conv<T>(g, in, w, nullptr, bias, out);
}

template <typename T>
void fc_forward(const FcGeom& g, const T* in, const T* w, const T* bias,
                T* out) {
  const KernelSet<T>& ks = active_kernels<T>();
  if (ks.pack_lanes == 0) {
    ks.fc(g, in, w, nullptr, bias, out);
    return;
  }
  scalar_fc<T>(g, in, w, nullptr, bias, out);
}

template <typename T>
void relu_forward(const T* in, T* out, std::size_t n) {
  active_kernels<T>().relu(in, out, n);
}

template <typename T>
void lrn_forward(const LrnGeom& g, const T* in, T* out) {
  active_kernels<T>().lrn(g, in, out);
}

template <typename T>
void maxpool_forward(const PoolGeom& g, const T* in, T* out) {
  active_kernels<T>().maxpool(g, in, out);
}

template <typename T>
void avgpool_forward(const T* in, T* out, std::size_t channels,
                     std::size_t plane) {
  active_kernels<T>().avgpool(in, out, channels, plane);
}

template <typename T>
void softmax_forward(const T* in, T* out, std::size_t n) {
  active_kernels<T>().softmax(in, out, n);
}

#define DNNFI_KERNELS_INSTANTIATE(T)                                        \
  template const KernelSet<T>& scalar_kernels<T>() noexcept;                \
  template const KernelSet<T>& active_kernels<T>() noexcept;                \
  template const KernelSet<T>* kernel_set<T>(std::string_view) noexcept;    \
  template std::vector<const char*> registered_names<T>();                  \
  template void pack_rows<T>(const T*, std::size_t, std::size_t,            \
                             std::size_t, T*);                              \
  template void conv_forward<T>(const ConvGeom&, const T*, const T*,        \
                                const T*, T*);                              \
  template void fc_forward<T>(const FcGeom&, const T*, const T*, const T*,  \
                              T*);                                          \
  template void relu_forward<T>(const T*, T*, std::size_t);                 \
  template void lrn_forward<T>(const LrnGeom&, const T*, T*);               \
  template void maxpool_forward<T>(const PoolGeom&, const T*, T*);          \
  template void avgpool_forward<T>(const T*, T*, std::size_t, std::size_t); \
  template void softmax_forward<T>(const T*, T*, std::size_t)

DNNFI_KERNELS_INSTANTIATE(double);
DNNFI_KERNELS_INSTANTIATE(float);
DNNFI_KERNELS_INSTANTIATE(numeric::Half);
DNNFI_KERNELS_INSTANTIATE(numeric::Fx32r26);
DNNFI_KERNELS_INSTANTIATE(numeric::Fx32r10);
DNNFI_KERNELS_INSTANTIATE(numeric::Fx16r10);
#undef DNNFI_KERNELS_INSTANTIATE

}  // namespace dnnfi::dnn::kernels
