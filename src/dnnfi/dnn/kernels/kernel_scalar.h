// Scalar reference kernels — the always-correct ground truth every SIMD set
// is tested bit-identical against (see kernels.h for the contract).
//
// scalar_conv is the former Conv2d::forward_plain: bit-identical to
// Conv2d::compute_one with no fault and no overrides — same (ci, ky, kx)
// accumulation order, same multiply-then-accumulate per tap (padded taps
// multiply by a zero activation), same trailing bias add — with the per-tap
// Shape::index arithmetic replaced by hoisted row pointers. scalar_fc is
// likewise the former FullyConnected fast path. The *_rows variants compute
// a sub-range of output channels / features so SIMD kernels can delegate
// their remainder rows (row counts not divisible by the lane width) here.
//
// The post-MAC kernels (scalar_lrn / scalar_maxpool / scalar_avgpool /
// scalar_softmax) are the former Lrn / MaxPool2d / GlobalAvgPool / Softmax
// forward loops, restructured for speed but bit-identical output for output:
//  - scalar_lrn buffers each spatial column's squared activations once (the
//    old loop re-converted every window tap from T per output, a 5-6x
//    redundancy at size=5) and then sums each output's window from the
//    buffer in the SAME low-to-high channel order, so the per-output
//    summation order — and therefore every output bit — is unchanged and
//    the scalar reference remains the semantic ground truth. The per-element
//    std::pow stays at double precision; two exact shortcuts avoid calls
//    whose result is already known: pow(1.0, beta) == 1.0 identically (the
//    all-zero window under the default k=1 bias — common after relu), and a
//    repeat of the immediately preceding base reuses its result (pow is
//    deterministic).
//  - scalar_softmax buffers the exp() pass on the stack instead of
//    recomputing it in the normalize pass (exp is deterministic, so the old
//    recompute form produced identical bits; past 1024 classes it falls back
//    to exactly that recompute form to stay allocation-free).
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>

#include "dnnfi/dnn/kernels/kernels.h"
#include "dnnfi/numeric/traits.h"

namespace dnnfi::dnn::kernels {

/// Output channels [co_begin, co_end) of a convolution, scalar reference.
template <typename T>
void scalar_conv_rows(const ConvGeom& g, const T* in, const T* w_oihw,
                      const T* bias, T* out, std::size_t co_begin,
                      std::size_t co_end) {
  const auto pad = static_cast<std::ptrdiff_t>(g.pad);
  const std::size_t kvol = g.in_c * g.k * g.k;
  for (std::size_t co = co_begin; co < co_end; ++co) {
    const T* const wco = w_oihw + co * kvol;
    const T b = bias[co];
    T* op = out + co * g.out_h * g.out_w;
    for (std::size_t oy = 0; oy < g.out_h; ++oy) {
      for (std::size_t ox = 0; ox < g.out_w; ++ox) {
        T acc{};
        const T* w = wco;
        for (std::size_t ci = 0; ci < g.in_c; ++ci) {
          const T* const ic = in + ci * g.in_h * g.in_w;
          for (std::size_t ky = 0; ky < g.k; ++ky) {
            const std::ptrdiff_t iy =
                static_cast<std::ptrdiff_t>(oy * g.stride + ky) - pad;
            const bool row_ok =
                iy >= 0 && iy < static_cast<std::ptrdiff_t>(g.in_h);
            const T* const irow =
                row_ok ? ic + static_cast<std::size_t>(iy) * g.in_w : nullptr;
            for (std::size_t kx = 0; kx < g.k; ++kx, ++w) {
              const std::ptrdiff_t ix =
                  static_cast<std::ptrdiff_t>(ox * g.stride + kx) - pad;
              T act{};
              if (row_ok && ix >= 0 &&
                  ix < static_cast<std::ptrdiff_t>(g.in_w))
                act = irow[static_cast<std::size_t>(ix)];
              const T product = *w * act;
              acc += product;
            }
          }
        }
        acc += b;
        *op++ = acc;
      }
    }
  }
}

/// Output features [o_begin, o_end) of a fully-connected layer.
template <typename T>
void scalar_fc_rows(const FcGeom& g, const T* in, const T* w, const T* bias,
                    T* out, std::size_t o_begin, std::size_t o_end) {
  for (std::size_t o = o_begin; o < o_end; ++o) {
    T acc{};
    const T* const wr = w + o * g.in;
    for (std::size_t i = 0; i < g.in; ++i) {
      const T product = wr[i] * in[i];
      acc += product;
    }
    acc += bias[o];
    out[o] = acc;
  }
}

/// Full scalar kernels matching the KernelSet function signatures.
template <typename T>
void scalar_conv(const ConvGeom& g, const T* in, const T* w,
                 const T* /*w_packed*/, const T* bias, T* out) {
  scalar_conv_rows<T>(g, in, w, bias, out, 0, g.out_c);
}

template <typename T>
void scalar_fc(const FcGeom& g, const T* in, const T* w,
               const T* /*w_packed*/, const T* bias, T* out) {
  scalar_fc_rows<T>(g, in, w, bias, out, 0, g.out);
}

template <typename T>
void scalar_relu(const T* in, T* out, std::size_t n) {
  const T zero{};
  for (std::size_t i = 0; i < n; ++i) out[i] = (in[i] > zero) ? in[i] : zero;
}

/// Stack-buffer capacity shared by the LRN / softmax kernels. Every zoo
/// network is far below it; larger shapes take the unbuffered (slower but
/// identical) path so the kernels stay allocation-free at any size.
inline constexpr std::size_t kScalarStackDoubles = 1024;

/// pow(base, beta) with the two exact shortcuts described in the header
/// comment. `memo_base`/`memo_pow` carry the previous call's base/result;
/// a NaN base never matches the memo (NaN != NaN) and is recomputed.
inline double lrn_pow(double base, double beta, double& memo_base,
                      double& memo_pow) {
  if (base == 1.0) return 1.0;
  if (base == memo_base) return memo_pow;
  memo_base = base;
  memo_pow = std::pow(base, beta);
  return memo_pow;
}

/// Local response normalization, scalar reference (see header comment for
/// the bit-identity argument). Window sums run at double precision in
/// low-to-high channel order per output, exactly like the former
/// Lrn::raw_scale.
template <typename T>
void scalar_lrn(const LrnGeom& g, const T* in, T* out) {
  using Tr = numeric::numeric_traits<T>;
  const std::size_t plane = g.h * g.w;
  const auto half = static_cast<std::ptrdiff_t>(g.size / 2);
  const double an = g.alpha / static_cast<double>(g.size);
  const bool buffered = g.c <= kScalarStackDoubles;
  double sq[kScalarStackDoubles];
  for (std::size_t p = 0; p < plane; ++p) {
    if (buffered) {
      for (std::size_t c = 0; c < g.c; ++c) {
        const double v = Tr::to_double(in[c * plane + p]);
        sq[c] = v * v;
      }
    }
    double memo_base = std::numeric_limits<double>::quiet_NaN();
    double memo_pow = 0.0;
    for (std::size_t c = 0; c < g.c; ++c) {
      const std::ptrdiff_t clo =
          std::max<std::ptrdiff_t>(0, static_cast<std::ptrdiff_t>(c) - half);
      const std::ptrdiff_t chi =
          std::min<std::ptrdiff_t>(static_cast<std::ptrdiff_t>(g.c) - 1,
                                   static_cast<std::ptrdiff_t>(c) + half);
      double ss = 0;
      if (buffered) {
        for (std::ptrdiff_t cc = clo; cc <= chi; ++cc)
          ss += sq[static_cast<std::size_t>(cc)];
      } else {
        for (std::ptrdiff_t cc = clo; cc <= chi; ++cc) {
          const double v =
              Tr::to_double(in[static_cast<std::size_t>(cc) * plane + p]);
          ss += v * v;
        }
      }
      const double base = g.k + an * ss;
      const double denom = lrn_pow(base, g.beta, memo_base, memo_pow);
      const double v = Tr::to_double(in[c * plane + p]);
      out[c * plane + p] = Tr::from_double(v / denom);
    }
  }
}

/// Max pooling, scalar reference: the former MaxPool2d::forward loop with
/// the window seeded from its first element and strict-greater updates, so
/// NaNs never win and first-maximum tie-breaking is preserved.
template <typename T>
void scalar_maxpool(const PoolGeom& g, const T* in, T* out) {
  const std::size_t iplane = g.in_h * g.in_w;
  const std::size_t oplane = g.out_h * g.out_w;
  for (std::size_t c = 0; c < g.c; ++c) {
    const T* const ic = in + c * iplane;
    T* const oc = out + c * oplane;
    for (std::size_t oy = 0; oy < g.out_h; ++oy) {
      const T* const iwin = ic + oy * g.stride * g.in_w;
      T* const orow = oc + oy * g.out_w;
      for (std::size_t ox = 0; ox < g.out_w; ++ox) {
        const T* const base = iwin + ox * g.stride;
        T best = base[0];
        for (std::size_t ky = 0; ky < g.k; ++ky) {
          const T* const irow = base + ky * g.in_w;
          for (std::size_t kx = 0; kx < g.k; ++kx) {
            const T v = irow[kx];
            if (v > best) best = v;
          }
        }
        orow[ox] = best;
      }
    }
  }
}

/// Global average pooling, scalar reference: per channel, a sequential
/// double-precision sum over the plane then one multiply by 1/plane.
template <typename T>
void scalar_avgpool(const T* in, T* out, std::size_t channels,
                    std::size_t plane) {
  using Tr = numeric::numeric_traits<T>;
  const double inv = 1.0 / static_cast<double>(plane);
  for (std::size_t c = 0; c < channels; ++c) {
    const T* const ic = in + c * plane;
    double s = 0;
    for (std::size_t i = 0; i < plane; ++i) s += Tr::to_double(ic[i]);
    out[c] = Tr::from_double(s * inv);
  }
}

/// The former Softmax::shifted_exp: NaNs map to exp(-inf) = 0 so a poisoned
/// class drops out instead of wrecking every confidence score.
template <typename T>
double softmax_shifted_exp(T raw, double mx) {
  double v = numeric::numeric_traits<T>::to_double(raw);
  if (std::isnan(v)) v = -std::numeric_limits<double>::infinity();
  return std::exp(std::min(v - mx, 700.0));
}

/// Softmax, scalar reference (see header comment): finite max, buffered
/// exp/sum pass, normalize.
template <typename T>
void scalar_softmax(const T* in, T* out, std::size_t n) {
  using Tr = numeric::numeric_traits<T>;
  double mx = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    const double v = Tr::to_double(in[i]);
    if (std::isfinite(v)) mx = std::max(mx, v);
  }
  if (!std::isfinite(mx)) mx = 0;
  const bool buffered = n <= kScalarStackDoubles;
  double buf[kScalarStackDoubles];
  double sum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double e = softmax_shifted_exp(in[i], mx);
    if (buffered) buf[i] = e;
    sum += e;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const double e = buffered ? buf[i] : softmax_shifted_exp(in[i], mx);
    out[i] = Tr::from_double(sum > 0 ? e / sum : 0.0);
  }
}

}  // namespace dnnfi::dnn::kernels
