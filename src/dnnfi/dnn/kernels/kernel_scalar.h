// Scalar reference kernels — the always-correct ground truth every SIMD set
// is tested bit-identical against (see kernels.h for the contract).
//
// scalar_conv is the former Conv2d::forward_plain: bit-identical to
// Conv2d::compute_one with no fault and no overrides — same (ci, ky, kx)
// accumulation order, same multiply-then-accumulate per tap (padded taps
// multiply by a zero activation), same trailing bias add — with the per-tap
// Shape::index arithmetic replaced by hoisted row pointers. scalar_fc is
// likewise the former FullyConnected fast path. The *_rows variants compute
// a sub-range of output channels / features so SIMD kernels can delegate
// their remainder rows (row counts not divisible by the lane width) here.
#pragma once

#include "dnnfi/dnn/kernels/kernels.h"

namespace dnnfi::dnn::kernels {

/// Output channels [co_begin, co_end) of a convolution, scalar reference.
template <typename T>
void scalar_conv_rows(const ConvGeom& g, const T* in, const T* w_oihw,
                      const T* bias, T* out, std::size_t co_begin,
                      std::size_t co_end) {
  const auto pad = static_cast<std::ptrdiff_t>(g.pad);
  const std::size_t kvol = g.in_c * g.k * g.k;
  for (std::size_t co = co_begin; co < co_end; ++co) {
    const T* const wco = w_oihw + co * kvol;
    const T b = bias[co];
    T* op = out + co * g.out_h * g.out_w;
    for (std::size_t oy = 0; oy < g.out_h; ++oy) {
      for (std::size_t ox = 0; ox < g.out_w; ++ox) {
        T acc{};
        const T* w = wco;
        for (std::size_t ci = 0; ci < g.in_c; ++ci) {
          const T* const ic = in + ci * g.in_h * g.in_w;
          for (std::size_t ky = 0; ky < g.k; ++ky) {
            const std::ptrdiff_t iy =
                static_cast<std::ptrdiff_t>(oy * g.stride + ky) - pad;
            const bool row_ok =
                iy >= 0 && iy < static_cast<std::ptrdiff_t>(g.in_h);
            const T* const irow =
                row_ok ? ic + static_cast<std::size_t>(iy) * g.in_w : nullptr;
            for (std::size_t kx = 0; kx < g.k; ++kx, ++w) {
              const std::ptrdiff_t ix =
                  static_cast<std::ptrdiff_t>(ox * g.stride + kx) - pad;
              T act{};
              if (row_ok && ix >= 0 &&
                  ix < static_cast<std::ptrdiff_t>(g.in_w))
                act = irow[static_cast<std::size_t>(ix)];
              const T product = *w * act;
              acc += product;
            }
          }
        }
        acc += b;
        *op++ = acc;
      }
    }
  }
}

/// Output features [o_begin, o_end) of a fully-connected layer.
template <typename T>
void scalar_fc_rows(const FcGeom& g, const T* in, const T* w, const T* bias,
                    T* out, std::size_t o_begin, std::size_t o_end) {
  for (std::size_t o = o_begin; o < o_end; ++o) {
    T acc{};
    const T* const wr = w + o * g.in;
    for (std::size_t i = 0; i < g.in; ++i) {
      const T product = wr[i] * in[i];
      acc += product;
    }
    acc += bias[o];
    out[o] = acc;
  }
}

/// Full scalar kernels matching the KernelSet function signatures.
template <typename T>
void scalar_conv(const ConvGeom& g, const T* in, const T* w,
                 const T* /*w_packed*/, const T* bias, T* out) {
  scalar_conv_rows<T>(g, in, w, bias, out, 0, g.out_c);
}

template <typename T>
void scalar_fc(const FcGeom& g, const T* in, const T* w,
               const T* /*w_packed*/, const T* bias, T* out) {
  scalar_fc_rows<T>(g, in, w, bias, out, 0, g.out);
}

template <typename T>
void scalar_relu(const T* in, T* out, std::size_t n) {
  const T zero{};
  for (std::size_t i = 0; i < n; ++i) out[i] = (in[i] > zero) ? in[i] : zero;
}

}  // namespace dnnfi::dnn::kernels
