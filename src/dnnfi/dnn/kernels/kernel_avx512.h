// Entry points of the AVX-512 kernel TU (kernel_avx512.cpp, compiled with
// -mavx512f -mavx512bw -mavx512vl -mavx512dq -mf16c -ffp-contract=off; see
// src/CMakeLists.txt). Only the registry references these, and only after
// numeric/cpu.h confirms the CPU has the full avx512 kernel bundle
// (cpu_has_avx512_kernel_bundle). All functions implement the full KernelSet
// contract: 16-lane float / 8-lane double / 16-lane F16C-path Half MAC
// kernels with the same lane-accumulation-order bit-identity contract as the
// AVX2 set, remainder rows computed by a TU-local scalar path. The avx512
// set's post-MAC ops (lrn / maxpool / avgpool / softmax) are shared with the
// AVX2 TU — they are already vector-width-bound by pow/exp and gathers, and
// every AVX-512 CPU runs AVX2 code at full speed.
#pragma once

#include <cstddef>

#include "dnnfi/dnn/kernels/kernels.h"

#if defined(DNNFI_ENABLE_AVX512_KERNELS)

namespace dnnfi::dnn::kernels::detail {

void avx512_conv_float(const ConvGeom&, const float*, const float*,
                       const float*, const float*, float*);
void avx512_fc_float(const FcGeom&, const float*, const float*, const float*,
                     const float*, float*);
void avx512_relu_float(const float*, float*, std::size_t);

void avx512_conv_double(const ConvGeom&, const double*, const double*,
                        const double*, const double*, double*);
void avx512_fc_double(const FcGeom&, const double*, const double*,
                      const double*, const double*, double*);
void avx512_relu_double(const double*, double*, std::size_t);

void avx512_conv_half(const ConvGeom&, const numeric::Half*,
                      const numeric::Half*, const numeric::Half*,
                      const numeric::Half*, numeric::Half*);
void avx512_fc_half(const FcGeom&, const numeric::Half*,
                    const numeric::Half*, const numeric::Half*,
                    const numeric::Half*, numeric::Half*);
void avx512_relu_half(const numeric::Half*, numeric::Half*, std::size_t);

}  // namespace dnnfi::dnn::kernels::detail

#endif  // DNNFI_ENABLE_AVX512_KERNELS
