// Runtime-dispatched compute kernels for the MAC layers (DESIGN.md §10).
//
// A KernelSet<T> bundles the conv / fully-connected / relu inner loops for
// one datapath type. The scalar reference set always exists and is the
// semantic ground truth: it performs exactly the MAC pipeline of
// Conv2d::compute_one (products and accumulations in T, (ci, ky, kx)
// accumulation order, padded taps multiplying a zero activation, trailing
// bias add). SIMD sets vectorize ACROSS output channels — one output per
// lane, each lane's accumulation chain identical to the scalar one — so
// their results are bit-identical to the reference (KernelSet::bit_identical)
// and call sites with and without SIMD can be mixed freely without changing
// a single output bit.
//
// One documented hole in the bit-identity claim: when two NaNs with
// DIFFERENT bit patterns meet in a single addition, x86 keeps whichever
// operand the compiler put first, and neither IEEE 754 nor C++ pins that
// order down (GCC freely commutes — and auto-vectorizes — the reference's
// accumulation). Outputs whose chains only ever see one NaN bit pattern
// (the common case: a single fault-injected NaN propagating, or the fixed
// "indefinite" NaN from Inf*0 / Inf-Inf) are exact: x86 propagates a lone
// NaN operand verbatim. Campaign aggregates never resolve the hole either
// way, since outcome classification and distance metrics treat all NaNs
// alike. The other exception is the opt-in "avx2-relaxed" set,
// which contracts multiply-add (FMA) and, for FLOAT16, accumulates in float:
// faster, but sums differ by rounding, so it is never selected by default
// and the campaign bit-identity gates do not hold under it.
//
// Selection happens once per process: the DNNFI_KERNELS environment variable
// ("scalar" | "avx2" | "avx2-relaxed" | "avx512" | "auto"/unset) is combined
// with CPUID probes (numeric/cpu.h); "auto" prefers avx512 > avx2 > scalar,
// and requesting an unavailable set falls back to scalar. ExecutionPlan<T>
// captures the active set at plan-build time.
//
// Packed weights: SIMD sets with pack_lanes > 0 consume a lane-interleaved
// copy of each MAC layer's weights, produced by pack_rows into the
// workspace arena at Workspace::bind time (the plan-time layout transform).
// Public tensors stay NCHW/OIHW; the packed copy is invisible outside the
// kernel call. Only full blocks of `lanes` rows are packed — remainder rows
// are computed by the scalar reference directly from the row-major weights.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "dnnfi/numeric/fixed.h"
#include "dnnfi/numeric/half.h"

namespace dnnfi::dnn::kernels {

/// Resolved convolution geometry: square kernel, zero padding, CHW input
/// and output, OIHW weights.
struct ConvGeom {
  std::size_t in_c = 0, in_h = 0, in_w = 0;
  std::size_t out_c = 0, out_h = 0, out_w = 0;
  std::size_t k = 0, stride = 0, pad = 0;

  /// Accumulation steps per output element (the kernel volume).
  constexpr std::size_t steps() const noexcept { return in_c * k * k; }
};

/// Resolved fully-connected geometry: out x in row-major weights.
struct FcGeom {
  std::size_t in = 0, out = 0;
};

/// Resolved local-response-normalization geometry: CHW input, odd channel
/// window of `size`, out[c] = in[c] / (k + alpha/size * sum_window in^2)^beta
/// with the window sum and pow at double internal precision.
struct LrnGeom {
  std::size_t c = 0, h = 0, w = 0;
  std::size_t size = 0;
  double alpha = 0.0, beta = 0.0, k = 0.0;
};

/// Resolved pooling geometry: CHW input and output, square window, no
/// padding (out_h = (in_h - k) / stride + 1, same for width).
struct PoolGeom {
  std::size_t c = 0;
  std::size_t in_h = 0, in_w = 0;
  std::size_t out_h = 0, out_w = 0;
  std::size_t k = 0, stride = 0;
};

/// Convolution kernel. `w` is the row-major OIHW weight array; `w_packed`
/// is the pack_rows copy (pass null when the set's pack_lanes == 0, or when
/// the geometry yields zero full blocks — it is only dereferenced inside
/// full blocks).
template <typename T>
using ConvFn = void (*)(const ConvGeom&, const T* in, const T* w,
                        const T* w_packed, const T* bias, T* out);

/// Fully-connected kernel; `w_packed` as for ConvFn.
template <typename T>
using FcFn = void (*)(const FcGeom&, const T* in, const T* w,
                      const T* w_packed, const T* bias, T* out);

/// Elementwise kernel (relu): out[i] = max(in[i], 0) in T semantics.
template <typename T>
using EltwiseFn = void (*)(const T* in, T* out, std::size_t n);

/// Local-response-normalization kernel (see LrnGeom).
template <typename T>
using LrnFn = void (*)(const LrnGeom&, const T* in, T* out);

/// Max-pooling kernel: per output, the window max under the scalar
/// reference's `if (v > best)` comparison semantics (NaNs never win).
template <typename T>
using PoolFn = void (*)(const PoolGeom&, const T* in, T* out);

/// Global average pool: out[c] = mean of the `plane`-element channel plane,
/// summed sequentially at double precision then re-quantized to T.
template <typename T>
using AvgPoolFn = void (*)(const T* in, T* out, std::size_t channels,
                           std::size_t plane);

/// Softmax over n elements: max-shifted, exp/sum at double precision,
/// non-finite inputs contribute exp(-inf) = 0 (see Softmax in layers.h).
template <typename T>
using SoftmaxFn = void (*)(const T* in, T* out, std::size_t n);

/// One registered kernel family for one datapath type.
template <typename T>
struct KernelSet {
  const char* name = "scalar";
  /// Every output is guaranteed bit-identical to the scalar reference.
  bool bit_identical = true;
  /// Lane-interleave width of the packed weight layout this set consumes
  /// (0: the set reads row-major weights directly; nothing to pack).
  std::size_t pack_lanes = 0;
  ConvFn<T> conv = nullptr;
  FcFn<T> fc = nullptr;
  EltwiseFn<T> relu = nullptr;
  LrnFn<T> lrn = nullptr;
  PoolFn<T> maxpool = nullptr;
  AvgPoolFn<T> avgpool = nullptr;
  SoftmaxFn<T> softmax = nullptr;
};

/// The scalar reference set: always available, always bit-identical.
template <typename T>
const KernelSet<T>& scalar_kernels() noexcept;

/// The process-wide active set for T, resolved once from DNNFI_KERNELS and
/// CPUID (or from the last set_active_mode override). Returned references
/// have static storage duration: an ExecutionPlan may hold one forever.
template <typename T>
const KernelSet<T>& active_kernels() noexcept;

/// Looks up a registered set by name regardless of DNNFI_KERNELS; null when
/// the name is unknown for T or this CPU lacks the required features.
template <typename T>
const KernelSet<T>* kernel_set(std::string_view name) noexcept;

/// Names of every set available for T on this CPU, scalar first.
template <typename T>
std::vector<const char*> registered_names();

/// Overrides the mode used by subsequent active_kernels calls (and thus
/// subsequently built ExecutionPlans) for every datapath type: one of
/// "scalar", "avx2", "avx2-relaxed", "avx512", or "auto" to restore the
/// DNNFI_KERNELS / CPUID default. Returns false (and changes nothing) for
/// unknown names. For tests and benches; call before building the plans it
/// should affect.
bool set_active_mode(std::string_view mode);

/// The resolved hardware/dispatch profile, for bench JSON attribution.
struct KernelProfile {
  std::string mode;            ///< requested: auto/scalar/avx2/avx2-relaxed/avx512
  bool cpu_avx2 = false;       ///< CPUID probe results
  bool cpu_avx512 = false;     ///< the avx512 kernel bundle (F+BW+VL+DQ)
  bool cpu_f16c = false;
  bool f16c_compiled = false;  ///< hardware Half conversions built in
  std::string active_float;    ///< resolved set name for FLOAT
  std::string active_float16;  ///< resolved set name for FLOAT16
};
KernelProfile kernel_profile();

/// Packed element count for `rows` x `cols` row-major weights interleaved
/// `lanes` wide: only full blocks of `lanes` rows pack.
constexpr std::size_t packed_elems(std::size_t rows, std::size_t cols,
                                   std::size_t lanes) noexcept {
  return lanes == 0 ? 0 : (rows / lanes) * cols * lanes;
}

/// Interleaves full lane-blocks of a rows x cols row-major weight array:
/// dst[(b*cols + c)*lanes + l] = w[(b*lanes + l)*cols + c]. Writes exactly
/// packed_elems(rows, cols, lanes) elements; remainder rows are not packed.
template <typename T>
void pack_rows(const T* w, std::size_t rows, std::size_t cols,
               std::size_t lanes, T* dst);

/// Dispatch helpers for layer-level call sites (no workspace, so no packed
/// copy): run the active set when it needs no packing, otherwise the scalar
/// reference. Under a bit-identical active set this is indistinguishable
/// from the Executor's packed path.
template <typename T>
void conv_forward(const ConvGeom& g, const T* in, const T* w, const T* bias,
                  T* out);
template <typename T>
void fc_forward(const FcGeom& g, const T* in, const T* w, const T* bias,
                T* out);
template <typename T>
void relu_forward(const T* in, T* out, std::size_t n);
template <typename T>
void lrn_forward(const LrnGeom& g, const T* in, T* out);
template <typename T>
void maxpool_forward(const PoolGeom& g, const T* in, T* out);
template <typename T>
void avgpool_forward(const T* in, T* out, std::size_t channels,
                     std::size_t plane);
template <typename T>
void softmax_forward(const T* in, T* out, std::size_t n);

#define DNNFI_KERNELS_EXTERN(T)                                             \
  extern template const KernelSet<T>& scalar_kernels<T>() noexcept;         \
  extern template const KernelSet<T>& active_kernels<T>() noexcept;         \
  extern template const KernelSet<T>* kernel_set<T>(std::string_view)       \
      noexcept;                                                             \
  extern template std::vector<const char*> registered_names<T>();           \
  extern template void pack_rows<T>(const T*, std::size_t, std::size_t,     \
                                    std::size_t, T*);                       \
  extern template void conv_forward<T>(const ConvGeom&, const T*, const T*, \
                                       const T*, T*);                       \
  extern template void fc_forward<T>(const FcGeom&, const T*, const T*,     \
                                     const T*, T*);                         \
  extern template void relu_forward<T>(const T*, T*, std::size_t);          \
  extern template void lrn_forward<T>(const LrnGeom&, const T*, T*);        \
  extern template void maxpool_forward<T>(const PoolGeom&, const T*, T*);   \
  extern template void avgpool_forward<T>(const T*, T*, std::size_t,        \
                                          std::size_t);                     \
  extern template void softmax_forward<T>(const T*, T*, std::size_t)

DNNFI_KERNELS_EXTERN(double);
DNNFI_KERNELS_EXTERN(float);
DNNFI_KERNELS_EXTERN(numeric::Half);
DNNFI_KERNELS_EXTERN(numeric::Fx32r26);
DNNFI_KERNELS_EXTERN(numeric::Fx32r10);
DNNFI_KERNELS_EXTERN(numeric::Fx16r10);
#undef DNNFI_KERNELS_EXTERN

}  // namespace dnnfi::dnn::kernels
