// AVX2/F16C kernel implementations. Compiled with -mavx2 -mf16c -mfma and
// -ffp-contract=off (src/CMakeLists.txt); entered only behind runtime CPUID
// probes, so DNNFI-built binaries still run on CPUs without these
// instructions.
//
// Codegen-safety discipline (same as simd_convert_f16c.cpp): everything this
// TU emits is either an exported avx2_* entry point or an internal-linkage
// helper. It deliberately instantiates no shared inline library function —
// no Half member calls, no kernel_scalar.h templates, std::memcpy instead of
// std::bit_cast — so the linker can never pick a VEX-encoded COMDAT copy of
// a function that non-AVX2 code paths also call. Remainder rows (output
// channel counts not divisible by the lane width) are handled by TU-local
// scalar loops that replicate kernel_scalar.h semantics exactly.
//
// Bit-identity strategy: vectorize ACROSS output channels, one output per
// lane. Each lane performs the scalar reference's accumulation chain — same
// (ci, ky, kx) order, separate multiply and add per tap (no FMA in the exact
// sets; -ffp-contract=off keeps the compiler from contracting the scalar
// tails), padded taps multiply a zero activation so NaN/Inf weights
// propagate identically. FLOAT16 rounds to half after every multiply and
// every add via VCVTPS2PH with a movemask-guarded fixup to the library's
// canonical quiet NaN (sign | 0x7E00), matching Half operator semantics
// bit-for-bit. The avx2_relaxed_* sets instead use FMA (float/double) or
// float accumulation with a single final rounding (FLOAT16): faster, not
// bit-identical.
#include "dnnfi/dnn/kernels/kernel_avx2.h"

#if defined(DNNFI_ENABLE_AVX2_KERNELS)

#include <immintrin.h>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstring>

namespace dnnfi::dnn::kernels::detail {

namespace {

constexpr int kRne = _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC;

inline std::uint16_t canonical_nan_bits(float v) noexcept {
  std::uint32_t fb;
  std::memcpy(&fb, &v, sizeof(fb));
  return static_cast<std::uint16_t>(((fb >> 16) & 0x8000U) | 0x7E00U);
}

// float -> half bits with the library's canonical-NaN rule, one lane.
inline std::uint16_t f2h(float v) noexcept {
  if (v != v) return canonical_nan_bits(v);
  return static_cast<std::uint16_t>(_cvtss_sh(v, kRne));
}

// float -> half bits, 8 lanes, canonical-NaN rule (VCVTPS2PH would truncate
// the NaN payload instead, diverging from the software converter).
inline __m128i cvtps_ph_canon(__m256 v) noexcept {
  __m128i h = _mm256_cvtps_ph(v, kRne);
  const int nan_mask = _mm256_movemask_ps(_mm256_cmp_ps(v, v, _CMP_UNORD_Q));
  if (nan_mask != 0) {
    alignas(32) float fv[8];
    alignas(16) std::uint16_t hb[8];
    _mm256_store_ps(fv, v);
    _mm_store_si128(reinterpret_cast<__m128i*>(hb), h);
    for (int l = 0; l < 8; ++l)
      if ((nan_mask >> l) & 1) hb[l] = canonical_nan_bits(fv[l]);
    h = _mm_load_si128(reinterpret_cast<const __m128i*>(hb));
  }
  return h;
}

// ---------------------------------------------------------------------------
// TU-local scalar remainders. Semantically identical to
// kernels::scalar_conv_rows / scalar_fc_rows, re-stated here so this TU never
// instantiates an external-linkage template.
// ---------------------------------------------------------------------------

template <typename T>
void conv_rows_plain(const ConvGeom& g, const T* in, const T* w_oihw,
                     const T* bias, T* out, std::size_t co_begin,
                     std::size_t co_end) {
  const auto pad = static_cast<std::ptrdiff_t>(g.pad);
  const std::size_t kvol = g.in_c * g.k * g.k;
  for (std::size_t co = co_begin; co < co_end; ++co) {
    const T* const wco = w_oihw + co * kvol;
    const T b = bias[co];
    T* op = out + co * g.out_h * g.out_w;
    for (std::size_t oy = 0; oy < g.out_h; ++oy) {
      for (std::size_t ox = 0; ox < g.out_w; ++ox) {
        T acc{};
        const T* w = wco;
        for (std::size_t ci = 0; ci < g.in_c; ++ci) {
          const T* const ic = in + ci * g.in_h * g.in_w;
          for (std::size_t ky = 0; ky < g.k; ++ky) {
            const std::ptrdiff_t iy =
                static_cast<std::ptrdiff_t>(oy * g.stride + ky) - pad;
            const bool row_ok =
                iy >= 0 && iy < static_cast<std::ptrdiff_t>(g.in_h);
            const T* const irow =
                row_ok ? ic + static_cast<std::size_t>(iy) * g.in_w : nullptr;
            for (std::size_t kx = 0; kx < g.k; ++kx, ++w) {
              const std::ptrdiff_t ix =
                  static_cast<std::ptrdiff_t>(ox * g.stride + kx) - pad;
              T act{};
              if (row_ok && ix >= 0 &&
                  ix < static_cast<std::ptrdiff_t>(g.in_w))
                act = irow[static_cast<std::size_t>(ix)];
              const T product = *w * act;
              acc += product;
            }
          }
        }
        acc += b;
        *op++ = acc;
      }
    }
  }
}

template <typename T>
void fc_rows_plain(const FcGeom& g, const T* in, const T* w, const T* bias,
                   T* out, std::size_t o_begin, std::size_t o_end) {
  for (std::size_t o = o_begin; o < o_end; ++o) {
    T acc{};
    const T* const wr = w + o * g.in;
    for (std::size_t i = 0; i < g.in; ++i) {
      const T product = wr[i] * in[i];
      acc += product;
    }
    acc += bias[o];
    out[o] = acc;
  }
}

// FLOAT16 scalar remainders over raw bits, using F16C single-lane converts.
// Half arithmetic is float-compute-then-round with the canonical-NaN rule;
// the hardware converts are bit-identical to the software ones (verified
// exhaustively by test_numeric_half), so these rows match the scalar
// reference regardless of which conversion path the reference build uses.
void conv_rows_half_bits(const ConvGeom& g, const std::uint16_t* in,
                         const std::uint16_t* w_oihw,
                         const std::uint16_t* bias, std::uint16_t* out,
                         std::size_t co_begin, std::size_t co_end) {
  const auto pad = static_cast<std::ptrdiff_t>(g.pad);
  const std::size_t kvol = g.in_c * g.k * g.k;
  for (std::size_t co = co_begin; co < co_end; ++co) {
    const std::uint16_t* const wco = w_oihw + co * kvol;
    const std::uint16_t b = bias[co];
    std::uint16_t* op = out + co * g.out_h * g.out_w;
    for (std::size_t oy = 0; oy < g.out_h; ++oy) {
      for (std::size_t ox = 0; ox < g.out_w; ++ox) {
        std::uint16_t acc = 0;
        const std::uint16_t* w = wco;
        for (std::size_t ci = 0; ci < g.in_c; ++ci) {
          const std::uint16_t* const ic = in + ci * g.in_h * g.in_w;
          for (std::size_t ky = 0; ky < g.k; ++ky) {
            const std::ptrdiff_t iy =
                static_cast<std::ptrdiff_t>(oy * g.stride + ky) - pad;
            const bool row_ok =
                iy >= 0 && iy < static_cast<std::ptrdiff_t>(g.in_h);
            const std::uint16_t* const irow =
                row_ok ? ic + static_cast<std::size_t>(iy) * g.in_w : nullptr;
            for (std::size_t kx = 0; kx < g.k; ++kx, ++w) {
              const std::ptrdiff_t ix =
                  static_cast<std::ptrdiff_t>(ox * g.stride + kx) - pad;
              std::uint16_t act = 0;
              if (row_ok && ix >= 0 &&
                  ix < static_cast<std::ptrdiff_t>(g.in_w))
                act = irow[static_cast<std::size_t>(ix)];
              const std::uint16_t product =
                  f2h(_cvtsh_ss(*w) * _cvtsh_ss(act));
              acc = f2h(_cvtsh_ss(acc) + _cvtsh_ss(product));
            }
          }
        }
        acc = f2h(_cvtsh_ss(acc) + _cvtsh_ss(b));
        *op++ = acc;
      }
    }
  }
}

void fc_rows_half_bits(const FcGeom& g, const std::uint16_t* in,
                       const std::uint16_t* w, const std::uint16_t* bias,
                       std::uint16_t* out, std::size_t o_begin,
                       std::size_t o_end) {
  for (std::size_t o = o_begin; o < o_end; ++o) {
    std::uint16_t acc = 0;
    const std::uint16_t* const wr = w + o * g.in;
    for (std::size_t i = 0; i < g.in; ++i) {
      const std::uint16_t product = f2h(_cvtsh_ss(wr[i]) * _cvtsh_ss(in[i]));
      acc = f2h(_cvtsh_ss(acc) + _cvtsh_ss(product));
    }
    acc = f2h(_cvtsh_ss(acc) + _cvtsh_ss(bias[o]));
    out[o] = acc;
  }
}

// ---------------------------------------------------------------------------
// float: 8 outputs per lane-block.
// ---------------------------------------------------------------------------

template <bool Fma>
void conv_f32_blocks(const ConvGeom& g, const float* in, const float* wp,
                     const float* bias, float* out, std::size_t blocks) {
  const auto pad = static_cast<std::ptrdiff_t>(g.pad);
  const std::size_t kvol = g.in_c * g.k * g.k;
  const std::size_t iplane = g.in_h * g.in_w;
  const std::size_t oplane = g.out_h * g.out_w;
  for (std::size_t b = 0; b < blocks; ++b) {
    const float* const wb = wp + b * kvol * 8;
    const __m256 bv = _mm256_loadu_ps(bias + b * 8);
    float* const ob = out + b * 8 * oplane;
    for (std::size_t oy = 0; oy < g.out_h; ++oy) {
      for (std::size_t ox = 0; ox < g.out_w; ++ox) {
        __m256 acc = _mm256_setzero_ps();
        const float* w = wb;
        for (std::size_t ci = 0; ci < g.in_c; ++ci) {
          const float* const ic = in + ci * iplane;
          for (std::size_t ky = 0; ky < g.k; ++ky) {
            const std::ptrdiff_t iy =
                static_cast<std::ptrdiff_t>(oy * g.stride + ky) - pad;
            const bool row_ok =
                iy >= 0 && iy < static_cast<std::ptrdiff_t>(g.in_h);
            const float* const irow =
                row_ok ? ic + static_cast<std::size_t>(iy) * g.in_w : nullptr;
            for (std::size_t kx = 0; kx < g.k; ++kx, w += 8) {
              const std::ptrdiff_t ix =
                  static_cast<std::ptrdiff_t>(ox * g.stride + kx) - pad;
              float act = 0.0f;
              if (row_ok && ix >= 0 &&
                  ix < static_cast<std::ptrdiff_t>(g.in_w))
                act = irow[static_cast<std::size_t>(ix)];
              const __m256 av = _mm256_set1_ps(act);
              const __m256 wv = _mm256_loadu_ps(w);
              if constexpr (Fma)
                acc = _mm256_fmadd_ps(wv, av, acc);
              else
                acc = _mm256_add_ps(acc, _mm256_mul_ps(wv, av));
            }
          }
        }
        acc = _mm256_add_ps(acc, bv);
        alignas(32) float lane[8];
        _mm256_store_ps(lane, acc);
        const std::size_t pix = oy * g.out_w + ox;
        for (std::size_t l = 0; l < 8; ++l) ob[l * oplane + pix] = lane[l];
      }
    }
  }
}

template <bool Fma>
void fc_f32_blocks(const FcGeom& g, const float* in, const float* wp,
                   const float* bias, float* out, std::size_t blocks) {
  for (std::size_t b = 0; b < blocks; ++b) {
    const float* w = wp + b * g.in * 8;
    __m256 acc = _mm256_setzero_ps();
    for (std::size_t i = 0; i < g.in; ++i, w += 8) {
      const __m256 av = _mm256_set1_ps(in[i]);
      const __m256 wv = _mm256_loadu_ps(w);
      if constexpr (Fma)
        acc = _mm256_fmadd_ps(wv, av, acc);
      else
        acc = _mm256_add_ps(acc, _mm256_mul_ps(wv, av));
    }
    acc = _mm256_add_ps(acc, _mm256_loadu_ps(bias + b * 8));
    _mm256_storeu_ps(out + b * 8, acc);
  }
}

// ---------------------------------------------------------------------------
// double: 4 outputs per lane-block.
// ---------------------------------------------------------------------------

template <bool Fma>
void conv_f64_blocks(const ConvGeom& g, const double* in, const double* wp,
                     const double* bias, double* out, std::size_t blocks) {
  const auto pad = static_cast<std::ptrdiff_t>(g.pad);
  const std::size_t kvol = g.in_c * g.k * g.k;
  const std::size_t iplane = g.in_h * g.in_w;
  const std::size_t oplane = g.out_h * g.out_w;
  for (std::size_t b = 0; b < blocks; ++b) {
    const double* const wb = wp + b * kvol * 4;
    const __m256d bv = _mm256_loadu_pd(bias + b * 4);
    double* const ob = out + b * 4 * oplane;
    for (std::size_t oy = 0; oy < g.out_h; ++oy) {
      for (std::size_t ox = 0; ox < g.out_w; ++ox) {
        __m256d acc = _mm256_setzero_pd();
        const double* w = wb;
        for (std::size_t ci = 0; ci < g.in_c; ++ci) {
          const double* const ic = in + ci * iplane;
          for (std::size_t ky = 0; ky < g.k; ++ky) {
            const std::ptrdiff_t iy =
                static_cast<std::ptrdiff_t>(oy * g.stride + ky) - pad;
            const bool row_ok =
                iy >= 0 && iy < static_cast<std::ptrdiff_t>(g.in_h);
            const double* const irow =
                row_ok ? ic + static_cast<std::size_t>(iy) * g.in_w : nullptr;
            for (std::size_t kx = 0; kx < g.k; ++kx, w += 4) {
              const std::ptrdiff_t ix =
                  static_cast<std::ptrdiff_t>(ox * g.stride + kx) - pad;
              double act = 0.0;
              if (row_ok && ix >= 0 &&
                  ix < static_cast<std::ptrdiff_t>(g.in_w))
                act = irow[static_cast<std::size_t>(ix)];
              const __m256d av = _mm256_set1_pd(act);
              const __m256d wv = _mm256_loadu_pd(w);
              if constexpr (Fma)
                acc = _mm256_fmadd_pd(wv, av, acc);
              else
                acc = _mm256_add_pd(acc, _mm256_mul_pd(wv, av));
            }
          }
        }
        acc = _mm256_add_pd(acc, bv);
        alignas(32) double lane[4];
        _mm256_store_pd(lane, acc);
        const std::size_t pix = oy * g.out_w + ox;
        for (std::size_t l = 0; l < 4; ++l) ob[l * oplane + pix] = lane[l];
      }
    }
  }
}

template <bool Fma>
void fc_f64_blocks(const FcGeom& g, const double* in, const double* wp,
                   const double* bias, double* out, std::size_t blocks) {
  for (std::size_t b = 0; b < blocks; ++b) {
    const double* w = wp + b * g.in * 4;
    __m256d acc = _mm256_setzero_pd();
    for (std::size_t i = 0; i < g.in; ++i, w += 4) {
      const __m256d av = _mm256_set1_pd(in[i]);
      const __m256d wv = _mm256_loadu_pd(w);
      if constexpr (Fma)
        acc = _mm256_fmadd_pd(wv, av, acc);
      else
        acc = _mm256_add_pd(acc, _mm256_mul_pd(wv, av));
    }
    acc = _mm256_add_pd(acc, _mm256_loadu_pd(bias + b * 4));
    _mm256_storeu_pd(out + b * 4, acc);
  }
}

// ---------------------------------------------------------------------------
// FLOAT16: 8 outputs per lane-block. Exact variant rounds to half after
// every multiply and add; relaxed variant accumulates in float and rounds
// once per output.
// ---------------------------------------------------------------------------

template <bool Relaxed>
void conv_f16_blocks(const ConvGeom& g, const std::uint16_t* in,
                     const std::uint16_t* wp, const std::uint16_t* bias,
                     std::uint16_t* out, std::size_t blocks) {
  const auto pad = static_cast<std::ptrdiff_t>(g.pad);
  const std::size_t kvol = g.in_c * g.k * g.k;
  const std::size_t iplane = g.in_h * g.in_w;
  const std::size_t oplane = g.out_h * g.out_w;
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::uint16_t* const wb = wp + b * kvol * 8;
    const __m128i bh =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(bias + b * 8));
    std::uint16_t* const ob = out + b * 8 * oplane;
    for (std::size_t oy = 0; oy < g.out_h; ++oy) {
      for (std::size_t ox = 0; ox < g.out_w; ++ox) {
        __m128i acch = _mm_setzero_si128();
        __m256 accf = _mm256_setzero_ps();
        const std::uint16_t* w = wb;
        for (std::size_t ci = 0; ci < g.in_c; ++ci) {
          const std::uint16_t* const ic = in + ci * iplane;
          for (std::size_t ky = 0; ky < g.k; ++ky) {
            const std::ptrdiff_t iy =
                static_cast<std::ptrdiff_t>(oy * g.stride + ky) - pad;
            const bool row_ok =
                iy >= 0 && iy < static_cast<std::ptrdiff_t>(g.in_h);
            const std::uint16_t* const irow =
                row_ok ? ic + static_cast<std::size_t>(iy) * g.in_w : nullptr;
            for (std::size_t kx = 0; kx < g.k; ++kx, w += 8) {
              const std::ptrdiff_t ix =
                  static_cast<std::ptrdiff_t>(ox * g.stride + kx) - pad;
              std::uint16_t act = 0;
              if (row_ok && ix >= 0 &&
                  ix < static_cast<std::ptrdiff_t>(g.in_w))
                act = irow[static_cast<std::size_t>(ix)];
              const __m256 av = _mm256_set1_ps(_cvtsh_ss(act));
              const __m256 wf = _mm256_cvtph_ps(
                  _mm_loadu_si128(reinterpret_cast<const __m128i*>(w)));
              if constexpr (Relaxed) {
                accf = _mm256_fmadd_ps(wf, av, accf);
              } else {
                const __m128i prod =
                    cvtps_ph_canon(_mm256_mul_ps(wf, av));
                acch = cvtps_ph_canon(_mm256_add_ps(
                    _mm256_cvtph_ps(acch), _mm256_cvtph_ps(prod)));
              }
            }
          }
        }
        __m128i res;
        if constexpr (Relaxed) {
          res = cvtps_ph_canon(
              _mm256_add_ps(accf, _mm256_cvtph_ps(bh)));
        } else {
          res = cvtps_ph_canon(_mm256_add_ps(_mm256_cvtph_ps(acch),
                                             _mm256_cvtph_ps(bh)));
        }
        alignas(16) std::uint16_t lane[8];
        _mm_store_si128(reinterpret_cast<__m128i*>(lane), res);
        const std::size_t pix = oy * g.out_w + ox;
        for (std::size_t l = 0; l < 8; ++l) ob[l * oplane + pix] = lane[l];
      }
    }
  }
}

template <bool Relaxed>
void fc_f16_blocks(const FcGeom& g, const std::uint16_t* in,
                   const std::uint16_t* wp, const std::uint16_t* bias,
                   std::uint16_t* out, std::size_t blocks) {
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::uint16_t* w = wp + b * g.in * 8;
    __m128i acch = _mm_setzero_si128();
    __m256 accf = _mm256_setzero_ps();
    for (std::size_t i = 0; i < g.in; ++i, w += 8) {
      const __m256 av = _mm256_set1_ps(_cvtsh_ss(in[i]));
      const __m256 wf = _mm256_cvtph_ps(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(w)));
      if constexpr (Relaxed) {
        accf = _mm256_fmadd_ps(wf, av, accf);
      } else {
        const __m128i prod = cvtps_ph_canon(_mm256_mul_ps(wf, av));
        acch = cvtps_ph_canon(
            _mm256_add_ps(_mm256_cvtph_ps(acch), _mm256_cvtph_ps(prod)));
      }
    }
    const __m128i bh =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(bias + b * 8));
    __m128i res;
    if constexpr (Relaxed) {
      res = cvtps_ph_canon(_mm256_add_ps(accf, _mm256_cvtph_ps(bh)));
    } else {
      res = cvtps_ph_canon(
          _mm256_add_ps(_mm256_cvtph_ps(acch), _mm256_cvtph_ps(bh)));
    }
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + b * 8), res);
  }
}

// ---------------------------------------------------------------------------
// Post-MAC kernels. Same discipline: TU-local helpers only, <cmath> calls
// restricted to the extern libm entry points (exp, pow) — no std:: inline
// templates (std::min/std::isfinite/...) that a non-AVX TU might also
// instantiate.
// ---------------------------------------------------------------------------

// float -> half bits, 4 lanes in the low half of the result, canonical-NaN
// rule (the 4-wide sibling of cvtps_ph_canon).
inline __m128i cvtps_ph_canon4(__m128 v) noexcept {
  __m128i h = _mm_cvtps_ph(v, kRne);
  const int nan_mask =
      _mm_movemask_ps(_mm_cmp_ps(v, v, _CMP_UNORD_Q)) & 0xF;
  if (nan_mask != 0) {
    alignas(16) float fv[4];
    alignas(16) std::uint16_t hb[8];
    _mm_store_ps(fv, v);
    _mm_store_si128(reinterpret_cast<__m128i*>(hb), h);
    for (int l = 0; l < 4; ++l)
      if ((nan_mask >> l) & 1) hb[l] = canonical_nan_bits(fv[l]);
    h = _mm_load_si128(reinterpret_cast<const __m128i*>(hb));
  }
  return h;
}

// Local restatement of kernels::lrn_pow (kernel_scalar.h): pow(base, beta)
// with the exact pow(1.0, beta) == 1.0 shortcut and a previous-base memo.
// pow is deterministic, so memoization never changes a value.
inline double lrn_pow_local(double base, double beta, double& memo_base,
                            double& memo_pow) noexcept {
  if (base == 1.0) return 1.0;
  if (base == memo_base) return memo_pow;
  memo_base = base;
  memo_pow = std::pow(base, beta);
  return memo_pow;
}

// Local restatement of kernels::softmax_shifted_exp over an already
// converted double. mx is always finite here, so the shift is never NaN.
inline double shifted_exp_local(double v, double mx) noexcept {
  if (v != v) v = -__builtin_inf();
  const double sh = v - mx;
  return std::exp(sh < 700.0 ? sh : 700.0);
}

// Per-type lane I/O for the double-precision post-MAC internals: 4
// contiguous elements <-> one __m256d, plus the single-element forms the
// scalar tails use. Conversions are exactly numeric_traits<T>'s
// to_double/from_double: float<->double casts are the hardware converts,
// Half goes half->float->double in and double->float->half (canonical NaN)
// out.
struct LaneIoF32 {
  using T = float;
  static __m256d load4(const float* p) noexcept {
    return _mm256_cvtps_pd(_mm_loadu_ps(p));
  }
  static void store4(__m256d v, float* p) noexcept {
    _mm_storeu_ps(p, _mm256_cvtpd_ps(v));
  }
  static double load1(const float* p) noexcept {
    return static_cast<double>(*p);
  }
  static void store1(double v, float* p) noexcept {
    *p = static_cast<float>(v);
  }
};

struct LaneIoF64 {
  using T = double;
  static __m256d load4(const double* p) noexcept { return _mm256_loadu_pd(p); }
  static void store4(__m256d v, double* p) noexcept {
    _mm256_storeu_pd(p, v);
  }
  static double load1(const double* p) noexcept { return *p; }
  static void store1(double v, double* p) noexcept { *p = v; }
};

struct LaneIoF16 {
  using T = std::uint16_t;
  static __m256d load4(const std::uint16_t* p) noexcept {
    const __m128i h =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p));
    return _mm256_cvtps_pd(_mm_cvtph_ps(h));
  }
  static void store4(__m256d v, std::uint16_t* p) noexcept {
    const __m128i h = cvtps_ph_canon4(_mm256_cvtpd_ps(v));
    _mm_storel_epi64(reinterpret_cast<__m128i*>(p), h);
  }
  static double load1(const std::uint16_t* p) noexcept {
    return static_cast<double>(_cvtsh_ss(*p));
  }
  static void store1(double v, std::uint16_t* p) noexcept {
    *p = f2h(static_cast<float>(v));
  }
};

// Scalar LRN over spatial positions [p0, p1): the tail/fallback path. Fresh
// per-output window sums in low-to-high channel order — identical to
// kernels::scalar_lrn (buffering never changed a bit, see kernel_scalar.h).
template <class Io>
void lrn_ref_positions(const LrnGeom& g, const typename Io::T* in,
                       typename Io::T* out, std::size_t p0, std::size_t p1) {
  const std::size_t plane = g.h * g.w;
  const auto half = static_cast<std::ptrdiff_t>(g.size / 2);
  const double an = g.alpha / static_cast<double>(g.size);
  for (std::size_t p = p0; p < p1; ++p) {
    double memo_base = __builtin_nan("");
    double memo_pow = 0.0;
    for (std::size_t c = 0; c < g.c; ++c) {
      const std::ptrdiff_t clo =
          (static_cast<std::ptrdiff_t>(c) - half) > 0
              ? static_cast<std::ptrdiff_t>(c) - half
              : 0;
      const std::ptrdiff_t chi =
          (static_cast<std::ptrdiff_t>(c) + half) <
                  static_cast<std::ptrdiff_t>(g.c) - 1
              ? static_cast<std::ptrdiff_t>(c) + half
              : static_cast<std::ptrdiff_t>(g.c) - 1;
      double ss = 0;
      for (std::ptrdiff_t cc = clo; cc <= chi; ++cc) {
        const double v =
            Io::load1(in + static_cast<std::size_t>(cc) * plane + p);
        ss += v * v;
      }
      const double base = g.k + an * ss;
      const double denom = lrn_pow_local(base, g.beta, memo_base, memo_pow);
      const double v = Io::load1(in + c * plane + p);
      Io::store1(v / denom, out + c * plane + p);
    }
  }
}

// Vectorized LRN: 4 consecutive spatial positions per lane-block. Each
// lane's window sum runs in the scalar order (clo..chi adds from a zero
// accumulator), base = k + an*ss is one multiply + one add, and the
// per-element pow stays a scalar libm call with a per-lane memo.
template <class Io>
void lrn_blocks(const LrnGeom& g, const typename Io::T* in,
                typename Io::T* out) {
  constexpr std::size_t kMaxC = 512;
  const std::size_t plane = g.h * g.w;
  if (g.c > kMaxC || plane < 4) {
    lrn_ref_positions<Io>(g, in, out, 0, plane);
    return;
  }
  const auto half = static_cast<std::ptrdiff_t>(g.size / 2);
  const double an = g.alpha / static_cast<double>(g.size);
  const __m256d kv = _mm256_set1_pd(g.k);
  const __m256d anv = _mm256_set1_pd(an);
  alignas(32) double vals[kMaxC * 4];
  alignas(32) double sqs[kMaxC * 4];
  std::size_t p = 0;
  for (; p + 4 <= plane; p += 4) {
    for (std::size_t c = 0; c < g.c; ++c) {
      const __m256d v = Io::load4(in + c * plane + p);
      _mm256_store_pd(vals + c * 4, v);
      _mm256_store_pd(sqs + c * 4, _mm256_mul_pd(v, v));
    }
    alignas(32) double memo_base[4];
    alignas(32) double memo_pow[4] = {0, 0, 0, 0};
    for (int l = 0; l < 4; ++l) memo_base[l] = __builtin_nan("");
    for (std::size_t c = 0; c < g.c; ++c) {
      const std::ptrdiff_t clo =
          (static_cast<std::ptrdiff_t>(c) - half) > 0
              ? static_cast<std::ptrdiff_t>(c) - half
              : 0;
      const std::ptrdiff_t chi =
          (static_cast<std::ptrdiff_t>(c) + half) <
                  static_cast<std::ptrdiff_t>(g.c) - 1
              ? static_cast<std::ptrdiff_t>(c) + half
              : static_cast<std::ptrdiff_t>(g.c) - 1;
      __m256d ss = _mm256_setzero_pd();
      for (std::ptrdiff_t cc = clo; cc <= chi; ++cc)
        ss = _mm256_add_pd(
            ss, _mm256_load_pd(sqs + static_cast<std::size_t>(cc) * 4));
      const __m256d base = _mm256_add_pd(kv, _mm256_mul_pd(anv, ss));
      alignas(32) double bl[4];
      alignas(32) double dl[4];
      _mm256_store_pd(bl, base);
      for (int l = 0; l < 4; ++l)
        dl[l] = lrn_pow_local(bl[l], g.beta, memo_base[l], memo_pow[l]);
      const __m256d outv =
          _mm256_div_pd(_mm256_load_pd(vals + c * 4), _mm256_load_pd(dl));
      Io::store4(outv, out + c * plane + p);
    }
  }
  if (p < plane) lrn_ref_positions<Io>(g, in, out, p, plane);
}

}  // namespace

// ---------------------------------------------------------------------------
// Exported entry points: lane blocks vectorized, remainder rows scalar.
// ---------------------------------------------------------------------------

void avx2_conv_float(const ConvGeom& g, const float* in, const float* w,
                     const float* wp, const float* bias, float* out) {
  const std::size_t blocks = g.out_c / 8;
  if (blocks > 0) conv_f32_blocks<false>(g, in, wp, bias, out, blocks);
  if (blocks * 8 < g.out_c)
    conv_rows_plain<float>(g, in, w, bias, out, blocks * 8, g.out_c);
}

void avx2_fc_float(const FcGeom& g, const float* in, const float* w,
                   const float* wp, const float* bias, float* out) {
  const std::size_t blocks = g.out / 8;
  if (blocks > 0) fc_f32_blocks<false>(g, in, wp, bias, out, blocks);
  if (blocks * 8 < g.out)
    fc_rows_plain<float>(g, in, w, bias, out, blocks * 8, g.out);
}

void avx2_relu_float(const float* in, float* out, std::size_t n) {
  const __m256 zero = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(in + i);
    _mm256_storeu_ps(out + i,
                     _mm256_and_ps(v, _mm256_cmp_ps(v, zero, _CMP_GT_OQ)));
  }
  for (; i < n; ++i) out[i] = (in[i] > 0.0f) ? in[i] : 0.0f;
}

void avx2_conv_double(const ConvGeom& g, const double* in, const double* w,
                      const double* wp, const double* bias, double* out) {
  const std::size_t blocks = g.out_c / 4;
  if (blocks > 0) conv_f64_blocks<false>(g, in, wp, bias, out, blocks);
  if (blocks * 4 < g.out_c)
    conv_rows_plain<double>(g, in, w, bias, out, blocks * 4, g.out_c);
}

void avx2_fc_double(const FcGeom& g, const double* in, const double* w,
                    const double* wp, const double* bias, double* out) {
  const std::size_t blocks = g.out / 4;
  if (blocks > 0) fc_f64_blocks<false>(g, in, wp, bias, out, blocks);
  if (blocks * 4 < g.out)
    fc_rows_plain<double>(g, in, w, bias, out, blocks * 4, g.out);
}

void avx2_relu_double(const double* in, double* out, std::size_t n) {
  const __m256d zero = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(in + i);
    _mm256_storeu_pd(out + i,
                     _mm256_and_pd(v, _mm256_cmp_pd(v, zero, _CMP_GT_OQ)));
  }
  for (; i < n; ++i) out[i] = (in[i] > 0.0) ? in[i] : 0.0;
}

void avx2_conv_half(const ConvGeom& g, const numeric::Half* in,
                    const numeric::Half* w, const numeric::Half* wp,
                    const numeric::Half* bias, numeric::Half* out) {
  const auto* ib = reinterpret_cast<const std::uint16_t*>(in);
  const auto* wb = reinterpret_cast<const std::uint16_t*>(w);
  const auto* pb = reinterpret_cast<const std::uint16_t*>(wp);
  const auto* bb = reinterpret_cast<const std::uint16_t*>(bias);
  auto* ob = reinterpret_cast<std::uint16_t*>(out);
  const std::size_t blocks = g.out_c / 8;
  if (blocks > 0) conv_f16_blocks<false>(g, ib, pb, bb, ob, blocks);
  if (blocks * 8 < g.out_c)
    conv_rows_half_bits(g, ib, wb, bb, ob, blocks * 8, g.out_c);
}

void avx2_fc_half(const FcGeom& g, const numeric::Half* in,
                  const numeric::Half* w, const numeric::Half* wp,
                  const numeric::Half* bias, numeric::Half* out) {
  const auto* ib = reinterpret_cast<const std::uint16_t*>(in);
  const auto* wb = reinterpret_cast<const std::uint16_t*>(w);
  const auto* pb = reinterpret_cast<const std::uint16_t*>(wp);
  const auto* bb = reinterpret_cast<const std::uint16_t*>(bias);
  auto* ob = reinterpret_cast<std::uint16_t*>(out);
  const std::size_t blocks = g.out / 8;
  if (blocks > 0) fc_f16_blocks<false>(g, ib, pb, bb, ob, blocks);
  if (blocks * 8 < g.out)
    fc_rows_half_bits(g, ib, wb, bb, ob, blocks * 8, g.out);
}

void avx2_relu_half(const numeric::Half* in, numeric::Half* out,
                    std::size_t n) {
  const auto* ip = reinterpret_cast<const std::uint16_t*>(in);
  auto* op = reinterpret_cast<std::uint16_t*>(out);
  const __m256 zero = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i h =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(ip + i));
    const __m256 f = _mm256_cvtph_ps(h);
    const __m256i m32 =
        _mm256_castps_si256(_mm256_cmp_ps(f, zero, _CMP_GT_OQ));
    const __m128i m16 = _mm_packs_epi32(_mm256_castsi256_si128(m32),
                                        _mm256_extracti128_si256(m32, 1));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(op + i),
                     _mm_and_si128(h, m16));
  }
  for (; i < n; ++i) op[i] = (_cvtsh_ss(ip[i]) > 0.0f) ? ip[i] : 0;
}

void avx2_relaxed_conv_float(const ConvGeom& g, const float* in,
                             const float* w, const float* wp,
                             const float* bias, float* out) {
  const std::size_t blocks = g.out_c / 8;
  if (blocks > 0) conv_f32_blocks<true>(g, in, wp, bias, out, blocks);
  if (blocks * 8 < g.out_c)
    conv_rows_plain<float>(g, in, w, bias, out, blocks * 8, g.out_c);
}

void avx2_relaxed_fc_float(const FcGeom& g, const float* in, const float* w,
                           const float* wp, const float* bias, float* out) {
  const std::size_t blocks = g.out / 8;
  if (blocks > 0) fc_f32_blocks<true>(g, in, wp, bias, out, blocks);
  if (blocks * 8 < g.out)
    fc_rows_plain<float>(g, in, w, bias, out, blocks * 8, g.out);
}

void avx2_relaxed_conv_double(const ConvGeom& g, const double* in,
                              const double* w, const double* wp,
                              const double* bias, double* out) {
  const std::size_t blocks = g.out_c / 4;
  if (blocks > 0) conv_f64_blocks<true>(g, in, wp, bias, out, blocks);
  if (blocks * 4 < g.out_c)
    conv_rows_plain<double>(g, in, w, bias, out, blocks * 4, g.out_c);
}

void avx2_relaxed_fc_double(const FcGeom& g, const double* in,
                            const double* w, const double* wp,
                            const double* bias, double* out) {
  const std::size_t blocks = g.out / 4;
  if (blocks > 0) fc_f64_blocks<true>(g, in, wp, bias, out, blocks);
  if (blocks * 4 < g.out)
    fc_rows_plain<double>(g, in, w, bias, out, blocks * 4, g.out);
}

void avx2_relaxed_conv_half(const ConvGeom& g, const numeric::Half* in,
                            const numeric::Half* w, const numeric::Half* wp,
                            const numeric::Half* bias, numeric::Half* out) {
  const auto* ib = reinterpret_cast<const std::uint16_t*>(in);
  const auto* wb = reinterpret_cast<const std::uint16_t*>(w);
  const auto* pb = reinterpret_cast<const std::uint16_t*>(wp);
  const auto* bb = reinterpret_cast<const std::uint16_t*>(bias);
  auto* ob = reinterpret_cast<std::uint16_t*>(out);
  const std::size_t blocks = g.out_c / 8;
  if (blocks > 0) conv_f16_blocks<true>(g, ib, pb, bb, ob, blocks);
  if (blocks * 8 < g.out_c)
    conv_rows_half_bits(g, ib, wb, bb, ob, blocks * 8, g.out_c);
}

void avx2_relaxed_fc_half(const FcGeom& g, const numeric::Half* in,
                          const numeric::Half* w, const numeric::Half* wp,
                          const numeric::Half* bias, numeric::Half* out) {
  const auto* ib = reinterpret_cast<const std::uint16_t*>(in);
  const auto* wb = reinterpret_cast<const std::uint16_t*>(w);
  const auto* pb = reinterpret_cast<const std::uint16_t*>(wp);
  const auto* bb = reinterpret_cast<const std::uint16_t*>(bias);
  auto* ob = reinterpret_cast<std::uint16_t*>(out);
  const std::size_t blocks = g.out / 8;
  if (blocks > 0) fc_f16_blocks<true>(g, ib, pb, bb, ob, blocks);
  if (blocks * 8 < g.out)
    fc_rows_half_bits(g, ib, wb, bb, ob, blocks * 8, g.out);
}

// ---------------------------------------------------------------------------
// Post-MAC entry points.
// ---------------------------------------------------------------------------

void avx2_lrn_float(const LrnGeom& g, const float* in, float* out) {
  lrn_blocks<LaneIoF32>(g, in, out);
}

void avx2_lrn_double(const LrnGeom& g, const double* in, double* out) {
  lrn_blocks<LaneIoF64>(g, in, out);
}

void avx2_lrn_half(const LrnGeom& g, const numeric::Half* in,
                   numeric::Half* out) {
  lrn_blocks<LaneIoF16>(g, reinterpret_cast<const std::uint16_t*>(in),
                        reinterpret_cast<std::uint16_t*>(out));
}

void avx2_maxpool_float(const PoolGeom& g, const float* in, float* out) {
  const std::size_t iplane = g.in_h * g.in_w;
  const std::size_t oplane = g.out_h * g.out_w;
  const __m256i idx = _mm256_mullo_epi32(
      _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7),
      _mm256_set1_epi32(static_cast<int>(g.stride)));
  for (std::size_t c = 0; c < g.c; ++c) {
    const float* const ic = in + c * iplane;
    float* const oc = out + c * oplane;
    for (std::size_t oy = 0; oy < g.out_h; ++oy) {
      const float* const iwin = ic + oy * g.stride * g.in_w;
      float* const orow = oc + oy * g.out_w;
      std::size_t ox = 0;
      for (; ox + 8 <= g.out_w; ox += 8) {
        const float* const base = iwin + ox * g.stride;
        __m256 best = _mm256_i32gather_ps(base, idx, 4);
        for (std::size_t ky = 0; ky < g.k; ++ky) {
          const float* const irow = base + ky * g.in_w;
          for (std::size_t kx = 0; kx < g.k; ++kx) {
            const __m256 v = _mm256_i32gather_ps(irow + kx, idx, 4);
            best = _mm256_blendv_ps(best, v,
                                    _mm256_cmp_ps(v, best, _CMP_GT_OQ));
          }
        }
        _mm256_storeu_ps(orow + ox, best);
      }
      for (; ox < g.out_w; ++ox) {
        const float* const base = iwin + ox * g.stride;
        float best = base[0];
        for (std::size_t ky = 0; ky < g.k; ++ky) {
          const float* const irow = base + ky * g.in_w;
          for (std::size_t kx = 0; kx < g.k; ++kx) {
            const float v = irow[kx];
            if (v > best) best = v;
          }
        }
        orow[ox] = best;
      }
    }
  }
}

void avx2_maxpool_double(const PoolGeom& g, const double* in, double* out) {
  const std::size_t iplane = g.in_h * g.in_w;
  const std::size_t oplane = g.out_h * g.out_w;
  const __m128i idx = _mm_mullo_epi32(
      _mm_setr_epi32(0, 1, 2, 3),
      _mm_set1_epi32(static_cast<int>(g.stride)));
  for (std::size_t c = 0; c < g.c; ++c) {
    const double* const ic = in + c * iplane;
    double* const oc = out + c * oplane;
    for (std::size_t oy = 0; oy < g.out_h; ++oy) {
      const double* const iwin = ic + oy * g.stride * g.in_w;
      double* const orow = oc + oy * g.out_w;
      std::size_t ox = 0;
      for (; ox + 4 <= g.out_w; ox += 4) {
        const double* const base = iwin + ox * g.stride;
        __m256d best = _mm256_i32gather_pd(base, idx, 8);
        for (std::size_t ky = 0; ky < g.k; ++ky) {
          const double* const irow = base + ky * g.in_w;
          for (std::size_t kx = 0; kx < g.k; ++kx) {
            const __m256d v = _mm256_i32gather_pd(irow + kx, idx, 8);
            best = _mm256_blendv_pd(best, v,
                                    _mm256_cmp_pd(v, best, _CMP_GT_OQ));
          }
        }
        _mm256_storeu_pd(orow + ox, best);
      }
      for (; ox < g.out_w; ++ox) {
        const double* const base = iwin + ox * g.stride;
        double best = base[0];
        for (std::size_t ky = 0; ky < g.k; ++ky) {
          const double* const irow = base + ky * g.in_w;
          for (std::size_t kx = 0; kx < g.k; ++kx) {
            const double v = irow[kx];
            if (v > best) best = v;
          }
        }
        orow[ox] = best;
      }
    }
  }
}

namespace {

// 8 half bits gathered at a stride, composed on the stack (no 16-bit
// hardware gather exists).
inline __m128i gather8h(const std::uint16_t* p, std::size_t stride) noexcept {
  alignas(16) std::uint16_t b[8];
  for (std::size_t l = 0; l < 8; ++l) b[l] = p[l * stride];
  return _mm_load_si128(reinterpret_cast<const __m128i*>(b));
}

// Lane mask (32-bit float compare) narrowed to 16-bit lanes for blending
// half bit patterns: compares run on the converted floats, winners keep
// their original 16 bits.
inline __m128i gt_mask16(__m128i a, __m128i b) noexcept {
  const __m256i m32 = _mm256_castps_si256(_mm256_cmp_ps(
      _mm256_cvtph_ps(a), _mm256_cvtph_ps(b), _CMP_GT_OQ));
  return _mm_packs_epi32(_mm256_castsi256_si128(m32),
                         _mm256_extracti128_si256(m32, 1));
}

}  // namespace

void avx2_maxpool_half(const PoolGeom& g, const numeric::Half* in,
                       numeric::Half* out) {
  const auto* ip = reinterpret_cast<const std::uint16_t*>(in);
  auto* op = reinterpret_cast<std::uint16_t*>(out);
  const std::size_t iplane = g.in_h * g.in_w;
  const std::size_t oplane = g.out_h * g.out_w;
  for (std::size_t c = 0; c < g.c; ++c) {
    const std::uint16_t* const ic = ip + c * iplane;
    std::uint16_t* const oc = op + c * oplane;
    for (std::size_t oy = 0; oy < g.out_h; ++oy) {
      const std::uint16_t* const iwin = ic + oy * g.stride * g.in_w;
      std::uint16_t* const orow = oc + oy * g.out_w;
      std::size_t ox = 0;
      for (; ox + 8 <= g.out_w; ox += 8) {
        const std::uint16_t* const base = iwin + ox * g.stride;
        __m128i best = gather8h(base, g.stride);
        for (std::size_t ky = 0; ky < g.k; ++ky) {
          const std::uint16_t* const irow = base + ky * g.in_w;
          for (std::size_t kx = 0; kx < g.k; ++kx) {
            const __m128i v = gather8h(irow + kx, g.stride);
            best = _mm_blendv_epi8(best, v, gt_mask16(v, best));
          }
        }
        _mm_storeu_si128(reinterpret_cast<__m128i*>(orow + ox), best);
      }
      for (; ox < g.out_w; ++ox) {
        const std::uint16_t* const base = iwin + ox * g.stride;
        std::uint16_t best = base[0];
        for (std::size_t ky = 0; ky < g.k; ++ky) {
          const std::uint16_t* const irow = base + ky * g.in_w;
          for (std::size_t kx = 0; kx < g.k; ++kx) {
            const std::uint16_t v = irow[kx];
            if (_cvtsh_ss(v) > _cvtsh_ss(best)) best = v;
          }
        }
        orow[ox] = best;
      }
    }
  }
}

void avx2_avgpool_float(const float* in, float* out, std::size_t channels,
                        std::size_t plane) {
  const double inv = 1.0 / static_cast<double>(plane);
  const __m256d invv = _mm256_set1_pd(inv);
  const int p = static_cast<int>(plane);
  const __m128i idx = _mm_setr_epi32(0, p, 2 * p, 3 * p);
  std::size_t c = 0;
  for (; c + 4 <= channels; c += 4) {
    const float* const base = in + c * plane;
    __m256d acc = _mm256_setzero_pd();
    for (std::size_t i = 0; i < plane; ++i)
      acc = _mm256_add_pd(
          acc, _mm256_cvtps_pd(_mm_i32gather_ps(base + i, idx, 4)));
    _mm_storeu_ps(out + c, _mm256_cvtpd_ps(_mm256_mul_pd(acc, invv)));
  }
  for (; c < channels; ++c) {
    const float* const ic = in + c * plane;
    double s = 0;
    for (std::size_t i = 0; i < plane; ++i)
      s += static_cast<double>(ic[i]);
    out[c] = static_cast<float>(s * inv);
  }
}

void avx2_avgpool_double(const double* in, double* out, std::size_t channels,
                         std::size_t plane) {
  const double inv = 1.0 / static_cast<double>(plane);
  const __m256d invv = _mm256_set1_pd(inv);
  const int p = static_cast<int>(plane);
  const __m128i idx = _mm_setr_epi32(0, p, 2 * p, 3 * p);
  std::size_t c = 0;
  for (; c + 4 <= channels; c += 4) {
    const double* const base = in + c * plane;
    __m256d acc = _mm256_setzero_pd();
    for (std::size_t i = 0; i < plane; ++i)
      acc = _mm256_add_pd(acc, _mm256_i32gather_pd(base + i, idx, 8));
    _mm256_storeu_pd(out + c, _mm256_mul_pd(acc, invv));
  }
  for (; c < channels; ++c) {
    const double* const ic = in + c * plane;
    double s = 0;
    for (std::size_t i = 0; i < plane; ++i) s += ic[i];
    out[c] = s * inv;
  }
}

void avx2_avgpool_half(const numeric::Half* in, numeric::Half* out,
                       std::size_t channels, std::size_t plane) {
  const auto* ip = reinterpret_cast<const std::uint16_t*>(in);
  auto* op = reinterpret_cast<std::uint16_t*>(out);
  const double inv = 1.0 / static_cast<double>(plane);
  const __m256d invv = _mm256_set1_pd(inv);
  std::size_t c = 0;
  for (; c + 4 <= channels; c += 4) {
    const std::uint16_t* const base = ip + c * plane;
    __m256d acc = _mm256_setzero_pd();
    for (std::size_t i = 0; i < plane; ++i) {
      alignas(16) std::uint16_t b[8] = {0, 0, 0, 0, 0, 0, 0, 0};
      for (std::size_t l = 0; l < 4; ++l) b[l] = base[l * plane + i];
      const __m128 f = _mm_cvtph_ps(
          _mm_load_si128(reinterpret_cast<const __m128i*>(b)));
      acc = _mm256_add_pd(acc, _mm256_cvtps_pd(f));
    }
    const __m128i h = cvtps_ph_canon4(_mm256_cvtpd_ps(
        _mm256_mul_pd(acc, invv)));
    _mm_storel_epi64(reinterpret_cast<__m128i*>(op + c), h);
  }
  for (; c < channels; ++c) {
    const std::uint16_t* const ic = ip + c * plane;
    double s = 0;
    for (std::size_t i = 0; i < plane; ++i)
      s += static_cast<double>(_cvtsh_ss(ic[i]));
    op[c] = f2h(static_cast<float>(s * inv));
  }
}

namespace {

constexpr std::size_t kSoftmaxStack = 1024;

// Finite-max pass over floats (the widened Half path shares it): lanes that
// are NaN or +/-Inf are replaced by -Inf before a vector max, so the result
// equals the scalar "max over finite elements" — max is exact, any
// association gives the same value (zero signs may differ; exp(v - mx) is
// unaffected, see Softmax in layers.h).
inline double finite_max_tail_f32(const float* in, std::size_t i,
                                  std::size_t n, __m256 run) noexcept {
  alignas(32) float lane[8];
  _mm256_store_ps(lane, run);
  double mx = -__builtin_inf();
  for (int l = 0; l < 8; ++l)
    if (static_cast<double>(lane[l]) > mx) mx = static_cast<double>(lane[l]);
  for (; i < n; ++i) {
    const double v = static_cast<double>(in[i]);
    if (__builtin_isfinite(v) && v > mx) mx = v;
  }
  return mx;
}

inline __m256 finite_lanes_or_ninf(__m256 v) noexcept {
  const __m256 fin = _mm256_cmp_ps(_mm256_sub_ps(v, v), _mm256_setzero_ps(),
                                   _CMP_EQ_OQ);
  return _mm256_blendv_ps(_mm256_set1_ps(-__builtin_inff()), v, fin);
}

}  // namespace

void avx2_softmax_float(const float* in, float* out, std::size_t n) {
  __m256 run = _mm256_set1_ps(-__builtin_inff());
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8)
    run = _mm256_max_ps(run, finite_lanes_or_ninf(_mm256_loadu_ps(in + i)));
  double mx = finite_max_tail_f32(in, i, n, run);
  if (!__builtin_isfinite(mx)) mx = 0;
  const bool buffered = n <= kSoftmaxStack;
  double buf[kSoftmaxStack];
  double sum = 0;
  for (i = 0; i < n; ++i) {
    const double e = shifted_exp_local(static_cast<double>(in[i]), mx);
    if (buffered) buf[i] = e;
    sum += e;
  }
  if (sum > 0 && buffered) {
    const __m256d sv = _mm256_set1_pd(sum);
    i = 0;
    for (; i + 4 <= n; i += 4)
      _mm_storeu_ps(out + i, _mm256_cvtpd_ps(_mm256_div_pd(
                                 _mm256_loadu_pd(buf + i), sv)));
    for (; i < n; ++i) out[i] = static_cast<float>(buf[i] / sum);
  } else if (sum > 0) {
    for (i = 0; i < n; ++i)
      out[i] = static_cast<float>(
          shifted_exp_local(static_cast<double>(in[i]), mx) / sum);
  } else {
    for (i = 0; i < n; ++i) out[i] = 0.0f;
  }
}

void avx2_softmax_double(const double* in, double* out, std::size_t n) {
  const __m256d ninf = _mm256_set1_pd(-__builtin_inf());
  __m256d run = ninf;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(in + i);
    const __m256d fin = _mm256_cmp_pd(
        _mm256_sub_pd(v, v), _mm256_setzero_pd(), _CMP_EQ_OQ);
    run = _mm256_max_pd(run, _mm256_blendv_pd(ninf, v, fin));
  }
  alignas(32) double lane[4];
  _mm256_store_pd(lane, run);
  double mx = -__builtin_inf();
  for (int l = 0; l < 4; ++l)
    if (lane[l] > mx) mx = lane[l];
  for (; i < n; ++i)
    if (__builtin_isfinite(in[i]) && in[i] > mx) mx = in[i];
  if (!__builtin_isfinite(mx)) mx = 0;
  const bool buffered = n <= kSoftmaxStack;
  double buf[kSoftmaxStack];
  double sum = 0;
  for (i = 0; i < n; ++i) {
    const double e = shifted_exp_local(in[i], mx);
    if (buffered) buf[i] = e;
    sum += e;
  }
  if (sum > 0 && buffered) {
    const __m256d sv = _mm256_set1_pd(sum);
    i = 0;
    for (; i + 4 <= n; i += 4)
      _mm256_storeu_pd(out + i,
                       _mm256_div_pd(_mm256_loadu_pd(buf + i), sv));
    for (; i < n; ++i) out[i] = buf[i] / sum;
  } else if (sum > 0) {
    for (i = 0; i < n; ++i) out[i] = shifted_exp_local(in[i], mx) / sum;
  } else {
    for (i = 0; i < n; ++i) out[i] = 0.0;
  }
}

void avx2_softmax_half(const numeric::Half* in, numeric::Half* out,
                       std::size_t n) {
  const auto* ip = reinterpret_cast<const std::uint16_t*>(in);
  auto* op = reinterpret_cast<std::uint16_t*>(out);
  __m256 run = _mm256_set1_ps(-__builtin_inff());
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_cvtph_ps(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(ip + i)));
    run = _mm256_max_ps(run, finite_lanes_or_ninf(v));
  }
  alignas(32) float lane[8];
  _mm256_store_ps(lane, run);
  double mx = -__builtin_inf();
  for (int l = 0; l < 8; ++l)
    if (static_cast<double>(lane[l]) > mx) mx = static_cast<double>(lane[l]);
  for (; i < n; ++i) {
    const double v = static_cast<double>(_cvtsh_ss(ip[i]));
    if (__builtin_isfinite(v) && v > mx) mx = v;
  }
  if (!__builtin_isfinite(mx)) mx = 0;
  const bool buffered = n <= kSoftmaxStack;
  double buf[kSoftmaxStack];
  double sum = 0;
  for (i = 0; i < n; ++i) {
    const double e =
        shifted_exp_local(static_cast<double>(_cvtsh_ss(ip[i])), mx);
    if (buffered) buf[i] = e;
    sum += e;
  }
  if (sum > 0 && buffered) {
    const __m256d sv = _mm256_set1_pd(sum);
    i = 0;
    for (; i + 4 <= n; i += 4) {
      const __m256d q = _mm256_div_pd(_mm256_loadu_pd(buf + i), sv);
      _mm_storel_epi64(reinterpret_cast<__m128i*>(op + i),
                       cvtps_ph_canon4(_mm256_cvtpd_ps(q)));
    }
    for (; i < n; ++i) op[i] = f2h(static_cast<float>(buf[i] / sum));
  } else if (sum > 0) {
    for (i = 0; i < n; ++i)
      op[i] = f2h(static_cast<float>(
          shifted_exp_local(static_cast<double>(_cvtsh_ss(ip[i])), mx) /
          sum));
  } else {
    for (i = 0; i < n; ++i) op[i] = 0;
  }
}

}  // namespace dnnfi::dnn::kernels::detail

#endif  // DNNFI_ENABLE_AVX2_KERNELS
