// AVX2/F16C kernel implementations. Compiled with -mavx2 -mf16c -mfma and
// -ffp-contract=off (src/CMakeLists.txt); entered only behind runtime CPUID
// probes, so DNNFI-built binaries still run on CPUs without these
// instructions.
//
// Codegen-safety discipline (same as simd_convert_f16c.cpp): everything this
// TU emits is either an exported avx2_* entry point or an internal-linkage
// helper. It deliberately instantiates no shared inline library function —
// no Half member calls, no kernel_scalar.h templates, std::memcpy instead of
// std::bit_cast — so the linker can never pick a VEX-encoded COMDAT copy of
// a function that non-AVX2 code paths also call. Remainder rows (output
// channel counts not divisible by the lane width) are handled by TU-local
// scalar loops that replicate kernel_scalar.h semantics exactly.
//
// Bit-identity strategy: vectorize ACROSS output channels, one output per
// lane. Each lane performs the scalar reference's accumulation chain — same
// (ci, ky, kx) order, separate multiply and add per tap (no FMA in the exact
// sets; -ffp-contract=off keeps the compiler from contracting the scalar
// tails), padded taps multiply a zero activation so NaN/Inf weights
// propagate identically. FLOAT16 rounds to half after every multiply and
// every add via VCVTPS2PH with a movemask-guarded fixup to the library's
// canonical quiet NaN (sign | 0x7E00), matching Half operator semantics
// bit-for-bit. The avx2_relaxed_* sets instead use FMA (float/double) or
// float accumulation with a single final rounding (FLOAT16): faster, not
// bit-identical.
#include "dnnfi/dnn/kernels/kernel_avx2.h"

#if defined(DNNFI_ENABLE_AVX2_KERNELS)

#include <immintrin.h>

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace dnnfi::dnn::kernels::detail {

namespace {

constexpr int kRne = _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC;

inline std::uint16_t canonical_nan_bits(float v) noexcept {
  std::uint32_t fb;
  std::memcpy(&fb, &v, sizeof(fb));
  return static_cast<std::uint16_t>(((fb >> 16) & 0x8000U) | 0x7E00U);
}

// float -> half bits with the library's canonical-NaN rule, one lane.
inline std::uint16_t f2h(float v) noexcept {
  if (v != v) return canonical_nan_bits(v);
  return static_cast<std::uint16_t>(_cvtss_sh(v, kRne));
}

// float -> half bits, 8 lanes, canonical-NaN rule (VCVTPS2PH would truncate
// the NaN payload instead, diverging from the software converter).
inline __m128i cvtps_ph_canon(__m256 v) noexcept {
  __m128i h = _mm256_cvtps_ph(v, kRne);
  const int nan_mask = _mm256_movemask_ps(_mm256_cmp_ps(v, v, _CMP_UNORD_Q));
  if (nan_mask != 0) {
    alignas(32) float fv[8];
    alignas(16) std::uint16_t hb[8];
    _mm256_store_ps(fv, v);
    _mm_store_si128(reinterpret_cast<__m128i*>(hb), h);
    for (int l = 0; l < 8; ++l)
      if ((nan_mask >> l) & 1) hb[l] = canonical_nan_bits(fv[l]);
    h = _mm_load_si128(reinterpret_cast<const __m128i*>(hb));
  }
  return h;
}

// ---------------------------------------------------------------------------
// TU-local scalar remainders. Semantically identical to
// kernels::scalar_conv_rows / scalar_fc_rows, re-stated here so this TU never
// instantiates an external-linkage template.
// ---------------------------------------------------------------------------

template <typename T>
void conv_rows_plain(const ConvGeom& g, const T* in, const T* w_oihw,
                     const T* bias, T* out, std::size_t co_begin,
                     std::size_t co_end) {
  const auto pad = static_cast<std::ptrdiff_t>(g.pad);
  const std::size_t kvol = g.in_c * g.k * g.k;
  for (std::size_t co = co_begin; co < co_end; ++co) {
    const T* const wco = w_oihw + co * kvol;
    const T b = bias[co];
    T* op = out + co * g.out_h * g.out_w;
    for (std::size_t oy = 0; oy < g.out_h; ++oy) {
      for (std::size_t ox = 0; ox < g.out_w; ++ox) {
        T acc{};
        const T* w = wco;
        for (std::size_t ci = 0; ci < g.in_c; ++ci) {
          const T* const ic = in + ci * g.in_h * g.in_w;
          for (std::size_t ky = 0; ky < g.k; ++ky) {
            const std::ptrdiff_t iy =
                static_cast<std::ptrdiff_t>(oy * g.stride + ky) - pad;
            const bool row_ok =
                iy >= 0 && iy < static_cast<std::ptrdiff_t>(g.in_h);
            const T* const irow =
                row_ok ? ic + static_cast<std::size_t>(iy) * g.in_w : nullptr;
            for (std::size_t kx = 0; kx < g.k; ++kx, ++w) {
              const std::ptrdiff_t ix =
                  static_cast<std::ptrdiff_t>(ox * g.stride + kx) - pad;
              T act{};
              if (row_ok && ix >= 0 &&
                  ix < static_cast<std::ptrdiff_t>(g.in_w))
                act = irow[static_cast<std::size_t>(ix)];
              const T product = *w * act;
              acc += product;
            }
          }
        }
        acc += b;
        *op++ = acc;
      }
    }
  }
}

template <typename T>
void fc_rows_plain(const FcGeom& g, const T* in, const T* w, const T* bias,
                   T* out, std::size_t o_begin, std::size_t o_end) {
  for (std::size_t o = o_begin; o < o_end; ++o) {
    T acc{};
    const T* const wr = w + o * g.in;
    for (std::size_t i = 0; i < g.in; ++i) {
      const T product = wr[i] * in[i];
      acc += product;
    }
    acc += bias[o];
    out[o] = acc;
  }
}

// FLOAT16 scalar remainders over raw bits, using F16C single-lane converts.
// Half arithmetic is float-compute-then-round with the canonical-NaN rule;
// the hardware converts are bit-identical to the software ones (verified
// exhaustively by test_numeric_half), so these rows match the scalar
// reference regardless of which conversion path the reference build uses.
void conv_rows_half_bits(const ConvGeom& g, const std::uint16_t* in,
                         const std::uint16_t* w_oihw,
                         const std::uint16_t* bias, std::uint16_t* out,
                         std::size_t co_begin, std::size_t co_end) {
  const auto pad = static_cast<std::ptrdiff_t>(g.pad);
  const std::size_t kvol = g.in_c * g.k * g.k;
  for (std::size_t co = co_begin; co < co_end; ++co) {
    const std::uint16_t* const wco = w_oihw + co * kvol;
    const std::uint16_t b = bias[co];
    std::uint16_t* op = out + co * g.out_h * g.out_w;
    for (std::size_t oy = 0; oy < g.out_h; ++oy) {
      for (std::size_t ox = 0; ox < g.out_w; ++ox) {
        std::uint16_t acc = 0;
        const std::uint16_t* w = wco;
        for (std::size_t ci = 0; ci < g.in_c; ++ci) {
          const std::uint16_t* const ic = in + ci * g.in_h * g.in_w;
          for (std::size_t ky = 0; ky < g.k; ++ky) {
            const std::ptrdiff_t iy =
                static_cast<std::ptrdiff_t>(oy * g.stride + ky) - pad;
            const bool row_ok =
                iy >= 0 && iy < static_cast<std::ptrdiff_t>(g.in_h);
            const std::uint16_t* const irow =
                row_ok ? ic + static_cast<std::size_t>(iy) * g.in_w : nullptr;
            for (std::size_t kx = 0; kx < g.k; ++kx, ++w) {
              const std::ptrdiff_t ix =
                  static_cast<std::ptrdiff_t>(ox * g.stride + kx) - pad;
              std::uint16_t act = 0;
              if (row_ok && ix >= 0 &&
                  ix < static_cast<std::ptrdiff_t>(g.in_w))
                act = irow[static_cast<std::size_t>(ix)];
              const std::uint16_t product =
                  f2h(_cvtsh_ss(*w) * _cvtsh_ss(act));
              acc = f2h(_cvtsh_ss(acc) + _cvtsh_ss(product));
            }
          }
        }
        acc = f2h(_cvtsh_ss(acc) + _cvtsh_ss(b));
        *op++ = acc;
      }
    }
  }
}

void fc_rows_half_bits(const FcGeom& g, const std::uint16_t* in,
                       const std::uint16_t* w, const std::uint16_t* bias,
                       std::uint16_t* out, std::size_t o_begin,
                       std::size_t o_end) {
  for (std::size_t o = o_begin; o < o_end; ++o) {
    std::uint16_t acc = 0;
    const std::uint16_t* const wr = w + o * g.in;
    for (std::size_t i = 0; i < g.in; ++i) {
      const std::uint16_t product = f2h(_cvtsh_ss(wr[i]) * _cvtsh_ss(in[i]));
      acc = f2h(_cvtsh_ss(acc) + _cvtsh_ss(product));
    }
    acc = f2h(_cvtsh_ss(acc) + _cvtsh_ss(bias[o]));
    out[o] = acc;
  }
}

// ---------------------------------------------------------------------------
// float: 8 outputs per lane-block.
// ---------------------------------------------------------------------------

template <bool Fma>
void conv_f32_blocks(const ConvGeom& g, const float* in, const float* wp,
                     const float* bias, float* out, std::size_t blocks) {
  const auto pad = static_cast<std::ptrdiff_t>(g.pad);
  const std::size_t kvol = g.in_c * g.k * g.k;
  const std::size_t iplane = g.in_h * g.in_w;
  const std::size_t oplane = g.out_h * g.out_w;
  for (std::size_t b = 0; b < blocks; ++b) {
    const float* const wb = wp + b * kvol * 8;
    const __m256 bv = _mm256_loadu_ps(bias + b * 8);
    float* const ob = out + b * 8 * oplane;
    for (std::size_t oy = 0; oy < g.out_h; ++oy) {
      for (std::size_t ox = 0; ox < g.out_w; ++ox) {
        __m256 acc = _mm256_setzero_ps();
        const float* w = wb;
        for (std::size_t ci = 0; ci < g.in_c; ++ci) {
          const float* const ic = in + ci * iplane;
          for (std::size_t ky = 0; ky < g.k; ++ky) {
            const std::ptrdiff_t iy =
                static_cast<std::ptrdiff_t>(oy * g.stride + ky) - pad;
            const bool row_ok =
                iy >= 0 && iy < static_cast<std::ptrdiff_t>(g.in_h);
            const float* const irow =
                row_ok ? ic + static_cast<std::size_t>(iy) * g.in_w : nullptr;
            for (std::size_t kx = 0; kx < g.k; ++kx, w += 8) {
              const std::ptrdiff_t ix =
                  static_cast<std::ptrdiff_t>(ox * g.stride + kx) - pad;
              float act = 0.0f;
              if (row_ok && ix >= 0 &&
                  ix < static_cast<std::ptrdiff_t>(g.in_w))
                act = irow[static_cast<std::size_t>(ix)];
              const __m256 av = _mm256_set1_ps(act);
              const __m256 wv = _mm256_loadu_ps(w);
              if constexpr (Fma)
                acc = _mm256_fmadd_ps(wv, av, acc);
              else
                acc = _mm256_add_ps(acc, _mm256_mul_ps(wv, av));
            }
          }
        }
        acc = _mm256_add_ps(acc, bv);
        alignas(32) float lane[8];
        _mm256_store_ps(lane, acc);
        const std::size_t pix = oy * g.out_w + ox;
        for (std::size_t l = 0; l < 8; ++l) ob[l * oplane + pix] = lane[l];
      }
    }
  }
}

template <bool Fma>
void fc_f32_blocks(const FcGeom& g, const float* in, const float* wp,
                   const float* bias, float* out, std::size_t blocks) {
  for (std::size_t b = 0; b < blocks; ++b) {
    const float* w = wp + b * g.in * 8;
    __m256 acc = _mm256_setzero_ps();
    for (std::size_t i = 0; i < g.in; ++i, w += 8) {
      const __m256 av = _mm256_set1_ps(in[i]);
      const __m256 wv = _mm256_loadu_ps(w);
      if constexpr (Fma)
        acc = _mm256_fmadd_ps(wv, av, acc);
      else
        acc = _mm256_add_ps(acc, _mm256_mul_ps(wv, av));
    }
    acc = _mm256_add_ps(acc, _mm256_loadu_ps(bias + b * 8));
    _mm256_storeu_ps(out + b * 8, acc);
  }
}

// ---------------------------------------------------------------------------
// double: 4 outputs per lane-block.
// ---------------------------------------------------------------------------

template <bool Fma>
void conv_f64_blocks(const ConvGeom& g, const double* in, const double* wp,
                     const double* bias, double* out, std::size_t blocks) {
  const auto pad = static_cast<std::ptrdiff_t>(g.pad);
  const std::size_t kvol = g.in_c * g.k * g.k;
  const std::size_t iplane = g.in_h * g.in_w;
  const std::size_t oplane = g.out_h * g.out_w;
  for (std::size_t b = 0; b < blocks; ++b) {
    const double* const wb = wp + b * kvol * 4;
    const __m256d bv = _mm256_loadu_pd(bias + b * 4);
    double* const ob = out + b * 4 * oplane;
    for (std::size_t oy = 0; oy < g.out_h; ++oy) {
      for (std::size_t ox = 0; ox < g.out_w; ++ox) {
        __m256d acc = _mm256_setzero_pd();
        const double* w = wb;
        for (std::size_t ci = 0; ci < g.in_c; ++ci) {
          const double* const ic = in + ci * iplane;
          for (std::size_t ky = 0; ky < g.k; ++ky) {
            const std::ptrdiff_t iy =
                static_cast<std::ptrdiff_t>(oy * g.stride + ky) - pad;
            const bool row_ok =
                iy >= 0 && iy < static_cast<std::ptrdiff_t>(g.in_h);
            const double* const irow =
                row_ok ? ic + static_cast<std::size_t>(iy) * g.in_w : nullptr;
            for (std::size_t kx = 0; kx < g.k; ++kx, w += 4) {
              const std::ptrdiff_t ix =
                  static_cast<std::ptrdiff_t>(ox * g.stride + kx) - pad;
              double act = 0.0;
              if (row_ok && ix >= 0 &&
                  ix < static_cast<std::ptrdiff_t>(g.in_w))
                act = irow[static_cast<std::size_t>(ix)];
              const __m256d av = _mm256_set1_pd(act);
              const __m256d wv = _mm256_loadu_pd(w);
              if constexpr (Fma)
                acc = _mm256_fmadd_pd(wv, av, acc);
              else
                acc = _mm256_add_pd(acc, _mm256_mul_pd(wv, av));
            }
          }
        }
        acc = _mm256_add_pd(acc, bv);
        alignas(32) double lane[4];
        _mm256_store_pd(lane, acc);
        const std::size_t pix = oy * g.out_w + ox;
        for (std::size_t l = 0; l < 4; ++l) ob[l * oplane + pix] = lane[l];
      }
    }
  }
}

template <bool Fma>
void fc_f64_blocks(const FcGeom& g, const double* in, const double* wp,
                   const double* bias, double* out, std::size_t blocks) {
  for (std::size_t b = 0; b < blocks; ++b) {
    const double* w = wp + b * g.in * 4;
    __m256d acc = _mm256_setzero_pd();
    for (std::size_t i = 0; i < g.in; ++i, w += 4) {
      const __m256d av = _mm256_set1_pd(in[i]);
      const __m256d wv = _mm256_loadu_pd(w);
      if constexpr (Fma)
        acc = _mm256_fmadd_pd(wv, av, acc);
      else
        acc = _mm256_add_pd(acc, _mm256_mul_pd(wv, av));
    }
    acc = _mm256_add_pd(acc, _mm256_loadu_pd(bias + b * 4));
    _mm256_storeu_pd(out + b * 4, acc);
  }
}

// ---------------------------------------------------------------------------
// FLOAT16: 8 outputs per lane-block. Exact variant rounds to half after
// every multiply and add; relaxed variant accumulates in float and rounds
// once per output.
// ---------------------------------------------------------------------------

template <bool Relaxed>
void conv_f16_blocks(const ConvGeom& g, const std::uint16_t* in,
                     const std::uint16_t* wp, const std::uint16_t* bias,
                     std::uint16_t* out, std::size_t blocks) {
  const auto pad = static_cast<std::ptrdiff_t>(g.pad);
  const std::size_t kvol = g.in_c * g.k * g.k;
  const std::size_t iplane = g.in_h * g.in_w;
  const std::size_t oplane = g.out_h * g.out_w;
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::uint16_t* const wb = wp + b * kvol * 8;
    const __m128i bh =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(bias + b * 8));
    std::uint16_t* const ob = out + b * 8 * oplane;
    for (std::size_t oy = 0; oy < g.out_h; ++oy) {
      for (std::size_t ox = 0; ox < g.out_w; ++ox) {
        __m128i acch = _mm_setzero_si128();
        __m256 accf = _mm256_setzero_ps();
        const std::uint16_t* w = wb;
        for (std::size_t ci = 0; ci < g.in_c; ++ci) {
          const std::uint16_t* const ic = in + ci * iplane;
          for (std::size_t ky = 0; ky < g.k; ++ky) {
            const std::ptrdiff_t iy =
                static_cast<std::ptrdiff_t>(oy * g.stride + ky) - pad;
            const bool row_ok =
                iy >= 0 && iy < static_cast<std::ptrdiff_t>(g.in_h);
            const std::uint16_t* const irow =
                row_ok ? ic + static_cast<std::size_t>(iy) * g.in_w : nullptr;
            for (std::size_t kx = 0; kx < g.k; ++kx, w += 8) {
              const std::ptrdiff_t ix =
                  static_cast<std::ptrdiff_t>(ox * g.stride + kx) - pad;
              std::uint16_t act = 0;
              if (row_ok && ix >= 0 &&
                  ix < static_cast<std::ptrdiff_t>(g.in_w))
                act = irow[static_cast<std::size_t>(ix)];
              const __m256 av = _mm256_set1_ps(_cvtsh_ss(act));
              const __m256 wf = _mm256_cvtph_ps(
                  _mm_loadu_si128(reinterpret_cast<const __m128i*>(w)));
              if constexpr (Relaxed) {
                accf = _mm256_fmadd_ps(wf, av, accf);
              } else {
                const __m128i prod =
                    cvtps_ph_canon(_mm256_mul_ps(wf, av));
                acch = cvtps_ph_canon(_mm256_add_ps(
                    _mm256_cvtph_ps(acch), _mm256_cvtph_ps(prod)));
              }
            }
          }
        }
        __m128i res;
        if constexpr (Relaxed) {
          res = cvtps_ph_canon(
              _mm256_add_ps(accf, _mm256_cvtph_ps(bh)));
        } else {
          res = cvtps_ph_canon(_mm256_add_ps(_mm256_cvtph_ps(acch),
                                             _mm256_cvtph_ps(bh)));
        }
        alignas(16) std::uint16_t lane[8];
        _mm_store_si128(reinterpret_cast<__m128i*>(lane), res);
        const std::size_t pix = oy * g.out_w + ox;
        for (std::size_t l = 0; l < 8; ++l) ob[l * oplane + pix] = lane[l];
      }
    }
  }
}

template <bool Relaxed>
void fc_f16_blocks(const FcGeom& g, const std::uint16_t* in,
                   const std::uint16_t* wp, const std::uint16_t* bias,
                   std::uint16_t* out, std::size_t blocks) {
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::uint16_t* w = wp + b * g.in * 8;
    __m128i acch = _mm_setzero_si128();
    __m256 accf = _mm256_setzero_ps();
    for (std::size_t i = 0; i < g.in; ++i, w += 8) {
      const __m256 av = _mm256_set1_ps(_cvtsh_ss(in[i]));
      const __m256 wf = _mm256_cvtph_ps(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(w)));
      if constexpr (Relaxed) {
        accf = _mm256_fmadd_ps(wf, av, accf);
      } else {
        const __m128i prod = cvtps_ph_canon(_mm256_mul_ps(wf, av));
        acch = cvtps_ph_canon(
            _mm256_add_ps(_mm256_cvtph_ps(acch), _mm256_cvtph_ps(prod)));
      }
    }
    const __m128i bh =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(bias + b * 8));
    __m128i res;
    if constexpr (Relaxed) {
      res = cvtps_ph_canon(_mm256_add_ps(accf, _mm256_cvtph_ps(bh)));
    } else {
      res = cvtps_ph_canon(
          _mm256_add_ps(_mm256_cvtph_ps(acch), _mm256_cvtph_ps(bh)));
    }
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + b * 8), res);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Exported entry points: lane blocks vectorized, remainder rows scalar.
// ---------------------------------------------------------------------------

void avx2_conv_float(const ConvGeom& g, const float* in, const float* w,
                     const float* wp, const float* bias, float* out) {
  const std::size_t blocks = g.out_c / 8;
  if (blocks > 0) conv_f32_blocks<false>(g, in, wp, bias, out, blocks);
  if (blocks * 8 < g.out_c)
    conv_rows_plain<float>(g, in, w, bias, out, blocks * 8, g.out_c);
}

void avx2_fc_float(const FcGeom& g, const float* in, const float* w,
                   const float* wp, const float* bias, float* out) {
  const std::size_t blocks = g.out / 8;
  if (blocks > 0) fc_f32_blocks<false>(g, in, wp, bias, out, blocks);
  if (blocks * 8 < g.out)
    fc_rows_plain<float>(g, in, w, bias, out, blocks * 8, g.out);
}

void avx2_relu_float(const float* in, float* out, std::size_t n) {
  const __m256 zero = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(in + i);
    _mm256_storeu_ps(out + i,
                     _mm256_and_ps(v, _mm256_cmp_ps(v, zero, _CMP_GT_OQ)));
  }
  for (; i < n; ++i) out[i] = (in[i] > 0.0f) ? in[i] : 0.0f;
}

void avx2_conv_double(const ConvGeom& g, const double* in, const double* w,
                      const double* wp, const double* bias, double* out) {
  const std::size_t blocks = g.out_c / 4;
  if (blocks > 0) conv_f64_blocks<false>(g, in, wp, bias, out, blocks);
  if (blocks * 4 < g.out_c)
    conv_rows_plain<double>(g, in, w, bias, out, blocks * 4, g.out_c);
}

void avx2_fc_double(const FcGeom& g, const double* in, const double* w,
                    const double* wp, const double* bias, double* out) {
  const std::size_t blocks = g.out / 4;
  if (blocks > 0) fc_f64_blocks<false>(g, in, wp, bias, out, blocks);
  if (blocks * 4 < g.out)
    fc_rows_plain<double>(g, in, w, bias, out, blocks * 4, g.out);
}

void avx2_relu_double(const double* in, double* out, std::size_t n) {
  const __m256d zero = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(in + i);
    _mm256_storeu_pd(out + i,
                     _mm256_and_pd(v, _mm256_cmp_pd(v, zero, _CMP_GT_OQ)));
  }
  for (; i < n; ++i) out[i] = (in[i] > 0.0) ? in[i] : 0.0;
}

void avx2_conv_half(const ConvGeom& g, const numeric::Half* in,
                    const numeric::Half* w, const numeric::Half* wp,
                    const numeric::Half* bias, numeric::Half* out) {
  const auto* ib = reinterpret_cast<const std::uint16_t*>(in);
  const auto* wb = reinterpret_cast<const std::uint16_t*>(w);
  const auto* pb = reinterpret_cast<const std::uint16_t*>(wp);
  const auto* bb = reinterpret_cast<const std::uint16_t*>(bias);
  auto* ob = reinterpret_cast<std::uint16_t*>(out);
  const std::size_t blocks = g.out_c / 8;
  if (blocks > 0) conv_f16_blocks<false>(g, ib, pb, bb, ob, blocks);
  if (blocks * 8 < g.out_c)
    conv_rows_half_bits(g, ib, wb, bb, ob, blocks * 8, g.out_c);
}

void avx2_fc_half(const FcGeom& g, const numeric::Half* in,
                  const numeric::Half* w, const numeric::Half* wp,
                  const numeric::Half* bias, numeric::Half* out) {
  const auto* ib = reinterpret_cast<const std::uint16_t*>(in);
  const auto* wb = reinterpret_cast<const std::uint16_t*>(w);
  const auto* pb = reinterpret_cast<const std::uint16_t*>(wp);
  const auto* bb = reinterpret_cast<const std::uint16_t*>(bias);
  auto* ob = reinterpret_cast<std::uint16_t*>(out);
  const std::size_t blocks = g.out / 8;
  if (blocks > 0) fc_f16_blocks<false>(g, ib, pb, bb, ob, blocks);
  if (blocks * 8 < g.out)
    fc_rows_half_bits(g, ib, wb, bb, ob, blocks * 8, g.out);
}

void avx2_relu_half(const numeric::Half* in, numeric::Half* out,
                    std::size_t n) {
  const auto* ip = reinterpret_cast<const std::uint16_t*>(in);
  auto* op = reinterpret_cast<std::uint16_t*>(out);
  const __m256 zero = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i h =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(ip + i));
    const __m256 f = _mm256_cvtph_ps(h);
    const __m256i m32 =
        _mm256_castps_si256(_mm256_cmp_ps(f, zero, _CMP_GT_OQ));
    const __m128i m16 = _mm_packs_epi32(_mm256_castsi256_si128(m32),
                                        _mm256_extracti128_si256(m32, 1));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(op + i),
                     _mm_and_si128(h, m16));
  }
  for (; i < n; ++i) op[i] = (_cvtsh_ss(ip[i]) > 0.0f) ? ip[i] : 0;
}

void avx2_relaxed_conv_float(const ConvGeom& g, const float* in,
                             const float* w, const float* wp,
                             const float* bias, float* out) {
  const std::size_t blocks = g.out_c / 8;
  if (blocks > 0) conv_f32_blocks<true>(g, in, wp, bias, out, blocks);
  if (blocks * 8 < g.out_c)
    conv_rows_plain<float>(g, in, w, bias, out, blocks * 8, g.out_c);
}

void avx2_relaxed_fc_float(const FcGeom& g, const float* in, const float* w,
                           const float* wp, const float* bias, float* out) {
  const std::size_t blocks = g.out / 8;
  if (blocks > 0) fc_f32_blocks<true>(g, in, wp, bias, out, blocks);
  if (blocks * 8 < g.out)
    fc_rows_plain<float>(g, in, w, bias, out, blocks * 8, g.out);
}

void avx2_relaxed_conv_double(const ConvGeom& g, const double* in,
                              const double* w, const double* wp,
                              const double* bias, double* out) {
  const std::size_t blocks = g.out_c / 4;
  if (blocks > 0) conv_f64_blocks<true>(g, in, wp, bias, out, blocks);
  if (blocks * 4 < g.out_c)
    conv_rows_plain<double>(g, in, w, bias, out, blocks * 4, g.out_c);
}

void avx2_relaxed_fc_double(const FcGeom& g, const double* in,
                            const double* w, const double* wp,
                            const double* bias, double* out) {
  const std::size_t blocks = g.out / 4;
  if (blocks > 0) fc_f64_blocks<true>(g, in, wp, bias, out, blocks);
  if (blocks * 4 < g.out)
    fc_rows_plain<double>(g, in, w, bias, out, blocks * 4, g.out);
}

void avx2_relaxed_conv_half(const ConvGeom& g, const numeric::Half* in,
                            const numeric::Half* w, const numeric::Half* wp,
                            const numeric::Half* bias, numeric::Half* out) {
  const auto* ib = reinterpret_cast<const std::uint16_t*>(in);
  const auto* wb = reinterpret_cast<const std::uint16_t*>(w);
  const auto* pb = reinterpret_cast<const std::uint16_t*>(wp);
  const auto* bb = reinterpret_cast<const std::uint16_t*>(bias);
  auto* ob = reinterpret_cast<std::uint16_t*>(out);
  const std::size_t blocks = g.out_c / 8;
  if (blocks > 0) conv_f16_blocks<true>(g, ib, pb, bb, ob, blocks);
  if (blocks * 8 < g.out_c)
    conv_rows_half_bits(g, ib, wb, bb, ob, blocks * 8, g.out_c);
}

void avx2_relaxed_fc_half(const FcGeom& g, const numeric::Half* in,
                          const numeric::Half* w, const numeric::Half* wp,
                          const numeric::Half* bias, numeric::Half* out) {
  const auto* ib = reinterpret_cast<const std::uint16_t*>(in);
  const auto* wb = reinterpret_cast<const std::uint16_t*>(w);
  const auto* pb = reinterpret_cast<const std::uint16_t*>(wp);
  const auto* bb = reinterpret_cast<const std::uint16_t*>(bias);
  auto* ob = reinterpret_cast<std::uint16_t*>(out);
  const std::size_t blocks = g.out / 8;
  if (blocks > 0) fc_f16_blocks<true>(g, ib, pb, bb, ob, blocks);
  if (blocks * 8 < g.out)
    fc_rows_half_bits(g, ib, wb, bb, ob, blocks * 8, g.out);
}

}  // namespace dnnfi::dnn::kernels::detail

#endif  // DNNFI_ENABLE_AVX2_KERNELS
