// Declarative network topology description. A NetworkSpec is the single
// source of truth a Network<T> is instantiated from, for any datapath type
// T; it is also what the model serializer stores next to the weights.
#pragma once

#include <string>
#include <vector>

#include "dnnfi/dnn/layer.h"

namespace dnnfi::dnn {

/// One layer of a topology. Only the fields relevant to `kind` are used.
struct LayerSpec {
  LayerKind kind = LayerKind::kRelu;
  std::string name;
  int block = 0;  ///< logical paper-layer (conv/FC block), 1-based

  // conv
  std::size_t out_channels = 0;
  std::size_t kernel = 0;
  std::size_t stride = 1;
  std::size_t pad = 0;
  // fc
  std::size_t out_features = 0;
  // maxpool
  std::size_t pool_kernel = 0;
  std::size_t pool_stride = 0;
  // lrn
  std::size_t lrn_size = 5;
  double lrn_alpha = 1e-4;
  double lrn_beta = 0.75;
  double lrn_k = 1.0;

  friend bool operator==(const LayerSpec&, const LayerSpec&) = default;
};

/// A full topology: input shape plus ordered layers.
struct NetworkSpec {
  std::string name;
  Shape input;
  std::size_t num_classes = 0;
  std::vector<LayerSpec> layers;

  /// Number of logical (conv/FC) blocks — the paper's "layers".
  int num_blocks() const {
    int b = 0;
    for (const auto& l : layers) b = std::max(b, l.block);
    return b;
  }

  /// True when the topology ends with a softmax (NiN does not).
  bool has_softmax() const {
    return !layers.empty() && layers.back().kind == LayerKind::kSoftmax;
  }

  friend bool operator==(const NetworkSpec&, const NetworkSpec&) = default;
};

/// Output shape of `l` applied to `in` — mirrors the layer classes'
/// out_shape without instantiating them. Used by the accelerator footprint
/// model and anything else that walks shapes at the spec level.
Shape shape_after(const LayerSpec& l, const Shape& in);

/// Convenience builders for assembling specs fluently.
class SpecBuilder {
 public:
  SpecBuilder(std::string name, Shape input, std::size_t num_classes) {
    spec_.name = std::move(name);
    spec_.input = input;
    spec_.num_classes = num_classes;
  }

  SpecBuilder& conv(std::size_t out_c, std::size_t k, std::size_t stride = 1,
                    std::size_t pad = 0) {
    ++block_;
    LayerSpec l;
    l.kind = LayerKind::kConv;
    l.name = "conv" + std::to_string(block_);
    l.block = block_;
    l.out_channels = out_c;
    l.kernel = k;
    l.stride = stride;
    l.pad = pad;
    spec_.layers.push_back(l);
    return *this;
  }

  SpecBuilder& fc(std::size_t out_features) {
    ++block_;
    LayerSpec l;
    l.kind = LayerKind::kFullyConnected;
    l.name = "fc" + std::to_string(block_);
    l.block = block_;
    l.out_features = out_features;
    spec_.layers.push_back(l);
    return *this;
  }

  SpecBuilder& relu() { return append(LayerKind::kRelu, "relu"); }

  SpecBuilder& maxpool(std::size_t k, std::size_t stride) {
    LayerSpec l;
    l.kind = LayerKind::kMaxPool;
    l.name = "pool" + std::to_string(block_);
    l.block = block_;
    l.pool_kernel = k;
    l.pool_stride = stride;
    spec_.layers.push_back(l);
    return *this;
  }

  SpecBuilder& lrn(std::size_t size = 5, double alpha = 1e-4,
                   double beta = 0.75, double k = 1.0) {
    LayerSpec l;
    l.kind = LayerKind::kLrn;
    l.name = "norm" + std::to_string(block_);
    l.block = block_;
    l.lrn_size = size;
    l.lrn_alpha = alpha;
    l.lrn_beta = beta;
    l.lrn_k = k;
    spec_.layers.push_back(l);
    return *this;
  }

  SpecBuilder& softmax() { return append(LayerKind::kSoftmax, "softmax"); }
  SpecBuilder& global_avg_pool() {
    return append(LayerKind::kGlobalAvgPool, "gavgpool");
  }

  NetworkSpec build() const { return spec_; }

 private:
  SpecBuilder& append(LayerKind kind, const char* stem) {
    LayerSpec l;
    l.kind = kind;
    l.name = std::string(stem) + std::to_string(block_);
    l.block = block_;
    spec_.layers.push_back(l);
    return *this;
  }

  NetworkSpec spec_;
  int block_ = 0;
};

}  // namespace dnnfi::dnn
