#include "dnnfi/dnn/executor.h"

#include <algorithm>

namespace dnnfi::dnn {

template <typename T>
ExecutionPlan<T>::ExecutionPlan(const Network<T>& net)
    : input_(net.spec().input) {
  DNNFI_EXPECTS(net.num_layers() > 0);
  steps_.reserve(net.num_layers());
  Shape shape = input_;
  input_elems_ = shape.size();
  for (std::size_t i = 0; i < net.num_layers(); ++i) {
    PlanStep<T> st;
    st.layer = &net.layer(i);
    st.in_shape = shape;
    st.out_shape = st.layer->out_shape(shape);
    st.macs = st.layer->macs(shape);
    total_macs_ += st.macs;
    buffer_elems_ = std::max(buffer_elems_, st.out_shape.size());
    input_elems_ = std::max(input_elems_, st.in_shape.size());
    shape = st.out_shape;
    steps_.push_back(st);
  }
}

template <typename T>
ConstTensorView<T> Executor<T>::run(Workspace<T>& ws,
                                    const RunRequest<T>& req) const {
  ws.bind(*plan_);
  if (req.fault != nullptr) return run_faulty(ws, req);
  return run_plain(ws, req);
}

template <typename T>
ConstTensorView<T> Executor<T>::run_plain(Workspace<T>& ws,
                                          const RunRequest<T>& req) const {
  DNNFI_EXPECTS(req.input.shape() == plan_->input_shape());
  const auto& steps = plan_->steps();
  if (req.trace != nullptr) {
    req.trace->input.assign(req.input);
    req.trace->acts.resize(steps.size());
  }
  ConstTensorView<T> cur = req.input;
  unsigned parity = 0;
  for (std::size_t i = 0; i < steps.size(); ++i) {
    TensorView<T> out = ws.out_buffer(parity, steps[i].out_shape);
    steps[i].layer->forward(cur, out);
    if (req.trace != nullptr) req.trace->acts[i].assign(out);
    if (req.observer != nullptr) (*req.observer)(i, out);
    cur = out;
    parity ^= 1U;
  }
  return cur;
}

template <typename T>
ConstTensorView<T> Executor<T>::run_faulty(Workspace<T>& ws,
                                           const RunRequest<T>& req) const {
  DNNFI_EXPECTS(req.golden != nullptr);
  const AppliedFault& f = *req.fault;
  const auto& steps = plan_->steps();
  DNNFI_EXPECTS(f.layer < steps.size());
  DNNFI_EXPECTS(req.golden->acts.size() == steps.size());

  TensorView<T> a = ws.out_buffer(0, steps[f.layer].out_shape);
  if (f.flip_layer_input) {
    // Global-buffer model: the corrupted ifmap word is read by every
    // consumer, so the whole target layer re-executes on flipped input.
    TensorView<T> in = ws.patch_buffer(steps[f.layer].in_shape);
    in.copy_from(req.golden->layer_input(f.layer));
    DNNFI_EXPECTS(f.input_index < in.size());
    const T before = in[f.input_index];
    const T after =
        detail::storage_flip(before, f.input_bit, f.input_storage, f.input_burst);
    in[f.input_index] = after;
    if (req.record != nullptr) {
      req.record->corrupted_before = detail::to_d(before);
      req.record->corrupted_after = detail::to_d(after);
      req.record->zero_to_one =
          detail::storage_flip_dir(before, f.input_bit, f.input_storage);
      req.record->applied = true;
    }
    steps[f.layer].layer->forward(ConstTensorView<T>(in), a, nullptr, nullptr);
  } else {
    // Patch the golden output of the target layer with the fault's effect.
    a.copy_from(req.golden->acts[f.layer]);
    steps[f.layer].layer->apply_faults(req.golden->layer_input(f.layer), a,
                                       f.faults, req.record);
  }
  if (req.observer != nullptr) (*req.observer)(f.layer, a);
  ConstTensorView<T> cur = a;
  unsigned parity = 1;
  for (std::size_t i = f.layer + 1; i < steps.size(); ++i) {
    TensorView<T> out = ws.out_buffer(parity, steps[i].out_shape);
    steps[i].layer->forward(cur, out);
    if (req.observer != nullptr) (*req.observer)(i, out);
    cur = out;
    parity ^= 1U;
  }
  return cur;
}

template class ExecutionPlan<double>;
template class ExecutionPlan<float>;
template class ExecutionPlan<numeric::Half>;
template class ExecutionPlan<numeric::Fx32r26>;
template class ExecutionPlan<numeric::Fx32r10>;
template class ExecutionPlan<numeric::Fx16r10>;

template class Executor<double>;
template class Executor<float>;
template class Executor<numeric::Half>;
template class Executor<numeric::Fx32r26>;
template class Executor<numeric::Fx32r10>;
template class Executor<numeric::Fx16r10>;

}  // namespace dnnfi::dnn
