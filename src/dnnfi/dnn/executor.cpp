#include "dnnfi/dnn/executor.h"

#include <algorithm>

#include "dnnfi/dnn/layers.h"

namespace dnnfi::dnn {

template <typename T>
ExecutionPlan<T>::ExecutionPlan(const Network<T>& net)
    : input_(net.spec().input) {
  DNNFI_EXPECTS(net.num_layers() > 0);
  steps_.reserve(net.num_layers());
  Shape shape = input_;
  input_elems_ = shape.size();
  for (std::size_t i = 0; i < net.num_layers(); ++i) {
    PlanStep<T> st;
    st.layer = &net.layer(i);
    st.in_shape = shape;
    st.out_shape = st.layer->out_shape(shape);
    st.macs = st.layer->macs(shape);
    total_macs_ += st.macs;
    buffer_elems_ = std::max(buffer_elems_, st.out_shape.size());
    input_elems_ = std::max(input_elems_, st.in_shape.size());
    shape = st.out_shape;
    steps_.push_back(st);
  }
  // Kernel routing: capture the active set once (the plan-compile-time
  // selection) and pre-resolve each MAC layer's geometry, weight/bias
  // pointers, and slot in the packed weight region.
  kset_ = &kernels::active_kernels<T>();
  const std::size_t lanes = kset_->pack_lanes;
  for (auto& st : steps_) {
    switch (st.layer->kind()) {
      case LayerKind::kConv: {
        const auto* c = static_cast<const Conv2d<T>*>(st.layer);
        st.kernel = StepKernel::kConv;
        st.conv = c->geom(st.in_shape, st.out_shape);
        st.w = c->weights().data();
        st.bias = c->biases().data();
        st.packed_off = packed_elems_;
        st.packed_n = kernels::packed_elems(st.conv.out_c, st.conv.steps(),
                                            lanes);
        packed_elems_ += st.packed_n;
        break;
      }
      case LayerKind::kFullyConnected: {
        const auto* f = static_cast<const FullyConnected<T>*>(st.layer);
        st.kernel = StepKernel::kFc;
        st.fc = {f->in_features(), f->out_features()};
        st.w = f->weights().data();
        st.bias = f->biases().data();
        st.packed_off = packed_elems_;
        st.packed_n = kernels::packed_elems(st.fc.out, st.fc.in, lanes);
        packed_elems_ += st.packed_n;
        break;
      }
      case LayerKind::kRelu:
        st.kernel = StepKernel::kRelu;
        break;
      case LayerKind::kLrn: {
        const auto* l = static_cast<const Lrn<T>*>(st.layer);
        st.kernel = StepKernel::kLrn;
        st.lrn = {st.in_shape.c, st.in_shape.h, st.in_shape.w,
                  l->size(),     l->alpha(),    l->beta(),
                  l->bias_k()};
        break;
      }
      case LayerKind::kMaxPool: {
        const auto* m = static_cast<const MaxPool2d<T>*>(st.layer);
        st.kernel = StepKernel::kMaxPool;
        st.pool = {st.out_shape.c, st.in_shape.h,  st.in_shape.w,
                   st.out_shape.h, st.out_shape.w, m->kernel(),
                   m->stride()};
        break;
      }
      case LayerKind::kGlobalAvgPool:
        st.kernel = StepKernel::kAvgPool;
        break;
      case LayerKind::kSoftmax:
        st.kernel = StepKernel::kSoftmax;
        break;
      default:
        break;
    }
  }
}

template <typename T>
void ExecutionPlan<T>::pack_into(T* dst) const {
  const std::size_t lanes = kset_->pack_lanes;
  for (const auto& st : steps_) {
    if (st.packed_n == 0) continue;
    if (st.kernel == StepKernel::kConv)
      kernels::pack_rows(st.w, st.conv.out_c, st.conv.steps(), lanes,
                         dst + st.packed_off);
    else
      kernels::pack_rows(st.w, st.fc.out, st.fc.in, lanes,
                         dst + st.packed_off);
  }
}

template <typename T>
void ExecutionPlan<T>::exec_step(std::size_t i, ConstTensorView<T> in,
                                 TensorView<T> out, const T* packed) const {
  const PlanStep<T>& st = steps_[i];
  // Kernels that consume packed weights need the workspace copy; without it
  // (packed == null) MAC steps take the scalar reference path, which is
  // bit-identical under every exact set.
  const bool have_layout = packed != nullptr || kset_->pack_lanes == 0;
  switch (st.kernel) {
    case StepKernel::kConv:
      if (have_layout) {
        kset_->conv(st.conv, in.data().data(), st.w,
                    packed == nullptr ? nullptr : packed + st.packed_off,
                    st.bias, out.data().data());
        return;
      }
      break;
    case StepKernel::kFc:
      if (have_layout) {
        kset_->fc(st.fc, in.data().data(), st.w,
                  packed == nullptr ? nullptr : packed + st.packed_off,
                  st.bias, out.data().data());
        return;
      }
      break;
    case StepKernel::kRelu:
      kset_->relu(in.data().data(), out.data().data(), in.size());
      return;
    case StepKernel::kLrn:
      kset_->lrn(st.lrn, in.data().data(), out.data().data());
      return;
    case StepKernel::kMaxPool:
      kset_->maxpool(st.pool, in.data().data(), out.data().data());
      return;
    case StepKernel::kAvgPool:
      kset_->avgpool(in.data().data(), out.data().data(), st.in_shape.c,
                     st.in_shape.h * st.in_shape.w);
      return;
    case StepKernel::kSoftmax:
      kset_->softmax(in.data().data(), out.data().data(), in.size());
      return;
    case StepKernel::kNone:
      break;
  }
  st.layer->forward(in, out);
}

template <typename T>
void ActivationCache<T>::build(const ExecutionPlan<T>& plan,
                               ConstTensorView<T> input) {
  DNNFI_EXPECTS(input.shape() == plan.input_shape());
  const auto& steps = plan.steps();
  if (plan_ != &plan) {
    plan_ = &plan;
    offsets_.resize(steps.size());
    std::size_t off = plan.input_shape().size();
    for (std::size_t i = 0; i < steps.size(); ++i) {
      offsets_[i] = off;
      off += steps[i].out_shape.size();
    }
    store_.resize(off);
  }
  // Layers write straight into their cache segment: no ping-pong, no
  // copies, and kernel calls identical to a plain Executor run (a local
  // packed copy is interleaved here so the cache matches the plan's kernel
  // set bit-for-bit even in the relaxed tolerance mode; cache builds are
  // per-input setup work, not the faulty hot path).
  std::vector<T> packed;
  const T* pk = nullptr;
  if (plan.packed_elems() > 0) {
    packed.resize(plan.packed_elems());
    plan.pack_into(packed.data());
    pk = packed.data();
  }
  std::copy_n(input.data().data(), input.size(), store_.data());
  ConstTensorView<T> cur{plan.input_shape(), store_.data()};
  for (std::size_t i = 0; i < steps.size(); ++i) {
    TensorView<T> out{steps[i].out_shape, store_.data() + offsets_[i]};
    plan.exec_step(i, cur, out, pk);
    cur = out;
  }
}

namespace {

/// Golden-source adapter for the legacy Trace-based fault path.
template <typename T>
struct TraceGolden {
  const Trace<T>* t;
  ConstTensorView<T> act(std::size_t i) const { return t->acts[i]; }
  ConstTensorView<T> layer_input(std::size_t i) const {
    return t->layer_input(i);
  }
  ConstTensorView<T> output() const { return t->output(); }
};

}  // namespace

template <typename T>
ConstTensorView<T> Executor<T>::run(Workspace<T>& ws,
                                    const RunRequest<T>& req) const {
  ws.bind(*plan_);
  if (req.fault != nullptr) {
    if (req.cache != nullptr) {
      DNNFI_EXPECTS(req.cache->num_layers() == plan_->num_layers());
      return run_faulty(ws, req, *req.cache);
    }
    DNNFI_EXPECTS(req.golden != nullptr);
    DNNFI_EXPECTS(req.golden->acts.size() == plan_->num_layers());
    return run_faulty(ws, req, TraceGolden<T>{req.golden});
  }
  return run_range(ws, 0, plan_->num_layers(), req);
}

template <typename T>
ConstTensorView<T> Executor<T>::run_range(Workspace<T>& ws, std::size_t from,
                                          std::size_t to,
                                          const RunRequest<T>& req) const {
  ws.bind(*plan_);
  const auto& steps = plan_->steps();
  DNNFI_EXPECTS(from < to && to <= steps.size());
  DNNFI_EXPECTS(req.fault == nullptr);
  DNNFI_EXPECTS(req.input.shape() == steps[from].in_shape);
  if (req.trace != nullptr) {
    DNNFI_EXPECTS(from == 0 && to == steps.size());
    req.trace->input.assign(req.input);
    req.trace->acts.resize(steps.size());
  }
  ConstTensorView<T> cur = req.input;
  unsigned parity = 0;
  for (std::size_t i = from; i < to; ++i) {
    TensorView<T> out = ws.out_buffer(parity, steps[i].out_shape);
    plan_->exec_step(i, cur, out, ws.packed_data());
    if (req.trace != nullptr) req.trace->acts[i].assign(out);
    if (req.observer != nullptr) (*req.observer)(i, out);
    cur = out;
    parity ^= 1U;
  }
  return cur;
}

template <typename T>
template <typename Golden>
ConstTensorView<T> Executor<T>::run_faulty(Workspace<T>& ws,
                                           const RunRequest<T>& req,
                                           const Golden& g) const {
  const AppliedFault& f = *req.fault;
  const auto& steps = plan_->steps();
  DNNFI_EXPECTS(f.layer < steps.size());
  ReplayInfo info;
  info.fault_layer = f.layer;

  TensorView<T> a = ws.out_buffer(0, steps[f.layer].out_shape);
  if (f.flip_layer_input) {
    // Global-buffer model: the corrupted ifmap word is read by every
    // consumer, so the whole target layer re-executes on flipped input.
    TensorView<T> in = ws.patch_buffer(steps[f.layer].in_shape);
    in.copy_from(g.layer_input(f.layer));
    DNNFI_EXPECTS(f.input_index < in.size());
    const T before = in[f.input_index];
    const T after = detail::storage_apply(before, f.input_op, f.input_storage);
    in[f.input_index] = after;
    if (req.record != nullptr) {
      req.record->corrupted_before = detail::to_d(before);
      req.record->corrupted_after = detail::to_d(after);
      req.record->zero_to_one =
          detail::storage_apply_dir(before, f.input_op, f.input_storage);
      req.record->applied = true;
    }
    plan_->exec_step(f.layer, ConstTensorView<T>(in), a, ws.packed_data());
  } else {
    // Patch the golden output of the target layer with the fault's effect.
    a.copy_from(g.act(f.layer));
    steps[f.layer].layer->apply_faults(g.layer_input(f.layer), a, f.faults,
                                       req.record);
  }
  if (req.observer != nullptr) (*req.observer)(f.layer, a);
  info.layers_run = 1;

  ConstTensorView<T> cur = a;
  std::size_t i = f.layer;
  // A replayed layer whose output matches the fault-free activation
  // bit-for-bit has erased the fault: every remaining layer is a
  // deterministic function of identical state, so the cached final output
  // IS the run's output and the suffix can be skipped entirely.
  if (req.early_exit && tensor::bitwise_equal<T>(cur, g.act(i))) {
    info.masked = true;
  } else {
    unsigned parity = 1;
    for (i = f.layer + 1; i < steps.size(); ++i) {
      TensorView<T> out = ws.out_buffer(parity, steps[i].out_shape);
      plan_->exec_step(i, cur, out, ws.packed_data());
      if (req.observer != nullptr) (*req.observer)(i, out);
      cur = out;
      parity ^= 1U;
      ++info.layers_run;
      if (req.early_exit && tensor::bitwise_equal<T>(cur, g.act(i))) {
        info.masked = true;
        break;
      }
    }
  }
  if (info.masked) {
    info.masked_at = i;
    cur = g.output();
  }
  if (req.replay != nullptr) *req.replay = info;
  return cur;
}

template class ExecutionPlan<double>;
template class ExecutionPlan<float>;
template class ExecutionPlan<numeric::Half>;
template class ExecutionPlan<numeric::Fx32r26>;
template class ExecutionPlan<numeric::Fx32r10>;
template class ExecutionPlan<numeric::Fx16r10>;

template class ActivationCache<double>;
template class ActivationCache<float>;
template class ActivationCache<numeric::Half>;
template class ActivationCache<numeric::Fx32r26>;
template class ActivationCache<numeric::Fx32r10>;
template class ActivationCache<numeric::Fx16r10>;

template class Executor<double>;
template class Executor<float>;
template class Executor<numeric::Half>;
template class Executor<numeric::Fx32r26>;
template class Executor<numeric::Fx32r10>;
template class Executor<numeric::Fx16r10>;

}  // namespace dnnfi::dnn
