// Float32 SGD training with momentum and weight decay, used to produce the
// "pre-trained models" the fault-injection experiments run on. The trainer
// works on any Network<float>; the classifier head is softmax +
// cross-entropy, applied by the trainer itself (a trailing Softmax layer in
// the topology is skipped during training — and NiN, which has no softmax
// layer at inference, is trained with the same combined head).
#pragma once

#include <cstdint>
#include <functional>

#include "dnnfi/dnn/network.h"

namespace dnnfi::dnn {

/// A training example; images are float CHW, labels are class indices.
struct Example {
  Tensor<float> image;
  std::size_t label = 0;
};

/// Deterministic example source: returns example `i` of a conceptual
/// sequence. The trainer shuffles indices itself.
using ExampleSource = std::function<Example(std::uint64_t)>;

struct TrainConfig {
  std::size_t epochs = 4;
  std::size_t train_count = 2000;  ///< examples per epoch
  std::size_t batch = 32;
  double learning_rate = 0.02;
  double momentum = 0.9;
  double weight_decay = 1e-4;
  std::uint64_t seed = 1;
  bool verbose = false;  ///< print per-epoch loss/accuracy to stderr
};

struct EvalResult {
  double accuracy = 0;
  double avg_loss = 0;
};

/// Trains `net` in place. Deterministic in (config.seed, example source).
void train(Network<float>& net, const ExampleSource& source,
           const TrainConfig& config);

/// Evaluates top-1 accuracy and mean cross-entropy on examples
/// [begin, begin+count) of `source`.
EvalResult evaluate(const Network<float>& net, const ExampleSource& source,
                    std::uint64_t begin, std::size_t count);

}  // namespace dnnfi::dnn
