// Binary model format (".dnnfi"): a NetworkSpec plus float32 weights.
//
// Layout (little-endian):
//   magic "DNNFI\x01"            6 bytes
//   name                         u32 length + bytes
//   input shape                  4 x u64
//   num_classes                  u64
//   layer count                  u32
//   per layer: kind u8, block i32, name (u32+bytes),
//              10 x u64 integer params, 4 x f64 real params
//   blob layer count             u32
//   per blob layer: weight count u64 + f32[], bias count u64 + f32[]
#pragma once

#include <string>

#include "dnnfi/dnn/spec.h"
#include "dnnfi/dnn/weights.h"

namespace dnnfi::dnn {

/// Saves a topology + trained weights to `path`. Throws std::runtime_error
/// on IO failure.
void save_model(const std::string& path, const NetworkSpec& spec,
                const WeightsBlob& blob);

/// Loads a model saved by save_model. Throws std::runtime_error on IO or
/// format errors.
struct Model {
  NetworkSpec spec;
  WeightsBlob blob;
};
Model load_model(const std::string& path);

/// True when `path` exists and carries the model magic.
bool is_model_file(const std::string& path);

}  // namespace dnnfi::dnn
