// Layer interface. Layers are templated on the datapath numeric type T so
// that MAC arithmetic (including fixed-point saturation and binary16
// rounding) happens exactly as the modeled accelerator would perform it.
//
// The primitive compute interface works on TensorViews so the executor can
// run whole networks out of a preallocated Workspace arena; the Tensor
// overloads below are convenience wrappers that resize the destination and
// dispatch to the view path.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>

#include "dnnfi/dnn/fault_hooks.h"
#include "dnnfi/tensor/tensor.h"

namespace dnnfi::dnn {

using tensor::ConstTensorView;
using tensor::Shape;
using tensor::Tensor;
using tensor::TensorView;

enum class LayerKind {
  kConv,
  kFullyConnected,
  kRelu,
  kMaxPool,
  kLrn,
  kSoftmax,
  kGlobalAvgPool,
};

constexpr const char* layer_kind_name(LayerKind k) {
  switch (k) {
    case LayerKind::kConv:           return "conv";
    case LayerKind::kFullyConnected: return "fc";
    case LayerKind::kRelu:           return "relu";
    case LayerKind::kMaxPool:        return "maxpool";
    case LayerKind::kLrn:            return "lrn";
    case LayerKind::kSoftmax:        return "softmax";
    case LayerKind::kGlobalAvgPool:  return "gavgpool";
  }
  return "?";
}

/// Abstract layer. Concrete layers live in layers.h.
template <typename T>
class Layer {
 public:
  Layer(std::string name, int block) : name_(std::move(name)), block_(block) {}
  virtual ~Layer() = default;
  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;

  virtual LayerKind kind() const noexcept = 0;

  /// Layer instance name, e.g. "conv1".
  const std::string& name() const noexcept { return name_; }

  /// Logical paper-layer index (1-based): the conv/FC block this layer
  /// belongs to. ReLU/pool/LRN attach to the block of the preceding conv/FC.
  int block() const noexcept { return block_; }

  virtual Shape out_shape(const Shape& in) const = 0;

  /// Computes `out` from `in`. `out` must already have shape
  /// out_shape(in.shape()); the caller (executor or Tensor wrapper) is
  /// responsible for sizing it. When `faults` is non-null the layer applies
  /// them bit-exactly and, if `rec` is non-null, documents what it did.
  /// Thread-safe: forward is const, allocation-free, and uses no hidden
  /// mutable state. `in` and `out` must not alias.
  virtual void forward(ConstTensorView<T> in, TensorView<T> out,
                       const LayerFaults* faults = nullptr,
                       InjectionRecord* rec = nullptr) const = 0;

  /// Re-applies `faults` assuming `out` already holds the fault-free output
  /// for `in` (patches only affected elements). Default recomputes fully.
  virtual void apply_faults(ConstTensorView<T> in, TensorView<T> out,
                            const LayerFaults& faults,
                            InjectionRecord* rec) const {
    forward(in, out, &faults, rec);
  }

  /// Tensor convenience wrappers: resize `out` then run the view path.
  /// Derived classes pull these in with `using Layer<T>::forward;`.
  void forward(const Tensor<T>& in, Tensor<T>& out,
               const LayerFaults* faults = nullptr,
               InjectionRecord* rec = nullptr) const {
    out.reshape(out_shape(in.shape()));
    forward(in.view(), out.view(), faults, rec);
  }
  void apply_faults(const Tensor<T>& in, Tensor<T>& out,
                    const LayerFaults& faults, InjectionRecord* rec) const {
    DNNFI_EXPECTS(out.shape() == out_shape(in.shape()));
    apply_faults(in.view(), out.view(), faults, rec);
  }

  /// Backpropagation (used by the float trainer): given the layer input,
  /// its output, and dLoss/dOut, computes dLoss/dIn and accumulates weight /
  /// bias gradients. Layers without parameters ignore gw/gb.
  virtual void backward(const Tensor<T>& in, const Tensor<T>& out,
                        const Tensor<T>& gout, Tensor<T>& gin,
                        std::span<T> gw, std::span<T> gb) const = 0;

  /// Number of multiply-accumulate operations to process `in` (0 for
  /// non-MAC layers). Drives the datapath fault sampler's layer weighting.
  virtual std::size_t macs(const Shape& /*in*/) const { return 0; }

  /// Trainable parameter access (empty spans for parameter-free layers).
  virtual std::span<T> weights() { return {}; }
  virtual std::span<const T> weights() const { return {}; }
  virtual std::span<T> biases() { return {}; }
  virtual std::span<const T> biases() const { return {}; }

  bool has_params() const { return !weights().empty(); }

 private:
  std::string name_;
  int block_;
};

}  // namespace dnnfi::dnn
