#include "dnnfi/dnn/zoo.h"

#include <algorithm>

#include "dnnfi/common/expects.h"

namespace dnnfi::dnn::zoo {

std::string_view network_name(NetworkId id) {
  switch (id) {
    case NetworkId::kConvNet:   return "ConvNet";
    case NetworkId::kAlexNetS:  return "AlexNet-S";
    case NetworkId::kCaffeNetS: return "CaffeNet-S";
    case NetworkId::kNiNS:      return "NiN-S";
  }
  DNNFI_EXPECTS(false);
  return {};
}

std::string model_filename(NetworkId id) {
  std::string n(network_name(id));
  std::transform(n.begin(), n.end(), n.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  std::erase(n, '-');
  return n + ".dnnfi";
}

namespace {

NetworkSpec convnet() {
  // cuda-convnet style: 3 CONV + 2 FC, max-pool sub-sampling, softmax head.
  return SpecBuilder("ConvNet", tensor::chw(3, 32, 32), 10)
      .conv(16, 5, 1, 2).relu().maxpool(2, 2)   // 16x16
      .conv(16, 5, 1, 2).relu().maxpool(2, 2)   // 8x8
      .conv(32, 5, 1, 2).relu().maxpool(2, 2)   // 4x4
      .fc(64).relu()
      .fc(10).softmax()
      .build();
}

/// Shared body of AlexNet-S and CaffeNet-S; `pool_before_lrn` encodes the
/// one structural difference between the two (paper §4.1).
NetworkSpec alexnet_family(const char* name, bool pool_before_lrn) {
  SpecBuilder b(name, tensor::chw(3, 48, 48), 100);
  // conv1 + conv2 carry LRN, like the first two layers of AlexNet/CaffeNet.
  b.conv(16, 5, 2, 2).relu();                     // 24x24
  if (pool_before_lrn) b.maxpool(2, 2).lrn();     // 12x12
  else b.lrn().maxpool(2, 2);
  b.conv(32, 5, 1, 2).relu();                     // 12x12
  if (pool_before_lrn) b.maxpool(2, 2).lrn();     // 6x6
  else b.lrn().maxpool(2, 2);
  b.conv(48, 3, 1, 1).relu();                     // 6x6
  b.conv(48, 3, 1, 1).relu();                     // 6x6
  b.conv(32, 3, 1, 1).relu().maxpool(2, 2);       // 3x3
  b.fc(128).relu();
  b.fc(128).relu();
  b.fc(100).softmax();
  return b.build();
}

NetworkSpec nin() {
  // Network-in-Network: 4 mlpconv blocks (spatial conv + two 1x1 convs),
  // global average pooling head, no FC, no softmax.
  return SpecBuilder("NiN-S", tensor::chw(3, 48, 48), 100)
      .conv(16, 5, 1, 2).relu().conv(16, 1).relu().conv(16, 1).relu()
      .maxpool(2, 2)                               // 24x24
      .conv(24, 3, 1, 1).relu().conv(24, 1).relu().conv(24, 1).relu()
      .maxpool(2, 2)                               // 12x12
      .conv(32, 3, 1, 1).relu().conv(32, 1).relu().conv(32, 1).relu()
      .maxpool(2, 2)                               // 6x6
      .conv(48, 3, 1, 1).relu().conv(48, 1).relu().conv(100, 1).relu()
      .global_avg_pool()
      .build();
}

}  // namespace

NetworkSpec network_spec(NetworkId id) {
  switch (id) {
    case NetworkId::kConvNet:   return convnet();
    case NetworkId::kAlexNetS:  return alexnet_family("AlexNet-S", false);
    case NetworkId::kCaffeNetS: return alexnet_family("CaffeNet-S", true);
    case NetworkId::kNiNS:      return nin();
  }
  DNNFI_EXPECTS(false);
  return {};
}

}  // namespace dnnfi::dnn::zoo
