// Concrete layers: Conv2d, FullyConnected, ReLU, MaxPool2d, Lrn, Softmax,
// GlobalAvgPool. Conv/FC perform every MAC in the datapath type T and are
// the layers that accept hardware fault hooks; the remaining layers model
// fixed-function / host-side units.
//
// Numerics note: LRN, Softmax, and average pooling are computed at double
// internal precision and re-quantized to T on output. Real accelerators
// implement these in dedicated higher-precision units or on the host (the
// paper's fault model likewise excludes them as injection targets); what
// matters for error propagation is that their *masking* behaviour (value
// averaging, winner selection, range compression) acts on T-typed inputs,
// which it does here.
//
// All forward/apply_faults paths are allocation-free: they write into a
// caller-sized output view, so the executor can drive a whole campaign out
// of one arena.
#pragma once

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "dnnfi/common/rng.h"
#include "dnnfi/dnn/kernels/kernels.h"
#include "dnnfi/dnn/layer.h"
#include "dnnfi/fault/fault_op.h"
#include "dnnfi/numeric/traits.h"

namespace dnnfi::dnn {

namespace detail {
template <typename T>
double to_d(T v) {
  return numeric::numeric_traits<T>::to_double(v);
}
template <typename T>
T from_d(double v) {
  return numeric::numeric_traits<T>::from_double(v);
}

/// Applies a mask-based fault operation to `v`, optionally striking a
/// reduced storage format (encode -> upset -> decode) instead of the
/// datapath word.
template <typename T>
T storage_apply(T v, const fault::FaultOp& op,
                const std::optional<numeric::DType>& storage) {
  if (!storage) return fault::apply_op(v, op);
  return from_d<T>(numeric::dispatch_dtype(*storage, [&]<typename S>() {
    using Tr = numeric::numeric_traits<S>;
    return Tr::to_double(fault::apply_op(Tr::from_double(to_d(v)), op));
  }));
}

/// Direction of the lowest affected bit (0 -> 1?) in the format it struck.
template <typename T>
bool storage_apply_dir(T v, const fault::FaultOp& op,
                       const std::optional<numeric::DType>& storage) {
  if (!storage) return fault::op_zero_to_one(v, op);
  return numeric::dispatch_dtype(*storage, [&]<typename S>() {
    return fault::op_zero_to_one(
        numeric::numeric_traits<S>::from_double(to_d(v)), op);
  });
}
}  // namespace detail

/// 2-D convolution with square kernels, zero padding, and per-output-channel
/// bias. MAC order (the `step` coordinate of MacFault) is row-major over
/// (ci, ky, kx); padded taps execute with a zero activation, as a spatial
/// accelerator's PE array would.
template <typename T>
class Conv2d final : public Layer<T> {
 public:
  using Layer<T>::forward;
  using Layer<T>::apply_faults;

  Conv2d(std::string name, int block, std::size_t in_c, std::size_t out_c,
         std::size_t k, std::size_t stride, std::size_t pad)
      : Layer<T>(std::move(name), block),
        in_c_(in_c),
        out_c_(out_c),
        k_(k),
        stride_(stride),
        pad_(pad),
        weights_(tensor::oihw(out_c, in_c, k, k)),
        bias_(out_c, T{}) {
    DNNFI_EXPECTS(in_c > 0 && out_c > 0 && k > 0 && stride > 0);
  }

  LayerKind kind() const noexcept override { return LayerKind::kConv; }

  Shape out_shape(const Shape& in) const override {
    DNNFI_EXPECTS(in.c == in_c_);
    DNNFI_EXPECTS(in.h + 2 * pad_ >= k_ && in.w + 2 * pad_ >= k_);
    const std::size_t oh = (in.h + 2 * pad_ - k_) / stride_ + 1;
    const std::size_t ow = (in.w + 2 * pad_ - k_) / stride_ + 1;
    return tensor::chw(out_c_, oh, ow);
  }

  std::size_t macs(const Shape& in) const override {
    return out_shape(in).size() * steps();
  }

  /// Accumulation steps per output element (the kernel volume).
  std::size_t steps() const noexcept { return in_c_ * k_ * k_; }

  std::span<T> weights() override { return weights_.data(); }
  std::span<const T> weights() const override { return weights_.data(); }
  std::span<T> biases() override { return bias_; }
  std::span<const T> biases() const override { return bias_; }

  /// Kernel geometry for this layer under the given input/output shapes.
  kernels::ConvGeom geom(const Shape& in, const Shape& os) const noexcept {
    return {in.c, in.h, in.w, os.c, os.h, os.w, k_, stride_, pad_};
  }

  void forward(ConstTensorView<T> in, TensorView<T> out,
               const LayerFaults* faults = nullptr,
               InjectionRecord* rec = nullptr) const override {
    const Shape os = out.shape();
    DNNFI_EXPECTS(os == out_shape(in.shape()));
    // Fault-free pass through the kernel registry (the scalar reference is
    // bit-identical to compute_one with no fault and no overrides; SIMD
    // sets are bit-identical to the scalar reference). The compiled
    // Executor path routes through ExecutionPlan::exec_step instead, which
    // adds the packed-weight layout.
    kernels::conv_forward<T>(geom(in.shape(), os), in.data().data(),
                             weights_.data().data(), bias_.data(),
                             out.data().data());
    if (faults != nullptr) apply_faults(in, out, *faults, rec);
  }

  void apply_faults(ConstTensorView<T> in, TensorView<T> out,
                    const LayerFaults& faults,
                    InjectionRecord* rec) const override {
    const Shape os = out.shape();
    if (faults.mac) {
      const MacFault& f = *faults.mac;
      DNNFI_EXPECTS(f.out_index < out.size() && f.step < steps());
      const auto [co, oy, ox] = unflatten(os, f.out_index);
      const T before = out[f.out_index];
      const T after = compute_one(in, co, oy, ox, &f, rec, kNoOverride,
                                  kNoOverride);
      out[f.out_index] = after;
      note_act(rec, before, after);
    }
    if (faults.weight) {
      const WeightFault& f = *faults.weight;
      DNNFI_EXPECTS(f.weight_index < weights_.size());
      const T w0 = weights_[f.weight_index];
      const T w1 = detail::storage_apply(w0, f.op, f.storage);
      if (rec != nullptr) {
        rec->corrupted_before = detail::to_d(w0);
        rec->corrupted_after = detail::to_d(w1);
        rec->zero_to_one = detail::storage_apply_dir(w0, f.op, f.storage);
        rec->applied = true;
      }
      // The corrupted weight feeds every MAC of its output channel.
      const std::size_t co = f.weight_index / steps();
      const Override ov{f.weight_index, w1};
      const T rep_before = out.at(0, co, 0, 0);
      for (std::size_t oy = 0; oy < os.h; ++oy)
        for (std::size_t ox = 0; ox < os.w; ++ox)
          out.at(0, co, oy, ox) =
              compute_one(in, co, oy, ox, nullptr, nullptr, ov, kNoOverride);
      note_act(rec, rep_before, out.at(0, co, 0, 0));
    }
    if (faults.scoped_input) {
      const ScopedInputFault& f = *faults.scoped_input;
      DNNFI_EXPECTS(f.input_index < in.size());
      DNNFI_EXPECTS(f.out_channel < os.c && f.out_row < os.h);
      const T v0 = in[f.input_index];
      const T v1 = detail::storage_apply(v0, f.op, f.storage);
      if (rec != nullptr) {
        rec->corrupted_before = detail::to_d(v0);
        rec->corrupted_after = detail::to_d(v1);
        rec->zero_to_one = detail::storage_apply_dir(v0, f.op, f.storage);
        rec->applied = true;
      }
      const Override ov{f.input_index, v1};
      const T rep_before = out.at(0, f.out_channel, f.out_row, 0);
      for (std::size_t ox = 0; ox < os.w; ++ox)
        out.at(0, f.out_channel, f.out_row, ox) = compute_one(
            in, f.out_channel, f.out_row, ox, nullptr, nullptr, kNoOverride, ov);
      note_act(rec, rep_before, out.at(0, f.out_channel, f.out_row, 0));
    }
    if (faults.column) {
      // Weight-stationary systolic column propagation (accel::SystolicArray):
      // every output element still flowing through the struck column after
      // the strike re-accumulates through the corrupt partial-sum chain.
      const ColumnFault& f = *faults.column;
      DNNFI_EXPECTS(f.step < steps() && f.cols > 0 && f.first_out < out.size());
      const std::size_t plane = os.h * os.w;
      bool first = true;
      for (std::size_t e = f.first_out; e < out.size(); ++e) {
        if ((e / plane) % f.cols != f.col) continue;
        MacFault mf;
        mf.out_index = e;
        mf.step = f.step;
        mf.site = MacSite::kAccumulator;
        mf.op = f.op;
        const auto [co, oy, ox] = unflatten(os, e);
        const T before = out[e];
        const T after = compute_one(in, co, oy, ox, &mf,
                                    first ? rec : nullptr, kNoOverride,
                                    kNoOverride);
        out[e] = after;
        if (first) note_act(rec, before, after);
        first = false;
      }
    }
  }

  void backward(const Tensor<T>& in, const Tensor<T>& /*out*/,
                const Tensor<T>& gout, Tensor<T>& gin, std::span<T> gw,
                std::span<T> gb) const override {
    DNNFI_EXPECTS(gw.size() == weights_.size() && gb.size() == bias_.size());
    const Shape is = in.shape();
    const Shape os = gout.shape();
    if (gin.shape() != is) gin.reshape(is);
    gin.fill(T{});
    for (std::size_t co = 0; co < os.c; ++co) {
      for (std::size_t oy = 0; oy < os.h; ++oy) {
        for (std::size_t ox = 0; ox < os.w; ++ox) {
          const T g = gout.at(0, co, oy, ox);
          gb[co] += g;
          for (std::size_t ci = 0; ci < in_c_; ++ci) {
            for (std::size_t ky = 0; ky < k_; ++ky) {
              const std::ptrdiff_t iy =
                  static_cast<std::ptrdiff_t>(oy * stride_ + ky) -
                  static_cast<std::ptrdiff_t>(pad_);
              if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(is.h)) continue;
              for (std::size_t kx = 0; kx < k_; ++kx) {
                const std::ptrdiff_t ix =
                    static_cast<std::ptrdiff_t>(ox * stride_ + kx) -
                    static_cast<std::ptrdiff_t>(pad_);
                if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(is.w)) continue;
                const std::size_t ii = is.index(
                    0, ci, static_cast<std::size_t>(iy), static_cast<std::size_t>(ix));
                const std::size_t wi = weights_.shape().index(co, ci, ky, kx);
                gw[wi] += g * in[ii];
                gin[ii] += g * weights_[wi];
              }
            }
          }
        }
      }
    }
  }

  std::size_t in_channels() const noexcept { return in_c_; }
  std::size_t out_channels() const noexcept { return out_c_; }
  std::size_t kernel() const noexcept { return k_; }
  std::size_t stride() const noexcept { return stride_; }
  std::size_t pad() const noexcept { return pad_; }

 private:
  struct Override {
    std::size_t index;
    T value;
  };
  static constexpr std::optional<Override> kNoOverride = std::nullopt;

  static std::tuple<std::size_t, std::size_t, std::size_t> unflatten(
      const Shape& os, std::size_t flat) {
    const std::size_t ox = flat % os.w;
    const std::size_t oy = (flat / os.w) % os.h;
    const std::size_t co = flat / (os.w * os.h);
    return {co, oy, ox};
  }

  static void note_act(InjectionRecord* rec, T before, T after) {
    if (rec == nullptr) return;
    rec->act_before = detail::to_d(before);
    rec->act_after = detail::to_d(after);
  }

  /// Computes a single output element, optionally applying a MacFault and/or
  /// weight/input overrides. This is the reference MAC pipeline: every
  /// product and accumulation is performed in T.
  T compute_one(ConstTensorView<T> in, std::size_t co, std::size_t oy,
                std::size_t ox, const MacFault* mf, InjectionRecord* rec,
                const std::optional<Override>& w_over,
                const std::optional<Override>& in_over) const {
    const Shape& is = in.shape();
    T acc{};
    std::size_t step = 0;
    for (std::size_t ci = 0; ci < in_c_; ++ci) {
      for (std::size_t ky = 0; ky < k_; ++ky) {
        for (std::size_t kx = 0; kx < k_; ++kx, ++step) {
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(oy * stride_ + ky) -
              static_cast<std::ptrdiff_t>(pad_);
          const std::ptrdiff_t ix =
              static_cast<std::ptrdiff_t>(ox * stride_ + kx) -
              static_cast<std::ptrdiff_t>(pad_);
          const bool in_bounds = iy >= 0 &&
                                 iy < static_cast<std::ptrdiff_t>(is.h) &&
                                 ix >= 0 &&
                                 ix < static_cast<std::ptrdiff_t>(is.w);
          std::size_t ii = 0;
          T act{};
          if (in_bounds) {
            ii = is.index(0, ci, static_cast<std::size_t>(iy),
                          static_cast<std::size_t>(ix));
            act = in[ii];
            if (in_over && in_over->index == ii) act = in_over->value;
          }
          const std::size_t wi = weights_.shape().index(co, ci, ky, kx);
          T w = weights_[wi];
          if (w_over && w_over->index == wi) w = w_over->value;

          const bool fault_here = (mf != nullptr) && (step == mf->step);
          if (fault_here && mf->site == MacSite::kOperandAct) {
            record_flip(rec, act, mf->op);
            act = fault::apply_op(act, mf->op);
          }
          if (fault_here && mf->site == MacSite::kOperandWeight) {
            record_flip(rec, w, mf->op);
            w = fault::apply_op(w, mf->op);
          }
          T product = w * act;
          if (fault_here && mf->site == MacSite::kProduct) {
            record_flip(rec, product, mf->op);
            product = fault::apply_op(product, mf->op);
          }
          acc += product;
          if (fault_here && mf->site == MacSite::kAccumulator) {
            record_flip(rec, acc, mf->op);
            acc = fault::apply_op(acc, mf->op);
          }
        }
      }
    }
    acc += bias_[co];
    return acc;
  }

  static void record_flip(InjectionRecord* rec, T value,
                          const fault::FaultOp& op) {
    if (rec == nullptr) return;
    rec->corrupted_before = detail::to_d(value);
    rec->corrupted_after = detail::to_d(fault::apply_op(value, op));
    rec->zero_to_one = fault::op_zero_to_one(value, op);
    rec->applied = true;
  }

  std::size_t in_c_, out_c_, k_, stride_, pad_;
  Tensor<T> weights_;
  std::vector<T> bias_;
};

/// Fully-connected layer: out[o] = sum_i W[o,i] * in[i] + b[o], all in T.
/// MacFault steps enumerate inputs; a WeightFault or ScopedInputFault
/// affects the single output that consumes the corrupted value.
template <typename T>
class FullyConnected final : public Layer<T> {
 public:
  using Layer<T>::forward;
  using Layer<T>::apply_faults;

  FullyConnected(std::string name, int block, std::size_t in_features,
                 std::size_t out_features)
      : Layer<T>(std::move(name), block),
        in_(in_features),
        out_(out_features),
        weights_(tensor::oihw(out_features, in_features, 1, 1)),
        bias_(out_features, T{}) {
    DNNFI_EXPECTS(in_features > 0 && out_features > 0);
  }

  LayerKind kind() const noexcept override { return LayerKind::kFullyConnected; }

  Shape out_shape(const Shape& in) const override {
    DNNFI_EXPECTS(in.size() == in_);
    return tensor::vec(out_);
  }

  std::size_t macs(const Shape& in) const override {
    DNNFI_EXPECTS(in.size() == in_);
    return in_ * out_;
  }

  std::size_t steps() const noexcept { return in_; }

  std::span<T> weights() override { return weights_.data(); }
  std::span<const T> weights() const override { return weights_.data(); }
  std::span<T> biases() override { return bias_; }
  std::span<const T> biases() const override { return bias_; }

  void forward(ConstTensorView<T> in, TensorView<T> out,
               const LayerFaults* faults = nullptr,
               InjectionRecord* rec = nullptr) const override {
    DNNFI_EXPECTS(in.size() == in_ && out.size() == out_);
    // Fault-free pass through the kernel registry (the scalar reference is
    // bit-identical to compute_one without fault or overrides).
    kernels::fc_forward<T>({in_, out_}, in.data().data(),
                           weights_.data().data(), bias_.data(),
                           out.data().data());
    if (faults != nullptr) apply_faults(in, out, *faults, rec);
  }

  void apply_faults(ConstTensorView<T> in, TensorView<T> out,
                    const LayerFaults& faults,
                    InjectionRecord* rec) const override {
    if (faults.mac) {
      const MacFault& f = *faults.mac;
      DNNFI_EXPECTS(f.out_index < out_ && f.step < in_);
      const T before = out[f.out_index];
      out[f.out_index] =
          compute_one(in, f.out_index, &f, rec, std::nullopt, std::nullopt);
      note_act(rec, before, out[f.out_index]);
    }
    if (faults.weight) {
      const WeightFault& f = *faults.weight;
      DNNFI_EXPECTS(f.weight_index < weights_.size());
      const std::size_t o = f.weight_index / in_;
      const T w1 =
          detail::storage_apply(weights_[f.weight_index], f.op, f.storage);
      if (rec != nullptr) {
        rec->corrupted_before = detail::to_d(weights_[f.weight_index]);
        rec->corrupted_after = detail::to_d(w1);
        rec->zero_to_one = detail::storage_apply_dir(weights_[f.weight_index],
                                                     f.op, f.storage);
        rec->applied = true;
      }
      const T before = out[o];
      out[o] = compute_one(in, o, nullptr, nullptr,
                           Override{f.weight_index, w1}, std::nullopt);
      note_act(rec, before, out[o]);
    }
    if (faults.scoped_input) {
      const ScopedInputFault& f = *faults.scoped_input;
      DNNFI_EXPECTS(f.input_index < in.size());
      DNNFI_EXPECTS(f.out_channel < out_);
      const T v1 = detail::storage_apply(in[f.input_index], f.op, f.storage);
      if (rec != nullptr) {
        rec->corrupted_before = detail::to_d(in[f.input_index]);
        rec->corrupted_after = detail::to_d(v1);
        rec->zero_to_one =
            detail::storage_apply_dir(in[f.input_index], f.op, f.storage);
        rec->applied = true;
      }
      const T before = out[f.out_channel];
      out[f.out_channel] = compute_one(in, f.out_channel, nullptr, nullptr,
                                       std::nullopt, Override{f.input_index, v1});
      note_act(rec, before, out[f.out_channel]);
    }
    if (faults.column) {
      // Systolic column propagation: FC output o maps onto column o % cols.
      const ColumnFault& f = *faults.column;
      DNNFI_EXPECTS(f.step < in_ && f.cols > 0 && f.first_out < out_);
      bool first = true;
      for (std::size_t o = f.first_out; o < out_; ++o) {
        if (o % f.cols != f.col) continue;
        MacFault mf;
        mf.out_index = o;
        mf.step = f.step;
        mf.site = MacSite::kAccumulator;
        mf.op = f.op;
        const T before = out[o];
        out[o] = compute_one(in, o, &mf, first ? rec : nullptr, std::nullopt,
                             std::nullopt);
        if (first) note_act(rec, before, out[o]);
        first = false;
      }
    }
  }

  void backward(const Tensor<T>& in, const Tensor<T>& /*out*/,
                const Tensor<T>& gout, Tensor<T>& gin, std::span<T> gw,
                std::span<T> gb) const override {
    DNNFI_EXPECTS(gw.size() == weights_.size() && gb.size() == bias_.size());
    if (gin.shape() != in.shape()) gin.reshape(in.shape());
    gin.fill(T{});
    for (std::size_t o = 0; o < out_; ++o) {
      const T g = gout[o];
      gb[o] += g;
      const std::size_t base = o * in_;
      for (std::size_t i = 0; i < in_; ++i) {
        gw[base + i] += g * in[i];
        gin[i] += g * weights_[base + i];
      }
    }
  }

  std::size_t in_features() const noexcept { return in_; }
  std::size_t out_features() const noexcept { return out_; }

 private:
  struct Override {
    std::size_t index;
    T value;
  };

  static void note_act(InjectionRecord* rec, T before, T after) {
    if (rec == nullptr) return;
    rec->act_before = detail::to_d(before);
    rec->act_after = detail::to_d(after);
  }

  T compute_one(ConstTensorView<T> in, std::size_t o, const MacFault* mf,
                InjectionRecord* rec, const std::optional<Override>& w_over,
                const std::optional<Override>& in_over) const {
    T acc{};
    const std::size_t base = o * in_;
    for (std::size_t i = 0; i < in_; ++i) {
      T act = in[i];
      if (in_over && in_over->index == i) act = in_over->value;
      T w = weights_[base + i];
      if (w_over && w_over->index == base + i) w = w_over->value;
      const bool fault_here = (mf != nullptr) && (i == mf->step);
      if (fault_here && mf->site == MacSite::kOperandAct) {
        record_flip(rec, act, mf->op);
        act = fault::apply_op(act, mf->op);
      }
      if (fault_here && mf->site == MacSite::kOperandWeight) {
        record_flip(rec, w, mf->op);
        w = fault::apply_op(w, mf->op);
      }
      T product = w * act;
      if (fault_here && mf->site == MacSite::kProduct) {
        record_flip(rec, product, mf->op);
        product = fault::apply_op(product, mf->op);
      }
      acc += product;
      if (fault_here && mf->site == MacSite::kAccumulator) {
        record_flip(rec, acc, mf->op);
        acc = fault::apply_op(acc, mf->op);
      }
    }
    acc += bias_[o];
    return acc;
  }

  static void record_flip(InjectionRecord* rec, T value,
                          const fault::FaultOp& op) {
    if (rec == nullptr) return;
    rec->corrupted_before = detail::to_d(value);
    rec->corrupted_after = detail::to_d(fault::apply_op(value, op));
    rec->zero_to_one = fault::op_zero_to_one(value, op);
    rec->applied = true;
  }

  std::size_t in_, out_;
  Tensor<T> weights_;
  std::vector<T> bias_;
};

/// Rectified linear unit, computed in T. Negative values (including -0 and
/// corrupted negative bit patterns) are clamped to zero — one of the two
/// masking mechanisms the paper credits for fault absorption (§5.1.4).
template <typename T>
class Relu final : public Layer<T> {
 public:
  using Layer<T>::Layer;
  using Layer<T>::forward;
  LayerKind kind() const noexcept override { return LayerKind::kRelu; }
  Shape out_shape(const Shape& in) const override { return in; }

  void forward(ConstTensorView<T> in, TensorView<T> out,
               const LayerFaults* = nullptr,
               InjectionRecord* = nullptr) const override {
    DNNFI_EXPECTS(out.size() == in.size());
    kernels::relu_forward<T>(in.data().data(), out.data().data(), in.size());
  }

  void backward(const Tensor<T>& in, const Tensor<T>&, const Tensor<T>& gout,
                Tensor<T>& gin, std::span<T>, std::span<T>) const override {
    if (gin.shape() != in.shape()) gin.reshape(in.shape());
    const T zero{};
    for (std::size_t i = 0; i < in.size(); ++i)
      gin[i] = (in[i] > zero) ? gout[i] : zero;
  }
};

/// Max pooling over square windows. Selection compares T values directly;
/// discarded window entries mask any corruption they carried (§5.1.4).
template <typename T>
class MaxPool2d final : public Layer<T> {
 public:
  using Layer<T>::forward;

  MaxPool2d(std::string name, int block, std::size_t k, std::size_t stride)
      : Layer<T>(std::move(name), block), k_(k), stride_(stride) {
    DNNFI_EXPECTS(k > 0 && stride > 0);
  }

  LayerKind kind() const noexcept override { return LayerKind::kMaxPool; }

  Shape out_shape(const Shape& in) const override {
    DNNFI_EXPECTS(in.h >= k_ && in.w >= k_);
    return tensor::chw(in.c, (in.h - k_) / stride_ + 1,
                       (in.w - k_) / stride_ + 1);
  }

  void forward(ConstTensorView<T> in, TensorView<T> out,
               const LayerFaults* = nullptr,
               InjectionRecord* = nullptr) const override {
    const Shape& is = in.shape();
    const Shape os = out.shape();
    DNNFI_EXPECTS(os == out_shape(is));
    kernels::maxpool_forward<T>(
        kernels::PoolGeom{os.c, is.h, is.w, os.h, os.w, k_, stride_},
        in.data().data(), out.data().data());
  }

  void backward(const Tensor<T>& in, const Tensor<T>&, const Tensor<T>& gout,
                Tensor<T>& gin, std::span<T>, std::span<T>) const override {
    const Shape os = gout.shape();
    if (gin.shape() != in.shape()) gin.reshape(in.shape());
    gin.fill(T{});
    for (std::size_t c = 0; c < os.c; ++c)
      for (std::size_t oy = 0; oy < os.h; ++oy)
        for (std::size_t ox = 0; ox < os.w; ++ox) {
          // Route gradient to the window argmax (first maximum wins ties,
          // matching forward's strict-greater comparison).
          std::size_t by = oy * stride_, bx = ox * stride_;
          T best = in.at(0, c, by, bx);
          for (std::size_t ky = 0; ky < k_; ++ky)
            for (std::size_t kx = 0; kx < k_; ++kx) {
              const T v = in.at(0, c, oy * stride_ + ky, ox * stride_ + kx);
              if (v > best) {
                best = v;
                by = oy * stride_ + ky;
                bx = ox * stride_ + kx;
              }
            }
          gin.at(0, c, by, bx) += gout.at(0, c, oy, ox);
        }
  }

  std::size_t kernel() const noexcept { return k_; }
  std::size_t stride() const noexcept { return stride_; }

 private:
  std::size_t k_, stride_;
};

/// Local Response Normalization across channels (Krizhevsky et al.):
///   out[c] = in[c] / (k + alpha/n * sum_{c' in window} in[c']^2)^beta.
/// The normalization averages a faulty value with its fault-free neighbours
/// across fmaps — the masking effect the paper measures in Fig 7.
template <typename T>
class Lrn final : public Layer<T> {
 public:
  using Layer<T>::forward;

  Lrn(std::string name, int block, std::size_t size, double alpha, double beta,
      double k)
      : Layer<T>(std::move(name), block),
        size_(size),
        alpha_(alpha),
        beta_(beta),
        k_(k) {
    DNNFI_EXPECTS(size >= 1 && size % 2 == 1);
  }

  LayerKind kind() const noexcept override { return LayerKind::kLrn; }
  Shape out_shape(const Shape& in) const override { return in; }

  void forward(ConstTensorView<T> in, TensorView<T> out,
               const LayerFaults* = nullptr,
               InjectionRecord* = nullptr) const override {
    const Shape& is = in.shape();
    DNNFI_EXPECTS(out.size() == in.size());
    kernels::lrn_forward<T>(
        kernels::LrnGeom{is.c, is.h, is.w, size_, alpha_, beta_, k_},
        in.data().data(), out.data().data());
  }

  void backward(const Tensor<T>& in, const Tensor<T>&, const Tensor<T>& gout,
                Tensor<T>& gin, std::span<T>, std::span<T>) const override {
    const Shape& is = in.shape();
    if (gin.shape() != is) gin.reshape(is);
    const std::ptrdiff_t half = static_cast<std::ptrdiff_t>(size_ / 2);
    const double coef = 2.0 * alpha_ * beta_ / static_cast<double>(size_);
    for (std::size_t y = 0; y < is.h; ++y) {
      for (std::size_t x = 0; x < is.w; ++x) {
        for (std::size_t i = 0; i < is.c; ++i) {
          const double vi = detail::to_d(in.at(0, i, y, x));
          double g = 0;
          // c ranges over outputs whose window includes channel i.
          const std::ptrdiff_t clo =
              std::max<std::ptrdiff_t>(0, static_cast<std::ptrdiff_t>(i) - half);
          const std::ptrdiff_t chi = std::min<std::ptrdiff_t>(
              static_cast<std::ptrdiff_t>(is.c) - 1,
              static_cast<std::ptrdiff_t>(i) + half);
          for (std::ptrdiff_t c = clo; c <= chi; ++c) {
            const auto cu = static_cast<std::size_t>(c);
            const double s = raw_scale(in, cu, y, x, half);
            const double go = detail::to_d(gout.at(0, cu, y, x));
            const double vc = detail::to_d(in.at(0, cu, y, x));
            // pow(s, -beta) == pow(s, -beta-1) * s up to rounding; one pow
            // call per window term instead of two.
            const double p1 = std::pow(s, -beta_ - 1.0);
            if (cu == i) g += go * (p1 * s);
            g -= go * coef * vc * vi * p1;
          }
          gin.at(0, i, y, x) = detail::from_d<T>(g);
        }
      }
    }
  }

  std::size_t size() const noexcept { return size_; }
  double alpha() const noexcept { return alpha_; }
  double beta() const noexcept { return beta_; }
  double bias_k() const noexcept { return k_; }

 private:
  double raw_scale(ConstTensorView<T> in, std::size_t c, std::size_t y,
                   std::size_t x, std::ptrdiff_t half) const {
    const Shape& is = in.shape();
    const std::ptrdiff_t clo =
        std::max<std::ptrdiff_t>(0, static_cast<std::ptrdiff_t>(c) - half);
    const std::ptrdiff_t chi =
        std::min<std::ptrdiff_t>(static_cast<std::ptrdiff_t>(is.c) - 1,
                                 static_cast<std::ptrdiff_t>(c) + half);
    double ss = 0;
    for (std::ptrdiff_t cc = clo; cc <= chi; ++cc) {
      const double v = detail::to_d(in.at(0, static_cast<std::size_t>(cc), y, x));
      ss += v * v;
    }
    return k_ + alpha_ / static_cast<double>(size_) * ss;
  }

  std::size_t size_;
  double alpha_, beta_, k_;
};

/// Numerically stabilized softmax over the flattened input. Produces the
/// per-class confidence scores used by the SDC-10%/SDC-20% criteria.
/// Forward dispatches to the kernel registry (max, exp-sum, normalize
/// passes; see kernel_scalar.h for the reference semantics).
template <typename T>
class Softmax final : public Layer<T> {
 public:
  using Layer<T>::Layer;
  using Layer<T>::forward;
  LayerKind kind() const noexcept override { return LayerKind::kSoftmax; }
  Shape out_shape(const Shape& in) const override {
    return tensor::vec(in.size());
  }

  void forward(ConstTensorView<T> in, TensorView<T> out,
               const LayerFaults* = nullptr,
               InjectionRecord* = nullptr) const override {
    DNNFI_EXPECTS(out.size() == in.size());
    kernels::softmax_forward<T>(in.data().data(), out.data().data(),
                                in.size());
  }

  void backward(const Tensor<T>& /*in*/, const Tensor<T>& out,
                const Tensor<T>& gout, Tensor<T>& gin, std::span<T>,
                std::span<T>) const override {
    if (gin.shape() != out.shape()) gin.reshape(out.shape());
    double dot = 0;
    for (std::size_t j = 0; j < out.size(); ++j)
      dot += detail::to_d(gout[j]) * detail::to_d(out[j]);
    for (std::size_t i = 0; i < out.size(); ++i) {
      const double oi = detail::to_d(out[i]);
      gin[i] = detail::from_d<T>(oi * (detail::to_d(gout[i]) - dot));
    }
  }
};

/// Global average pooling (NiN's classifier head): one mean per channel.
template <typename T>
class GlobalAvgPool final : public Layer<T> {
 public:
  using Layer<T>::Layer;
  using Layer<T>::forward;
  LayerKind kind() const noexcept override { return LayerKind::kGlobalAvgPool; }
  Shape out_shape(const Shape& in) const override { return tensor::vec(in.c); }

  void forward(ConstTensorView<T> in, TensorView<T> out,
               const LayerFaults* = nullptr,
               InjectionRecord* = nullptr) const override {
    const Shape& is = in.shape();
    DNNFI_EXPECTS(out.size() == is.c);
    kernels::avgpool_forward<T>(in.data().data(), out.data().data(), is.c,
                                is.h * is.w);
  }

  void backward(const Tensor<T>& in, const Tensor<T>&, const Tensor<T>& gout,
                Tensor<T>& gin, std::span<T>, std::span<T>) const override {
    const Shape& is = in.shape();
    if (gin.shape() != is) gin.reshape(is);
    const double inv = 1.0 / static_cast<double>(is.h * is.w);
    for (std::size_t c = 0; c < is.c; ++c) {
      const T g = detail::from_d<T>(detail::to_d(gout[c]) * inv);
      for (std::size_t y = 0; y < is.h; ++y)
        for (std::size_t x = 0; x < is.w; ++x) gin.at(0, c, y, x) = g;
    }
  }
};

}  // namespace dnnfi::dnn
