// Fault descriptors that layers understand. The fault module samples
// hardware-level fault sites (latches, buffer bits) and lowers them onto
// these layer-level hooks; the layer applies them bit-exactly during its
// forward computation.
//
// Scoping mirrors the accelerator reuse analysis of the paper (§2.2, §5.2):
//   * a datapath latch value is consumed exactly once        -> MacFault
//   * a Filter-SRAM weight is reused across a whole fmap     -> WeightFault
//   * an Img-REG value is reused along one output row        -> ScopedInputFault
//   * a Global-Buffer ifmap word is reused by every kernel   -> handled by the
//     injector flipping the layer's input activation tensor directly.
#pragma once

#include <cstddef>
#include <optional>

#include "dnnfi/numeric/dtype.h"

namespace dnnfi::dnn {

/// Which datapath latch of the MAC unit (paper Fig 1b) holds the flipped bit.
enum class MacSite {
  kOperandAct,     ///< activation operand latch, read once by the multiplier
  kOperandWeight,  ///< weight operand latch, read once by the multiplier
  kProduct,        ///< multiplier output latch
  kAccumulator,    ///< adder/partial-sum latch (also models PSum REG upsets)
};

/// Single-bit upset in one MAC of one output element.
/// `step` indexes the accumulation order: for convolution, steps enumerate
/// the (ci, ky, kx) kernel volume in row-major order (padded taps included,
/// reading zero); for fully-connected layers, steps enumerate inputs.
struct MacFault {
  std::size_t out_index = 0;  ///< flat index into the layer output tensor
  std::size_t step = 0;       ///< accumulation step the corrupted latch feeds
  MacSite site = MacSite::kAccumulator;
  int bit = 0;    ///< first bit to flip, 0 = LSB
  int burst = 1;  ///< adjacent bits flipped (1 = single-event upset)
};

/// Single-bit upset in a weight held in a per-PE Filter SRAM: the corrupted
/// weight is consumed by every MAC that reuses it during the layer.
struct WeightFault {
  std::size_t weight_index = 0;  ///< flat index into the layer weight tensor
  int bit = 0;
  int burst = 1;  ///< adjacent bits flipped
  /// When set, the flip strikes the weight as stored in this (reduced)
  /// format rather than the datapath type (Proteus-style storage).
  std::optional<numeric::DType> storage;
};

/// Single-bit upset in an Img REG: the corrupted input value is consumed by
/// the MACs of one output row of one output channel (row-stationary reuse).
struct ScopedInputFault {
  std::size_t input_index = 0;  ///< flat index into the layer input tensor
  std::size_t out_channel = 0;  ///< output channel whose row is affected
  std::size_t out_row = 0;      ///< output row computed from the faulty REG
  int bit = 0;
  int burst = 1;  ///< adjacent bits flipped
  std::optional<numeric::DType> storage;  ///< reduced storage format, if any
};

/// The set of faults a single layer invocation should apply. At most one
/// field is set per injection trial (single-event upsets).
struct LayerFaults {
  std::optional<MacFault> mac;
  std::optional<WeightFault> weight;
  std::optional<ScopedInputFault> scoped_input;
};

/// Written by the layer when it applies a fault: the corrupted quantity
/// before and after the flip, in double. Feeds the paper's Fig 5 value
/// study. `act_before/after` hold the affected *output* activation.
struct InjectionRecord {
  double corrupted_before = 0;  ///< latch/buffer value pre-flip
  double corrupted_after = 0;   ///< latch/buffer value post-flip
  double act_before = 0;        ///< affected output ACT, fault-free
  double act_after = 0;         ///< affected output ACT, faulty
  bool zero_to_one = false;     ///< the flipped bit went 0 -> 1
  bool applied = false;
};

}  // namespace dnnfi::dnn
