// Fault descriptors that layers understand. The fault module samples
// hardware-level fault sites (latches, buffer bits) and lowers them onto
// these layer-level hooks; the layer applies them bit-exactly during its
// forward computation. Each hook carries a mask-based fault::FaultOp (set0 /
// set1 / toggle masks) describing *what* happens to the struck word.
//
// Scoping mirrors the accelerator reuse analysis (paper §2.2, §5.2 for the
// Eyeriss geometry; accel::SystolicArray for the weight-stationary array):
//   * a datapath latch value is consumed exactly once        -> MacFault
//   * a Filter-SRAM weight is reused across a whole fmap     -> WeightFault
//   * an Img-REG value is reused along one output row        -> ScopedInputFault
//   * a systolic psum entering a column's adder chain taints
//     every output still flowing through that column         -> ColumnFault
//   * a Global-Buffer ifmap word is reused by every kernel   -> handled by the
//     injector flipping the layer's input activation tensor directly.
#pragma once

#include <cstddef>
#include <optional>

#include "dnnfi/fault/fault_op.h"
#include "dnnfi/numeric/dtype.h"

namespace dnnfi::dnn {

/// Which datapath latch of the MAC unit (paper Fig 1b) holds the upset.
enum class MacSite {
  kOperandAct,     ///< activation operand latch, read once by the multiplier
  kOperandWeight,  ///< weight operand latch, read once by the multiplier
  kProduct,        ///< multiplier output latch
  kAccumulator,    ///< adder/partial-sum latch (also models PSum REG upsets)
};

/// Upset in one MAC of one output element.
/// `step` indexes the accumulation order: for convolution, steps enumerate
/// the (ci, ky, kx) kernel volume in row-major order (padded taps included,
/// reading zero); for fully-connected layers, steps enumerate inputs.
struct MacFault {
  std::size_t out_index = 0;  ///< flat index into the layer output tensor
  std::size_t step = 0;       ///< accumulation step the corrupted latch feeds
  MacSite site = MacSite::kAccumulator;
  fault::FaultOp op;          ///< mask operation applied to the latch word
};

/// Upset in a weight held in a per-PE Filter SRAM (or stationary in a
/// systolic PE): the corrupted weight is consumed by every MAC that reuses
/// it during the layer.
struct WeightFault {
  std::size_t weight_index = 0;  ///< flat index into the layer weight tensor
  fault::FaultOp op;
  /// When set, the upset strikes the weight as stored in this (reduced)
  /// format rather than the datapath type (Proteus-style storage).
  std::optional<numeric::DType> storage;
};

/// Upset in an Img REG: the corrupted input value is consumed by the MACs
/// of one output row of one output channel (row-stationary reuse).
struct ScopedInputFault {
  std::size_t input_index = 0;  ///< flat index into the layer input tensor
  std::size_t out_channel = 0;  ///< output channel whose row is affected
  std::size_t out_row = 0;      ///< output row computed from the faulty REG
  fault::FaultOp op;
  std::optional<numeric::DType> storage;  ///< reduced storage format, if any
};

/// Weight-stationary systolic column propagation: a corrupt partial sum at
/// accumulation step `step` re-enters column `col`'s adder chain and taints
/// every output element still flowing through that column — i.e. every
/// element with flat index >= `first_out` whose output channel maps onto
/// the column (`channel % cols == col`). The struck element is `first_out`.
struct ColumnFault {
  std::size_t col = 0;        ///< array column of the struck PE
  std::size_t cols = 1;       ///< array width (channel -> column mapping)
  std::size_t first_out = 0;  ///< struck output element (first corrupted)
  std::size_t step = 0;       ///< accumulation step of the strike
  fault::FaultOp op;
};

/// The set of faults a single layer invocation should apply. At most one
/// field is set per injection trial (single-event upsets).
struct LayerFaults {
  std::optional<MacFault> mac;
  std::optional<WeightFault> weight;
  std::optional<ScopedInputFault> scoped_input;
  std::optional<ColumnFault> column;
};

/// Written by the layer when it applies a fault: the corrupted quantity
/// before and after the upset, in double. Feeds the paper's Fig 5 value
/// study. `act_before/after` hold the affected *output* activation.
struct InjectionRecord {
  double corrupted_before = 0;  ///< latch/buffer value pre-upset
  double corrupted_after = 0;   ///< latch/buffer value post-upset
  double act_before = 0;        ///< affected output ACT, fault-free
  double act_after = 0;         ///< affected output ACT, faulty
  bool zero_to_one = false;     ///< the lowest affected bit went 0 -> 1
  bool applied = false;
};

}  // namespace dnnfi::dnn
