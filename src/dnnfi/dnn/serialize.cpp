#include "dnnfi/dnn/serialize.h"

#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "dnnfi/common/atomic_file.h"

namespace dnnfi::dnn {

namespace {

constexpr char kMagic[6] = {'D', 'N', 'N', 'F', 'I', '\x01'};

void write_bytes(std::ostream& os, const void* p, std::size_t n) {
  os.write(static_cast<const char*>(p), static_cast<std::streamsize>(n));
}
template <typename T>
void write_pod(std::ostream& os, T v) {
  write_bytes(os, &v, sizeof(v));
}
void write_string(std::ostream& os, const std::string& s) {
  write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(s.size()));
  write_bytes(os, s.data(), s.size());
}

void read_bytes(std::istream& is, void* p, std::size_t n) {
  is.read(static_cast<char*>(p), static_cast<std::streamsize>(n));
  if (!is) throw std::runtime_error("dnnfi model: truncated file");
}
template <typename T>
T read_pod(std::istream& is) {
  T v;
  read_bytes(is, &v, sizeof(v));
  return v;
}
std::string read_string(std::istream& is) {
  const auto n = read_pod<std::uint32_t>(is);
  if (n > (1U << 20)) throw std::runtime_error("dnnfi model: bad string length");
  std::string s(n, '\0');
  if (n > 0) read_bytes(is, s.data(), n);
  return s;
}

template <typename F>
void write_floats(std::ostream& os, const std::vector<F>& v) {
  write_pod<std::uint64_t>(os, v.size());
  if (!v.empty()) write_bytes(os, v.data(), v.size() * sizeof(F));
}
std::vector<float> read_floats(std::istream& is) {
  const auto n = read_pod<std::uint64_t>(is);
  if (n > (1ULL << 30)) throw std::runtime_error("dnnfi model: bad array length");
  std::vector<float> v(n);
  if (n > 0) read_bytes(is, v.data(), n * sizeof(float));
  return v;
}

}  // namespace

void save_model(const std::string& path, const NetworkSpec& spec,
                const WeightsBlob& blob) {
  // Serialize to memory, then publish via tmp+rename: a crash mid-save can
  // never leave a truncated model where a valid one is expected.
  std::ostringstream os(std::ios::binary);
  write_bytes(os, kMagic, sizeof(kMagic));
  write_string(os, spec.name);
  write_pod<std::uint64_t>(os, spec.input.n);
  write_pod<std::uint64_t>(os, spec.input.c);
  write_pod<std::uint64_t>(os, spec.input.h);
  write_pod<std::uint64_t>(os, spec.input.w);
  write_pod<std::uint64_t>(os, spec.num_classes);
  write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(spec.layers.size()));
  for (const auto& l : spec.layers) {
    write_pod<std::uint8_t>(os, static_cast<std::uint8_t>(l.kind));
    write_pod<std::int32_t>(os, l.block);
    write_string(os, l.name);
    for (const std::size_t v :
         {l.out_channels, l.kernel, l.stride, l.pad, l.out_features,
          l.pool_kernel, l.pool_stride, l.lrn_size, std::size_t{0},
          std::size_t{0}})
      write_pod<std::uint64_t>(os, v);
    for (const double v : {l.lrn_alpha, l.lrn_beta, l.lrn_k, 0.0})
      write_pod<double>(os, v);
  }
  write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(blob.layers.size()));
  for (const auto& lw : blob.layers) {
    write_floats(os, lw.weights);
    write_floats(os, lw.biases);
  }
  if (!os) throw std::runtime_error("dnnfi model: write failed: " + path);
  const auto written = write_file_atomic(path, os.str());
  if (!written)
    throw std::runtime_error("dnnfi model: " + written.error().message);
}

Model load_model(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("dnnfi model: cannot open: " + path);
  char magic[sizeof(kMagic)];
  read_bytes(is, magic, sizeof(magic));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    throw std::runtime_error("dnnfi model: bad magic: " + path);

  Model m;
  m.spec.name = read_string(is);
  m.spec.input.n = read_pod<std::uint64_t>(is);
  m.spec.input.c = read_pod<std::uint64_t>(is);
  m.spec.input.h = read_pod<std::uint64_t>(is);
  m.spec.input.w = read_pod<std::uint64_t>(is);
  m.spec.num_classes = read_pod<std::uint64_t>(is);
  const auto nlayers = read_pod<std::uint32_t>(is);
  if (nlayers > 4096) throw std::runtime_error("dnnfi model: bad layer count");
  m.spec.layers.resize(nlayers);
  for (auto& l : m.spec.layers) {
    l.kind = static_cast<LayerKind>(read_pod<std::uint8_t>(is));
    l.block = read_pod<std::int32_t>(is);
    l.name = read_string(is);
    std::uint64_t ints[10];
    for (auto& v : ints) v = read_pod<std::uint64_t>(is);
    l.out_channels = ints[0];
    l.kernel = ints[1];
    l.stride = ints[2];
    l.pad = ints[3];
    l.out_features = ints[4];
    l.pool_kernel = ints[5];
    l.pool_stride = ints[6];
    l.lrn_size = ints[7];
    double reals[4];
    for (auto& v : reals) v = read_pod<double>(is);
    l.lrn_alpha = reals[0];
    l.lrn_beta = reals[1];
    l.lrn_k = reals[2];
  }
  const auto nblob = read_pod<std::uint32_t>(is);
  if (nblob > 4096) throw std::runtime_error("dnnfi model: bad blob count");
  m.blob.layers.resize(nblob);
  for (auto& lw : m.blob.layers) {
    lw.weights = read_floats(is);
    lw.biases = read_floats(is);
  }
  return m;
}

bool is_model_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return false;
  char magic[sizeof(kMagic)];
  is.read(magic, sizeof(magic));
  return is && std::memcmp(magic, kMagic, sizeof(kMagic)) == 0;
}

}  // namespace dnnfi::dnn
