#include "dnnfi/dnn/layers.h"

#include <cmath>

#include "dnnfi/common/rng.h"
#include "dnnfi/dnn/weights.h"

namespace dnnfi::dnn {

void init_weights(Network<float>& net, std::uint64_t seed) {
  std::size_t ordinal = 0;
  for (const std::size_t li : net.mac_layers()) {
    auto& layer = net.layer(li);
    auto w = layer.weights();
    auto b = layer.biases();
    // He-normal: std = sqrt(2 / fan_in). fan_in = weights per output.
    const std::size_t fan_in = w.size() / std::max<std::size_t>(1, b.size());
    const double stddev = std::sqrt(2.0 / static_cast<double>(fan_in));
    Rng rng = derive_stream(seed, 0xC0FFEE00ULL + ordinal);
    for (auto& v : w) v = static_cast<float>(rng.normal() * stddev);
    for (auto& v : b) v = 0.0F;
    ++ordinal;
  }
}

WeightsBlob extract_weights(const Network<float>& net) {
  WeightsBlob blob;
  blob.layers.reserve(net.mac_layers().size());
  for (const std::size_t li : net.mac_layers()) {
    const auto& layer = net.layer(li);
    LayerWeights lw;
    lw.weights.assign(layer.weights().begin(), layer.weights().end());
    lw.biases.assign(layer.biases().begin(), layer.biases().end());
    blob.layers.push_back(std::move(lw));
  }
  return blob;
}

}  // namespace dnnfi::dnn
