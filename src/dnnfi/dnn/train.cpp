#include "dnnfi/dnn/train.h"

#include <algorithm>
#include <cmath>
#include <iostream>
#include <numeric>
#include <vector>

#include "dnnfi/common/rng.h"
#include "dnnfi/common/thread_pool.h"

namespace dnnfi::dnn {

namespace {

/// Per-worker forward/backward scratch: activations, gradients, and
/// parameter-gradient accumulators.
struct Workspace {
  std::vector<Tensor<float>> acts;    // output of each layer
  std::vector<Tensor<float>> grads;   // grad w.r.t. each layer output
  std::vector<std::vector<float>> gw; // per-layer weight grads
  std::vector<std::vector<float>> gb; // per-layer bias grads
  double loss_sum = 0;
  std::size_t correct = 0;
  std::size_t count = 0;

  explicit Workspace(const Network<float>& net) {
    acts.resize(net.num_layers());
    grads.resize(net.num_layers() + 1);
    gw.resize(net.num_layers());
    gb.resize(net.num_layers());
    for (std::size_t i = 0; i < net.num_layers(); ++i) {
      gw[i].resize(net.layer(i).weights().size(), 0.0F);
      gb[i].resize(net.layer(i).biases().size(), 0.0F);
    }
  }

  void zero_grads() {
    for (auto& g : gw) std::fill(g.begin(), g.end(), 0.0F);
    for (auto& g : gb) std::fill(g.begin(), g.end(), 0.0F);
    loss_sum = 0;
    correct = 0;
    count = 0;
  }
};

/// Index of the last layer to run during training (trailing softmax is
/// folded into the loss).
std::size_t train_depth(const Network<float>& net) {
  const std::size_t n = net.num_layers();
  if (net.layer(n - 1).kind() == LayerKind::kSoftmax) return n - 1;
  return n;
}

/// Forward to logits, then softmax-cross-entropy loss/gradient, then
/// backward, accumulating parameter gradients into ws.
void fwd_bwd(const Network<float>& net, const Example& ex, Workspace& ws) {
  const std::size_t depth = train_depth(net);
  const Tensor<float>* cur = &ex.image;
  for (std::size_t i = 0; i < depth; ++i) {
    net.layer(i).forward(*cur, ws.acts[i]);
    cur = &ws.acts[i];
  }
  const Tensor<float>& logits = *cur;
  const std::size_t k = logits.size();
  DNNFI_EXPECTS(ex.label < k);

  // Stabilized softmax + cross-entropy.
  float mx = logits[0];
  for (std::size_t i = 1; i < k; ++i) mx = std::max(mx, logits[i]);
  double sum = 0;
  std::vector<double> p(k);
  for (std::size_t i = 0; i < k; ++i) {
    p[i] = std::exp(static_cast<double>(logits[i] - mx));
    sum += p[i];
  }
  std::size_t argmax = 0;
  for (std::size_t i = 0; i < k; ++i) {
    p[i] /= sum;
    if (logits[i] > logits[argmax]) argmax = i;
  }
  ws.loss_sum += -std::log(std::max(p[ex.label], 1e-12));
  ws.correct += (argmax == ex.label) ? 1U : 0U;
  ws.count += 1;

  // dLoss/dLogits = p - onehot(label).
  Tensor<float>& gtop = ws.grads[depth];
  if (gtop.shape() != logits.shape()) gtop.reshape(logits.shape());
  for (std::size_t i = 0; i < k; ++i)
    gtop[i] = static_cast<float>(p[i] - (i == ex.label ? 1.0 : 0.0));

  for (std::size_t i = depth; i-- > 0;) {
    const Tensor<float>& in = (i == 0) ? ex.image : ws.acts[i - 1];
    net.layer(i).backward(in, ws.acts[i], ws.grads[i + 1], ws.grads[i],
                          ws.gw[i], ws.gb[i]);
  }
}

}  // namespace

void train(Network<float>& net, const ExampleSource& source,
           const TrainConfig& config) {
  DNNFI_EXPECTS(config.batch > 0 && config.train_count > 0);

  // Momentum buffers per layer.
  std::vector<std::vector<float>> vw(net.num_layers()), vb(net.num_layers());
  for (std::size_t i = 0; i < net.num_layers(); ++i) {
    vw[i].resize(net.layer(i).weights().size(), 0.0F);
    vb[i].resize(net.layer(i).biases().size(), 0.0F);
  }

  // Fixed number of accumulation lanes, independent of thread count, so the
  // gradient summation order (and thus the trained model) is reproducible
  // on any machine.
  constexpr std::size_t kLanes = 8;
  std::vector<Workspace> lanes;
  lanes.reserve(kLanes);
  for (std::size_t i = 0; i < kLanes; ++i) lanes.emplace_back(net);

  std::vector<std::uint64_t> order(config.train_count);
  std::iota(order.begin(), order.end(), 0);
  Rng shuffle_rng = derive_stream(config.seed, 0x5C0FFULL);

  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    // Fisher–Yates shuffle with our deterministic generator.
    for (std::size_t i = order.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(shuffle_rng.below(i));
      std::swap(order[i - 1], order[j]);
    }

    double epoch_loss = 0;
    std::size_t epoch_correct = 0;
    for (std::size_t start = 0; start < order.size(); start += config.batch) {
      const std::size_t end = std::min(order.size(), start + config.batch);
      for (auto& lane : lanes) lane.zero_grads();

      // Deterministic lane assignment: example -> lane by position.
      parallel_for(kLanes, [&](std::size_t lane_idx) {
        Workspace& ws = lanes[lane_idx];
        for (std::size_t s = start + lane_idx; s < end; s += kLanes) {
          fwd_bwd(net, source(order[s]), ws);
        }
      });

      // Reduce lanes in fixed order and apply SGD with momentum + decay.
      const auto bsz = static_cast<double>(end - start);
      for (std::size_t li = 0; li < net.num_layers(); ++li) {
        auto w = net.layer(li).weights();
        auto b = net.layer(li).biases();
        if (w.empty() && b.empty()) continue;
        for (std::size_t j = 0; j < w.size(); ++j) {
          double g = 0;
          for (const auto& lane : lanes) g += static_cast<double>(lane.gw[li][j]);
          g = g / bsz + config.weight_decay * static_cast<double>(w[j]);
          vw[li][j] = static_cast<float>(config.momentum * static_cast<double>(vw[li][j]) -
                                         config.learning_rate * g);
          w[j] += vw[li][j];
        }
        for (std::size_t j = 0; j < b.size(); ++j) {
          double g = 0;
          for (const auto& lane : lanes) g += static_cast<double>(lane.gb[li][j]);
          g /= bsz;
          vb[li][j] = static_cast<float>(config.momentum * static_cast<double>(vb[li][j]) -
                                         config.learning_rate * g);
          b[j] += vb[li][j];
        }
      }
      for (const auto& lane : lanes) {
        epoch_loss += lane.loss_sum;
        epoch_correct += lane.correct;
      }
    }
    if (config.verbose) {
      std::cerr << "[train " << net.name() << "] epoch " << (epoch + 1) << "/"
                << config.epochs << " loss "
                << epoch_loss / static_cast<double>(order.size()) << " acc "
                << static_cast<double>(epoch_correct) /
                       static_cast<double>(order.size())
                << '\n';
    }
  }
}

EvalResult evaluate(const Network<float>& net, const ExampleSource& source,
                    std::uint64_t begin, std::size_t count) {
  DNNFI_EXPECTS(count > 0);
  const std::size_t depth = train_depth(net);
  double loss = 0;
  std::size_t correct = 0;
  Tensor<float> a, b;
  for (std::size_t s = 0; s < count; ++s) {
    const Example ex = source(begin + s);
    const Tensor<float>* cur = &ex.image;
    for (std::size_t i = 0; i < depth; ++i) {
      net.layer(i).forward(*cur, (i % 2 == 0) ? a : b);
      cur = (i % 2 == 0) ? &a : &b;
    }
    const Tensor<float>& logits = *cur;
    float mx = logits[0];
    std::size_t argmax = 0;
    for (std::size_t i = 1; i < logits.size(); ++i) {
      if (logits[i] > logits[argmax]) argmax = i;
      mx = std::max(mx, logits[i]);
    }
    double sum = 0;
    for (std::size_t i = 0; i < logits.size(); ++i)
      sum += std::exp(static_cast<double>(logits[i] - mx));
    const double p_label =
        std::exp(static_cast<double>(logits[ex.label] - mx)) / sum;
    loss += -std::log(std::max(p_label, 1e-12));
    correct += (argmax == ex.label) ? 1U : 0U;
  }
  return {static_cast<double>(correct) / static_cast<double>(count),
          loss / static_cast<double>(count)};
}

}  // namespace dnnfi::dnn
