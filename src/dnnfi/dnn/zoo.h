// The four networks of the paper's Table 2, at reduced scale (see DESIGN.md
// §1 for the substitution argument):
//
//   ConvNet   — 3 CONV + 2 FC, ReLU + max-pool, softmax, no LRN (CIFAR-10 class)
//   AlexNet-S — 5 CONV (LRN after conv1, conv2; order conv-relu-LRN-pool) + 3 FC, softmax
//   CaffeNet-S— same as AlexNet-S but pool *before* LRN (the only difference
//               between AlexNet and CaffeNet the paper calls out)
//   NiN-S     — 12 CONV (4 mlpconv blocks), global average pooling,
//               no FC and *no softmax* (its output has no confidence scores)
#pragma once

#include <array>
#include <string>
#include <string_view>

#include "dnnfi/dnn/spec.h"

namespace dnnfi::dnn::zoo {

enum class NetworkId { kConvNet, kAlexNetS, kCaffeNetS, kNiNS };

inline constexpr std::array<NetworkId, 4> kAllNetworks = {
    NetworkId::kConvNet, NetworkId::kAlexNetS, NetworkId::kCaffeNetS,
    NetworkId::kNiNS};

std::string_view network_name(NetworkId id);

/// Topology for `id`. Deterministic; safe to call repeatedly.
NetworkSpec network_spec(NetworkId id);

/// Canonical model file name, e.g. "convnet.dnnfi".
std::string model_filename(NetworkId id);

}  // namespace dnnfi::dnn::zoo
