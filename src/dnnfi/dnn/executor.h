// Compiled execution plans.
//
// ExecutionPlan<T> is built once per Network<T>: it pre-resolves every
// layer's input/output shape, per-layer MAC counts, and the arena high-water
// mark a forward pass needs. Workspace<T> owns that arena (one contiguous
// vector, reused across runs). Executor<T> runs a plan out of a workspace
// and subsumes the three legacy forward variants — plain, traced, and
// fault-patched partial re-execution — behind one RunRequest. Arbitrary
// layer ranges run through run_range; ActivationCache<T> holds the
// fault-free output of every layer boundary for one input in one contiguous
// block, so faulty replays can seed from any layer and stop as soon as the
// fault's effect is erased (see DESIGN.md §8).
//
// Thread-safety contract: a plan is immutable after construction and may be
// shared by any number of threads; an Executor is a stateless handle over a
// plan and is likewise shareable; an ActivationCache is immutable after
// build() and likewise shareable. A Workspace is mutable scratch — use one
// per thread (the campaign engine keeps one per worker for the whole
// campaign). After warm-up, a faulty run performs zero heap allocations.
//
// Buffer lifetime: the arena is laid out as [ping | pong | patch | packed].
// Layer i reads buffer (i % 2) and writes buffer (1 - i % 2); the patch slot
// holds the flipped copy of a layer input for the global-buffer fault model;
// the packed slot holds the lane-interleaved weight copies of the plan's MAC
// layers when the plan's kernel set wants them (kernels.h — the plan-time
// layout transform). The view returned by run() aliases the arena and is
// valid only until the workspace is reused — except after a masked early
// exit, where it aliases the (stable) ActivationCache instead.
//
// Kernel dispatch: a plan captures kernels::active_kernels<T>() at
// construction and routes every conv / fully-connected / relu / lrn /
// maxpool / avgpool / softmax step through it (exec_step). Public tensors — activations, caches, checkpoints, fault
// injection coordinates — stay NCHW/OIHW; the packed copy lives only in the
// workspace and is refreshed whenever the workspace re-binds a different
// plan (or Workspace::repack is called after mutating weights in place).
#pragma once

#include <vector>

#include "dnnfi/dnn/kernels/kernels.h"
#include "dnnfi/dnn/network.h"

namespace dnnfi::dnn {

/// Which kernel a plan step routes through (kNone: the layer's own forward).
enum class StepKernel {
  kNone,
  kConv,
  kFc,
  kRelu,
  kLrn,
  kMaxPool,
  kAvgPool,
  kSoftmax
};

/// One layer of a compiled plan with its resolved shapes and, for kernel-
/// routed layers, the pre-resolved kernel call (geometry, weight and bias
/// pointers, packed-copy placement). Avgpool's channel/plane split and
/// softmax's length come straight from in_shape at exec time, so only LRN
/// and maxpool carry extra geometry.
template <typename T>
struct PlanStep {
  const Layer<T>* layer = nullptr;
  Shape in_shape;
  Shape out_shape;
  std::size_t macs = 0;
  StepKernel kernel = StepKernel::kNone;
  kernels::ConvGeom conv;
  kernels::FcGeom fc;
  kernels::LrnGeom lrn;
  kernels::PoolGeom pool;
  const T* w = nullptr;     ///< row-major weights (stable: layer storage)
  const T* bias = nullptr;
  std::size_t packed_off = 0;  ///< offset of this step in the packed region
  std::size_t packed_n = 0;    ///< packed element count (0: nothing packed)
};

/// Immutable forward schedule for one network topology. Holds raw layer
/// pointers — valid as long as the Network that built it is alive (layer
/// storage is stable across Network moves).
template <typename T>
class ExecutionPlan {
 public:
  explicit ExecutionPlan(const Network<T>& net);

  const std::vector<PlanStep<T>>& steps() const noexcept { return steps_; }
  std::size_t num_layers() const noexcept { return steps_.size(); }
  const Shape& input_shape() const noexcept { return input_; }
  const Shape& output_shape() const noexcept {
    return steps_.back().out_shape;
  }

  /// Largest layer-output element count (sizes each ping-pong buffer).
  std::size_t buffer_elems() const noexcept { return buffer_elems_; }
  /// Largest layer-input element count (sizes the patch buffer).
  std::size_t input_elems() const noexcept { return input_elems_; }
  /// Packed-weight element count (0 when the kernel set reads row-major).
  std::size_t packed_elems() const noexcept { return packed_elems_; }
  /// Arena high-water mark: ping + pong + patch + packed.
  std::size_t arena_elems() const noexcept {
    return 2 * buffer_elems_ + input_elems_ + packed_elems_;
  }

  std::size_t total_macs() const noexcept { return total_macs_; }

  /// The kernel set captured at plan build (kernels::active_kernels<T>() at
  /// that moment; later set_active_mode calls don't retarget this plan).
  const kernels::KernelSet<T>& kernel_set() const noexcept { return *kset_; }

  /// Writes every MAC layer's lane-interleaved weight copy into `dst`
  /// (capacity >= packed_elems()), reading the layers' current weights.
  void pack_into(T* dst) const;

  /// Runs step `i` on `in` -> `out` through the captured kernel set.
  /// `packed` is the packed-region base (Workspace::packed_data()), or null
  /// — then steps whose kernels want packed weights take the scalar
  /// reference path instead (bit-identical under an exact set).
  void exec_step(std::size_t i, ConstTensorView<T> in, TensorView<T> out,
                 const T* packed) const;

 private:
  std::vector<PlanStep<T>> steps_;
  Shape input_;
  std::size_t buffer_elems_ = 0;
  std::size_t input_elems_ = 0;
  std::size_t packed_elems_ = 0;
  std::size_t total_macs_ = 0;
  const kernels::KernelSet<T>* kset_ = nullptr;
};

/// Reusable per-thread scratch arena sized to a plan's high-water mark.
/// Never shrinks, so one workspace can serve plans of different sizes.
template <typename T>
class Workspace {
 public:
  Workspace() = default;
  explicit Workspace(const ExecutionPlan<T>& plan) { bind(plan); }

  /// Ensures capacity for `plan` and keeps the packed weight region in sync
  /// with it. Idempotent; reallocates only when the plan needs more room
  /// than any previously bound plan, and repacks weights only when the
  /// bound plan (or the packed region's position) changed.
  void bind(const ExecutionPlan<T>& plan) {
    buffer_elems_ = std::max(buffer_elems_, plan.buffer_elems());
    input_elems_ = std::max(input_elems_, plan.input_elems());
    packed_cap_ = std::max(packed_cap_, plan.packed_elems());
    const std::size_t need = 2 * buffer_elems_ + input_elems_ + packed_cap_;
    if (arena_.size() < need) arena_.resize(need);
    const std::size_t base = 2 * buffer_elems_ + input_elems_;
    if (plan.packed_elems() > 0 &&
        (packed_plan_ != &plan || packed_base_ != base)) {
      plan.pack_into(arena_.data() + base);
      packed_plan_ = &plan;
      packed_base_ = base;
    }
  }

  /// Forces the next bind to re-interleave weights. Call after mutating a
  /// bound plan's layer weights in place (the packed copy is a snapshot).
  void repack() noexcept { packed_plan_ = nullptr; }

  /// Ping (`parity` 0) or pong (`parity` 1) output buffer, shaped `s`.
  TensorView<T> out_buffer(unsigned parity, const Shape& s) {
    DNNFI_EXPECTS(parity < 2 && s.size() <= buffer_elems_);
    return {s, arena_.data() + parity * buffer_elems_};
  }

  /// Scratch copy of a layer input (global-buffer fault patching).
  TensorView<T> patch_buffer(const Shape& s) {
    DNNFI_EXPECTS(s.size() <= input_elems_);
    return {s, arena_.data() + 2 * buffer_elems_};
  }

  /// Base of the packed weight region for the currently bound plan, or
  /// null when nothing is packed. Valid until the next bind/resize.
  const T* packed_data() const noexcept {
    return packed_plan_ == nullptr ? nullptr : arena_.data() + packed_base_;
  }

  std::size_t arena_bytes() const noexcept {
    return arena_.size() * sizeof(T);
  }

 private:
  std::vector<T> arena_;
  std::size_t buffer_elems_ = 0;
  std::size_t input_elems_ = 0;
  std::size_t packed_cap_ = 0;
  const ExecutionPlan<T>* packed_plan_ = nullptr;  ///< identity only
  std::size_t packed_base_ = 0;
};

/// Immutable fault-free activations of one input under one plan: the
/// network input plus every layer's output, packed into a single
/// contiguous block whose layout comes from the plan's step metadata (one
/// allocation per cache; rebuilds against the same plan reuse it). This is
/// the golden source of incremental fault replay: a faulty run seeds the
/// workspace from act(fault_layer - 1) for free and compares each replayed
/// layer against act(i) to detect that the fault has been masked.
template <typename T>
class ActivationCache {
 public:
  ActivationCache() = default;
  ActivationCache(const ExecutionPlan<T>& plan, ConstTensorView<T> input) {
    build(plan, input);
  }

  /// Runs the fault-free forward pass for `input`, storing every layer
  /// boundary. Layer outputs are bit-identical to an Executor plain run
  /// (same forward calls on the same values, in the same order).
  void build(const ExecutionPlan<T>& plan, ConstTensorView<T> input);

  bool bound() const noexcept { return plan_ != nullptr; }
  std::size_t num_layers() const noexcept {
    return plan_ == nullptr ? 0 : plan_->num_layers();
  }

  /// The network input the cache was built from.
  ConstTensorView<T> input() const {
    DNNFI_EXPECTS(bound());
    return {plan_->input_shape(), store_.data()};
  }
  /// Fault-free output of layer `i`.
  ConstTensorView<T> act(std::size_t i) const {
    DNNFI_EXPECTS(bound() && i < num_layers());
    return {plan_->steps()[i].out_shape, store_.data() + offsets_[i]};
  }
  /// Fault-free input of layer `i` (the previous layer's output).
  ConstTensorView<T> layer_input(std::size_t i) const {
    return i == 0 ? input() : act(i - 1);
  }
  /// Fault-free final output (the cached logits a masked trial emits).
  ConstTensorView<T> output() const { return act(num_layers() - 1); }

 private:
  const ExecutionPlan<T>* plan_ = nullptr;
  std::vector<std::size_t> offsets_;  ///< start of act(i); input sits at 0
  std::vector<T> store_;
};

/// What an incremental faulty run actually executed (RunRequest::replay).
struct ReplayInfo {
  std::size_t fault_layer = 0;
  std::size_t layers_run = 0;  ///< layers executed, fault layer included
  /// Early exit fired: a replayed layer's output matched the fault-free
  /// cache bit-for-bit, so the run stopped and returned the cached final
  /// output (which the remaining layers would have reproduced exactly).
  bool masked = false;
  std::size_t masked_at = 0;  ///< layer whose output matched (iff masked)
};

/// One forward run, fully described. Exactly one of two modes:
///  - plain/traced: `input` set; `trace`, when non-null, receives the
///    golden trace (its tensors reuse capacity across runs); `observer`,
///    when non-null, sees every layer output.
///  - faulty: `fault` plus a golden source — `cache` (preferred) or
///    `golden` — set; only the fault layer (patched) and the layers after
///    it execute. `observer` sees recomputed layers only. With
///    `early_exit`, the run stops at the first replayed layer whose output
///    matches the golden source bit-for-bit and returns the cached final
///    output; `replay`, when non-null, reports what actually ran.
template <typename T>
struct RunRequest {
  ConstTensorView<T> input;
  Trace<T>* trace = nullptr;
  const Trace<T>* golden = nullptr;
  const ActivationCache<T>* cache = nullptr;
  const AppliedFault* fault = nullptr;
  InjectionRecord* record = nullptr;
  const LayerObserver<T>* observer = nullptr;
  bool early_exit = false;
  ReplayInfo* replay = nullptr;
};

/// Stateless runner for a compiled plan. Cheap to copy; safe to share
/// across threads (each thread supplies its own Workspace).
template <typename T>
class Executor {
 public:
  explicit Executor(const ExecutionPlan<T>& plan) : plan_(&plan) {}

  const ExecutionPlan<T>& plan() const noexcept { return *plan_; }

  /// Runs the request out of `ws` and returns a view of the final layer
  /// output. The view aliases the workspace arena (or, after a masked
  /// early exit, the activation cache): copy it (or read it) before the
  /// workspace runs again.
  ConstTensorView<T> run(Workspace<T>& ws, const RunRequest<T>& req) const;

  /// Runs layers [from, to) of the plan: `req.input` must have layer
  /// `from`'s input shape, and the returned view is layer `to - 1`'s
  /// output. `req.fault` must be null (fault replay picks its own range);
  /// `req.trace` is only legal for the full range. The observer sees every
  /// executed layer, indexed by its plan position.
  ConstTensorView<T> run_range(Workspace<T>& ws, std::size_t from,
                               std::size_t to, const RunRequest<T>& req) const;

 private:
  template <typename Golden>
  ConstTensorView<T> run_faulty(Workspace<T>& ws, const RunRequest<T>& req,
                                const Golden& g) const;

  const ExecutionPlan<T>* plan_;
};

extern template class ExecutionPlan<double>;
extern template class ExecutionPlan<float>;
extern template class ExecutionPlan<numeric::Half>;
extern template class ExecutionPlan<numeric::Fx32r26>;
extern template class ExecutionPlan<numeric::Fx32r10>;
extern template class ExecutionPlan<numeric::Fx16r10>;

extern template class ActivationCache<double>;
extern template class ActivationCache<float>;
extern template class ActivationCache<numeric::Half>;
extern template class ActivationCache<numeric::Fx32r26>;
extern template class ActivationCache<numeric::Fx32r10>;
extern template class ActivationCache<numeric::Fx16r10>;

extern template class Executor<double>;
extern template class Executor<float>;
extern template class Executor<numeric::Half>;
extern template class Executor<numeric::Fx32r26>;
extern template class Executor<numeric::Fx32r10>;
extern template class Executor<numeric::Fx16r10>;

}  // namespace dnnfi::dnn
