// Compiled execution plans.
//
// ExecutionPlan<T> is built once per Network<T>: it pre-resolves every
// layer's input/output shape, per-layer MAC counts, and the arena high-water
// mark a forward pass needs. Workspace<T> owns that arena (one contiguous
// vector, reused across runs). Executor<T> runs a plan out of a workspace
// and subsumes the three legacy forward variants — plain, traced, and
// fault-patched partial re-execution — behind one RunRequest.
//
// Thread-safety contract: a plan is immutable after construction and may be
// shared by any number of threads; an Executor is a stateless handle over a
// plan and is likewise shareable. A Workspace is mutable scratch — use one
// per thread (the campaign engine keeps one per worker for the whole
// campaign). After warm-up, a faulty run performs zero heap allocations.
//
// Buffer lifetime: the arena is laid out as [ping | pong | patch]. Layer i
// reads buffer (i % 2) and writes buffer (1 - i % 2); the patch slot holds
// the flipped copy of a layer input for the global-buffer fault model. The
// view returned by run() aliases the arena and is valid only until the
// workspace is reused.
#pragma once

#include <vector>

#include "dnnfi/dnn/network.h"

namespace dnnfi::dnn {

/// One layer of a compiled plan with its resolved shapes.
template <typename T>
struct PlanStep {
  const Layer<T>* layer = nullptr;
  Shape in_shape;
  Shape out_shape;
  std::size_t macs = 0;
};

/// Immutable forward schedule for one network topology. Holds raw layer
/// pointers — valid as long as the Network that built it is alive (layer
/// storage is stable across Network moves).
template <typename T>
class ExecutionPlan {
 public:
  explicit ExecutionPlan(const Network<T>& net);

  const std::vector<PlanStep<T>>& steps() const noexcept { return steps_; }
  std::size_t num_layers() const noexcept { return steps_.size(); }
  const Shape& input_shape() const noexcept { return input_; }
  const Shape& output_shape() const noexcept {
    return steps_.back().out_shape;
  }

  /// Largest layer-output element count (sizes each ping-pong buffer).
  std::size_t buffer_elems() const noexcept { return buffer_elems_; }
  /// Largest layer-input element count (sizes the patch buffer).
  std::size_t input_elems() const noexcept { return input_elems_; }
  /// Arena high-water mark: ping + pong + patch.
  std::size_t arena_elems() const noexcept {
    return 2 * buffer_elems_ + input_elems_;
  }

  std::size_t total_macs() const noexcept { return total_macs_; }

 private:
  std::vector<PlanStep<T>> steps_;
  Shape input_;
  std::size_t buffer_elems_ = 0;
  std::size_t input_elems_ = 0;
  std::size_t total_macs_ = 0;
};

/// Reusable per-thread scratch arena sized to a plan's high-water mark.
/// Never shrinks, so one workspace can serve plans of different sizes.
template <typename T>
class Workspace {
 public:
  Workspace() = default;
  explicit Workspace(const ExecutionPlan<T>& plan) { bind(plan); }

  /// Ensures capacity for `plan`. Idempotent; reallocates only when the
  /// plan needs more room than any previously bound plan.
  void bind(const ExecutionPlan<T>& plan) {
    buffer_elems_ = std::max(buffer_elems_, plan.buffer_elems());
    input_elems_ = std::max(input_elems_, plan.input_elems());
    const std::size_t need = 2 * buffer_elems_ + input_elems_;
    if (arena_.size() < need) arena_.resize(need);
  }

  /// Ping (`parity` 0) or pong (`parity` 1) output buffer, shaped `s`.
  TensorView<T> out_buffer(unsigned parity, const Shape& s) {
    DNNFI_EXPECTS(parity < 2 && s.size() <= buffer_elems_);
    return {s, arena_.data() + parity * buffer_elems_};
  }

  /// Scratch copy of a layer input (global-buffer fault patching).
  TensorView<T> patch_buffer(const Shape& s) {
    DNNFI_EXPECTS(s.size() <= input_elems_);
    return {s, arena_.data() + 2 * buffer_elems_};
  }

  std::size_t arena_bytes() const noexcept {
    return arena_.size() * sizeof(T);
  }

 private:
  std::vector<T> arena_;
  std::size_t buffer_elems_ = 0;
  std::size_t input_elems_ = 0;
};

/// One forward run, fully described. Exactly one of two modes:
///  - plain/traced: `input` set; `trace`, when non-null, receives the
///    golden trace (its tensors reuse capacity across runs); `observer`,
///    when non-null, sees every layer output.
///  - faulty: `fault` and `golden` set; only the fault layer (patched) and
///    the layers after it execute. `observer` sees recomputed layers only.
template <typename T>
struct RunRequest {
  ConstTensorView<T> input;
  Trace<T>* trace = nullptr;
  const Trace<T>* golden = nullptr;
  const AppliedFault* fault = nullptr;
  InjectionRecord* record = nullptr;
  const LayerObserver<T>* observer = nullptr;
};

/// Stateless runner for a compiled plan. Cheap to copy; safe to share
/// across threads (each thread supplies its own Workspace).
template <typename T>
class Executor {
 public:
  explicit Executor(const ExecutionPlan<T>& plan) : plan_(&plan) {}

  const ExecutionPlan<T>& plan() const noexcept { return *plan_; }

  /// Runs the request out of `ws` and returns a view of the final layer
  /// output. The view aliases the workspace arena: copy it (or read it)
  /// before the workspace runs again.
  ConstTensorView<T> run(Workspace<T>& ws, const RunRequest<T>& req) const;

 private:
  ConstTensorView<T> run_plain(Workspace<T>& ws, const RunRequest<T>& req) const;
  ConstTensorView<T> run_faulty(Workspace<T>& ws, const RunRequest<T>& req) const;

  const ExecutionPlan<T>* plan_;
};

extern template class ExecutionPlan<double>;
extern template class ExecutionPlan<float>;
extern template class ExecutionPlan<numeric::Half>;
extern template class ExecutionPlan<numeric::Fx32r26>;
extern template class ExecutionPlan<numeric::Fx32r10>;
extern template class ExecutionPlan<numeric::Fx16r10>;

extern template class Executor<double>;
extern template class Executor<float>;
extern template class Executor<numeric::Half>;
extern template class Executor<numeric::Fx32r26>;
extern template class Executor<numeric::Fx32r10>;
extern template class Executor<numeric::Fx16r10>;

}  // namespace dnnfi::dnn
