#include "dnnfi/dnn/network.h"

#include <algorithm>
#include <numeric>

namespace dnnfi::dnn {

std::size_t Prediction::top1() const {
  DNNFI_EXPECTS(!scores.empty());
  return static_cast<std::size_t>(
      std::distance(scores.begin(), std::max_element(scores.begin(), scores.end())));
}

std::vector<std::size_t> Prediction::topk(std::size_t k) const {
  DNNFI_EXPECTS(!scores.empty());
  k = std::min(k, scores.size());
  std::vector<std::size_t> idx(scores.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::partial_sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k),
                    idx.end(), [this](std::size_t a, std::size_t b) {
                      if (scores[a] != scores[b]) return scores[a] > scores[b];
                      return a < b;  // deterministic tie-break
                    });
  idx.resize(k);
  return idx;
}

double Prediction::top1_score() const { return scores[top1()]; }

template <typename T>
std::unique_ptr<Layer<T>> make_layer(const LayerSpec& spec, const Shape& in_shape) {
  switch (spec.kind) {
    case LayerKind::kConv:
      return std::make_unique<Conv2d<T>>(spec.name, spec.block, in_shape.c,
                                         spec.out_channels, spec.kernel,
                                         spec.stride, spec.pad);
    case LayerKind::kFullyConnected:
      return std::make_unique<FullyConnected<T>>(spec.name, spec.block,
                                                 in_shape.size(),
                                                 spec.out_features);
    case LayerKind::kRelu:
      return std::make_unique<Relu<T>>(spec.name, spec.block);
    case LayerKind::kMaxPool:
      return std::make_unique<MaxPool2d<T>>(spec.name, spec.block,
                                            spec.pool_kernel, spec.pool_stride);
    case LayerKind::kLrn:
      return std::make_unique<Lrn<T>>(spec.name, spec.block, spec.lrn_size,
                                      spec.lrn_alpha, spec.lrn_beta, spec.lrn_k);
    case LayerKind::kSoftmax:
      return std::make_unique<Softmax<T>>(spec.name, spec.block);
    case LayerKind::kGlobalAvgPool:
      return std::make_unique<GlobalAvgPool<T>>(spec.name, spec.block);
  }
  DNNFI_EXPECTS(false);
  return nullptr;
}

template <typename T>
Network<T>::Network(const NetworkSpec& spec) : spec_(spec) {
  DNNFI_EXPECTS(!spec.layers.empty());
  Shape shape = spec.input;
  layers_.reserve(spec.layers.size());
  for (const auto& ls : spec.layers) {
    auto layer = make_layer<T>(ls, shape);
    shape = layer->out_shape(shape);
    if (ls.kind == LayerKind::kConv || ls.kind == LayerKind::kFullyConnected)
      mac_layers_.push_back(layers_.size());
    layers_.push_back(std::move(layer));
  }
  DNNFI_ENSURES(shape.size() == spec.num_classes);
}

template <typename T>
Tensor<T> Network<T>::forward(const Tensor<T>& input) const {
  DNNFI_EXPECTS(input.shape() == spec_.input);
  Tensor<T> a = input;
  Tensor<T> b;
  for (const auto& layer : layers_) {
    layer->forward(a, b);
    std::swap(a, b);
  }
  return a;
}

template <typename T>
Trace<T> Network<T>::forward_trace(const Tensor<T>& input) const {
  DNNFI_EXPECTS(input.shape() == spec_.input);
  Trace<T> tr;
  tr.input = input;
  tr.acts.resize(layers_.size());
  const Tensor<T>* cur = &tr.input;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    layers_[i]->forward(*cur, tr.acts[i]);
    cur = &tr.acts[i];
  }
  return tr;
}

template <typename T>
Tensor<T> Network<T>::forward_with_fault(const Trace<T>& golden,
                                         const AppliedFault& f,
                                         InjectionRecord* rec,
                                         const LayerObserverFn* observer) const {
  DNNFI_EXPECTS(f.layer < layers_.size());
  DNNFI_EXPECTS(golden.acts.size() == layers_.size());

  Tensor<T> a;
  Tensor<T> b;
  if (f.flip_layer_input) {
    // Global-buffer model: the corrupted ifmap word is read by every
    // consumer, so the whole target layer re-executes on flipped input.
    Tensor<T> in = golden.layer_input(f.layer);
    DNNFI_EXPECTS(f.input_index < in.size());
    const T before = in[f.input_index];
    const T after =
        f.input_storage
            ? numeric::numeric_traits<T>::from_double(numeric::dispatch_dtype(
                  *f.input_storage, [&]<typename S>() {
                    using Tr = numeric::numeric_traits<S>;
                    return Tr::to_double(numeric::flip_burst(
                        Tr::from_double(
                            numeric::numeric_traits<T>::to_double(before)),
                        f.input_bit, f.input_burst));
                  }))
            : numeric::flip_burst(before, f.input_bit, f.input_burst);
    in[f.input_index] = after;
    if (rec != nullptr) {
      rec->corrupted_before = numeric::numeric_traits<T>::to_double(before);
      rec->corrupted_after = numeric::numeric_traits<T>::to_double(after);
      rec->zero_to_one =
          f.input_storage
              ? numeric::dispatch_dtype(*f.input_storage, [&]<typename S>() {
                  return numeric::flip_is_zero_to_one(
                      numeric::numeric_traits<S>::from_double(
                          numeric::numeric_traits<T>::to_double(before)),
                      f.input_bit);
                })
              : numeric::flip_is_zero_to_one(before, f.input_bit);
      rec->applied = true;
    }
    layers_[f.layer]->forward(in, a, nullptr, nullptr);
  } else {
    // Patch the golden output of the target layer with the fault's effect.
    a = golden.acts[f.layer];
    layers_[f.layer]->apply_faults(golden.layer_input(f.layer), a, f.faults, rec);
  }
  if (observer != nullptr) (*observer)(f.layer, a);
  for (std::size_t i = f.layer + 1; i < layers_.size(); ++i) {
    layers_[i]->forward(a, b);
    std::swap(a, b);
    if (observer != nullptr) (*observer)(i, a);
  }
  return a;
}

template <typename T>
Prediction Network<T>::interpret(const Tensor<T>& output) const {
  DNNFI_EXPECTS(output.size() == spec_.num_classes);
  Prediction p;
  p.has_confidence = has_softmax();
  p.scores.resize(output.size());
  for (std::size_t i = 0; i < output.size(); ++i)
    p.scores[i] = numeric::numeric_traits<T>::to_double(output[i]);
  return p;
}

template <typename T>
Prediction Network<T>::classify(const Tensor<T>& input) const {
  return interpret(forward(input));
}

template <typename T>
std::size_t Network<T>::total_macs() const {
  Shape shape = spec_.input;
  std::size_t total = 0;
  for (const auto& layer : layers_) {
    total += layer->macs(shape);
    shape = layer->out_shape(shape);
  }
  return total;
}

template <typename T>
std::size_t Network<T>::total_weights() const {
  std::size_t total = 0;
  for (const auto& layer : layers_) total += layer->weights().size();
  return total;
}

template class Network<double>;
template class Network<float>;
template class Network<numeric::Half>;
template class Network<numeric::Fx32r26>;
template class Network<numeric::Fx32r10>;
template class Network<numeric::Fx16r10>;

template std::unique_ptr<Layer<double>> make_layer<double>(const LayerSpec&, const Shape&);
template std::unique_ptr<Layer<float>> make_layer<float>(const LayerSpec&, const Shape&);
template std::unique_ptr<Layer<numeric::Half>> make_layer<numeric::Half>(const LayerSpec&, const Shape&);
template std::unique_ptr<Layer<numeric::Fx32r26>> make_layer<numeric::Fx32r26>(const LayerSpec&, const Shape&);
template std::unique_ptr<Layer<numeric::Fx32r10>> make_layer<numeric::Fx32r10>(const LayerSpec&, const Shape&);
template std::unique_ptr<Layer<numeric::Fx16r10>> make_layer<numeric::Fx16r10>(const LayerSpec&, const Shape&);

}  // namespace dnnfi::dnn
