#include "dnnfi/dnn/network.h"

#include <algorithm>
#include <numeric>

#include "dnnfi/dnn/executor.h"

namespace dnnfi::dnn {

std::size_t Prediction::top1() const {
  DNNFI_EXPECTS(!scores.empty());
  return static_cast<std::size_t>(
      std::distance(scores.begin(), std::max_element(scores.begin(), scores.end())));
}

std::vector<std::size_t> Prediction::topk(std::size_t k) const {
  DNNFI_EXPECTS(!scores.empty());
  k = std::min(k, scores.size());
  std::vector<std::size_t> idx(scores.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::partial_sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k),
                    idx.end(), [this](std::size_t a, std::size_t b) {
                      if (scores[a] != scores[b]) return scores[a] > scores[b];
                      return a < b;  // deterministic tie-break
                    });
  idx.resize(k);
  return idx;
}

double Prediction::top1_score() const { return scores[top1()]; }

/// Output shape of `l` applied to `in` — mirrors the layer classes'
/// out_shape without instantiating them. Shared by the accelerator model
/// (dataflow footprints) and any spec-level shape walking.
Shape shape_after(const LayerSpec& l, const Shape& in) {
  switch (l.kind) {
    case LayerKind::kConv: {
      DNNFI_EXPECTS(in.h + 2 * l.pad >= l.kernel && in.w + 2 * l.pad >= l.kernel);
      return tensor::chw(l.out_channels,
                         (in.h + 2 * l.pad - l.kernel) / l.stride + 1,
                         (in.w + 2 * l.pad - l.kernel) / l.stride + 1);
    }
    case LayerKind::kFullyConnected:
      return tensor::vec(l.out_features);
    case LayerKind::kMaxPool:
      return tensor::chw(in.c, (in.h - l.pool_kernel) / l.pool_stride + 1,
                         (in.w - l.pool_kernel) / l.pool_stride + 1);
    case LayerKind::kGlobalAvgPool:
      return tensor::vec(in.c);
    case LayerKind::kSoftmax:
      return tensor::vec(in.size());
    case LayerKind::kRelu:
    case LayerKind::kLrn:
      return in;
  }
  DNNFI_EXPECTS(false);
  return in;
}

template <typename T>
std::unique_ptr<Layer<T>> make_layer(const LayerSpec& spec, const Shape& in_shape) {
  switch (spec.kind) {
    case LayerKind::kConv:
      return std::make_unique<Conv2d<T>>(spec.name, spec.block, in_shape.c,
                                         spec.out_channels, spec.kernel,
                                         spec.stride, spec.pad);
    case LayerKind::kFullyConnected:
      return std::make_unique<FullyConnected<T>>(spec.name, spec.block,
                                                 in_shape.size(),
                                                 spec.out_features);
    case LayerKind::kRelu:
      return std::make_unique<Relu<T>>(spec.name, spec.block);
    case LayerKind::kMaxPool:
      return std::make_unique<MaxPool2d<T>>(spec.name, spec.block,
                                            spec.pool_kernel, spec.pool_stride);
    case LayerKind::kLrn:
      return std::make_unique<Lrn<T>>(spec.name, spec.block, spec.lrn_size,
                                      spec.lrn_alpha, spec.lrn_beta, spec.lrn_k);
    case LayerKind::kSoftmax:
      return std::make_unique<Softmax<T>>(spec.name, spec.block);
    case LayerKind::kGlobalAvgPool:
      return std::make_unique<GlobalAvgPool<T>>(spec.name, spec.block);
  }
  DNNFI_EXPECTS(false);
  return nullptr;
}

template <typename T>
Network<T>::Network(const NetworkSpec& spec) : spec_(spec) {
  DNNFI_EXPECTS(!spec.layers.empty());
  Shape shape = spec.input;
  layers_.reserve(spec.layers.size());
  for (const auto& ls : spec.layers) {
    auto layer = make_layer<T>(ls, shape);
    shape = layer->out_shape(shape);
    if (ls.kind == LayerKind::kConv || ls.kind == LayerKind::kFullyConnected)
      mac_layers_.push_back(layers_.size());
    layers_.push_back(std::move(layer));
  }
  DNNFI_ENSURES(shape.size() == spec.num_classes);
  plan_ = std::make_unique<ExecutionPlan<T>>(*this);
}

template <typename T>
Network<T>::~Network() = default;
template <typename T>
Network<T>::Network(Network&&) noexcept = default;
template <typename T>
Network<T>& Network<T>::operator=(Network&&) noexcept = default;

template <typename T>
Tensor<T> Network<T>::forward(const Tensor<T>& input) const {
  Workspace<T> ws(*plan_);
  RunRequest<T> req;
  req.input = input;
  Tensor<T> out;
  out.assign(Executor<T>(*plan_).run(ws, req));
  return out;
}

template <typename T>
Trace<T> Network<T>::forward_trace(const Tensor<T>& input) const {
  Workspace<T> ws(*plan_);
  Trace<T> tr;
  RunRequest<T> req;
  req.input = input;
  req.trace = &tr;
  Executor<T>(*plan_).run(ws, req);
  return tr;
}

template <typename T>
Tensor<T> Network<T>::forward_with_fault(const Trace<T>& golden,
                                         const AppliedFault& f,
                                         InjectionRecord* rec,
                                         const LayerObserverFn* observer) const {
  Workspace<T> ws(*plan_);
  RunRequest<T> req;
  req.golden = &golden;
  req.fault = &f;
  req.record = rec;
  req.observer = observer;
  Tensor<T> out;
  out.assign(Executor<T>(*plan_).run(ws, req));
  return out;
}

template <typename T>
Prediction Network<T>::interpret(ConstTensorView<T> output) const {
  DNNFI_EXPECTS(output.size() == spec_.num_classes);
  Prediction p;
  p.has_confidence = has_softmax();
  p.scores.resize(output.size());
  for (std::size_t i = 0; i < output.size(); ++i)
    p.scores[i] = numeric::numeric_traits<T>::to_double(output[i]);
  return p;
}

template <typename T>
Prediction Network<T>::classify(const Tensor<T>& input) const {
  return interpret(forward(input));
}

template <typename T>
std::size_t Network<T>::total_macs() const {
  return plan_->total_macs();
}

template <typename T>
std::size_t Network<T>::total_weights() const {
  std::size_t total = 0;
  for (const auto& layer : layers_) total += layer->weights().size();
  return total;
}

template class Network<double>;
template class Network<float>;
template class Network<numeric::Half>;
template class Network<numeric::Fx32r26>;
template class Network<numeric::Fx32r10>;
template class Network<numeric::Fx16r10>;

template std::unique_ptr<Layer<double>> make_layer<double>(const LayerSpec&, const Shape&);
template std::unique_ptr<Layer<float>> make_layer<float>(const LayerSpec&, const Shape&);
template std::unique_ptr<Layer<numeric::Half>> make_layer<numeric::Half>(const LayerSpec&, const Shape&);
template std::unique_ptr<Layer<numeric::Fx32r26>> make_layer<numeric::Fx32r26>(const LayerSpec&, const Shape&);
template std::unique_ptr<Layer<numeric::Fx32r10>> make_layer<numeric::Fx32r10>(const LayerSpec&, const Shape&);
template std::unique_ptr<Layer<numeric::Fx16r10>> make_layer<numeric::Fx16r10>(const LayerSpec&, const Shape&);

}  // namespace dnnfi::dnn
