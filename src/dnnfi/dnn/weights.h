// Weight containers and movement: initialization, extraction from a trained
// float network, and quantized loading into a network of any datapath type.
// Weights are always persisted as float32 (the "pre-trained model"); each
// deployment quantizes them into its datapath type exactly once, as an
// accelerator's weight-load stage would.
#pragma once

#include <cstdint>
#include <vector>

#include "dnnfi/dnn/network.h"

namespace dnnfi::dnn {

/// Parameters of one conv/FC layer in float.
struct LayerWeights {
  std::vector<float> weights;
  std::vector<float> biases;
};

/// All parameters of a network, indexed by MAC-layer ordinal (the i-th
/// conv/FC layer in topology order).
struct WeightsBlob {
  std::vector<LayerWeights> layers;
};

/// He-normal initialization of every conv/FC layer, deterministic in `seed`.
void init_weights(Network<float>& net, std::uint64_t seed);

/// Copies all parameters out of a float network.
WeightsBlob extract_weights(const Network<float>& net);

/// Loads (and quantizes) a blob into a network of datapath type T. Layer
/// counts and parameter sizes must match the blob exactly.
template <typename T>
void load_weights(Network<T>& net, const WeightsBlob& blob) {
  const auto& macs = net.mac_layers();
  DNNFI_EXPECTS(blob.layers.size() == macs.size());
  for (std::size_t i = 0; i < macs.size(); ++i) {
    auto& layer = net.layer(macs[i]);
    auto w = layer.weights();
    auto b = layer.biases();
    DNNFI_EXPECTS(blob.layers[i].weights.size() == w.size());
    DNNFI_EXPECTS(blob.layers[i].biases.size() == b.size());
    for (std::size_t j = 0; j < w.size(); ++j)
      w[j] = numeric::numeric_traits<T>::from_double(
          static_cast<double>(blob.layers[i].weights[j]));
    for (std::size_t j = 0; j < b.size(); ++j)
      b[j] = numeric::numeric_traits<T>::from_double(
          static_cast<double>(blob.layers[i].biases[j]));
  }
}

/// Builds a Network<T> from a spec and a trained blob in one step.
template <typename T>
Network<T> instantiate(const NetworkSpec& spec, const WeightsBlob& blob) {
  Network<T> net(spec);
  load_weights(net, blob);
  return net;
}

}  // namespace dnnfi::dnn
