// The paper's motivating scenario (Fig 2): a vision DNN classifying a
// stream of camera frames in a safety-critical loop. We run a frame stream
// through the accelerator model, strike a random subset of frames with
// single-event upsets, and report every silent misclassification — the
// "truck classified as bird" events — plus what the symptom-based detector
// would have caught before the planner consumed the result.
//
// Build & run:  ./build/examples/self_driving_scenario [frames]

#include <cstdlib>
#include <filesystem>
#include <iostream>

#include "dnnfi/common/rng.h"
#include "dnnfi/data/image_io.h"
#include "dnnfi/data/pretrain.h"
#include "dnnfi/dnn/executor.h"
#include "dnnfi/dnn/weights.h"
#include "dnnfi/fault/campaign.h"
#include "dnnfi/mitigate/sed.h"

int main(int argc, char** argv) {
  using namespace dnnfi;

  const std::size_t frames =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 200;
  const auto id = dnn::zoo::NetworkId::kConvNet;
  const dnn::Model model = data::pretrained(id);
  const auto ds = data::dataset_for(id);

  // Eyeriss stores 16-bit words; deploy in 16b_rb10 like the case study.
  using T = numeric::Fx16r10;
  const auto net = dnn::instantiate<T>(model.spec, model.blob);

  // SED learned offline from fault-free drives (training split).
  const auto detector = mitigate::learn_sed(
      model.spec, model.blob, numeric::DType::kFx16r10,
      [&ds](std::uint64_t i) {
        auto s = ds->sample(i);
        return dnn::Example{std::move(s.image), s.label};
      },
      0, 40);

  fault::Sampler sampler(model.spec, numeric::DType::kFx16r10);
  const auto ends = fault::block_end_layers(model.spec);

  // One compiled plan and one reusable workspace drive the whole frame
  // stream — no per-frame buffer allocation.
  const dnn::Executor<T> exec(net.plan());
  dnn::Workspace<T> ws(net.plan());

  Rng strike_rng(42);
  std::size_t upsets = 0, sdcs = 0, detected_sdcs = 0, misclassified_clean = 0;
  std::filesystem::create_directories("results/frames");

  std::cout << "driving " << frames << " frames; soft-error strike "
            << "probability per frame: 5%\n\n";

  dnn::Trace<T> golden_trace;
  for (std::size_t f = 0; f < frames; ++f) {
    const auto sample = ds->sample(data::kTestSplitBegin + 100 + f);
    const auto input = tensor::convert<T>(sample.image);
    dnn::RunRequest<T> golden_req;
    golden_req.input = input;
    golden_req.trace = &golden_trace;
    exec.run(ws, golden_req);
    const auto golden = net.interpret(golden_trace.output());
    if (golden.top1() != sample.label) ++misclassified_clean;

    // Strike ~5% of frames, mixed over datapath and buffers.
    if (!strike_rng.bernoulli(0.05)) continue;
    ++upsets;
    const auto site =
        fault::kAllSiteClasses[strike_rng.below(fault::kAllSiteClasses.size())];
    const auto fault = sampler.sample(site, strike_rng);

    bool flagged = false;
    const dnn::LayerObserver<T> observer =
        [&](std::size_t layer, tensor::ConstTensorView<T> act) {
          const auto it = std::find(ends.begin(), ends.end(), layer);
          if (it == ends.end() || flagged) return;
          const int block = static_cast<int>(it - ends.begin()) + 1;
          flagged = detector.flags(block, act);
        };
    const auto faulty_out =
        fault::inject(exec, ws, net.mac_layers(), golden_trace, fault,
                      nullptr, &observer);
    const auto faulty = net.interpret(faulty_out);
    const auto outcome = fault::classify(golden, faulty);

    if (outcome.sdc1) {
      ++sdcs;
      detected_sdcs += flagged ? 1U : 0U;
      const std::string img_path =
          "results/frames/frame" + std::to_string(f) + "_sdc.ppm";
      data::write_ppm(img_path, sample.image);
      std::cout << "frame " << f << ": object '" << ds->class_name(golden.top1())
                << "' silently became '" << ds->class_name(faulty.top1())
                << "' (" << fault.describe() << ")\n"
                << "         SED: " << (flagged ? "DETECTED — frame dropped, brake path safe"
                                                : "MISSED — planner consumed bad label!")
                << "  [image: " << img_path << "]\n";
    }
  }

  std::cout << "\n=== drive summary ===\n"
            << "frames:                  " << frames << "\n"
            << "clean misclassifications:" << misclassified_clean << "\n"
            << "soft-error strikes:      " << upsets << "\n"
            << "silent data corruptions: " << sdcs << "\n"
            << "caught by SED:           " << detected_sdcs << "\n";
  if (sdcs > 0 && detected_sdcs == sdcs)
    std::cout << "every SDC was intercepted before the planner.\n";
  return 0;
}
