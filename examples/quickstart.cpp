// Quickstart: the core dnnfi workflow in ~60 lines.
//
//   1. load a pretrained network (trains + caches on first run),
//   2. run a clean inference,
//   3. inject one single-bit fault into the accelerator datapath,
//   4. compare outcomes and classify the result.
//
// Build & run:  ./build/examples/quickstart

#include <iostream>

#include "dnnfi/common/rng.h"
#include "dnnfi/data/pretrain.h"
#include "dnnfi/dnn/weights.h"
#include "dnnfi/fault/campaign.h"

int main() {
  using namespace dnnfi;

  // 1. Pretrained ConvNet (CIFAR-10-class topology on the shapes dataset),
  //    deployed in the FLOAT16 datapath type.
  const dnn::Model model = data::pretrained(dnn::zoo::NetworkId::kConvNet);
  const auto net = dnn::instantiate<numeric::Half>(model.spec, model.blob);
  std::cout << "network: " << net.name() << " (" << net.total_macs()
            << " MACs, " << net.total_weights() << " weights)\n";

  // 2. Clean inference on a held-out image.
  const auto ds = data::dataset_for(dnn::zoo::NetworkId::kConvNet);
  const auto sample = ds->sample(data::kTestSplitBegin + 3);
  const auto input = tensor::convert<numeric::Half>(sample.image);
  const auto golden_trace = net.forward_trace(input);
  const auto golden = net.interpret(golden_trace.output());
  std::cout << "clean prediction:  " << ds->class_name(golden.top1())
            << " (confidence " << golden.top1_score() << ", truth "
            << ds->class_name(sample.label) << ")\n";

  // 3. One single-event upset in a PE's accumulator latch, at a random
  //    point of the execution.
  fault::Sampler sampler(model.spec, numeric::DType::kFloat16);
  Rng rng(/*seed=*/2017);
  const auto fault = sampler.sample(fault::SiteClass::kDatapathLatch, rng);
  std::cout << "injecting: " << fault.describe() << "\n";

  dnn::InjectionRecord record;
  const auto faulty_out = fault::inject(net, golden_trace, fault, &record);
  const auto faulty = net.interpret(faulty_out);
  std::cout << "corrupted latch value: " << record.corrupted_before << " -> "
            << record.corrupted_after << "\n";

  // 4. Outcome classification per the paper's SDC criteria.
  const auto outcome = fault::classify(golden, faulty);
  std::cout << "faulty prediction: " << ds->class_name(faulty.top1())
            << " (confidence " << faulty.top1_score() << ")\n"
            << "outcome: " << (outcome.sdc1 ? "SDC-1 (top-1 flipped!)" : "masked/benign")
            << (outcome.sdc5 ? ", SDC-5" : "")
            << (outcome.sdc10 ? ", SDC-10%" : "")
            << (outcome.sdc20 ? ", SDC-20%" : "") << "\n";
  return 0;
}
