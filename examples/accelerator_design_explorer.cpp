// Design-space exploration with the FIT model (§6.1's design guidance):
// for a chosen network, sweep (a) the datapath data type and (b) the
// technology node, and report where the reliability budget goes. The
// output demonstrates the paper's two design rules:
//   * pick a data type with just-enough dynamic range (32b_rb26 over
//     32b_rb10 buys orders of magnitude of datapath FIT), and
//   * reuse buffers dominate the FIT budget and must be protected.
//
// Build & run:  ./build/examples/accelerator_design_explorer [network]
//   network: convnet | alexnet | caffenet | nin   (default alexnet)

#include <cstring>
#include <iostream>

#include "dnnfi/common/env.h"
#include "dnnfi/common/table.h"
#include "dnnfi/data/pretrain.h"
#include "dnnfi/fault/campaign.h"
#include "dnnfi/fit/fit.h"

int main(int argc, char** argv) {
  using namespace dnnfi;
  using dnn::zoo::NetworkId;

  NetworkId id = NetworkId::kAlexNetS;
  if (argc > 1) {
    const std::string which = argv[1];
    if (which == "convnet") id = NetworkId::kConvNet;
    else if (which == "caffenet") id = NetworkId::kCaffeNetS;
    else if (which == "nin") id = NetworkId::kNiNS;
  }

  const dnn::Model model = data::pretrained(id);
  const auto ds = data::dataset_for(id);
  std::vector<dnn::Example> inputs;
  for (std::size_t i = 0; i < 6; ++i) {
    auto s = ds->sample(data::kTestSplitBegin + i);
    inputs.push_back(dnn::Example{std::move(s.image), s.label});
  }
  const std::size_t n = default_samples(200);
  const auto fp = accel::analyze(model.spec);

  std::cout << "exploring accelerator designs for "
            << dnn::zoo::network_name(id) << " (n=" << n << "/cell)\n\n";

  // Sweep 1: datapath data type at the 16 nm node.
  const auto cfg16 = accel::eyeriss_16nm();
  Table types("datapath data-type sweep (16nm, " +
              std::string(dnn::zoo::network_name(id)) + ")");
  types.header({"dtype", "SDC-1", "datapath FIT", "note"});
  for (const auto dt : numeric::kAllDTypes) {
    fault::Campaign c(model.spec, model.blob, dt, inputs);
    fault::CampaignOptions opt;
    opt.trials = n;
    const double sdc = c.run(opt).sdc1().p;
    const double f = fit::datapath_fit(dt, cfg16.num_pes, sdc);
    std::string note;
    if (dt == numeric::DType::kFx32r10)
      note = "wide redundant range — avoid";
    else if (dt == numeric::DType::kFx32r26 || dt == numeric::DType::kFx16r10)
      note = "just-enough range — recommended";
    types.row({std::string(numeric::dtype_name(dt)), Table::pct(sdc),
               Table::num(f, 4), note});
  }
  types.print(std::cout);

  // Sweep 2: technology node at the 16-bit fixed point deployment.
  fault::Campaign c16(model.spec, model.blob, numeric::DType::kFx16r10, inputs);
  fault::CampaignOptions opt;
  opt.trials = n;
  const double dp_sdc = c16.run(opt).sdc1().p;
  std::vector<double> buf_sdc;
  for (const auto site : fault::kBufferSiteClasses) {
    fault::CampaignOptions bopt;
    bopt.trials = n;
    bopt.site = site;
    buf_sdc.push_back(c16.run(bopt).sdc1().p);
  }

  Table nodes("technology-node sweep (16b_rb10): FIT by component");
  nodes.header({"node", "PEs", "datapath", "Global Buffer", "Filter SRAM",
                "Img REG", "PSum REG", "total"});
  const int node_nm[] = {65, 40, 28, 20, 16};
  for (int g = 0; g <= 4; ++g) {
    auto cfg = accel::project(accel::eyeriss_65nm(), g);
    cfg.feature_nm = node_nm[g];
    std::vector<std::string> row = {std::to_string(cfg.feature_nm) + "nm",
                                    std::to_string(cfg.num_pes)};
    double total = fit::datapath_fit(numeric::DType::kFx16r10, cfg.num_pes, dp_sdc);
    row.push_back(Table::num(total, 4));
    for (std::size_t b = 0; b < fault::kBufferSiteClasses.size(); ++b) {
      const double f = fit::buffer_fit(
          fp, fault::buffer_of(fault::kBufferSiteClasses[b]), cfg, buf_sdc[b]);
      row.push_back(Table::num(f, 4));
      total += f;
    }
    row.push_back(Table::num(total, 3));
    nodes.row(row);
  }
  nodes.print(std::cout);

  std::cout << "design guidance (paper §6.1): restrict the data type's value\n"
               "range, protect reuse buffers (they dominate FIT as nodes\n"
               "shrink), and place detectors after normalization layers.\n";
  return 0;
}
