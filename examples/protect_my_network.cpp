// End-to-end protection recipe (§6): given a network and a deployment data
// type, (1) learn a symptom-based detector and measure its coverage, (2)
// size a selective latch-hardening plan for the datapath, and (3) report
// the protected FIT budget against ISO 26262.
//
// Build & run:  ./build/examples/protect_my_network

#include <iostream>

#include "dnnfi/common/env.h"
#include "dnnfi/common/table.h"
#include "dnnfi/data/pretrain.h"
#include "dnnfi/fault/campaign.h"
#include "dnnfi/fit/fit.h"
#include "dnnfi/mitigate/sed.h"
#include "dnnfi/mitigate/slh.h"

int main() {
  using namespace dnnfi;
  const auto id = dnn::zoo::NetworkId::kAlexNetS;
  const auto dt = numeric::DType::kFloat16;
  const std::size_t n = default_samples(300);

  const dnn::Model model = data::pretrained(id);
  const auto ds = data::dataset_for(id);
  const dnn::ExampleSource source = [&ds](std::uint64_t i) {
    auto s = ds->sample(i);
    return dnn::Example{std::move(s.image), s.label};
  };
  std::vector<dnn::Example> inputs;
  for (std::size_t i = 0; i < 6; ++i)
    inputs.push_back(source(data::kTestSplitBegin + i));

  std::cout << "protecting " << dnn::zoo::network_name(id) << " deployed in "
            << numeric::dtype_name(dt) << " (n=" << n << ")\n\n";

  // Step 1 — SED: learn bounds on fault-free drives, then measure coverage.
  const auto detector = mitigate::learn_sed(model.spec, model.blob, dt, source, 0, 40);
  Table bounds("learned symptom bounds (10% cushion)");
  bounds.header({"layer", "lo", "hi"});
  for (std::size_t b = 0; b < detector.bounds().size(); ++b)
    bounds.row({std::to_string(b + 1), Table::num(detector.bounds()[b].lo, 3),
                Table::num(detector.bounds()[b].hi, 3)});
  bounds.print(std::cout);

  fault::Campaign campaign(model.spec, model.blob, dt, inputs);
  fault::CampaignOptions opt;
  opt.trials = n;
  opt.detector = detector.as_predicate();
  const auto r = campaign.run(opt);
  const auto ev = mitigate::evaluate_sed(r);
  std::cout << "SED on datapath faults: precision " << Table::pct(ev.precision.p)
            << ", recall " << Table::pct(ev.recall.p) << "\n\n";

  // Step 2 — SLH: per-bit sensitivity, then a 100x hardening plan.
  const int width = numeric::dtype_width(dt);
  mitigate::BitProfile profile(static_cast<std::size_t>(width), 0.0);
  for (int bit = 0; bit < width; ++bit) {
    fault::CampaignOptions bopt;
    bopt.trials = std::max<std::size_t>(60, n / 3);
    bopt.constraint.fixed_bit = bit;
    profile[static_cast<std::size_t>(bit)] = campaign.run(bopt).sdc1().p;
  }
  const auto plan = mitigate::harden_multi(profile, 100.0);
  std::cout << "SLH plan for 100x datapath FIT reduction: "
            << Table::pct(plan.area_overhead, 1) << " latch area overhead ("
            << (plan.feasible ? "feasible" : "INFEASIBLE") << ", achieved "
            << Table::num(plan.achieved_reduction, 1) << "x)\n";
  Table assign("per-bit hardening assignment (non-baseline bits)");
  assign.header({"bit", "design", "measured SDC"});
  for (int bit = width - 1; bit >= 0; --bit) {
    const auto d = plan.design_per_bit[static_cast<std::size_t>(bit)];
    if (d == 0) continue;
    assign.row({std::to_string(bit), mitigate::latch_designs()[d].name,
                Table::pct(profile[static_cast<std::size_t>(bit)])});
  }
  assign.print(std::cout);

  // Step 3 — the budget line.
  const auto cfg = accel::eyeriss_16nm();
  const double sdc = r.sdc1().p;
  const double caught = r.rate([](const fault::TrialRecord& t) {
                           return t.outcome.sdc1 && t.detected;
                         }).p;
  const double raw = fit::datapath_fit(dt, cfg.num_pes, sdc);
  const double with_sed = fit::datapath_fit(dt, cfg.num_pes,
                                            std::max(0.0, sdc - caught));
  const double with_both = with_sed / plan.achieved_reduction;
  Table budget("datapath FIT budget");
  budget.header({"configuration", "FIT", "vs 1.0-FIT accelerator allowance"});
  budget.row({"unprotected", Table::num(raw, 5), fit::iso_verdict(raw, 1.0)});
  budget.row({"SED", Table::num(with_sed, 5), fit::iso_verdict(with_sed, 1.0)});
  budget.row({"SED + SLH", Table::num(with_both, 6), fit::iso_verdict(with_both, 1.0)});
  budget.print(std::cout);
  return 0;
}
