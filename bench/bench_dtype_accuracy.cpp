// §6.1 context: "choose a data type providing just-enough dynamic value
// range and precision". This bench shows the other half of that trade —
// fault-free classification accuracy per deployment data type — so the
// reliability gains of Table 6 can be weighed against accuracy cost.
#include "bench_util.h"

using namespace dnnfi;
using namespace dnnfi::benchutil;

int main() {
  const std::size_t n_eval = std::max<std::size_t>(100, samples() / 2);
  banner("Data-type deployment accuracy (fault-free)", n_eval);

  Table t("top-1 accuracy on " + std::to_string(n_eval) +
          " held-out inputs, per deployment dtype");
  std::vector<std::string> header = {"network"};
  for (const auto dt : numeric::kAllDTypes)
    header.push_back(std::string(numeric::dtype_name(dt)));
  t.header(header);

  for (const auto id : dnn::zoo::kAllNetworks) {
    const NetContext ctx = load_net(id);
    const auto ds = data::dataset_for(id);
    std::vector<std::string> row = {ctx.name};
    for (const auto dt : numeric::kAllDTypes) {
      const std::size_t correct = numeric::dispatch_dtype(dt, [&]<typename T>() {
        const auto net = dnn::instantiate<T>(ctx.model.spec, ctx.model.blob);
        std::size_t ok = 0;
        for (std::size_t i = 0; i < n_eval; ++i) {
          const auto s = ds->sample(data::kTestSplitBegin + i);
          const auto pred = net.classify(tensor::convert<T>(s.image));
          ok += (pred.top1() == s.label) ? 1U : 0U;
        }
        return ok;
      });
      row.push_back(Table::pct(
          static_cast<double>(correct) / static_cast<double>(n_eval), 1));
    }
    t.row(row);
  }
  emit(t, "dtype_accuracy");

  std::cout << "reading: all six types preserve accuracy on these networks —\n"
               "so the narrow-range types (32b_rb26, 16b_rb10) give their\n"
               "orders-of-magnitude FIT advantage (Table 6) for free, which\n"
               "is precisely the paper's data-type design guidance.\n";
  return 0;
}
