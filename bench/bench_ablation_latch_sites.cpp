// Ablation (DESIGN.md design-choice study): which of the four datapath
// latch classes (Fig 1b) drives the SDC rate, per data type. The canonical
// model treats them uniformly; this ablation shows whether operand,
// product, or accumulator latches dominate — input for a finer-grained
// SLH policy than uniform per-bit hardening.
#include "bench_util.h"

using namespace dnnfi;
using namespace dnnfi::benchutil;

int main() {
  const std::size_t n = samples();
  banner("Ablation — SDC by datapath latch class (AlexNet-S)", n);

  const NetContext ctx = load_net(NetworkId::kAlexNetS);

  Table t("Ablation: SDC-1 per latch class (n=" + std::to_string(n) + "/cell)");
  t.header({"dtype", "operand-act", "operand-weight", "product", "accumulator"});
  for (const auto dt :
       {numeric::DType::kFloat, numeric::DType::kFloat16,
        numeric::DType::kFx32r10, numeric::DType::kFx16r10}) {
    fault::Campaign campaign(ctx.model.spec, ctx.model.blob, dt, ctx.inputs);
    std::vector<std::string> row = {std::string(numeric::dtype_name(dt))};
    for (const auto latch : accel::kAllDatapathLatches) {
      fault::CampaignOptions opt;
      opt.trials = n;
      opt.seed = 31015;
      opt.constraint.fixed_latch = latch;
      const auto e = run_streaming(campaign, opt).sdc1();
      row.push_back(Table::pct_ci(e.p, e.ci95));
    }
    t.row(row);
  }
  emit(t, "ablation_latch_sites");

  std::cout << "reading: operand latches feed a multiply (error scaled by the\n"
               "other operand, often |w| < 1), while product/accumulator\n"
               "flips enter the sum directly — so the downstream latches\n"
               "typically dominate and deserve hardening priority.\n";
  return 0;
}
