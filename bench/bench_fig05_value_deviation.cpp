// Figure 5 + the §5.1.3 value analysis: how corrupted ACT values relate to
// SDCs, for AlexNet under FLOAT16. The paper's findings to reproduce:
//   * errors causing large value deviations overwhelmingly become SDCs;
//   * erroneous values *outside* the network's fault-free per-layer range
//     are far more SDC-prone than in-range ones.
#include <algorithm>
#include <cmath>

#include "bench_util.h"

using namespace dnnfi;
using namespace dnnfi::benchutil;

int main() {
  const std::size_t n = samples() * 2;
  banner("Figure 5 — corrupted values vs outcome (AlexNet-S, FLOAT16)", n);

  const NetContext ctx = load_net(NetworkId::kAlexNetS);
  fault::Campaign campaign(ctx.model.spec, ctx.model.blob,
                           numeric::DType::kFloat16, ctx.inputs);
  fault::CampaignOptions opt;
  opt.trials = n;
  opt.seed = 31005;
  const auto r = campaign.run(opt);

  // Deviation-magnitude buckets of |act_after - act_before|.
  const double edges[] = {0.0, 1.0, 10.0, 100.0, 1000.0, 1e30};
  Table t("Fig 5: P(SDC-1 | ACT deviation magnitude) — AlexNet-S FLOAT16");
  t.header({"|deviation| bucket", "trials", "SDC-1 rate", "benign rate"});
  for (int b = 0; b < 5; ++b) {
    const double lo = edges[b], hi = edges[b + 1];
    const auto in_bucket = [lo, hi](const fault::TrialRecord& tr) {
      double d = std::abs(tr.record.act_after - tr.record.act_before);
      if (std::isnan(d)) d = 1e29;  // NaN outcomes count as huge deviations
      d = std::min(d, 1e29);
      return d >= lo && d < hi;
    };
    const auto est = r.rate_if(in_bucket, [](const fault::TrialRecord& tr) {
      return tr.outcome.sdc1;
    });
    std::string label = (b == 4) ? ">=1000" : ("[" + Table::num(lo, 0) + ", " +
                                               Table::num(hi, 0) + ")");
    t.row({label, std::to_string(est.n), Table::pct(est.p),
           Table::pct(1.0 - est.p)});
  }
  emit(t, "fig05_deviation_buckets");

  // Out-of-range analysis: compare corrupted ACTs against the fault-free
  // per-layer value ranges of the injected layer.
  const auto& ranges = campaign.golden_block_ranges();
  const auto out_of_range = [&ranges](const fault::TrialRecord& tr) {
    const auto& rg = ranges.at(static_cast<std::size_t>(tr.fault.block - 1));
    const double v = tr.record.act_after;
    return std::isnan(v) || v < rg.lo || v > rg.hi;
  };
  const auto sdc_pred = [](const fault::TrialRecord& tr) {
    return tr.outcome.sdc1;
  };
  const auto oor = r.rate_if(out_of_range, sdc_pred);
  const auto inr = r.rate_if(
      [&](const fault::TrialRecord& tr) { return !out_of_range(tr); }, sdc_pred);
  // Conditional the other way: of SDC-causing (resp. benign) errors, how
  // many produced out-of-range values (paper: 80% vs 9.67% for AlexNet).
  const auto sdc_oor = r.rate_if(sdc_pred, out_of_range);
  const auto benign_oor = r.rate_if(
      [](const fault::TrialRecord& tr) { return !tr.outcome.sdc1; },
      out_of_range);

  Table t2("Fig 5 / §5.1.3: out-of-range corrupted ACTs vs outcome");
  t2.header({"metric", "value"});
  t2.row({"P(SDC | corrupted ACT out of fault-free range)", Table::pct(oor.p)});
  t2.row({"P(SDC | corrupted ACT within range)", Table::pct(inr.p)});
  t2.row({"P(out-of-range | SDC)   [paper: ~80%]", Table::pct(sdc_oor.p)});
  t2.row({"P(out-of-range | benign) [paper: ~9.67%]", Table::pct(benign_oor.p)});
  emit(t2, "fig05_out_of_range");
  return 0;
}
