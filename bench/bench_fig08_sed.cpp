// Figure 8: precision and recall of the Symptom-based Error Detector.
// Following §6.2, SED is evaluated on AlexNet, CaffeNet, and NiN with the
// symptom-friendly types (DOUBLE, FLOAT, FLOAT16, 32b_rb10) across the
// datapath and the Eyeriss buffers; ConvNet and the range-restricted types
// are excluded (weak symptoms). Paper numbers: ~90.2% average precision,
// ~92.5% average recall.
#include "bench_util.h"
#include "dnnfi/mitigate/sed.h"

using namespace dnnfi;
using namespace dnnfi::benchutil;

int main() {
  const std::size_t n = std::max<std::size_t>(100, samples() / 2);
  const std::size_t learn_n = 40;
  banner("Figure 8 — SED precision / recall (detector learned on " +
             std::to_string(learn_n) + " training inputs)",
         n);

  const NetworkId nets[] = {NetworkId::kAlexNetS, NetworkId::kCaffeNetS,
                            NetworkId::kNiNS};
  const fault::SiteClass sites[] = {fault::SiteClass::kDatapathLatch,
                                    fault::SiteClass::kGlobalBuffer,
                                    fault::SiteClass::kFilterSram};

  Table t("Fig 8: SED precision/recall, averaged over data types and components (n=" +
          std::to_string(n) + "/cell)");
  t.header({"network", "precision", "recall", "SDCs", "detections"});

  double precision_grand = 0, recall_grand = 0;
  std::size_t cells = 0;
  for (const auto id : nets) {
    const NetContext ctx = load_net(id);
    double p_sum = 0, r_sum = 0;
    std::size_t n_cells = 0, sdcs = 0, detections = 0;
    for (const auto dt : numeric::kSymptomaticDTypes) {
      const auto detector = mitigate::learn_sed(ctx.model.spec, ctx.model.blob,
                                                dt, train_source(id), 0, learn_n);
      fault::Campaign campaign(ctx.model.spec, ctx.model.blob, dt, ctx.inputs);
      for (const auto site : sites) {
        fault::CampaignOptions opt;
        opt.trials = n;
        opt.seed = 31011;
        opt.site = site;
        opt.detector = detector.as_predicate();
        const auto ev = mitigate::evaluate_sed(run_streaming(campaign, opt));
        p_sum += ev.precision.p;
        // Recall is undefined when a cell produced no SDCs; skip those.
        if (ev.sdc_count > 0) {
          r_sum += ev.recall.p;
          ++n_cells;
        }
        sdcs += ev.sdc_count;
        detections += ev.detections;
      }
    }
    const double precision =
        p_sum / (static_cast<double>(std::size(sites)) *
                 static_cast<double>(numeric::kSymptomaticDTypes.size()));
    const double recall = n_cells ? r_sum / static_cast<double>(n_cells) : 0.0;
    t.row({ctx.name, Table::pct(precision), Table::pct(recall),
           std::to_string(sdcs), std::to_string(detections)});
    precision_grand += precision;
    recall_grand += recall;
    ++cells;
  }
  t.row({"average", Table::pct(precision_grand / static_cast<double>(cells)),
         Table::pct(recall_grand / static_cast<double>(cells)), "-", "-"});
  emit(t, "fig08_sed");

  std::cout << "paper: 90.21% average precision, 92.5% average recall; FIT of\n"
               "Eyeriss reduced 96% (FLOAT) and 70% (FLOAT16) by SED.\n";
  return 0;
}
