// Table 5: bit-wise corruption of the final layer's ACTs as a function of
// the injected layer (AlexNet, FLOAT16). Three paper observations to
// reproduce: (1) faults injected earlier reach the output more often /
// more broadly, (2) only a small fraction of reaching faults flip the final
// ranking, (3) a large majority of faults are masked before the last layer.
#include "bench_util.h"

using namespace dnnfi;
using namespace dnnfi::benchutil;

int main() {
  const std::size_t n = std::max<std::size_t>(150, samples());
  banner("Table 5 — bit-wise corruption at the last layer by injected layer (AlexNet-S FLOAT16)", n);

  const NetContext ctx = load_net(NetworkId::kAlexNetS);
  fault::Campaign campaign(ctx.model.spec, ctx.model.blob,
                           numeric::DType::kFloat16, ctx.inputs);

  Table t("Table 5: propagation to the last layer, AlexNet-S FLOAT16 (n=" +
          std::to_string(n) + "/layer)");
  t.header({"injected layer", "reaches last layer", "avg corrupted ACTs",
            "SDC-1", "masked before last layer"});

  double reach_sum = 0, sdc_sum = 0, masked_sum = 0;
  const int conv_blocks = 5;  // the paper's Table 5 covers conv layers 1-5
  for (int b = 1; b <= conv_blocks; ++b) {
    fault::CampaignOptions opt;
    opt.trials = n;
    opt.seed = 31008;
    opt.constraint.fixed_block = b;
    const auto r = run_streaming(campaign, opt);

    const auto reached = r.reached_output();
    const auto sdc = r.sdc1();
    t.row({std::to_string(b), Table::pct_ci(reached.p, reached.ci95),
           reached.hits
               ? Table::pct(r.mean_output_corruption_reached())
               : "-",
           Table::pct(sdc.p), Table::pct(1.0 - reached.p)});
    reach_sum += reached.p;
    sdc_sum += sdc.p;
    masked_sum += 1.0 - reached.p;
  }
  t.row({"average", Table::pct(reach_sum / conv_blocks), "-",
         Table::pct(sdc_sum / conv_blocks),
         Table::pct(masked_sum / conv_blocks)});
  emit(t, "table5_bitwise_sdc");

  std::cout << "paper comparison: ~84% of faults masked before the last "
               "layer; only a small fraction of reaching faults flip the "
               "top-1 ranking.\n";
  return 0;
}
