// Figure 6: SDC probability by the position of the injected layer, FLOAT16.
// Shapes to reproduce: AlexNet/CaffeNet show depressed SDC rates in layers
// 1-2 (pre-LRN injection sites get normalized) and elevated rates in the
// fully-connected layers; NiN and ConvNet are comparatively flat across
// their conv layers.
#include "bench_util.h"

using namespace dnnfi;
using namespace dnnfi::benchutil;

int main() {
  const std::size_t n = std::max<std::size_t>(100, samples() / 2);
  banner("Figure 6 — SDC probability by injected layer (FLOAT16)", n);

  for (const auto id : dnn::zoo::kAllNetworks) {
    const NetContext ctx = load_net(id);
    fault::Campaign campaign(ctx.model.spec, ctx.model.blob,
                             numeric::DType::kFloat16, ctx.inputs);
    Table t("Fig 6: per-layer SDC-1, " + ctx.name + " FLOAT16 (n=" +
            std::to_string(n) + "/layer)");
    t.header({"layer", "kind", "SDC-1"});
    const int blocks = ctx.model.spec.num_blocks();
    for (int b = 1; b <= blocks; ++b) {
      fault::CampaignOptions opt;
      opt.trials = n;
      opt.seed = 31006;
      opt.constraint.fixed_block = b;
      const auto r = run_streaming(campaign, opt);
      // Report whether the block is conv or FC for readability.
      std::string kind = "conv";
      for (const auto& l : ctx.model.spec.layers)
        if (l.block == b && l.kind == dnn::LayerKind::kFullyConnected)
          kind = "fc";
      const auto e = r.sdc1();
      t.row({std::to_string(b), kind, Table::pct_ci(e.p, e.ci95)});
    }
    emit(t, "fig06_layers_" + ctx.name);
  }
  return 0;
}
