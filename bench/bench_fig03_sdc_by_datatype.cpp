// Figure 3: SDC probability of PE datapath-latch faults, for every network
// and data type, under all four SDC criteria.
//
// Paper shape to reproduce: SDC varies strongly with data type (32b_rb10 and
// the wide FP types are worst, 32b_rb26/16b_rb10 best); ConvNet is far more
// vulnerable than the deeper nets; for the 100-class nets the four SDC
// criteria nearly coincide, while ConvNet's SDC-5 is much lower than its
// SDC-1. NiN reports no SDC-10%/20% (no softmax scores).
#include "bench_util.h"

using namespace dnnfi;
using namespace dnnfi::benchutil;

int main() {
  const std::size_t n = samples();
  banner("Figure 3 — SDC probability by network and data type (datapath faults)", n);

  Table t("Fig 3: datapath SDC probability (n=" + std::to_string(n) + "/cell)");
  t.header({"network", "dtype", "SDC-1", "SDC-5", "SDC-10%", "SDC-20%"});

  for (const auto id : dnn::zoo::kAllNetworks) {
    const NetContext ctx = load_net(id);
    for (const auto dt : numeric::kAllDTypes) {
      fault::Campaign campaign(ctx.model.spec, ctx.model.blob, dt, ctx.inputs);
      fault::CampaignOptions opt;
      opt.trials = n;
      opt.seed = 31003;
      const auto r = run_streaming(campaign, opt);
      const bool conf = ctx.model.spec.has_softmax();
      t.row({ctx.name, std::string(numeric::dtype_name(dt)),
             Table::pct_ci(r.sdc1().p, r.sdc1().ci95),
             Table::pct_ci(r.sdc5().p, r.sdc5().ci95),
             conf ? Table::pct_ci(r.sdc10().p, r.sdc10().ci95) : "N/A",
             conf ? Table::pct_ci(r.sdc20().p, r.sdc20().ci95) : "N/A"});
    }
  }
  emit(t, "fig03_sdc_by_datatype");
  return 0;
}
