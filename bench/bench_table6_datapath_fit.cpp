// Table 6: datapath FIT rate per network and data type — Eq. 1 applied to
// the PE-array latch inventory (4 latches x word width x 1,344 PEs at 16 nm)
// with campaign-measured SDC-1 probabilities. Shapes to reproduce: ConvNet
// worst by far; 32b_rb10 worst among types for the deep nets; 32b_rb26 and
// 16b_rb10 orders of magnitude better than 32b_rb10.
#include "bench_util.h"
#include "dnnfi/fit/fit.h"

using namespace dnnfi;
using namespace dnnfi::benchutil;

int main() {
  const std::size_t n = samples();
  banner("Table 6 — datapath FIT rate by network and data type", n);

  const auto cfg = accel::eyeriss_16nm();
  Table t("Table 6: datapath FIT (Eyeriss-scale PE array, n=" +
          std::to_string(n) + "/cell)");
  std::vector<std::string> header = {"dtype"};
  for (const auto id : dnn::zoo::kAllNetworks)
    header.push_back(std::string(dnn::zoo::network_name(id)));
  t.header(header);

  // Load all nets once.
  std::vector<NetContext> nets;
  for (const auto id : dnn::zoo::kAllNetworks) nets.push_back(load_net(id));

  for (const auto dt : numeric::kAllDTypes) {
    std::vector<std::string> row = {std::string(numeric::dtype_name(dt))};
    for (const auto& ctx : nets) {
      fault::Campaign campaign(ctx.model.spec, ctx.model.blob, dt, ctx.inputs);
      fault::CampaignOptions opt;
      opt.trials = n;
      opt.seed = 31009;
      const double sdc = run_streaming(campaign, opt).sdc1().p;
      row.push_back(Table::num(fit::datapath_fit(dt, cfg.num_pes, sdc), 4));
    }
    t.row(row);
  }
  emit(t, "table6_datapath_fit");

  std::cout << "latch bits at 16nm: FLOAT16/16b_rb10 "
            << fit::datapath_bits(numeric::DType::kFloat16, cfg.num_pes)
            << ", FLOAT/32b "
            << fit::datapath_bits(numeric::DType::kFloat, cfg.num_pes)
            << ", DOUBLE "
            << fit::datapath_bits(numeric::DType::kDouble, cfg.num_pes)
            << "\n";
  return 0;
}
