// §5.2 + §6 headline: the overall FIT rate of an Eyeriss-class accelerator
// per network, unprotected vs protected, against the ISO 26262 budget.
//
// Unprotected = datapath + all four buffers (Eq. 1 with measured SDCs).
// Protected   = SED on buffers and datapath (residual SDC = undetected
// fraction), SLH (100x target) on datapath latches, and — as the
// alternative the paper discusses — SEC-DED ECC on the global buffer.
// Paper shape: unprotected FIT can exceed the 10-FIT SoC budget (which the
// accelerator should only consume a small fraction of); the combined
// protections bring it back within the standard.
#include "bench_util.h"
#include "dnnfi/fit/fit.h"
#include "dnnfi/mitigate/ecc.h"
#include "dnnfi/mitigate/sed.h"
#include "dnnfi/mitigate/slh.h"

using namespace dnnfi;
using namespace dnnfi::benchutil;

int main() {
  const std::size_t n = samples();
  const auto dt = numeric::DType::kFloat16;  // §6.2 reports FLOAT16 Eyeriss
  banner("Eyeriss overall FIT vs ISO 26262 (FLOAT16 deployment)", n);

  const auto cfg = accel::eyeriss_16nm();
  // The accelerator is a small fraction of the SoC; give it 10% of the
  // 10-FIT SoC budget as its allowance (the paper argues it should be a
  // "tiny fraction").
  const double accel_budget = fit::kIso26262SocBudgetFit * 0.1;

  Table t("Eyeriss FIT per network: unprotected vs protected (n=" +
          std::to_string(n) + "/cell, budget " + Table::num(accel_budget, 1) +
          " FIT)");
  t.header({"network", "unprotected FIT", "with SED", "SED+SLH+ECC",
            "verdict (unprot)", "verdict (protected)"});

  for (const auto id : dnn::zoo::kAllNetworks) {
    const NetContext ctx = load_net(id);
    fault::Campaign campaign(ctx.model.spec, ctx.model.blob, dt, ctx.inputs);
    const auto fp = accel::analyze(ctx.model.spec);
    const auto detector = mitigate::learn_sed(ctx.model.spec, ctx.model.blob,
                                              dt, train_source(id), 0, 40);

    double unprotected = 0, with_sed = 0, full = 0;
    for (const auto site : fault::kAllSiteClasses) {
      fault::CampaignOptions opt;
      opt.trials = n;
      opt.seed = 31013;
      opt.site = site;
      opt.detector = detector.as_predicate();
      const auto r = run_streaming(campaign, opt);
      const double sdc = r.sdc1().p;
      // Undetected SDC rate: SDC trials the detector missed.
      const auto caught = r.detected_and_sdc1();
      const double residual_sdc = std::max(0.0, sdc - caught.p);

      double raw_fit, sed_fit, full_fit;
      if (site == fault::SiteClass::kDatapathLatch) {
        raw_fit = fit::datapath_fit(dt, cfg.num_pes, sdc);
        sed_fit = fit::datapath_fit(dt, cfg.num_pes, residual_sdc);
        // SLH at a 100x target on top of SED's residual.
        full_fit = sed_fit / 100.0;
      } else {
        const auto buffer = fault::buffer_of(site);
        raw_fit = fit::buffer_fit(fp, buffer, cfg, sdc);
        sed_fit = fit::buffer_fit(fp, buffer, cfg, residual_sdc);
        if (buffer == accel::BufferKind::kGlobalBuffer) {
          // ECC on the large SRAM: single-bit upsets corrected.
          full_fit = mitigate::ecc_residual_fit(raw_fit, 64, 24.0);
        } else {
          full_fit = sed_fit;
        }
      }
      unprotected += raw_fit;
      with_sed += sed_fit;
      full += full_fit;
    }
    t.row({ctx.name, Table::num(unprotected, 3), Table::num(with_sed, 3),
           Table::num(full, 4), fit::iso_verdict(unprotected, accel_budget),
           fit::iso_verdict(full, accel_budget)});
  }
  emit(t, "eyeriss_overall_fit");
  return 0;
}
