// Headline bench for the pluggable-geometry fault model (DESIGN.md §11):
// the same campaign machinery swept across two accelerator geometries
// (the paper's Eyeriss hierarchy vs a TPU-style weight-stationary 16x16
// systolic array) and four fault operations (single-bit toggle, stuck-at-0,
// stuck-at-1, and a 2-bit toggle mask) on AlexNet-S FLOAT16, at the two
// site classes both geometries implement (datapath latches and PSum REGs).
//
// Before reporting rates, the systolic column-propagation law is validated
// at campaign scale: for a sweep of sampled PSum strikes, the struck
// layer's faulty output may differ from the golden trace ONLY at elements
// downstream of the struck column (e >= first_out with channel(e) % cols
// == col) — the same law tests/test_accel_systolic.cpp locks at unit
// scale. Any violation aborts the bench.
//
// Writes BENCH_accel_geometry.json into the results directory.
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "dnnfi/common/atomic_file.h"
#include "dnnfi/fault/injector.h"

using namespace dnnfi;
using namespace dnnfi::benchutil;

namespace {

struct Cell {
  std::string accel;
  std::string fault_op;
  std::string site;
  fault::Estimate sdc1;
};

/// Column-law validation: `trials` sampled PSum strikes on the systolic
/// geometry, each checked at the struck layer's output against the
/// footprint predicted by the ColumnFault lowering. Returns the number of
/// violating trials (elements corrupted outside the predicted footprint).
std::size_t validate_column_law(const NetContext& ctx,
                                const accel::AcceleratorModel& model,
                                const fault::FaultOpSpec& op,
                                std::size_t trials, std::uint64_t seed) {
  using Half = numeric::Half;
  using Tr = numeric::numeric_traits<Half>;
  dnn::Network<Half> net(ctx.model.spec);
  dnn::load_weights(net, ctx.model.blob);
  const tensor::Tensor<Half> img =
      tensor::convert<Half>(ctx.inputs.front().image);
  const auto golden = net.forward_trace(img);

  const fault::Sampler sampler(ctx.model.spec, numeric::DType::kFloat16,
                               model);
  fault::SampleConstraint sc;
  sc.op_kind = op.kind;
  sc.burst = op.burst;
  sc.op_pattern = op.pattern;

  std::size_t violations = 0;
  Rng rng(seed);
  for (std::size_t t = 0; t < trials; ++t) {
    const auto f = sampler.sample(fault::SiteClass::kPsumReg, rng, sc);
    const auto af = fault::lower(f, net.mac_layers(), model);
    DNNFI_EXPECTS(af.faults.column.has_value());
    const auto& cf = *af.faults.column;

    bool violated = false;
    const dnn::LayerObserver<Half> observer =
        [&](std::size_t layer, tensor::ConstTensorView<Half> out) {
          if (layer != af.layer) return;
          const auto& ref = golden.acts[layer];
          const auto& os = ref.shape();
          const std::size_t plane = os.c > 1 ? os.h * os.w : 1;
          for (std::size_t e = 0; e < ref.size(); ++e) {
            if (Tr::to_bits(out[e]) == Tr::to_bits(ref[e])) continue;
            const bool in_footprint =
                e >= cf.first_out && (e / plane) % cf.cols == cf.col;
            if (!in_footprint) violated = true;
          }
        };
    (void)net.forward_with_fault(golden, af, nullptr, &observer);
    if (violated) {
      std::cerr << "column-law violation: " << f.describe() << "\n";
      ++violations;
    }
  }
  return violations;
}

void write_json(const std::vector<Cell>& cells, std::size_t trials,
                std::size_t law_trials, std::size_t law_violations,
                const std::string& path) {
  std::ostringstream out;
  out << "{\n  \"network\": \"alexnet-s\",\n  \"dtype\": \"FLOAT16\",\n"
      << "  \"trials_per_cell\": " << trials << ",\n"
      << "  \"column_law\": {\"trials\": " << law_trials
      << ", \"violations\": " << law_violations << "},\n"
      << "  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    out << "    {\"accel\": \"" << c.accel << "\", \"fault_op\": \""
        << c.fault_op << "\", \"site\": \"" << c.site
        << "\", \"sdc1\": " << c.sdc1.p << ", \"ci95\": " << c.sdc1.ci95
        << ", \"hits\": " << c.sdc1.hits << ", \"n\": " << c.sdc1.n << "}"
        << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  if (!write_file_atomic(path, out.str()))
    std::cerr << "warning: could not write " << path << "\n";
}

}  // namespace

int main() {
  const std::size_t n = samples();
  banner("accelerator geometry x fault-op sweep, AlexNet-S FLOAT16", n);

  const NetContext ctx = load_net(NetworkId::kAlexNetS);
  fault::Campaign campaign(ctx.model.spec, ctx.model.blob,
                           numeric::DType::kFloat16, ctx.inputs);

  const std::vector<std::string> geometries = {"eyeriss", "systolic:16x16"};
  // Single-bit toggle (the paper's SEU), both stuck-at polarities, and a
  // 2-bit toggle mask exercising the arbitrary-pattern path.
  const std::vector<std::string> ops = {"toggle", "set0", "set1",
                                        "toggle:0x3"};

  // Gate: the column-propagation law must hold at campaign scale before any
  // rate is reported, for every fault op in the sweep.
  {
    const auto cfg = accel::parse_accelerator("systolic:16x16");
    const auto model = accel::make_accelerator(*cfg);
    const std::size_t law_n = std::min<std::size_t>(n, 200);
    std::size_t total = 0, bad = 0;
    for (const auto& op : ops) {
      const auto spec = fault::FaultOpSpec::parse(op);
      bad += validate_column_law(ctx, *model, *spec, law_n, 0xC01 + total);
      total += law_n;
    }
    std::cout << "column-propagation law: " << total << " sampled psum "
              << "strikes, " << bad << " violations\n\n";
    if (bad != 0) {
      std::cerr << "FATAL: systolic column-propagation law violated\n";
      return 1;
    }
  }

  std::vector<Cell> cells;
  std::size_t law_trials_total = ops.size() * std::min<std::size_t>(n, 200);
  for (const auto& geom : geometries) {
    const auto cfg = accel::parse_accelerator(geom);
    Table t("geometry " + geom + " (n=" + std::to_string(n) + "/cell)");
    t.header({"fault op", "datapath SDC-1", "psum-reg SDC-1"});
    for (const auto& op : ops) {
      const auto spec = fault::FaultOpSpec::parse(op);
      fault::CampaignOptions dp;
      dp.trials = n;
      dp.seed = 20170814;
      dp.accel = *cfg;
      dp.constraint.op_kind = spec->kind;
      dp.constraint.burst = spec->burst;
      dp.constraint.op_pattern = spec->pattern;
      const auto e_dp = run_streaming(campaign, dp).sdc1();
      cells.push_back({geom, spec->to_string(), "datapath", e_dp});

      fault::CampaignOptions ps = dp;
      ps.site = fault::SiteClass::kPsumReg;
      const auto e_ps = run_streaming(campaign, ps).sdc1();
      cells.push_back({geom, spec->to_string(), "psum-reg", e_ps});

      t.row({spec->to_string(), Table::pct_ci(e_dp.p, e_dp.ci95),
             Table::pct_ci(e_ps.p, e_ps.ci95)});
    }
    emit(t, "BENCH_accel_geometry_" + (cfg->is_eyeriss()
                                           ? std::string("eyeriss")
                                           : std::string("systolic")));
  }

  std::filesystem::create_directories(results_dir());
  const std::string json = results_dir() + "/BENCH_accel_geometry.json";
  write_json(cells, n, law_trials_total, 0, json);
  std::cout << "[json] " << json << "\n";

  std::cout << "reading: a systolic psum strike taints every output still\n"
               "flowing through its column, so psum-reg SDC is far higher\n"
               "than Eyeriss's single-element PSum REG model; stuck-at ops\n"
               "bound the toggle rates (set1 forces high bits on, set0 can\n"
               "only shrink magnitudes).\n";
  return 0;
}
