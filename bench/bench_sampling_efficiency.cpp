// Sampling efficiency: trials-to-target-CI, uniform vs stratified.
//
// For AlexNet-S at FLOAT16 and FLOAT, runs the adaptive stratified
// campaign to its CI target, then grows a uniform campaign in shard
// increments until its Wilson SDC-1 interval is as tight as the interval
// the stratified run actually achieved — the apples-to-apples "how many
// uniform trials buy the same precision" number. Reports both trial
// counts, the reduction ratio, and the stratified run's effective sample
// size (n_eff: the uniform n whose binomial variance equals the
// stratified variance — the analytic twin of the measured ratio).
//
// Targets are chosen tight enough that the stratified engine's fixed
// costs (pilot, zero-pool certification — DESIGN.md §12) amortize; at
// loose targets uniform wins and that is documented behavior, not a
// regression. Writes BENCH_sampling_efficiency.json into the results
// directory. With --check, exits nonzero unless stratified needs at
// least 3x fewer trials than uniform on the FLOAT16 cell (the nightly
// gate; the README quotes the measured ~3-4x honestly rather than an
// importance-sampling headline number).
#include <cstring>
#include <filesystem>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "dnnfi/common/atomic_file.h"

using namespace dnnfi;
using namespace dnnfi::benchutil;

namespace {

struct Cell {
  std::string network;
  std::string dtype;
  double target_ci = 0;
  std::uint64_t stratified_trials = 0;
  double stratified_ci = 0;   ///< achieved SDC-1 half-width
  double stratified_p = 0;    ///< HT SDC-1 estimate
  double n_eff = 0;
  std::uint64_t uniform_trials = 0;
  double uniform_ci = 0;      ///< first Wilson half-width <= stratified_ci
  double uniform_p = 0;
  double ratio = 0;           ///< uniform_trials / stratified_trials
};

Cell measure(const NetContext& ctx, numeric::DType dt, double target_ci,
             std::size_t budget) {
  fault::Campaign campaign(ctx.model.spec, ctx.model.blob, dt, ctx.inputs);

  Cell cell;
  cell.network = ctx.name;
  cell.dtype = std::string(numeric::dtype_name(dt));
  cell.target_ci = target_ci;

  // Stratified: run the adaptive controller to convergence.
  fault::CampaignOptions strat;
  strat.trials = budget;
  strat.seed = 20170101;
  strat.sampler = fault::SamplerMode::kStratified;
  strat.stratified.target_ci = target_ci;
  const fault::StratifiedResult sr = campaign.run_stratified(strat);
  if (!sr.converged) {
    std::cerr << "FATAL: stratified campaign on " << ctx.name << " "
              << cell.dtype << " hit the " << budget
              << "-trial budget before the " << target_ci
              << " CI target — raise the budget or loosen the target\n";
    std::exit(1);
  }
  const fault::StratifiedEstimate ht = sr.sdc1();
  cell.stratified_trials = sr.trials;
  cell.stratified_ci = ht.est.ci95;
  cell.stratified_p = ht.est.p;
  cell.n_eff = ht.n_eff;

  // Uniform: same campaign, grown one shard increment at a time until the
  // Wilson interval matches what stratified actually achieved. Shards of
  // one logical campaign merge exactly (DESIGN.md §7), so this is the
  // genuine uniform trials-to-CI, not an analytic projection.
  fault::CampaignOptions unif;
  unif.seed = 20170101;
  const std::uint64_t step = 8192;
  const std::uint64_t cap = 100 * step;  // 819k: > any cell's requirement
  unif.trials = cap;
  fault::OutcomeAccumulator acc(
      static_cast<std::size_t>(ctx.model.spec.num_blocks()));
  std::uint64_t done = 0;
  fault::Estimate wl;
  while (done < cap) {
    fault::ShardSpec shard;
    shard.begin = done;
    shard.end = std::min<std::uint64_t>(done + step, cap);
    acc.merge(campaign.run_shard(unif, shard).acc);
    done = shard.end;
    wl = acc.sdc1();
    if (wl.ci95 <= cell.stratified_ci) break;
  }
  if (wl.ci95 > cell.stratified_ci) {
    std::cerr << "FATAL: uniform campaign on " << ctx.name << " "
              << cell.dtype << " did not reach ci " << cell.stratified_ci
              << " within " << cap << " trials\n";
    std::exit(1);
  }
  cell.uniform_trials = done;
  cell.uniform_ci = wl.ci95;
  cell.uniform_p = wl.p;
  cell.ratio = static_cast<double>(cell.uniform_trials) /
               static_cast<double>(cell.stratified_trials);
  return cell;
}

void write_json(const std::vector<Cell>& cells, const std::string& path) {
  std::ostringstream out;
  out << "{\n  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    out << "    {\"network\": \"" << c.network << "\", \"dtype\": \""
        << c.dtype << "\", \"target_ci\": " << c.target_ci
        << ", \"stratified_trials\": " << c.stratified_trials
        << ", \"stratified_sdc1\": " << c.stratified_p
        << ", \"stratified_ci95\": " << c.stratified_ci
        << ", \"n_eff\": " << c.n_eff
        << ", \"uniform_trials\": " << c.uniform_trials
        << ", \"uniform_sdc1\": " << c.uniform_p
        << ", \"uniform_ci95\": " << c.uniform_ci
        << ", \"trials_reduction\": " << c.ratio
        << "}" << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  if (!write_file_atomic(path, out.str()))
    std::cerr << "warning: could not write " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool check = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--check") == 0) check = true;

  std::cout << "== sampling efficiency: trials to equal SDC-1 precision ==\n";

  const NetContext ctx = load_net(NetworkId::kAlexNetS, 4);
  std::vector<Cell> cells;
  // Per-dtype CI targets sized to each format's SDC-1 rate (~0.6% at
  // FLOAT16, ~0.13% at FLOAT) so both cells certify a comparably
  // informative interval. 600k budgets never bind at these targets.
  cells.push_back(measure(ctx, numeric::DType::kFloat16, 2e-4, 600000));
  cells.push_back(measure(ctx, numeric::DType::kFloat, 1e-4, 600000));

  Table t("trials to target CI (SDC-1)");
  t.header({"network", "dtype", "target", "stratified", "uniform",
            "reduction", "n_eff", "HT sdc1", "uniform sdc1"});
  for (const Cell& c : cells)
    t.row({c.network, c.dtype, Table::num(c.target_ci, 6),
           std::to_string(c.stratified_trials),
           std::to_string(c.uniform_trials),
           Table::num(c.ratio, 2) + "x", Table::num(c.n_eff, 0),
           Table::pct(c.stratified_p), Table::pct(c.uniform_p)});
  emit(t, "BENCH_sampling_efficiency");

  std::filesystem::create_directories(results_dir());
  const std::string json = results_dir() + "/BENCH_sampling_efficiency.json";
  write_json(cells, json);
  std::cout << "[json] " << json << "\n";

  if (check) {
    bool fail = false;
    for (const Cell& c : cells) {
      // The hard gate is the FLOAT16 cell: >= 3x fewer trials than
      // uniform at equal precision. Other cells only need to beat
      // uniform at all (ratio > 1) — their margin is reported, not gated,
      // so a noisy borderline dtype cannot flap the nightly.
      const double floor = c.dtype == "FLOAT16" ? 3.0 : 1.0;
      if (c.ratio < floor) {
        std::cerr << "FAIL: stratified reduction on " << c.network << " "
                  << c.dtype << " is " << c.ratio << "x (< " << floor
                  << "x)\n";
        fail = true;
      }
    }
    if (fail) return 1;
    std::cout << "check passed: stratified >= 3x fewer trials than uniform "
                 "on FLOAT16 at equal SDC-1 precision\n";
  }
  return 0;
}
