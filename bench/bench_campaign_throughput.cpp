// Campaign throughput with and without incremental fault replay.
//
// For AlexNet-S and ConvNet at FLOAT16 and FLOAT, runs the same campaign
// twice — full replay (--no-incremental semantics) and incremental replay
// (cache seeding + masked-fault early exit) — and reports trials/s for
// each, the speedup, and the masked-exit rate. The two runs are asserted
// byte-identical at the aggregate level before any timing is reported: a
// speedup that changed results would be a bug, not a win.
//
// Writes BENCH_campaign_throughput.json into the results directory. With
// --check, exits nonzero if incremental replay is slower than full replay
// on any cell (the nightly smoke gate).
//
// Alongside the measured rates, each network row carries a static estimate
// of the replayed-MAC fraction: with faults sampled MAC-uniformly, the
// expected fraction of network MACs a replay starting at the fault layer
// executes, from accel::analyze_range — the arithmetic incremental replay
// saves before the early exit saves anything at all.
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "dnnfi/accel/dataflow.h"
#include "dnnfi/common/atomic_file.h"
#include "dnnfi/dnn/kernels/kernels.h"

using namespace dnnfi;
using namespace dnnfi::benchutil;

namespace {

struct Cell {
  std::string network;
  std::string dtype;
  double full_tps = 0;
  double incremental_tps = 0;
  double speedup = 0;
  double masked_rate = 0;
  double suffix_mac_fraction = 0;  ///< static replay-cost estimate
  double scalar_tps = 0;       ///< incremental replay, scalar kernels forced
  double kernel_speedup = 0;   ///< incremental_tps / scalar_tps
};

/// Expected fraction of network MACs a replay starting at the fault layer
/// executes, with fault sites sampled proportional to per-layer MACs:
/// sum_f (macs_f / total) * (macs in [f, end) / total).
double expected_suffix_mac_fraction(const dnn::NetworkSpec& spec) {
  const auto fp = accel::analyze(spec);
  const double total = static_cast<double>(accel::total_macs(fp));
  const std::size_t n = spec.layers.size();
  double acc = 0;
  for (const auto& f : fp) {
    const double suffix = static_cast<double>(
        accel::macs_in_range(fp, f.layer_index, n));
    acc += (static_cast<double>(f.macs) / total) * (suffix / total);
  }
  return acc;
}

struct TimedRun {
  double tps = 0;
  fault::ShardResult result;
};

TimedRun timed_run(const fault::Campaign& campaign, fault::CampaignOptions opt,
                   bool incremental) {
  opt.incremental_replay = incremental;
  const auto t0 = std::chrono::steady_clock::now();
  TimedRun r;
  r.result = campaign.run_shard(opt, fault::ShardSpec{});
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  r.tps = secs > 0 ? static_cast<double>(opt.trials) / secs : 0;
  return r;
}

Cell measure(const NetContext& ctx, numeric::DType dt, std::size_t trials) {
  fault::Campaign campaign(ctx.model.spec, ctx.model.blob, dt, ctx.inputs);
  fault::CampaignOptions opt;
  opt.trials = trials;
  opt.seed = 2017;

  // Warm-up (thread pool spin-up, lazy tables) outside the timed windows.
  {
    fault::CampaignOptions warm = opt;
    warm.trials = std::min<std::size_t>(32, trials);
    (void)campaign.run_shard(warm, fault::ShardSpec{});
  }

  const TimedRun full = timed_run(campaign, opt, /*incremental=*/false);
  const TimedRun inc = timed_run(campaign, opt, /*incremental=*/true);
  if (full.result.acc.bytes() != inc.result.acc.bytes()) {
    std::cerr << "FATAL: incremental and full replay disagree on "
              << ctx.name << " " << numeric::dtype_name(dt)
              << " — refusing to report timings for wrong results\n";
    std::exit(1);
  }

  // Kernel-engine before/after: the same campaign with the scalar reference
  // kernels forced (set_active_mode affects the plans the new Campaign
  // builds). In the default bit-identity modes the scalar run must produce
  // byte-identical TrialRecords; only the opt-in avx2-relaxed mode is
  // allowed to differ.
  const std::string prev_mode = dnn::kernels::kernel_profile().mode;
  TimedRun scalar_inc;
  {
    dnn::kernels::set_active_mode("scalar");
    fault::Campaign scalar_campaign(ctx.model.spec, ctx.model.blob, dt,
                                    ctx.inputs);
    fault::CampaignOptions warm = opt;
    warm.trials = std::min<std::size_t>(32, trials);
    (void)scalar_campaign.run_shard(warm, fault::ShardSpec{});
    scalar_inc = timed_run(scalar_campaign, opt, /*incremental=*/true);
    dnn::kernels::set_active_mode(prev_mode);
  }
  if (prev_mode != "avx2-relaxed" &&
      scalar_inc.result.acc.bytes() != inc.result.acc.bytes()) {
    std::cerr << "FATAL: scalar and " << prev_mode
              << " kernels disagree on " << ctx.name << " "
              << numeric::dtype_name(dt)
              << " — SIMD bit-identity contract broken\n";
    std::exit(1);
  }

  Cell cell;
  cell.network = ctx.name;
  cell.dtype = std::string(numeric::dtype_name(dt));
  cell.full_tps = full.tps;
  cell.incremental_tps = inc.tps;
  cell.speedup = full.tps > 0 ? inc.tps / full.tps : 0;
  cell.masked_rate =
      static_cast<double>(inc.result.masked_exits) / static_cast<double>(trials);
  cell.suffix_mac_fraction = expected_suffix_mac_fraction(ctx.model.spec);
  cell.scalar_tps = scalar_inc.tps;
  cell.kernel_speedup = scalar_inc.tps > 0 ? inc.tps / scalar_inc.tps : 0;
  return cell;
}

void write_json(const std::vector<Cell>& cells, std::size_t trials,
                const std::string& path) {
  const auto prof = dnn::kernels::kernel_profile();
  std::ostringstream out;
  out << "{\n  \"trials_per_cell\": " << trials << ",\n"
      << "  \"kernels\": {\"mode\": \"" << prof.mode
      << "\", \"cpu_avx2\": " << (prof.cpu_avx2 ? "true" : "false")
      << ", \"cpu_avx512\": " << (prof.cpu_avx512 ? "true" : "false")
      << ", \"cpu_f16c\": " << (prof.cpu_f16c ? "true" : "false")
      << ", \"f16c_compiled\": " << (prof.f16c_compiled ? "true" : "false")
      << ", \"active_float\": \"" << prof.active_float
      << "\", \"active_float16\": \"" << prof.active_float16 << "\"},\n"
      << "  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    out << "    {\"network\": \"" << c.network << "\", \"dtype\": \""
        << c.dtype << "\", \"full_trials_per_sec\": " << c.full_tps
        << ", \"incremental_trials_per_sec\": " << c.incremental_tps
        << ", \"speedup\": " << c.speedup
        << ", \"masked_exit_rate\": " << c.masked_rate
        << ", \"expected_suffix_mac_fraction\": " << c.suffix_mac_fraction
        << ", \"scalar_incremental_trials_per_sec\": " << c.scalar_tps
        << ", \"kernel_speedup\": " << c.kernel_speedup
        << "}" << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  if (!write_file_atomic(path, out.str()))
    std::cerr << "warning: could not write " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool check = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--check") == 0) check = true;

  const std::size_t trials = samples(400);
  banner("campaign throughput: incremental vs full fault replay", trials);
  {
    const auto prof = dnn::kernels::kernel_profile();
    std::cout << "kernels: mode=" << prof.mode
              << " float=" << prof.active_float
              << " float16=" << prof.active_float16
              << " (cpu avx2=" << (prof.cpu_avx2 ? "yes" : "no")
              << " avx512=" << (prof.cpu_avx512 ? "yes" : "no")
              << " f16c=" << (prof.cpu_f16c ? "yes" : "no")
              << ", f16c built=" << (prof.f16c_compiled ? "yes" : "no")
              << ")\n";
  }

  std::vector<Cell> cells;
  Table t("campaign throughput (trials/s)");
  t.header({"network", "dtype", "full", "incremental", "speedup", "masked",
            "E[suffix MACs]", "scalar", "vs scalar"});
  for (const NetworkId id : {NetworkId::kAlexNetS, NetworkId::kConvNet}) {
    const NetContext ctx = load_net(id);
    for (const numeric::DType dt :
         {numeric::DType::kFloat16, numeric::DType::kFloat}) {
      const Cell c = measure(ctx, dt, trials);
      t.row({c.network, c.dtype, Table::num(c.full_tps, 1),
             Table::num(c.incremental_tps, 1),
             Table::num(c.speedup, 2) + "x",
             Table::pct(c.masked_rate),
             Table::pct(c.suffix_mac_fraction),
             Table::num(c.scalar_tps, 1),
             Table::num(c.kernel_speedup, 2) + "x"});
      cells.push_back(c);
    }
  }
  emit(t, "BENCH_campaign_throughput");

  std::filesystem::create_directories(results_dir());
  const std::string json = results_dir() + "/BENCH_campaign_throughput.json";
  write_json(cells, trials, json);
  std::cout << "[json] " << json << "\n";

  if (check) {
    bool fail = false;
    for (const Cell& c : cells) {
      if (c.incremental_tps < c.full_tps) {
        std::cerr << "FAIL: incremental replay slower than full on "
                  << c.network << " " << c.dtype << " ("
                  << c.incremental_tps << " vs " << c.full_tps
                  << " trials/s)\n";
        fail = true;
      }
    }
    if (fail) return 1;
    std::cout << "check passed: incremental >= full on every cell, and "
                 "scalar/SIMD kernel modes were byte-identical\n";
  }
  return 0;
}
