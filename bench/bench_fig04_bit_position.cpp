// Figure 4: per-bit SDC probability. The paper shows NiN under FLOAT and
// FLOAT16 (only high exponent bits are vulnerable, 0->1 flips worse than
// 1->0) and CaffeNet under 32b_rb26 and 32b_rb10 (only integer bits are
// vulnerable, and the wide-range 32b_rb10 far more so).
#include "bench_util.h"

using namespace dnnfi;
using namespace dnnfi::benchutil;

namespace {

void per_bit_study(const NetContext& ctx, numeric::DType dt, std::size_t n_bit) {
  fault::Campaign campaign(ctx.model.spec, ctx.model.blob, dt, ctx.inputs);
  const int width = numeric::dtype_width(dt);

  Table t("Fig 4: per-bit SDC-1, " + ctx.name + " / " +
          std::string(numeric::dtype_name(dt)) + " (n=" + std::to_string(n_bit) +
          "/bit; bits omitted when zero)");
  t.header({"bit", "SDC-1", "SDC-1 (0->1 flips)", "SDC-1 (1->0 flips)"});

  for (int bit = width - 1; bit >= 0; --bit) {
    fault::CampaignOptions opt;
    opt.trials = n_bit;
    opt.seed = 31004;
    opt.constraint.fixed_bit = bit;
    const auto r = run_streaming(campaign, opt);
    const auto all = r.sdc1();
    if (all.hits == 0) continue;  // the paper omits zero-SDC bits
    const auto zto = r.sdc1_given_zero_to_one();
    const auto otz = r.sdc1_given_one_to_zero();
    t.row({std::to_string(bit), Table::pct_ci(all.p, all.ci95),
           Table::pct(zto.p), Table::pct(otz.p)});
  }
  emit(t, "fig04_bits_" + ctx.name + "_" + std::string(numeric::dtype_name(dt)));
}

}  // namespace

int main() {
  const std::size_t n_bit = std::max<std::size_t>(50, samples() / 3);
  banner("Figure 4 — SDC probability by corrupted bit position", n_bit);

  const NetContext nin = load_net(NetworkId::kNiNS);
  per_bit_study(nin, numeric::DType::kFloat, n_bit);     // Fig 4a
  per_bit_study(nin, numeric::DType::kFloat16, n_bit);   // Fig 4b

  const NetContext caffe = load_net(NetworkId::kCaffeNetS);
  per_bit_study(caffe, numeric::DType::kFx32r26, n_bit);  // Fig 4c
  per_bit_study(caffe, numeric::DType::kFx32r10, n_bit);  // Fig 4d
  return 0;
}
