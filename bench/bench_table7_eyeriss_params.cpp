// Table 7: Eyeriss microarchitecture parameters at 65 nm (published) and the
// 16 nm projection (x8 on PEs and buffer capacities), plus the intermediate
// technology generations for reference.
#include "bench_util.h"

using namespace dnnfi;
using namespace dnnfi::benchutil;

int main() {
  banner("Table 7 — Eyeriss parameters, 65 nm published and 16 nm projection", 0);

  Table t("Table 7: Eyeriss microarchitecture (16-bit words, x2 per generation)");
  t.header({"feature size", "PEs", "Global Buffer (KB)", "Filter SRAM/PE (KB)",
            "Img REG/PE (KB)", "PSum REG/PE (KB)"});
  auto row = [&t](const accel::EyerissConfig& c, const std::string& label) {
    t.row({label, std::to_string(c.num_pes), Table::num(c.global_buffer_kb, 2),
           Table::num(c.filter_sram_kb, 3), Table::num(c.img_reg_kb, 3),
           Table::num(c.psum_reg_kb, 3)});
  };
  row(accel::eyeriss_65nm(), "65nm (published)");
  row(accel::project(accel::eyeriss_65nm(), 1), "40nm (projected)");
  row(accel::project(accel::eyeriss_65nm(), 2), "28nm (projected)");
  row(accel::eyeriss_16nm(), "16nm (paper Table 7)");
  emit(t, "table7_eyeriss_params");

  const auto c = accel::eyeriss_16nm();
  Table bits("Table 7 (derived): total storage bits per structure at 16nm");
  bits.header({"structure", "instances", "bits/instance", "total Mbit"});
  for (const auto b : accel::kAllBuffers) {
    const std::size_t inst = (b == accel::BufferKind::kGlobalBuffer) ? 1 : c.num_pes;
    bits.row({accel::buffer_name(b), std::to_string(inst),
              std::to_string(c.instance_bits(b)),
              Table::num(static_cast<double>(c.total_bits(b)) / (1024.0 * 1024.0), 3)});
  }
  emit(bits, "table7_derived_bits");
  return 0;
}
