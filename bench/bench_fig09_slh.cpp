// Table 9 + Figure 9: Selective Latch Hardening for AlexNet under FLOAT16
// and 16b_rb10. Measures the per-bit SDC sensitivity profile by stratified
// injection, then:
//   Fig 9a — FIT reduction vs fraction of (perfectly) protected latches,
//            with the fitted beta asymmetry coefficient;
//   Fig 9b/c — latch area overhead vs target FIT reduction for RCC, SEUT,
//            TMR, and the optimal multi-technique mix.
// Paper headline: ~100x latch-FIT reduction at ~20-25% latch area overhead.
#include "bench_util.h"
#include "dnnfi/mitigate/slh.h"

using namespace dnnfi;
using namespace dnnfi::benchutil;

namespace {

mitigate::BitProfile measure_profile(const NetContext& ctx, numeric::DType dt,
                                     std::size_t n_bit) {
  fault::Campaign campaign(ctx.model.spec, ctx.model.blob, dt, ctx.inputs);
  const int width = numeric::dtype_width(dt);
  mitigate::BitProfile profile(static_cast<std::size_t>(width), 0.0);
  for (int bit = 0; bit < width; ++bit) {
    fault::CampaignOptions opt;
    opt.trials = n_bit;
    opt.seed = 31012;
    opt.constraint.fixed_bit = bit;
    // Per-bit FIT is proportional to the per-bit SDC probability (equal raw
    // rate and equal latch count per bit position).
    profile[static_cast<std::size_t>(bit)] = run_streaming(campaign, opt).sdc1().p;
  }
  return profile;
}

void slh_study(const NetContext& ctx, numeric::DType dt, std::size_t n_bit) {
  const std::string dt_name(numeric::dtype_name(dt));
  const auto profile = measure_profile(ctx, dt, n_bit);

  // Fig 9a: perfect-protection coverage curve + beta.
  const auto curve = mitigate::perfect_protection_curve(profile);
  const double beta = mitigate::fit_beta(curve);
  Table a("Fig 9a: FIT reduction vs protected fraction, " + ctx.name + " " +
          dt_name + " (beta=" + Table::num(beta, 2) + ")");
  a.header({"fraction protected", "FIT removed"});
  for (std::size_t k = 0; k < curve.size();
       k += std::max<std::size_t>(1, curve.size() / 16)) {
    a.row({Table::pct(curve[k].protected_fraction, 0),
           Table::pct(curve[k].fit_removed_fraction, 1)});
  }
  a.row({Table::pct(1.0, 0), Table::pct(curve.back().fit_removed_fraction, 1)});
  emit(a, "fig09a_coverage_" + dt_name);

  // Fig 9b/c: overhead vs target reduction per technique.
  Table bc("Fig 9b/c: latch area overhead vs target FIT reduction, " +
           ctx.name + " " + dt_name);
  bc.header({"target", "RCC", "SEUT", "TMR", "Multi"});
  for (const double target : {2.0, 6.3, 10.0, 37.0, 100.0}) {
    std::vector<std::string> row = {Table::num(target, 1) + "x"};
    for (std::size_t d = 1; d < mitigate::latch_designs().size(); ++d) {
      const auto plan =
          mitigate::harden_single(profile, mitigate::latch_designs()[d], target);
      row.push_back(plan.feasible ? Table::pct(plan.area_overhead, 1)
                                  : "infeasible");
    }
    const auto multi = mitigate::harden_multi(profile, target);
    row.push_back(multi.feasible ? Table::pct(multi.area_overhead, 1)
                                 : "infeasible");
    bc.row(row);
  }
  emit(bc, "fig09bc_overhead_" + dt_name);
}

}  // namespace

int main() {
  const std::size_t n_bit = std::max<std::size_t>(60, samples() / 3);
  banner("Table 9 + Figure 9 — Selective Latch Hardening (AlexNet-S)", n_bit);

  Table t9("Table 9: hardened latch design points (Sullivan et al.)");
  t9.header({"latch type", "area overhead", "FIT reduction"});
  for (const auto& d : mitigate::latch_designs())
    t9.row({d.name, Table::num(d.area, 2) + "x",
            d.fit_reduction >= 1e6 ? "1,000,000x"
                                   : Table::num(d.fit_reduction, 1) + "x"});
  emit(t9, "table9_latch_designs");

  const NetContext ctx = load_net(NetworkId::kAlexNetS);
  slh_study(ctx, numeric::DType::kFloat16, n_bit);
  slh_study(ctx, numeric::DType::kFx16r10, n_bit);
  return 0;
}
