// Table 8: SDC probability and FIT rate for each Eyeriss buffer structure,
// per network, using the 16b_rb10 data type (Eyeriss stores 16-bit words).
// Shapes to reproduce: buffer FIT rates are orders of magnitude above the
// datapath's; the shallow ConvNet is far more vulnerable than the deep
// nets; Img REG and PSum REG have small FIT (small structures and one-row /
// one-accumulation reuse windows); Filter SRAM dominates among per-PE
// buffers for the deep nets.
#include "bench_util.h"
#include "dnnfi/fit/fit.h"

using namespace dnnfi;
using namespace dnnfi::benchutil;

int main() {
  const std::size_t n = samples();
  banner("Table 8 — Eyeriss buffer SDC and FIT per network (16b_rb10)", n);

  const auto cfg = accel::eyeriss_16nm();
  Table t("Table 8: buffer SDC probability / FIT (n=" + std::to_string(n) +
          "/cell)");
  t.header({"network", "Global Buffer", "Filter SRAM", "Img REG", "PSum REG",
            "datapath (ref)"});

  for (const auto id : dnn::zoo::kAllNetworks) {
    const NetContext ctx = load_net(id);
    fault::Campaign campaign(ctx.model.spec, ctx.model.blob,
                             numeric::DType::kFx16r10, ctx.inputs);
    const auto fp = accel::analyze(ctx.model.spec);

    std::vector<std::string> row = {ctx.name};
    for (const auto site : fault::kBufferSiteClasses) {
      fault::CampaignOptions opt;
      opt.trials = n;
      opt.seed = 31010;
      opt.site = site;
      const auto sdc = run_streaming(campaign, opt).sdc1();
      const double f =
          fit::buffer_fit(fp, fault::buffer_of(site), cfg, sdc.p);
      row.push_back(Table::pct(sdc.p) + " / " + Table::num(f, 3));
    }
    // Datapath reference column for the "orders of magnitude" comparison.
    fault::CampaignOptions dp;
    dp.trials = n;
    dp.seed = 31010;
    const double dp_sdc = run_streaming(campaign, dp).sdc1().p;
    row.push_back(Table::pct(dp_sdc) + " / " +
                  Table::num(fit::datapath_fit(numeric::DType::kFx16r10,
                                               cfg.num_pes, dp_sdc), 4));
    t.row(row);
  }
  emit(t, "table8_buffer_fit");
  return 0;
}
