// Figure 7: Euclidean distance between faulty and golden ACTs at the end of
// every layer, with faults injected at layer 1, DOUBLE data type. The shape
// to reproduce: AlexNet/CaffeNet distances collapse across their LRN layers
// (normalization averages the outlier away), while NiN/ConvNet — which have
// no normalization layers — stay comparatively flat.
#include <cmath>

#include "bench_util.h"

using namespace dnnfi;
using namespace dnnfi::benchutil;

int main() {
  const std::size_t n = std::max<std::size_t>(60, samples() / 4);
  banner("Figure 7 — per-layer Euclidean distance to golden, faults at layer 1 (DOUBLE)", n);

  for (const auto id : dnn::zoo::kAllNetworks) {
    const NetContext ctx = load_net(id);
    fault::Campaign campaign(ctx.model.spec, ctx.model.blob,
                             numeric::DType::kDouble, ctx.inputs);
    fault::CampaignOptions opt;
    opt.trials = n;
    opt.seed = 31007;
    opt.constraint.fixed_block = 1;  // inject only into layer 1
    opt.record_block_distances = true;
    const auto r = campaign.run(opt);

    const int blocks = ctx.model.spec.num_blocks();
    // Geometric-mean distance per layer (the paper plots averages on a log
    // scale; the geometric mean is robust to the huge outlier spread of
    // DOUBLE's dynamic range). Zero-distance (fully masked) trials are
    // excluded from the mean and reported separately.
    Table t("Fig 7: distance to golden per layer, " + ctx.name +
            " DOUBLE (faults at layer 1, n=" + std::to_string(n) + ")");
    t.header({"layer", "geomean distance", "masked (dist=0)"});
    for (int b = 0; b < blocks; ++b) {
      double log_sum = 0;
      std::size_t live = 0, masked = 0;
      for (const auto& tr : r.trials) {
        const double d = tr.block_distance.at(static_cast<std::size_t>(b));
        if (d > 0 && std::isfinite(d)) {
          log_sum += std::log10(d);
          ++live;
        } else {
          ++masked;
        }
      }
      const std::string gm =
          live > 0 ? ("1e" + Table::num(log_sum / static_cast<double>(live), 2))
                   : "-";
      t.row({std::to_string(b + 1), gm,
             Table::pct(static_cast<double>(masked) /
                        static_cast<double>(r.trials.size()))});
    }
    emit(t, "fig07_euclid_" + ctx.name);
  }
  return 0;
}
