// Figure 7: Euclidean distance between faulty and golden ACTs at the end of
// every layer, with faults injected at layer 1, DOUBLE data type. The shape
// to reproduce: AlexNet/CaffeNet distances collapse across their LRN layers
// (normalization averages the outlier away), while NiN/ConvNet — which have
// no normalization layers — stay comparatively flat.
#include <cmath>

#include "bench_util.h"

using namespace dnnfi;
using namespace dnnfi::benchutil;

int main() {
  const std::size_t n = std::max<std::size_t>(60, samples() / 4);
  banner("Figure 7 — per-layer Euclidean distance to golden, faults at layer 1 (DOUBLE)", n);

  for (const auto id : dnn::zoo::kAllNetworks) {
    const NetContext ctx = load_net(id);
    fault::Campaign campaign(ctx.model.spec, ctx.model.blob,
                             numeric::DType::kDouble, ctx.inputs);
    fault::CampaignOptions opt;
    opt.trials = n;
    opt.seed = 31007;
    opt.constraint.fixed_block = 1;  // inject only into layer 1
    opt.record_block_distances = true;
    const auto r = run_streaming(campaign, opt);

    const int blocks = ctx.model.spec.num_blocks();
    // Geometric-mean distance per layer (the paper plots averages on a log
    // scale; the geometric mean is robust to the huge outlier spread of
    // DOUBLE's dynamic range). Zero-distance (fully masked) trials are
    // excluded from the mean and reported separately; the accumulator keeps
    // exactly the live/masked bucketing this bench used to compute inline.
    Table t("Fig 7: distance to golden per layer, " + ctx.name +
            " DOUBLE (faults at layer 1, n=" + std::to_string(n) + ")");
    t.header({"layer", "geomean distance", "masked (dist=0)"});
    for (int b = 0; b < blocks; ++b) {
      const auto slot = static_cast<std::size_t>(b);
      const std::uint64_t live = r.block_live(slot);
      const std::uint64_t masked = r.block_masked(slot);
      const std::string gm =
          live > 0 ? ("1e" + Table::num(r.block_log10_mean(slot), 2)) : "-";
      t.row({std::to_string(b + 1), gm,
             Table::pct(static_cast<double>(masked) /
                        static_cast<double>(r.trials()))});
    }
    emit(t, "fig07_euclid_" + ctx.name);
  }
  return 0;
}
