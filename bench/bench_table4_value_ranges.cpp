// Table 4: fault-free ACT value range at the end of each logical layer, for
// every network. The shape to reproduce: each layer's values live in a
// bounded, fairly narrow band (and the bands differ per layer), which is
// exactly what makes symptom-based detection workable.
#include "bench_util.h"

using namespace dnnfi;
using namespace dnnfi::benchutil;

int main() {
  const std::size_t n_inputs = 20;
  banner("Table 4 — fault-free per-layer ACT value ranges (FLOAT)", n_inputs);

  Table t("Table 4: value range per logical layer (over " +
          std::to_string(n_inputs) + " held-out inputs)");
  t.header({"network", "layer", "min", "max"});
  for (const auto id : dnn::zoo::kAllNetworks) {
    const NetContext ctx = load_net(id);
    const auto ranges = fault::profile_block_ranges(
        ctx.model.spec, ctx.model.blob, numeric::DType::kFloat,
        train_source(id), data::kTestSplitBegin, n_inputs);
    for (std::size_t b = 0; b < ranges.size(); ++b) {
      t.row({ctx.name, std::to_string(b + 1), Table::num(ranges[b].lo, 4),
             Table::num(ranges[b].hi, 4)});
    }
  }
  emit(t, "table4_value_ranges");
  return 0;
}
