// Extension (fault-model ablation): multi-bit upsets. The paper models
// single-event single-bit upsets; shrinking nodes increasingly produce
// adjacent multi-bit upsets from one strike — which also defeat SEC-DED
// ECC. This ablation sweeps the burst length and reports SDC-1 for
// datapath and global-buffer strikes.
//
// The burst is expressed through the mask-based fault-op model (DESIGN.md
// §11): a contiguous toggle burst of N bits. FaultOpSpec{toggle, N}
// materializes to exactly the mask numeric::flip_burst always XORed, so
// this sweep is byte-identical to the pre-FaultOp burst campaigns — the
// equivalence is asserted below before any trial runs.
#include "bench_util.h"

using namespace dnnfi;
using namespace dnnfi::benchutil;

int main() {
  const std::size_t n = samples();
  banner("Ablation — multi-bit (burst) upsets, AlexNet-S FLOAT16 & 16b_rb10", n);

  const NetContext ctx = load_net(NetworkId::kAlexNetS);
  for (const auto dt : {numeric::DType::kFloat16, numeric::DType::kFx16r10}) {
    fault::Campaign campaign(ctx.model.spec, ctx.model.blob, dt, ctx.inputs);
    Table t("burst-length sweep, " + std::string(numeric::dtype_name(dt)) +
            " (n=" + std::to_string(n) + "/cell)");
    t.header({"burst bits", "datapath SDC-1", "global-buffer SDC-1"});
    for (const int burst : {1, 2, 4, 8}) {
      fault::FaultOpSpec op;
      op.kind = fault::FaultOpKind::kToggle;
      op.burst = burst;
      // Legacy-equivalence guard: the toggle op materialized at any bit is
      // the flip_burst mask of the same (bit, length).
      for (const int bit : {0, 3, 11})
        DNNFI_EXPECTS(op.at(bit) == fault::FaultOp::flip(bit, burst));

      fault::CampaignOptions dp;
      dp.trials = n;
      dp.seed = 31017;
      dp.constraint.op_kind = op.kind;
      dp.constraint.burst = op.burst;
      dp.constraint.op_pattern = op.pattern;
      const auto e_dp = run_streaming(campaign, dp).sdc1();

      fault::CampaignOptions gb = dp;
      gb.site = fault::SiteClass::kGlobalBuffer;
      const auto e_gb = run_streaming(campaign, gb).sdc1();
      t.row({std::to_string(burst), Table::pct_ci(e_dp.p, e_dp.ci95),
             Table::pct_ci(e_gb.p, e_gb.ci95)});
    }
    emit(t, "ablation_multibit_" + std::string(numeric::dtype_name(dt)));
  }
  std::cout << "reading: wider bursts raise the chance of touching a\n"
               "vulnerable high-order bit, so SDC grows with burst length —\n"
               "and double-bit bursts already defeat SEC-DED correction,\n"
               "strengthening the case for symptom-based detection.\n";
  return 0;
}
