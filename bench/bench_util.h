// Shared helpers for the experiment harnesses in bench/. Each bench binary
// regenerates one table or figure of the paper; these helpers centralize
// model loading, held-out input selection, and output conventions.
//
// Environment knobs (all optional):
//   DNNFI_SAMPLES    injections per campaign cell (paper used 3,000)
//   DNNFI_THREADS    worker threads for campaigns
//   DNNFI_MODEL_DIR  pretrained model cache (default "models")
//   DNNFI_RESULTS    CSV output directory (default "results")
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "dnnfi/common/env.h"
#include "dnnfi/common/table.h"
#include "dnnfi/data/pretrain.h"
#include "dnnfi/fault/campaign.h"

namespace dnnfi::benchutil {

using dnn::zoo::NetworkId;

/// A loaded network with its held-out evaluation inputs.
struct NetContext {
  NetworkId id;
  std::string name;
  dnn::Model model;
  std::vector<dnn::Example> inputs;
};

/// Loads (training on first use) the model for `id` plus `num_inputs`
/// held-out test images.
inline NetContext load_net(NetworkId id, std::size_t num_inputs = 8) {
  NetContext ctx;
  ctx.id = id;
  ctx.name = std::string(dnn::zoo::network_name(id));
  ctx.model = data::pretrained(id);
  const auto ds = data::dataset_for(id);
  for (std::size_t i = 0; i < num_inputs; ++i) {
    auto s = ds->sample(data::kTestSplitBegin + i);
    ctx.inputs.push_back(dnn::Example{std::move(s.image), s.label});
  }
  return ctx;
}

/// Example source over the training split of `id`'s dataset (for SED
/// learning and value-range profiling).
inline dnn::ExampleSource train_source(NetworkId id) {
  auto ds = std::shared_ptr<data::Dataset>(data::dataset_for(id));
  return [ds](std::uint64_t i) {
    auto s = ds->sample(i);
    return dnn::Example{std::move(s.image), s.label};
  };
}

/// Runs the whole campaign through the streaming shard path and returns the
/// aggregates. The bench default: memory stays flat in trial count, and the
/// result is bit-identical to any sharded execution of the same options.
/// Reach for Campaign::run only when per-trial records are genuinely needed.
inline fault::OutcomeAccumulator run_streaming(const fault::Campaign& campaign,
                                               const fault::CampaignOptions& opt) {
  return campaign.run_shard(opt, fault::ShardSpec{}).acc;
}

/// Campaign cell size. The paper used 3,000 injections per latch/component;
/// the default here targets a single-core machine. Print `n` with results.
inline std::size_t samples(std::size_t fallback = 300) {
  return default_samples(fallback);
}

/// Where CSVs go.
inline std::string results_dir() {
  return env_string("DNNFI_RESULTS").value_or("results");
}

/// Prints the table and writes its CSV twin.
inline void emit(const Table& t, const std::string& stem) {
  t.print(std::cout);
  const std::string path = t.write_csv(results_dir(), stem);
  std::cout << "[csv] " << path << "\n\n";
}

/// Standard bench banner.
inline void banner(const std::string& what, std::size_t n) {
  std::cout << "dnnfi bench: " << what << "\n"
            << "injections per cell: " << n
            << " (paper: 3000; set DNNFI_SAMPLES to change)\n\n";
}

}  // namespace dnnfi::benchutil
