// Substrate characterization: the row-stationary mapping of each network
// onto the Eyeriss-class PE array — utilization, cycles, and traffic per
// storage level. This is the dataflow whose reuse the buffer-fault model
// (Table 8) is built on; the access counts here show *why* Filter-SRAM
// words are so exposed (thousands of reads per resident word) while
// PSum-REG words live for one accumulation.
#include "bench_util.h"
#include "dnnfi/accel/rs_mapping.h"

using namespace dnnfi;
using namespace dnnfi::benchutil;

int main() {
  banner("Row-stationary mapping: utilization, cycles, and traffic", 0);
  const auto cfg = accel::eyeriss_16nm();

  for (const auto id : dnn::zoo::kAllNetworks) {
    const auto spec = dnn::zoo::network_spec(id);
    const auto mappings = accel::map_network(spec, cfg.num_pes);

    Table t("RS mapping on " + std::to_string(cfg.num_pes) + " PEs — " +
            std::string(dnn::zoo::network_name(id)));
    t.header({"layer", "PE set", "passes", "util", "cycles", "DRAM words",
              "GB acc", "SRAM acc", "REG acc"});
    for (const auto& m : mappings) {
      t.row({std::to_string(m.block),
             std::to_string(m.pe_set_height) + "x" + std::to_string(m.pe_set_width),
             std::to_string(m.passes), Table::pct(m.utilization, 1),
             std::to_string(m.cycles), std::to_string(m.dram_reads + m.dram_writes),
             std::to_string(m.gb_accesses), std::to_string(m.sram_accesses),
             std::to_string(m.reg_accesses)});
    }
    const auto s = accel::summarize(mappings);
    t.row({"total", "-", "-", Table::pct(s.avg_utilization, 1),
           std::to_string(s.total_cycles), std::to_string(s.dram_traffic),
           std::to_string(s.gb_traffic), std::to_string(s.sram_traffic),
           std::to_string(s.reg_traffic)});
    emit(t, "rs_mapping_" + std::string(dnn::zoo::network_name(id)));
  }

  std::cout << "reading: the reuse hierarchy REG >> SRAM >> GB >> DRAM is\n"
               "exactly the exposure hierarchy of Table 8 — every extra\n"
               "access to a resident word is another chance to consume a\n"
               "corrupted bit.\n";
  return 0;
}
