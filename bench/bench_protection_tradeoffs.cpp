// The paper's core economic argument (§1, §6): DNN-aware protection
// (SED + SLH + ECC on large SRAMs) achieves the reliability of classical
// modular redundancy at a fraction of its cost. This bench puts every
// technique in one table for AlexNet-S / FLOAT16 on the 16 nm Eyeriss:
// area overhead, energy overhead, and residual accelerator FIT.
#include "bench_util.h"
#include "dnnfi/fit/fit.h"
#include "dnnfi/mitigate/ecc.h"
#include "dnnfi/mitigate/redundancy.h"
#include "dnnfi/mitigate/sed.h"
#include "dnnfi/mitigate/slh.h"

using namespace dnnfi;
using namespace dnnfi::benchutil;

int main() {
  const std::size_t n = samples();
  const auto dt = numeric::DType::kFloat16;
  banner("Protection trade-offs — AlexNet-S, FLOAT16, Eyeriss 16nm", n);

  const NetContext ctx = load_net(NetworkId::kAlexNetS);
  const auto cfg = accel::eyeriss_16nm();
  const auto fp = accel::analyze(ctx.model.spec);
  fault::Campaign campaign(ctx.model.spec, ctx.model.blob, dt, ctx.inputs);
  const auto detector = mitigate::learn_sed(ctx.model.spec, ctx.model.blob, dt,
                                            train_source(ctx.id), 0, 40);

  // Measure unprotected SDC and SED-residual SDC per component.
  struct Component {
    fault::SiteClass site;
    double sdc = 0;
    double sed_residual = 0;
    double fit = 0;
  };
  std::vector<Component> comps;
  double total_fit = 0;
  for (const auto site : fault::kAllSiteClasses) {
    fault::CampaignOptions opt;
    opt.trials = n;
    opt.seed = 31018;
    opt.site = site;
    opt.detector = detector.as_predicate();
    const auto r = run_streaming(campaign, opt);
    Component c;
    c.site = site;
    c.sdc = r.sdc1().p;
    const double caught = r.detected_and_sdc1().p;
    c.sed_residual = std::max(0.0, c.sdc - caught);
    c.fit = (site == fault::SiteClass::kDatapathLatch)
                ? fit::datapath_fit(dt, cfg.num_pes, c.sdc)
                : fit::buffer_fit(fp, fault::buffer_of(site), cfg, c.sdc);
    total_fit += c.fit;
    comps.push_back(c);
  }

  const auto residual_with = [&](auto per_component) {
    double f = 0;
    for (const auto& c : comps) f += per_component(c);
    return f;
  };

  Table t("protection technique comparison (unprotected total FIT = " +
          Table::num(total_fit, 3) + ")");
  t.header({"technique", "area overhead", "energy overhead", "residual FIT",
            "FIT reduction"});

  // Classical redundancy on the whole accelerator.
  for (const auto& s : mitigate::redundancy_schemes()) {
    if (s.name == "Unprotected") continue;
    const double fit_res = residual_with([&](const Component& c) {
      if (c.sdc <= 0) return 0.0;
      return c.fit / c.sdc * mitigate::residual_sdc(s, c.sdc);
    });
    t.row({s.name, Table::pct(s.area_multiplier - 1.0, 0),
           Table::pct(s.energy_multiplier - 1.0, 0), Table::num(fit_res, 5),
           fit_res > 0 ? Table::num(total_fit / fit_res, 0) + "x" : ">1e6x"});
  }

  // ECC (SEC-DED, 64-bit words) on all buffers; datapath unprotected.
  {
    double fit_res = 0;
    for (const auto& c : comps) {
      if (c.site == fault::SiteClass::kDatapathLatch) fit_res += c.fit;
      else fit_res += mitigate::ecc_residual_fit(c.fit, 64, 24.0);
    }
    const double ecc_area = mitigate::secded(64).overhead_fraction();
    t.row({"ECC-64 on buffers", Table::pct(ecc_area, 1) + " (buffer bits)",
           "~" + Table::pct(ecc_area, 1), Table::num(fit_res, 5),
           Table::num(total_fit / std::max(fit_res, 1e-12), 0) + "x"});
  }

  // SED alone (software; checks run on the host asynchronously).
  {
    const double fit_res = residual_with([&](const Component& c) {
      return c.sdc > 0 ? c.fit * (c.sed_residual / c.sdc) : 0.0;
    });
    t.row({"SED (software)", "0%", "~1% (async host checks)",
           Table::num(fit_res, 5),
           Table::num(total_fit / std::max(fit_res, 1e-12), 0) + "x"});
  }

  // SED + SLH(100x datapath) + ECC on the global buffer.
  {
    double fit_res = 0;
    for (const auto& c : comps) {
      const double sed_fit =
          c.sdc > 0 ? c.fit * (c.sed_residual / c.sdc) : 0.0;
      if (c.site == fault::SiteClass::kDatapathLatch) fit_res += sed_fit / 100.0;
      else if (c.site == fault::SiteClass::kGlobalBuffer)
        fit_res += mitigate::ecc_residual_fit(c.fit, 64, 24.0);
      else fit_res += sed_fit;
    }
    t.row({"SED + SLH-100x + ECC(GB)", "~2% (latches+GB check bits)",
           "~2%", Table::num(fit_res, 6),
           Table::num(total_fit / std::max(fit_res, 1e-12), 0) + "x"});
  }
  emit(t, "protection_tradeoffs");

  std::cout << "reading: DMR/TMR pay 105-210% area for their coverage; the\n"
               "paper's DNN-aware stack reaches comparable residual FIT for\n"
               "a few percent — the asymmetry that motivates the work.\n";
  return 0;
}
