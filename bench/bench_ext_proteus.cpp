// Extension (paper §6.1 future work): reliability of a Proteus-style
// reduced-precision storage protocol — fmaps and weights are stored in
// buffers in a short format and unfolded to the full datapath type inside
// the PEs. An upset then strikes the *stored* representation.
//
// Hypothesis from the paper's own analysis: buffer upsets in a narrow
// stored format cannot reach the wide type's redundant dynamic range, so
// buffer SDC rates should drop toward the narrow type's level while
// keeping the wide type's datapath semantics.
#include "bench_util.h"

using namespace dnnfi;
using namespace dnnfi::benchutil;

int main() {
  const std::size_t n = samples();
  banner("Extension — Proteus-style reduced-precision buffer storage", n);

  // FLOAT datapath; buffers store either FLOAT (baseline) or FLOAT16 /
  // 16b_rb10 (reduced).
  const NetContext ctx = load_net(NetworkId::kAlexNetS);
  fault::Campaign campaign(ctx.model.spec, ctx.model.blob,
                           numeric::DType::kFloat, ctx.inputs);

  Table t("Proteus extension: buffer SDC-1 with FLOAT datapath (n=" +
          std::to_string(n) + "/cell)");
  t.header({"buffer", "stored as FLOAT (baseline)", "stored as FLOAT16",
            "stored as 16b_rb10"});

  for (const auto site :
       {fault::SiteClass::kGlobalBuffer, fault::SiteClass::kFilterSram,
        fault::SiteClass::kImgReg}) {
    std::vector<std::string> row = {
        std::string(fault::site_class_name(site))};
    for (const auto storage :
         {std::optional<numeric::DType>{},
          std::optional<numeric::DType>{numeric::DType::kFloat16},
          std::optional<numeric::DType>{numeric::DType::kFx16r10}}) {
      fault::CampaignOptions opt;
      opt.trials = n;
      opt.seed = 31014;
      opt.site = site;
      opt.constraint.buffer_storage = storage;
      const auto e = run_streaming(campaign, opt).sdc1();
      row.push_back(Table::pct_ci(e.p, e.ci95));
    }
    t.row(row);
  }
  emit(t, "ext_proteus");

  std::cout << "reading: narrow storage truncates the redundant dynamic\n"
               "range an upset can reach, so reduced-precision storage also\n"
               "buys reliability — quantifying the protocol the paper\n"
               "deferred to future work. Storage savings: 50% buffer bits\n"
               "(FLOAT -> 16-bit), which halves the buffer FIT exposure\n"
               "(Eq. 1 size term) on top of the SDC reduction above.\n";
  return 0;
}
