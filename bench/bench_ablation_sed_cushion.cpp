// Ablation (SED design choice, §6.2): sensitivity of the symptom detector
// to its cushion parameter (the paper fixes 10%) and to the size of the
// learning set. Precision should rise and recall fall as the cushion
// widens; a handful of learning inputs should already saturate coverage.
#include "bench_util.h"
#include "dnnfi/mitigate/sed.h"

using namespace dnnfi;
using namespace dnnfi::benchutil;

int main() {
  const std::size_t n = samples();
  banner("Ablation — SED cushion and learning-set size (AlexNet-S, FLOAT16)", n);

  const NetContext ctx = load_net(NetworkId::kAlexNetS);
  const auto dt = numeric::DType::kFloat16;
  fault::Campaign campaign(ctx.model.spec, ctx.model.blob, dt, ctx.inputs);

  Table t("SED cushion sweep (learning set = 40 inputs, n=" +
          std::to_string(n) + ")");
  t.header({"cushion", "precision", "recall"});
  for (const double cushion : {0.0, 0.05, 0.10, 0.25, 0.50, 1.00}) {
    const auto det = mitigate::learn_sed(ctx.model.spec, ctx.model.blob, dt,
                                         train_source(ctx.id), 0, 40, cushion);
    fault::CampaignOptions opt;
    opt.trials = n;
    opt.seed = 31016;
    opt.detector = det.as_predicate();
    const auto ev = mitigate::evaluate_sed(run_streaming(campaign, opt));
    t.row({Table::pct(cushion, 0), Table::pct(ev.precision.p),
           Table::pct(ev.recall.p)});
  }
  emit(t, "ablation_sed_cushion");

  Table t2("SED learning-set sweep (cushion = 10%)");
  t2.header({"learning inputs", "precision", "recall"});
  for (const std::size_t count : {2UL, 5UL, 10UL, 40UL, 100UL}) {
    const auto det = mitigate::learn_sed(ctx.model.spec, ctx.model.blob, dt,
                                         train_source(ctx.id), 0, count);
    fault::CampaignOptions opt;
    opt.trials = n;
    opt.seed = 31016;
    opt.detector = det.as_predicate();
    const auto ev = mitigate::evaluate_sed(run_streaming(campaign, opt));
    t2.row({std::to_string(count), Table::pct(ev.precision.p),
            Table::pct(ev.recall.p)});
  }
  emit(t2, "ablation_sed_learning");
  return 0;
}
