// google-benchmark microbenchmarks: inference latency per network and data
// type, injection fast-path overhead (golden-trace reuse), and campaign
// throughput. These quantify the engineering claims of the harness itself
// rather than a paper table.
//
// Beyond the google-benchmark tables, the binary runs a dedicated
// counting-allocator measurement of the compiled-plan engine and writes
// BENCH_perf_micro.json (ns/inference, ns/trial, allocations/trial, peak
// live-heap growth of the streaming campaign path) into the results
// directory. It exits nonzero if the faulty hot path performs any heap
// allocation per trial after warm-up, or if the streaming run_shard path's
// peak live heap grows with trial count — the engine's zero-alloc and the
// accumulator's flat-memory contracts are enforced here, not just
// documented.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <new>
#include <sstream>

#if __has_include(<malloc.h>)
#include <malloc.h>
#define DNNFI_HAVE_MALLOC_USABLE 1
#else
#define DNNFI_HAVE_MALLOC_USABLE 0
#endif

#include "bench_util.h"
#include "dnnfi/common/atomic_file.h"
#include "dnnfi/dnn/kernels/kernels.h"
#include "dnnfi/fault/injector.h"
#include "dnnfi/fault/sampler.h"

// ---------------------------------------------------------------------------
// Counting allocator: every operator new/delete in the process routes through
// malloc/free with an atomic tally of calls and (where malloc_usable_size is
// available) live bytes + peak live bytes. Relaxed ordering is fine — the
// measured loops are single-threaded and the counters are only read at
// section edges.
// ---------------------------------------------------------------------------
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<std::uint64_t> g_live_bytes{0};
std::atomic<std::uint64_t> g_peak_live{0};

inline void track_alloc(void* p) {
#if DNNFI_HAVE_MALLOC_USABLE
  const auto sz = static_cast<std::uint64_t>(malloc_usable_size(p));
  const std::uint64_t live =
      g_live_bytes.fetch_add(sz, std::memory_order_relaxed) + sz;
  std::uint64_t peak = g_peak_live.load(std::memory_order_relaxed);
  while (live > peak &&
         !g_peak_live.compare_exchange_weak(peak, live,
                                            std::memory_order_relaxed)) {
  }
#else
  (void)p;
#endif
}

inline void track_free(void* p) {
#if DNNFI_HAVE_MALLOC_USABLE
  if (p)
    g_live_bytes.fetch_sub(
        static_cast<std::uint64_t>(malloc_usable_size(p)),
        std::memory_order_relaxed);
#else
  (void)p;
#endif
}
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) {
    track_alloc(p);
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   size ? size : 1)) {
    track_alloc(p);
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
// GCC flags free() inside operator delete as a new/free mismatch; every
// operator new above routes through malloc/aligned_alloc, so it is not one.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void operator delete(void* p) noexcept {
  track_free(p);
  std::free(p);
}
void operator delete[](void* p) noexcept { ::operator delete(p); }
void operator delete(void* p, std::size_t) noexcept { ::operator delete(p); }
void operator delete[](void* p, std::size_t) noexcept { ::operator delete(p); }
void operator delete(void* p, std::align_val_t) noexcept {
  ::operator delete(p);
}
void operator delete[](void* p, std::align_val_t) noexcept {
  ::operator delete(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  ::operator delete(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  ::operator delete(p);
}
#pragma GCC diagnostic pop

using namespace dnnfi;
using namespace dnnfi::benchutil;

namespace {

/// Cached contexts so model loading happens once per process.
const NetContext& ctx_for(NetworkId id) {
  static std::map<NetworkId, NetContext> cache;
  auto it = cache.find(id);
  if (it == cache.end()) it = cache.emplace(id, load_net(id, 2)).first;
  return it->second;
}

template <typename T>
void run_inference(benchmark::State& state, NetworkId id) {
  const NetContext& ctx = ctx_for(id);
  const auto net = dnn::instantiate<T>(ctx.model.spec, ctx.model.blob);
  const dnn::Executor<T> exec(net.plan());
  dnn::Workspace<T> ws(net.plan());
  const auto input = tensor::convert<T>(ctx.inputs[0].image);
  dnn::RunRequest<T> req;
  req.input = input;
  for (auto _ : state) {
    auto out = exec.run(ws, req);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(net.total_macs()));
}

void BM_Inference_ConvNet_Float(benchmark::State& s) {
  run_inference<float>(s, NetworkId::kConvNet);
}
void BM_Inference_ConvNet_Half(benchmark::State& s) {
  run_inference<numeric::Half>(s, NetworkId::kConvNet);
}
void BM_Inference_ConvNet_Fx16(benchmark::State& s) {
  run_inference<numeric::Fx16r10>(s, NetworkId::kConvNet);
}
void BM_Inference_AlexNetS_Float(benchmark::State& s) {
  run_inference<float>(s, NetworkId::kAlexNetS);
}
void BM_Inference_NiNS_Float(benchmark::State& s) {
  run_inference<float>(s, NetworkId::kNiNS);
}
BENCHMARK(BM_Inference_ConvNet_Float)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Inference_ConvNet_Half)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Inference_ConvNet_Fx16)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Inference_AlexNetS_Float)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Inference_NiNS_Float)->Unit(benchmark::kMillisecond);

/// One faulty inference via the golden-trace fast path on the compiled
/// engine, vs a full forward.
void BM_Injection_FastPath(benchmark::State& state) {
  const NetContext& ctx = ctx_for(NetworkId::kConvNet);
  const auto net =
      dnn::instantiate<numeric::Half>(ctx.model.spec, ctx.model.blob);
  const dnn::Executor<numeric::Half> exec(net.plan());
  dnn::Workspace<numeric::Half> ws(net.plan());
  const auto input = tensor::convert<numeric::Half>(ctx.inputs[0].image);
  const auto golden = net.forward_trace(input);
  fault::Sampler sampler(ctx.model.spec, numeric::DType::kFloat16);
  Rng rng(1);
  for (auto _ : state) {
    const auto f = sampler.sample(fault::SiteClass::kDatapathLatch, rng);
    auto out = fault::inject(exec, ws, net.mac_layers(), golden, f);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_Injection_FastPath)->Unit(benchmark::kMillisecond);

void BM_Campaign_100Trials(benchmark::State& state) {
  const NetContext& ctx = ctx_for(NetworkId::kConvNet);
  fault::Campaign campaign(ctx.model.spec, ctx.model.blob,
                           numeric::DType::kFloat16, ctx.inputs);
  for (auto _ : state) {
    fault::CampaignOptions opt;
    opt.trials = 100;
    opt.seed = static_cast<std::uint64_t>(state.iterations());
    auto r = campaign.run(opt);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 100);
}
BENCHMARK(BM_Campaign_100Trials)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Counting-allocator section. Single-threaded on ConvNet/Half, the campaign's
// default datapath: measures the compiled engine directly and enforces the
// zero-allocation contract of the faulty hot path.
// ---------------------------------------------------------------------------

struct AllocatorReport {
  double ns_per_inference = 0;
  double ns_per_trial = 0;
  double allocations_per_trial = 0;
  double ns_per_trial_incremental = 0;
  double allocations_per_trial_incremental = 0;
  std::size_t trials = 0;
};

AllocatorReport measure_hot_path() {
  using T = numeric::Half;
  using Clock = std::chrono::steady_clock;
  constexpr std::size_t kWarmup = 32;
  constexpr std::size_t kTrials = 1000;
  constexpr std::size_t kInferences = 200;

  const NetContext& ctx = ctx_for(NetworkId::kConvNet);
  const auto net = dnn::instantiate<T>(ctx.model.spec, ctx.model.blob);
  const dnn::Executor<T> exec(net.plan());
  dnn::Workspace<T> ws(net.plan());
  const auto input = tensor::convert<T>(ctx.inputs[0].image);
  const auto golden = net.forward_trace(input);

  // Pre-sample descriptors over every site class so the measured loop covers
  // all four fault-lowering paths without touching the sampler.
  fault::Sampler sampler(ctx.model.spec, numeric::DType::kFloat16);
  Rng rng(7);
  std::vector<fault::FaultDescriptor> faults;
  faults.reserve(256);
  for (std::size_t i = 0; i < 256; ++i)
    faults.push_back(sampler.sample(
        fault::kAllSiteClasses[i % fault::kAllSiteClasses.size()], rng));

  AllocatorReport r;
  r.trials = kTrials;

  // Plain inference timing (steady state, workspace warm).
  for (std::size_t i = 0; i < 8; ++i) {
    dnn::RunRequest<T> req;
    req.input = input;
    benchmark::DoNotOptimize(exec.run(ws, req));
  }
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < kInferences; ++i) {
    dnn::RunRequest<T> req;
    req.input = input;
    benchmark::DoNotOptimize(exec.run(ws, req));
  }
  r.ns_per_inference =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                               t0)
              .count()) /
      static_cast<double>(kInferences);

  // Faulty-path warm-up, then the measured window.
  for (std::size_t i = 0; i < kWarmup; ++i)
    benchmark::DoNotOptimize(fault::inject(exec, ws, net.mac_layers(), golden,
                                           faults[i % faults.size()]));

  const std::uint64_t allocs_before =
      g_alloc_count.load(std::memory_order_relaxed);
  const auto t1 = Clock::now();
  for (std::size_t i = 0; i < kTrials; ++i)
    benchmark::DoNotOptimize(fault::inject(exec, ws, net.mac_layers(), golden,
                                           faults[i % faults.size()]));
  const auto t2 = Clock::now();
  const std::uint64_t allocs_after =
      g_alloc_count.load(std::memory_order_relaxed);

  r.ns_per_trial =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t2 - t1)
              .count()) /
      static_cast<double>(kTrials);
  r.allocations_per_trial =
      static_cast<double>(allocs_after - allocs_before) /
      static_cast<double>(kTrials);

  // Incremental-replay hot path: cache-seeded trials with masked-fault
  // early exit. Same zero-allocation contract as the golden-trace path —
  // the ActivationCache is immutable and replays touch only workspace slots.
  const dnn::ActivationCache<T> cache(net.plan(), input);
  for (std::size_t i = 0; i < kWarmup; ++i)
    benchmark::DoNotOptimize(fault::inject(exec, ws, net.mac_layers(), cache,
                                           faults[i % faults.size()]));
  const std::uint64_t inc_allocs_before =
      g_alloc_count.load(std::memory_order_relaxed);
  const auto t3 = Clock::now();
  for (std::size_t i = 0; i < kTrials; ++i)
    benchmark::DoNotOptimize(fault::inject(exec, ws, net.mac_layers(), cache,
                                           faults[i % faults.size()]));
  const auto t4 = Clock::now();
  const std::uint64_t inc_allocs_after =
      g_alloc_count.load(std::memory_order_relaxed);
  r.ns_per_trial_incremental =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t4 - t3)
              .count()) /
      static_cast<double>(kTrials);
  r.allocations_per_trial_incremental =
      static_cast<double>(inc_allocs_after - inc_allocs_before) /
      static_cast<double>(kTrials);
  return r;
}

// ---------------------------------------------------------------------------
// Streaming flat-memory section: the run_shard path must hold peak live heap
// roughly constant as trial count grows (the aggregates are O(blocks), the
// workers are O(pool)). Measured as peak-live growth over the campaign call
// at 256 vs 2048 trials; the delta must stay within a small slack.
// ---------------------------------------------------------------------------

struct StreamingReport {
  std::size_t small_trials = 256;
  std::size_t large_trials = 2048;
  std::uint64_t peak_growth_small = 0;  ///< bytes
  std::uint64_t peak_growth_large = 0;  ///< bytes
  bool supported = DNNFI_HAVE_MALLOC_USABLE != 0;
};

std::uint64_t measure_streaming_peak(const fault::Campaign& campaign,
                                     std::size_t trials) {
  ThreadPool serial(0);
  fault::CampaignOptions opt;
  opt.trials = trials;
  opt.seed = 99;
  opt.record_block_distances = true;
  opt.pool = &serial;
  const std::uint64_t before = g_live_bytes.load(std::memory_order_relaxed);
  g_peak_live.store(before, std::memory_order_relaxed);
  auto res = campaign.run_shard(opt, fault::ShardSpec{});
  benchmark::DoNotOptimize(res);
  const std::uint64_t peak = g_peak_live.load(std::memory_order_relaxed);
  return peak > before ? peak - before : 0;
}

StreamingReport measure_streaming_memory() {
  StreamingReport r;
  if (!r.supported) return r;
  const NetContext& ctx = ctx_for(NetworkId::kConvNet);
  const fault::Campaign campaign(ctx.model.spec, ctx.model.blob,
                                 numeric::DType::kFloat16, ctx.inputs);
  // Warm-up run so one-time lazy state (sampler tables, etc.) is excluded.
  (void)measure_streaming_peak(campaign, 64);
  r.peak_growth_small = measure_streaming_peak(campaign, r.small_trials);
  r.peak_growth_large = measure_streaming_peak(campaign, r.large_trials);
  return r;
}

// ---------------------------------------------------------------------------
// Per-kernel GFLOP/s: every registered kernel set (scalar reference, avx2,
// avx2-relaxed where the CPU has them) on fixed conv / fully-connected
// shapes, driven through the kernels API directly — the packed layout is
// interleaved once outside the timed loop, as Workspace::bind does.
// ---------------------------------------------------------------------------

struct KernelCell {
  std::string dtype;
  std::string set;
  std::string op;  ///< "conv" or "fc"
  double gflops = 0;
  bool bit_identical = true;
};

template <typename Fn>
double time_gflops(double flops_per_call, Fn&& call) {
  using Clock = std::chrono::steady_clock;
  call();  // warm
  std::size_t reps = 1;
  for (;;) {
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < reps; ++i) call();
    const double secs =
        std::chrono::duration<double>(Clock::now() - t0).count();
    if (secs >= 0.05 || reps >= (std::size_t{1} << 20))
      return flops_per_call * static_cast<double>(reps) / secs / 1e9;
    reps *= 2;
  }
}

template <typename T>
void bench_kernel_sets(const char* dtype, std::vector<KernelCell>& cells) {
  namespace k = dnn::kernels;
  const k::ConvGeom g{16, 16, 16, 32, 16, 16, 3, 1, 1};
  const k::FcGeom fg{1024, 1024};
  auto val = [](std::size_t i) {
    return numeric::numeric_traits<T>::from_double(
        0.03125 * static_cast<double>(i % 64) - 1.0);
  };
  std::vector<T> cin(g.in_c * g.in_h * g.in_w), cw(g.out_c * g.steps()),
      cbias(g.out_c), cout(g.out_c * g.out_h * g.out_w);
  std::vector<T> fin(fg.in), fw(fg.out * fg.in), fbias(fg.out), fout(fg.out);
  for (std::size_t i = 0; i < cin.size(); ++i) cin[i] = val(i);
  for (std::size_t i = 0; i < cw.size(); ++i) cw[i] = val(i + 7);
  for (std::size_t i = 0; i < cbias.size(); ++i) cbias[i] = val(i + 3);
  for (std::size_t i = 0; i < fin.size(); ++i) fin[i] = val(i);
  for (std::size_t i = 0; i < fw.size(); ++i) fw[i] = val(i + 11);
  for (std::size_t i = 0; i < fbias.size(); ++i) fbias[i] = val(i + 5);
  const double conv_flops =
      2.0 * static_cast<double>(cout.size() * g.steps());
  const double fc_flops = 2.0 * static_cast<double>(fg.in * fg.out);

  for (const char* name : k::registered_names<T>()) {
    const k::KernelSet<T>* ks = k::kernel_set<T>(name);
    if (ks == nullptr) continue;
    std::vector<T> cpacked(
        k::packed_elems(g.out_c, g.steps(), ks->pack_lanes));
    std::vector<T> fpacked(k::packed_elems(fg.out, fg.in, ks->pack_lanes));
    if (ks->pack_lanes > 0) {
      k::pack_rows(cw.data(), g.out_c, g.steps(), ks->pack_lanes,
                   cpacked.data());
      k::pack_rows(fw.data(), fg.out, fg.in, ks->pack_lanes, fpacked.data());
    }
    const T* cp = cpacked.empty() ? nullptr : cpacked.data();
    const T* fp = fpacked.empty() ? nullptr : fpacked.data();
    KernelCell conv{dtype, name, "conv", 0, ks->bit_identical};
    conv.gflops = time_gflops(conv_flops, [&] {
      ks->conv(g, cin.data(), cw.data(), cp, cbias.data(), cout.data());
      benchmark::DoNotOptimize(cout.data());
    });
    cells.push_back(conv);
    KernelCell fc{dtype, name, "fc", 0, ks->bit_identical};
    fc.gflops = time_gflops(fc_flops, [&] {
      ks->fc(fg, fin.data(), fw.data(), fp, fbias.data(), fout.data());
      benchmark::DoNotOptimize(fout.data());
    });
    cells.push_back(fc);
  }
}

std::vector<KernelCell> measure_kernel_gflops() {
  std::vector<KernelCell> cells;
  bench_kernel_sets<float>("float", cells);
  bench_kernel_sets<numeric::Half>("float16", cells);
  bench_kernel_sets<double>("double", cells);
  return cells;
}

// ---------------------------------------------------------------------------
// Per-layer-kind wall-time profile of the fault-free forward pass: each plan
// step is timed individually (the steps are microseconds-scale, so the
// clock-read overhead is in the noise) and aggregated by LayerKind. This is
// the Amdahl accounting for the kernel work: it shows where a forward pass
// actually spends its time once conv/FC are vectorized.
// ---------------------------------------------------------------------------

struct LayerKindCost {
  std::string network;
  std::string dtype;
  std::string kind;
  double ns_per_forward = 0;
  double share = 0;  ///< fraction of that network+dtype's total
};

template <typename T>
void profile_layer_kinds(const char* netname, const char* dtype, NetworkId id,
                         std::vector<LayerKindCost>& out) {
  using Clock = std::chrono::steady_clock;
  constexpr std::size_t kWarm = 8;
  constexpr std::size_t kReps = 64;
  const NetContext& ctx = ctx_for(id);
  const auto net = dnn::instantiate<T>(ctx.model.spec, ctx.model.blob);
  const auto& plan = net.plan();
  dnn::Workspace<T> ws(plan);
  const auto input = tensor::convert<T>(ctx.inputs[0].image);
  const auto& steps = plan.steps();
  std::map<dnn::LayerKind, double> acc;
  const auto drive = [&](bool timed) {
    tensor::ConstTensorView<T> cur = input.view();
    unsigned parity = 0;
    for (std::size_t i = 0; i < steps.size(); ++i) {
      tensor::TensorView<T> o = ws.out_buffer(parity, steps[i].out_shape);
      const auto t0 = Clock::now();
      plan.exec_step(i, cur, o, ws.packed_data());
      if (timed)
        acc[steps[i].layer->kind()] += static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                 t0)
                .count());
      cur = o;
      parity ^= 1U;
    }
    benchmark::DoNotOptimize(cur);
  };
  for (std::size_t i = 0; i < kWarm; ++i) drive(false);
  for (std::size_t i = 0; i < kReps; ++i) drive(true);
  double total = 0;
  for (const auto& [kind, ns] : acc) total += ns;
  for (const auto& [kind, ns] : acc)
    out.push_back({netname, dtype, dnn::layer_kind_name(kind),
                   ns / static_cast<double>(kReps),
                   total > 0 ? ns / total : 0});
}

std::vector<LayerKindCost> measure_layer_profile() {
  std::vector<LayerKindCost> cells;
  profile_layer_kinds<numeric::Half>("AlexNet-S", "float16",
                                     NetworkId::kAlexNetS, cells);
  profile_layer_kinds<float>("AlexNet-S", "float", NetworkId::kAlexNetS,
                             cells);
  profile_layer_kinds<numeric::Half>("ConvNet", "float16", NetworkId::kConvNet,
                                     cells);
  return cells;
}

void write_json(const AllocatorReport& r, const StreamingReport& s,
                const std::vector<KernelCell>& kc,
                const std::vector<LayerKindCost>& lp, const std::string& path) {
  std::ostringstream out;
  out << "{\n"
      << "  \"network\": \"ConvNet\",\n"
      << "  \"datapath\": \"float16\",\n"
      << "  \"trials\": " << r.trials << ",\n"
      << "  \"ns_per_inference\": " << r.ns_per_inference << ",\n"
      << "  \"ns_per_trial\": " << r.ns_per_trial << ",\n"
      << "  \"allocations_per_trial\": " << r.allocations_per_trial << ",\n"
      << "  \"ns_per_trial_incremental\": " << r.ns_per_trial_incremental
      << ",\n"
      << "  \"allocations_per_trial_incremental\": "
      << r.allocations_per_trial_incremental << ",\n"
      << "  \"streaming_peak_bytes_256\": " << s.peak_growth_small << ",\n"
      << "  \"streaming_peak_bytes_2048\": " << s.peak_growth_large << ",\n";
  const auto prof = dnn::kernels::kernel_profile();
  out << "  \"kernels\": {\"mode\": \"" << prof.mode
      << "\", \"cpu_avx2\": " << (prof.cpu_avx2 ? "true" : "false")
      << ", \"cpu_avx512\": " << (prof.cpu_avx512 ? "true" : "false")
      << ", \"cpu_f16c\": " << (prof.cpu_f16c ? "true" : "false")
      << ", \"f16c_compiled\": " << (prof.f16c_compiled ? "true" : "false")
      << ", \"active_float\": \"" << prof.active_float
      << "\", \"active_float16\": \"" << prof.active_float16 << "\"},\n"
      << "  \"kernel_gflops\": [\n";
  for (std::size_t i = 0; i < kc.size(); ++i) {
    const KernelCell& c = kc[i];
    out << "    {\"dtype\": \"" << c.dtype << "\", \"set\": \"" << c.set
        << "\", \"op\": \"" << c.op << "\", \"gflops\": " << c.gflops
        << ", \"bit_identical\": " << (c.bit_identical ? "true" : "false")
        << "}" << (i + 1 < kc.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"layer_profile\": [\n";
  for (std::size_t i = 0; i < lp.size(); ++i) {
    const LayerKindCost& c = lp[i];
    out << "    {\"network\": \"" << c.network << "\", \"dtype\": \""
        << c.dtype << "\", \"kind\": \"" << c.kind
        << "\", \"ns_per_forward\": " << c.ns_per_forward
        << ", \"share\": " << c.share << "}"
        << (i + 1 < lp.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  if (!dnnfi::write_file_atomic(path, out.str()))
    std::cerr << "warning: could not write " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  const AllocatorReport r = measure_hot_path();
  const StreamingReport s = measure_streaming_memory();
  const std::vector<KernelCell> kc = measure_kernel_gflops();
  const std::vector<LayerKindCost> lp = measure_layer_profile();
  std::filesystem::create_directories(results_dir());
  const std::string json = results_dir() + "/BENCH_perf_micro.json";
  write_json(r, s, kc, lp, json);
  std::printf("\nper-kernel throughput (GFLOP/s, fixed conv 32c16x16k3 / fc "
              "1024x1024):\n");
  for (const KernelCell& c : kc)
    std::printf("  %-8s %-13s %-4s %8.2f%s\n", c.dtype.c_str(), c.set.c_str(),
                c.op.c_str(), c.gflops,
                c.bit_identical ? "" : "  (tolerance mode)");
  std::printf("\nper-layer-kind wall time of a fault-free forward:\n");
  for (const LayerKindCost& c : lp)
    std::printf("  %-10s %-8s %-14s %10.0f ns  %5.1f%%\n", c.network.c_str(),
                c.dtype.c_str(), c.kind.c_str(), c.ns_per_forward,
                100.0 * c.share);
  std::printf(
      "\ncompiled-engine hot path (ConvNet, float16, counting allocator):\n"
      "  ns/inference:                    %.0f\n"
      "  ns/trial (full replay):          %.0f\n"
      "  allocations/trial:               %g\n"
      "  ns/trial (incremental replay):   %.0f\n"
      "  allocations/trial (incremental): %g\n"
      "streaming run_shard peak live-heap growth:\n"
      "  %zu trials:  %llu bytes\n"
      "  %zu trials: %llu bytes\n"
      "[json] %s\n",
      r.ns_per_inference, r.ns_per_trial, r.allocations_per_trial,
      r.ns_per_trial_incremental, r.allocations_per_trial_incremental,
      s.small_trials,
      static_cast<unsigned long long>(s.peak_growth_small), s.large_trials,
      static_cast<unsigned long long>(s.peak_growth_large), json.c_str());
  bool fail = false;
  if (r.allocations_per_trial > 0) {
    std::fprintf(stderr,
                 "FAIL: faulty hot path allocated %g times per trial; the "
                 "zero-allocation contract is broken\n",
                 r.allocations_per_trial);
    fail = true;
  }
  if (r.allocations_per_trial_incremental > 0) {
    std::fprintf(stderr,
                 "FAIL: incremental-replay hot path allocated %g times per "
                 "trial; the zero-allocation contract is broken\n",
                 r.allocations_per_trial_incremental);
    fail = true;
  }
  // 8x the trials must not cost more than a small fixed slack of extra peak
  // heap: the streaming path's memory is flat in trial count.
  constexpr std::uint64_t kFlatSlackBytes = 256 * 1024;
  if (s.supported &&
      s.peak_growth_large > s.peak_growth_small + kFlatSlackBytes) {
    std::fprintf(stderr,
                 "FAIL: streaming campaign peak heap grew from %llu to %llu "
                 "bytes between %zu and %zu trials; the flat-memory "
                 "contract is broken\n",
                 static_cast<unsigned long long>(s.peak_growth_small),
                 static_cast<unsigned long long>(s.peak_growth_large),
                 s.small_trials, s.large_trials);
    fail = true;
  }
  return fail ? 1 : 0;
}
