// google-benchmark microbenchmarks: inference latency per network and data
// type, injection fast-path overhead (golden-trace reuse), and campaign
// throughput. These quantify the engineering claims of the harness itself
// rather than a paper table.
//
// Beyond the google-benchmark tables, the binary runs a dedicated
// counting-allocator measurement of the compiled-plan engine and writes
// BENCH_perf_micro.json (ns/inference, ns/trial, allocations/trial) into
// the results directory. It exits nonzero if the faulty hot path performs
// any heap allocation per trial after warm-up — the engine's zero-alloc
// contract is enforced here, not just documented.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <new>

#include "bench_util.h"
#include "dnnfi/fault/injector.h"
#include "dnnfi/fault/sampler.h"

// ---------------------------------------------------------------------------
// Counting allocator: every operator new/delete in the process routes through
// malloc/free with an atomic tally. Relaxed ordering is fine — the measured
// loops are single-threaded and the counter is only read at section edges.
// ---------------------------------------------------------------------------
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   size ? size : 1))
    return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
// GCC flags free() inside operator delete as a new/free mismatch; every
// operator new above routes through malloc/aligned_alloc, so it is not one.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
#pragma GCC diagnostic pop

using namespace dnnfi;
using namespace dnnfi::benchutil;

namespace {

/// Cached contexts so model loading happens once per process.
const NetContext& ctx_for(NetworkId id) {
  static std::map<NetworkId, NetContext> cache;
  auto it = cache.find(id);
  if (it == cache.end()) it = cache.emplace(id, load_net(id, 2)).first;
  return it->second;
}

template <typename T>
void run_inference(benchmark::State& state, NetworkId id) {
  const NetContext& ctx = ctx_for(id);
  const auto net = dnn::instantiate<T>(ctx.model.spec, ctx.model.blob);
  const dnn::Executor<T> exec(net.plan());
  dnn::Workspace<T> ws(net.plan());
  const auto input = tensor::convert<T>(ctx.inputs[0].image);
  dnn::RunRequest<T> req;
  req.input = input;
  for (auto _ : state) {
    auto out = exec.run(ws, req);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(net.total_macs()));
}

void BM_Inference_ConvNet_Float(benchmark::State& s) {
  run_inference<float>(s, NetworkId::kConvNet);
}
void BM_Inference_ConvNet_Half(benchmark::State& s) {
  run_inference<numeric::Half>(s, NetworkId::kConvNet);
}
void BM_Inference_ConvNet_Fx16(benchmark::State& s) {
  run_inference<numeric::Fx16r10>(s, NetworkId::kConvNet);
}
void BM_Inference_AlexNetS_Float(benchmark::State& s) {
  run_inference<float>(s, NetworkId::kAlexNetS);
}
void BM_Inference_NiNS_Float(benchmark::State& s) {
  run_inference<float>(s, NetworkId::kNiNS);
}
BENCHMARK(BM_Inference_ConvNet_Float)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Inference_ConvNet_Half)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Inference_ConvNet_Fx16)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Inference_AlexNetS_Float)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Inference_NiNS_Float)->Unit(benchmark::kMillisecond);

/// One faulty inference via the golden-trace fast path on the compiled
/// engine, vs a full forward.
void BM_Injection_FastPath(benchmark::State& state) {
  const NetContext& ctx = ctx_for(NetworkId::kConvNet);
  const auto net =
      dnn::instantiate<numeric::Half>(ctx.model.spec, ctx.model.blob);
  const dnn::Executor<numeric::Half> exec(net.plan());
  dnn::Workspace<numeric::Half> ws(net.plan());
  const auto input = tensor::convert<numeric::Half>(ctx.inputs[0].image);
  const auto golden = net.forward_trace(input);
  fault::Sampler sampler(ctx.model.spec, numeric::DType::kFloat16);
  Rng rng(1);
  for (auto _ : state) {
    const auto f = sampler.sample(fault::SiteClass::kDatapathLatch, rng);
    auto out = fault::inject(exec, ws, net.mac_layers(), golden, f);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_Injection_FastPath)->Unit(benchmark::kMillisecond);

void BM_Campaign_100Trials(benchmark::State& state) {
  const NetContext& ctx = ctx_for(NetworkId::kConvNet);
  fault::Campaign campaign(ctx.model.spec, ctx.model.blob,
                           numeric::DType::kFloat16, ctx.inputs);
  for (auto _ : state) {
    fault::CampaignOptions opt;
    opt.trials = 100;
    opt.seed = static_cast<std::uint64_t>(state.iterations());
    auto r = campaign.run(opt);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 100);
}
BENCHMARK(BM_Campaign_100Trials)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Counting-allocator section. Single-threaded on ConvNet/Half, the campaign's
// default datapath: measures the compiled engine directly and enforces the
// zero-allocation contract of the faulty hot path.
// ---------------------------------------------------------------------------

struct AllocatorReport {
  double ns_per_inference = 0;
  double ns_per_trial = 0;
  double allocations_per_trial = 0;
  std::size_t trials = 0;
};

AllocatorReport measure_hot_path() {
  using T = numeric::Half;
  using Clock = std::chrono::steady_clock;
  constexpr std::size_t kWarmup = 32;
  constexpr std::size_t kTrials = 1000;
  constexpr std::size_t kInferences = 200;

  const NetContext& ctx = ctx_for(NetworkId::kConvNet);
  const auto net = dnn::instantiate<T>(ctx.model.spec, ctx.model.blob);
  const dnn::Executor<T> exec(net.plan());
  dnn::Workspace<T> ws(net.plan());
  const auto input = tensor::convert<T>(ctx.inputs[0].image);
  const auto golden = net.forward_trace(input);

  // Pre-sample descriptors over every site class so the measured loop covers
  // all four fault-lowering paths without touching the sampler.
  fault::Sampler sampler(ctx.model.spec, numeric::DType::kFloat16);
  Rng rng(7);
  std::vector<fault::FaultDescriptor> faults;
  faults.reserve(256);
  for (std::size_t i = 0; i < 256; ++i)
    faults.push_back(sampler.sample(
        fault::kAllSiteClasses[i % fault::kAllSiteClasses.size()], rng));

  AllocatorReport r;
  r.trials = kTrials;

  // Plain inference timing (steady state, workspace warm).
  for (std::size_t i = 0; i < 8; ++i) {
    dnn::RunRequest<T> req;
    req.input = input;
    benchmark::DoNotOptimize(exec.run(ws, req));
  }
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < kInferences; ++i) {
    dnn::RunRequest<T> req;
    req.input = input;
    benchmark::DoNotOptimize(exec.run(ws, req));
  }
  r.ns_per_inference =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                               t0)
              .count()) /
      static_cast<double>(kInferences);

  // Faulty-path warm-up, then the measured window.
  for (std::size_t i = 0; i < kWarmup; ++i)
    benchmark::DoNotOptimize(fault::inject(exec, ws, net.mac_layers(), golden,
                                           faults[i % faults.size()]));

  const std::uint64_t allocs_before =
      g_alloc_count.load(std::memory_order_relaxed);
  const auto t1 = Clock::now();
  for (std::size_t i = 0; i < kTrials; ++i)
    benchmark::DoNotOptimize(fault::inject(exec, ws, net.mac_layers(), golden,
                                           faults[i % faults.size()]));
  const auto t2 = Clock::now();
  const std::uint64_t allocs_after =
      g_alloc_count.load(std::memory_order_relaxed);

  r.ns_per_trial =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t2 - t1)
              .count()) /
      static_cast<double>(kTrials);
  r.allocations_per_trial =
      static_cast<double>(allocs_after - allocs_before) /
      static_cast<double>(kTrials);
  return r;
}

void write_json(const AllocatorReport& r, const std::string& path) {
  std::ofstream out(path);
  out << "{\n"
      << "  \"network\": \"ConvNet\",\n"
      << "  \"datapath\": \"float16\",\n"
      << "  \"trials\": " << r.trials << ",\n"
      << "  \"ns_per_inference\": " << r.ns_per_inference << ",\n"
      << "  \"ns_per_trial\": " << r.ns_per_trial << ",\n"
      << "  \"allocations_per_trial\": " << r.allocations_per_trial << "\n"
      << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  const AllocatorReport r = measure_hot_path();
  std::filesystem::create_directories(results_dir());
  const std::string json = results_dir() + "/BENCH_perf_micro.json";
  write_json(r, json);
  std::printf(
      "\ncompiled-engine hot path (ConvNet, float16, counting allocator):\n"
      "  ns/inference:      %.0f\n"
      "  ns/trial:          %.0f\n"
      "  allocations/trial: %g\n"
      "[json] %s\n",
      r.ns_per_inference, r.ns_per_trial, r.allocations_per_trial,
      json.c_str());
  if (r.allocations_per_trial > 0) {
    std::fprintf(stderr,
                 "FAIL: faulty hot path allocated %g times per trial; the "
                 "zero-allocation contract is broken\n",
                 r.allocations_per_trial);
    return 1;
  }
  return 0;
}
