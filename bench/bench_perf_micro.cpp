// google-benchmark microbenchmarks: inference latency per network and data
// type, injection fast-path overhead (golden-trace reuse), and campaign
// throughput. These quantify the engineering claims of the harness itself
// rather than a paper table.
#include <benchmark/benchmark.h>

#include "bench_util.h"

using namespace dnnfi;
using namespace dnnfi::benchutil;

namespace {

/// Cached contexts so model loading happens once per process.
const NetContext& ctx_for(NetworkId id) {
  static std::map<NetworkId, NetContext> cache;
  auto it = cache.find(id);
  if (it == cache.end()) it = cache.emplace(id, load_net(id, 2)).first;
  return it->second;
}

template <typename T>
void run_inference(benchmark::State& state, NetworkId id) {
  const NetContext& ctx = ctx_for(id);
  const auto net = dnn::instantiate<T>(ctx.model.spec, ctx.model.blob);
  const auto input = tensor::convert<T>(ctx.inputs[0].image);
  for (auto _ : state) {
    auto out = net.forward(input);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(net.total_macs()));
}

void BM_Inference_ConvNet_Float(benchmark::State& s) {
  run_inference<float>(s, NetworkId::kConvNet);
}
void BM_Inference_ConvNet_Half(benchmark::State& s) {
  run_inference<numeric::Half>(s, NetworkId::kConvNet);
}
void BM_Inference_ConvNet_Fx16(benchmark::State& s) {
  run_inference<numeric::Fx16r10>(s, NetworkId::kConvNet);
}
void BM_Inference_AlexNetS_Float(benchmark::State& s) {
  run_inference<float>(s, NetworkId::kAlexNetS);
}
void BM_Inference_NiNS_Float(benchmark::State& s) {
  run_inference<float>(s, NetworkId::kNiNS);
}
BENCHMARK(BM_Inference_ConvNet_Float)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Inference_ConvNet_Half)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Inference_ConvNet_Fx16)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Inference_AlexNetS_Float)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Inference_NiNS_Float)->Unit(benchmark::kMillisecond);

/// One faulty inference via the golden-trace fast path, vs a full forward.
void BM_Injection_FastPath(benchmark::State& state) {
  const NetContext& ctx = ctx_for(NetworkId::kConvNet);
  const auto net = dnn::instantiate<numeric::Half>(ctx.model.spec, ctx.model.blob);
  const auto input = tensor::convert<numeric::Half>(ctx.inputs[0].image);
  const auto golden = net.forward_trace(input);
  fault::Sampler sampler(ctx.model.spec, numeric::DType::kFloat16);
  Rng rng(1);
  for (auto _ : state) {
    const auto f = sampler.sample(fault::SiteClass::kDatapathLatch, rng);
    auto out = fault::inject(net, golden, f);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_Injection_FastPath)->Unit(benchmark::kMillisecond);

void BM_Campaign_100Trials(benchmark::State& state) {
  const NetContext& ctx = ctx_for(NetworkId::kConvNet);
  fault::Campaign campaign(ctx.model.spec, ctx.model.blob,
                           numeric::DType::kFloat16, ctx.inputs);
  for (auto _ : state) {
    fault::CampaignOptions opt;
    opt.trials = 100;
    opt.seed = static_cast<std::uint64_t>(state.iterations());
    auto r = campaign.run(opt);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 100);
}
BENCHMARK(BM_Campaign_100Trials)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
