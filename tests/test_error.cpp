// The error taxonomy, locked down: Errc <-> exit-code mapping is a
// round-trip (it is the supervisor/worker process-boundary protocol),
// retryability is classified the way the supervisor's retry policy
// assumes, Expected carries exactly one of value/error, and every
// checkpoint / stats / atomic-file failure path reports the typed code
// the supervisor dispatches on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "dnnfi/common/atomic_file.h"
#include "dnnfi/common/error.h"
#include "dnnfi/fault/checkpoint.h"
#include "dnnfi/fault/stats_io.h"

namespace dnnfi {
namespace {

namespace fs = std::filesystem;

constexpr Errc kAllCodes[] = {
    Errc::kOk,          Errc::kIo,
    Errc::kOutOfMemory, Errc::kTimeout,
    Errc::kWorkerCrash, Errc::kInterrupted,
    Errc::kTransport,   Errc::kCheckpointShip,
    Errc::kCorruptData, Errc::kVersionSkew,
    Errc::kFingerprintMismatch, Errc::kShardMismatch,
    Errc::kInvalidArgument, Errc::kQuarantineOverflow,
    Errc::kNoHosts,     Errc::kInternal};

TEST(Errc, ExitCodeRoundTripsForEveryCode) {
  for (const Errc c : kAllCodes) {
    const int ec = exit_code(c);
    EXPECT_EQ(errc_from_exit(ec), c) << errc_name(c);
  }
  // Unknown statuses (a worker that called exit(1), a shell's 127) classify
  // as kInternal: retried once, then bisected -- never treated as success.
  EXPECT_EQ(errc_from_exit(1), Errc::kInternal);
  EXPECT_EQ(errc_from_exit(127), Errc::kInternal);
  EXPECT_EQ(errc_from_exit(99), Errc::kInternal);
}

TEST(Errc, RetryablePartitionsTransientFromFatal) {
  // Transient: retrying can plausibly succeed.
  for (const Errc c : {Errc::kIo, Errc::kOutOfMemory, Errc::kTimeout,
                       Errc::kWorkerCrash, Errc::kInterrupted, Errc::kTransport,
                       Errc::kCheckpointShip, Errc::kInternal})
    EXPECT_TRUE(retryable(c)) << errc_name(c);
  // Fatal: the same inputs fail the same way; retrying wastes the budget
  // and bisecting would quarantine every trial.
  for (const Errc c : {Errc::kOk, Errc::kCorruptData, Errc::kVersionSkew,
                       Errc::kFingerprintMismatch, Errc::kShardMismatch,
                       Errc::kInvalidArgument, Errc::kQuarantineOverflow,
                       Errc::kNoHosts})
    EXPECT_FALSE(retryable(c)) << errc_name(c);
}

TEST(Errc, ExitCodesAreDistinctAndShellSafe) {
  std::vector<int> seen;
  for (const Errc c : kAllCodes) {
    const int ec = exit_code(c);
    EXPECT_GE(ec, 0);
    EXPECT_LT(ec, 126);  // stay clear of shell's 126/127/128+signal range
    EXPECT_EQ(std::count(seen.begin(), seen.end(), ec), 0)
        << "duplicate exit code " << ec;
    seen.push_back(ec);
  }
}

TEST(Expected, ValueSideRoundTrips) {
  Expected<int> e = 42;
  ASSERT_TRUE(e.ok());
  ASSERT_TRUE(static_cast<bool>(e));
  EXPECT_EQ(e.value(), 42);
  EXPECT_EQ(e.value_or(-1), 42);
}

TEST(Expected, ErrorSideCarriesCodeAndMessage) {
  Expected<int> e = fail(Errc::kTimeout, "heartbeat missed");
  ASSERT_FALSE(e.ok());
  EXPECT_EQ(e.error().code, Errc::kTimeout);
  EXPECT_TRUE(e.error().retryable());
  EXPECT_EQ(e.error().message, "heartbeat missed");
  EXPECT_EQ(e.error().to_string(), "timeout: heartbeat missed");
  EXPECT_EQ(e.value_or(-1), -1);
}

TEST(Expected, VoidSpecialization) {
  Expected<void> good;
  EXPECT_TRUE(good.ok());
  Expected<void> bad = fail(Errc::kIo, "disk full");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, Errc::kIo);
}

TEST(AtomicFile, FailureToUnwritableDirIsIoAndTargetUntouched) {
  const auto r = write_file_atomic("/nonexistent-dir/x/y.txt", "hi");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::kIo);
  EXPECT_FALSE(fs::exists("/nonexistent-dir/x/y.txt"));
}

TEST(AtomicFile, SuccessLeavesNoTmpSibling) {
  const std::string path =
      (fs::temp_directory_path() / "dnnfi_atomic_test.txt").string();
  ASSERT_TRUE(write_file_atomic(path, "payload").ok());
  std::ifstream in(path);
  std::string body((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_EQ(body, "payload");
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  fs::remove(path);
}

class CheckpointErrors : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-test directory: ctest runs the fixture's tests in parallel
    // processes, and a shared directory would let one test's TearDown
    // delete another's checkpoint mid-load.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::temp_directory_path() /
           (std::string("dnnfi_test_error_ckpt_") + info->name());
    fs::create_directories(dir_);
    path_ = (dir_ / "shard.ckpt").string();
  }
  void TearDown() override { fs::remove_all(dir_); }

  fault::ShardCheckpoint sample() const {
    fault::ShardCheckpoint ck;
    ck.fingerprint = 0xDEADBEEFCAFEF00DULL;
    ck.network = "tiny";
    ck.trials_total = 96;
    ck.shard_begin = 0;
    ck.shard_end = 48;
    ck.next_trial = 48;
    ck.complete = true;
    ck.masked_exits = 7;
    return ck;
  }

  std::string read_all() const {
    std::ifstream in(path_, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  }
  void write_all(const std::string& bytes) const {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out << bytes;
  }

  fs::path dir_;
  std::string path_;
};

TEST_F(CheckpointErrors, LoadNonexistentIsIo) {
  const auto r = fault::try_load_shard_checkpoint(path_ + ".missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::kIo);
  EXPECT_TRUE(r.error().retryable());
}

TEST_F(CheckpointErrors, SaveToUnwritableDirIsIo) {
  const auto r = fault::try_save_shard_checkpoint(
      "/nonexistent-dir/x/shard.ckpt", sample());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::kIo);
}

TEST_F(CheckpointErrors, FlippedPayloadByteIsCorruptData) {
  ASSERT_TRUE(fault::try_save_shard_checkpoint(path_, sample()).ok());
  std::string bytes = read_all();
  ASSERT_GT(bytes.size(), 30u);
  bytes[bytes.size() - 3] ^= 0x40;  // payload flip breaks the CRC
  write_all(bytes);
  const auto r = fault::try_load_shard_checkpoint(path_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::kCorruptData);
  EXPECT_FALSE(r.error().retryable());
}

TEST_F(CheckpointErrors, BadMagicIsCorruptData) {
  ASSERT_TRUE(fault::try_save_shard_checkpoint(path_, sample()).ok());
  std::string bytes = read_all();
  bytes[0] = 'X';
  write_all(bytes);
  const auto r = fault::try_load_shard_checkpoint(path_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::kCorruptData);
}

TEST_F(CheckpointErrors, UnknownVersionIsVersionSkew) {
  ASSERT_TRUE(fault::try_save_shard_checkpoint(path_, sample()).ok());
  std::string bytes = read_all();
  bytes[8] = 9;  // version field, little-endian u32 at offset 8
  write_all(bytes);
  const auto r = fault::try_load_shard_checkpoint(path_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::kVersionSkew);
  EXPECT_FALSE(r.error().retryable());
}

TEST_F(CheckpointErrors, ThrowingWrapperCarriesTheSameCode) {
  std::string bytes;
  {
    ASSERT_TRUE(fault::try_save_shard_checkpoint(path_, sample()).ok());
    bytes = read_all();
    bytes[8] = 9;
    write_all(bytes);
  }
  try {
    (void)fault::load_shard_checkpoint(path_);
    FAIL() << "expected CheckpointError";
  } catch (const fault::CheckpointError& e) {
    EXPECT_EQ(e.code(), Errc::kVersionSkew);
  }
}

TEST_F(CheckpointErrors, AbortedTrialsRoundTripInV3) {
  fault::ShardCheckpoint ck = sample();
  ck.aborted_trials = {5, 17, 40};
  ASSERT_TRUE(fault::try_save_shard_checkpoint(path_, ck).ok());
  const auto r = fault::try_load_shard_checkpoint(path_);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().aborted_trials, (std::vector<std::uint64_t>{5, 17, 40}));
  EXPECT_EQ(r.value().masked_exits, 7u);
  EXPECT_EQ(r.value().fingerprint, ck.fingerprint);
}

TEST_F(CheckpointErrors, V3FileIsRejectedWithVersionSkew) {
  // A pre-geometry (v3) checkpoint lacks the accel/fault_op identity
  // strings; reading its payload under the v4 layout would shift every
  // subsequent field. The version gate must reject it as typed skew, not
  // let it parse.
  ASSERT_TRUE(fault::try_save_shard_checkpoint(path_, sample()).ok());
  std::string bytes = read_all();
  bytes[8] = 3;  // version field, little-endian u32 at offset 8
  write_all(bytes);
  const auto r = fault::try_load_shard_checkpoint(path_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::kVersionSkew);
  EXPECT_FALSE(r.error().retryable());
  EXPECT_NE(r.error().message.find("version 3"), std::string::npos);
}

TEST_F(CheckpointErrors, AcceleratorAxesRoundTrip) {
  fault::ShardCheckpoint ck = sample();
  ck.accel = "systolic:16x16";
  ck.fault_op = "set1:4";
  ASSERT_TRUE(fault::try_save_shard_checkpoint(path_, ck).ok());
  const auto r = fault::try_load_shard_checkpoint(path_);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().accel, "systolic:16x16");
  EXPECT_EQ(r.value().fault_op, "set1:4");
}

TEST_F(CheckpointErrors, MismatchedAcceleratorIsFingerprintMismatch) {
  fault::ShardCheckpoint ck = sample();
  ck.accel = "systolic:16x16";
  const auto r = fault::validate_checkpoint_axes(ck, "eyeriss", "toggle");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::kFingerprintMismatch);
  EXPECT_FALSE(r.error().retryable());
  EXPECT_NE(r.error().message.find("systolic:16x16"), std::string::npos);
  EXPECT_NE(r.error().message.find("eyeriss"), std::string::npos);
}

TEST_F(CheckpointErrors, MismatchedFaultOpIsFingerprintMismatch) {
  fault::ShardCheckpoint ck = sample();  // default axes: eyeriss + toggle
  const auto r = fault::validate_checkpoint_axes(ck, "eyeriss", "set0:0x5");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::kFingerprintMismatch);
  EXPECT_NE(r.error().message.find("set0:0x5"), std::string::npos);
  // Matching axes validate clean.
  EXPECT_TRUE(fault::validate_checkpoint_axes(ck, "eyeriss", "toggle").ok());
}

TEST(StatsIo, WriteToUnwritableDirIsIo) {
  fault::OutcomeAccumulator acc;
  const auto r =
      fault::write_stats_file("/nonexistent-dir/x/s.stats", 1, acc, 0);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::kIo);
}

TEST(StatsIo, AbortedTrialsAreEnumeratedSorted) {
  fault::OutcomeAccumulator acc;
  std::ostringstream os;
  fault::write_stats(os, 42, acc, 3, {11, 2});
  const std::string s = os.str();
  EXPECT_NE(s.find("dnnfi-campaign-stats v3"), std::string::npos);
  EXPECT_NE(s.find("aborted 2\n"), std::string::npos);
  const auto a2 = s.find("aborted_trial 2\n");
  const auto a11 = s.find("aborted_trial 11\n");
  ASSERT_NE(a2, std::string::npos);
  ASSERT_NE(a11, std::string::npos);
  EXPECT_LT(a2, a11);  // ascending regardless of input order
}

TEST(StatsIo, NonDefaultAxesEmitV4HeaderWithIdentityLines) {
  fault::OutcomeAccumulator acc;
  std::ostringstream os;
  fault::write_stats(os, 42, acc, 0, {},
                     fault::StatsAxes{"systolic:8x8", "set1"});
  const std::string s = os.str();
  EXPECT_NE(s.find("dnnfi-campaign-stats v4\n"), std::string::npos);
  EXPECT_NE(s.find("accel systolic:8x8\n"), std::string::npos);
  EXPECT_NE(s.find("fault_op set1\n"), std::string::npos);
  // Default axes keep the exact v3 header: no accel/fault_op lines at all.
  std::ostringstream v3;
  fault::write_stats(v3, 42, acc, 0, {}, fault::StatsAxes{});
  EXPECT_NE(v3.str().find("dnnfi-campaign-stats v3\n"), std::string::npos);
  EXPECT_EQ(v3.str().find("accel "), std::string::npos);
  EXPECT_EQ(v3.str().find("fault_op "), std::string::npos);
}

TEST(StatsIo, CleanRunPrintsAbortedZero) {
  // Monolithic runs and clean supervised runs must produce identical
  // bytes, so the quarantine section must not vanish when empty.
  fault::OutcomeAccumulator acc;
  std::ostringstream os;
  fault::write_stats(os, 42, acc, 0);
  EXPECT_NE(os.str().find("aborted 0\n"), std::string::npos);
}

}  // namespace
}  // namespace dnnfi
