// Bit-exactness tests for the software binary16 implementation.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "dnnfi/numeric/dtype.h"
#include "dnnfi/numeric/half.h"
#include "dnnfi/numeric/traits.h"

namespace dnnfi::numeric {
namespace {

TEST(Half, KnownBitPatterns) {
  EXPECT_EQ(Half(0.0F).bits(), 0x0000U);
  EXPECT_EQ(Half(-0.0F).bits(), 0x8000U);
  EXPECT_EQ(Half(1.0F).bits(), 0x3C00U);
  EXPECT_EQ(Half(-1.0F).bits(), 0xBC00U);
  EXPECT_EQ(Half(2.0F).bits(), 0x4000U);
  EXPECT_EQ(Half(0.5F).bits(), 0x3800U);
  EXPECT_EQ(Half(65504.0F).bits(), 0x7BFFU);  // max finite
  EXPECT_EQ(Half(0.099976F).bits(), 0x2E66U); // ~0.1 rounded
}

TEST(Half, RoundTripAllFiniteBitPatterns) {
  // Every finite half converts to float and back without change —
  // an exhaustive property over the full 16-bit space.
  for (std::uint32_t b = 0; b <= 0xFFFFU; ++b) {
    const Half h = Half::from_bits(static_cast<std::uint16_t>(b));
    if (h.is_nan()) continue;  // NaN payloads may be canonicalized
    const Half back(static_cast<float>(h));
    EXPECT_EQ(back.bits(), h.bits()) << "bits=" << b;
  }
}

TEST(Half, OverflowToInfinity) {
  EXPECT_TRUE(Half(70000.0F).is_inf());
  EXPECT_TRUE(Half(-1e10F).is_inf());
  EXPECT_EQ(Half(65520.0F).bits(), 0x7C00U);  // rounds up past max -> inf
  EXPECT_EQ(Half(65519.0F).bits(), 0x7BFFU);  // rounds down to max
}

TEST(Half, SubnormalsExact) {
  // Smallest positive subnormal: 2^-24.
  const float tiny = std::ldexp(1.0F, -24);
  EXPECT_EQ(Half(tiny).bits(), 0x0001U);
  // Largest subnormal: (1023/1024) * 2^-14.
  const float big_sub = std::ldexp(1023.0F, -24);
  EXPECT_EQ(Half(big_sub).bits(), 0x03FFU);
  // Smallest normal: 2^-14.
  EXPECT_EQ(Half(std::ldexp(1.0F, -14)).bits(), 0x0400U);
  // Below half of the smallest subnormal rounds to zero.
  EXPECT_EQ(Half(std::ldexp(1.0F, -26)).bits(), 0x0000U);
}

TEST(Half, RoundToNearestEven) {
  // 1 + 2^-11 is exactly halfway between 1.0 and the next half; ties to
  // even keep 1.0 (mantissa LSB 0).
  const float halfway = 1.0F + std::ldexp(1.0F, -11);
  EXPECT_EQ(Half(halfway).bits(), 0x3C00U);
  // 1 + 3*2^-11 is halfway between nextafter(1) and the following value;
  // ties to even round mantissa 1 -> 2.
  const float halfway2 = 1.0F + 3.0F * std::ldexp(1.0F, -11);
  EXPECT_EQ(Half(halfway2).bits(), 0x3C02U);
  // Just above halfway rounds up.
  EXPECT_EQ(Half(halfway + std::ldexp(1.0F, -18)).bits(), 0x3C01U);
}

TEST(Half, NanPropagation) {
  const Half qnan(std::nanf(""));
  EXPECT_TRUE(qnan.is_nan());
  EXPECT_FALSE(qnan.is_inf());
  EXPECT_TRUE((qnan + Half(1.0F)).is_nan());
  EXPECT_FALSE(qnan == qnan);
}

TEST(Half, ArithmeticMatchesFloatWithRounding) {
  const Half a(1.5F), b(2.25F);
  EXPECT_EQ(static_cast<float>(a + b), 3.75F);
  EXPECT_EQ(static_cast<float>(a * b), 3.375F);
  EXPECT_EQ(static_cast<float>(a - b), -0.75F);
  EXPECT_EQ(static_cast<float>(-a), -1.5F);
}

TEST(Half, SaturatingAccumulationOverflows) {
  Half acc(60000.0F);
  acc += Half(60000.0F);
  EXPECT_TRUE(acc.is_inf());  // IEEE: overflow to +inf, not saturate
}

TEST(Half, Comparisons) {
  EXPECT_LT(Half(1.0F), Half(2.0F));
  EXPECT_GT(Half(-1.0F), Half(-2.0F));
  EXPECT_LE(Half(1.0F), Half(1.0F));
  EXPECT_TRUE(Half(0.0F) == Half(-0.0F));  // IEEE signed-zero equality
}

TEST(HalfTraits, WidthAndExponentField) {
  using Tr = numeric_traits<Half>;
  EXPECT_EQ(Tr::width, 16);
  EXPECT_TRUE(Tr::is_floating);
  EXPECT_EQ(Tr::exponent_lo, 10);
  EXPECT_EQ(Tr::exponent_hi, 15);
  EXPECT_EQ(Tr::max_magnitude(), 65504.0);
}

TEST(HalfTraits, FlipBitIsInvolution) {
  const Half v(3.14159F);
  for (int bit = 0; bit < 16; ++bit) {
    const Half flipped = flip_bit(v, bit);
    EXPECT_NE(flipped.bits(), v.bits());
    EXPECT_EQ(flip_bit(flipped, bit).bits(), v.bits());
  }
}

TEST(HalfTraits, FlipSignBit) {
  const Half v(2.5F);
  const Half f = flip_bit(v, 15);
  EXPECT_EQ(static_cast<float>(f), -2.5F);
}

TEST(HalfTraits, FlipTopExponentBitCausesLargeDeviation) {
  // A near-zero value with its high exponent bit set 0->1 becomes huge —
  // the mechanism behind the paper's Fig 4 asymmetry.
  const Half v(0.5F);
  EXPECT_TRUE(flip_is_zero_to_one(v, 14));
  const Half f = flip_bit(v, 14);
  EXPECT_GT(std::abs(static_cast<float>(f)), 1000.0F);
}

TEST(HalfTraits, FlipOutOfRangeThrows) {
  EXPECT_THROW(flip_bit(Half(1.0F), 16), dnnfi::ContractViolation);
  EXPECT_THROW(flip_bit(Half(1.0F), -1), dnnfi::ContractViolation);
}

TEST(DType, TagsRoundTripThroughDispatch) {
  for (const DType t : kAllDTypes) {
    const DType back = dispatch_dtype(t, []<typename T>() { return dtype_of<T>(); });
    EXPECT_EQ(back, t);
  }
}

// When the build uses F16C hardware conversions, the runtime path must agree
// bit-for-bit with the software reference (the constant-evaluation path).
// Exhaustive over all 65,536 half patterns in the half->float direction; the
// float->half direction covers every half-representable value, the exact
// midpoints between consecutive halves (round-to-nearest-even ties), their
// neighbors, specials, and a dense pseudo-random sweep.
TEST(Half, HardwareConversionMatchesSoftwareReference) {
  for (std::uint32_t b = 0; b <= 0xFFFFU; ++b) {
    const auto h = static_cast<std::uint16_t>(b);
    if ((h & 0x7C00U) == 0x7C00U && (h & 0x03FFU) != 0) continue;  // NaN
    const float hw = detail::half_bits_to_float(h);
    const float sw = detail::half_bits_to_float_sw(h);
    ASSERT_EQ(std::bit_cast<std::uint32_t>(hw), std::bit_cast<std::uint32_t>(sw))
        << "half bits 0x" << std::hex << b;
  }

  const auto check_f2h = [](float f) {
    ASSERT_EQ(detail::float_to_half_bits(f), detail::float_to_half_bits_sw(f))
        << "float bits 0x" << std::hex << std::bit_cast<std::uint32_t>(f);
  };
  for (std::uint32_t b = 0; b <= 0xFFFFU; ++b) {
    const auto h = static_cast<std::uint16_t>(b);
    if ((h & 0x7C00U) == 0x7C00U && (h & 0x03FFU) != 0) continue;  // NaN
    const float f = detail::half_bits_to_float_sw(h);
    check_f2h(f);
    // Tie and near-tie cases around this half value.
    const auto next = static_cast<std::uint16_t>(h + 1);
    if ((next & 0x7C00U) != 0x7C00U && (h & 0x7FFFU) != 0x7BFFU &&
        (h & 0x8000U) == (next & 0x8000U)) {
      const float g = detail::half_bits_to_float_sw(next);
      const float mid = f + (g - f) / 2.0F;
      check_f2h(mid);
      check_f2h(std::nextafterf(mid, f));
      check_f2h(std::nextafterf(mid, g));
    }
  }
  check_f2h(0.0F);
  check_f2h(-0.0F);
  check_f2h(std::numeric_limits<float>::infinity());
  check_f2h(-std::numeric_limits<float>::infinity());
  check_f2h(65519.9F);   // just below the overflow-to-inf boundary
  check_f2h(65520.0F);   // the exact boundary (rounds to inf)
  check_f2h(1e30F);      // far overflow
  check_f2h(1e-30F);     // underflow to zero
  check_f2h(5.96e-8F);   // smallest subnormal neighborhood
  // NaN canonicalization is identical on both paths.
  EXPECT_EQ(detail::float_to_half_bits(std::nanf("")),
            detail::float_to_half_bits_sw(std::nanf("")));
  std::uint32_t state = 0x9E3779B9U;
  for (int i = 0; i < 1'000'000; ++i) {
    state = state * 1664525U + 1013904223U;
    const float f = std::bit_cast<float>(state);
    if (std::isnan(f)) continue;
    check_f2h(f);
  }
}

TEST(DType, NamesAndWidths) {
  EXPECT_EQ(dtype_name(DType::kFloat16), "FLOAT16");
  EXPECT_EQ(dtype_name(DType::kFx32r10), "32b_rb10");
  EXPECT_EQ(dtype_width(DType::kDouble), 64);
  EXPECT_EQ(dtype_width(DType::kFx16r10), 16);
  EXPECT_TRUE(dtype_is_floating(DType::kFloat16));
  EXPECT_FALSE(dtype_is_floating(DType::kFx32r26));
}

}  // namespace
}  // namespace dnnfi::numeric
