// Kernel registry property tests: every registered SIMD kernel set is
// checked against the scalar reference across all six datapath types, odd
// shapes (output channels not divisible by the lane width, including the
// zero-full-blocks case), non-finite inputs (NaN / ±Inf / -0 propagation,
// canonical-NaN rule for FLOAT16), and 100-run buffer reuse — asserting
// tensor::bitwise_equal for bit_identical sets and a coarse tolerance for
// the opt-in relaxed sets. The post-MAC ops (lrn / maxpool / avgpool /
// softmax) are bitwise-checked in every set, with restructure-lock tests
// pinning the scalar reference to the formulas the layers used to inline.
// Plus the packed-layout formula itself and executor-level integration
// checks that set_active_mode("scalar") and each SIMD mode produce
// byte-identical network outputs.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "dnnfi/dnn/executor.h"
#include "dnnfi/dnn/kernels/kernels.h"
#include "dnnfi/dnn/weights.h"
#include "dnnfi/dnn/zoo.h"
#include "dnnfi/numeric/traits.h"
#include "dnnfi/tensor/tensor.h"

namespace dnnfi::dnn::kernels {
namespace {

using numeric::numeric_traits;
using tensor::Shape;
using tensor::Tensor;

/// Non-finite seasoning for the floating datapath types. kNaN and kInf are
/// deliberately separate variants: when two NaNs with DIFFERENT bit patterns
/// meet in one addition, x86 returns whichever the compiler put first, and
/// GCC orders (and even auto-vectorizes) the scalar reference's accumulation
/// however it likes — so that one case is outside the bit-identity contract
/// (see kernels.h). Within a variant every NaN that can arise shares a
/// single bit pattern (the planted canonical NaN, or the FFC00000-style
/// "indefinite" from Inf*0 / Inf-Inf), which x86 propagates verbatim
/// regardless of operand order, keeping the comparison exact.
enum class Season { kFinite, kNaN, kInf };

/// Deterministic awkward values in roughly [-3, 3]; floating types also get
/// the requested non-finite values planted at fixed positions.
template <typename T>
std::vector<T> awkward(std::size_t n, std::uint64_t salt, Season season) {
  using Tr = numeric_traits<T>;
  std::vector<T> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = Tr::from_double(
        0.0625 * static_cast<double>((i * 2654435761u + salt) % 97) - 3.0);
  if constexpr (Tr::is_floating) {
    if (n >= 8 && season == Season::kNaN) {
      v[n / 5] = Tr::from_double(std::numeric_limits<double>::quiet_NaN());
      v[n / 2] = Tr::from_double(std::numeric_limits<double>::quiet_NaN());
      v[2 * n / 3] = Tr::from_double(-0.0);
    } else if (n >= 8 && season == Season::kInf) {
      v[n / 5] = Tr::from_double(std::numeric_limits<double>::infinity());
      v[n / 2] = Tr::from_double(-std::numeric_limits<double>::infinity());
      v[2 * n / 3] = Tr::from_double(-0.0);
    }
  }
  return v;
}

template <typename T>
Tensor<T> run_conv(const KernelSet<T>& ks, const ConvGeom& g,
                   const std::vector<T>& in, const std::vector<T>& w,
                   const std::vector<T>& bias) {
  Tensor<T> out(Shape{1, g.out_c, g.out_h, g.out_w});
  std::vector<T> packed(packed_elems(g.out_c, g.steps(), ks.pack_lanes));
  if (!packed.empty())
    pack_rows(w.data(), g.out_c, g.steps(), ks.pack_lanes, packed.data());
  ks.conv(g, in.data(), w.data(), packed.empty() ? nullptr : packed.data(),
          bias.data(), out.data().data());
  return out;
}

template <typename T>
Tensor<T> run_fc(const KernelSet<T>& ks, const FcGeom& g,
                 const std::vector<T>& in, const std::vector<T>& w,
                 const std::vector<T>& bias) {
  Tensor<T> out(Shape{1, g.out, 1, 1});
  std::vector<T> packed(packed_elems(g.out, g.in, ks.pack_lanes));
  if (!packed.empty())
    pack_rows(w.data(), g.out, g.in, ks.pack_lanes, packed.data());
  ks.fc(g, in.data(), w.data(), packed.empty() ? nullptr : packed.data(),
        bias.data(), out.data().data());
  return out;
}

template <typename T>
Tensor<T> run_lrn(const KernelSet<T>& ks, const LrnGeom& g,
                  const std::vector<T>& in) {
  Tensor<T> out(Shape{1, g.c, g.h, g.w});
  ks.lrn(g, in.data(), out.data().data());
  return out;
}

template <typename T>
Tensor<T> run_maxpool(const KernelSet<T>& ks, const PoolGeom& g,
                      const std::vector<T>& in) {
  Tensor<T> out(Shape{1, g.c, g.out_h, g.out_w});
  ks.maxpool(g, in.data(), out.data().data());
  return out;
}

template <typename T>
Tensor<T> run_avgpool(const KernelSet<T>& ks, std::size_t channels,
                      std::size_t plane, const std::vector<T>& in) {
  Tensor<T> out(Shape{1, channels, 1, 1});
  ks.avgpool(in.data(), out.data().data(), channels, plane);
  return out;
}

template <typename T>
Tensor<T> run_softmax(const KernelSet<T>& ks, std::size_t n,
                      const std::vector<T>& in) {
  Tensor<T> out(Shape{1, 1, 1, n});
  ks.softmax(in.data(), out.data().data(), n);
  return out;
}

/// Coarse closeness for the relaxed sets: per-element absolute tolerance
/// scaled by the accumulation length (the real contract for the default
/// sets is bitwise, tested separately).
template <typename T>
void expect_close(const Tensor<T>& got, const Tensor<T>& want, double tol) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    const double a = numeric_traits<T>::to_double(got[i]);
    const double b = numeric_traits<T>::to_double(want[i]);
    ASSERT_TRUE(std::isfinite(a) && std::isfinite(b)) << "element " << i;
    ASSERT_NEAR(a, b, tol * (1.0 + std::max(std::fabs(a), std::fabs(b))))
        << "element " << i;
  }
}

// Odd geometries on purpose: out_c = 13 leaves a 5-row tail at 8 lanes and
// a 1-row tail at 4; out_c = 7 yields ZERO full 8-lane blocks (the packed
// pointer must never be dereferenced); 16 and 32 are all-blocks.
const ConvGeom kConvGeoms[] = {
    {3, 9, 7, 13, 5, 4, 3, 2, 1},   // strided, padded, tail rows
    {5, 6, 6, 7, 6, 6, 1, 1, 0},    // 1x1 kernel, zero full blocks at w=8
    {8, 8, 8, 16, 8, 8, 3, 1, 1},   // full blocks only (at 8 and 4 lanes)
    {4, 5, 5, 9, 2, 2, 3, 2, 0},    // stride 2, no padding
};
const FcGeom kFcGeoms[] = {{37, 19}, {64, 32}, {10, 3}};

// Post-MAC geometries, odd on purpose. LRN: a window (size 5) wider than the
// whole channel range; 1x1 spatial (the blocked AVX2 path needs >= 4
// positions, so this forces its scalar fallback); odd channel count with a
// position tail. MaxPool: a window covering the entire input (single 1x1
// output); strided odd-channel case; non-square input.
const LrnGeom kLrnGeoms[] = {
    {3, 5, 7, 5, 1e-4, 0.75, 2.0},
    {16, 1, 1, 5, 2e-5, 0.75, 1.0},
    {13, 6, 5, 3, 1e-3, 0.5, 1.0},
};
const PoolGeom kPoolGeoms[] = {
    {3, 5, 5, 1, 1, 5, 1},
    {5, 9, 9, 4, 4, 3, 2},
    {8, 6, 8, 3, 4, 2, 2},
};
const std::size_t kAvgPools[][2] = {{3, 25}, {8, 1}, {13, 30}};
// 1030 exceeds the 1024-element exp stack buffer, forcing the recompute
// fallback in both the scalar reference and the SIMD sets.
const std::size_t kSoftmaxNs[] = {10, 100, 1030};

template <typename T>
class KernelProperty : public ::testing::Test {};

using DatapathTypes =
    ::testing::Types<double, float, numeric::Half, numeric::Fx32r26,
                     numeric::Fx32r10, numeric::Fx16r10>;
TYPED_TEST_SUITE(KernelProperty, DatapathTypes);

TYPED_TEST(KernelProperty, ScalarReferenceAlwaysRegistered) {
  using T = TypeParam;
  const auto names = registered_names<T>();
  ASSERT_FALSE(names.empty());
  EXPECT_STREQ(names.front(), "scalar");
  const KernelSet<T>* s = kernel_set<T>("scalar");
  ASSERT_NE(s, nullptr);
  EXPECT_TRUE(s->bit_identical);
  EXPECT_EQ(s->pack_lanes, 0u);
  EXPECT_EQ(kernel_set<T>("no-such-set"), nullptr);
}

TYPED_TEST(KernelProperty, SimdSetsBitIdenticalToScalarOnOddShapes) {
  using T = TypeParam;
  const KernelSet<T>& ref = scalar_kernels<T>();
  for (const char* name : registered_names<T>()) {
    const KernelSet<T>* ks = kernel_set<T>(name);
    ASSERT_NE(ks, nullptr) << name;
    if (!ks->bit_identical) continue;
    for (const Season season : {Season::kFinite, Season::kNaN, Season::kInf}) {
      for (const ConvGeom& g : kConvGeoms) {
        const auto in = awkward<T>(g.in_c * g.in_h * g.in_w, 11, season);
        const auto w = awkward<T>(g.out_c * g.steps(), 23, season);
        const auto bias = awkward<T>(g.out_c, 5, Season::kFinite);
        EXPECT_TRUE(tensor::bitwise_equal(run_conv(*ks, g, in, w, bias),
                                          run_conv(ref, g, in, w, bias)))
            << name << " conv out_c=" << g.out_c
            << " season=" << static_cast<int>(season);
      }
      for (const FcGeom& g : kFcGeoms) {
        const auto in = awkward<T>(g.in, 31, season);
        const auto w = awkward<T>(g.out * g.in, 41, season);
        const auto bias = awkward<T>(g.out, 7, Season::kFinite);
        EXPECT_TRUE(tensor::bitwise_equal(run_fc(*ks, g, in, w, bias),
                                          run_fc(ref, g, in, w, bias)))
            << name << " fc out=" << g.out
            << " season=" << static_cast<int>(season);
      }
    }
    {
      // relu never adds, so NaN (of any sign), ±Inf, and -0 can mix freely:
      // propagation is per-element and must match bit for bit.
      const std::size_t n = 33;
      auto in = awkward<T>(n, 3, Season::kNaN);
      if constexpr (numeric_traits<T>::is_floating) {
        in[1] = numeric_traits<T>::from_double(
            std::numeric_limits<double>::infinity());
        in[4] = numeric_traits<T>::from_double(
            -std::numeric_limits<double>::infinity());
      }
      Tensor<T> a(Shape{1, 1, 1, n}), b(Shape{1, 1, 1, n});
      ks->relu(in.data(), a.data().data(), n);
      ref.relu(in.data(), b.data().data(), n);
      EXPECT_TRUE(tensor::bitwise_equal(a, b)) << name << " relu";
    }
  }
}

TYPED_TEST(KernelProperty, PostMacOpsBitIdenticalToScalarOnOddShapes) {
  using T = TypeParam;
  const KernelSet<T>& ref = scalar_kernels<T>();
  for (const char* name : registered_names<T>()) {
    const KernelSet<T>* ks = kernel_set<T>(name);
    ASSERT_NE(ks, nullptr) << name;
    // No bit_identical filter: the post-MAC kernels are exact in EVERY set,
    // the relaxed one included (their internals already run at double).
    for (const Season season : {Season::kFinite, Season::kNaN, Season::kInf}) {
      for (const LrnGeom& g : kLrnGeoms) {
        const auto in = awkward<T>(g.c * g.h * g.w, 51, season);
        EXPECT_TRUE(tensor::bitwise_equal(run_lrn(*ks, g, in),
                                          run_lrn(ref, g, in)))
            << name << " lrn c=" << g.c << " size=" << g.size
            << " season=" << static_cast<int>(season);
      }
      for (const PoolGeom& g : kPoolGeoms) {
        const auto in = awkward<T>(g.c * g.in_h * g.in_w, 57, season);
        EXPECT_TRUE(tensor::bitwise_equal(run_maxpool(*ks, g, in),
                                          run_maxpool(ref, g, in)))
            << name << " maxpool c=" << g.c << " k=" << g.k
            << " season=" << static_cast<int>(season);
      }
      for (const auto& cp : kAvgPools) {
        const auto in = awkward<T>(cp[0] * cp[1], 61, season);
        EXPECT_TRUE(tensor::bitwise_equal(run_avgpool(*ks, cp[0], cp[1], in),
                                          run_avgpool(ref, cp[0], cp[1], in)))
            << name << " avgpool c=" << cp[0] << " plane=" << cp[1]
            << " season=" << static_cast<int>(season);
      }
      for (const std::size_t n : kSoftmaxNs) {
        const auto in = awkward<T>(n, 67, season);
        EXPECT_TRUE(tensor::bitwise_equal(run_softmax(*ks, n, in),
                                          run_softmax(ref, n, in)))
            << name << " softmax n=" << n
            << " season=" << static_cast<int>(season);
      }
    }
  }
}

TYPED_TEST(KernelProperty, RelaxedSetsWithinToleranceOfScalar) {
  using T = TypeParam;
  const KernelSet<T>& ref = scalar_kernels<T>();
  // FLOAT16 relaxed accumulates in float (one rounding instead of one per
  // tap): tolerance scales with the accumulation length and half epsilon.
  const double per_step =
      numeric_traits<T>::width <= 16 ? 0.01 : 1e-6;
  for (const char* name : registered_names<T>()) {
    const KernelSet<T>* ks = kernel_set<T>(name);
    ASSERT_NE(ks, nullptr) << name;
    if (ks->bit_identical) continue;
    for (const ConvGeom& g : kConvGeoms) {
      const auto in = awkward<T>(g.in_c * g.in_h * g.in_w, 11, Season::kFinite);
      const auto w = awkward<T>(g.out_c * g.steps(), 23, Season::kFinite);
      const auto bias = awkward<T>(g.out_c, 5, Season::kFinite);
      expect_close(run_conv(*ks, g, in, w, bias),
                   run_conv(ref, g, in, w, bias),
                   per_step * static_cast<double>(g.steps()));
    }
    for (const FcGeom& g : kFcGeoms) {
      const auto in = awkward<T>(g.in, 31, Season::kFinite);
      const auto w = awkward<T>(g.out * g.in, 41, Season::kFinite);
      const auto bias = awkward<T>(g.out, 7, Season::kFinite);
      expect_close(run_fc(*ks, g, in, w, bias), run_fc(ref, g, in, w, bias),
                   per_step * static_cast<double>(g.in));
    }
  }
}

TYPED_TEST(KernelProperty, HundredRunReuseIsStable) {
  using T = TypeParam;
  const ConvGeom g = kConvGeoms[0];
  const auto in = awkward<T>(g.in_c * g.in_h * g.in_w, 13, Season::kNaN);
  const auto w = awkward<T>(g.out_c * g.steps(), 17, Season::kNaN);
  const auto bias = awkward<T>(g.out_c, 19, Season::kFinite);
  for (const char* name : registered_names<T>()) {
    const KernelSet<T>* ks = kernel_set<T>(name);
    ASSERT_NE(ks, nullptr) << name;
    // Pack once, then reuse the packed copy and the output buffer for 100
    // runs without clearing either — the Workspace lifecycle.
    std::vector<T> packed(packed_elems(g.out_c, g.steps(), ks->pack_lanes));
    if (!packed.empty())
      pack_rows(w.data(), g.out_c, g.steps(), ks->pack_lanes, packed.data());
    Tensor<T> out(Shape{1, g.out_c, g.out_h, g.out_w});
    Tensor<T> first;
    for (int run = 0; run < 100; ++run) {
      ks->conv(g, in.data(), w.data(),
               packed.empty() ? nullptr : packed.data(), bias.data(),
               out.data().data());
      if (run == 0)
        first = out;
      else
        ASSERT_TRUE(tensor::bitwise_equal(out, first))
            << name << " run " << run;
    }
    if (ks->bit_identical) {
      const Tensor<T> want = run_conv(scalar_kernels<T>(), g, in, w, bias);
      EXPECT_TRUE(tensor::bitwise_equal(first, want)) << name;
    }
  }
}

/// Locks the restructured scalar LRN (column-buffered squares, pow(1,b)==1
/// and previous-base memo shortcuts) to the formula the Lrn layer used to
/// inline: a fresh pow per output over a window summed clo->chi. If the
/// restructure ever stops being bit-identical, fault-injection ground truth
/// silently shifts — this test is the tripwire.
template <typename T>
void lrn_restructure_locked() {
  using Tr = numeric_traits<T>;
  for (const LrnGeom& g : kLrnGeoms) {
    for (const Season season : {Season::kFinite, Season::kNaN, Season::kInf}) {
      const auto in = awkward<T>(g.c * g.h * g.w, 71, season);
      const Tensor<T> got = run_lrn(scalar_kernels<T>(), g, in);
      const auto half = static_cast<std::ptrdiff_t>(g.size / 2);
      const std::size_t plane = g.h * g.w;
      for (std::size_t c = 0; c < g.c; ++c)
        for (std::size_t p = 0; p < plane; ++p) {
          const std::ptrdiff_t clo =
              std::max<std::ptrdiff_t>(0, static_cast<std::ptrdiff_t>(c) - half);
          const std::ptrdiff_t chi =
              std::min<std::ptrdiff_t>(static_cast<std::ptrdiff_t>(g.c) - 1,
                                       static_cast<std::ptrdiff_t>(c) + half);
          double ss = 0;
          for (std::ptrdiff_t cc = clo; cc <= chi; ++cc) {
            const double v =
                Tr::to_double(in[static_cast<std::size_t>(cc) * plane + p]);
            ss += v * v;
          }
          const double denom = std::pow(
              g.k + g.alpha / static_cast<double>(g.size) * ss, g.beta);
          const T want =
              Tr::from_double(Tr::to_double(in[c * plane + p]) / denom);
          EXPECT_EQ(Tr::to_bits(got[c * plane + p]),
                    Tr::to_bits(want))
              << "c=" << c << " p=" << p
              << " season=" << static_cast<int>(season);
        }
    }
  }
}

/// Same tripwire for softmax: the buffered-exp restructure must match the
/// recompute-every-pass form the Softmax layer used to inline.
template <typename T>
void softmax_restructure_locked() {
  using Tr = numeric_traits<T>;
  for (const std::size_t n : kSoftmaxNs) {
    for (const Season season : {Season::kFinite, Season::kNaN, Season::kInf}) {
      const auto in = awkward<T>(n, 73, season);
      const Tensor<T> got = run_softmax(scalar_kernels<T>(), n, in);
      double mx = -std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < n; ++i) {
        const double v = Tr::to_double(in[i]);
        if (std::isfinite(v)) mx = std::max(mx, v);
      }
      if (!std::isfinite(mx)) mx = 0;
      const auto shifted_exp = [&](T raw) {
        double v = Tr::to_double(raw);
        if (std::isnan(v)) v = -std::numeric_limits<double>::infinity();
        return std::exp(std::min(v - mx, 700.0));
      };
      double sum = 0;
      for (std::size_t i = 0; i < n; ++i) sum += shifted_exp(in[i]);
      for (std::size_t i = 0; i < n; ++i) {
        const T want =
            Tr::from_double(sum > 0 ? shifted_exp(in[i]) / sum : 0.0);
        EXPECT_EQ(Tr::to_bits(got[i]), Tr::to_bits(want))
            << "i=" << i << " n=" << n
            << " season=" << static_cast<int>(season);
      }
    }
  }
}

TEST(KernelRestructure, ScalarLrnMatchesLegacyFormulaBitwise) {
  lrn_restructure_locked<float>();
  lrn_restructure_locked<double>();
  lrn_restructure_locked<numeric::Half>();
}

TEST(KernelRestructure, ScalarSoftmaxMatchesLegacyFormulaBitwise) {
  softmax_restructure_locked<float>();
  softmax_restructure_locked<double>();
  softmax_restructure_locked<numeric::Half>();
}

TEST(KernelPacking, PackRowsInterleavesFullBlocksOnly) {
  const std::size_t rows = 10, cols = 3, lanes = 4;
  ASSERT_EQ(packed_elems(rows, cols, lanes), (rows / lanes) * cols * lanes);
  ASSERT_EQ(packed_elems(rows, cols, 0), 0u);
  std::vector<float> w(rows * cols);
  for (std::size_t i = 0; i < w.size(); ++i) w[i] = static_cast<float>(i);
  std::vector<float> dst(packed_elems(rows, cols, lanes), -1.0f);
  pack_rows(w.data(), rows, cols, lanes, dst.data());
  for (std::size_t b = 0; b < rows / lanes; ++b)
    for (std::size_t c = 0; c < cols; ++c)
      for (std::size_t l = 0; l < lanes; ++l)
        EXPECT_EQ(dst[(b * cols + c) * lanes + l],
                  w[(b * lanes + l) * cols + c]);
}

/// set_active_mode is process-global; restore the default on scope exit so
/// test order cannot leak a scalar override into other suites.
struct ModeGuard {
  ~ModeGuard() { set_active_mode("auto"); }
};

template <typename T>
void executor_modes_match(const char* simd_mode) {
  const auto spec = zoo::network_spec(zoo::NetworkId::kConvNet);
  WeightsBlob blob;
  {
    Network<float> seed_net(spec);
    init_weights(seed_net, 99);
    blob = extract_weights(seed_net);
  }
  Tensor<float> img_f(spec.input);
  for (std::size_t i = 0; i < img_f.size(); ++i)
    img_f[i] = 0.01f * static_cast<float>(i % 113) - 0.5f;
  const Tensor<T> img = tensor::convert<T>(img_f);

  ModeGuard guard;
  auto run_with = [&](const char* mode) {
    EXPECT_TRUE(set_active_mode(mode));
    Network<T> net(spec);  // plan captures the active set at build time
    load_weights(net, blob);
    const Executor<T> exec(net.plan());
    Workspace<T> ws(net.plan());
    RunRequest<T> req;
    req.input = img;
    Tensor<T> out(net.plan().output_shape());
    out.view().copy_from(exec.run(ws, req));
    return out;
  };
  const Tensor<T> scalar_out = run_with("scalar");
  const Tensor<T> simd_out = run_with(simd_mode);
  EXPECT_TRUE(tensor::bitwise_equal(simd_out, scalar_out)) << simd_mode;
}

TEST(KernelDispatch, ExecutorScalarAndAvx2ModesBitIdentical) {
  if (kernel_set<float>("avx2") == nullptr)
    GTEST_SKIP() << "avx2 kernels not available on this build/CPU";
  executor_modes_match<float>("avx2");
  executor_modes_match<numeric::Half>("avx2");
  executor_modes_match<double>("avx2");
}

TEST(KernelDispatch, ExecutorScalarAndAvx512ModesBitIdentical) {
  if (kernel_set<float>("avx512") == nullptr)
    GTEST_SKIP() << "avx512 kernels not available on this build/CPU";
  executor_modes_match<float>("avx512");
  executor_modes_match<numeric::Half>("avx512");
  executor_modes_match<double>("avx512");
}

TEST(KernelDispatch, UnknownModeRejected) {
  EXPECT_FALSE(set_active_mode("sse9"));
  EXPECT_TRUE(set_active_mode("auto"));
}

}  // namespace
}  // namespace dnnfi::dnn::kernels
