// Kernel registry property tests: every registered SIMD kernel set is
// checked against the scalar reference across all six datapath types, odd
// shapes (output channels not divisible by the lane width, including the
// zero-full-blocks case), non-finite inputs (NaN / ±Inf / -0 propagation,
// canonical-NaN rule for FLOAT16), and 100-run buffer reuse — asserting
// tensor::bitwise_equal for bit_identical sets and a coarse tolerance for
// the opt-in relaxed sets. Plus the packed-layout formula itself and an
// executor-level integration check that set_active_mode("scalar") and the
// SIMD default produce byte-identical network outputs.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "dnnfi/dnn/executor.h"
#include "dnnfi/dnn/kernels/kernels.h"
#include "dnnfi/dnn/weights.h"
#include "dnnfi/dnn/zoo.h"
#include "dnnfi/numeric/traits.h"
#include "dnnfi/tensor/tensor.h"

namespace dnnfi::dnn::kernels {
namespace {

using numeric::numeric_traits;
using tensor::Shape;
using tensor::Tensor;

/// Non-finite seasoning for the floating datapath types. kNaN and kInf are
/// deliberately separate variants: when two NaNs with DIFFERENT bit patterns
/// meet in one addition, x86 returns whichever the compiler put first, and
/// GCC orders (and even auto-vectorizes) the scalar reference's accumulation
/// however it likes — so that one case is outside the bit-identity contract
/// (see kernels.h). Within a variant every NaN that can arise shares a
/// single bit pattern (the planted canonical NaN, or the FFC00000-style
/// "indefinite" from Inf*0 / Inf-Inf), which x86 propagates verbatim
/// regardless of operand order, keeping the comparison exact.
enum class Season { kFinite, kNaN, kInf };

/// Deterministic awkward values in roughly [-3, 3]; floating types also get
/// the requested non-finite values planted at fixed positions.
template <typename T>
std::vector<T> awkward(std::size_t n, std::uint64_t salt, Season season) {
  using Tr = numeric_traits<T>;
  std::vector<T> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = Tr::from_double(
        0.0625 * static_cast<double>((i * 2654435761u + salt) % 97) - 3.0);
  if constexpr (Tr::is_floating) {
    if (n >= 8 && season == Season::kNaN) {
      v[n / 5] = Tr::from_double(std::numeric_limits<double>::quiet_NaN());
      v[n / 2] = Tr::from_double(std::numeric_limits<double>::quiet_NaN());
      v[2 * n / 3] = Tr::from_double(-0.0);
    } else if (n >= 8 && season == Season::kInf) {
      v[n / 5] = Tr::from_double(std::numeric_limits<double>::infinity());
      v[n / 2] = Tr::from_double(-std::numeric_limits<double>::infinity());
      v[2 * n / 3] = Tr::from_double(-0.0);
    }
  }
  return v;
}

template <typename T>
Tensor<T> run_conv(const KernelSet<T>& ks, const ConvGeom& g,
                   const std::vector<T>& in, const std::vector<T>& w,
                   const std::vector<T>& bias) {
  Tensor<T> out(Shape{1, g.out_c, g.out_h, g.out_w});
  std::vector<T> packed(packed_elems(g.out_c, g.steps(), ks.pack_lanes));
  if (!packed.empty())
    pack_rows(w.data(), g.out_c, g.steps(), ks.pack_lanes, packed.data());
  ks.conv(g, in.data(), w.data(), packed.empty() ? nullptr : packed.data(),
          bias.data(), out.data().data());
  return out;
}

template <typename T>
Tensor<T> run_fc(const KernelSet<T>& ks, const FcGeom& g,
                 const std::vector<T>& in, const std::vector<T>& w,
                 const std::vector<T>& bias) {
  Tensor<T> out(Shape{1, g.out, 1, 1});
  std::vector<T> packed(packed_elems(g.out, g.in, ks.pack_lanes));
  if (!packed.empty())
    pack_rows(w.data(), g.out, g.in, ks.pack_lanes, packed.data());
  ks.fc(g, in.data(), w.data(), packed.empty() ? nullptr : packed.data(),
        bias.data(), out.data().data());
  return out;
}

/// Coarse closeness for the relaxed sets: per-element absolute tolerance
/// scaled by the accumulation length (the real contract for the default
/// sets is bitwise, tested separately).
template <typename T>
void expect_close(const Tensor<T>& got, const Tensor<T>& want, double tol) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    const double a = numeric_traits<T>::to_double(got[i]);
    const double b = numeric_traits<T>::to_double(want[i]);
    ASSERT_TRUE(std::isfinite(a) && std::isfinite(b)) << "element " << i;
    ASSERT_NEAR(a, b, tol * (1.0 + std::max(std::fabs(a), std::fabs(b))))
        << "element " << i;
  }
}

// Odd geometries on purpose: out_c = 13 leaves a 5-row tail at 8 lanes and
// a 1-row tail at 4; out_c = 7 yields ZERO full 8-lane blocks (the packed
// pointer must never be dereferenced); 16 and 32 are all-blocks.
const ConvGeom kConvGeoms[] = {
    {3, 9, 7, 13, 5, 4, 3, 2, 1},   // strided, padded, tail rows
    {5, 6, 6, 7, 6, 6, 1, 1, 0},    // 1x1 kernel, zero full blocks at w=8
    {8, 8, 8, 16, 8, 8, 3, 1, 1},   // full blocks only (at 8 and 4 lanes)
    {4, 5, 5, 9, 2, 2, 3, 2, 0},    // stride 2, no padding
};
const FcGeom kFcGeoms[] = {{37, 19}, {64, 32}, {10, 3}};

template <typename T>
class KernelProperty : public ::testing::Test {};

using DatapathTypes =
    ::testing::Types<double, float, numeric::Half, numeric::Fx32r26,
                     numeric::Fx32r10, numeric::Fx16r10>;
TYPED_TEST_SUITE(KernelProperty, DatapathTypes);

TYPED_TEST(KernelProperty, ScalarReferenceAlwaysRegistered) {
  using T = TypeParam;
  const auto names = registered_names<T>();
  ASSERT_FALSE(names.empty());
  EXPECT_STREQ(names.front(), "scalar");
  const KernelSet<T>* s = kernel_set<T>("scalar");
  ASSERT_NE(s, nullptr);
  EXPECT_TRUE(s->bit_identical);
  EXPECT_EQ(s->pack_lanes, 0u);
  EXPECT_EQ(kernel_set<T>("no-such-set"), nullptr);
}

TYPED_TEST(KernelProperty, SimdSetsBitIdenticalToScalarOnOddShapes) {
  using T = TypeParam;
  const KernelSet<T>& ref = scalar_kernels<T>();
  for (const char* name : registered_names<T>()) {
    const KernelSet<T>* ks = kernel_set<T>(name);
    ASSERT_NE(ks, nullptr) << name;
    if (!ks->bit_identical) continue;
    for (const Season season : {Season::kFinite, Season::kNaN, Season::kInf}) {
      for (const ConvGeom& g : kConvGeoms) {
        const auto in = awkward<T>(g.in_c * g.in_h * g.in_w, 11, season);
        const auto w = awkward<T>(g.out_c * g.steps(), 23, season);
        const auto bias = awkward<T>(g.out_c, 5, Season::kFinite);
        EXPECT_TRUE(tensor::bitwise_equal(run_conv(*ks, g, in, w, bias),
                                          run_conv(ref, g, in, w, bias)))
            << name << " conv out_c=" << g.out_c
            << " season=" << static_cast<int>(season);
      }
      for (const FcGeom& g : kFcGeoms) {
        const auto in = awkward<T>(g.in, 31, season);
        const auto w = awkward<T>(g.out * g.in, 41, season);
        const auto bias = awkward<T>(g.out, 7, Season::kFinite);
        EXPECT_TRUE(tensor::bitwise_equal(run_fc(*ks, g, in, w, bias),
                                          run_fc(ref, g, in, w, bias)))
            << name << " fc out=" << g.out
            << " season=" << static_cast<int>(season);
      }
    }
    {
      // relu never adds, so NaN (of any sign), ±Inf, and -0 can mix freely:
      // propagation is per-element and must match bit for bit.
      const std::size_t n = 33;
      auto in = awkward<T>(n, 3, Season::kNaN);
      if constexpr (numeric_traits<T>::is_floating) {
        in[1] = numeric_traits<T>::from_double(
            std::numeric_limits<double>::infinity());
        in[4] = numeric_traits<T>::from_double(
            -std::numeric_limits<double>::infinity());
      }
      Tensor<T> a(Shape{1, 1, 1, n}), b(Shape{1, 1, 1, n});
      ks->relu(in.data(), a.data().data(), n);
      ref.relu(in.data(), b.data().data(), n);
      EXPECT_TRUE(tensor::bitwise_equal(a, b)) << name << " relu";
    }
  }
}

TYPED_TEST(KernelProperty, RelaxedSetsWithinToleranceOfScalar) {
  using T = TypeParam;
  const KernelSet<T>& ref = scalar_kernels<T>();
  // FLOAT16 relaxed accumulates in float (one rounding instead of one per
  // tap): tolerance scales with the accumulation length and half epsilon.
  const double per_step =
      numeric_traits<T>::width <= 16 ? 0.01 : 1e-6;
  for (const char* name : registered_names<T>()) {
    const KernelSet<T>* ks = kernel_set<T>(name);
    ASSERT_NE(ks, nullptr) << name;
    if (ks->bit_identical) continue;
    for (const ConvGeom& g : kConvGeoms) {
      const auto in = awkward<T>(g.in_c * g.in_h * g.in_w, 11, Season::kFinite);
      const auto w = awkward<T>(g.out_c * g.steps(), 23, Season::kFinite);
      const auto bias = awkward<T>(g.out_c, 5, Season::kFinite);
      expect_close(run_conv(*ks, g, in, w, bias),
                   run_conv(ref, g, in, w, bias),
                   per_step * static_cast<double>(g.steps()));
    }
    for (const FcGeom& g : kFcGeoms) {
      const auto in = awkward<T>(g.in, 31, Season::kFinite);
      const auto w = awkward<T>(g.out * g.in, 41, Season::kFinite);
      const auto bias = awkward<T>(g.out, 7, Season::kFinite);
      expect_close(run_fc(*ks, g, in, w, bias), run_fc(ref, g, in, w, bias),
                   per_step * static_cast<double>(g.in));
    }
  }
}

TYPED_TEST(KernelProperty, HundredRunReuseIsStable) {
  using T = TypeParam;
  const ConvGeom g = kConvGeoms[0];
  const auto in = awkward<T>(g.in_c * g.in_h * g.in_w, 13, Season::kNaN);
  const auto w = awkward<T>(g.out_c * g.steps(), 17, Season::kNaN);
  const auto bias = awkward<T>(g.out_c, 19, Season::kFinite);
  for (const char* name : registered_names<T>()) {
    const KernelSet<T>* ks = kernel_set<T>(name);
    ASSERT_NE(ks, nullptr) << name;
    // Pack once, then reuse the packed copy and the output buffer for 100
    // runs without clearing either — the Workspace lifecycle.
    std::vector<T> packed(packed_elems(g.out_c, g.steps(), ks->pack_lanes));
    if (!packed.empty())
      pack_rows(w.data(), g.out_c, g.steps(), ks->pack_lanes, packed.data());
    Tensor<T> out(Shape{1, g.out_c, g.out_h, g.out_w});
    Tensor<T> first;
    for (int run = 0; run < 100; ++run) {
      ks->conv(g, in.data(), w.data(),
               packed.empty() ? nullptr : packed.data(), bias.data(),
               out.data().data());
      if (run == 0)
        first = out;
      else
        ASSERT_TRUE(tensor::bitwise_equal(out, first))
            << name << " run " << run;
    }
    if (ks->bit_identical) {
      const Tensor<T> want = run_conv(scalar_kernels<T>(), g, in, w, bias);
      EXPECT_TRUE(tensor::bitwise_equal(first, want)) << name;
    }
  }
}

TEST(KernelPacking, PackRowsInterleavesFullBlocksOnly) {
  const std::size_t rows = 10, cols = 3, lanes = 4;
  ASSERT_EQ(packed_elems(rows, cols, lanes), (rows / lanes) * cols * lanes);
  ASSERT_EQ(packed_elems(rows, cols, 0), 0u);
  std::vector<float> w(rows * cols);
  for (std::size_t i = 0; i < w.size(); ++i) w[i] = static_cast<float>(i);
  std::vector<float> dst(packed_elems(rows, cols, lanes), -1.0f);
  pack_rows(w.data(), rows, cols, lanes, dst.data());
  for (std::size_t b = 0; b < rows / lanes; ++b)
    for (std::size_t c = 0; c < cols; ++c)
      for (std::size_t l = 0; l < lanes; ++l)
        EXPECT_EQ(dst[(b * cols + c) * lanes + l],
                  w[(b * lanes + l) * cols + c]);
}

/// set_active_mode is process-global; restore the default on scope exit so
/// test order cannot leak a scalar override into other suites.
struct ModeGuard {
  ~ModeGuard() { set_active_mode("auto"); }
};

template <typename T>
void executor_modes_match() {
  const auto spec = zoo::network_spec(zoo::NetworkId::kConvNet);
  WeightsBlob blob;
  {
    Network<float> seed_net(spec);
    init_weights(seed_net, 99);
    blob = extract_weights(seed_net);
  }
  Tensor<float> img_f(spec.input);
  for (std::size_t i = 0; i < img_f.size(); ++i)
    img_f[i] = 0.01f * static_cast<float>(i % 113) - 0.5f;
  const Tensor<T> img = tensor::convert<T>(img_f);

  ModeGuard guard;
  auto run_with = [&](const char* mode) {
    EXPECT_TRUE(set_active_mode(mode));
    Network<T> net(spec);  // plan captures the active set at build time
    load_weights(net, blob);
    const Executor<T> exec(net.plan());
    Workspace<T> ws(net.plan());
    RunRequest<T> req;
    req.input = img;
    Tensor<T> out(net.plan().output_shape());
    out.view().copy_from(exec.run(ws, req));
    return out;
  };
  const Tensor<T> scalar_out = run_with("scalar");
  const Tensor<T> simd_out = run_with("avx2");
  EXPECT_TRUE(tensor::bitwise_equal(simd_out, scalar_out));
}

TEST(KernelDispatch, ExecutorScalarAndAvx2ModesBitIdentical) {
  if (kernel_set<float>("avx2") == nullptr)
    GTEST_SKIP() << "avx2 kernels not available on this build/CPU";
  executor_modes_match<float>();
  executor_modes_match<numeric::Half>();
  executor_modes_match<double>();
}

TEST(KernelDispatch, UnknownModeRejected) {
  EXPECT_FALSE(set_active_mode("sse9"));
  EXPECT_TRUE(set_active_mode("auto"));
}

}  // namespace
}  // namespace dnnfi::dnn::kernels
