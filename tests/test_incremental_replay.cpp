// Incremental fault replay, locked down: seeding trials from the per-input
// ActivationCache and early-exiting when a replayed layer matches the cache
// bit-for-bit is purely a speed optimization — every TrialRecord a campaign
// streams out is byte-identical to the full-replay run, across dtypes,
// injection depths, thread counts, and site classes (DESIGN.md §8).
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include "dnnfi/accel/dataflow.h"
#include "dnnfi/dnn/weights.h"
#include "dnnfi/fault/campaign.h"
#include "dnnfi/fault/checkpoint.h"
#include "dnnfi/mitigate/sed.h"

namespace dnnfi::fault {
namespace {

using dnn::SpecBuilder;
using numeric::DType;
using tensor::chw;
using tensor::Tensor;

dnn::NetworkSpec tiny_spec() {
  return SpecBuilder("tiny", chw(2, 8, 8), 4)
      .conv(3, 3, 1, 1).relu().maxpool(2, 2)
      .conv(4, 3, 1, 1).relu().maxpool(2, 2)
      .fc(4).softmax()
      .build();
}

dnn::WeightsBlob tiny_blob() {
  dnn::Network<float> net(tiny_spec());
  dnn::init_weights(net, 1);
  return dnn::extract_weights(net);
}

std::vector<dnn::Example> tiny_inputs(std::size_t n) {
  std::vector<dnn::Example> v;
  for (std::size_t s = 0; s < n; ++s) {
    dnn::Example ex;
    ex.image = Tensor<float>(chw(2, 8, 8));
    Rng rng = derive_stream(1234, s);
    for (std::size_t i = 0; i < ex.image.size(); ++i)
      ex.image[i] = static_cast<float>(rng.normal() * 0.6);
    ex.label = 0;
    v.push_back(std::move(ex));
  }
  return v;
}

Campaign tiny_campaign(DType dt) {
  return Campaign(tiny_spec(), tiny_blob(), dt, tiny_inputs(3));
}

CampaignOptions base_options() {
  CampaignOptions opt;
  opt.trials = 96;
  opt.seed = 77;
  opt.record_block_distances = true;
  // A live detector so `detected` is part of the compared state too.
  opt.detector = [](int, double v) { return v > 40.0 || v < -40.0; };
  return opt;
}

/// Byte-exact encoding of everything a trial produced (the same encoding
/// the sharding-determinism suite uses).
void record_bytes(ByteWriter& w, std::uint64_t trial, const TrialRecord& t) {
  w.u64(trial);
  w.u32(static_cast<std::uint32_t>(t.fault.cls));
  w.u32(static_cast<std::uint32_t>(t.fault.latch));
  w.u64(t.fault.mac_ordinal);
  w.u64(t.fault.layer_index);
  w.u32(static_cast<std::uint32_t>(t.fault.block));
  w.u64(t.fault.element);
  w.u64(t.fault.step);
  w.u64(t.fault.out_channel);
  w.u64(t.fault.out_row);
  w.u32(static_cast<std::uint32_t>(t.fault.bit));
  w.u32(static_cast<std::uint32_t>(t.fault.burst));
  w.u8(t.outcome.sdc1 ? 1 : 0);
  w.u8(t.outcome.sdc5 ? 1 : 0);
  w.u8(t.outcome.sdc10 ? 1 : 0);
  w.u8(t.outcome.sdc20 ? 1 : 0);
  w.f64(t.record.corrupted_before);
  w.f64(t.record.corrupted_after);
  w.f64(t.record.act_before);
  w.f64(t.record.act_after);
  w.u8(t.record.zero_to_one ? 1 : 0);
  w.u8(t.record.applied ? 1 : 0);
  w.u64(t.input_index);
  w.u8(t.detected ? 1 : 0);
  w.f64(t.output_corruption);
  w.u64(t.block_distance.size());
  for (const double d : t.block_distance) w.f64(d);
}

struct ShardCapture {
  std::vector<std::uint8_t> records;
  ShardResult result;
};

ShardCapture capture(const Campaign& c, const CampaignOptions& opt,
                     ShardSpec shard = {}) {
  ShardCapture cap;
  ByteWriter w;
  const TrialSink sink = [&w](std::uint64_t trial, const TrialRecord& t) {
    record_bytes(w, trial, t);
  };
  cap.result = c.run_shard(opt, shard, &sink);
  cap.records = w.take();
  return cap;
}

std::string temp_path(const std::string& stem) {
  return (std::filesystem::temp_directory_path() /
          ("dnnfi_test_" + stem + "_" + std::to_string(::getpid()) + ".ckpt"))
      .string();
}

struct TempFile {
  explicit TempFile(const std::string& stem) : path(temp_path(stem)) {
    std::filesystem::remove(path);
  }
  ~TempFile() { std::filesystem::remove(path); }
  std::string path;
};

// ---------------------------------------------------------------------------
// The core equivalence: incremental replay (cache seeding + masked-fault
// early exit) streams byte-identical TrialRecords to the full replay, for
// two dtypes x every injection depth (early/mid/late logical block) x
// 1 and 8 worker threads. The incremental run must actually early-exit
// somewhere (otherwise this test would be vacuous) and the full run never.
// ---------------------------------------------------------------------------

TEST(IncrementalReplay, ByteIdenticalAcrossDepthsDtypesThreads) {
  for (const DType dt : {DType::kFloat16, DType::kFx32r10}) {
    const Campaign c = tiny_campaign(dt);
    std::uint64_t masked_somewhere = 0;
    for (const int block : {1, 2, 3}) {
      CampaignOptions opt = base_options();
      opt.constraint.fixed_block = block;

      opt.incremental_replay = false;
      const ShardCapture full = capture(c, opt);
      ASSERT_TRUE(full.result.complete);
      EXPECT_EQ(full.result.masked_exits, 0u)
          << "full replay must never early-exit";

      for (const std::size_t workers : {0UL, 8UL}) {
        ThreadPool pool(workers);
        opt.pool = &pool;
        opt.incremental_replay = true;
        const ShardCapture inc = capture(c, opt);
        ASSERT_TRUE(inc.result.complete);
        EXPECT_EQ(inc.records, full.records)
            << "dtype " << static_cast<int>(dt) << " block " << block << " "
            << workers << " workers";
        EXPECT_EQ(inc.result.acc.bytes(), full.result.acc.bytes());
        masked_somewhere += inc.result.masked_exits;
        opt.pool = nullptr;
      }
    }
    EXPECT_GT(masked_somewhere, 0u)
        << "no trial was ever masked; the early exit went unexercised";
  }
}

// The global-buffer site class takes the flip-layer-input lowering (the
// whole target layer re-executes), a different record-writing path than
// datapath patches; it must be byte-identical too.
TEST(IncrementalReplay, ByteIdenticalGlobalBufferSite) {
  const Campaign c = tiny_campaign(DType::kFloat16);
  CampaignOptions opt = base_options();
  opt.site = SiteClass::kGlobalBuffer;

  opt.incremental_replay = false;
  const ShardCapture full = capture(c, opt);
  opt.incremental_replay = true;
  const ShardCapture inc = capture(c, opt);
  EXPECT_EQ(inc.records, full.records);
  EXPECT_EQ(inc.result.acc.bytes(), full.result.acc.bytes());
}

// ---------------------------------------------------------------------------
// ActivationCache integrity: cache entries equal a fresh fault-free forward
// bit-for-bit, including after the workspace has been reused for 100 faulty
// replays (the cache is immutable; replays only touch workspace slots).
// ---------------------------------------------------------------------------

TEST(IncrementalReplay, CacheMatchesFreshForwardAfterWorkspaceReuse) {
  using T = numeric::Half;
  const auto spec = tiny_spec();
  const auto net = dnn::instantiate<T>(spec, tiny_blob());
  const auto inputs = tiny_inputs(1);
  const auto image = tensor::convert<T>(inputs[0].image);

  const dnn::ActivationCache<T> cache(net.plan(), image);
  const dnn::Executor<T> exec(net.plan());
  dnn::Workspace<T> ws(net.plan());

  Sampler sampler(spec, DType::kFloat16);
  for (std::size_t t = 0; t < 100; ++t) {
    Rng rng = derive_stream(5, t);
    const auto fd = sampler.sample(SiteClass::kDatapathLatch, rng);
    auto out = inject(exec, ws, net.mac_layers(), cache, fd);
    ASSERT_FALSE(out.empty());
  }

  dnn::Trace<T> fresh;
  dnn::RunRequest<T> req;
  req.input = image;
  req.trace = &fresh;
  exec.run(ws, req);
  ASSERT_EQ(fresh.acts.size(), cache.num_layers());
  EXPECT_TRUE(tensor::bitwise_equal<T>(cache.input(), fresh.input.view()));
  for (std::size_t i = 0; i < cache.num_layers(); ++i)
    EXPECT_TRUE(tensor::bitwise_equal<T>(
        cache.act(i), tensor::ConstTensorView<T>(fresh.acts[i])))
        << "layer " << i;
}

// ---------------------------------------------------------------------------
// run_range: executing [0, k) then [k, N) from the intermediate activation
// reproduces the full forward bit-for-bit, for every split point.
// ---------------------------------------------------------------------------

TEST(IncrementalReplay, RunRangeSplitsReproduceFullForward) {
  using T = numeric::Half;
  const auto net = dnn::instantiate<T>(tiny_spec(), tiny_blob());
  const auto image = tensor::convert<T>(tiny_inputs(1)[0].image);
  const dnn::Executor<T> exec(net.plan());
  dnn::Workspace<T> ws(net.plan());
  const std::size_t n = net.plan().num_layers();

  dnn::RunRequest<T> req;
  req.input = image;
  Tensor<T> whole;
  whole.assign(exec.run(ws, req));

  for (std::size_t k = 1; k < n; ++k) {
    dnn::RunRequest<T> lo;
    lo.input = image;
    Tensor<T> mid;
    mid.assign(exec.run_range(ws, 0, k, lo));
    dnn::RunRequest<T> hi;
    hi.input = mid;
    Tensor<T> out;
    out.assign(exec.run_range(ws, k, n, hi));
    EXPECT_TRUE(tensor::bitwise_equal(out, whole)) << "split at " << k;
  }
}

// ---------------------------------------------------------------------------
// masked_exits is deterministic, carried through checkpoints, and summed
// correctly across a kill/resume boundary.
// ---------------------------------------------------------------------------

TEST(IncrementalReplay, MaskedExitsSurviveCheckpointResume) {
  const Campaign c = tiny_campaign(DType::kFloat16);
  const CampaignOptions opt = base_options();

  const ShardResult whole = c.run_shard(opt, ShardSpec{});
  ASSERT_TRUE(whole.complete);
  ASSERT_GT(whole.masked_exits, 0u);

  TempFile ck("masked_resume");
  ShardSpec shard;
  shard.checkpoint = ck.path;
  shard.batch = 16;
  shard.stop_after = 40;
  const ShardResult stopped = c.run_shard(opt, shard);
  ASSERT_FALSE(stopped.complete);

  const ShardCheckpoint on_disk = load_shard_checkpoint(ck.path);
  EXPECT_EQ(on_disk.masked_exits, stopped.masked_exits);

  shard.stop_after = 0;
  const ShardResult resumed = c.run_shard(opt, shard);
  ASSERT_TRUE(resumed.complete);
  EXPECT_TRUE(resumed.resumed);
  EXPECT_EQ(resumed.masked_exits, whole.masked_exits);
  EXPECT_EQ(resumed.acc.bytes(), whole.acc.bytes());
}

// ---------------------------------------------------------------------------
// SedDetector::golden_flags agrees with flags() on every block of a
// fault-free cache — the golden-truth table early exit consults.
// ---------------------------------------------------------------------------

TEST(IncrementalReplay, SedGoldenFlagsMatchPerBlockScan) {
  using T = numeric::Half;
  const auto spec = tiny_spec();
  const auto net = dnn::instantiate<T>(spec, tiny_blob());
  const auto image = tensor::convert<T>(tiny_inputs(1)[0].image);
  const dnn::ActivationCache<T> cache(net.plan(), image);
  const auto ends = block_end_layers(spec);

  // Learned-from-golden bounds never flag the golden activations.
  const Campaign c = tiny_campaign(DType::kFloat16);
  const mitigate::SedDetector learned(c.golden_block_ranges(), 0.10);
  const auto quiet = learned.golden_flags<T>(cache, ends);
  ASSERT_EQ(quiet.size(), ends.size());
  for (std::size_t b = 0; b < ends.size(); ++b) {
    EXPECT_FALSE(quiet[b]) << "block " << b + 1;
    EXPECT_EQ(quiet[b],
              learned.flags<T>(static_cast<int>(b) + 1, cache.act(ends[b])));
  }

  // Absurdly tight bounds flag every block, and golden_flags tracks the
  // per-block scan exactly.
  const mitigate::SedDetector tight(
      std::vector<BlockRange>(ends.size(), BlockRange{-1e-30, 1e-30}), 0.0);
  const auto loud = tight.golden_flags<T>(cache, ends);
  for (std::size_t b = 0; b < ends.size(); ++b) {
    EXPECT_EQ(loud[b],
              tight.flags<T>(static_cast<int>(b) + 1, cache.act(ends[b])));
    EXPECT_TRUE(loud[b]) << "block " << b + 1;
  }
}

// ---------------------------------------------------------------------------
// accel::analyze_range / macs_in_range: the static accounting of what a
// layer-range replay executes partitions the full-network totals.
// ---------------------------------------------------------------------------

TEST(IncrementalReplay, DataflowRangeAccountingPartitionsTotals) {
  const auto spec = tiny_spec();
  const auto all = accel::analyze(spec);
  const std::size_t n = spec.layers.size();

  EXPECT_EQ(accel::macs_in_range(all, 0, n), accel::total_macs(all));
  const auto whole = accel::analyze_range(spec, 0, n);
  ASSERT_EQ(whole.size(), all.size());

  // Any split point partitions both the footprint list and the MAC total.
  for (std::size_t k = 1; k < n; ++k) {
    const auto lo = accel::analyze_range(spec, 0, k);
    const auto hi = accel::analyze_range(spec, k, n);
    EXPECT_EQ(lo.size() + hi.size(), all.size()) << "split " << k;
    EXPECT_EQ(accel::macs_in_range(all, 0, k) + accel::macs_in_range(all, k, n),
              accel::total_macs(all))
        << "split " << k;
  }
}

}  // namespace
}  // namespace dnnfi::fault
