// Synthetic dataset properties and PPM IO.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>

#include "dnnfi/data/datasets.h"
#include "dnnfi/data/image_io.h"
#include "dnnfi/data/pretrain.h"

namespace dnnfi::data {
namespace {

TEST(Shapes, DeterministicPerIndex) {
  ShapesDataset ds(1);
  const auto a = ds.sample(123);
  const auto b = ds.sample(123);
  EXPECT_EQ(a.label, b.label);
  ASSERT_EQ(a.image.size(), b.image.size());
  for (std::size_t i = 0; i < a.image.size(); ++i)
    EXPECT_EQ(a.image[i], b.image[i]);
}

TEST(Shapes, DifferentIndicesDiffer) {
  ShapesDataset ds(1);
  const auto a = ds.sample(0);
  const auto b = ds.sample(10);  // same class (label 0), different instance
  EXPECT_EQ(a.label, b.label);
  std::size_t diffs = 0;
  for (std::size_t i = 0; i < a.image.size(); ++i)
    diffs += (a.image[i] != b.image[i]) ? 1U : 0U;
  EXPECT_GT(diffs, a.image.size() / 2);
}

TEST(Shapes, LabelsBalancedRoundRobin) {
  ShapesDataset ds(1);
  for (std::uint64_t i = 0; i < 30; ++i)
    EXPECT_EQ(ds.sample(i).label, i % 10);
}

TEST(Shapes, PixelsInExpectedRange) {
  ShapesDataset ds(2);
  for (std::uint64_t i = 0; i < 10; ++i) {
    const auto s = ds.sample(i);
    for (std::size_t p = 0; p < s.image.size(); ++p) {
      ASSERT_GT(s.image[p], -2.0F);
      ASSERT_LT(s.image[p], 2.5F);
    }
  }
}

TEST(Shapes, ClassNamesDistinct) {
  ShapesDataset ds(1);
  std::set<std::string> names;
  for (std::size_t c = 0; c < 10; ++c) names.insert(ds.class_name(c));
  EXPECT_EQ(names.size(), 10U);
  EXPECT_THROW(ds.class_name(10), ContractViolation);
}

TEST(Textures, HundredClassesRoundRobin) {
  TexturesDataset ds(3);
  EXPECT_EQ(ds.num_classes(), 100U);
  EXPECT_EQ(ds.sample(205).label, 5U);
  EXPECT_EQ(ds.image_shape(), tensor::chw(3, 48, 48));
}

TEST(Textures, ClassesAreVisuallyDistinct) {
  // Images of the same class (different instances) must correlate more than
  // images of different classes — the separability that training relies on.
  TexturesDataset ds(3);
  auto corr = [](const tensor::Tensor<float>& a, const tensor::Tensor<float>& b) {
    double num = 0, da = 0, db = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      num += static_cast<double>(a[i]) * b[i];
      da += static_cast<double>(a[i]) * a[i];
      db += static_cast<double>(b[i]) * b[i];
    }
    return num / std::sqrt(da * db);
  };
  const auto a1 = ds.sample(7).image;    // class 7
  const auto a2 = ds.sample(107).image;  // class 7 again
  const auto b1 = ds.sample(57).image;   // class 57 (different freq+orient)
  EXPECT_GT(std::abs(corr(a1, a2)), std::abs(corr(a1, b1)));
}

TEST(Textures, SeedChangesInstances) {
  TexturesDataset a(1), b(2);
  const auto sa = a.sample(0).image;
  const auto sb = b.sample(0).image;
  std::size_t diffs = 0;
  for (std::size_t i = 0; i < sa.size(); ++i)
    diffs += (sa[i] != sb[i]) ? 1U : 0U;
  EXPECT_GT(diffs, sa.size() / 2);
}

TEST(Ppm, RoundTripsImage) {
  ShapesDataset ds(4);
  const auto img = ds.sample(3).image;
  const std::string path =
      (std::filesystem::temp_directory_path() / "dnnfi_test.ppm").string();
  write_ppm(path, img);
  const auto back = read_ppm(path);
  ASSERT_EQ(back.shape(), img.shape());
  // 8-bit quantization: tolerance of one level.
  for (std::size_t i = 0; i < img.size(); ++i) {
    const float clamped = std::clamp(img[i], -1.0F, 1.0F);
    EXPECT_NEAR(back[i], clamped, 2.0F / 255.0F + 1e-4F);
  }
  std::remove(path.c_str());
}

TEST(Ppm, RejectsBadFiles) {
  EXPECT_THROW(read_ppm("/nonexistent.ppm"), std::runtime_error);
  const std::string path =
      (std::filesystem::temp_directory_path() / "dnnfi_not_ppm.ppm").string();
  {
    std::ofstream f(path);
    f << "P3\n1 1\n255\n0 0 0\n";  // ASCII PPM, unsupported
  }
  EXPECT_THROW(read_ppm(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Ppm, RequiresThreeChannels) {
  tensor::Tensor<float> gray(tensor::chw(1, 4, 4));
  EXPECT_THROW(write_ppm("/tmp/never.ppm", gray), std::runtime_error);
}

TEST(Pretrain, DatasetBindingMatchesPaperTable2) {
  EXPECT_EQ(dataset_for(dnn::zoo::NetworkId::kConvNet)->name(), "shapes10");
  EXPECT_EQ(dataset_for(dnn::zoo::NetworkId::kAlexNetS)->name(), "textures100");
  EXPECT_EQ(dataset_for(dnn::zoo::NetworkId::kCaffeNetS)->name(), "textures100");
  EXPECT_EQ(dataset_for(dnn::zoo::NetworkId::kNiNS)->name(), "textures100");
}

TEST(Pretrain, ExampleSourceAdaptsSamples) {
  ShapesDataset ds(5);
  const auto src = example_source(ds);
  const auto ex = src(17);
  EXPECT_EQ(ex.label, 7U);
  EXPECT_EQ(ex.image.shape(), ds.image_shape());
}

TEST(Pretrain, TrainConfigsAreSane) {
  for (const auto id : dnn::zoo::kAllNetworks) {
    const auto cfg = train_config_for(id);
    EXPECT_GT(cfg.epochs, 0U);
    EXPECT_GT(cfg.train_count, 0U);
    EXPECT_GT(cfg.learning_rate, 0.0);
    // Training must not touch the held-out split.
    EXPECT_LT(cfg.train_count, kTestSplitBegin);
  }
}

}  // namespace
}  // namespace dnnfi::data
