// Fixed-point arithmetic: Q-format layout, saturation, rounding, bit flips.
#include <gtest/gtest.h>

#include <cmath>

#include "dnnfi/numeric/fixed.h"
#include "dnnfi/numeric/traits.h"

namespace dnnfi::numeric {
namespace {

TEST(Fixed, LayoutMatchesPaperTable3) {
  EXPECT_EQ(Fx16r10::kWidth, 16);
  EXPECT_EQ(Fx16r10::kFraction, 10);
  EXPECT_EQ(Fx16r10::kInteger, 5);
  EXPECT_EQ(Fx32r10::kInteger, 21);
  EXPECT_EQ(Fx32r26::kInteger, 5);
}

TEST(Fixed, QuantizeExactValues) {
  EXPECT_EQ(Fx16r10(1.0).raw(), 1024);
  EXPECT_EQ(Fx16r10(-1.0).raw(), -1024);
  EXPECT_EQ(Fx16r10(0.5).raw(), 512);
  EXPECT_EQ(Fx16r10(0.0).raw(), 0);
  EXPECT_EQ(Fx32r26(1.0).raw(), 1 << 26);
}

TEST(Fixed, QuantizeRoundsToNearest) {
  // One LSB of Fx16r10 is 1/1024; 0.4 LSB rounds down, 0.6 LSB rounds up.
  EXPECT_EQ(Fx16r10(0.4 / 1024.0).raw(), 0);
  EXPECT_EQ(Fx16r10(0.6 / 1024.0).raw(), 1);
  EXPECT_EQ(Fx16r10(-0.6 / 1024.0).raw(), -1);
}

TEST(Fixed, DynamicRangeBounds) {
  // 16b_rb10: max = (2^15 - 1)/2^10 ≈ 31.999, min = -32.
  EXPECT_NEAR(static_cast<double>(Fx16r10::max_value()), 31.999, 0.001);
  EXPECT_NEAR(static_cast<double>(Fx16r10::min_value()), -32.0, 0.001);
  // 32b_rb10: ±2^21 ≈ ±2.097e6.
  EXPECT_NEAR(static_cast<double>(Fx32r10::max_value()), 2097151.999, 0.01);
  // 32b_rb26: ±32, like 16b_rb10 but with more precision.
  EXPECT_NEAR(static_cast<double>(Fx32r26::max_value()), 32.0, 1e-6);
}

TEST(Fixed, SaturatesOnConversion) {
  EXPECT_EQ(Fx16r10(100.0).raw(), Fx16r10::kRawMax);
  EXPECT_EQ(Fx16r10(-100.0).raw(), Fx16r10::kRawMin);
  EXPECT_EQ(Fx16r10(std::nan("")).raw(), 0);
  EXPECT_EQ(Fx32r26(1e30).raw(), Fx32r26::kRawMax);
}

TEST(Fixed, SaturatesOnAddition) {
  const Fx16r10 big(31.0);
  const Fx16r10 sum = big + big;
  EXPECT_EQ(sum.raw(), Fx16r10::kRawMax);
  const Fx16r10 neg(-31.0);
  EXPECT_EQ((neg + neg).raw(), Fx16r10::kRawMin);
}

TEST(Fixed, SaturatesOnMultiplication) {
  const Fx16r10 a(30.0), b(30.0);
  EXPECT_EQ((a * b).raw(), Fx16r10::kRawMax);
  EXPECT_EQ((a * Fx16r10(-30.0)).raw(), Fx16r10::kRawMin);
}

TEST(Fixed, MultiplicationExactForSmallValues) {
  const Fx16r10 a(1.5), b(2.0);
  EXPECT_DOUBLE_EQ(static_cast<double>(a * b), 3.0);
  const Fx32r26 c(0.25), d(0.5);
  EXPECT_DOUBLE_EQ(static_cast<double>(c * d), 0.125);
}

TEST(Fixed, MultiplicationRoundsProduct) {
  // (1 LSB) * (1 LSB) = 2^-20, far below half of one rb10 LSB (2^-11):
  // the rounded shift flushes it to zero.
  const Fx16r10 eps = Fx16r10::from_raw(1);
  EXPECT_EQ((eps * eps).raw(), 0);
  // Exactly half an LSB rounds up: raw 512 * raw 1024 = 2^19 -> (2^19 +
  // 2^9) >> 10 = 512.5 LSB... use 0.5 * (1 LSB + half-LSB product): raw
  // product 1 << 9 is the rounding threshold.
  const Fx16r10 half_lsb_sq = Fx16r10::from_raw(1 << 5);  // 2^5 raw
  EXPECT_EQ((half_lsb_sq * half_lsb_sq).raw(), 1);  // 2^10 + 2^9 >> 10 = 1
}

TEST(Fixed, NegationAndSubtraction) {
  const Fx16r10 a(3.5);
  EXPECT_DOUBLE_EQ(static_cast<double>(-a), -3.5);
  EXPECT_DOUBLE_EQ(static_cast<double>(a - Fx16r10(1.25)), 2.25);
  // Negating the minimum saturates (two's complement has no +32).
  EXPECT_EQ((-Fx16r10::min_value()).raw(), Fx16r10::kRawMax);
}

TEST(Fixed, DivisionBasics) {
  const Fx16r10 a(3.0), b(2.0);
  EXPECT_DOUBLE_EQ(static_cast<double>(a / b), 1.5);
  // Division by zero saturates toward the sign of the numerator.
  EXPECT_EQ((a / Fx16r10(0.0)).raw(), Fx16r10::kRawMax);
  EXPECT_EQ((Fx16r10(-3.0) / Fx16r10(0.0)).raw(), Fx16r10::kRawMin);
}

TEST(Fixed, TwosComplementBits) {
  EXPECT_EQ(Fx16r10(-1.0).bits(), 0xFC00U);  // -1024 as u16
  EXPECT_EQ(Fx16r10(1.0).bits(), 0x0400U);
  EXPECT_EQ(Fx16r10::from_bits(0xFC00U).raw(), -1024);
}

TEST(FixedTraits, VulnerableFieldIsIntegerPart) {
  using Tr = numeric_traits<Fx16r10>;
  EXPECT_EQ(Tr::width, 16);
  EXPECT_FALSE(Tr::is_floating);
  EXPECT_EQ(Tr::exponent_lo, 10);  // integer bits start above the fraction
  EXPECT_EQ(Tr::exponent_hi, 16);
  EXPECT_STREQ(Tr::name, "16b_rb10");
  EXPECT_STREQ(numeric_traits<Fx32r10>::name, "32b_rb10");
  EXPECT_STREQ(numeric_traits<Fx32r26>::name, "32b_rb26");
}

TEST(FixedTraits, FlipBitIsInvolutionEverywhere) {
  const Fx32r10 v(123.456);
  for (int bit = 0; bit < 32; ++bit) {
    const auto flipped = flip_bit(v, bit);
    EXPECT_NE(flipped.raw(), v.raw());
    EXPECT_EQ(flip_bit(flipped, bit).raw(), v.raw());
  }
}

TEST(FixedTraits, HighBitFlipMagnitudeDependsOnRadix) {
  // Flipping bit 30 adds 2^30 raw. At rb10 that is 2^20 ≈ 1e6 in value; at
  // rb26 it is 2^4 = 16 — the paper's §5.1.2 contrast between data types.
  const Fx32r10 a(1.0);
  const Fx32r26 b(1.0);
  const double da = std::abs(static_cast<double>(flip_bit(a, 30)) - 1.0);
  const double db = std::abs(static_cast<double>(flip_bit(b, 30)) - 1.0);
  EXPECT_NEAR(da, std::ldexp(1.0, 20), 1.0);
  EXPECT_NEAR(db, 16.0, 1e-6);
  EXPECT_GT(da / db, 60000.0);
}

/// Property sweep: double -> fixed -> double stays within half an LSB for
/// in-range values, across all three paper formats.
template <typename F>
class FixedRoundTrip : public ::testing::Test {};
using Formats = ::testing::Types<Fx16r10, Fx32r10, Fx32r26>;
TYPED_TEST_SUITE(FixedRoundTrip, Formats);

TYPED_TEST(FixedRoundTrip, QuantizationErrorBounded) {
  using F = TypeParam;
  const double lsb = 1.0 / F::kScale;
  const double max_v = static_cast<double>(F::max_value()) * 0.99;
  for (int i = -1000; i <= 1000; ++i) {
    const double v = max_v * static_cast<double>(i) / 1000.0;
    const double err = std::abs(static_cast<double>(F(v)) - v);
    ASSERT_LE(err, 0.5 * lsb + 1e-12) << "v=" << v;
  }
}

TYPED_TEST(FixedRoundTrip, AdditionMatchesRealArithmeticInRange) {
  using F = TypeParam;
  const double lsb = 1.0 / F::kScale;
  for (int i = 0; i < 100; ++i) {
    const double a = -5.0 + 0.1 * i;
    const double b = 3.0 - 0.07 * i;
    const double got = static_cast<double>(F(a) + F(b));
    ASSERT_NEAR(got, a + b, 1.5 * lsb);
  }
}

}  // namespace
}  // namespace dnnfi::numeric
