// Distributed-fleet robustness: frame codec and channel properties at the
// unit level, then end-to-end fleet campaigns exec'ing the real
// dnnfi_campaign binary (path injected as DNNFI_CAMPAIGN_BIN). The
// contract under test is the same one test_supervisor.cpp pins for the
// single-host path: merged stats byte-identical to a monolithic run, no
// matter what happens to the fleet in between — a whole node SIGKILLed
// repeatedly, a host that fails every spawn (quarantine), or membership
// rewritten mid-campaign via SIGHUP.
//
// "Remote" hosts here are localhost fleet nodes (direct exec, private
// scratch dirs, full ship-over-frames protocol) or fake-ssh hosts whose
// transport is a stub script via DNNFI_FLEET_SSH — the wire protocol and
// scheduling are exactly those of a real multi-machine fleet; only the
// network hop is simulated.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dnnfi/common/error.h"
#include "dnnfi/fault/checkpoint.h"
#include "dnnfi/fault/fleet.h"
#include "dnnfi/fault/transport.h"

namespace dnnfi::fault {
namespace {

namespace fs = std::filesystem;

#ifndef DNNFI_CAMPAIGN_BIN
#error "build must define DNNFI_CAMPAIGN_BIN"
#endif
#ifndef DNNFI_REPO_MODELS
#error "build must define DNNFI_REPO_MODELS"
#endif

// ---- frame codec properties ----------------------------------------------

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

TEST(FrameCodec, RoundTripsAcrossArbitraryChunkBoundaries) {
  // Several frames of different types and sizes, delivered one byte at a
  // time: every frame must come out intact, in order, and never early.
  const std::vector<std::pair<FrameType, std::vector<std::uint8_t>>> frames = {
      {FrameType::kInit, bytes_of("")},
      {FrameType::kBeat, bytes_of("\x01\x02\x03\x04\x05\x06\x07\x08")},
      {FrameType::kCheckpoint, bytes_of(std::string(3000, 'x') + "tail")},
      {FrameType::kBeat, bytes_of("01234567")},
  };
  std::vector<std::uint8_t> wire;
  for (const auto& [type, payload] : frames) {
    const auto f = encode_frame(type, payload.data(), payload.size());
    wire.insert(wire.end(), f.begin(), f.end());
  }

  FrameDecoder dec;
  std::size_t decoded = 0;
  for (const std::uint8_t b : wire) {
    dec.feed(&b, 1);
    while (true) {
      auto next = dec.next();
      ASSERT_TRUE(next.ok()) << next.error().to_string();
      if (!next.value().has_value()) break;
      ASSERT_LT(decoded, frames.size()) << "decoder invented a frame";
      EXPECT_EQ(next.value()->type, frames[decoded].first);
      EXPECT_EQ(next.value()->payload, frames[decoded].second);
      ++decoded;
    }
  }
  EXPECT_EQ(decoded, frames.size());
  EXPECT_EQ(dec.buffered(), 0u);
}

TEST(FrameCodec, TruncatedFrameStaysPendingNotAnError) {
  const auto payload = bytes_of("truncate me somewhere");
  const auto wire =
      encode_frame(FrameType::kCheckpoint, payload.data(), payload.size());
  // Every proper prefix must decode to "no frame yet" without error.
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    FrameDecoder dec;
    dec.feed(wire.data(), cut);
    auto next = dec.next();
    ASSERT_TRUE(next.ok()) << "prefix of " << cut << " bytes: "
                           << next.error().to_string();
    EXPECT_FALSE(next.value().has_value()) << "decoded from " << cut
                                           << " of " << wire.size()
                                           << " bytes";
  }
}

TEST(FrameCodec, EveryPayloadBitFlipIsRejectedByCrc) {
  const auto payload = bytes_of("integrity matters");
  auto wire = encode_frame(FrameType::kBeat, payload.data(), payload.size());
  const std::size_t header = wire.size() - payload.size();
  for (std::size_t i = header; i < wire.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      auto damaged = wire;
      damaged[i] ^= static_cast<std::uint8_t>(1u << bit);
      FrameDecoder dec;
      dec.feed(damaged.data(), damaged.size());
      auto next = dec.next();
      ASSERT_FALSE(next.ok()) << "flipped bit " << bit << " of byte " << i
                              << " went unnoticed";
      EXPECT_EQ(next.error().code, Errc::kTransport);
    }
  }
}

TEST(FrameCodec, OversizedLengthAndUnknownTypeAreTransportErrors) {
  // A length past the bound must be rejected from the header alone —
  // before any payload arrives and long before any allocation.
  std::uint8_t oversized[9] = {};
  const std::uint32_t huge = kMaxFramePayload + 1;
  for (int i = 0; i < 4; ++i)
    oversized[i] = static_cast<std::uint8_t>(huge >> (8 * i));
  oversized[4] = 2;  // kBeat
  FrameDecoder dec;
  dec.feed(oversized, sizeof oversized);
  auto next = dec.next();
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.error().code, Errc::kTransport);

  const auto payload = bytes_of("x");
  auto wire = encode_frame(FrameType::kBeat, payload.data(), payload.size());
  wire[4] = 99;  // not a FrameType
  FrameDecoder dec2;
  dec2.feed(wire.data(), wire.size());
  auto next2 = dec2.next();
  ASSERT_FALSE(next2.ok());
  EXPECT_EQ(next2.error().code, Errc::kTransport);
}

// ---- worker channel dialects ---------------------------------------------

TEST(WorkerChannel, RawBeatsSurviveArbitraryFragmentation) {
  // The legacy dialect: 8-byte little-endian counters, split at every
  // possible boundary (pipes do that). Every beat must be reassembled.
  WorkerChannel ch(/*framed=*/false);
  std::vector<std::uint8_t> wire;
  const std::vector<std::uint64_t> beats = {1, 16, 0xDEADBEEFCAFEF00DULL, 64};
  for (const std::uint64_t b : beats)
    for (int i = 0; i < 8; ++i)
      wire.push_back(static_cast<std::uint8_t>(b >> (8 * i)));

  std::vector<ChannelEvent> events;
  for (std::size_t i = 0; i < wire.size(); i += 3) {
    const std::size_t n = std::min<std::size_t>(3, wire.size() - i);
    auto fed = ch.feed(wire.data() + i, n, events);
    ASSERT_TRUE(fed.ok()) << fed.error().to_string();
  }
  ASSERT_EQ(events.size(), beats.size());
  for (std::size_t i = 0; i < beats.size(); ++i) {
    EXPECT_EQ(events[i].kind, ChannelEvent::Kind::kBeat);
    EXPECT_EQ(events[i].done, beats[i]);
  }
}

TEST(WorkerChannel, FramedDialectYieldsBeatsAndCheckpoints) {
  WorkerChannel ch(/*framed=*/true);
  std::vector<std::uint8_t> wire;
  std::uint8_t beat[8] = {42, 0, 0, 0, 0, 0, 0, 0};
  const auto f1 = encode_frame(FrameType::kBeat, beat, sizeof beat);
  const auto image = bytes_of("pretend checkpoint file image");
  const auto f2 =
      encode_frame(FrameType::kCheckpoint, image.data(), image.size());
  wire.insert(wire.end(), f1.begin(), f1.end());
  wire.insert(wire.end(), f2.begin(), f2.end());

  std::vector<ChannelEvent> events;
  auto fed = ch.feed(wire.data(), wire.size(), events);
  ASSERT_TRUE(fed.ok()) << fed.error().to_string();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, ChannelEvent::Kind::kBeat);
  EXPECT_EQ(events[0].done, 42u);
  EXPECT_EQ(events[1].kind, ChannelEvent::Kind::kCheckpoint);
  EXPECT_EQ(events[1].bytes, image);
}

TEST(WorkerChannel, FramedDamageIsATransportErrorAndWrongDirectionToo) {
  {
    WorkerChannel ch(/*framed=*/true);
    std::uint8_t bad_beat[3] = {1, 2, 3};  // beats must be exactly 8 bytes
    const auto f = encode_frame(FrameType::kBeat, bad_beat, sizeof bad_beat);
    std::vector<ChannelEvent> events;
    auto fed = ch.feed(f.data(), f.size(), events);
    ASSERT_FALSE(fed.ok());
    EXPECT_EQ(fed.error().code, Errc::kTransport);
  }
  {
    // Workers never send kInit; one arriving means the stream is confused.
    WorkerChannel ch(/*framed=*/true);
    std::uint8_t one = 0;
    const auto f = encode_frame(FrameType::kInit, &one, 1);
    std::vector<ChannelEvent> events;
    auto fed = ch.feed(f.data(), f.size(), events);
    ASSERT_FALSE(fed.ok());
    EXPECT_EQ(fed.error().code, Errc::kTransport);
  }
}

// ---- host specs and fleet membership -------------------------------------

TEST(HostSpec, ParsesHostsWithSlotsAndOptionalWorkdir) {
  auto specs = parse_hosts("alpha:4,localhost:2:/scratch/n0,beta:1");
  ASSERT_TRUE(specs.ok()) << specs.error().to_string();
  ASSERT_EQ(specs.value().size(), 3u);
  EXPECT_EQ(specs.value()[0].host, "alpha");
  EXPECT_EQ(specs.value()[0].slots, 4);
  EXPECT_TRUE(specs.value()[0].workdir.empty());
  EXPECT_FALSE(specs.value()[0].is_local());
  EXPECT_EQ(specs.value()[1].host, "localhost");
  EXPECT_EQ(specs.value()[1].workdir, "/scratch/n0");
  EXPECT_TRUE(specs.value()[1].is_local());
  EXPECT_EQ(specs.value()[2].slots, 1);
}

TEST(HostSpec, RejectsMalformedSpecs) {
  for (const char* bad : {"", "alpha", "alpha:0", "alpha:-2", "alpha:x",
                          ":4", "alpha:2:"}) {
    auto specs = parse_hosts(bad);
    EXPECT_FALSE(specs.ok()) << "accepted '" << bad << "'";
    if (!specs.ok()) {
      EXPECT_EQ(specs.error().code, Errc::kInvalidArgument) << bad;
    }
  }
}

TEST(HostSpec, HostsFileSkipsCommentsAndNamesBadLines) {
  const fs::path file = fs::temp_directory_path() / "dnnfi_fleet_hosts_test";
  {
    std::ofstream out(file);
    out << "# fleet for the nightly\n"
        << "alpha:4\n"
        << "\n"
        << "  localhost:2  # on-box lanes\n";
  }
  auto specs = parse_hosts_file(file.string());
  ASSERT_TRUE(specs.ok()) << specs.error().to_string();
  ASSERT_EQ(specs.value().size(), 2u);
  EXPECT_EQ(specs.value()[1].host, "localhost");

  {
    std::ofstream out(file);
    out << "alpha:4\nbogus line\n";
  }
  auto bad = parse_hosts_file(file.string());
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, Errc::kInvalidArgument);
  EXPECT_NE(bad.error().message.find("line 2"), std::string::npos)
      << bad.error().message;
  fs::remove(file);
}

FleetConfig test_fleet_config() {
  FleetConfig cfg;
  cfg.fail_limit = 3;
  cfg.quarantine_base_s = 60.0;  // long enough to be "forever" in a test
  cfg.quarantine_cap_s = 300.0;
  cfg.scratch_root = "/tmp/dnnfi_fleet_unit";
  return cfg;
}

TEST(FleetMembership, AcquirePrefersAnotherHostForRetries) {
  auto specs = parse_hosts("alpha:2,beta:2");
  ASSERT_TRUE(specs.ok());
  Fleet fleet(specs.value(), test_fleet_config());

  Fleet::Node* first = fleet.acquire("");
  ASSERT_NE(first, nullptr);
  // Retry-elsewhere: avoiding the first host must pick the other one even
  // though the first still has a free slot.
  Fleet::Node* other = fleet.acquire(first->id);
  ASSERT_NE(other, nullptr);
  EXPECT_NE(other->id, first->id);
  // With beta saturated, an avoid=alpha acquire still yields alpha (a busy
  // fleet beats a dead shard) — preference, not a hard ban.
  Fleet::Node* beta_last = fleet.acquire(first->id);
  ASSERT_NE(beta_last, nullptr);
  EXPECT_NE(beta_last->id, first->id);
  Fleet::Node* forced = fleet.acquire(first->id);
  ASSERT_NE(forced, nullptr);
  EXPECT_EQ(forced->id, first->id);
  EXPECT_EQ(fleet.acquire(""), nullptr) << "all four slots are out";
}

TEST(FleetMembership, RepeatedFailuresQuarantineTheHostThenExpire) {
  auto specs = parse_hosts("alpha:1,beta:1");
  ASSERT_TRUE(specs.ok());
  FleetConfig cfg = test_fleet_config();
  cfg.quarantine_base_s = 0.05;  // expire within the test
  Fleet fleet(specs.value(), cfg);

  Fleet::Node* alpha = fleet.nodes()[0].get();
  ReleaseOutcome out;
  for (int i = 0; i < cfg.fail_limit; ++i) {
    Fleet::Node* n = fleet.acquire("beta#1");
    ASSERT_EQ(n, alpha);
    out = fleet.release(*n, /*success=*/false);
  }
  EXPECT_TRUE(out.quarantined);
  EXPECT_GT(out.quarantine_s, 0.0);
  // Quarantined: every acquire lands on beta, but alpha still counts
  // toward capacity (quarantine is temporary, not membership).
  Fleet::Node* n = fleet.acquire("");
  ASSERT_NE(n, nullptr);
  EXPECT_EQ(n->spec.host, "beta");
  EXPECT_EQ(fleet.total_slots(), 2);
  fleet.release(*n, /*success=*/true);
  // After expiry the host rejoins on its own.
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  bool alpha_back = false;
  for (int i = 0; i < 2; ++i) {
    Fleet::Node* m = fleet.acquire("");
    ASSERT_NE(m, nullptr);
    alpha_back |= (m->spec.host == "alpha");
  }
  EXPECT_TRUE(alpha_back);
}

TEST(FleetMembership, ReloadJoinsNewHostsAndDrainsVanishedOnes) {
  auto specs = parse_hosts("alpha:2,beta:2");
  ASSERT_TRUE(specs.ok());
  Fleet fleet(specs.value(), test_fleet_config());
  Fleet::Node* busy_beta = fleet.acquire("alpha#0");
  ASSERT_NE(busy_beta, nullptr);
  ASSERT_EQ(busy_beta->spec.host, "beta");

  auto next = parse_hosts("alpha:4,gamma:1");
  ASSERT_TRUE(next.ok());
  const auto [joined, drained] = fleet.reload(next.value());
  EXPECT_EQ(joined, 1);   // gamma
  EXPECT_EQ(drained, 1);  // beta
  EXPECT_EQ(fleet.total_slots(), 5);  // alpha grew to 4, gamma 1, beta gone
  // The busy drained node survives until its worker is released; it never
  // takes new work.
  EXPECT_TRUE(busy_beta->draining);
  for (int i = 0; i < 5; ++i) {
    Fleet::Node* n = fleet.acquire("");
    ASSERT_NE(n, nullptr);
    EXPECT_NE(n->spec.host, "beta");
  }
}

// ---- end-to-end fleet campaigns ------------------------------------------

const char* kCampaignFlags =
    "--network convnet --trials 64 --seed 7 --inputs 4 --batch 16";

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

/// Runs `DNNFI_CAMPAIGN_BIN <args>` through the shell with optional extra
/// environment assignments; returns the exit code (-1 on abnormal death).
int run_tool(const std::string& args, const std::string& env = "",
             const std::string& log = "/dev/null") {
  std::ostringstream cmd;
  cmd << "env DNNFI_MODEL_DIR='" << DNNFI_REPO_MODELS << "' " << env << " '"
      << DNNFI_CAMPAIGN_BIN << "' " << args << " >" << log << " 2>&1";
  const int st = std::system(cmd.str().c_str());
  if (st == -1 || !WIFEXITED(st)) return -1;
  return WEXITSTATUS(st);
}

class FleetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("dnnfi_test_fleet_" + std::string(::testing::UnitTest::GetInstance()
                                                  ->current_test_info()
                                                  ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const std::string& leaf) const {
    return (dir_ / leaf).string();
  }

  /// Monolithic reference stats for kCampaignFlags.
  std::string monolithic() {
    const std::string out = path("mono.stats");
    EXPECT_EQ(run_tool(std::string("run ") + kCampaignFlags +
                           " --no-progress --out " + out,
                       "", path("mono.log")),
              0)
        << read_file(path("mono.log"));
    return read_file(out);
  }

  std::string supervise_flags(const std::string& extra = "") const {
    return std::string("supervise ") + kCampaignFlags +
           " --shard-size 8 --backoff 0.05 --ckpt-dir " +
           (dir_ / "ckpt").string() + " --out " + (dir_ / "sup.stats").string() +
           " " + extra;
  }

  fs::path dir_;
};

TEST_F(FleetTest, SingleHostFleetlessPathStillMatchesMonolithic) {
  // The LocalTransport refactor must be behaviorally invisible: no --hosts
  // means the classic fork/exec pipe path, byte-identical results, and the
  // per-shard stderr logs appearing under the checkpoint directory.
  const std::string mono = monolithic();
  ASSERT_FALSE(mono.empty());
  ASSERT_EQ(run_tool(supervise_flags("--workers 2"), "", path("sup.log")), 0)
      << read_file(path("sup.log"));
  EXPECT_EQ(read_file(path("sup.stats")), mono);
  EXPECT_TRUE(fs::exists(dir_ / "ckpt/logs")) << "per-shard log dir missing";
}

TEST_F(FleetTest, TwoNodeFleetMatchesMonolithicByteForByte) {
  const std::string mono = monolithic();
  ASSERT_FALSE(mono.empty());
  // Two localhost nodes: separate scratch dirs, framed channels, every
  // batch shipped home. The merged result must not care.
  ASSERT_EQ(run_tool(supervise_flags("--hosts localhost:1,localhost:1"), "",
                     path("sup.log")),
            0)
      << read_file(path("sup.log"));
  EXPECT_EQ(read_file(path("sup.stats")), mono);
  // Checkpoints were shipped over frames, and the node scratch dirs exist.
  EXPECT_NE(read_file(path("sup.log")).find("checkpoint(s) shipped"),
            std::string::npos);
  EXPECT_TRUE(fs::exists(dir_ / "ckpt/node0") ||
              fs::exists(dir_ / "ckpt/node1"))
      << "no node scratch directory was created";
}

TEST_F(FleetTest, NodeKilledRepeatedlyMidCampaignRetriesElsewhere) {
  // A longer campaign than the other fixtures (1024 trials, batch 8) so
  // the killer has a real window: the 64-trial default finishes before a
  // single kill can land.
  const char* flags = "--network convnet --trials 1024 --seed 7 --inputs 4 "
                      "--batch 8";
  const std::string mono_out = path("mono.stats");
  ASSERT_EQ(run_tool(std::string("run ") + flags + " --no-progress --out " +
                         mono_out,
                     "", path("mono.log")),
            0)
      << read_file(path("mono.log"));
  const std::string mono = read_file(mono_out);
  ASSERT_FALSE(mono.empty());

  // Repeatedly SIGKILL every worker of node0 — the whole "machine" dies,
  // over and over — while node1 stays healthy. Shards stranded on node0
  // must be rescheduled on node1, resuming from shipped checkpoints, and
  // the merge must still be byte-identical.
  std::atomic<bool> done{false};
  int rc = -1;
  std::thread sup([&] {
    rc = run_tool(std::string("supervise ") + flags +
                      " --shard-size 64 --backoff 0.05 --ckpt-dir " +
                      (dir_ / "ckpt").string() + " --out " +
                      (dir_ / "sup.stats").string() +
                      " --hosts localhost:1,localhost:1"
                      " --max-attempts 100 --host-quarantine 0.5",
                  "", path("sup.log"));
    done.store(true);
  });
  // "[0]" keeps the pattern from matching the sh -c wrapper's own command
  // line (pkill would SIGKILL its parent shell and report failure).
  const std::string killer =
      "pkill -9 -f '" + (dir_ / "ckpt/node").string() + "[0]/' 2>/dev/null";
  int kills = 0;
  for (int i = 0; i < 6000 && !done.load(); ++i) {
    if (std::system(killer.c_str()) == 0) ++kills;
    usleep(20 * 1000);
  }
  sup.join();
  ASSERT_EQ(rc, 0) << read_file(path("sup.log"));
  EXPECT_EQ(read_file(path("sup.stats")), mono);
  EXPECT_GT(kills, 0) << "the killer never caught a node0 worker";
}

TEST_F(FleetTest, SpawnDeadHostIsQuarantinedAndCampaignCompletes) {
  const std::string mono = monolithic();
  ASSERT_FALSE(mono.empty());
  // "phantom" is a non-local host, so its workers go through the ssh
  // command — overridden to /bin/false, which exits 1 instantly. Every
  // phantom attempt fails, the host's streak trips the quarantine, and
  // the campaign completes on the healthy localhost node.
  ASSERT_EQ(
      run_tool(supervise_flags("--hosts phantom:1,localhost:1 "
                               "--max-attempts 100 --host-quarantine 0.2"),
               "DNNFI_FLEET_SSH=/bin/false", path("sup.log")),
      0)
      << read_file(path("sup.log"));
  EXPECT_EQ(read_file(path("sup.stats")), mono);
  const std::string log = read_file(path("sup.log"));
  EXPECT_NE(log.find("quarantin"), std::string::npos) << log;
}

TEST_F(FleetTest, FakeSshTransportCarriesTheWholeProtocol) {
  const std::string mono = monolithic();
  ASSERT_FALSE(mono.empty());
  // A stand-in ssh client: drops the host argument and runs the command
  // locally — the full quoted-command + framed-stdio path a real ssh fleet
  // exercises, minus the network.
  const std::string fake = path("fake_ssh.sh");
  {
    std::ofstream out(fake);
    out << "#!/bin/sh\nshift\nexec sh -c \"$1\"\n";
  }
  ASSERT_EQ(chmod(fake.c_str(), 0755), 0);
  ASSERT_EQ(run_tool(supervise_flags("--hosts worker-box:2"),
                     "DNNFI_FLEET_SSH='" + fake + "'", path("sup.log")),
            0)
      << read_file(path("sup.log"));
  EXPECT_EQ(read_file(path("sup.stats")), mono);
}

TEST_F(FleetTest, SighupHostsFileReloadRescuesAStalledCampaign) {
  const std::string mono = monolithic();
  ASSERT_FALSE(mono.empty());

  // Membership starts as a single dead host (spawns via /bin/false), so
  // the campaign can only spin. Mid-run the hosts file is rewritten to a
  // healthy localhost pair and SIGHUP delivered: the fleet must pick up
  // the new members, drain the dead one, and finish byte-identical.
  const std::string hosts_file = path("hosts.txt");
  {
    std::ofstream out(hosts_file);
    out << "phantom:1\n";
  }
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    setenv("DNNFI_MODEL_DIR", DNNFI_REPO_MODELS, 1);
    setenv("DNNFI_FLEET_SSH", "/bin/false", 1);
    const int log = open(path("sup.log").c_str(),
                         O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (log >= 0) {
      dup2(log, 1);
      dup2(log, 2);
    }
    const std::string ckpt = path("ckpt");
    const std::string out = path("sup.stats");
    execl(DNNFI_CAMPAIGN_BIN, DNNFI_CAMPAIGN_BIN, "supervise", "--network",
          "convnet", "--trials", "64", "--seed", "7", "--inputs", "4",
          "--batch", "16", "--shard-size", "8", "--backoff", "0.05",
          "--max-attempts", "1000", "--host-quarantine", "0.2", "--ckpt-dir",
          ckpt.c_str(), "--out", out.c_str(), "--hosts-file",
          hosts_file.c_str(), static_cast<char*>(nullptr));
    _exit(127);
  }
  // Let it start and fail on the phantom for a while, then fix the fleet.
  usleep(1500 * 1000);
  {
    std::ofstream out(hosts_file);
    out << "localhost:2\n";
  }
  ASSERT_EQ(kill(pid, SIGHUP), 0);

  int st = 0;
  pid_t reaped = 0;
  for (int i = 0; i < 1200; ++i) {
    reaped = waitpid(pid, &st, WNOHANG);
    if (reaped == pid) break;
    usleep(100 * 1000);
  }
  if (reaped != pid) {
    kill(pid, SIGKILL);
    waitpid(pid, &st, 0);
    FAIL() << "supervise did not finish after the reload: "
           << read_file(path("sup.log"));
  }
  ASSERT_TRUE(WIFEXITED(st));
  ASSERT_EQ(WEXITSTATUS(st), 0) << read_file(path("sup.log"));
  EXPECT_EQ(read_file(path("sup.stats")), mono);
  EXPECT_NE(read_file(path("sup.log")).find("hosts-file reloaded"),
            std::string::npos);
}

}  // namespace
}  // namespace dnnfi::fault
