// Trainer behaviour: loss decreases, accuracy rises on a separable toy
// problem, and training is bit-deterministic in its seed.
#include <gtest/gtest.h>

#include "dnnfi/common/rng.h"
#include "dnnfi/dnn/train.h"
#include "dnnfi/dnn/weights.h"

namespace dnnfi::dnn {
namespace {

using tensor::chw;
using tensor::Tensor;

/// Toy 2-class problem: class 0 images are bright in the left half, class 1
/// in the right half, plus noise.
Example toy_example(std::uint64_t i) {
  Rng rng = derive_stream(55, i);
  Example ex;
  ex.label = i % 2;
  ex.image = Tensor<float>(chw(1, 6, 6));
  for (std::size_t y = 0; y < 6; ++y)
    for (std::size_t x = 0; x < 6; ++x) {
      const bool hot = (ex.label == 0) ? (x < 3) : (x >= 3);
      ex.image.at(0, 0, y, x) =
          static_cast<float>((hot ? 1.0 : -1.0) + rng.normal() * 0.2);
    }
  return ex;
}

NetworkSpec toy_spec() {
  return SpecBuilder("toy", chw(1, 6, 6), 2)
      .conv(4, 3, 1, 1).relu().maxpool(2, 2)
      .fc(2).softmax()
      .build();
}

TEST(Train, LearnsSeparableProblem) {
  Network<float> net(toy_spec());
  init_weights(net, 1);
  const auto before = evaluate(net, toy_example, 1000, 100);

  TrainConfig cfg;
  cfg.epochs = 5;
  cfg.train_count = 200;
  cfg.batch = 16;
  cfg.learning_rate = 0.05;
  cfg.seed = 2;
  train(net, toy_example, cfg);

  const auto after = evaluate(net, toy_example, 1000, 100);
  EXPECT_LT(after.avg_loss, before.avg_loss);
  EXPECT_GE(after.accuracy, 0.95);
}

TEST(Train, DeterministicInSeed) {
  const auto run = [] {
    Network<float> net(toy_spec());
    init_weights(net, 1);
    TrainConfig cfg;
    cfg.epochs = 2;
    cfg.train_count = 64;
    cfg.batch = 8;
    cfg.seed = 3;
    train(net, toy_example, cfg);
    return extract_weights(net);
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.layers.size(), b.layers.size());
  for (std::size_t l = 0; l < a.layers.size(); ++l)
    EXPECT_EQ(a.layers[l].weights, b.layers[l].weights) << "layer " << l;
}

TEST(Train, DifferentSeedsProduceDifferentModels) {
  const auto run = [](std::uint64_t seed) {
    Network<float> net(toy_spec());
    init_weights(net, seed);
    TrainConfig cfg;
    cfg.epochs = 1;
    cfg.train_count = 32;
    cfg.batch = 8;
    cfg.seed = seed;
    train(net, toy_example, cfg);
    return extract_weights(net);
  };
  EXPECT_NE(run(1).layers[0].weights, run(2).layers[0].weights);
}

TEST(Train, WorksForNetworksWithoutSoftmaxHead) {
  // NiN-style: no trailing softmax; the trainer supplies softmax+xent.
  auto spec = SpecBuilder("toy-nosm", chw(1, 6, 6), 2)
                  .conv(2, 3, 1, 1).relu().global_avg_pool()
                  .build();
  Network<float> net(spec);
  init_weights(net, 4);
  TrainConfig cfg;
  cfg.epochs = 6;
  cfg.train_count = 200;
  cfg.batch = 16;
  cfg.learning_rate = 0.1;
  train(net, toy_example, cfg);
  const auto r = evaluate(net, toy_example, 1000, 100);
  EXPECT_GE(r.accuracy, 0.9);
}

TEST(Evaluate, ChanceLevelForUntrainedNet) {
  Network<float> net(toy_spec());
  init_weights(net, 9);
  const auto r = evaluate(net, toy_example, 0, 200);
  EXPECT_GT(r.accuracy, 0.2);
  EXPECT_LT(r.accuracy, 0.8);
}

TEST(InitWeights, DeterministicAndScaled) {
  Network<float> a(toy_spec()), b(toy_spec());
  init_weights(a, 42);
  init_weights(b, 42);
  const auto& la = a.layer(a.mac_layers()[0]);
  const auto& lb = b.layer(b.mac_layers()[0]);
  for (std::size_t i = 0; i < la.weights().size(); ++i)
    EXPECT_EQ(la.weights()[i], lb.weights()[i]);
  // He-init std for fan_in 9 is sqrt(2/9) ~ 0.47; check sample std is sane.
  double s2 = 0;
  for (const float w : la.weights()) s2 += static_cast<double>(w) * w;
  const double std_est = std::sqrt(s2 / static_cast<double>(la.weights().size()));
  EXPECT_GT(std_est, 0.2);
  EXPECT_LT(std_est, 0.8);
  for (const float bias : la.biases()) EXPECT_EQ(bias, 0.0F);
}

}  // namespace
}  // namespace dnnfi::dnn
